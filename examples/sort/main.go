// Sort: the paper's application benchmark. Sort 8 Mi random integers
// (32 MB) with only 16 MB of local memory and compare every swap backing
// the paper evaluates: abundant local memory, HPBD remote memory, NBD
// over IPoIB and GigE, and the local disk.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hpbd/internal/cluster"
	"hpbd/internal/sim"
	"hpbd/internal/workload"
)

const elems = 8 << 20 // 8 Mi int32 = 32 MB

func run(kind cluster.SwapKind, mem int64) sim.Duration {
	env := sim.NewEnv()
	node, err := cluster.Build(env, cluster.Config{
		MemBytes:  mem,
		Swap:      kind,
		SwapBytes: 64 << 20,
		Servers:   1,
	})
	if err != nil {
		log.Fatalf("build node: %v", err)
	}
	q := workload.NewQuicksort(node.VM, "qsort", elems, rand.New(rand.NewSource(42)))
	var elapsed sim.Duration
	env.Go("qsort", func(p *sim.Proc) {
		node.Ready.Wait(p)
		t0 := p.Now()
		if err := q.Run(p); err != nil {
			log.Fatalf("qsort: %v", err)
		}
		elapsed = p.Now().Sub(t0)
	})
	env.Run()
	env.Close()
	if !q.Sorted() {
		log.Fatal("output not sorted!")
	}
	return elapsed
}

func main() {
	fmt.Println("quick sort: 8 Mi integers (32 MB), 16 MB local memory")
	local := run(cluster.SwapNone, 72<<20)
	fmt.Printf("  %-28s %v\n", "local memory (fits):", local)
	for _, kind := range []cluster.SwapKind{
		cluster.SwapHPBD, cluster.SwapNBDIPoIB, cluster.SwapNBDGigE, cluster.SwapDisk,
	} {
		e := run(kind, 16<<20)
		fmt.Printf("  %-28s %v  (%.2fx local)\n", kind.String()+":", e, float64(e)/float64(local))
	}
}
