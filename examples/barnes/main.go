// Barnes: the paper's SPLASH-2 workload. A Barnes-Hut N-body simulation
// whose footprint slightly exceeds local memory runs over HPBD and over
// the disk; the light, scattered paging shows a smaller (but still real)
// remote-memory win than the sort.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hpbd/internal/cluster"
	"hpbd/internal/sim"
	"hpbd/internal/workload"
)

func run(kind cluster.SwapKind, mem int64, bodies int) sim.Duration {
	env := sim.NewEnv()
	node, err := cluster.Build(env, cluster.Config{
		MemBytes:  mem,
		Swap:      kind,
		SwapBytes: 32 << 20,
		Servers:   1,
	})
	if err != nil {
		log.Fatalf("build node: %v", err)
	}
	b := workload.NewBarnes(node.VM, "barnes", bodies, 2, rand.New(rand.NewSource(3)))
	var elapsed sim.Duration
	env.Go("barnes", func(p *sim.Proc) {
		node.Ready.Wait(p)
		t0 := p.Now()
		if err := b.Run(p); err != nil {
			log.Fatalf("barnes: %v", err)
		}
		elapsed = p.Now().Sub(t0)
	})
	env.Run()
	env.Close()
	return elapsed
}

func main() {
	const bodies = 74_900 // ~220 B/body: footprint a couple percent past 16 MB (light paging)
	fmt.Printf("Barnes-Hut: %d bodies, 2 steps, 16 MB local memory\n", bodies)
	local := run(cluster.SwapNone, 64<<20, bodies)
	fmt.Printf("  %-16s %v\n", "local memory:", local)
	for _, kind := range []cluster.SwapKind{cluster.SwapHPBD, cluster.SwapDisk} {
		e := run(kind, 16<<20, bodies)
		fmt.Printf("  %-16s %v  (%.2fx local)\n", kind.String()+":", e, float64(e)/float64(local))
	}
}
