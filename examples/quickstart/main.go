// Quickstart: build a two-node simulated InfiniBand cluster — a compute
// node with 16 MB of memory and one memory server — register HPBD as the
// swap device, and run the paper's testswap microbenchmark against it,
// then against the local disk for comparison.
package main

import (
	"fmt"
	"log"

	"hpbd/internal/cluster"
	"hpbd/internal/sim"
	"hpbd/internal/workload"
)

func run(kind cluster.SwapKind) sim.Duration {
	env := sim.NewEnv()
	node, err := cluster.Build(env, cluster.Config{
		MemBytes:  16 << 20, // 16 MB of local memory
		Swap:      kind,
		SwapBytes: 32 << 20, // 32 MB swap area
		Servers:   1,
	})
	if err != nil {
		log.Fatalf("build node: %v", err)
	}
	// testswap writes a 32 MB array sequentially: twice local memory, so
	// half of it must stream out to the swap device.
	ts := workload.NewTestswap(node.VM, 32<<20)
	var elapsed sim.Duration
	env.Go("testswap", func(p *sim.Proc) {
		node.Ready.Wait(p)
		t0 := p.Now()
		if err := ts.Run(p); err != nil {
			log.Fatalf("testswap: %v", err)
		}
		elapsed = p.Now().Sub(t0)
	})
	env.Run()
	env.Close()
	return elapsed
}

func main() {
	fmt.Println("testswap: 32 MB sequential store, 16 MB local memory")
	hpbd := run(cluster.SwapHPBD)
	disk := run(cluster.SwapDisk)
	fmt.Printf("  swap to remote memory (HPBD/InfiniBand): %v\n", hpbd)
	fmt.Printf("  swap to local disk:                      %v\n", disk)
	fmt.Printf("  remote memory is %.1fx faster\n", float64(disk)/float64(hpbd))
}
