// Quickstart: build a two-node simulated InfiniBand cluster — a compute
// node with 16 MB of memory and one memory server — register HPBD as the
// swap device, and run the paper's testswap microbenchmark against it,
// then against the local disk for comparison. With -trace, the HPBD run
// records a span timeline and writes it as Chrome trace-event JSON.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hpbd/internal/cluster"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
	"hpbd/internal/workload"
)

func run(kind cluster.SwapKind, reg func(*sim.Env) *telemetry.Registry) sim.Duration {
	env := sim.NewEnv()
	cfg := cluster.Config{
		MemBytes:  16 << 20, // 16 MB of local memory
		Swap:      kind,
		SwapBytes: 32 << 20, // 32 MB swap area
		Servers:   1,
	}
	if reg != nil {
		cfg.Telemetry = reg(env)
	}
	node, err := cluster.Build(env, cfg)
	if err != nil {
		log.Fatalf("build node: %v", err)
	}
	// testswap writes a 32 MB array sequentially: twice local memory, so
	// half of it must stream out to the swap device.
	ts := workload.NewTestswap(node.VM, 32<<20)
	var elapsed sim.Duration
	env.Go("testswap", func(p *sim.Proc) {
		node.Ready.Wait(p)
		t0 := p.Now()
		if err := ts.Run(p); err != nil {
			log.Fatalf("testswap: %v", err)
		}
		elapsed = p.Now().Sub(t0)
	})
	env.Run()
	env.Close()
	return elapsed
}

func main() {
	tracePath := flag.String("trace", "", "write a Chrome trace of the HPBD run to this path")
	flag.Parse()

	var traced *telemetry.Registry
	var mkReg func(*sim.Env) *telemetry.Registry
	if *tracePath != "" {
		mkReg = func(env *sim.Env) *telemetry.Registry {
			traced = telemetry.New(env)
			traced.EnableTracing()
			return traced
		}
	}

	fmt.Println("testswap: 32 MB sequential store, 16 MB local memory")
	hpbd := run(cluster.SwapHPBD, mkReg)
	disk := run(cluster.SwapDisk, nil)
	fmt.Printf("  swap to remote memory (HPBD/InfiniBand): %v\n", hpbd)
	fmt.Printf("  swap to local disk:                      %v\n", disk)
	fmt.Printf("  remote memory is %.1fx faster\n", float64(disk)/float64(hpbd))

	if traced != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := traced.Tracer().WriteJSON(f); err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("  wrote %s (%d events; open at chrome://tracing)\n",
			*tracePath, traced.Tracer().Len())
	}
}
