// Resilient: the reliability and elasticity extensions together. A node
// swaps to a mirrored pair of memory servers; one server dies mid-run and
// paging continues from the survivor. Then the dynamic-memory manager
// demonstrates growing swap online from a cluster pool when space runs
// low.
package main

import (
	"fmt"
	"log"

	"hpbd/internal/blockdev"
	"hpbd/internal/dynswap"
	"hpbd/internal/hpbd"
	"hpbd/internal/ib"
	"hpbd/internal/mirror"
	"hpbd/internal/sim"
	"hpbd/internal/vm"
)

func mirrorDemo() {
	env := sim.NewEnv()
	fabric := ib.NewFabric(env, ib.DefaultConfig())
	var servers [2]*hpbd.Server
	var devs [2]*hpbd.Device
	for i := 0; i < 2; i++ {
		servers[i] = hpbd.NewServer(fabric, fmt.Sprintf("mem%d", i), hpbd.DefaultServerConfig(32<<20))
		devs[i] = hpbd.NewDevice(fabric, fmt.Sprintf("hpbd%d", i), hpbd.DefaultClientConfig())
		if err := devs[i].ConnectServer(servers[i], 32<<20); err != nil {
			log.Fatal(err)
		}
	}
	md, err := mirror.New(env, "md0", devs[0], devs[1])
	if err != nil {
		log.Fatal(err)
	}
	cfg := vm.DefaultConfig(8 << 20)
	sys := vm.NewSystem(env, cfg)
	sys.AddSwap(blockdev.NewQueue(env, cfg.Host, md), 0)

	as := sys.NewAddressSpace("app", 4096) // 16 MB over 8 MB memory
	env.Go("app", func(p *sim.Proc) {
		for i := 0; i < 4096; i++ {
			if err := as.Touch(p, i, true); err != nil {
				log.Fatalf("touch: %v", err)
			}
			if i == 2500 {
				fmt.Println("  !! memory server mem0 crashes")
				servers[0].DropClients()
			}
		}
		// Re-read everything: early pages come back from the survivor.
		for i := 0; i < 4096; i++ {
			if err := as.Touch(p, i, false); err != nil {
				log.Fatalf("re-touch after failover: %v", err)
			}
		}
		fmt.Printf("  all %d pages intact after failover (degraded=%v, failovers=%d)\n",
			4096, md.Degraded(), md.Stats().ReadFailovers)
	})
	env.Run()
	env.Close()
}

func dynswapDemo() {
	env := sim.NewEnv()
	fabric := ib.NewFabric(env, ib.DefaultConfig())
	cfg := vm.DefaultConfig(4 << 20)
	sys := vm.NewSystem(env, cfg)

	// Tiny initial swap; a pool of idle-memory servers stands by.
	srv0 := hpbd.NewServer(fabric, "mem0", hpbd.DefaultServerConfig(2<<20))
	dev0 := hpbd.NewDevice(fabric, "hpbd0", hpbd.DefaultClientConfig())
	if err := dev0.ConnectServer(srv0, 2<<20); err != nil {
		log.Fatal(err)
	}
	sys.AddSwap(blockdev.NewQueue(env, cfg.Host, dev0), 0)

	pool := dynswap.NewPool()
	for i := 0; i < 3; i++ {
		pool.Add(hpbd.NewServer(fabric, fmt.Sprintf("idle%d", i), hpbd.DefaultServerConfig(8<<20)))
	}
	mgr, err := dynswap.New(sys, pool, dynswap.Config{
		Fabric: fabric, Unit: 2 << 20, LowPages: 64, Host: cfg.Host,
	})
	if err != nil {
		log.Fatal(err)
	}

	as := sys.NewAddressSpace("app", 4096) // 16 MB through 4 MB memory + 2 MB swap
	env.Go("app", func(p *sim.Proc) {
		for i := 0; i < 4096; i++ {
			if err := as.Touch(p, i, true); err != nil {
				log.Fatalf("touch: %v (growth failed?)", err)
			}
		}
		st := mgr.Stats()
		fmt.Printf("  16 MB workload completed through 2 MB initial swap: %d leases, %d MB grown\n",
			st.Leases, st.BytesLeased>>20)
	})
	env.Run()
	env.Close()
}

func main() {
	fmt.Println("mirrored swap surviving a memory-server crash:")
	mirrorDemo()
	fmt.Println("dynamic swap growth from cluster idle memory:")
	dynswapDemo()
}
