// Multiserver: the paper's Figures 9 and 10. Two quick sort instances run
// concurrently on one node whose swap area is distributed across several
// memory servers in blocked (non-striped) ranges; then a single sort
// sweeps the server count from 1 to 16 to show the HCA QP-scaling effect.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hpbd/internal/cluster"
	"hpbd/internal/sim"
	"hpbd/internal/workload"
)

const elems = 4 << 20 // 16 MB per instance

func twoSorts(mem int64, servers int) [2]sim.Duration {
	env := sim.NewEnv()
	node, err := cluster.Build(env, cluster.Config{
		MemBytes:  mem,
		Swap:      cluster.SwapHPBD,
		SwapBytes: 64 << 20,
		Servers:   servers,
	})
	if err != nil {
		log.Fatalf("build node: %v", err)
	}
	var times [2]sim.Duration
	for k := 0; k < 2; k++ {
		k := k
		q := workload.NewQuicksort(node.VM, fmt.Sprintf("qsort%d", k), elems,
			rand.New(rand.NewSource(int64(k+1))))
		env.Go(fmt.Sprintf("inst%d", k), func(p *sim.Proc) {
			node.Ready.Wait(p)
			t0 := p.Now()
			if err := q.Run(p); err != nil {
				log.Fatalf("qsort %d: %v", k, err)
			}
			times[k] = p.Now().Sub(t0)
		})
	}
	env.Run()
	env.Close()
	return times
}

func oneSortServers(servers int) sim.Duration {
	env := sim.NewEnv()
	node, err := cluster.Build(env, cluster.Config{
		MemBytes:  16 << 20,
		Swap:      cluster.SwapHPBD,
		SwapBytes: 32 << 20,
		Servers:   servers,
	})
	if err != nil {
		log.Fatalf("build node: %v", err)
	}
	q := workload.NewQuicksort(node.VM, "qsort", 8<<20, rand.New(rand.NewSource(7)))
	var elapsed sim.Duration
	env.Go("qsort", func(p *sim.Proc) {
		node.Ready.Wait(p)
		t0 := p.Now()
		if err := q.Run(p); err != nil {
			log.Fatalf("qsort: %v", err)
		}
		elapsed = p.Now().Sub(t0)
	})
	env.Run()
	env.Close()
	return elapsed
}

func main() {
	fmt.Println("two concurrent sorts (16 MB each) across 4 memory servers:")
	for _, mem := range []int64{40 << 20, 16 << 20, 8 << 20} {
		t := twoSorts(mem, 4)
		fmt.Printf("  local memory %2d MB: inst0 %v, inst1 %v\n", mem>>20, t[0], t[1])
	}
	fmt.Println("\none sort (32 MB) with the swap area over N servers:")
	for _, n := range []int{1, 2, 4, 8, 16} {
		fmt.Printf("  %2d servers: %v\n", n, oneSortServers(n))
	}
}
