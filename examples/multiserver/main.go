// Multiserver: the paper's Figures 9 and 10, plus fleet resizing. Two
// quick sort instances run concurrently on one node whose swap area is
// distributed across several memory servers in blocked (non-striped)
// ranges; a single sort sweeps the server count from 1 to 16 to show the
// HCA QP-scaling effect; and an elastic node grows its fleet mid-sort
// and decommissions a founder, with the placement directory printed at
// each step.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"hpbd/internal/cluster"
	"hpbd/internal/sim"
	"hpbd/internal/workload"
)

const elems = 4 << 20 // 16 MB per instance

func twoSorts(mem int64, servers int) [2]sim.Duration {
	env := sim.NewEnv()
	node, err := cluster.Build(env, cluster.Config{
		MemBytes:  mem,
		Swap:      cluster.SwapHPBD,
		SwapBytes: 64 << 20,
		Servers:   servers,
	})
	if err != nil {
		log.Fatalf("build node: %v", err)
	}
	var times [2]sim.Duration
	for k := 0; k < 2; k++ {
		k := k
		q := workload.NewQuicksort(node.VM, fmt.Sprintf("qsort%d", k), elems,
			rand.New(rand.NewSource(int64(k+1))))
		env.Go(fmt.Sprintf("inst%d", k), func(p *sim.Proc) {
			node.Ready.Wait(p)
			t0 := p.Now()
			if err := q.Run(p); err != nil {
				log.Fatalf("qsort %d: %v", k, err)
			}
			times[k] = p.Now().Sub(t0)
		})
	}
	env.Run()
	env.Close()
	return times
}

func oneSortServers(servers int) sim.Duration {
	env := sim.NewEnv()
	node, err := cluster.Build(env, cluster.Config{
		MemBytes:  16 << 20,
		Swap:      cluster.SwapHPBD,
		SwapBytes: 32 << 20,
		Servers:   servers,
	})
	if err != nil {
		log.Fatalf("build node: %v", err)
	}
	q := workload.NewQuicksort(node.VM, "qsort", 8<<20, rand.New(rand.NewSource(7)))
	var elapsed sim.Duration
	env.Go("qsort", func(p *sim.Proc) {
		node.Ready.Wait(p)
		t0 := p.Now()
		if err := q.Run(p); err != nil {
			log.Fatalf("qsort: %v", err)
		}
		elapsed = p.Now().Sub(t0)
	})
	env.Run()
	env.Close()
	return elapsed
}

// resizeFleet runs a sort on an elastic two-server node, grows the
// fleet mid-run, then drains and removes a founding server once the
// sort is done — the full resize lifecycle with swap traffic flowing.
func resizeFleet() {
	env := sim.NewEnv()
	node, err := cluster.Build(env, cluster.Config{
		MemBytes:  16 << 20,
		Swap:      cluster.SwapHPBD,
		SwapBytes: 32 << 20,
		Servers:   2,
		Elastic:   true,
	})
	if err != nil {
		log.Fatalf("build node: %v", err)
	}
	q := workload.NewQuicksort(node.VM, "qsort", 8<<20, rand.New(rand.NewSource(7)))
	env.Go("qsort", func(p *sim.Proc) {
		node.Ready.Wait(p)
		t0 := p.Now()
		if err := q.Run(p); err != nil {
			log.Fatalf("qsort: %v", err)
		}
		fmt.Printf("  sort finished in %v (fleet grew mid-run)\n", p.Now().Sub(t0))
	})
	env.Go("membership", func(p *sim.Proc) {
		node.Ready.Wait(p)
		p.Sleep(20 * sim.Millisecond) // let the sort start swapping
		t0 := p.Now()
		// The newcomer is twice a founder's size: big enough that its
		// leftover headroom can absorb a founder's ranges when we
		// decommission mem0 below (founders boot fully allocated).
		if _, err := node.GrowFleet(p, 32<<20); err != nil {
			log.Fatalf("grow fleet: %v", err)
		}
		fmt.Printf("  grew to 3 servers, rebalanced in %v\n", p.Now().Sub(t0))
		t0 = p.Now()
		if err := node.Decommission(p, "mem0"); err != nil {
			log.Fatalf("decommission mem0: %v", err)
		}
		fmt.Printf("  drained and removed mem0 in %v\n", p.Now().Sub(t0))
	})
	env.Run()
	env.Close()
	fmt.Println("  final placement directory:")
	node.HPBD.Directory().Dump(os.Stdout)
}

func main() {
	fmt.Println("two concurrent sorts (16 MB each) across 4 memory servers:")
	for _, mem := range []int64{40 << 20, 16 << 20, 8 << 20} {
		t := twoSorts(mem, 4)
		fmt.Printf("  local memory %2d MB: inst0 %v, inst1 %v\n", mem>>20, t[0], t[1])
	}
	fmt.Println("\none sort (32 MB) with the swap area over N servers:")
	for _, n := range []int{1, 2, 4, 8, 16} {
		fmt.Printf("  %2d servers: %v\n", n, oneSortServers(n))
	}
	fmt.Println("\nresizing the fleet under a running sort (2 -> 3 -> 2 servers):")
	resizeFleet()
}
