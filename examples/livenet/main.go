// Livenet: the real-network HPBD. Starts an actual memory server on
// loopback TCP (the same daemon cmd/hpbd-server runs), attaches a client
// block device, and pushes pages through it with pipelined requests —
// remote memory you can deploy today, no simulation involved.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"math/rand"
	"time"

	"hpbd/internal/netblock"
)

func main() {
	srv, err := netblock.Serve("127.0.0.1:0", netblock.ServerConfig{
		CapacityBytes: 256 << 20,
		Logger:        log.New(io.Discard, "", 0),
	})
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	defer srv.Close()
	fmt.Printf("memory server exporting 256 MiB on %s\n", srv.Addr())

	c, err := netblock.Dial(srv.Addr(), 64<<20, 16)
	if err != nil {
		log.Fatalf("attach: %v", err)
	}
	defer c.Close()
	fmt.Printf("attached a 64 MiB remote-memory block device\n")

	// Swap-out: stream 64 MiB of pages with 16 requests on the wire.
	buf := make([]byte, 128*1024)
	rand.New(rand.NewSource(1)).Read(buf)
	start := time.Now() //hpbd:allow walltime -- live demo measures the real TCP data path
	var waits []func() error
	for off := int64(0); off < c.Size(); off += int64(len(buf)) {
		w, err := c.WriteAsync(buf, off)
		if err != nil {
			log.Fatalf("write at %d: %v", off, err)
		}
		waits = append(waits, w)
	}
	for _, w := range waits {
		if err := w(); err != nil {
			log.Fatalf("write wait: %v", err)
		}
	}
	mb := float64(c.Size()) / 1e6
	fmt.Printf("swap-out: %.0f MB in %v (%.0f MB/s)\n", mb, time.Since(start).Round(time.Millisecond), mb/time.Since(start).Seconds()) //hpbd:allow walltime -- live demo measures the real TCP data path

	// Swap-in with verification.
	start = time.Now() //hpbd:allow walltime -- live demo measures the real TCP data path
	got := make([]byte, len(buf))
	for off := int64(0); off < c.Size(); off += int64(len(buf)) {
		if _, err := c.ReadAt(got, off); err != nil {
			log.Fatalf("read at %d: %v", off, err)
		}
		if !bytes.Equal(got, buf) {
			log.Fatalf("data corrupted at %d", off)
		}
	}
	fmt.Printf("swap-in:  %.0f MB in %v (%.0f MB/s), all pages verified\n", mb, time.Since(start).Round(time.Millisecond), mb/time.Since(start).Seconds()) //hpbd:allow walltime -- live demo measures the real TCP data path
}
