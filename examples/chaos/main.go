// Chaos: kill a memory server mid-sort and finish anyway. Two real
// hpbd-server instances (in-process, over loopback TCP) back a mirrored
// scratch store for an out-of-core sort; once half the runs have been
// written, the primary server is killed. Writes degrade to the survivor,
// reads fail over, and the sort completes with the output verified —
// slower, but correct.
//
// This is the explicit-I/O twin of the swap-path recovery stack: the
// simulated chaos tier (internal/faultsim + the chaos tests) proves the
// same property for transparent paging.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"hpbd/internal/netblock"
	"hpbd/internal/oocsort"
)

// mirrorStore is a minimal RAID-1 oocsort.Store over two netblock
// clients: writes go to both replicas, reads prefer the primary and fail
// over to the secondary. A replica that errors is marked down and never
// retried — the survivor carries the rest of the sort.
type mirrorStore struct {
	mu        sync.Mutex
	replica   [2]*netblock.Client
	down      [2]bool
	failovers int
	written   int64
	onWrite   func(total int64) // called with cumulative bytes written
}

func (m *mirrorStore) Size() int64 { return m.replica[0].Size() }

func (m *mirrorStore) WriteAt(p []byte, off int64) (int, error) {
	ok := 0
	for i, c := range m.replica {
		m.mu.Lock()
		dead := m.down[i]
		m.mu.Unlock()
		if dead {
			continue
		}
		if _, err := c.WriteAt(p, off); err != nil {
			m.markDown(i, "write", err)
			continue
		}
		ok++
	}
	if ok == 0 {
		return 0, fmt.Errorf("mirror: both replicas lost")
	}
	m.mu.Lock()
	m.written += int64(len(p))
	total := m.written
	cb := m.onWrite
	m.mu.Unlock()
	if cb != nil {
		cb(total)
	}
	return len(p), nil
}

func (m *mirrorStore) ReadAt(p []byte, off int64) (int, error) {
	for i, c := range m.replica {
		m.mu.Lock()
		dead := m.down[i]
		m.mu.Unlock()
		if dead {
			continue
		}
		n, err := c.ReadAt(p, off)
		if err == nil {
			return n, nil
		}
		m.markDown(i, "read", err)
		m.mu.Lock()
		m.failovers++
		m.mu.Unlock()
	}
	return 0, fmt.Errorf("mirror: both replicas lost")
}

func (m *mirrorStore) markDown(i int, op string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down[i] {
		return
	}
	m.down[i] = true
	fmt.Printf("  !! replica %d lost during %s (%v) — continuing degraded\n", i, op, err)
}

func main() {
	const (
		keys    = 4_000_000
		dataLen = int64(keys) * 4
		memMB   = int64(4) // forces many runs through the store
	)
	storeBytes := dataLen + (8 << 20)

	// Two real memory servers over loopback, as cmd/hpbd-server runs them.
	var servers [2]*netblock.Server
	ms := &mirrorStore{}
	for i := range servers {
		srv, err := netblock.Serve("127.0.0.1:0", netblock.ServerConfig{CapacityBytes: storeBytes + (8 << 20)})
		if err != nil {
			log.Fatalf("serve replica %d: %v", i, err)
		}
		servers[i] = srv
		c, err := netblock.Dial(srv.Addr(), storeBytes, 16)
		if err != nil {
			log.Fatalf("dial replica %d: %v", i, err)
		}
		defer c.Close()
		ms.replica[i] = c
		fmt.Printf("replica %d: hpbd-server at %s\n", i, srv.Addr())
	}

	// The kill switch: once half the run data has been written, shoot the
	// primary server in the head. The in-flight request fails, the store
	// marks the replica down, and everything after is served by replica 1.
	var killOnce sync.Once
	ms.onWrite = func(total int64) {
		if total < dataLen/2 {
			return
		}
		killOnce.Do(func() {
			fmt.Printf("  .. %d MB written: killing the primary server mid-sort\n", total>>20)
			servers[0].Close()
		})
	}

	rnd := rand.New(rand.NewSource(1))
	input := make([]byte, dataLen)
	for i := 0; i < keys; i++ {
		binary.LittleEndian.PutUint32(input[i*4:], rnd.Uint32())
	}

	fmt.Printf("sorting %d keys (%d MiB) with a %d MiB budget, mirrored scratch\n",
		keys, dataLen>>20, memMB)
	var out bytes.Buffer
	out.Grow(int(dataLen))
	start := time.Now() //hpbd:allow walltime -- times a real out-of-core sort on the host
	st, err := oocsort.Sort(&out, bytes.NewReader(input), memMB<<20, ms)
	if err != nil {
		log.Fatalf("oocsort: %v", err)
	}
	elapsed := time.Since(start) //hpbd:allow walltime -- times a real out-of-core sort on the host

	res := out.Bytes()
	var prev uint32
	for i := 0; i < keys; i++ {
		k := binary.LittleEndian.Uint32(res[i*4:])
		if k < prev {
			log.Fatalf("output unsorted at key %d — corruption after failover", i)
		}
		prev = k
	}
	fmt.Printf("sorted and verified in %v despite the crash: %d runs, %.0f MB to store, %.0f MB back (%.1f Mkeys/s, degraded)\n",
		elapsed.Round(time.Millisecond), st.Runs,
		float64(st.BytesToStore)/1e6, float64(st.BytesFromStore)/1e6,
		float64(keys)/1e6/elapsed.Seconds())
	servers[1].Close()
}
