package hpbd_test

import (
	"testing"
	"time"

	"hpbd/internal/cluster"
	"hpbd/internal/experiments"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
	"hpbd/internal/workload"
)

// The benchmarks regenerate the paper's tables and figures, one benchmark
// per figure, at 1/64 of the paper's sizes so a full -bench=. pass stays
// in CI territory (cmd/hpbd-bench runs the 1/32 default and prints the
// full rows). Reported metrics are the virtual-time results: "<row>-s" is
// a configuration's execution time in simulated seconds, and the *_ratio
// metrics are the paper's headline comparisons.
var benchCfg = experiments.Config{Scale: 64, Seed: 1}

// reportRows turns a result's rows into benchmark metrics.
func reportRows(b *testing.B, res *experiments.Result) {
	b.Helper()
	for _, row := range res.Rows {
		if res.Unit != "" {
			b.ReportMetric(row.Value, row.Label+"-"+res.Unit)
		}
	}
}

func reportRatio(b *testing.B, res *experiments.Result, name, num, den string) {
	b.Helper()
	r, err := res.Ratio(num, den)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r, name)
}

// BenchmarkFig1Latency regenerates the latency comparison of memcpy, RDMA
// write, IPoIB and GigE up to 128 K (paper Figure 1).
func BenchmarkFig1Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig1()
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkFig3Registration regenerates the registration-vs-memcpy cost
// comparison (paper Figure 3).
func BenchmarkFig3Registration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3()
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkFig5Testswap regenerates the testswap execution-time
// comparison across local memory, HPBD, NBD-IPoIB, NBD-GigE and disk
// (paper Figure 5).
func BenchmarkFig5Testswap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
			reportRatio(b, res, "hpbd/local_ratio", "hpbd", "local-memory")
			reportRatio(b, res, "disk/hpbd_ratio", "disk", "hpbd")
			reportRatio(b, res, "gige/hpbd_ratio", "nbd-gige", "hpbd")
			reportRatio(b, res, "ipoib/hpbd_ratio", "nbd-ipoib", "hpbd")
		}
	}
}

// BenchmarkFig6RequestSizes regenerates the testswap request-size profile
// (paper Figure 6): the "average-KB" metric should sit near the paper's
// ~120 K.
func BenchmarkFig6RequestSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, row := range res.Rows {
				if row.Label == "average" {
					b.ReportMetric(row.Value, "avg-request-KB")
				}
			}
		}
	}
}

// BenchmarkFig7Quicksort regenerates the quick sort comparison (paper
// Figure 7).
func BenchmarkFig7Quicksort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
			reportRatio(b, res, "hpbd/local_ratio", "hpbd", "local-memory")
			reportRatio(b, res, "disk/hpbd_ratio", "disk", "hpbd")
			reportRatio(b, res, "gige/hpbd_ratio", "nbd-gige", "hpbd")
			reportRatio(b, res, "ipoib/hpbd_ratio", "nbd-ipoib", "hpbd")
		}
	}
}

// BenchmarkFig8Barnes regenerates the Barnes comparison (paper Figure 8).
func BenchmarkFig8Barnes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
			reportRatio(b, res, "hpbd/local_ratio", "hpbd", "local-memory")
		}
	}
}

// BenchmarkFig9Concurrent regenerates the two-concurrent-quick-sorts
// experiment (paper Figure 9).
func BenchmarkFig9Concurrent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
			reportRatio(b, res, "hpbd50/local_ratio", "hpbd-50%", "local-memory")
			reportRatio(b, res, "hpbd25/local_ratio", "hpbd-25%", "local-memory")
			reportRatio(b, res, "disk/local_ratio", "disk-25%", "local-memory")
		}
	}
}

// BenchmarkFig10Servers regenerates the 1-16 memory server sweep (paper
// Figure 10).
func BenchmarkFig10Servers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
			reportRatio(b, res, "16/1_ratio", "16-servers", "1-servers")
		}
	}
}

// BenchmarkAblationRegistration compares the pool-copy design against
// register-on-the-fly (the paper's §4.1/Fig. 3 argument).
func BenchmarkAblationRegistration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationRegistration(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
			reportRatio(b, res, "fly/pool_ratio", "register-fly", "pool-copy")
		}
	}
}

// BenchmarkAblationReceiver compares the event-driven receiver against
// busy polling (§4.2.3).
func BenchmarkAblationReceiver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationReceiver(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkAblationStriping compares blocked vs striped multi-server
// layouts (§4.2.5).
func BenchmarkAblationStriping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationStriping(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkAblationPoolSize sweeps the registration pool size (§4.2.2).
func BenchmarkAblationPoolSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPoolSize(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkAblationHybrid compares copy-into-pool against the hybrid
// copy/register data path across request sizes (the PR-3 extension of the
// §4.1 argument).
func BenchmarkAblationHybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationHybrid(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
			reportRatio(b, res, "hybrid/copy_128K_ratio", "hybrid/128K", "copy/128K")
		}
	}
}

// BenchmarkAblationDoorbell compares per-WQE posts against chained
// doorbell submission under a small-write burst.
func BenchmarkAblationDoorbell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationDoorbell(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
			reportRatio(b, res, "batched/unbatched_ratio", "batch-8", "batch-1")
		}
	}
}

// telemetryRun executes one HPBD testswap with metrics-only telemetry
// (the always-on default) or with span tracing enabled, returning the
// wall-clock cost of the simulation.
func telemetryRun(b *testing.B, tracing bool) time.Duration {
	b.Helper()
	env := sim.NewEnv()
	reg := telemetry.New(env)
	if tracing {
		reg.EnableTracing()
	}
	node, err := cluster.Build(env, cluster.Config{
		MemBytes:  8 << 20,
		Swap:      cluster.SwapHPBD,
		SwapBytes: 16 << 20,
		Servers:   2,
		Telemetry: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := workload.NewTestswap(node.VM, 16<<20)
	env.Go("testswap", func(p *sim.Proc) {
		node.Ready.Wait(p)
		if err := ts.Run(p); err != nil {
			b.Errorf("testswap: %v", err)
		}
	})
	start := time.Now()
	env.Run()
	elapsed := time.Since(start)
	env.Close()
	if tracing && reg.Tracer().Len() == 0 {
		b.Fatal("tracing run recorded no events")
	}
	return elapsed
}

// BenchmarkTelemetryOverhead measures what instrumentation costs the
// simulator in wall-clock time: the always-on metrics registry against
// the same run with full span tracing enabled. The tracing/metrics_ratio
// metric is the overhead of tracing; metrics themselves are part of both
// runs because they are never disabled (they are nil-safe counters with
// no sim-time cost, so the hot path pays only pointer increments).
func BenchmarkTelemetryOverhead(b *testing.B) {
	// Warm up once so first-run allocation noise is excluded.
	telemetryRun(b, false)
	telemetryRun(b, true)
	var base, traced time.Duration
	for i := 0; i < b.N; i++ {
		base += telemetryRun(b, false)
		traced += telemetryRun(b, true)
	}
	if base > 0 {
		b.ReportMetric(float64(traced)/float64(base), "tracing/metrics_ratio")
	}
}

// BenchmarkAblationODP compares pinned registration against on-demand
// paging on the register-transfer-deregister cycle a cache-missing large
// request pays.
func BenchmarkAblationODP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationODP(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
			reportRatio(b, res, "odp/pinned_128K_ratio", "odp/128K", "pinned/128K")
		}
	}
}

// BenchmarkAblationMerge compares per-request WR issue against
// adjacent-WR merging under a paced swap-out backlog.
func BenchmarkAblationMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationMerge(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
			reportRatio(b, res, "merge8/off_ratio", "merge-8", "merge-off")
		}
	}
}

// BenchmarkAblationCrossover compares the static Fig. 3 hybrid threshold
// against the adaptive crossover controller on a 64K request stream.
func BenchmarkAblationCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationCrossover(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
			reportRatio(b, res, "adaptive/static_ratio", "adaptive", "static")
		}
	}
}
