// Package dynswap implements the paper's stated future work: utilizing
// cluster-wide idle memory "in a dynamic and cooperative manner". A Pool
// tracks the memory servers on the fabric and how much each has left; a
// Manager watches a node's VM and, when free swap runs low, leases a new
// area from the least-loaded server and attaches it as an additional swap
// device — online, while applications keep paging.
package dynswap

import (
	"errors"
	"fmt"

	"hpbd/internal/blockdev"
	"hpbd/internal/hpbd"
	"hpbd/internal/ib"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/vm"
)

// ErrNoMemory reports that no server in the pool can host a lease.
var ErrNoMemory = errors.New("dynswap: no server has enough free memory")

// Pool is the cluster's directory of memory servers.
type Pool struct {
	servers []*hpbd.Server
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Add registers a memory server.
func (p *Pool) Add(srv *hpbd.Server) { p.servers = append(p.servers, srv) }

// Servers returns the registered server count.
func (p *Pool) Servers() int { return len(p.servers) }

// TotalFree sums the exportable memory across the pool.
func (p *Pool) TotalFree() int64 {
	var n int64
	for _, s := range p.servers {
		n += s.FreeBytes()
	}
	return n
}

// LeaseBest returns the server with the most free memory that can host
// size bytes (cooperative balancing: spread leases across idle memory).
func (p *Pool) LeaseBest(size int64) (*hpbd.Server, error) {
	var best *hpbd.Server
	for _, s := range p.servers {
		if s.FreeBytes() < size {
			continue
		}
		if best == nil || s.FreeBytes() > best.FreeBytes() {
			best = s
		}
	}
	if best == nil {
		return nil, ErrNoMemory
	}
	return best, nil
}

// Config parameterizes a Manager.
type Config struct {
	// Fabric is the InfiniBand network the leases run over.
	Fabric *ib.Fabric
	// Unit is the lease granularity (bytes of swap added per lease).
	Unit int64
	// LowPages triggers growth when free swap slots fall below it.
	LowPages int
	// MaxLeases bounds growth (0: unlimited).
	MaxLeases int
	// Client configures the per-lease HPBD client device.
	Client hpbd.ClientConfig
	// Host is the node's cost model.
	Host netmodel.HostModel
}

// Stats counts manager activity.
type Stats struct {
	Leases       int
	FailedLeases int
	BytesLeased  int64
}

// Manager grows a node's swap space on demand.
type Manager struct {
	env  *sim.Env
	vm   *vm.System
	pool *Pool
	cfg  Config

	wake    *sim.WaitQueue
	devices []*hpbd.Device
	stats   Stats
}

// New attaches a manager to vmSys and starts its lease process. The VM's
// low-swap hook drives it, so an idle manager costs nothing.
func New(vmSys *vm.System, pool *Pool, cfg Config) (*Manager, error) {
	if cfg.Fabric == nil || cfg.Unit <= 0 {
		return nil, errors.New("dynswap: Fabric and a positive Unit are required")
	}
	if cfg.Client.PoolBytes == 0 {
		cfg.Client = hpbd.DefaultClientConfig()
	}
	m := &Manager{
		env:  vmSys.Env(),
		vm:   vmSys,
		pool: pool,
		cfg:  cfg,
		wake: sim.NewWaitQueue(vmSys.Env()),
	}
	m.env.Go("dynswap-manager", m.loop)
	vmSys.SetLowSwapHook(cfg.LowPages, m.notify)
	return m, nil
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// Devices returns the leased HPBD devices.
func (m *Manager) Devices() []*hpbd.Device { return m.devices }

func (m *Manager) notify() { m.wake.WakeAll() }

// loop parks until the VM signals low swap, then leases one unit and
// re-arms the hook.
func (m *Manager) loop(p *sim.Proc) {
	for {
		m.wake.Wait(p)
		if m.cfg.MaxLeases > 0 && m.stats.Leases >= m.cfg.MaxLeases {
			// Fully grown: leave the hook disarmed.
			continue
		}
		if err := m.lease(p); err != nil {
			m.stats.FailedLeases++
		}
		// Re-arm regardless: a failed lease may succeed later when a
		// server frees capacity.
		m.vm.SetLowSwapHook(m.cfg.LowPages, m.notify)
	}
}

// lease attaches one new swap area from the pool.
func (m *Manager) lease(p *sim.Proc) error {
	srv, err := m.pool.LeaseBest(m.cfg.Unit)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("hpbd-dyn%d", m.stats.Leases)
	dev := hpbd.NewDevice(m.cfg.Fabric, name, m.cfg.Client)
	if err := dev.ConnectServer(srv, m.cfg.Unit); err != nil {
		return err
	}
	q := blockdev.NewQueue(m.env, m.cfg.Host, dev)
	m.vm.AddSwap(q, 0)
	m.devices = append(m.devices, dev)
	m.stats.Leases++
	m.stats.BytesLeased += m.cfg.Unit
	return nil
}
