package dynswap

import (
	"fmt"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/hpbd"
	"hpbd/internal/ib"
	"hpbd/internal/sim"
	"hpbd/internal/vm"
)

// rig: a VM with a small initial HPBD swap area, a pool of extra memory
// servers, and a manager.
type rig struct {
	env     *sim.Env
	fabric  *ib.Fabric
	sys     *vm.System
	pool    *Pool
	manager *Manager
}

func newRig(t *testing.T, memBytes, initialSwap, unit int64, poolServers int, serverBytes int64, maxLeases int) *rig {
	t.Helper()
	env := sim.NewEnv()
	fabric := ib.NewFabric(env, ib.DefaultConfig())
	cfg := vm.DefaultConfig(memBytes)
	sys := vm.NewSystem(env, cfg)

	// Initial fixed swap.
	srv0 := hpbd.NewServer(fabric, "mem0", hpbd.DefaultServerConfig(initialSwap))
	dev0 := hpbd.NewDevice(fabric, "hpbd0", hpbd.DefaultClientConfig())
	if err := dev0.ConnectServer(srv0, initialSwap); err != nil {
		t.Fatalf("ConnectServer: %v", err)
	}
	sys.AddSwap(blockdev.NewQueue(env, cfg.Host, dev0), 0)

	pool := NewPool()
	for i := 0; i < poolServers; i++ {
		pool.Add(hpbd.NewServer(fabric, fmt.Sprintf("pool%d", i), hpbd.DefaultServerConfig(serverBytes)))
	}
	mgr, err := New(sys, pool, Config{
		Fabric:    fabric,
		Unit:      unit,
		LowPages:  64,
		MaxLeases: maxLeases,
		Host:      cfg.Host,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &rig{env: env, fabric: fabric, sys: sys, pool: pool, manager: mgr}
}

// fill touches pages sequentially, requiring swap for the overflow.
func (r *rig) fill(t *testing.T, pages int) error {
	t.Helper()
	as := r.sys.NewAddressSpace("w", pages)
	var ferr error
	r.env.Go("fill", func(p *sim.Proc) {
		for i := 0; i < pages; i++ {
			if err := as.Touch(p, i, true); err != nil {
				ferr = err
				return
			}
		}
	})
	r.env.Run()
	r.env.Close()
	return ferr
}

func TestGrowsUnderPressure(t *testing.T) {
	// 2 MB memory, 1 MB initial swap, workload 8 MB: needs ~5 MB more
	// swap, available as 1 MB leases from the pool.
	r := newRig(t, 2<<20, 1<<20, 1<<20, 3, 4<<20, 0)
	if err := r.fill(t, 2048); err != nil {
		t.Fatalf("fill with growth available: %v", err)
	}
	st := r.manager.Stats()
	if st.Leases < 4 {
		t.Errorf("leases = %d, want >= 4", st.Leases)
	}
	if st.BytesLeased < 4<<20 {
		t.Errorf("bytes leased = %d", st.BytesLeased)
	}
}

func TestWithoutGrowthOOMs(t *testing.T) {
	// Same pressure, empty pool: the workload must OOM.
	r := newRig(t, 2<<20, 1<<20, 1<<20, 0, 0, 0)
	err := r.fill(t, 2048)
	if err != vm.ErrOutOfMemory {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
	if r.manager.Stats().FailedLeases == 0 {
		t.Error("no failed leases recorded despite empty pool")
	}
}

func TestMaxLeasesBoundsGrowth(t *testing.T) {
	r := newRig(t, 2<<20, 1<<20, 1<<20, 8, 4<<20, 2)
	err := r.fill(t, 2048) // needs ~4 extra MB but only 2 allowed
	if err != vm.ErrOutOfMemory {
		t.Errorf("err = %v, want ErrOutOfMemory under the lease cap", err)
	}
	if got := r.manager.Stats().Leases; got != 2 {
		t.Errorf("leases = %d, want exactly 2", got)
	}
}

func TestLeaseBestPicksMostFree(t *testing.T) {
	env := sim.NewEnv()
	fabric := ib.NewFabric(env, ib.DefaultConfig())
	pool := NewPool()
	small := hpbd.NewServer(fabric, "small", hpbd.DefaultServerConfig(2<<20))
	big := hpbd.NewServer(fabric, "big", hpbd.DefaultServerConfig(8<<20))
	pool.Add(small)
	pool.Add(big)
	srv, err := pool.LeaseBest(1 << 20)
	if err != nil || srv != big {
		t.Errorf("LeaseBest = %v, %v; want the big server", srv, err)
	}
	if _, err := pool.LeaseBest(16 << 20); err != ErrNoMemory {
		t.Errorf("oversized lease err = %v", err)
	}
	if pool.Servers() != 2 || pool.TotalFree() != 10<<20 {
		t.Errorf("pool accounting wrong: %d servers, %d free", pool.Servers(), pool.TotalFree())
	}
	env.Close()
}

func TestLeasesSpreadAcrossServers(t *testing.T) {
	r := newRig(t, 2<<20, 1<<20, 1<<20, 4, 2<<20, 0)
	if err := r.fill(t, 2048); err != nil {
		t.Fatalf("fill: %v", err)
	}
	// 4+ leases of 1 MB against 4 servers of 2 MB: balancing must use at
	// least 3 distinct servers.
	used := 0
	for _, s := range r.pool.servers {
		if s.FreeBytes() < 2<<20 {
			used++
		}
	}
	if used < 3 {
		t.Errorf("leases concentrated on %d servers, want spread >= 3", used)
	}
}

func TestBadConfigRejected(t *testing.T) {
	env := sim.NewEnv()
	sys := vm.NewSystem(env, vm.DefaultConfig(1<<20))
	if _, err := New(sys, NewPool(), Config{}); err == nil {
		t.Error("missing fabric/unit accepted")
	}
	env.Close()
}
