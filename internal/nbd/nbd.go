// Package nbd implements the paper's baseline: a Linux-2.4-style Network
// Block Device over TCP (run over the GigE or IPoIB link models). As the
// paper notes, NBD uses blocking-mode transfer for each request and
// response, a single remote server per device, and pays the full TCP/IP
// stack cost on both sides — the properties that put it behind HPBD in
// Figures 5 and 7-9.
package nbd

import (
	"errors"

	"hpbd/internal/blockdev"
	"hpbd/internal/netmodel"
	"hpbd/internal/ramdisk"
	"hpbd/internal/sim"
	"hpbd/internal/tcpip"
	"hpbd/internal/telemetry"
	"hpbd/internal/wire"
)

// ErrDisconnected reports a lost server connection.
var ErrDisconnected = errors.New("nbd: server disconnected")

// Port is the NBD server's listening port.
const Port = 10809

// ServerStats counts server activity.
type ServerStats struct {
	Requests int64
	Writes   int64
	Reads    int64
}

// Server is a user-space NBD server backed by a RamDisk.
type Server struct {
	env   *sim.Env
	host  *tcpip.Host
	store *ramdisk.RamDisk
	stats ServerStats
	tel   *telemetry.Registry
	lc    *telemetry.Lifecycle
}

// StoreOpOverhead is the per-request cost of the server's file-backed
// RAM store (same VFS path as the HPBD server's RamDisk).
const StoreOpOverhead = 80 * sim.Microsecond

// NewServer starts an NBD server on host exporting size bytes of RAM.
func NewServer(env *sim.Env, host *tcpip.Host, size int64, mem netmodel.MemModel) (*Server, error) {
	s := &Server{env: env, host: host, store: ramdisk.New(size, mem)}
	s.store.SetOpOverhead(StoreOpOverhead)
	l, err := host.Listen(Port)
	if err != nil {
		return nil, err
	}
	env.Go(host.Name()+"-nbd-accept", func(p *sim.Proc) {
		for {
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			env.Go(host.Name()+"-nbd-serve", func(sp *sim.Proc) { s.serve(sp, c) })
		}
	})
	return s, nil
}

// SetTelemetry attaches the node-wide registry. The serving loop then
// publishes a per-request ServerStamp through the registry's Lifecycle so
// the client can attribute server-side time (store copy vs. the rest) in
// its critical-path breakdown, exactly as the HPBD servers do. Call it
// before the device dials in.
func (s *Server) SetTelemetry(reg *telemetry.Registry) { s.tel = reg }

// lifecycle resolves the shared critical-path analyzer lazily: the client
// device enables it on the registry after the server is built.
func (s *Server) lifecycle() *telemetry.Lifecycle {
	if s.lc == nil {
		s.lc = s.tel.Lifecycle()
	}
	return s.lc
}

// Stats returns a copy of server counters.
func (s *Server) Stats() ServerStats { return s.stats }

// Store exposes the backing RamDisk for test verification.
func (s *Server) Store() *ramdisk.RamDisk { return s.store }

// serve handles one client connection with blocking request/response.
func (s *Server) serve(p *sim.Proc, c *tcpip.Conn) {
	hdr := make([]byte, wire.RequestSize)
	rep := make([]byte, wire.ReplySize)
	for {
		if err := c.ReadFull(p, hdr); err != nil {
			c.Close()
			return
		}
		req, err := wire.UnmarshalRequest(hdr)
		if err != nil {
			c.Close()
			return
		}
		s.stats.Requests++
		lc := s.lifecycle()
		n := int(req.Length)
		st := wire.StatusOK
		switch req.Type {
		case wire.ReqWrite:
			data := make([]byte, n)
			if err := c.ReadFull(p, data); err != nil {
				c.Close()
				return
			}
			// The stamp's Start is "full request received": everything before
			// it is the client's send stage, everything after the Reply time
			// is wire + client receive.
			wstart := p.Now()
			s.continueFlow(lc, req.Handle)
			if werr := s.store.WriteAt(p, data, int64(req.Offset)); werr != nil {
				st = wire.StatusOutOfRange
			}
			copyNs := p.Now().Sub(wstart)
			s.stats.Writes++
			wire.MarshalReply(rep, &wire.Reply{Handle: req.Handle, Status: st})
			lc.StampServer(req.Handle, telemetry.ServerStamp{Start: wstart, Reply: p.Now(), Copy: copyNs})
			if err := c.Write(p, rep); err != nil {
				return
			}
		case wire.ReqRead:
			wstart := p.Now()
			s.continueFlow(lc, req.Handle)
			data := make([]byte, n)
			if rerr := s.store.ReadAt(p, data, int64(req.Offset)); rerr != nil {
				st = wire.StatusOutOfRange
			}
			copyNs := p.Now().Sub(wstart)
			s.stats.Reads++
			wire.MarshalReply(rep, &wire.Reply{Handle: req.Handle, Status: st})
			lc.StampServer(req.Handle, telemetry.ServerStamp{Start: wstart, Reply: p.Now(), Copy: copyNs})
			if err := c.Write(p, rep); err != nil {
				return
			}
			if st == wire.StatusOK {
				if err := c.Write(p, data); err != nil {
					return
				}
			}
		default:
			now := p.Now()
			s.continueFlow(lc, req.Handle)
			wire.MarshalReply(rep, &wire.Reply{Handle: req.Handle, Status: wire.StatusBadRequest})
			lc.StampServer(req.Handle, telemetry.ServerStamp{Start: now, Reply: p.Now(), Copy: 0})
			if err := c.Write(p, rep); err != nil {
				return
			}
		}
	}
}

// continueFlow consumes the flow id the client linked to handle and steps
// the request's causal flow onto the server host's trace track (no-op
// without tracing; the take itself keeps the relay map bounded).
func (s *Server) continueFlow(lc *telemetry.Lifecycle, handle uint64) {
	flow, ok := lc.TakeFlow(handle)
	if !ok || s.tel == nil {
		return
	}
	if tr := s.tel.Tracer(); tr != nil && flow != 0 {
		tr.FlowStep(s.host.Name(), "req", flow)
	}
}

// Device is the NBD client block driver: one TCP connection to one server
// (as of Linux 2.4, a single NBD device is served by a single remote
// server), with strictly serialized blocking transfers.
type Device struct {
	env    *sim.Env
	name   string
	size   int64
	conn   *tcpip.Conn
	lock   *sim.Mutex
	nextH  uint64
	failed bool
	Reqs   int64
	lc     *telemetry.Lifecycle
	tracer *telemetry.Tracer
}

// NewDevice dials the server on serverHost and returns the client driver
// exporting size bytes.
func NewDevice(p *sim.Proc, name string, client *tcpip.Host, serverHost *tcpip.Host, size int64) (*Device, error) {
	c, err := client.Dial(p, serverHost, Port)
	if err != nil {
		return nil, err
	}
	return &Device{
		env:  p.Env(),
		name: name,
		size: size,
		conn: c,
		lock: sim.NewMutex(p.Env()),
	}, nil
}

// SetTelemetry attaches the node-wide registry and enables the shared
// critical-path analyzer (default flight-recorder ring), so the NBD
// baseline reports the same stage taxonomy as HPBD. Stages NBD cannot
// observe (pool-wait, credit-stall, rdma) stay zero.
func (d *Device) SetTelemetry(reg *telemetry.Registry) {
	d.lc = reg.EnableLifecycle(0)
	if reg != nil {
		d.tracer = reg.Tracer()
	}
}

// Lifecycle returns the device's critical-path analyzer (nil before
// SetTelemetry).
func (d *Device) Lifecycle() *telemetry.Lifecycle { return d.lc }

// Name implements blockdev.Driver.
func (d *Device) Name() string { return d.name }

// Sectors implements blockdev.Driver.
func (d *Device) Sectors() int64 { return d.size / blockdev.SectorSize }

// Submit implements blockdev.Driver with the blocking transfer mode the
// paper describes: the request is sent and its response fully received
// before the next request proceeds.
func (d *Device) Submit(p *sim.Proc, r *blockdev.Request) {
	blkAt := r.QueuedAt()
	d.lock.Lock(p)
	defer d.lock.Unlock()
	if d.failed {
		r.Complete(ErrDisconnected)
		return
	}
	d.Reqs++
	d.nextH++
	handle := d.nextH
	// Lifecycle timestamps: with strictly serialized transfers the whole
	// queue stage is the wait for the device lock plus block-layer queueing.
	lockAt := p.Now()
	sentAt, replyAt := lockAt, lockAt
	fail := func() {
		d.failed = true
		d.finish(p, r, handle, blkAt, lockAt, sentAt, replyAt, ErrDisconnected)
	}
	typ := wire.ReqRead
	if r.Write {
		typ = wire.ReqWrite
	}
	hdr := make([]byte, wire.RequestSize)
	wire.MarshalRequest(hdr, &wire.Request{
		Type:   typ,
		Handle: handle,
		Offset: uint64(r.Sector * blockdev.SectorSize),
		Length: uint32(r.Bytes()),
	})
	if d.tracer != nil && r.ID() != 0 {
		d.lc.LinkFlow(handle, r.ID())
	}
	if err := d.conn.Write(p, hdr); err != nil {
		fail()
		return
	}
	if r.Write {
		if err := d.conn.Write(p, r.Data()); err != nil {
			fail()
			return
		}
	}
	sentAt, replyAt = p.Now(), p.Now()
	if d.tracer != nil && r.ID() != 0 {
		d.tracer.FlowStep(d.name, "req", r.ID())
	}
	rep := make([]byte, wire.ReplySize)
	if err := d.conn.ReadFull(p, rep); err != nil {
		fail()
		return
	}
	replyAt = p.Now()
	reply, err := wire.UnmarshalReply(rep)
	if err != nil || reply.Handle != handle {
		fail()
		return
	}
	if reply.Status != wire.StatusOK {
		d.finish(p, r, handle, blkAt, lockAt, sentAt, replyAt, errors.New("nbd: "+reply.Status.String()))
		return
	}
	if !r.Write {
		data := make([]byte, r.Bytes())
		if err := d.conn.ReadFull(p, data); err != nil {
			fail()
			return
		}
		r.Scatter(data)
	}
	d.finish(p, r, handle, blkAt, lockAt, sentAt, replyAt, nil)
}

// finish records the request's lifecycle (stages partition End-Start
// exactly, as on the HPBD path), ends its causal flow, and completes it.
func (d *Device) finish(p *sim.Proc, r *blockdev.Request, handle uint64, blkAt, lockAt, sentAt, replyAt sim.Time, err error) {
	if d.tracer != nil && r.ID() != 0 {
		d.tracer.FlowEnd(d.name, "req", r.ID())
	}
	if d.lc != nil {
		now := p.Now()
		rec := telemetry.ReqRecord{
			ID:     handle,
			Flow:   r.ID(),
			Write:  r.Write,
			Err:    err != nil,
			Bytes:  r.Bytes(),
			Server: "nbd",
			Start:  blkAt,
			End:    now,
		}
		rec.Stages[telemetry.StageQueue] = lockAt.Sub(blkAt)
		if st, ok := d.lc.TakeServerStamp(handle); ok && st.Start >= lockAt && st.Reply >= st.Start && replyAt >= st.Reply {
			serverCopy := st.Copy
			if busy := st.Reply.Sub(st.Start); serverCopy > busy {
				serverCopy = busy
			}
			rec.Stages[telemetry.StageSend] = st.Start.Sub(lockAt)
			rec.Stages[telemetry.StageServerCopy] = serverCopy
			// NBD has no RDMA engine; the server's non-copy time (decode,
			// reply marshal) is charged to the reply stage.
			rec.Stages[telemetry.StageReply] = replyAt.Sub(st.Start) - serverCopy
		} else {
			rec.Stages[telemetry.StageSend] = sentAt.Sub(lockAt)
			rec.Stages[telemetry.StageReply] = replyAt.Sub(sentAt)
		}
		rec.Stages[telemetry.StageDrain] = now.Sub(replyAt)
		d.lc.Record(&rec)
	}
	r.Complete(err)
}
