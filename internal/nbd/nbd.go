// Package nbd implements the paper's baseline: a Linux-2.4-style Network
// Block Device over TCP (run over the GigE or IPoIB link models). As the
// paper notes, NBD uses blocking-mode transfer for each request and
// response, a single remote server per device, and pays the full TCP/IP
// stack cost on both sides — the properties that put it behind HPBD in
// Figures 5 and 7-9.
package nbd

import (
	"errors"

	"hpbd/internal/blockdev"
	"hpbd/internal/netmodel"
	"hpbd/internal/ramdisk"
	"hpbd/internal/sim"
	"hpbd/internal/tcpip"
	"hpbd/internal/wire"
)

// ErrDisconnected reports a lost server connection.
var ErrDisconnected = errors.New("nbd: server disconnected")

// Port is the NBD server's listening port.
const Port = 10809

// ServerStats counts server activity.
type ServerStats struct {
	Requests int64
	Writes   int64
	Reads    int64
}

// Server is a user-space NBD server backed by a RamDisk.
type Server struct {
	env   *sim.Env
	host  *tcpip.Host
	store *ramdisk.RamDisk
	stats ServerStats
}

// StoreOpOverhead is the per-request cost of the server's file-backed
// RAM store (same VFS path as the HPBD server's RamDisk).
const StoreOpOverhead = 80 * sim.Microsecond

// NewServer starts an NBD server on host exporting size bytes of RAM.
func NewServer(env *sim.Env, host *tcpip.Host, size int64, mem netmodel.MemModel) (*Server, error) {
	s := &Server{env: env, host: host, store: ramdisk.New(size, mem)}
	s.store.SetOpOverhead(StoreOpOverhead)
	l, err := host.Listen(Port)
	if err != nil {
		return nil, err
	}
	env.Go(host.Name()+"-nbd-accept", func(p *sim.Proc) {
		for {
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			env.Go(host.Name()+"-nbd-serve", func(sp *sim.Proc) { s.serve(sp, c) })
		}
	})
	return s, nil
}

// Stats returns a copy of server counters.
func (s *Server) Stats() ServerStats { return s.stats }

// Store exposes the backing RamDisk for test verification.
func (s *Server) Store() *ramdisk.RamDisk { return s.store }

// serve handles one client connection with blocking request/response.
func (s *Server) serve(p *sim.Proc, c *tcpip.Conn) {
	hdr := make([]byte, wire.RequestSize)
	rep := make([]byte, wire.ReplySize)
	for {
		if err := c.ReadFull(p, hdr); err != nil {
			c.Close()
			return
		}
		req, err := wire.UnmarshalRequest(hdr)
		if err != nil {
			c.Close()
			return
		}
		s.stats.Requests++
		n := int(req.Length)
		st := wire.StatusOK
		switch req.Type {
		case wire.ReqWrite:
			data := make([]byte, n)
			if err := c.ReadFull(p, data); err != nil {
				c.Close()
				return
			}
			if werr := s.store.WriteAt(p, data, int64(req.Offset)); werr != nil {
				st = wire.StatusOutOfRange
			}
			s.stats.Writes++
			wire.MarshalReply(rep, &wire.Reply{Handle: req.Handle, Status: st})
			if err := c.Write(p, rep); err != nil {
				return
			}
		case wire.ReqRead:
			data := make([]byte, n)
			if rerr := s.store.ReadAt(p, data, int64(req.Offset)); rerr != nil {
				st = wire.StatusOutOfRange
			}
			s.stats.Reads++
			wire.MarshalReply(rep, &wire.Reply{Handle: req.Handle, Status: st})
			if err := c.Write(p, rep); err != nil {
				return
			}
			if st == wire.StatusOK {
				if err := c.Write(p, data); err != nil {
					return
				}
			}
		default:
			wire.MarshalReply(rep, &wire.Reply{Handle: req.Handle, Status: wire.StatusBadRequest})
			if err := c.Write(p, rep); err != nil {
				return
			}
		}
	}
}

// Device is the NBD client block driver: one TCP connection to one server
// (as of Linux 2.4, a single NBD device is served by a single remote
// server), with strictly serialized blocking transfers.
type Device struct {
	env    *sim.Env
	name   string
	size   int64
	conn   *tcpip.Conn
	lock   *sim.Mutex
	nextH  uint64
	failed bool
	Reqs   int64
}

// NewDevice dials the server on serverHost and returns the client driver
// exporting size bytes.
func NewDevice(p *sim.Proc, name string, client *tcpip.Host, serverHost *tcpip.Host, size int64) (*Device, error) {
	c, err := client.Dial(p, serverHost, Port)
	if err != nil {
		return nil, err
	}
	return &Device{
		env:  p.Env(),
		name: name,
		size: size,
		conn: c,
		lock: sim.NewMutex(p.Env()),
	}, nil
}

// Name implements blockdev.Driver.
func (d *Device) Name() string { return d.name }

// Sectors implements blockdev.Driver.
func (d *Device) Sectors() int64 { return d.size / blockdev.SectorSize }

// Submit implements blockdev.Driver with the blocking transfer mode the
// paper describes: the request is sent and its response fully received
// before the next request proceeds.
func (d *Device) Submit(p *sim.Proc, r *blockdev.Request) {
	d.lock.Lock(p)
	defer d.lock.Unlock()
	if d.failed {
		r.Complete(ErrDisconnected)
		return
	}
	d.Reqs++
	d.nextH++
	typ := wire.ReqRead
	if r.Write {
		typ = wire.ReqWrite
	}
	hdr := make([]byte, wire.RequestSize)
	wire.MarshalRequest(hdr, &wire.Request{
		Type:   typ,
		Handle: d.nextH,
		Offset: uint64(r.Sector * blockdev.SectorSize),
		Length: uint32(r.Bytes()),
	})
	if err := d.conn.Write(p, hdr); err != nil {
		d.failed = true
		r.Complete(ErrDisconnected)
		return
	}
	if r.Write {
		if err := d.conn.Write(p, r.Data()); err != nil {
			d.failed = true
			r.Complete(ErrDisconnected)
			return
		}
	}
	rep := make([]byte, wire.ReplySize)
	if err := d.conn.ReadFull(p, rep); err != nil {
		d.failed = true
		r.Complete(ErrDisconnected)
		return
	}
	reply, err := wire.UnmarshalReply(rep)
	if err != nil || reply.Handle != d.nextH {
		d.failed = true
		r.Complete(ErrDisconnected)
		return
	}
	if reply.Status != wire.StatusOK {
		r.Complete(errors.New("nbd: " + reply.Status.String()))
		return
	}
	if !r.Write {
		data := make([]byte, r.Bytes())
		if err := d.conn.ReadFull(p, data); err != nil {
			d.failed = true
			r.Complete(ErrDisconnected)
			return
		}
		r.Scatter(data)
	}
	r.Complete(nil)
}
