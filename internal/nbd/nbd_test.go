package nbd

import (
	"bytes"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/tcpip"
)

type bed struct {
	env   *sim.Env
	srv   *Server
	queue *blockdev.Queue
	dev   *Device
}

func newBed(t *testing.T, link netmodel.LinkModel, size int64) *bed {
	t.Helper()
	env := sim.NewEnv()
	mem := netmodel.DefaultMem()
	net := tcpip.NewNetwork(env, link, mem)
	ch, sh := net.NewHost("client"), net.NewHost("server")
	srv, err := NewServer(env, sh, size, mem)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	b := &bed{env: env, srv: srv}
	ready := sim.NewEvent(env)
	env.Go("dial", func(p *sim.Proc) {
		dev, err := NewDevice(p, "nbd0", ch, sh, size)
		if err != nil {
			t.Errorf("NewDevice: %v", err)
			return
		}
		b.dev = dev
		b.queue = blockdev.NewQueue(env, netmodel.DefaultHost(), dev)
		ready.Trigger()
	})
	env.Go("wait-ready", func(p *sim.Proc) { ready.Wait(p) })
	env.RunUntil(env.Now().Add(sim.Second))
	if b.dev == nil {
		t.Fatal("device did not come up")
	}
	return b
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*3 + seed
	}
	return b
}

func TestRoundTripGigE(t *testing.T) {
	b := newBed(t, netmodel.GigE(), 1<<20)
	want := pattern(128*1024, 5)
	var got []byte
	b.env.Go("io", func(p *sim.Proc) {
		w, err := b.queue.Submit(true, 0, append([]byte(nil), want...))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		b.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Fatalf("write: %v", err)
		}
		buf := make([]byte, len(want))
		r, _ := b.queue.Submit(false, 0, buf)
		b.queue.Unplug()
		if err := r.Wait(p); err != nil {
			t.Fatalf("read: %v", err)
		}
		got = buf
	})
	b.env.Run()
	b.env.Close()
	if !bytes.Equal(got, want) {
		t.Error("NBD round trip corrupted data")
	}
	if !bytes.Equal(b.srv.Store().Peek(0, len(want)), want) {
		t.Error("server store missing written data")
	}
}

func TestBlockingSerializesRequests(t *testing.T) {
	b := newBed(t, netmodel.GigE(), 8<<20)
	var oneAt, allAt sim.Duration
	b.env.Go("io", func(p *sim.Proc) {
		t0 := p.Now()
		w, _ := b.queue.Submit(true, 0, pattern(128*1024, 0))
		b.queue.Unplug()
		w.Wait(p)
		oneAt = p.Now().Sub(t0)

		t1 := p.Now()
		var ios []*blockdev.IO
		for i := 0; i < 4; i++ {
			// Discontiguous: four separate requests.
			io, _ := b.queue.Submit(true, int64(i*600), pattern(128*1024, byte(i)))
			b.queue.Unplug()
			ios = append(ios, io)
		}
		for _, io := range ios {
			io.Wait(p)
		}
		allAt = p.Now().Sub(t1)
	})
	b.env.Run()
	b.env.Close()
	if float64(allAt) < 3.3*float64(oneAt) {
		t.Errorf("4 concurrent NBD requests took %v vs %v for one; blocking mode should serialize (~4x)", allAt, oneAt)
	}
}

func TestIPoIBFasterThanGigE(t *testing.T) {
	run := func(link netmodel.LinkModel) sim.Duration {
		b := newBed(t, link, 8<<20)
		var elapsed sim.Duration
		b.env.Go("io", func(p *sim.Proc) {
			t0 := p.Now()
			for i := 0; i < 8; i++ {
				w, _ := b.queue.Submit(true, int64(i*600), pattern(128*1024, byte(i)))
				b.queue.Unplug()
				w.Wait(p)
			}
			elapsed = p.Now().Sub(t0)
		})
		b.env.Run()
		b.env.Close()
		return elapsed
	}
	gige, ipoib := run(netmodel.GigE()), run(netmodel.IPoIB())
	if ipoib >= gige {
		t.Errorf("NBD-IPoIB (%v) should beat NBD-GigE (%v)", ipoib, gige)
	}
}

func TestDialFailsWithoutServer(t *testing.T) {
	env := sim.NewEnv()
	net := tcpip.NewNetwork(env, netmodel.GigE(), netmodel.DefaultMem())
	ch, sh := net.NewHost("c"), net.NewHost("s")
	env.Go("dial", func(p *sim.Proc) {
		if _, err := NewDevice(p, "nbd0", ch, sh, 1<<20); err == nil {
			t.Error("dial without a server should fail")
		}
	})
	env.Run()
	env.Close()
}

func TestOutOfRangeReported(t *testing.T) {
	b := newBed(t, netmodel.GigE(), 64*1024)
	b.env.Go("io", func(p *sim.Proc) {
		// In range for the device header but beyond the store: craft via
		// full-size write at last sector (store matches size, so use the
		// queue bound instead).
		if _, err := b.queue.Submit(true, b.dev.Sectors(), make([]byte, 4096)); err != blockdev.ErrOutOfRange {
			t.Errorf("err = %v, want ErrOutOfRange", err)
		}
	})
	b.env.Run()
	b.env.Close()
}
