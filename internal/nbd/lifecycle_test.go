package nbd

import (
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/tcpip"
	"hpbd/internal/telemetry"
)

// newTelemetryBed is newBed with a shared registry wired into both the
// server and the device before any request flows, as cluster.Build does.
func newTelemetryBed(t *testing.T, size int64) (*bed, *telemetry.Registry) {
	t.Helper()
	env := sim.NewEnv()
	reg := telemetry.New(env)
	mem := netmodel.DefaultMem()
	net := tcpip.NewNetwork(env, netmodel.IPoIB(), mem)
	ch, sh := net.NewHost("client"), net.NewHost("server")
	srv, err := NewServer(env, sh, size, mem)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.SetTelemetry(reg)
	b := &bed{env: env, srv: srv}
	ready := sim.NewEvent(env)
	env.Go("dial", func(p *sim.Proc) {
		dev, err := NewDevice(p, "nbd0", ch, sh, size)
		if err != nil {
			t.Errorf("NewDevice: %v", err)
			return
		}
		dev.SetTelemetry(reg)
		b.dev = dev
		b.queue = blockdev.NewQueue(env, netmodel.DefaultHost(), dev)
		b.queue.SetTelemetry(reg)
		ready.Trigger()
	})
	env.Go("wait-ready", func(p *sim.Proc) { ready.Wait(p) })
	env.RunUntil(env.Now().Add(sim.Second))
	if b.dev == nil {
		t.Fatal("device did not come up")
	}
	return b, reg
}

// TestLifecycleExactPartition checks the NBD baseline honors the shared
// stage-taxonomy contract: stages partition the end-to-end latency
// exactly, the server stamp splits its copy time out, and stages the
// transport cannot observe stay zero.
func TestLifecycleExactPartition(t *testing.T) {
	b, reg := newTelemetryBed(t, 1<<20)
	env := b.env
	env.Go("io", func(p *sim.Proc) {
		w, err := b.queue.Submit(true, 0, pattern(16*1024, 7))
		if err != nil {
			t.Errorf("Submit write: %v", err)
			return
		}
		b.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Errorf("write: %v", err)
		}
		buf := make([]byte, 16*1024)
		r, err := b.queue.Submit(false, 0, buf)
		if err != nil {
			t.Errorf("Submit read: %v", err)
			return
		}
		b.queue.Unplug()
		if err := r.Wait(p); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	env.Run()
	env.Close()

	lc := reg.Lifecycle()
	if lc == nil || lc.Count() < 2 {
		t.Fatalf("lifecycle recorded %d requests, want >= 2", lc.Count())
	}
	for _, rec := range lc.Flight().Records() {
		var sum sim.Duration
		for s := telemetry.Stage(0); s < telemetry.NumStages; s++ {
			if rec.Stages[s] < 0 {
				t.Errorf("req %d: stage %v negative: %v", rec.ID, s, rec.Stages[s])
			}
			sum += rec.Stages[s]
		}
		if sum != rec.Total() {
			t.Errorf("req %d: stages sum to %v, end-to-end is %v (must partition exactly)",
				rec.ID, sum, rec.Total())
		}
		if rec.Server != "nbd" {
			t.Errorf("req %d: server %q, want nbd", rec.ID, rec.Server)
		}
		for _, s := range []telemetry.Stage{telemetry.StagePoolWait, telemetry.StageCreditStall, telemetry.StageRDMA} {
			if rec.Stages[s] != 0 {
				t.Errorf("req %d: stage %v = %v, must stay zero on the NBD path", rec.ID, s, rec.Stages[s])
			}
		}
	}
	if lc.StageSum(telemetry.StageServerCopy) == 0 {
		t.Error("server-copy stage never attributed: NBD server stamp missing")
	}
	if lc.StageSum(telemetry.StageSend) == 0 {
		t.Error("send stage never attributed")
	}
}
