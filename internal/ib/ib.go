// Package ib models an InfiniBand fabric with a VAPI-style verbs interface:
// host channel adapters (HCA), reliably connected queue pairs (QP), memory
// regions (MR) with explicit registration, completion queues (CQ) with
// solicited completion events, and SEND/RECV plus RDMA READ/WRITE work
// requests.
//
// The timing model captures what matters to the paper's results:
//
//   - registration cost vs memcpy cost (netmodel.MemModel),
//   - per-WQE host processing,
//   - link serialization at both the sender's egress and the receiver's
//     ingress port (so many-to-one traffic converges on the client link),
//   - a QP-context cache on each HCA: working sets larger than the cache
//     pay a context-fetch penalty per operation, which reproduces the
//     paper's Figure 10 degradation at 16 servers.
//
// Data is carried for real: RDMA operations move actual bytes between
// registered buffers, so the stack on top of this package is a functional
// (if simulated) block store, not just a latency calculator.
package ib

import (
	"errors"
	"fmt"
	"sort"

	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// Opcode identifies the type of a work request or completion.
type Opcode int

const (
	OpSend Opcode = iota
	OpRecv
	OpRDMAWrite
	OpRDMARead
)

func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpRecv:
		return "RECV"
	case OpRDMAWrite:
		return "RDMA_WRITE"
	case OpRDMARead:
		return "RDMA_READ"
	}
	return fmt.Sprintf("Opcode(%d)", int(o))
}

// Status is the completion status of a work request.
type Status int

const (
	StatusSuccess Status = iota
	StatusFlushErr
	StatusRNR // receiver not ready: SEND arrived with no posted receive
	StatusRemoteAccessErr
)

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "OK"
	case StatusFlushErr:
		return "FLUSH_ERR"
	case StatusRNR:
		return "RNR"
	case StatusRemoteAccessErr:
		return "REM_ACCESS_ERR"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Errors returned by verbs calls.
var (
	ErrQPClosed     = errors.New("ib: queue pair closed")
	ErrNotConnected = errors.New("ib: queue pair not connected")
	ErrBadSegment   = errors.New("ib: segment outside memory region")
)

// Config parameterizes a Fabric.
type Config struct {
	Mem  netmodel.MemModel
	Link netmodel.LinkModel
	// QPCacheSize is the number of QP contexts an HCA holds on-chip;
	// operations on QPs outside this working set pay QPCacheMiss.
	QPCacheSize int
	// QPCacheMiss is the context fetch penalty.
	QPCacheMiss sim.Duration
	// PerWQE is host CPU charged to the posting process per work request.
	PerWQE sim.Duration
	// PerDoorbell is the host CPU charged once for a chained PostSendBatch
	// post, regardless of how many WQEs ride the chain (the descriptor
	// writes are amortized; the doorbell write dominates). Zero falls back
	// to PerWQE, so batching never looks cheaper than a single post.
	PerDoorbell sim.Duration
	// EventDelay is the latency from a completion to the completion event
	// handler running (interrupt + handler dispatch).
	EventDelay sim.Duration
	// Telemetry, if non-nil, receives the fabric's metrics (the
	// ib.qp_cache_miss counter) and, when its tracer is enabled,
	// post-to-completion spans for every work request on each HCA's track.
	Telemetry *telemetry.Registry
}

// DefaultConfig returns the calibrated MT23108-era configuration.
func DefaultConfig() Config {
	return Config{
		Mem:         netmodel.DefaultMem(),
		Link:        netmodel.IB4X(),
		QPCacheSize: 8,
		QPCacheMiss: 35 * sim.Microsecond,
		PerWQE:      800 * sim.Nanosecond,
		EventDelay:  4 * sim.Microsecond,
	}
}

// FaultHook lets a fault injector intercept send-side work requests as
// they issue. SendFault is consulted once per WR with the posting HCA's
// name and the opcode; it returns an extra latency to add to the
// operation and a status. A non-success status aborts the operation:
// the peer never sees it and the sender's CQ receives an error CQE
// after EventDelay+extra — modeling a local QP/send failure (NAK,
// retry-exhausted timeout) deterministically in sim-time.
type FaultHook interface {
	SendFault(hca string, op Opcode) (extra sim.Duration, st Status)
}

// Fabric is a switched InfiniBand network.
type Fabric struct {
	env   *sim.Env
	cfg   Config
	hcas  []*HCA
	fault FaultHook

	// odpFaults counts first-touch page faults on ODP regions. Created
	// lazily on the first fault so fabrics that never register an ODP MR
	// expose an unchanged metric set.
	odpFaults *telemetry.Counter
}

// SetFaultHook installs h as the fabric's fault injector (nil removes
// it). With no hook installed the data path is byte-identical to an
// un-instrumented fabric.
func (f *Fabric) SetFaultHook(h FaultHook) { f.fault = h }

// NewFabric creates a fabric on env with the given configuration.
func NewFabric(env *sim.Env, cfg Config) *Fabric {
	return &Fabric{env: env, cfg: cfg}
}

// Env returns the fabric's simulation environment.
func (f *Fabric) Env() *sim.Env { return f.env }

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// NewHCA attaches a new host channel adapter to the fabric.
func (f *Fabric) NewHCA(name string) *HCA {
	h := &HCA{
		fabric:    f,
		name:      name,
		mrs:       make(map[uint32]*MR),
		missCount: f.cfg.Telemetry.Counter("ib.qp_cache_miss"),
	}
	f.hcas = append(f.hcas, h)
	return h
}

// tracer returns the fabric's span tracer, nil when tracing is off.
func (f *Fabric) tracer() *telemetry.Tracer { return f.cfg.Telemetry.Tracer() }

// HCA is a host channel adapter: the node's port onto the fabric.
type HCA struct {
	fabric *Fabric
	name   string

	nextKey uint32
	mrs     map[uint32]*MR
	nextQPN uint32
	qps     []*QP

	egressFree  sim.Time
	ingressFree sim.Time

	// missCount tallies operations that paid a QP-context fetch penalty
	// (nil-safe handle into Config.Telemetry, shared across HCAs).
	missCount *telemetry.Counter
}

// Name returns the HCA's diagnostic name.
func (h *HCA) Name() string { return h.name }

// MR is a registered memory region. Buf is the real backing store; RDMA
// operations move bytes in and out of it.
type MR struct {
	hca   *HCA
	Buf   []byte
	LKey  uint32
	RKey  uint32
	valid bool

	// odp marks an on-demand-paging region: registration pinned nothing,
	// and the first access to each netmodel.ODPWindowBytes window pays a
	// fault serviced by the HCA before the data moves.
	odp bool
	// resident tracks per-window residency for an ODP region. A window is
	// faulted in by the first WR that touches it and stays resident until
	// an invalidation (memory pressure, faultsim's odpinval) clears it.
	resident []bool
}

// Valid reports whether the region is still registered.
func (m *MR) Valid() bool { return m != nil && m.valid }

// IsODP reports whether the region uses on-demand paging.
func (m *MR) IsODP() bool { return m != nil && m.odp }

// InvalidatePages drops all resident windows of an ODP region, forcing
// the next access to each to re-fault (the MR itself stays registered —
// this models the MMU-notifier invalidation path, not deregistration).
// It returns the number of windows that were resident. No-op on pinned
// regions.
func (m *MR) InvalidatePages() int {
	if !m.odp {
		return 0
	}
	n := 0
	for i := range m.resident {
		if m.resident[i] {
			m.resident[i] = false
			n++
		}
	}
	return n
}

// touch marks the windows covering [off, off+n) resident and returns how
// many windows and 4 KB pages were newly faulted in (zero when the range
// was already resident). Allocation-free: called on the data path.
func (m *MR) touch(off, n int) (windows, pages int) {
	if !m.odp || n <= 0 {
		return 0, 0
	}
	lo := off / netmodel.ODPWindowBytes
	hi := (off + n - 1) / netmodel.ODPWindowBytes
	for w := lo; w <= hi && w < len(m.resident); w++ {
		if m.resident[w] {
			continue
		}
		m.resident[w] = true
		windows++
		// Pages resolved by this window's fault (last window may be short).
		wb := netmodel.ODPWindowBytes
		if rem := len(m.Buf) - w*netmodel.ODPWindowBytes; rem < wb {
			wb = rem
		}
		pages += (wb + netmodel.PageSize - 1) / netmodel.PageSize
	}
	return windows, pages
}

// RegisterMR registers buf with the HCA, charging the calling process the
// calibrated registration cost.
func (h *HCA) RegisterMR(p *sim.Proc, buf []byte) *MR {
	p.Sleep(h.fabric.cfg.Mem.Register(len(buf)))
	return h.registerMRFree(buf)
}

// registerMRFree registers without charging time (for setup phases).
func (h *HCA) registerMRFree(buf []byte) *MR {
	h.nextKey++
	mr := &MR{hca: h, Buf: buf, LKey: h.nextKey, RKey: h.nextKey, valid: true}
	h.mrs[mr.RKey] = mr
	return mr
}

// RegisterMRAtSetup registers buf without charging simulated time; use it
// for initialization-time pools (the cost the paper's design avoids paying
// on the critical path).
func (h *HCA) RegisterMRAtSetup(buf []byte) *MR { return h.registerMRFree(buf) }

// RegisterODP registers buf as an on-demand-paging region: the call is
// near-free (nothing is pinned, so the cost does not scale with size),
// but the first WR touching each ODPWindowBytes window pays a fault
// charged by the fabric timing model before the data moves.
func (h *HCA) RegisterODP(p *sim.Proc, buf []byte) *MR {
	p.Sleep(h.fabric.cfg.Mem.ODPRegister())
	mr := h.registerMRFree(buf)
	mr.odp = true
	mr.resident = make([]bool, netmodel.ODPWindows(len(buf)))
	return mr
}

// DeregisterMR invalidates the region, charging the deregistration cost
// (the cheaper ODP teardown for on-demand regions: no unpinning).
func (h *HCA) DeregisterMR(p *sim.Proc, mr *MR) {
	if mr.odp {
		p.Sleep(h.fabric.cfg.Mem.ODPDeregister())
	} else {
		p.Sleep(h.fabric.cfg.Mem.Deregister())
	}
	mr.valid = false
	delete(h.mrs, mr.RKey)
}

// DeregisterMRAtTeardown invalidates the region without charging simulated
// time; use it on failure/teardown paths where no process context exists
// (the counterpart of RegisterMRAtSetup).
func (h *HCA) DeregisterMRAtTeardown(mr *MR) {
	mr.valid = false
	delete(h.mrs, mr.RKey)
}

// lookupMR resolves an RKey for a remote access.
func (h *HCA) lookupMR(rkey uint32) *MR {
	mr := h.mrs[rkey]
	if mr == nil || !mr.valid {
		return nil
	}
	return mr
}

// InvalidateODP drops the resident windows of every ODP region on the
// HCA (the machine-wide MMU-notifier storm a memory-pressure event or
// faultsim's odpinval models), forcing re-faults on next access. Returns
// the number of windows invalidated. Regions are visited in RKey order
// so the (currently side-effect-equal) walk stays deterministic.
func (h *HCA) InvalidateODP() int {
	keys := make([]uint32, 0, len(h.mrs))
	for k := range h.mrs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	n := 0
	for _, k := range keys {
		n += h.mrs[k].InvalidatePages()
	}
	return n
}

// odpDelay returns the fault-service latency for a WR touching
// [off, off+n) of mr, zero for pinned or already-resident ranges. Faults
// are counted on the lazily created odp.faults series so fabrics without
// ODP regions keep their metric set unchanged.
func (f *Fabric) odpDelay(mr *MR, off, n int) sim.Duration {
	if mr == nil || !mr.odp {
		return 0
	}
	windows, pages := mr.touch(off, n)
	if windows == 0 {
		return 0
	}
	if f.odpFaults == nil {
		f.odpFaults = f.cfg.Telemetry.Counter("odp.faults")
	}
	f.odpFaults.Add(int64(windows))
	return f.cfg.Mem.ODPFault(windows, pages)
}

// qpPenalty returns the QP-context-cache cost of an operation on qp. The
// MT23108 holds a limited number of QP contexts on-chip; once the number
// of live QPs exceeds that, context fetches interleave with every
// operation regardless of request locality (send, receive, and RDMA
// engines each touch the context). We charge the expected fetch cost
// under that capacity pressure — the effect behind the paper's Figure 10
// degradation at 16 servers.
func (h *HCA) qpPenalty(qp *QP) sim.Duration {
	size := h.fabric.cfg.QPCacheSize
	n := len(h.qps)
	if size <= 0 || n <= size {
		return 0
	}
	_ = qp
	h.missCount.Inc()
	missFrac := 1 - float64(size)/float64(n)
	return sim.Duration(float64(h.fabric.cfg.QPCacheMiss) * missFrac)
}
