package ib

import (
	"bytes"
	"testing"

	"hpbd/internal/sim"
)

// pair builds a connected two-node fabric and returns both QPs with their
// CQs, plus the env.
type node struct {
	hca    *HCA
	qp     *QP
	sendCQ *CQ
	recvCQ *CQ
}

func pair(cfg Config) (*sim.Env, *Fabric, *node, *node) {
	env := sim.NewEnv()
	f := NewFabric(env, cfg)
	mk := func(name string) *node {
		h := f.NewHCA(name)
		s, r := h.CreateCQ(name+"-send"), h.CreateCQ(name+"-recv")
		return &node{hca: h, sendCQ: s, recvCQ: r}
	}
	a, b := mk("a"), mk("b")
	a.qp = a.hca.CreateQP(a.sendCQ, a.recvCQ)
	b.qp = b.hca.CreateQP(b.sendCQ, b.recvCQ)
	Connect(a.qp, b.qp)
	return env, f, a, b
}

func (n *node) mr(size int) *MR { return n.hca.RegisterMRAtSetup(make([]byte, size)) }

func TestSendRecvDeliversBytes(t *testing.T) {
	env, _, a, b := pair(DefaultConfig())
	amr, bmr := a.mr(4096), b.mr(4096)
	copy(amr.Buf, []byte("hello infiniband"))
	var got []byte
	env.Go("run", func(p *sim.Proc) {
		if err := b.qp.PostRecv(RecvWR{ID: 1, Local: Segment{bmr, 0, 4096}}); err != nil {
			t.Errorf("PostRecv: %v", err)
		}
		if err := a.qp.PostSend(p, SendWR{ID: 2, Op: OpSend, Local: Segment{amr, 0, 16}}); err != nil {
			t.Errorf("PostSend: %v", err)
		}
		e := b.recvCQ.WaitPoll(p)
		if e.Status != StatusSuccess || e.WRID != 1 || e.ByteLen != 16 {
			t.Errorf("recv CQE = %+v", e)
		}
		got = append([]byte(nil), bmr.Buf[:16]...)
		se := a.sendCQ.WaitPoll(p)
		if se.Status != StatusSuccess || se.WRID != 2 {
			t.Errorf("send CQE = %+v", se)
		}
	})
	env.Run()
	if string(got) != "hello infiniband" {
		t.Errorf("payload = %q", got)
	}
}

func TestSendLatencyMatchesModel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QPCacheMiss = 0 // isolate the wire model
	env, f, a, b := pair(cfg)
	amr, bmr := a.mr(128*1024), b.mr(128*1024)
	n := 128 * 1024
	var arrived sim.Time
	env.Go("recv", func(p *sim.Proc) {
		b.qp.PostRecv(RecvWR{ID: 1, Local: Segment{bmr, 0, n}})
		b.recvCQ.WaitPoll(p)
		arrived = p.Now()
	})
	env.Go("send", func(p *sim.Proc) {
		a.qp.PostSend(p, SendWR{ID: 2, Op: OpSend, Local: Segment{amr, 0, n}})
	})
	env.Run()
	link := f.Config().Link
	wire := sim.Duration(link.Prop) + link.BW.Over(n)
	// Arrival = perWQE + prop + serialization (pipelined through switch).
	min, max := wire, wire+10*sim.Microsecond
	if got := sim.Duration(arrived); got < min || got > max {
		t.Errorf("128K arrival at %v, want within [%v, %v]", got, min, max)
	}
}

func TestRDMAWriteMovesBytesWithoutPeerCQE(t *testing.T) {
	env, _, a, b := pair(DefaultConfig())
	amr, bmr := a.mr(8192), b.mr(8192)
	for i := range amr.Buf {
		amr.Buf[i] = byte(i * 7)
	}
	env.Go("run", func(p *sim.Proc) {
		err := a.qp.PostSend(p, SendWR{
			ID: 9, Op: OpRDMAWrite,
			Local:     Segment{amr, 1024, 4096},
			RemoteKey: bmr.RKey, RemoteOff: 2048,
		})
		if err != nil {
			t.Errorf("PostSend: %v", err)
		}
		e := a.sendCQ.WaitPoll(p)
		if e.Status != StatusSuccess {
			t.Errorf("CQE status = %v", e.Status)
		}
	})
	env.Run()
	if !bytes.Equal(bmr.Buf[2048:2048+4096], amr.Buf[1024:1024+4096]) {
		t.Error("RDMA WRITE did not move the bytes")
	}
	if b.recvCQ.Len() != 0 {
		t.Error("RDMA WRITE must not generate a receive completion")
	}
}

func TestRDMAReadPullsBytes(t *testing.T) {
	env, _, a, b := pair(DefaultConfig())
	amr, bmr := a.mr(8192), b.mr(8192)
	for i := range bmr.Buf {
		bmr.Buf[i] = byte(255 - i%251)
	}
	env.Go("run", func(p *sim.Proc) {
		err := a.qp.PostSend(p, SendWR{
			ID: 11, Op: OpRDMARead,
			Local:     Segment{amr, 0, 4096},
			RemoteKey: bmr.RKey, RemoteOff: 512,
		})
		if err != nil {
			t.Errorf("PostSend: %v", err)
		}
		e := a.sendCQ.WaitPoll(p)
		if e.Status != StatusSuccess || e.ByteLen != 4096 {
			t.Errorf("CQE = %+v", e)
		}
	})
	env.Run()
	if !bytes.Equal(amr.Buf[:4096], bmr.Buf[512:512+4096]) {
		t.Error("RDMA READ did not pull the bytes")
	}
}

func TestSendWithoutPostedRecvIsRNR(t *testing.T) {
	env, _, a, b := pair(DefaultConfig())
	amr := a.mr(4096)
	_ = b
	env.Go("run", func(p *sim.Proc) {
		a.qp.PostSend(p, SendWR{ID: 1, Op: OpSend, Local: Segment{amr, 0, 64}})
		e := a.sendCQ.WaitPoll(p)
		if e.Status != StatusRNR {
			t.Errorf("status = %v, want RNR", e.Status)
		}
	})
	env.Run()
}

func TestRDMAWriteOutOfBoundsFails(t *testing.T) {
	env, _, a, b := pair(DefaultConfig())
	amr, bmr := a.mr(8192), b.mr(1024)
	env.Go("run", func(p *sim.Proc) {
		a.qp.PostSend(p, SendWR{
			ID: 1, Op: OpRDMAWrite,
			Local:     Segment{amr, 0, 4096},
			RemoteKey: bmr.RKey, RemoteOff: 0,
		})
		e := a.sendCQ.WaitPoll(p)
		if e.Status != StatusRemoteAccessErr {
			t.Errorf("status = %v, want REM_ACCESS_ERR", e.Status)
		}
	})
	env.Run()
}

func TestRDMAReadBadKeyFails(t *testing.T) {
	env, _, a, _ := pair(DefaultConfig())
	amr := a.mr(4096)
	env.Go("run", func(p *sim.Proc) {
		a.qp.PostSend(p, SendWR{
			ID: 1, Op: OpRDMARead,
			Local:     Segment{amr, 0, 1024},
			RemoteKey: 0xdead, RemoteOff: 0,
		})
		e := a.sendCQ.WaitPoll(p)
		if e.Status != StatusRemoteAccessErr {
			t.Errorf("status = %v, want REM_ACCESS_ERR", e.Status)
		}
	})
	env.Run()
}

func TestCloseFlushesPostedRecvs(t *testing.T) {
	env, _, _, b := pair(DefaultConfig())
	bmr := b.mr(4096)
	env.Go("run", func(p *sim.Proc) {
		b.qp.PostRecv(RecvWR{ID: 5, Local: Segment{bmr, 0, 4096}})
		b.qp.Close()
		e, ok := b.recvCQ.Poll()
		if !ok || e.Status != StatusFlushErr || e.WRID != 5 {
			t.Errorf("flush CQE = %+v ok=%v", e, ok)
		}
		if err := b.qp.PostRecv(RecvWR{ID: 6, Local: Segment{bmr, 0, 4096}}); err != ErrQPClosed {
			t.Errorf("PostRecv on closed QP: err = %v", err)
		}
	})
	env.Run()
}

func TestSendToClosedPeerFlushes(t *testing.T) {
	env, _, a, b := pair(DefaultConfig())
	amr := a.mr(4096)
	env.Go("run", func(p *sim.Proc) {
		b.qp.Close()
		a.qp.PostSend(p, SendWR{ID: 1, Op: OpSend, Local: Segment{amr, 0, 64}})
		e := a.sendCQ.WaitPoll(p)
		if e.Status != StatusFlushErr {
			t.Errorf("status = %v, want FLUSH_ERR", e.Status)
		}
	})
	env.Run()
}

func TestPostSendInvalidSegment(t *testing.T) {
	env, _, a, _ := pair(DefaultConfig())
	amr := a.mr(1024)
	env.Go("run", func(p *sim.Proc) {
		err := a.qp.PostSend(p, SendWR{ID: 1, Op: OpSend, Local: Segment{amr, 512, 1024}})
		if err != ErrBadSegment {
			t.Errorf("err = %v, want ErrBadSegment", err)
		}
	})
	env.Run()
}

func TestDeregisteredMRRejected(t *testing.T) {
	env, _, a, _ := pair(DefaultConfig())
	amr := a.mr(4096)
	env.Go("run", func(p *sim.Proc) {
		a.hca.DeregisterMR(p, amr)
		err := a.qp.PostSend(p, SendWR{ID: 1, Op: OpSend, Local: Segment{amr, 0, 64}})
		if err != ErrBadSegment {
			t.Errorf("err = %v, want ErrBadSegment", err)
		}
	})
	env.Run()
}

func TestSolicitedEventHandler(t *testing.T) {
	env, _, a, b := pair(DefaultConfig())
	amr, bmr := a.mr(4096), b.mr(16384)
	fired := 0
	b.recvCQ.SetEventHandler(func() { fired++ })
	b.recvCQ.ReqNotify(true) // solicited only
	env.Go("run", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			b.qp.PostRecv(RecvWR{ID: uint64(i), Local: Segment{bmr, i * 4096, 4096}})
		}
		// Unsolicited send: no event.
		a.qp.PostSend(p, SendWR{ID: 1, Op: OpSend, Local: Segment{amr, 0, 64}})
		p.Sleep(sim.Millisecond)
		if fired != 0 {
			t.Errorf("unsolicited send fired handler %d times", fired)
		}
		// Solicited send: one event, then disarm.
		a.qp.PostSend(p, SendWR{ID: 2, Op: OpSend, Local: Segment{amr, 0, 64}, Solicited: true})
		a.qp.PostSend(p, SendWR{ID: 3, Op: OpSend, Local: Segment{amr, 0, 64}, Solicited: true})
		p.Sleep(sim.Millisecond)
		if fired != 1 {
			t.Errorf("handler fired %d times, want 1 (must re-arm)", fired)
		}
		// Re-arm: next solicited completion fires again.
		b.recvCQ.ReqNotify(true)
		a.qp.PostSend(p, SendWR{ID: 4, Op: OpSend, Local: Segment{amr, 0, 64}, Solicited: true})
		p.Sleep(sim.Millisecond)
		if fired != 2 {
			t.Errorf("handler fired %d times after re-arm, want 2", fired)
		}
	})
	env.Run()
}

func TestRegistrationChargesTime(t *testing.T) {
	env, f, a, _ := pair(DefaultConfig())
	var took sim.Duration
	env.Go("run", func(p *sim.Proc) {
		t0 := p.Now()
		a.hca.RegisterMR(p, make([]byte, 64*1024))
		took = p.Now().Sub(t0)
	})
	env.Run()
	want := f.Config().Mem.Register(64 * 1024)
	if took != want {
		t.Errorf("RegisterMR took %v, want %v", took, want)
	}
}

// Many-to-one: four servers RDMA-WRITE 128K to one client concurrently; the
// client ingress link must serialize them, so total time approaches 4x the
// single-transfer serialization.
func TestManyToOneIngressSerializes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QPCacheMiss = 0
	env := sim.NewEnv()
	f := NewFabric(env, cfg)
	client := f.NewHCA("client")
	ccq := client.CreateCQ("c")
	cmr := client.RegisterMRAtSetup(make([]byte, 1<<20))
	n := 128 * 1024
	const servers = 4
	var clientQPs []*QP
	var serverQPs []*QP
	for i := 0; i < servers; i++ {
		sh := f.NewHCA("server")
		scq := sh.CreateCQ("s")
		cqp := client.CreateQP(ccq, ccq)
		sqp := sh.CreateQP(scq, scq)
		Connect(cqp, sqp)
		clientQPs = append(clientQPs, cqp)
		serverQPs = append(serverQPs, sqp)
	}
	var done sim.Time
	completions := 0
	env.Go("drive", func(p *sim.Proc) {
		for i, sqp := range serverQPs {
			smr := sqp.hca.RegisterMRAtSetup(make([]byte, n))
			sqp.PostSend(p, SendWR{
				ID: uint64(i), Op: OpRDMAWrite,
				Local:     Segment{smr, 0, n},
				RemoteKey: cmr.RKey, RemoteOff: i * n,
			})
		}
		for _, sqp := range serverQPs {
			e := sqp.sendCQ.WaitPoll(p)
			if e.Status != StatusSuccess {
				t.Errorf("CQE = %+v", e)
			}
			completions++
		}
		done = p.Now()
	})
	env.Run()
	if completions != servers {
		t.Fatalf("completions = %d", completions)
	}
	ser := f.Config().Link.BW.Over(n)
	min := sim.Duration(servers) * ser
	if sim.Duration(done) < min {
		t.Errorf("4 concurrent 128K writes finished in %v; ingress should serialize to >= %v", done, min)
	}
	_ = clientQPs
}

// With more active QPs than the HCA context cache holds, round-robin
// traffic must run measurably slower than with few QPs (paper Fig. 10).
func TestQPCacheThrashingSlowsTraffic(t *testing.T) {
	run := func(nqp int) sim.Duration {
		env := sim.NewEnv()
		f := NewFabric(env, DefaultConfig())
		client := f.NewHCA("client")
		ccq := client.CreateCQ("c")
		cmr := client.RegisterMRAtSetup(make([]byte, 4096))
		var qps []*QP
		for i := 0; i < nqp; i++ {
			sh := f.NewHCA("server")
			scq := sh.CreateCQ("s")
			cqp := client.CreateQP(ccq, ccq)
			sqp := sh.CreateQP(scq, scq)
			Connect(cqp, sqp)
			smr := sh.RegisterMRAtSetup(make([]byte, 4096))
			sqp.PostRecv(RecvWR{ID: 1, Local: Segment{smr, 0, 4096}})
			for j := 0; j < 64; j++ {
				sqp.PostRecv(RecvWR{ID: uint64(j), Local: Segment{smr, 0, 4096}})
			}
			qps = append(qps, cqp)
		}
		var elapsed sim.Duration
		env.Go("drive", func(p *sim.Proc) {
			t0 := p.Now()
			for r := 0; r < 16; r++ {
				for _, qp := range qps {
					qp.PostSend(p, SendWR{ID: 1, Op: OpSend, Local: Segment{cmr, 0, 256}})
					e := ccq.WaitPoll(p)
					if e.Status != StatusSuccess {
						t.Errorf("CQE = %+v", e)
					}
				}
			}
			elapsed = p.Now().Sub(t0)
		})
		env.Run()
		return elapsed / sim.Duration(nqp) // per-QP round cost
	}
	few := run(2)
	many := run(16)
	if float64(many) < float64(few)*1.2 {
		t.Errorf("per-QP cost with 16 QPs (%v) not >1.2x cost with 2 QPs (%v)", many, few)
	}
}
