package ib

import (
	"testing"

	"hpbd/internal/sim"
)

func TestPerQPSendOrderingFIFO(t *testing.T) {
	// RC guarantees ordering: two SENDs posted back to back must complete
	// receives in post order.
	env, _, a, b := pair(DefaultConfig())
	amr, bmr := a.mr(8192), b.mr(8192)
	var order []uint64
	env.Go("recv", func(p *sim.Proc) {
		b.qp.PostRecv(RecvWR{ID: 100, Local: Segment{bmr, 0, 4096}})
		b.qp.PostRecv(RecvWR{ID: 101, Local: Segment{bmr, 4096, 4096}})
		for i := 0; i < 2; i++ {
			e := b.recvCQ.WaitPoll(p)
			order = append(order, e.WRID)
		}
	})
	env.Go("send", func(p *sim.Proc) {
		a.qp.PostSend(p, SendWR{ID: 1, Op: OpSend, Local: Segment{amr, 0, 4096}})
		a.qp.PostSend(p, SendWR{ID: 2, Op: OpSend, Local: Segment{amr, 4096, 2048}})
	})
	env.Run()
	env.Close()
	if len(order) != 2 || order[0] != 100 || order[1] != 101 {
		t.Errorf("receive order = %v, want [100 101]", order)
	}
}

func TestEgressSerializationBackToBack(t *testing.T) {
	// Two large sends from one HCA must serialize on its egress link:
	// total time ~ 2x one transfer, not 1x.
	cfg := DefaultConfig()
	cfg.QPCacheMiss = 0
	env, f, a, b := pair(cfg)
	amr, bmr := a.mr(256*1024), b.mr(256*1024)
	n := 128 * 1024
	var done sim.Time
	env.Go("recv", func(p *sim.Proc) {
		b.qp.PostRecv(RecvWR{ID: 1, Local: Segment{bmr, 0, n}})
		b.qp.PostRecv(RecvWR{ID: 2, Local: Segment{bmr, n, n}})
		b.recvCQ.WaitPoll(p)
		b.recvCQ.WaitPoll(p)
		done = p.Now()
	})
	env.Go("send", func(p *sim.Proc) {
		a.qp.PostSend(p, SendWR{ID: 1, Op: OpSend, Local: Segment{amr, 0, n}})
		a.qp.PostSend(p, SendWR{ID: 2, Op: OpSend, Local: Segment{amr, n, n}})
	})
	env.Run()
	env.Close()
	ser := f.Config().Link.BW.Over(n)
	if sim.Duration(done) < 2*ser {
		t.Errorf("two 128K sends done at %v; egress must serialize to >= %v", done, 2*ser)
	}
}

func TestWaitPollTimeout(t *testing.T) {
	env, _, a, _ := pair(DefaultConfig())
	var timedOut, got bool
	env.Go("poll", func(p *sim.Proc) {
		_, ok := a.sendCQ.WaitPollTimeout(p, 50*sim.Microsecond)
		timedOut = !ok
		// Next poll has a completion coming.
		_, ok = a.sendCQ.WaitPollTimeout(p, sim.Second)
		got = ok
	})
	env.Go("feed", func(p *sim.Proc) {
		p.Sleep(200 * sim.Microsecond)
		amr := a.mr(64)
		a.qp.PostSend(p, SendWR{ID: 9, Op: OpRDMAWrite, Local: Segment{amr, 0, 64}, RemoteKey: 0xbad})
	})
	env.Run()
	env.Close()
	if !timedOut {
		t.Error("first WaitPollTimeout should time out")
	}
	if !got {
		t.Error("second WaitPollTimeout should deliver the completion")
	}
}

func TestPostSendAsyncFromCallback(t *testing.T) {
	env, _, a, b := pair(DefaultConfig())
	amr, bmr := a.mr(4096), b.mr(4096)
	b.qp.PostRecv(RecvWR{ID: 1, Local: Segment{bmr, 0, 4096}})
	var delivered bool
	env.After(sim.Microsecond, func() {
		if err := a.qp.PostSendAsync(SendWR{ID: 1, Op: OpSend, Local: Segment{amr, 0, 64}}); err != nil {
			t.Errorf("PostSendAsync: %v", err)
		}
	})
	env.Go("recv", func(p *sim.Proc) {
		e := b.recvCQ.WaitPoll(p)
		delivered = e.Status == StatusSuccess
	})
	env.Run()
	env.Close()
	if !delivered {
		t.Error("async-posted send not delivered")
	}
}

func TestQPPenaltyCapacityModel(t *testing.T) {
	env := sim.NewEnv()
	f := NewFabric(env, DefaultConfig())
	h := f.NewHCA("h")
	cq := h.CreateCQ("cq")
	var qps []*QP
	for i := 0; i < 8; i++ {
		qps = append(qps, h.CreateQP(cq, cq))
	}
	if d := h.qpPenalty(qps[0]); d != 0 {
		t.Errorf("penalty with 8 QPs = %v, want 0", d)
	}
	for i := 0; i < 8; i++ {
		h.CreateQP(cq, cq)
	}
	if d := h.qpPenalty(qps[0]); d <= 0 {
		t.Errorf("penalty with 16 QPs = %v, want > 0", d)
	}
	env.Close()
}

func TestStringers(t *testing.T) {
	cases := []struct{ got, want string }{
		{OpSend.String(), "SEND"},
		{OpRDMARead.String(), "RDMA_READ"},
		{OpRDMAWrite.String(), "RDMA_WRITE"},
		{OpRecv.String(), "RECV"},
		{StatusSuccess.String(), "OK"},
		{StatusRNR.String(), "RNR"},
		{StatusFlushErr.String(), "FLUSH_ERR"},
		{StatusRemoteAccessErr.String(), "REM_ACCESS_ERR"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}

func TestPostSendNotConnected(t *testing.T) {
	env := sim.NewEnv()
	f := NewFabric(env, DefaultConfig())
	h := f.NewHCA("h")
	cq := h.CreateCQ("cq")
	qp := h.CreateQP(cq, cq)
	mr := h.RegisterMRAtSetup(make([]byte, 64))
	env.Go("t", func(p *sim.Proc) {
		if err := qp.PostSend(p, SendWR{ID: 1, Op: OpSend, Local: Segment{mr, 0, 64}}); err != ErrNotConnected {
			t.Errorf("err = %v, want ErrNotConnected", err)
		}
	})
	env.Run()
	env.Close()
}
