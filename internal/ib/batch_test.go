package ib

import (
	"fmt"
	"testing"

	"hpbd/internal/sim"
)

// TestPostSendBatchSingleDoorbell checks the host-cost contract: a chained
// post charges the posting process one doorbell regardless of chain length,
// while individual posts pay PerWQE each, and the receiver still sees every
// message in order.
func TestPostSendBatchSingleDoorbell(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerDoorbell = cfg.PerWQE
	env, _, a, b := pair(cfg)
	const n = 4
	amr, bmr := a.mr(n*64), b.mr(n*64)
	var charged sim.Duration
	env.Go("run", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := b.qp.PostRecv(RecvWR{ID: uint64(i), Local: Segment{bmr, i * 64, 64}}); err != nil {
				t.Errorf("PostRecv: %v", err)
			}
			copy(amr.Buf[i*64:], fmt.Sprintf("msg-%d", i))
		}
		wrs := make([]SendWR, n)
		for i := range wrs {
			wrs[i] = SendWR{ID: uint64(100 + i), Op: OpSend, Local: Segment{amr, i * 64, 64}}
		}
		t0 := p.Now()
		if err := a.qp.PostSendBatch(p, wrs); err != nil {
			t.Errorf("PostSendBatch: %v", err)
		}
		charged = p.Now().Sub(t0)
		for i := 0; i < n; i++ {
			e := b.recvCQ.WaitPoll(p)
			if e.Status != StatusSuccess || e.WRID != uint64(i) {
				t.Errorf("recv CQE %d = %+v", i, e)
			}
			if got, want := string(bmr.Buf[i*64:i*64+5]), fmt.Sprintf("msg-%d", i); got != want {
				t.Errorf("message %d = %q, want %q", i, got, want)
			}
		}
		for i := 0; i < n; i++ {
			se := a.sendCQ.WaitPoll(p)
			if se.WRID != uint64(100+i) {
				t.Errorf("send CQE %d WRID = %d", i, se.WRID)
			}
		}
	})
	env.Run()
	if charged != cfg.PerDoorbell {
		t.Errorf("batched post charged %v, want one doorbell %v", charged, cfg.PerDoorbell)
	}
}

// TestPostSendBatchDoorbellFallback checks that PerDoorbell=0 degrades to
// the PerWQE charge (batching can never be modeled as free).
func TestPostSendBatchDoorbellFallback(t *testing.T) {
	cfg := DefaultConfig() // PerDoorbell unset
	env, _, a, b := pair(cfg)
	amr := a.mr(128)
	bmr := b.mr(128)
	var charged sim.Duration
	env.Go("run", func(p *sim.Proc) {
		if err := b.qp.PostRecv(RecvWR{ID: 0, Local: Segment{bmr, 0, 64}}); err != nil {
			t.Errorf("PostRecv: %v", err)
		}
		if err := b.qp.PostRecv(RecvWR{ID: 1, Local: Segment{bmr, 64, 64}}); err != nil {
			t.Errorf("PostRecv: %v", err)
		}
		t0 := p.Now()
		err := a.qp.PostSendBatch(p, []SendWR{
			{ID: 1, Op: OpSend, Local: Segment{amr, 0, 64}},
			{ID: 2, Op: OpSend, Local: Segment{amr, 64, 64}},
		})
		if err != nil {
			t.Errorf("PostSendBatch: %v", err)
		}
		charged = p.Now().Sub(t0)
	})
	env.Run()
	if charged != cfg.PerWQE {
		t.Errorf("fallback charge = %v, want PerWQE %v", charged, cfg.PerWQE)
	}
}

// TestPostSendBatchAtomicValidation checks that a bad segment anywhere in
// the chain rejects the whole post before anything is issued.
func TestPostSendBatchAtomicValidation(t *testing.T) {
	env, _, a, b := pair(DefaultConfig())
	amr, bmr := a.mr(64), b.mr(64)
	env.Go("run", func(p *sim.Proc) {
		if err := b.qp.PostRecv(RecvWR{ID: 0, Local: Segment{bmr, 0, 64}}); err != nil {
			t.Errorf("PostRecv: %v", err)
		}
		err := a.qp.PostSendBatch(p, []SendWR{
			{ID: 1, Op: OpSend, Local: Segment{amr, 0, 64}},
			{ID: 2, Op: OpSend, Local: Segment{amr, 32, 64}}, // out of bounds
		})
		if err != ErrBadSegment {
			t.Errorf("PostSendBatch = %v, want ErrBadSegment", err)
		}
		if err := a.qp.PostSendBatch(p, nil); err != nil {
			t.Errorf("empty batch: %v", err)
		}
	})
	env.Run()
	if got, ok := b.recvCQ.Poll(); ok {
		t.Errorf("receiver saw CQE %+v after rejected batch", got)
	}
	if b.qp.PostedRecvs() != 1 {
		t.Errorf("posted recvs = %d, want 1 (nothing consumed)", b.qp.PostedRecvs())
	}
}

// TestPostSendBatchClosedQP checks the error path batching callers rely on
// for cleanup.
func TestPostSendBatchClosedQP(t *testing.T) {
	env, _, a, _ := pair(DefaultConfig())
	amr := a.mr(64)
	env.Go("run", func(p *sim.Proc) {
		a.qp.Close()
		err := a.qp.PostSendBatch(p, []SendWR{{ID: 1, Op: OpSend, Local: Segment{amr, 0, 64}}})
		if err != ErrQPClosed {
			t.Errorf("PostSendBatch on closed QP = %v, want ErrQPClosed", err)
		}
	})
	env.Run()
}
