package ib

import (
	"testing"

	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// odpPair is pair() plus a metrics registry on the fabric, so the tests
// can watch the odp.faults series the timing model feeds.
func odpPair() (*sim.Env, *telemetry.Registry, *node, *node) {
	env := sim.NewEnv()
	reg := telemetry.New(env)
	cfg := DefaultConfig()
	cfg.Telemetry = reg
	f := NewFabric(env, cfg)
	mk := func(name string) *node {
		h := f.NewHCA(name)
		s, r := h.CreateCQ(name+"-send"), h.CreateCQ(name+"-recv")
		return &node{hca: h, sendCQ: s, recvCQ: r}
	}
	a, b := mk("a"), mk("b")
	a.qp = a.hca.CreateQP(a.sendCQ, a.recvCQ)
	b.qp = b.hca.CreateQP(b.sendCQ, b.recvCQ)
	Connect(a.qp, b.qp)
	return env, reg, a, b
}

func TestRegisterODPCostsAndResidency(t *testing.T) {
	env, _, a, _ := odpPair()
	mem := a.hca.fabric.cfg.Mem
	env.Go("run", func(p *sim.Proc) {
		t0 := p.Now()
		mr := a.hca.RegisterODP(p, make([]byte, 256*1024))
		if got := p.Now().Sub(t0); got != mem.ODPRegister() {
			t.Errorf("ODP registration charged %v, want flat %v", got, mem.ODPRegister())
		}
		if !mr.Valid() || !mr.IsODP() {
			t.Error("fresh ODP region must be valid and flagged ODP")
		}
		// Nothing is resident before traffic, so there is nothing to drop.
		if n := mr.InvalidatePages(); n != 0 {
			t.Errorf("cold region invalidated %d windows, want 0", n)
		}
		// Pinned regions are untouched by the ODP surface.
		pinned := a.hca.RegisterMRAtSetup(make([]byte, 4096))
		if pinned.IsODP() || pinned.InvalidatePages() != 0 {
			t.Error("pinned MR leaked into the ODP surface")
		}
		// Teardown takes the cheap no-unpin path.
		t1 := p.Now()
		a.hca.DeregisterMR(p, mr)
		if got := p.Now().Sub(t1); got != mem.ODPDeregister() {
			t.Errorf("ODP deregistration charged %v, want %v", got, mem.ODPDeregister())
		}
		if mr.Valid() {
			t.Error("deregistered ODP region still valid")
		}
	})
	env.Run()
	env.Close()
}

// The fault lifecycle on the wire: a cold ODP source pays one fault per
// window on first touch, a warm one pays nothing, and an invalidation
// makes the same range fault again. The latency delta between the cold
// and warm transfer must be exactly the modeled fault-service time.
func TestODPFaultChargedOnceThenAfterInvalidate(t *testing.T) {
	env, reg, a, b := odpPair()
	mem := a.hca.fabric.cfg.Mem
	const n = 128 * 1024 // 2 fault windows, 32 pages
	faults := reg.Counter("odp.faults")
	env.Go("run", func(p *sim.Proc) {
		src := a.hca.RegisterODP(p, make([]byte, n))
		dst := b.hca.RegisterMRAtSetup(make([]byte, n))
		write := func(id uint64) sim.Duration {
			t0 := p.Now()
			if err := a.qp.PostSend(p, SendWR{
				ID: id, Op: OpRDMAWrite,
				Local: Segment{src, 0, n}, RemoteKey: dst.RKey, RemoteOff: 0,
			}); err != nil {
				t.Fatalf("PostSend %d: %v", id, err)
			}
			if e := a.sendCQ.WaitPoll(p); e.Status != StatusSuccess {
				t.Fatalf("write %d failed: %v", id, e.Status)
			}
			return p.Now().Sub(t0)
		}
		cold := write(1)
		if got := faults.Value(); got != 2 {
			t.Fatalf("cold 128K transfer faulted %d windows, want 2", got)
		}
		warm := write(2)
		if got := faults.Value(); got != 2 {
			t.Errorf("warm transfer re-faulted: counter %d, want still 2", got)
		}
		if want := mem.ODPFault(2, 32); cold-warm != want {
			t.Errorf("cold-warm latency delta = %v, want fault cost %v", cold-warm, want)
		}
		// The MMU-notifier path: drop residency, same range faults again.
		if dropped := a.hca.InvalidateODP(); dropped != 2 {
			t.Errorf("InvalidateODP dropped %d windows, want 2", dropped)
		}
		refault := write(3)
		if got := faults.Value(); got != 4 {
			t.Errorf("post-invalidate transfer faulted %d total windows, want 4", got)
		}
		if refault != cold {
			t.Errorf("re-faulted transfer took %v, want the cold time %v", refault, cold)
		}
	})
	env.Run()
	env.Close()
}

// A remote-side ODP destination also faults: the responder charges the
// fault before placement, and the windows belong to the target HCA.
func TestODPRemoteDestinationFaults(t *testing.T) {
	env, reg, a, b := odpPair()
	const n = netmodel.ODPWindowBytes // exactly one window
	env.Go("run", func(p *sim.Proc) {
		src := a.hca.RegisterMRAtSetup(make([]byte, n))
		dst := b.hca.RegisterODP(p, make([]byte, n))
		if err := a.qp.PostSend(p, SendWR{
			ID: 7, Op: OpRDMAWrite,
			Local: Segment{src, 0, n}, RemoteKey: dst.RKey, RemoteOff: 0,
		}); err != nil {
			t.Fatalf("PostSend: %v", err)
		}
		if e := a.sendCQ.WaitPoll(p); e.Status != StatusSuccess {
			t.Fatalf("write failed: %v", e.Status)
		}
		if got := reg.Counter("odp.faults").Value(); got != 1 {
			t.Errorf("remote ODP destination faulted %d windows, want 1", got)
		}
		if got := b.hca.InvalidateODP(); got != 1 {
			t.Errorf("target HCA held %d resident windows, want 1", got)
		}
		if got := a.hca.InvalidateODP(); got != 0 {
			t.Errorf("initiator HCA held %d resident windows, want 0", got)
		}
	})
	env.Run()
	env.Close()
}
