package ib

import "hpbd/internal/sim"

// CQE is a completion queue entry.
type CQE struct {
	WRID      uint64
	Op        Opcode
	Status    Status
	QP        *QP
	ByteLen   int
	Solicited bool
}

// CQ is a completion queue. Completions can be consumed by polling (Poll,
// WaitPoll) or by a completion event handler armed with ReqNotify, which
// mirrors the VAPI EVAPI_set_comp_eventh mechanism the paper's client uses
// to wake its reply-processing kernel thread.
type CQ struct {
	env           *sim.Env
	name          string
	entries       []CQE
	waiters       *sim.WaitQueue
	handler       func()
	armed         bool
	solicitedOnly bool
	eventDelay    sim.Duration
}

// CreateCQ makes an empty completion queue on the HCA.
func (h *HCA) CreateCQ(name string) *CQ {
	return &CQ{
		env:        h.fabric.env,
		name:       name,
		waiters:    sim.NewWaitQueue(h.fabric.env),
		eventDelay: h.fabric.cfg.EventDelay,
	}
}

// Len returns the number of pending completions.
func (c *CQ) Len() int { return len(c.entries) }

// Poll removes and returns the oldest completion, if any.
func (c *CQ) Poll() (CQE, bool) {
	if len(c.entries) == 0 {
		return CQE{}, false
	}
	e := c.entries[0]
	c.entries = c.entries[1:]
	return e, true
}

// WaitPoll blocks the calling process until a completion is available and
// returns it. This models busy-poll semantics without burning host CPU in
// the model; use ReqNotify + handler for the event-driven design.
func (c *CQ) WaitPoll(p *sim.Proc) CQE {
	for {
		if e, ok := c.Poll(); ok {
			return e
		}
		c.waiters.Wait(p)
	}
}

// WaitPollTimeout blocks up to d for a completion; ok is false on timeout.
// It models a bounded busy-poll (the paper's server spins 200 us before
// yielding the CPU).
func (c *CQ) WaitPollTimeout(p *sim.Proc, d sim.Duration) (CQE, bool) {
	deadline := c.env.Now().Add(d)
	for {
		if e, ok := c.Poll(); ok {
			return e, true
		}
		remain := deadline.Sub(c.env.Now())
		if remain <= 0 {
			return CQE{}, false
		}
		c.waiters.WaitTimeout(p, remain)
	}
}

// SetEventHandler installs fn as the completion event handler. The handler
// runs in scheduler context after the configured event delay; it must not
// block (typically it wakes a process).
func (c *CQ) SetEventHandler(fn func()) { c.handler = fn }

// ReqNotify arms the completion event: the next completion (or the next
// solicited completion, if solicitedOnly) fires the handler once, after
// which the CQ must be re-armed. This matches IB semantics where the
// consumer drains the CQ and re-arms before sleeping.
func (c *CQ) ReqNotify(solicitedOnly bool) {
	c.armed = true
	c.solicitedOnly = solicitedOnly
}

// push appends a completion and delivers notifications.
func (c *CQ) push(e CQE) {
	c.entries = append(c.entries, e)
	c.waiters.WakeAll()
	if c.armed && c.handler != nil && (!c.solicitedOnly || e.Solicited || e.Status != StatusSuccess) {
		c.armed = false
		fn := c.handler
		c.env.After(c.eventDelay, fn)
	}
}
