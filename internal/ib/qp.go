package ib

import "hpbd/internal/sim"

// Segment addresses a contiguous byte range within a registered region.
type Segment struct {
	MR  *MR
	Off int
	Len int
}

func (s Segment) valid() bool {
	return s.MR != nil && s.MR.valid && s.Off >= 0 && s.Len >= 0 && s.Off+s.Len <= len(s.MR.Buf)
}

func (s Segment) bytes() []byte { return s.MR.Buf[s.Off : s.Off+s.Len] }

// SendWR is a send-side work request: SEND, RDMA WRITE, or RDMA READ.
type SendWR struct {
	ID uint64
	Op Opcode
	// Local is the local gather segment (data source for SEND/RDMA WRITE,
	// destination for RDMA READ).
	Local Segment
	// RemoteKey/RemoteOff address the remote region for RDMA operations.
	RemoteKey uint32
	RemoteOff int
	// Solicited sets the solicited-event bit so the peer's armed
	// completion handler fires (SEND only).
	Solicited bool
	// Flow, when non-zero, threads the caller's causal flow id through the
	// fabric: the completion span carries it and a flow step is emitted on
	// the posting HCA's track (tracing only; no timing effect).
	Flow uint64
}

// RecvWR is a posted receive buffer.
type RecvWR struct {
	ID    uint64
	Local Segment
}

// QP is a reliably connected queue pair.
type QP struct {
	hca    *HCA
	qpn    uint32
	peer   *QP
	sendCQ *CQ
	recvCQ *CQ
	recvQ  []RecvWR
	closed bool
}

// CreateQP creates a queue pair whose send and receive completions go to
// the given CQs (they may be the same CQ, as in the paper's client, which
// shares CQs across the QPs to all servers).
func (h *HCA) CreateQP(sendCQ, recvCQ *CQ) *QP {
	h.nextQPN++
	qp := &QP{hca: h, qpn: h.nextQPN, sendCQ: sendCQ, recvCQ: recvCQ}
	h.qps = append(h.qps, qp)
	return qp
}

// QPN returns the queue pair number, unique within the HCA. It is the
// stable identity callers sort on when draining QP collections (map
// iteration order must never reach a scheduling decision).
func (q *QP) QPN() uint32 { return q.qpn }

// Connect wires two queue pairs into the RC connected state. In the real
// system this is the out-of-band (socket) QP information exchange done at
// device initialization.
func Connect(a, b *QP) {
	a.peer = b
	b.peer = a
}

// HCA returns the adapter owning this QP.
func (q *QP) HCA() *HCA { return q.hca }

// Peer returns the connected remote QP, if any.
func (q *QP) Peer() *QP { return q.peer }

// Closed reports whether Close was called.
func (q *QP) Closed() bool { return q.closed }

// PostedRecvs returns the current receive queue depth.
func (q *QP) PostedRecvs() int { return len(q.recvQ) }

// Close transitions the QP to the error state: posted receives flush with
// StatusFlushErr and subsequent operations fail.
func (q *QP) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, r := range q.recvQ {
		q.recvCQ.push(CQE{WRID: r.ID, Op: OpRecv, Status: StatusFlushErr, QP: q})
	}
	q.recvQ = nil
}

// PostRecv posts a receive buffer. Receives complete in FIFO order as
// SENDs arrive.
func (q *QP) PostRecv(wr RecvWR) error {
	if q.closed {
		return ErrQPClosed
	}
	if !wr.Local.valid() {
		return ErrBadSegment
	}
	q.recvQ = append(q.recvQ, wr)
	return nil
}

// clone captures the bytes of a segment at post time (the model's stand-in
// for DMA gather).
func clone(b []byte) []byte {
	c := make([]byte, len(b))
	copy(c, b)
	return c
}

// PostSend posts a send-side work request, charging the calling process the
// per-WQE host cost. Completion is reported asynchronously on the send CQ.
func (q *QP) PostSend(p *sim.Proc, wr SendWR) error {
	if q.closed {
		return ErrQPClosed
	}
	if q.peer == nil {
		return ErrNotConnected
	}
	if !wr.Local.valid() {
		return ErrBadSegment
	}
	p.Sleep(q.hca.fabric.cfg.PerWQE)
	q.issue(wr)
	return nil
}

// PostSendBatch posts wrs as one chained work-request list rung with a
// single doorbell: the posting process is charged Config.PerDoorbell once
// (PerWQE when PerDoorbell is zero) instead of PerWQE per request, which
// is the host-overhead saving doorbell batching buys. The WRs issue in
// slice order and complete individually on the send CQ. Validation is
// atomic: on error nothing is issued.
func (q *QP) PostSendBatch(p *sim.Proc, wrs []SendWR) error {
	if len(wrs) == 0 {
		return nil
	}
	if q.closed {
		return ErrQPClosed
	}
	if q.peer == nil {
		return ErrNotConnected
	}
	for i := range wrs {
		if !wrs[i].Local.valid() {
			return ErrBadSegment
		}
	}
	d := q.hca.fabric.cfg.PerDoorbell
	if d <= 0 {
		d = q.hca.fabric.cfg.PerWQE
	}
	p.Sleep(d)
	for i := range wrs {
		q.issue(wrs[i])
	}
	return nil
}

// PostSendAsync posts from scheduler context (no process to charge); used
// by layered code that batches posts inside event handlers.
func (q *QP) PostSendAsync(wr SendWR) error {
	if q.closed {
		return ErrQPClosed
	}
	if q.peer == nil {
		return ErrNotConnected
	}
	if !wr.Local.valid() {
		return ErrBadSegment
	}
	q.issue(wr)
	return nil
}

// issue runs the fabric timing model for wr and schedules its effects.
func (q *QP) issue(wr SendWR) {
	env := q.hca.fabric.env
	cfg := q.hca.fabric.cfg
	src, dst := q.hca, q.peer.hca
	now := env.Now()

	// Fault injection point: every send-side WR passes through the hook
	// before any timing state mutates, so an aborted WR leaves the
	// egress/ingress serialization clocks untouched.
	var extra sim.Duration
	if h := q.hca.fabric.fault; h != nil {
		var st Status
		extra, st = h.SendFault(src.name, wr.Op)
		if st != StatusSuccess {
			n := wr.Local.Len
			env.After(cfg.EventDelay+extra, func() {
				q.sendCQ.push(CQE{WRID: wr.ID, Op: wr.Op, Status: st, QP: q, ByteLen: n})
				q.traceComplete(wr.Op, now, n, wr.Flow)
			})
			return
		}
	}

	switch wr.Op {
	case OpSend, OpRDMAWrite:
		payload := clone(wr.Local.bytes())
		n := len(payload)
		// QP context fetch penalties on both adapters, plus first-touch
		// fault service when the local gather buffer is an ODP region.
		start := now.Add(src.qpPenalty(q)).Add(extra).
			Add(q.hca.fabric.odpDelay(wr.Local.MR, wr.Local.Off, n))
		egStart := maxTime(start, src.egressFree)
		egDone := egStart.Add(cfg.Link.BW.Over(n))
		src.egressFree = egDone
		inStart := maxTime(egStart.Add(cfg.Link.Prop), dst.ingressFree)
		inDone := inStart.Add(cfg.Link.BW.Over(n)).Add(dst.qpPenalty(q.peer))
		dst.ingressFree = inDone
		if wr.Op == OpRDMAWrite {
			// A cold remote ODP window stalls the responder's RDMA engine
			// while its fault resolves before the write can land.
			inDone = inDone.Add(q.hca.fabric.odpDelay(dst.lookupMR(wr.RemoteKey), wr.RemoteOff, n))
			dst.ingressFree = inDone
		}

		peer := q.peer
		var failed Status // set by deliver on a NAK-worthy outcome
		env.After(inDone.Sub(now), func() {
			failed = q.deliver(wr, payload, peer)
		})
		// Sender completion when the RC ack returns.
		ackAt := inDone.Add(cfg.Link.Prop)
		env.After(ackAt.Sub(now), func() {
			st := failed
			if st == StatusSuccess && peer.closed {
				st = StatusFlushErr
			}
			q.sendCQ.push(CQE{WRID: wr.ID, Op: wr.Op, Status: st, QP: q, ByteLen: n})
			q.traceComplete(wr.Op, now, n, wr.Flow)
		})

	case OpRDMARead:
		// Request travels to the responder, then data streams back. The
		// local destination faults in before the request leaves (the HCA
		// needs the sink resident to scatter the response).
		n := wr.Local.Len
		start := now.Add(src.qpPenalty(q)).Add(extra).
			Add(q.hca.fabric.odpDelay(wr.Local.MR, wr.Local.Off, n))
		reqArrive := maxTime(start, src.egressFree).Add(cfg.Link.BW.Over(32)).Add(cfg.Link.Prop)
		peer := q.peer
		env.After(reqArrive.Sub(now), func() {
			q.completeRDMARead(wr, peer, n, now)
		})
	}
}

// traceComplete records one post-to-completion span on the posting HCA's
// track (no-op unless fabric tracing is enabled); a non-zero flow id also
// continues the request's causal flow through the HCA.
func (q *QP) traceComplete(op Opcode, postAt sim.Time, n int, flow uint64) {
	tr := q.hca.fabric.tracer()
	if tr == nil {
		return
	}
	args := map[string]any{"bytes": n, "qpn": q.qpn}
	if flow != 0 {
		args["flow"] = flow
		tr.FlowStep(q.hca.name, "req", flow)
	}
	tr.Complete(q.hca.name, op.String(), postAt, q.hca.fabric.env.Now(), args)
}

// completeRDMARead runs at the responder when the read request arrives;
// postAt is when the requester posted the WR (for the completion span).
func (q *QP) completeRDMARead(wr SendWR, peer *QP, n int, postAt sim.Time) {
	env := q.hca.fabric.env
	cfg := q.hca.fabric.cfg
	now := env.Now()
	if peer.closed || q.closed {
		q.sendCQ.push(CQE{WRID: wr.ID, Op: wr.Op, Status: StatusFlushErr, QP: q})
		return
	}
	rmr := peer.hca.lookupMR(wr.RemoteKey)
	if rmr == nil || wr.RemoteOff < 0 || wr.RemoteOff+n > len(rmr.Buf) {
		q.sendCQ.push(CQE{WRID: wr.ID, Op: wr.Op, Status: StatusRemoteAccessErr, QP: q})
		return
	}
	payload := clone(rmr.Buf[wr.RemoteOff : wr.RemoteOff+n])
	// Data path: responder egress -> requester ingress. A cold remote ODP
	// range must fault in before the responder can stream it out.
	egStart := maxTime(now.Add(peer.hca.qpPenalty(peer)).
		Add(q.hca.fabric.odpDelay(rmr, wr.RemoteOff, n)), peer.hca.egressFree)
	egDone := egStart.Add(cfg.Link.BW.Over(n))
	peer.hca.egressFree = egDone
	inStart := maxTime(egStart.Add(cfg.Link.Prop), q.hca.ingressFree)
	inDone := inStart.Add(cfg.Link.BW.Over(n)).Add(q.hca.qpPenalty(q))
	q.hca.ingressFree = inDone
	env.After(inDone.Sub(now), func() {
		st := StatusSuccess
		if q.closed {
			st = StatusFlushErr
		} else {
			copy(wr.Local.bytes(), payload)
		}
		q.sendCQ.push(CQE{WRID: wr.ID, Op: wr.Op, Status: st, QP: q, ByteLen: n})
		q.traceComplete(wr.Op, postAt, n, wr.Flow)
	})
}

// deliver applies an arriving SEND/RDMA WRITE at the destination and
// returns the status the sender's ack will carry.
func (q *QP) deliver(wr SendWR, payload []byte, peer *QP) Status {
	if peer.closed {
		return StatusFlushErr
	}
	switch wr.Op {
	case OpSend:
		if len(peer.recvQ) == 0 {
			// RC would RNR-retry; the paper avoids this entirely with
			// credit-based flow control. Surface it as an error so tests
			// can demonstrate why flow control is required.
			return StatusRNR
		}
		rwr := peer.recvQ[0]
		peer.recvQ = peer.recvQ[1:]
		ncopy := copy(rwr.Local.bytes(), payload)
		peer.recvCQ.push(CQE{
			WRID: rwr.ID, Op: OpRecv, Status: StatusSuccess, QP: peer,
			ByteLen: ncopy, Solicited: wr.Solicited,
		})
	case OpRDMAWrite:
		rmr := peer.hca.lookupMR(wr.RemoteKey)
		if rmr == nil || wr.RemoteOff < 0 || wr.RemoteOff+len(payload) > len(rmr.Buf) {
			return StatusRemoteAccessErr
		}
		copy(rmr.Buf[wr.RemoteOff:], payload)
		// RDMA WRITE is invisible to the responder: no CQE at peer.
	}
	return StatusSuccess
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
