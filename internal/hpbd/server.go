package hpbd

import (
	"fmt"
	"sort"

	"hpbd/internal/ib"
	"hpbd/internal/netmodel"
	"hpbd/internal/placement"
	"hpbd/internal/ramdisk"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
	"hpbd/internal/tenant"
	"hpbd/internal/wire"
)

// ServerConfig parameterizes a memory server.
type ServerConfig struct {
	// StoreBytes is the total RamDisk capacity exported to clients.
	StoreBytes int64
	// Workers is the number of concurrent request processors; each owns
	// one staging buffer, so it bounds outstanding RDMA operations and
	// provides the paper's RDMA/memcpy overlap.
	Workers int
	// StagingBytes is the size of each staging buffer (>= the largest
	// request, 128 KB).
	StagingBytes int
	// RecvDepth is the number of request receive buffers pre-posted per
	// client connection; it must be >= the client's credit limit.
	RecvDepth int
	// IdleSpin is how long the server polls before yielding the CPU and
	// sleeping on a completion event (the paper: 200 us).
	IdleSpin sim.Duration
	// StoreOpOverhead is the per-request cost of reaching the RamDisk
	// store through its file-system interface (the paper's server
	// manipulates RamDisk-based files).
	StoreOpOverhead sim.Duration
	// Host carries wakeup costs.
	Host netmodel.HostModel
	// DoorbellBatch, when > 1, routes workers' RDMA posts through a
	// dedicated issuer process that drains up to this many queued
	// operations and posts each connection's share as one chained
	// doorbell (mirroring the client sender's batching). <= 1 keeps the
	// per-operation posts of the paper's design.
	DoorbellBatch int
	// Telemetry, if non-nil, is the registry the server reports into
	// (metric names are prefixed with the server name); nil gives the
	// server a private registry so Stats() always works.
	Telemetry *telemetry.Registry

	// Tenancy, if non-nil, turns on multi-tenant QoS (see tenancy.go):
	// the receive window is credit-partitioned per tenant, worker issue
	// order comes from the byte-weighted fair queue, and per-tenant
	// quotas are admission-enforced. Nil (the default) keeps the
	// single-tenant server byte-identical.
	Tenancy *tenant.Spec
	// TenantFIFO replaces the fair queue with strict FIFO issue while
	// keeping every other tenancy mechanism — the isolation experiments'
	// control arm. Ignored without Tenancy.
	TenantFIFO bool
	// TenantSelfCheck runs the credit bank's conservation check (the
	// creditbalance analyzer's runtime twin) at every credit operation
	// and scheduler tick, latching the first violation for TenancyCheck.
	TenantSelfCheck bool
	// TenantQuantum is the fair queue's issue quantum in bytes: a request
	// larger than one quantum is transferred one quantum per scheduler
	// grant, re-entering the queue between chunks, so a small request
	// never waits behind more than one quantum of a neighbor's bulk
	// transfer on the wire. Zero means 16 KB. Ignored with TenantFIFO,
	// which keeps the legacy monolithic issue as the control arm.
	TenantQuantum int
}

// DefaultServerConfig returns the paper's server configuration for a
// store of the given size.
func DefaultServerConfig(storeBytes int64) ServerConfig {
	return ServerConfig{
		StoreBytes:      storeBytes,
		Workers:         4,
		StagingBytes:    128 * 1024,
		RecvDepth:       32,
		IdleSpin:        200 * sim.Microsecond,
		StoreOpOverhead: 80 * sim.Microsecond,
		Host:            netmodel.DefaultHost(),
	}
}

// ServerStats aggregates server activity. It is a snapshot assembled from
// the telemetry registry ("<name>." counters); Stats() is the
// compatibility accessor.
type ServerStats struct {
	Requests    int64
	Writes      int64
	Reads       int64
	BytesStored int64
	BytesServed int64
	BadRequests int64
	IdleSleeps  int64
	RDMAIssued  int64
	Doorbells   int64 // RDMA doorbells rung (== RDMAIssued unless batching)
}

// serverMetrics are the server's registry handles, resolved once at
// creation under the server's name prefix (per-server RDMA op counts are
// what the multiserver figures need).
type serverMetrics struct {
	requests    *telemetry.Counter
	writes      *telemetry.Counter
	reads       *telemetry.Counter
	bytesStored *telemetry.Counter
	bytesServed *telemetry.Counter
	badRequests *telemetry.Counter
	idleSleeps  *telemetry.Counter
	rdmaIssued  *telemetry.Counter
	doorbells   *telemetry.Counter
}

func newServerMetrics(reg *telemetry.Registry, name string) serverMetrics {
	return serverMetrics{
		requests:    reg.Counter(name + ".requests"),
		writes:      reg.Counter(name + ".writes"),
		reads:       reg.Counter(name + ".reads"),
		bytesStored: reg.Counter(name + ".bytes_stored"),
		bytesServed: reg.Counter(name + ".bytes_served"),
		badRequests: reg.Counter(name + ".bad_requests"),
		idleSleeps:  reg.Counter(name + ".idle_sleeps"),
		rdmaIssued:  reg.Counter(name + ".rdma_issued"),
		doorbells:   reg.Counter(name + ".doorbells"),
	}
}

// srvReq is one request in flight inside the server. cont is non-nil on
// a quantum continuation: a partially transferred request re-queued by
// the fair scheduler between chunks (see tnServeQuantum).
type srvReq struct {
	conn *clientConn
	req  wire.Request
	cont *tnCont
}

// clientConn is the server-side state for one attached client.
type clientConn struct {
	qp       *ib.QP
	areaOff  int64
	areaSize int64
	recvMR   *ib.MR // RecvDepth request buffers

	// Tenancy state (nil/zero without ServerConfig.Tenancy).
	tenantID    string
	resident    map[int64]pageHeat // page index -> touch/write stamps
	reclaimKick func()             // wakes the owning device's reclaimer
}

// Server is the user-space memory server daemon.
type Server struct {
	env    *sim.Env
	name   string
	cfg    ServerConfig
	hca    *ib.HCA
	reqCQ  *ib.CQ // receive completions (requests)
	dataCQ *ib.CQ // RDMA + reply-send completions
	store  *ramdisk.RamDisk

	conns     map[*ib.QP]*clientConn
	ledger    *placement.Ledger
	tn        *srvTenancy // nil without cfg.Tenancy
	work      *sim.Chan[srvReq]
	sleepQ    *sim.WaitQueue
	rdmaWaits map[uint64]*sim.Event
	nextWRID  uint64
	issueQ    *sim.Chan[rdmaIssue] // nil unless DoorbellBatch > 1
	tel       *telemetry.Registry
	met       serverMetrics
	tracer    *telemetry.Tracer
	lc        *telemetry.Lifecycle

	// Fault-injection state (driven by internal/faultsim).
	crashed     bool
	hangUntil   sim.Time
	starveUntil sim.Time
	starved     []starvedRecv // receive buffers withheld during starvation
}

// starvedRecv records one receive buffer whose repost was withheld by an
// active StarveRecv fault.
type starvedRecv struct {
	conn *clientConn
	wrid uint64
	slot int
}

// NewServer creates a memory server on the fabric and starts its daemon
// processes.
func NewServer(f *ib.Fabric, name string, cfg ServerConfig) *Server {
	env := f.Env()
	hca := f.NewHCA(name)
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.New(env)
	}
	s := &Server{
		tel:       tel,
		met:       newServerMetrics(tel, name),
		tracer:    tel.Tracer(),
		env:       env,
		name:      name,
		cfg:       cfg,
		hca:       hca,
		reqCQ:     hca.CreateCQ(name + "-req"),
		dataCQ:    hca.CreateCQ(name + "-data"),
		store:     ramdisk.New(cfg.StoreBytes, f.Config().Mem),
		conns:     make(map[*ib.QP]*clientConn),
		ledger:    placement.NewLedger(cfg.StoreBytes),
		work:      sim.NewChan[srvReq](env, 0),
		sleepQ:    sim.NewWaitQueue(env),
		rdmaWaits: make(map[uint64]*sim.Event),
	}
	if cfg.Tenancy != nil {
		s.tnInit()
	}
	s.store.SetOpOverhead(cfg.StoreOpOverhead)
	s.reqCQ.SetEventHandler(func() { s.sleepQ.WakeAll() })
	env.Go(name+"-recv", s.recvLoop)
	env.Go(name+"-datacq", s.dataCQLoop)
	if cfg.DoorbellBatch > 1 {
		s.issueQ = sim.NewChan[rdmaIssue](env, 0)
		env.Go(name+"-issuer", s.rdmaIssuer)
	}
	workers := cfg.Workers
	if s.tn != nil && !cfg.TenantFIFO {
		// Fair-queue mode issues through a single worker: the wire is the
		// contended resource, and quantum-granular WFQ can only bound a
		// small tenant's wait if one scheduler grant means one transfer in
		// flight. The multi-worker RDMA/memcpy overlap is what the QoS
		// contract trades away; the FIFO control arm keeps it.
		workers = 1
	}
	for i := 0; i < workers; i++ {
		wname := fmt.Sprintf("%s-worker%d", name, i)
		env.Go(wname, func(p *sim.Proc) { s.worker(p, wname) })
	}
	return s
}

// Name returns the server's name.
func (s *Server) Name() string { return s.name }

// Stats returns a snapshot of the server statistics, read back from the
// telemetry registry.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Requests:    s.met.requests.Value(),
		Writes:      s.met.writes.Value(),
		Reads:       s.met.reads.Value(),
		BytesStored: s.met.bytesStored.Value(),
		BytesServed: s.met.bytesServed.Value(),
		BadRequests: s.met.badRequests.Value(),
		IdleSleeps:  s.met.idleSleeps.Value(),
		RDMAIssued:  s.met.rdmaIssued.Value(),
		Doorbells:   s.met.doorbells.Value(),
	}
}

// Telemetry returns the registry the server reports into.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// lifecycle lazily resolves the request-lifecycle analyzer on the server's
// registry. On a cluster node the registry is shared with the client
// device, which enables the analyzer, so server-side timing stamps reach
// the client's breakdown; a server on a private registry resolves nil and
// clients fall back to coarse flight-time attribution.
func (s *Server) lifecycle() *telemetry.Lifecycle {
	if s.lc == nil {
		s.lc = s.tel.Lifecycle()
	}
	return s.lc
}

// Store exposes the backing RamDisk (tests verify stored bytes through it).
func (s *Server) Store() *ramdisk.RamDisk { return s.store }

// FreeBytes returns unallocated store space.
func (s *Server) FreeBytes() int64 { return s.ledger.Free() }

// Ledger exposes the area ownership ledger (hpbdctl placement/tenants).
func (s *Server) Ledger() *placement.Ledger { return s.ledger }

// DropClients closes every client connection (server shutdown or crash):
// clients observe flushed completions and fail their devices.
func (s *Server) DropClients() {
	// Close in QP-number order: each Close flushes completions into the
	// owning client, so the order must not inherit map order.
	qps := make([]*ib.QP, 0, len(s.conns))
	for qp := range s.conns {
		qps = append(qps, qp)
	}
	sort.Slice(qps, func(i, j int) bool { return qps[i].QPN() < qps[j].QPN() })
	for _, qp := range qps {
		qp.Close()
	}
}

// Crash kills the server permanently: every client QP closes (posted
// receives flush into the clients) and subsequent attaches are refused.
// Idempotent, so a schedule may crash an already-crashed server.
func (s *Server) Crash() {
	if s.crashed {
		return
	}
	s.crashed = true
	s.tracer.Instant(s.name, "crash")
	s.DropClients()
}

// Crashed reports whether the server has been crashed.
func (s *Server) Crashed() bool { return s.crashed }

// HangFor wedges the server for d of sim-time: requests keep being
// accepted and processed, but no reply leaves until the hang lifts.
// Overlapping hangs extend to the latest deadline.
func (s *Server) HangFor(d sim.Duration) {
	until := s.env.Now().Add(d)
	if until > s.hangUntil {
		s.hangUntil = until
	}
	s.tracer.InstantArgs(s.name, "hang", map[string]any{"dur_us": d.Micros()})
}

// StarveRecv stops receive-buffer reposting for d: arriving requests
// are still served, but their buffers are withheld, so the client's
// credit window drains and its senders stall on flow control.
func (s *Server) StarveRecv(d sim.Duration) {
	until := s.env.Now().Add(d)
	if until > s.starveUntil {
		s.starveUntil = until
	}
	s.tracer.InstantArgs(s.name, "starve-recv", map[string]any{"dur_us": d.Micros()})
	s.env.After(d, s.repostStarved)
}

// repostStarved returns withheld receive buffers once the starvation
// window has passed (a later StarveRecv extends the window; the earlier
// callback then finds it still active and leaves the work to the later
// one). Reposts happen in withholding order, never map order.
func (s *Server) repostStarved() {
	if s.env.Now() < s.starveUntil {
		return
	}
	if s.tn != nil {
		// Tenancy: each withheld slot re-enters through the credit bank
		// (acquire or withhold), then accumulated free credits drain to
		// whatever demand built up during the window.
		starved := s.starved
		s.starved = nil
		for _, sr := range starved {
			if sr.conn.qp.Closed() {
				continue
			}
			s.tnRepostOrWithhold(sr.conn, sr.wrid, sr.slot)
		}
		s.tnGrantDrain()
		return
	}
	for _, sr := range s.starved {
		if sr.conn.qp.Closed() {
			continue
		}
		_ = sr.conn.qp.PostRecv(ib.RecvWR{
			ID:    sr.wrid,
			Local: ib.Segment{MR: sr.conn.recvMR, Off: sr.slot * wire.RequestSize, Len: wire.RequestSize},
		})
	}
	s.starved = s.starved[:0]
}

// attach allocates an area of size bytes for a client and wires a QP; it
// is called by the client's ConnectServer during device setup (standing in
// for the paper's socket-based QP information exchange). tenantID names
// the owner in the area ledger; under tenancy it must appear in the QoS
// spec, and the connection's receive window is posted under that
// tenant's credits (slots its share cannot cover are withheld until the
// bank grants them).
func (s *Server) attach(clientQP *ib.QP, size int64, tenantID string) (*ib.QP, int64, error) {
	if s.crashed {
		return nil, 0, fmt.Errorf("hpbd: server %s is down", s.name)
	}
	if s.tn != nil && s.tn.spec.Find(tenantID) == nil {
		return nil, 0, fmt.Errorf("hpbd: server %s has no tenant %q in its QoS spec", s.name, tenantID)
	}
	if size > s.ledger.Free() {
		return nil, 0, fmt.Errorf("hpbd: server %s cannot export %d bytes (%d free)", s.name, size, s.FreeBytes())
	}
	off, err := s.ledger.Allocate(tenantID, size)
	if err != nil {
		return nil, 0, err
	}
	qp := s.hca.CreateQP(s.dataCQ, s.reqCQ)
	ib.Connect(clientQP, qp)
	conn := &clientConn{
		qp:       qp,
		areaOff:  off,
		areaSize: size,
		recvMR:   s.hca.RegisterMRAtSetup(make([]byte, s.cfg.RecvDepth*wire.RequestSize)),
		tenantID: tenantID,
	}
	s.conns[qp] = conn
	if s.tn != nil {
		conn.resident = make(map[int64]pageHeat)
		for i := 0; i < s.cfg.RecvDepth; i++ {
			s.tnRepostOrWithhold(conn, uint64(i), i)
		}
		return qp, conn.areaOff, nil
	}
	for i := 0; i < s.cfg.RecvDepth; i++ {
		if err := qp.PostRecv(ib.RecvWR{
			ID:    uint64(i),
			Local: ib.Segment{MR: conn.recvMR, Off: i * wire.RequestSize, Len: wire.RequestSize},
		}); err != nil {
			return nil, 0, err
		}
	}
	return qp, conn.areaOff, nil
}

// recvLoop is the daemon's main thread: it drains request completions,
// reposts receive buffers, and feeds the worker pool. After IdleSpin with
// no work it yields the CPU and sleeps until a completion event (§5).
func (s *Server) recvLoop(p *sim.Proc) {
	for {
		e, ok := s.reqCQ.WaitPollTimeout(p, s.cfg.IdleSpin)
		if !ok {
			// Yield: arm the completion event and sleep.
			s.met.idleSleeps.Inc()
			s.tracer.Instant(s.name, "idle-sleep")
			s.reqCQ.ReqNotify(false)
			if e2, ok2 := s.reqCQ.Poll(); ok2 {
				e = e2
			} else {
				s.sleepQ.Wait(p)
				p.Sleep(s.cfg.Host.Wakeup)
				s.tracer.Instant(s.name, "wakeup")
				continue
			}
		}
		s.handleRecvCQE(p, e)
	}
}

func (s *Server) handleRecvCQE(p *sim.Proc, e ib.CQE) {
	if e.Op != ib.OpRecv {
		return
	}
	conn := s.conns[e.QP]
	if conn == nil || e.Status != ib.StatusSuccess {
		return
	}
	slot := int(e.WRID)
	buf := conn.recvMR.Buf[slot*wire.RequestSize : (slot+1)*wire.RequestSize]
	req, err := wire.UnmarshalRequest(buf)
	// Repost the receive buffer immediately; the request is decoded out.
	// Under an active receive-starvation fault the repost is withheld
	// instead (the request is still served), draining client credits.
	// Tenancy routes the repost through the credit bank: the arriving
	// request keeps the buffer's credit until its reply, and the
	// replacement buffer needs a credit of its own.
	if s.tn != nil {
		s.tnRepostOrWithhold(conn, e.WRID, slot)
	} else if s.env.Now() < s.starveUntil {
		s.starved = append(s.starved, starvedRecv{conn: conn, wrid: e.WRID, slot: slot})
	} else if perr := conn.qp.PostRecv(ib.RecvWR{
		ID:    e.WRID,
		Local: ib.Segment{MR: conn.recvMR, Off: slot * wire.RequestSize, Len: wire.RequestSize},
	}); perr != nil {
		return // connection torn down
	}
	if err != nil {
		s.met.badRequests.Inc()
		s.env.Go(s.name+"-nak", func(wp *sim.Proc) {
			nakMR := s.hca.RegisterMRAtSetup(make([]byte, wire.ReplySize))
			s.sendReply(wp, conn, nakMR, req.Handle, wire.StatusBadRequest)
			if s.tn != nil {
				s.tnRelease(conn)
			}
		})
		return
	}
	s.met.requests.Inc()
	if s.tn != nil {
		// The fair queue never blocks the receive loop; workers pop in
		// virtual-finish order. In quantum mode only the first wire
		// chunk's bytes are charged here — continuations charge their own.
		s.tn.sched.Push(conn.tenantID, s.tnDispatchBytes(req), s.env.Now(), srvReq{conn: conn, req: req})
		return
	}
	s.work.Send(p, srvReq{conn: conn, req: req})
}

// dataCQLoop demultiplexes RDMA and reply-send completions to the waiting
// workers by work-request ID.
func (s *Server) dataCQLoop(p *sim.Proc) {
	for {
		e := s.dataCQ.WaitPoll(p)
		if ev, ok := s.rdmaWaits[e.WRID]; ok {
			delete(s.rdmaWaits, e.WRID)
			if e.Status != ib.StatusSuccess {
				// Surface the failure to the waiting worker via a
				// triggered event; the worker re-checks QP state.
				ev.Trigger()
				continue
			}
			ev.Trigger()
		}
		// Reply-send completions carry no registered waiter: drained here.
	}
}

// rdmaIssue is one RDMA operation queued for the batching issuer.
type rdmaIssue struct {
	conn *clientConn
	wr   ib.SendWR
}

// postRDMA issues one RDMA op on conn's QP and returns an event that
// triggers on completion. With DoorbellBatch > 1 the op is handed to the
// issuer process, which chains adjacent ops per connection under a single
// doorbell; the completion event contract is identical either way.
func (s *Server) postRDMA(p *sim.Proc, conn *clientConn, op ib.Opcode, local ib.Segment, remoteKey uint32, remoteOff int, flow uint64) (*sim.Event, error) {
	s.nextWRID++
	id := s.nextWRID
	ev := sim.NewEvent(s.env)
	wr := ib.SendWR{
		ID:        id,
		Op:        op,
		Local:     local,
		RemoteKey: remoteKey,
		RemoteOff: remoteOff,
		Flow:      flow,
	}
	if s.issueQ != nil {
		s.rdmaWaits[id] = ev
		s.issueQ.Send(p, rdmaIssue{conn: conn, wr: wr})
		s.met.rdmaIssued.Inc()
		return ev, nil
	}
	s.rdmaWaits[id] = ev
	if err := conn.qp.PostSend(p, wr); err != nil {
		delete(s.rdmaWaits, id)
		return nil, err
	}
	s.met.rdmaIssued.Inc()
	s.met.doorbells.Inc()
	return ev, nil
}

// rdmaIssuer drains queued RDMA operations and rings one doorbell per
// connection's share of each batch (§4.2.1's issue path, batched). Order
// within a connection is the workers' enqueue order, and grouping walks
// the batch slice in first-appearance order — map iteration never decides
// what gets chained.
func (s *Server) rdmaIssuer(p *sim.Proc) {
	batch := make([]rdmaIssue, 0, s.cfg.DoorbellBatch)
	for {
		first, ok := s.issueQ.Recv(p)
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		for len(batch) < s.cfg.DoorbellBatch {
			it, more := s.issueQ.TryRecv()
			if !more {
				break
			}
			batch = append(batch, it)
		}
		for i := range batch {
			conn := batch[i].conn
			if conn == nil {
				continue // already chained with an earlier op
			}
			wrs := make([]ib.SendWR, 0, len(batch)-i)
			for j := i; j < len(batch); j++ {
				if batch[j].conn == conn {
					wrs = append(wrs, batch[j].wr)
					batch[j].conn = nil
				}
			}
			if err := conn.qp.PostSendBatch(p, wrs); err != nil {
				// Wake every chained worker; each re-checks QP state.
				for _, wr := range wrs {
					if ev, waiting := s.rdmaWaits[wr.ID]; waiting {
						delete(s.rdmaWaits, wr.ID)
						ev.Trigger()
					}
				}
				continue
			}
			s.met.doorbells.Inc()
		}
	}
}

// sendReply posts the completion control message through the caller's
// pre-registered reply buffer (solicited, so the client's armed event
// handler fires and wakes its receiver thread).
func (s *Server) sendReply(p *sim.Proc, conn *clientConn, replyMR *ib.MR, handle uint64, st wire.Status) {
	wire.MarshalReply(replyMR.Buf, &wire.Reply{Handle: handle, Status: st})
	_ = conn.qp.PostSend(p, ib.SendWR{
		ID:        0,
		Op:        ib.OpSend,
		Local:     ib.Segment{MR: replyMR, Off: 0, Len: wire.ReplySize},
		Solicited: true,
	})
}

// worker processes requests with its own staging buffer, providing the
// multiple-outstanding-RDMA + memcpy overlap of §4.2.1. wname labels this
// worker's trace track so the overlap is visible across workers. Under
// tenancy the worker pool feeds from the weighted fair queue instead of
// the FIFO work channel, observes each request's queueing delay into its
// tenant's sched-wait histogram, and releases the request's credit after
// service.
func (s *Server) worker(p *sim.Proc, wname string) {
	staging := s.hca.RegisterMRAtSetup(make([]byte, s.cfg.StagingBytes))
	replyMR := s.hca.RegisterMRAtSetup(make([]byte, wire.ReplySize))
	if s.tn != nil {
		for {
			item, pushAt, ok := s.tn.sched.Pop(p)
			if !ok {
				return
			}
			s.tnCheck()
			if item.cont == nil {
				// Continuations are issue grants, not arrivals: only the
				// request's first grant measures its queueing delay.
				s.tn.met[item.conn.tenantID].schedWait.Observe(p.Now().Sub(pushAt))
			}
			if s.cfg.TenantFIFO {
				s.serveOne(p, wname, staging, replyMR, item)
				s.tnRelease(item.conn)
				continue
			}
			item, grant := s.tnServeQuantum(p, wname, replyMR, item)
			switch grant {
			case tnDone:
				s.tnRelease(item.conn)
			case tnMore:
				rest := s.tnChunk(int(item.req.Length), item.cont.done)
				s.tn.sched.Push(item.conn.tenantID, rest, p.Now(), item)
			case tnParked:
				// A store proc owns the request now; it re-queues the
				// continuation or finishes and releases the credit itself.
			}
		}
	}
	for {
		item, ok := s.work.Recv(p)
		if !ok {
			return
		}
		s.serveOne(p, wname, staging, replyMR, item)
	}
}

// serveOne services a single request on the calling worker's staging and
// reply buffers.
func (s *Server) serveOne(p *sim.Proc, wname string, staging, replyMR *ib.MR, item srvReq) {
	conn, req := item.conn, item.req
	// Lifecycle instrumentation: wstart anchors the server's interior
	// split of the request, copyNs accumulates the local memcpy share,
	// and the client's flow (linked by handle through the shared
	// registry) continues on this worker's trace track. The stamp is
	// published just before every reply so the client's breakdown can
	// attribute send / rdma / server-copy / reply exactly.
	lc := s.lifecycle()
	wstart := p.Now()
	var copyNs sim.Duration
	flow, hasFlow := lc.TakeFlow(req.Handle)
	if hasFlow {
		s.tracer.FlowStep(wname, "req", flow)
	}
	reply := func(st wire.Status) {
		// An active hang fault wedges the reply (and its stamp) until
		// the deadline; sleeping before StampServer keeps the client's
		// exact stage partition intact — the hang shows up as server
		// time, which is where it was actually spent.
		if s.hangUntil > p.Now() {
			p.Sleep(s.hangUntil.Sub(p.Now()))
		}
		lc.StampServer(req.Handle, telemetry.ServerStamp{
			Start: wstart, Reply: p.Now(), Copy: copyNs,
		})
		s.sendReply(p, conn, replyMR, req.Handle, st)
	}
	n := int(req.Length)
	if n <= 0 || n > s.cfg.StagingBytes ||
		req.Offset+uint64(n) > uint64(conn.areaSize) {
		s.met.badRequests.Inc()
		reply(wire.StatusOutOfRange)
		return
	}
	storeOff := conn.areaOff + int64(req.Offset)
	switch req.Type {
	case wire.ReqWrite:
		// Quota admission: over-quota growth is refused before any RDMA
		// is issued; the client's recovery path backs off and retries.
		if s.tn != nil && !s.tnAdmitWrite(conn, req) {
			reply(wire.StatusRetry)
			return
		}
		// Swap-out: pull the page data out of the client's pool.
		span := s.tracer.Begin(wname, "rdma-read")
		ev, err := s.postRDMA(p, conn, ib.OpRDMARead,
			ib.Segment{MR: staging, Off: 0, Len: n}, req.RKey, int(req.Addr), flow)
		if err != nil {
			reply(wire.StatusServerError)
			return
		}
		ev.Wait(p)
		span.EndArgs(map[string]any{"bytes": n})
		if conn.qp.Closed() {
			return
		}
		span = s.tracer.Begin(wname, "store-write")
		copyStart := p.Now()
		if err := s.store.WriteAt(p, staging.Buf[:n], storeOff); err != nil {
			copyNs = p.Now().Sub(copyStart)
			reply(wire.StatusServerError)
			return
		}
		copyNs = p.Now().Sub(copyStart)
		span.EndArgs(map[string]any{"bytes": n})
		s.met.writes.Inc()
		s.met.bytesStored.Add(int64(n))
		if s.tn != nil {
			s.tnMarkWrite(conn, req)
		}
		reply(wire.StatusOK)

	case wire.ReqRead:
		// Swap-in: push stored data into the client's pool.
		span := s.tracer.Begin(wname, "store-read")
		copyStart := p.Now()
		if err := s.store.ReadAt(p, staging.Buf[:n], storeOff); err != nil {
			copyNs = p.Now().Sub(copyStart)
			reply(wire.StatusServerError)
			return
		}
		copyNs = p.Now().Sub(copyStart)
		span.EndArgs(map[string]any{"bytes": n})
		span = s.tracer.Begin(wname, "rdma-write")
		ev, err := s.postRDMA(p, conn, ib.OpRDMAWrite,
			ib.Segment{MR: staging, Off: 0, Len: n}, req.RKey, int(req.Addr), flow)
		if err != nil {
			reply(wire.StatusServerError)
			return
		}
		ev.Wait(p)
		span.EndArgs(map[string]any{"bytes": n})
		if conn.qp.Closed() {
			return
		}
		s.met.reads.Inc()
		s.met.bytesServed.Add(int64(n))
		if s.tn != nil {
			s.tnTouchRead(conn, req)
		}
		reply(wire.StatusOK)

	default:
		s.met.badRequests.Inc()
		reply(wire.StatusBadRequest)
	}
}
