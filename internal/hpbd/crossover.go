package hpbd

import (
	"hpbd/internal/blockdev"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// defaultCrossoverWindow is the controller's observation window in
// completed requests when ClientConfig.CrossoverWindow is zero.
const defaultCrossoverWindow = 64

// crossoverCtrl adapts the hybrid copy/register threshold at run time.
// The static design point — netmodel.Fig3CrossoverBytes — assumes every
// large request pays a full pinned registration; with the MR reuse cache
// (and even more so with ODP) the amortized cost of the register path is
// far lower, so the optimal cutover sits well below Figure 3's. The
// controller measures where it actually is: every window of completed
// requests it reads the MR cache's hit/miss delta, re-derives the
// crossover for the observed reuse factor, and moves the threshold
// halfway toward it. Two refinements keep it honest:
//
//   - a window with MR-path traffic but heavy pool-wait time (per-stage
//     lifecycle data: pool wait above 1/8 of end-to-end) steps the
//     threshold down one page — routing more requests around the
//     congested pool is worth more than the model's crossover says;
//   - a window with no MR-path traffic at all carries no reuse signal,
//     so the controller probes downward instead of holding still —
//     otherwise a threshold above the workload's request sizes would
//     starve itself of measurements forever.
//
// The threshold is clamped to [PageSize, MaxRequestBytes+PageSize] (the
// top end meaning "hybrid off": no block-layer request qualifies) and
// kept page-aligned so the cutover never lands mid-page.
type crossoverCtrl struct {
	dev *Device
	win int // completions per control tick

	n          int // completions observed this window
	lastHits   int64
	lastMisses int64
	poolWait   sim.Duration // accumulated pool-wait time this window
	e2e        sim.Duration // accumulated end-to-end time this window

	thrGauge *telemetry.Gauge
	ticks    *telemetry.Counter
}

func newCrossoverCtrl(d *Device, window int, reg *telemetry.Registry) *crossoverCtrl {
	if window <= 0 {
		window = defaultCrossoverWindow
	}
	c := &crossoverCtrl{
		dev:      d,
		win:      window,
		thrGauge: reg.Gauge("hpbd.crossover.bytes"),
		ticks:    reg.Counter("hpbd.crossover.ticks"),
	}
	c.thrGauge.Set(int64(d.hybridThr))
	return c
}

// observe feeds one completed request's lifecycle record into the
// controller; every win-th completion runs a control tick. Called from
// recordLifecycle/recordMergedLifecycle, so it must not allocate.
//
//hpbd:hotpath
func (c *crossoverCtrl) observe(rec *telemetry.ReqRecord) {
	c.n++
	c.poolWait += rec.Stages[telemetry.StagePoolWait]
	c.e2e += rec.End.Sub(rec.Start)
	if c.n >= c.win {
		c.tick()
	}
}

// tick is one control step: derive a target threshold from the window's
// MR-cache reuse and pool-pressure observations, move halfway toward it,
// clamp, align, publish.
//
//hpbd:hotpath
func (c *crossoverCtrl) tick() {
	d := c.dev
	hits, misses := d.mrc.hits.Value(), d.mrc.misses.Value()
	dh, dm := hits-c.lastHits, misses-c.lastMisses
	c.lastHits, c.lastMisses = hits, misses

	thr := d.hybridThr
	if dh+dm == 0 {
		// No MR-path traffic this window: no reuse signal. Probe downward
		// so a threshold above the workload's request sizes cannot pin
		// itself there by starving the measurement.
		step := thr / 8
		if step < netmodel.PageSize {
			step = netmodel.PageSize
		}
		thr -= step
	} else {
		// Average registrations amortize over (hits+misses)/misses uses;
		// a window of pure hits reads as deep reuse.
		reuse := int(dh + dm)
		if dm > 0 {
			reuse = int((dh + dm) / dm)
		}
		var target int
		if d.mrc.odp {
			target = d.mem.ODPRegisterCrossover(reuse)
		} else {
			target = d.mem.CopyRegisterCrossover(reuse)
		}
		thr = (thr + target) / 2
		if c.e2e > 0 && c.poolWait > c.e2e/8 {
			// The pool is the bottleneck: push one more page class of
			// traffic onto the register path than the cost model asks.
			thr -= netmodel.PageSize
		}
	}
	if thr < netmodel.PageSize {
		thr = netmodel.PageSize
	}
	if max := blockdev.MaxRequestBytes + netmodel.PageSize; thr > max {
		thr = max
	}
	thr -= thr % netmodel.PageSize
	d.hybridThr = thr

	c.n = 0
	c.poolWait = 0
	c.e2e = 0
	c.ticks.Inc()
	c.thrGauge.Set(int64(thr))
}
