package hpbd

import (
	"testing"
	"testing/quick"

	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

func TestPoolFirstFit(t *testing.T) {
	env := sim.NewEnv()
	bp := NewBufferPool(env, 1024)
	a, err := bp.TryAlloc(256)
	if err != nil || a != 0 {
		t.Fatalf("first alloc at %d err %v, want 0", a, err)
	}
	b, _ := bp.TryAlloc(256)
	if b != 256 {
		t.Fatalf("second alloc at %d, want 256", b)
	}
	bp.Free(a)
	// First-fit reuses the lowest hole.
	c, _ := bp.TryAlloc(128)
	if c != 0 {
		t.Fatalf("first-fit alloc at %d, want 0", c)
	}
	env.Close()
}

func TestPoolMergeOnFree(t *testing.T) {
	env := sim.NewEnv()
	bp := NewBufferPool(env, 1024)
	offs := make([]int, 4)
	for i := range offs {
		offs[i], _ = bp.TryAlloc(256)
	}
	if _, err := bp.TryAlloc(1); err != ErrPoolExhausted {
		t.Fatalf("pool should be exhausted, got %v", err)
	}
	// Free out of order; neighbours must merge back to one extent.
	bp.Free(offs[1])
	bp.Free(offs[3])
	bp.Free(offs[0])
	bp.Free(offs[2])
	if bp.Fragments() != 1 || bp.LargestFree() != 1024 {
		t.Errorf("fragments=%d largest=%d, want 1/1024", bp.Fragments(), bp.LargestFree())
	}
	env.Close()
}

func TestPoolAllocWaitsAndWakes(t *testing.T) {
	env := sim.NewEnv()
	bp := NewBufferPool(env, 512)
	var got int
	var gotAt sim.Time
	env.Go("holder", func(p *sim.Proc) {
		off, _ := bp.Alloc(p, 512)
		p.Sleep(100 * sim.Microsecond)
		bp.Free(off)
	})
	env.Go("waiter", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		off, err := bp.Alloc(p, 256)
		if err != nil {
			t.Errorf("Alloc: %v", err)
		}
		got = off
		gotAt = p.Now()
	})
	env.Run()
	env.Close()
	if gotAt != sim.Time(100*sim.Microsecond) {
		t.Errorf("waiter satisfied at %v, want 100us", gotAt)
	}
	if got != 0 {
		t.Errorf("waiter got offset %d, want 0", got)
	}
	if bp.AllocWaits != 1 {
		t.Errorf("AllocWaits = %d, want 1", bp.AllocWaits)
	}
}

func TestPoolOversizeRejected(t *testing.T) {
	env := sim.NewEnv()
	bp := NewBufferPool(env, 128)
	env.Go("t", func(p *sim.Proc) {
		if _, err := bp.Alloc(p, 256); err == nil {
			t.Error("alloc larger than pool must fail, not block forever")
		}
	})
	env.Run()
	env.Close()
	if _, err := bp.TryAlloc(0); err == nil {
		t.Error("zero-size alloc accepted")
	}
}

func TestPoolDoubleFreePanics(t *testing.T) {
	env := sim.NewEnv()
	bp := NewBufferPool(env, 128)
	off, _ := bp.TryAlloc(64)
	bp.Free(off)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	bp.Free(off)
}

// Property: under any interleaving of allocs and frees, allocations never
// overlap, stay in bounds, and the free/used byte accounting is exact.
func TestQuickPoolInvariants(t *testing.T) {
	type op struct {
		Alloc bool
		Size  uint16
	}
	f := func(ops []op) bool {
		env := sim.NewEnv()
		const size = 1 << 16
		bp := NewBufferPool(env, size)
		live := map[int]int{} // off -> len
		var order []int
		for _, o := range ops {
			if o.Alloc || len(order) == 0 {
				n := int(o.Size)%4096 + 1
				off, err := bp.TryAlloc(n)
				if err != nil {
					continue
				}
				// Bounds and overlap checks.
				if off < 0 || off+n > size {
					return false
				}
				for lo, ln := range live {
					if off < lo+ln && lo < off+n {
						return false
					}
				}
				live[off] = n
				order = append(order, off)
			} else {
				i := int(o.Size) % len(order)
				off := order[i]
				order = append(order[:i], order[i+1:]...)
				bp.Free(off)
				delete(live, off)
			}
		}
		used := 0
		for _, n := range live {
			used += n
		}
		if used != bp.InUse() {
			return false
		}
		// Free everything: the pool must coalesce back to one extent.
		for _, off := range order {
			bp.Free(off)
		}
		env.Close()
		return bp.Fragments() == 1 && bp.LargestFree() == size && bp.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The adaptive class index must build once fragmentation crosses
// poolIndexBuild free extents, publish per-class occupancy gauges while
// active, and drop again once coalescing shrinks the free set — with
// allocation correctness unaffected on both sides of each transition.
func TestPoolIndexBuildsAndDrops(t *testing.T) {
	env := sim.NewEnv()
	reg := telemetry.New(env)
	bp := NewBufferPool(env, 1<<20)
	bp.SetTelemetry(reg)
	if bp.indexed {
		t.Fatal("index active on a fresh pool")
	}

	// Checkerboard: allocate 2*poolIndexBuild page-sized blocks, free every
	// other one. Each freed block is isolated, so the free set grows one
	// extent per free until the index builds.
	const n = 4096
	offs := make([]int, 0, 2*poolIndexBuild)
	for i := 0; i < 2*poolIndexBuild; i++ {
		off, err := bp.TryAlloc(n)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		offs = append(offs, off)
	}
	for i := 0; i < len(offs); i += 2 {
		bp.Free(offs[i])
	}
	if !bp.indexed {
		t.Fatalf("index not built at %d free extents", bp.Fragments())
	}
	// The holes are page-sized, so class 12 (4096..8191) must be populated.
	if got := reg.Gauge("pool.class.12").Value(); got < poolIndexBuild {
		t.Errorf("pool.class.12 = %d, want >= %d", got, poolIndexBuild)
	}

	// Indexed allocation must reuse a hole, not only the tail extent.
	off, err := bp.TryAlloc(n)
	if err != nil {
		t.Fatalf("indexed alloc: %v", err)
	}
	if off != offs[0] {
		t.Errorf("indexed alloc at %d, want lowest hole %d", off, offs[0])
	}
	bp.Free(off)

	// Free the rest: coalescing collapses the free set and the index must
	// drop, zeroing the class gauges.
	for i := 1; i < len(offs); i += 2 {
		bp.Free(offs[i])
	}
	if bp.indexed {
		t.Errorf("index still active at %d free extents", bp.Fragments())
	}
	if bp.Fragments() != 1 || bp.LargestFree() != 1<<20 || bp.InUse() != 0 {
		t.Errorf("after drain: fragments=%d largest=%d inuse=%d",
			bp.Fragments(), bp.LargestFree(), bp.InUse())
	}
	if got := reg.Gauge("pool.class.12").Value(); got != 0 {
		t.Errorf("pool.class.12 = %d after index drop, want 0", got)
	}
	env.Close()
}

// The fragmentation scenario the paper's merge algorithm targets: after a
// churn of mixed-size allocations, a full-size request must still succeed
// once everything is freed, and mid-churn the largest hole must satisfy a
// page cluster.
func TestPoolFragmentationRecovery(t *testing.T) {
	env := sim.NewEnv()
	bp := NewBufferPool(env, 1<<20)
	rnd := env.Rand
	var live []int
	for i := 0; i < 2000; i++ {
		if rnd.Intn(2) == 0 || len(live) == 0 {
			n := (rnd.Intn(32) + 1) * 4096
			if off, err := bp.TryAlloc(n); err == nil {
				live = append(live, off)
			}
		} else {
			i := rnd.Intn(len(live))
			bp.Free(live[i])
			live = append(live[:i], live[i+1:]...)
		}
	}
	for _, off := range live {
		bp.Free(off)
	}
	if bp.Fragments() != 1 || bp.LargestFree() != 1<<20 {
		t.Errorf("after churn: fragments=%d largest=%d", bp.Fragments(), bp.LargestFree())
	}
	env.Close()
}
