package hpbd

import (
	"errors"
	"testing"

	"hpbd/internal/sim"
)

// elasticRecoveryConfig is the chaos-tier client: retries, watchdog and
// runtime membership armed together.
func elasticRecoveryConfig() ClientConfig {
	ccfg := recoveryConfig()
	ccfg.Elastic = true
	return ccfg
}

// TestChaosCrashMidChunkCopy crashes the destination server while the
// rebalance copy stream is mid-flight. The move must abort with the
// range still on its source, every byte written before the grow must
// read back, and the directory must never have routed a sector to the
// dead newcomer.
func TestChaosCrashMidChunkCopy(t *testing.T) {
	const area = 1 << 20
	const blocks, blockBytes = 32, 64 * 1024 // fills the 2 MB device
	ccfg := elasticRecoveryConfig()
	ccfg.MigrationMBps = 50 // ~16 ms per planned move: the crash lands mid-copy
	cb := newChaosBed(t, 2, area, ccfg, false, "")

	growing := sim.NewEvent(cb.env)
	sc := DefaultServerConfig(8 << 20)
	sc.Telemetry = cb.reg
	srv := NewServer(cb.fabric, "mem2", sc)
	cb.env.Go("killer", func(p *sim.Proc) {
		growing.Wait(p)
		p.Sleep(1 * sim.Millisecond) // well inside the first chunk stream
		srv.Crash()
	})
	cb.run(func(p *sim.Proc) {
		if err := cb.writeBlocks(p, blocks, blockBytes, 3); err != nil {
			t.Fatalf("write pass: %v", err)
		}
		growing.Trigger()
		err := cb.dev.AddServerLive(p, srv, 8<<20)
		if err == nil {
			t.Fatal("AddServerLive succeeded with the new server crashed mid-copy")
		}
		if !errors.Is(err, ErrMigration) {
			t.Errorf("AddServerLive error = %v, want ErrMigration", err)
		}
		dir := cb.dev.Directory()
		if dir == nil {
			t.Fatal("no directory after attempted grow")
		}
		if n := dir.SectorsOn(2); n != 0 {
			t.Errorf("%d sectors committed to the crashed newcomer", n)
		}
		// Zero loss: everything still lives on the founders.
		cb.verifyBlocks(t, p, blocks, blockBytes, 3)
		// Steady state survives the failed grow.
		if err := cb.writeBlocks(p, blocks, blockBytes, 21); err != nil {
			t.Fatalf("post-abort writes: %v", err)
		}
		cb.verifyBlocks(t, p, blocks, blockBytes, 21)
	})
	if got := cb.reg.Counter("migration.aborted").Value(); got == 0 {
		t.Error("migration.aborted not incremented")
	}
	if got := cb.reg.Counter("migration.cutovers").Value(); got != 0 {
		t.Errorf("%d cutovers recorded for an aborted grow", got)
	}
	if cb.dev.Failed() {
		t.Error("device failed: a dead newcomer must only cost its own link")
	}
	assertExactPartition(t, cb.dev)
}

// TestChaosDrainDuringSenderrBurst fires a transient send-error burst
// into the client HCA while a drain's chunk copies are in flight. The
// migration transfers must retry on their live links (never degrade)
// and the drain must still complete with zero loss.
func TestChaosDrainDuringSenderrBurst(t *testing.T) {
	const area = 1 << 20
	const blocks, blockBytes = 32, 64 * 1024
	ccfg := elasticRecoveryConfig()
	ccfg.MigrationMBps = 25 // ~2.6 ms per 64 KB chunk: the drain spans the burst
	cb := newChaosBed(t, 2, area, ccfg, false, "senderr@80500usx2=hpbd0")

	cb.run(func(p *sim.Proc) {
		if err := cb.writeBlocks(p, blocks, blockBytes, 3); err != nil {
			t.Fatalf("write pass: %v", err)
		}
		cb.addServer(t, p, "mem2", 8<<20)
		// Start the drain at exactly t=80ms so the 80.5ms burst lands in
		// its copy stream (the paced grow above finishes around 76ms).
		if now := sim.Duration(p.Now()); now < 80*sim.Millisecond {
			p.Sleep(80*sim.Millisecond - now)
		} else {
			t.Fatalf("setup overran the burst window: now=%v", p.Now())
		}
		if err := cb.dev.DrainServer(p, "mem0"); err != nil {
			t.Fatalf("drain under senderr burst: %v", err)
		}
		if n := cb.dev.Directory().SectorsOn(0); n != 0 {
			t.Errorf("mem0 still owns %d sectors", n)
		}
		if err := cb.dev.RemoveServer(p, "mem0"); err != nil {
			t.Fatalf("RemoveServer: %v", err)
		}
		cb.verifyBlocks(t, p, blocks, blockBytes, 3)
	})
	if inj := cb.reg.Counter("faultsim.injected").Value(); inj == 0 {
		t.Error("fault schedule never fired; the burst missed the run")
	}
	st := cb.dev.Stats()
	if st.Retries == 0 {
		t.Error("senderr burst caused no retries")
	}
	if st.LinkFailures != 0 || st.Fallbacks != 0 {
		t.Errorf("transient errors escalated during migration: links=%d fallbacks=%d",
			st.LinkFailures, st.Fallbacks)
	}
	if got := cb.reg.Counter("migration.aborted").Value(); got != 0 {
		t.Errorf("drain aborted %d times; transient errors must be retried", got)
	}
	assertExactPartition(t, cb.dev)
}

// TestChaosDoubleMembershipChange runs two concurrent AddServerLive
// calls with foreground writes flowing throughout: the membership mutex
// must serialize them into two clean epochs with no interleaved state,
// and the last write to every block must win.
func TestChaosDoubleMembershipChange(t *testing.T) {
	const area = 1 << 20
	const blocks, blockBytes = 16, 64 * 1024
	ccfg := elasticRecoveryConfig()
	ccfg.MigrationMBps = 200
	cb := newChaosBed(t, 2, area, ccfg, false, "")

	addDone := [2]*sim.Event{sim.NewEvent(cb.env), sim.NewEvent(cb.env)}
	for i := 0; i < 2; i++ {
		i := i
		cb.env.Go("adder", func(p *sim.Proc) {
			defer addDone[i].Trigger()
			cb.addServer(t, p, "mem"+string(rune('2'+i)), 4<<20)
		})
	}
	cb.run(func(p *sim.Proc) {
		seed := byte(3)
		if err := cb.writeBlocks(p, blocks, blockBytes, seed); err != nil {
			t.Fatalf("write pass: %v", err)
		}
		// Keep rewriting the whole device until both adds finish, so
		// writes interleave with both migrations and the cutovers between
		// them.
		for !addDone[0].Triggered() || !addDone[1].Triggered() {
			seed += 2
			if err := cb.writeBlocks(p, blocks, blockBytes, seed); err != nil {
				t.Fatalf("rewrite pass (seed %d): %v", seed, err)
			}
		}
		dir := cb.dev.Directory()
		if got := len(dir.Servers()); got != 4 {
			t.Fatalf("directory has %d servers, want 4", got)
		}
		if dir.SectorsOn(2) == 0 || dir.SectorsOn(3) == 0 {
			t.Errorf("rebalance skipped a newcomer: mem2=%d mem3=%d sectors",
				dir.SectorsOn(2), dir.SectorsOn(3))
		}
		if len(dir.PlanRebalance()) != 0 {
			t.Error("fleet unbalanced after both adds returned")
		}
		cb.verifyBlocks(t, p, blocks, blockBytes, seed)
	})
	if got := cb.reg.Counter("migration.aborted").Value(); got != 0 {
		t.Errorf("%d aborted moves in a fault-free double add", got)
	}
	if cb.reg.Counter("migration.cutovers").Value() < 2 {
		t.Error("expected at least one cutover per added server")
	}
	if epoch := cb.dev.Directory().Epoch(); epoch < 4 {
		t.Errorf("epoch = %d after two adds with moves, want >= 4", epoch)
	}
	assertExactPartition(t, cb.dev)
}
