package hpbd

import (
	"bytes"
	"strings"
	"testing"

	"hpbd/internal/sim"
)

// TestFlightDumpOnMigrationAbort: a migration abort is a recovery event,
// so it must leave the flight recorder's last-N-requests table in the
// log exactly like a timeout or a lost link does. Crash the destination
// mid-copy and check the dump landed with the abort reason.
func TestFlightDumpOnMigrationAbort(t *testing.T) {
	const area = 1 << 20
	const blocks, blockBytes = 32, 64 * 1024
	ccfg := elasticRecoveryConfig()
	ccfg.MigrationMBps = 50 // ~16 ms per planned move: the crash lands mid-copy
	cb := newChaosBed(t, 2, area, ccfg, false, "")
	var dumped bytes.Buffer
	cb.dev.Lifecycle().Flight().SetDumpWriter(&dumped)

	growing := sim.NewEvent(cb.env)
	sc := DefaultServerConfig(8 << 20)
	sc.Telemetry = cb.reg
	srv := NewServer(cb.fabric, "mem2", sc)
	cb.env.Go("killer", func(p *sim.Proc) {
		growing.Wait(p)
		p.Sleep(1 * sim.Millisecond)
		srv.Crash()
	})
	cb.run(func(p *sim.Proc) {
		if err := cb.writeBlocks(p, blocks, blockBytes, 3); err != nil {
			t.Fatalf("write pass: %v", err)
		}
		growing.Trigger()
		if err := cb.dev.AddServerLive(p, srv, 8<<20); err == nil {
			t.Fatal("AddServerLive succeeded with the new server crashed mid-copy")
		}
	})
	if got := cb.reg.Counter("migration.aborted").Value(); got == 0 {
		t.Fatal("migration.aborted not incremented; the abort never happened")
	}
	if cb.dev.Lifecycle().Flight().Dumps() == 0 {
		t.Error("migration abort produced no flight-recorder dump")
	}
	if !strings.Contains(dumped.String(), "migration aborted") {
		t.Errorf("dump reason missing the abort:\n%s", dumped.String())
	}
}

// TestFlightDumpOnWatchdogCancel: every request the watchdog flags as
// overdue dumps the flight recorder once, so a wedged server leaves the
// recent request history in the log before recovery kicks in.
func TestFlightDumpOnWatchdogCancel(t *testing.T) {
	ccfg := recoveryConfig()
	cb := newChaosBed(t, 1, 1<<20, ccfg, true, "hang@100us+20ms=mem0")
	var dumped bytes.Buffer
	cb.dev.Lifecycle().Flight().SetDumpWriter(&dumped)
	const blocks = 8
	cb.run(func(p *sim.Proc) {
		if err := cb.writeBlocks(p, blocks, 4096, 7); err != nil {
			t.Errorf("writes under hang: %v", err)
			return
		}
		cb.verifyBlocks(t, p, blocks, 4096, 7)
	})
	if got := cb.reg.Counter("hpbd.timeout_cancels").Value(); got == 0 {
		t.Fatal("watchdog cancelled nothing; the hang went unnoticed")
	}
	if cb.dev.Lifecycle().Flight().Dumps() == 0 {
		t.Error("watchdog cancel produced no flight-recorder dump")
	}
	if !strings.Contains(dumped.String(), "request timeout") {
		t.Errorf("dump reason missing the timeout:\n%s", dumped.String())
	}
}
