package hpbd

import (
	"math/rand"
	"testing"

	"hpbd/internal/sim"
)

// fig6Mix models the testswap request-size distribution (Fig. 6): mostly
// near-128K writes with a tail of page-cluster-sized reads. Sizes are
// sector-aligned like real pool traffic.
func fig6Mix(rnd *rand.Rand) int {
	if rnd.Intn(100) < 70 {
		return (120 + rnd.Intn(9)) * 1024 // 120K..128K
	}
	return (4 + 4*rnd.Intn(8)) * 1024 // 4K..32K
}

// benchPool exercises alloc/free churn with up to outstanding buffers in
// flight. outstanding=16 is the regime the client's credit window
// produces; larger values model a shared pool under many devices, where
// the free list fragments and first-fit's linear scan degenerates.
func benchPool(b *testing.B, mk func(env *sim.Env, size int) *BufferPool, poolBytes, outstanding int) {
	env := sim.NewEnv()
	pool := mk(env, poolBytes)
	rnd := rand.New(rand.NewSource(1))
	held := make([]int, 0, outstanding)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(held) == cap(held) || (len(held) > 0 && rnd.Intn(3) == 0) {
			k := rnd.Intn(len(held))
			pool.Free(held[k])
			held = append(held[:k], held[k+1:]...)
			continue
		}
		off, err := pool.TryAlloc(fig6Mix(rnd))
		if err != nil {
			// Pool momentarily exhausted: drain one and retry next round.
			k := rnd.Intn(len(held))
			pool.Free(held[k])
			held = append(held[:k], held[k+1:]...)
			continue
		}
		held = append(held, off)
	}
	b.StopTimer()
	for _, off := range held {
		pool.Free(off)
	}
	env.Close()
}

// BenchmarkPoolSizeClassed measures the segregated-fit allocator on the
// Fig. 6 mix at the paper's scale (1 MB pool, credit-window concurrency);
// it must at least match the first-fit baseline below.
func BenchmarkPoolSizeClassed(b *testing.B) {
	benchPool(b, NewBufferPool, 1<<20, 16)
}

// BenchmarkPoolFirstFit measures the paper's original first-fit free list
// on the same mix.
func BenchmarkPoolFirstFit(b *testing.B) {
	benchPool(b, NewFirstFitPool, 1<<20, 16)
}

// BenchmarkPoolSizeClassedFragmented runs the same mix on a large shared
// pool with 1024 buffers in flight, where hundreds of free extents
// accumulate and the class index pays off.
func BenchmarkPoolSizeClassedFragmented(b *testing.B) {
	benchPool(b, NewBufferPool, 512<<20, 1024)
}

// BenchmarkPoolFirstFitFragmented is the first-fit baseline for the
// fragmented regime.
func BenchmarkPoolFirstFitFragmented(b *testing.B) {
	benchPool(b, NewFirstFitPool, 512<<20, 1024)
}
