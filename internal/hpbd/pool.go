// Package hpbd implements the paper's contribution: the High Performance
// Block Device. The client (Device) is a block device driver that serves
// the VM's swap requests by shipping pages to remote memory servers over
// InfiniBand verbs; the server (Server) is a RamDisk-backed daemon that
// moves page data with server-initiated RDMA READ/WRITE and overlaps those
// transfers with its local copies.
//
// Design elements reproduced from the paper (sections 4-5):
//
//   - pre-registered registration buffer pool with first-fit allocation,
//     free-neighbor merging, and an allocation wait queue (§4.2.2);
//   - server-initiated RDMA: READ pulls swap-out data from the client,
//     WRITE pushes swap-in data to the client (§4.2.1);
//   - event-based asynchronous communication: a sender thread and a
//     receiver thread woken by solicited completion events that drains
//     replies in bursts (§4.2.3, §5);
//   - credit (water-mark) flow control against the pre-posted receive
//     buffers (§4.2.4);
//   - multiple servers with the swap area distributed in contiguous
//     blocked (non-striped) ranges (§4.2.5).
package hpbd

import (
	"errors"
	"fmt"
	"math/bits"

	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// ErrPoolExhausted is returned by TryAlloc when no fitting block exists.
var ErrPoolExhausted = errors.New("hpbd: registration pool exhausted")

// extent is a free region [off, off+len).
type extent struct {
	off, len int
}

// BufferPool is the pre-registered communication buffer pool (§4.2.2):
// deallocation merges with free neighbours to fight external fragmentation,
// keeping page-sized requests satisfiable from contiguous space, and
// requests that cannot be satisfied wait on an allocation queue retried on
// every free.
//
// The default allocator is adaptive segregated-fit: free extents live in
// an address-ordered list, and once the free set fragments past
// poolIndexBuild extents they are additionally indexed by power-of-two
// size class (class c holds lengths in [2^c, 2^(c+1)), each class in
// address order). While the free set is small — the steady state at the
// paper's pool sizes, where coalescing keeps it to a handful of extents —
// allocation is a plain address-ordered first-fit scan with no index
// maintenance, exactly the baseline's cost. With the index active,
// allocation scans the request's own class for the lowest-offset extent
// that fits and falls back to the lowest-offset extent of the next
// non-empty larger class, so the scan touches classes, not every
// fragment. Coalescing binary-searches the address-ordered list for the
// two neighbours instead of walking it. The paper's plain first-fit
// allocator is preserved behind NewFirstFitPool as the ablation baseline.
type BufferPool struct {
	size     int
	firstFit bool

	// Legacy first-fit state (ablation baseline): sorted by offset, no two
	// adjacent.
	free []extent

	// Segregated-fit state. ordered holds the free set sorted by offset
	// (no two adjacent); when indexed, classes additionally index the same
	// extents by size class.
	ordered []extent
	classes [][]extent
	indexed bool
	// Largest free extent, maintained incrementally so telemetry sampling
	// and admission checks never rescan the free lists: largestCnt counts
	// extents of exactly largest bytes, and only when it drops to zero is
	// the (single) highest non-empty class rescanned.
	largest    int
	largestCnt int

	allocs  map[int]int
	waiters *sim.WaitQueue

	// Stats. AllocWaits and PeakInUse predate the telemetry registry and
	// stay exported for compatibility; SetTelemetry mirrors them into the
	// registry (pool.alloc.waits counter, pool.in_use gauge) alongside the
	// blocked-time histogram.
	AllocWaits  int64 // allocations that had to block
	PeakInUse   int
	inUse       int
	allocsTotal int64

	// Telemetry handles (nil-safe: all no-ops until SetTelemetry).
	waitCount *telemetry.Counter   // = AllocWaits, registry view
	waitHist  *telemetry.Histogram // time spent blocked per waiting Alloc
	inUseG    *telemetry.Gauge     // bytes allocated (peak = PeakInUse)
	fragG     *telemetry.Gauge     // number of free extents
	largestG  *telemetry.Gauge     // largest contiguous free block, bytes
	reg       *telemetry.Registry  // for lazy per-class occupancy gauges
	classG    []*telemetry.Gauge   // pool.class.NN occupancy, lazily created
	tracer    *telemetry.Tracer
}

// NewBufferPool creates a size-classed pool of size bytes.
func NewBufferPool(env *sim.Env, size int) *BufferPool {
	b := newPool(env, size)
	b.addFree(0, size)
	return b
}

// NewFirstFitPool creates a pool using the paper's original first-fit
// free-list allocator. It exists as the ablation/benchmark baseline for
// the size-classed default (ClientConfig.FirstFitPool selects it).
func NewFirstFitPool(env *sim.Env, size int) *BufferPool {
	b := newPool(env, size)
	b.firstFit = true
	b.free = []extent{{0, size}}
	b.bumpLargest(size)
	return b
}

func newPool(env *sim.Env, size int) *BufferPool {
	return &BufferPool{
		size:    size,
		classes: make([][]extent, classOf(size)+1),
		allocs:  make(map[int]int),
		waiters: sim.NewWaitQueue(env),
	}
}

// The class index engages only when the free set is fragmented enough to
// make a linear first-fit scan the bigger cost; below that, maintaining
// the index is pure overhead. Hysteresis keeps a workload hovering around
// the boundary from rebuilding the index every operation.
const (
	poolIndexBuild = 32 // free extents at which the class index turns on
	poolIndexDrop  = 8  // free extents at which it is dropped again
)

// classOf returns the size class of an n-byte extent: floor(log2(n)).
func classOf(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n)) - 1
}

// SetTelemetry backs the pool's counters with reg under the "pool."
// prefix: pool.alloc.waits (counter), pool.alloc.wait (histogram of time
// blocked), pool.in_use (gauge, bytes), pool.fragments and
// pool.largest_free (gauges), and per-class occupancy gauges
// pool.class.NN created lazily for classes that hold extents. Call before
// first I/O.
func (b *BufferPool) SetTelemetry(reg *telemetry.Registry) {
	b.waitCount = reg.Counter("pool.alloc.waits")
	b.waitHist = reg.Histogram("pool.alloc.wait")
	b.inUseG = reg.Gauge("pool.in_use")
	b.fragG = reg.Gauge("pool.fragments")
	b.largestG = reg.Gauge("pool.largest_free")
	b.reg = reg
	b.classG = make([]*telemetry.Gauge, len(b.classes))
	b.tracer = reg.Tracer()
	b.sample()
}

// sample publishes the incrementally maintained free-space shape.
func (b *BufferPool) sample() {
	b.fragG.Set(int64(b.Fragments()))
	b.largestG.Set(int64(b.LargestFree()))
}

// classGauge returns (lazily creating) the occupancy gauge for class c.
func (b *BufferPool) classGauge(c int) *telemetry.Gauge {
	if b.reg == nil {
		return nil
	}
	if b.classG[c] == nil {
		b.classG[c] = b.reg.Gauge(fmt.Sprintf("pool.class.%02d", c))
	}
	return b.classG[c]
}

// Size returns the pool capacity in bytes.
func (b *BufferPool) Size() int { return b.size }

// InUse returns currently allocated bytes.
func (b *BufferPool) InUse() int { return b.inUse }

// FreeBytes returns the total free bytes (possibly fragmented).
func (b *BufferPool) FreeBytes() int { return b.size - b.inUse }

// LargestFree returns the largest contiguous free block in O(1): the max
// is maintained incrementally across alloc/free for both allocators (the
// original first-fit implementation rescanned the whole free list here,
// which telemetry sampling turned into an every-operation cost).
func (b *BufferPool) LargestFree() int {
	return b.largest
}

// Fragments returns the number of free extents.
func (b *BufferPool) Fragments() int {
	if b.firstFit {
		return len(b.free)
	}
	return len(b.ordered)
}

// searchExtents returns the index of the first extent at or after off in
// an address-ordered list (hand-rolled: this sits on the hot path of every
// alloc and free, where sort.Search's indirect calls would dominate).
func searchExtents(lst []extent, off int) int {
	lo, hi := 0, len(lst)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if lst[mid].off < off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findOrdered returns the index of the first free extent at or after off.
func (b *BufferPool) findOrdered(off int) int {
	return searchExtents(b.ordered, off)
}

// classAdd inserts e into its size class, keeping address order.
func (b *BufferPool) classAdd(e extent) {
	c := classOf(e.len)
	lst := b.classes[c]
	i := searchExtents(lst, e.off)
	lst = append(lst, extent{})
	copy(lst[i+1:], lst[i:])
	lst[i] = e
	b.classes[c] = lst
	if b.classG != nil {
		b.classGauge(c).Set(int64(len(lst)))
	}
}

// classRemove detaches e from its size class.
func (b *BufferPool) classRemove(e extent) {
	c := classOf(e.len)
	lst := b.classes[c]
	i := searchExtents(lst, e.off)
	b.classes[c] = append(lst[:i], lst[i+1:]...)
	if b.classG != nil {
		b.classGauge(c).Set(int64(len(b.classes[c])))
	}
}

// bumpLargest/dropLargest maintain the incremental largest-free tracking.
func (b *BufferPool) bumpLargest(n int) {
	if n > b.largest {
		b.largest, b.largestCnt = n, 1
	} else if n == b.largest {
		b.largestCnt++
	}
}

func (b *BufferPool) dropLargest(n int) {
	if n != b.largest {
		return
	}
	if b.largestCnt--; b.largestCnt == 0 {
		b.recomputeLargest()
	}
}

// recomputeLargest rescans for the max after the last largest-sized extent
// disappeared. With the class index active, every extent in a class below
// the highest non-empty one is strictly smaller than that class's floor,
// so only one class is scanned; otherwise the (short) free list is.
func (b *BufferPool) recomputeLargest() {
	b.largest, b.largestCnt = 0, 0
	if b.firstFit || !b.indexed {
		lst := b.free
		if !b.firstFit {
			lst = b.ordered
		}
		for _, e := range lst {
			b.bumpLargest(e.len)
		}
		return
	}
	for c := len(b.classes) - 1; c >= 0; c-- {
		if len(b.classes[c]) == 0 {
			continue
		}
		for _, e := range b.classes[c] {
			b.bumpLargest(e.len)
		}
		return
	}
}

// addFree inserts a free extent that is already known not to touch any
// other free extent (the constructor, and coalesced inserts from Free).
func (b *BufferPool) addFree(off, n int) {
	i := b.findOrdered(off)
	b.ordered = append(b.ordered, extent{})
	copy(b.ordered[i+1:], b.ordered[i:])
	b.ordered[i] = extent{off, n}
	if b.indexed {
		b.classAdd(extent{off, n})
	}
	b.bumpLargest(n)
}

// checkIndex builds or drops the class index when the free-set size
// crosses the hysteresis band. Decisions depend only on len(ordered), so
// they are deterministic across runs.
func (b *BufferPool) checkIndex() {
	if b.indexed {
		if len(b.ordered) <= poolIndexDrop {
			b.dropIndex()
		}
	} else if len(b.ordered) >= poolIndexBuild {
		b.buildIndex()
	}
}

// buildIndex populates the size classes from the address-ordered free
// list. Extents arrive in ascending address order, so every classAdd
// appends at the end of its class list.
func (b *BufferPool) buildIndex() {
	b.indexed = true
	for _, e := range b.ordered {
		b.classAdd(e)
	}
}

func (b *BufferPool) dropIndex() {
	b.indexed = false
	for c := range b.classes {
		if len(b.classes[c]) == 0 {
			continue
		}
		b.classes[c] = b.classes[c][:0]
		if b.classG != nil {
			b.classGauge(c).Set(0)
		}
	}
}

// TryAlloc performs a non-blocking allocation: address-ordered first fit
// over the legacy free list, or segregated fit over the size classes.
func (b *BufferPool) TryAlloc(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("hpbd: invalid allocation size %d", n)
	}
	if b.firstFit {
		return b.tryAllocFirstFit(n)
	}
	if !b.indexed {
		// Small free set: address-ordered first fit straight over the
		// ordered list, no index to maintain.
		for i := range b.ordered {
			if b.ordered[i].len >= n {
				off := b.ordered[i].off
				l := b.ordered[i].len
				b.ordered[i].off += n
				b.ordered[i].len -= n
				if b.ordered[i].len == 0 {
					b.ordered = append(b.ordered[:i], b.ordered[i+1:]...)
				}
				b.dropLargest(l)
				if l > n {
					b.bumpLargest(l - n)
				}
				b.recordAlloc(off, n)
				return off, nil
			}
		}
		return 0, ErrPoolExhausted
	}
	// The request's own class can hold extents both under and over n
	// (class floor <= n <= class ceiling), so it is scanned for the first
	// (lowest-offset) fit; higher classes fit by construction, so the
	// lowest non-empty one yields its lowest offset immediately.
	var pick extent
	ci, cls := -1, -1 // index within class, class number
	c0 := classOf(n)
	for j, e := range b.classes[c0] {
		if e.len >= n {
			pick, ci, cls = e, j, c0
			break
		}
	}
	if ci < 0 {
		for c := c0 + 1; c < len(b.classes); c++ {
			if len(b.classes[c]) > 0 {
				pick, ci, cls = b.classes[c][0], 0, c
				break
			}
		}
	}
	if ci < 0 {
		return 0, ErrPoolExhausted
	}
	// The scan already located pick inside its class; remove by index
	// rather than re-searching.
	lst := b.classes[cls]
	b.classes[cls] = append(lst[:ci], lst[ci+1:]...)
	if b.classG != nil {
		b.classGauge(cls).Set(int64(len(b.classes[cls])))
	}
	b.dropLargest(pick.len)
	i := b.findOrdered(pick.off)
	if pick.len > n {
		// The remainder keeps the extent's slot in address order (same
		// position, higher start), so it is rewritten in place.
		rem := extent{pick.off + n, pick.len - n}
		b.ordered[i] = rem
		b.classAdd(rem)
		b.bumpLargest(rem.len)
	} else {
		b.ordered = append(b.ordered[:i], b.ordered[i+1:]...)
		b.checkIndex()
	}
	b.recordAlloc(pick.off, n)
	return pick.off, nil
}

func (b *BufferPool) tryAllocFirstFit(n int) (int, error) {
	for i := range b.free {
		if b.free[i].len >= n {
			off := b.free[i].off
			l := b.free[i].len
			b.free[i].off += n
			b.free[i].len -= n
			if b.free[i].len == 0 {
				b.free = append(b.free[:i], b.free[i+1:]...)
			}
			b.dropLargest(l)
			if l > n {
				b.bumpLargest(l - n)
			}
			b.recordAlloc(off, n)
			return off, nil
		}
	}
	return 0, ErrPoolExhausted
}

// recordAlloc books the allocation [off, off+n) into the shared state.
func (b *BufferPool) recordAlloc(off, n int) {
	b.allocs[off] = n
	b.inUse += n
	b.allocsTotal++
	if b.inUse > b.PeakInUse {
		b.PeakInUse = b.inUse
	}
	b.inUseG.Set(int64(b.inUse))
	b.sample()
}

// Alloc blocks on the allocation wait queue until a fitting block of n
// bytes is available (§4.2.2: "a memory allocation wait queue is used to
// accommodate the allocation requests that can not be filled temporarily").
func (b *BufferPool) Alloc(p *sim.Proc, n int) (int, error) {
	if n > b.size {
		return 0, fmt.Errorf("hpbd: allocation %d exceeds pool size %d", n, b.size)
	}
	waited := false
	var t0 sim.Time
	var span telemetry.Span
	for {
		off, err := b.TryAlloc(n)
		if err == nil {
			if waited {
				b.waitHist.Observe(p.Now().Sub(t0))
				span.EndArgs(map[string]any{"bytes": n})
			}
			return off, nil
		}
		if !waited {
			b.AllocWaits++
			b.waitCount.Inc()
			t0 = p.Now()
			span = b.tracer.Begin("pool", "alloc-wait")
			waited = true
		}
		b.waiters.Wait(p)
	}
}

// Free releases the allocation at off, merging with free neighbours and
// waking all blocked allocators to retry.
func (b *BufferPool) Free(off int) {
	n, ok := b.allocs[off]
	if !ok {
		panic(fmt.Sprintf("hpbd: free of unallocated offset %d", off))
	}
	delete(b.allocs, off)
	b.inUse -= n
	b.inUseG.Set(int64(b.inUse))

	if b.firstFit {
		b.freeFirstFit(off, n)
	} else {
		// i is the right-neighbour candidate; i-1 the left.
		i := b.findOrdered(off)
		mergeR := i < len(b.ordered) && b.ordered[i].off == off+n
		mergeL := i > 0 && b.ordered[i-1].off+b.ordered[i-1].len == off
		start, length := off, n
		switch {
		case mergeL && mergeR:
			l, r := b.ordered[i-1], b.ordered[i]
			if b.indexed {
				b.classRemove(l)
				b.classRemove(r)
			}
			b.dropLargest(l.len)
			b.dropLargest(r.len)
			start, length = l.off, l.len+n+r.len
			b.ordered[i-1] = extent{start, length}
			b.ordered = append(b.ordered[:i], b.ordered[i+1:]...)
		case mergeL:
			l := b.ordered[i-1]
			if b.indexed {
				b.classRemove(l)
			}
			b.dropLargest(l.len)
			start, length = l.off, l.len+n
			b.ordered[i-1] = extent{start, length}
		case mergeR:
			r := b.ordered[i]
			if b.indexed {
				b.classRemove(r)
			}
			b.dropLargest(r.len)
			length = n + r.len
			b.ordered[i] = extent{start, length}
		default:
			b.ordered = append(b.ordered, extent{})
			copy(b.ordered[i+1:], b.ordered[i:])
			b.ordered[i] = extent{start, length}
		}
		if b.indexed {
			b.classAdd(extent{start, length})
		}
		b.bumpLargest(length)
		b.checkIndex()
	}
	b.sample()
	b.waiters.WakeAll()
}

func (b *BufferPool) freeFirstFit(off, n int) {
	// Insert into the sorted free list.
	i := 0
	for i < len(b.free) && b.free[i].off < off {
		i++
	}
	b.free = append(b.free, extent{})
	copy(b.free[i+1:], b.free[i:])
	b.free[i] = extent{off, n}

	// Merge with the right neighbour.
	if i+1 < len(b.free) && b.free[i].off+b.free[i].len == b.free[i+1].off {
		b.dropLargest(b.free[i+1].len)
		b.free[i].len += b.free[i+1].len
		b.free = append(b.free[:i+1], b.free[i+2:]...)
	}
	// Merge with the left neighbour.
	if i > 0 && b.free[i-1].off+b.free[i-1].len == b.free[i].off {
		b.dropLargest(b.free[i-1].len)
		b.free[i-1].len += b.free[i].len
		b.free = append(b.free[:i], b.free[i+1:]...)
		i--
	}
	b.bumpLargest(b.free[i].len)
}
