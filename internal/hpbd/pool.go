// Package hpbd implements the paper's contribution: the High Performance
// Block Device. The client (Device) is a block device driver that serves
// the VM's swap requests by shipping pages to remote memory servers over
// InfiniBand verbs; the server (Server) is a RamDisk-backed daemon that
// moves page data with server-initiated RDMA READ/WRITE and overlaps those
// transfers with its local copies.
//
// Design elements reproduced from the paper (sections 4-5):
//
//   - pre-registered registration buffer pool with first-fit allocation,
//     free-neighbor merging, and an allocation wait queue (§4.2.2);
//   - server-initiated RDMA: READ pulls swap-out data from the client,
//     WRITE pushes swap-in data to the client (§4.2.1);
//   - event-based asynchronous communication: a sender thread and a
//     receiver thread woken by solicited completion events that drains
//     replies in bursts (§4.2.3, §5);
//   - credit (water-mark) flow control against the pre-posted receive
//     buffers (§4.2.4);
//   - multiple servers with the swap area distributed in contiguous
//     blocked (non-striped) ranges (§4.2.5).
package hpbd

import (
	"errors"
	"fmt"

	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// ErrPoolExhausted is returned by TryAlloc when no fitting block exists.
var ErrPoolExhausted = errors.New("hpbd: registration pool exhausted")

// extent is a free region [off, off+len).
type extent struct {
	off, len int
}

// BufferPool is the pre-registered communication buffer pool (§4.2.2):
// allocation is first-fit over an ordered free list; deallocation merges
// with free neighbours to fight external fragmentation, keeping page-sized
// requests satisfiable from contiguous space. Requests that cannot be
// satisfied wait on an allocation queue and are retried on every free.
type BufferPool struct {
	size    int
	free    []extent // sorted by offset, no two adjacent
	allocs  map[int]int
	waiters *sim.WaitQueue

	// Stats. AllocWaits and PeakInUse predate the telemetry registry and
	// stay exported for compatibility; SetTelemetry mirrors them into the
	// registry (pool.alloc.waits counter, pool.in_use gauge) alongside the
	// blocked-time histogram.
	AllocWaits  int64 // allocations that had to block
	PeakInUse   int
	inUse       int
	allocsTotal int64

	// Telemetry handles (nil-safe: all no-ops until SetTelemetry).
	waitCount *telemetry.Counter   // = AllocWaits, registry view
	waitHist  *telemetry.Histogram // time spent blocked per waiting Alloc
	inUseG    *telemetry.Gauge     // bytes allocated (peak = PeakInUse)
	tracer    *telemetry.Tracer
}

// NewBufferPool creates a pool of size bytes.
func NewBufferPool(env *sim.Env, size int) *BufferPool {
	return &BufferPool{
		size:    size,
		free:    []extent{{0, size}},
		allocs:  make(map[int]int),
		waiters: sim.NewWaitQueue(env),
	}
}

// SetTelemetry backs the pool's counters with reg under the "pool."
// prefix: pool.alloc.waits (counter), pool.alloc.wait (histogram of time
// blocked), pool.in_use (gauge, bytes). Call before first I/O.
func (b *BufferPool) SetTelemetry(reg *telemetry.Registry) {
	b.waitCount = reg.Counter("pool.alloc.waits")
	b.waitHist = reg.Histogram("pool.alloc.wait")
	b.inUseG = reg.Gauge("pool.in_use")
	b.tracer = reg.Tracer()
}

// Size returns the pool capacity in bytes.
func (b *BufferPool) Size() int { return b.size }

// InUse returns currently allocated bytes.
func (b *BufferPool) InUse() int { return b.inUse }

// FreeBytes returns the total free bytes (possibly fragmented).
func (b *BufferPool) FreeBytes() int { return b.size - b.inUse }

// LargestFree returns the largest contiguous free block.
func (b *BufferPool) LargestFree() int {
	max := 0
	for _, e := range b.free {
		if e.len > max {
			max = e.len
		}
	}
	return max
}

// Fragments returns the number of free extents.
func (b *BufferPool) Fragments() int { return len(b.free) }

// TryAlloc performs a non-blocking first-fit allocation.
func (b *BufferPool) TryAlloc(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("hpbd: invalid allocation size %d", n)
	}
	for i := range b.free {
		if b.free[i].len >= n {
			off := b.free[i].off
			b.free[i].off += n
			b.free[i].len -= n
			if b.free[i].len == 0 {
				b.free = append(b.free[:i], b.free[i+1:]...)
			}
			b.allocs[off] = n
			b.inUse += n
			b.allocsTotal++
			if b.inUse > b.PeakInUse {
				b.PeakInUse = b.inUse
			}
			b.inUseG.Set(int64(b.inUse))
			return off, nil
		}
	}
	return 0, ErrPoolExhausted
}

// Alloc blocks on the allocation wait queue until a first-fit block of n
// bytes is available (§4.2.2: "a memory allocation wait queue is used to
// accommodate the allocation requests that can not be filled temporarily").
func (b *BufferPool) Alloc(p *sim.Proc, n int) (int, error) {
	if n > b.size {
		return 0, fmt.Errorf("hpbd: allocation %d exceeds pool size %d", n, b.size)
	}
	waited := false
	var t0 sim.Time
	var span telemetry.Span
	for {
		off, err := b.TryAlloc(n)
		if err == nil {
			if waited {
				b.waitHist.Observe(p.Now().Sub(t0))
				span.EndArgs(map[string]any{"bytes": n})
			}
			return off, nil
		}
		if !waited {
			b.AllocWaits++
			b.waitCount.Inc()
			t0 = p.Now()
			span = b.tracer.Begin("pool", "alloc-wait")
			waited = true
		}
		b.waiters.Wait(p)
	}
}

// Free releases the allocation at off, merging with free neighbours and
// waking all blocked allocators to retry.
func (b *BufferPool) Free(off int) {
	n, ok := b.allocs[off]
	if !ok {
		panic(fmt.Sprintf("hpbd: free of unallocated offset %d", off))
	}
	delete(b.allocs, off)
	b.inUse -= n
	b.inUseG.Set(int64(b.inUse))

	// Insert into the sorted free list.
	i := 0
	for i < len(b.free) && b.free[i].off < off {
		i++
	}
	b.free = append(b.free, extent{})
	copy(b.free[i+1:], b.free[i:])
	b.free[i] = extent{off, n}

	// Merge with the right neighbour.
	if i+1 < len(b.free) && b.free[i].off+b.free[i].len == b.free[i+1].off {
		b.free[i].len += b.free[i+1].len
		b.free = append(b.free[:i+1], b.free[i+2:]...)
	}
	// Merge with the left neighbour.
	if i > 0 && b.free[i-1].off+b.free[i-1].len == b.free[i].off {
		b.free[i-1].len += b.free[i].len
		b.free = append(b.free[:i], b.free[i+1:]...)
	}
	b.waiters.WakeAll()
}
