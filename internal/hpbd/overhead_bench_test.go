package hpbd

import (
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/health"
	"hpbd/internal/ib"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// benchRequestPath measures the real (host) cost of one simulated 4K
// write round trip. entries selects the lifecycle configuration: 0 is the
// always-on default (analyzer + flight ring), -1 the explicit opt-out.
// The gap between the two is the observability tax on the datapath; the
// acceptance gate keeps it within a few percent. withHealth additionally
// attaches the fleet health engine (sampler, SLO tracker and rule
// engine) the way cluster.Build wires it, so the gate also bounds the
// monitoring tax.
func benchRequestPath(b *testing.B, entries int, withHealth bool) {
	env := sim.NewEnv()
	f := ib.NewFabric(env, ib.DefaultConfig())
	ccfg := DefaultClientConfig()
	ccfg.FlightRecEntries = entries
	if withHealth {
		ccfg.Telemetry = telemetry.New(env)
	}
	dev := NewDevice(f, "hpbd0", ccfg)
	srv := NewServer(f, "mem0", DefaultServerConfig(1<<20))
	if err := dev.ConnectServer(srv, 1<<20); err != nil {
		b.Fatalf("ConnectServer: %v", err)
	}
	q := blockdev.NewQueue(env, netmodel.DefaultHost(), dev)
	if withHealth {
		m := health.NewMonitor(env, ccfg.Telemetry, health.Config{})
		q.SetActivityHook(m.Kick)
		m.Start()
	}
	data := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	env.Go("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			w, err := q.Submit(true, 0, data)
			if err != nil {
				b.Errorf("Submit: %v", err)
				return
			}
			q.Unplug()
			if err := w.Wait(p); err != nil {
				b.Errorf("write: %v", err)
				return
			}
		}
	})
	env.Run()
	env.Close()
}

func BenchmarkRequestPathLifecycleOn(b *testing.B)  { benchRequestPath(b, 0, false) }
func BenchmarkRequestPathLifecycleOff(b *testing.B) { benchRequestPath(b, -1, false) }
func BenchmarkRequestPathHealthOn(b *testing.B)     { benchRequestPath(b, 0, true) }
