package hpbd

import (
	"bytes"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/sim"
)

func TestStripedLayoutRoundTrip(t *testing.T) {
	ccfg := DefaultClientConfig()
	ccfg.StripeBytes = 64 * 1024
	tb := newTestbed(t, 4, 1<<20, ccfg)
	// A 128K write covers two 64K stripes on two servers.
	want := pattern(128*1024, 5)
	var got []byte
	tb.run(func(p *sim.Proc) {
		w, err := tb.queue.Submit(true, 0, append([]byte(nil), want...))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		tb.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Fatalf("write: %v", err)
		}
		buf := make([]byte, len(want))
		r, _ := tb.queue.Submit(false, 0, buf)
		tb.queue.Unplug()
		if err := r.Wait(p); err != nil {
			t.Fatalf("read: %v", err)
		}
		got = buf
	})
	if !bytes.Equal(got, want) {
		t.Error("striped round trip corrupted data")
	}
	if tb.dev.Stats().Splits == 0 {
		t.Error("128K over 64K stripes did not split")
	}
	// The two stripes must land on different servers.
	if tb.servers[0].Stats().Writes == 0 || tb.servers[1].Stats().Writes == 0 {
		t.Errorf("stripe distribution: server writes = %d,%d,%d,%d",
			tb.servers[0].Stats().Writes, tb.servers[1].Stats().Writes,
			tb.servers[2].Stats().Writes, tb.servers[3].Stats().Writes)
	}
}

func TestStripedCoversWholeDevice(t *testing.T) {
	ccfg := DefaultClientConfig()
	ccfg.StripeBytes = 64 * 1024
	tb := newTestbed(t, 4, 1<<20, ccfg)
	last := tb.dev.Sectors() - 8 // final page of the device
	tb.run(func(p *sim.Proc) {
		w, err := tb.queue.Submit(true, last, pattern(4096, 9))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		tb.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Fatalf("write at device end: %v", err)
		}
	})
}

func TestRegisterOnTheFlySlowerButCorrect(t *testing.T) {
	run := func(fly bool) (sim.Duration, []byte) {
		ccfg := DefaultClientConfig()
		ccfg.RegisterOnTheFly = fly
		tb := newTestbed(t, 1, 4<<20, ccfg)
		want := pattern(128*1024, 3)
		var got []byte
		var elapsed sim.Duration
		tb.run(func(p *sim.Proc) {
			t0 := p.Now()
			var ios []*blockdev.IO
			for i := 0; i < 8; i++ {
				io, _ := tb.queue.Submit(true, int64(i*600), append([]byte(nil), want...))
				tb.queue.Unplug()
				ios = append(ios, io)
			}
			for _, io := range ios {
				if err := io.Wait(p); err != nil {
					t.Fatalf("write: %v", err)
				}
			}
			buf := make([]byte, len(want))
			r, _ := tb.queue.Submit(false, 0, buf)
			tb.queue.Unplug()
			if err := r.Wait(p); err != nil {
				t.Fatalf("read: %v", err)
			}
			got = buf
			elapsed = p.Now().Sub(t0)
		})
		return elapsed, got
	}
	poolTime, poolData := run(false)
	flyTime, flyData := run(true)
	want := pattern(128*1024, 3)
	if !bytes.Equal(poolData, want) || !bytes.Equal(flyData, want) {
		t.Fatal("data corrupted in one of the modes")
	}
	if flyTime <= poolTime {
		t.Errorf("register-on-the-fly (%v) should be slower than pool copy (%v) in the 4K-128K range",
			flyTime, poolTime)
	}
}

func TestPollingReceiverWorks(t *testing.T) {
	ccfg := DefaultClientConfig()
	ccfg.PollingReceiver = true
	tb := newTestbed(t, 1, 1<<20, ccfg)
	want := pattern(4096, 8)
	var got []byte
	tb.run(func(p *sim.Proc) {
		w, _ := tb.queue.Submit(true, 0, append([]byte(nil), want...))
		tb.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Fatalf("write: %v", err)
		}
		buf := make([]byte, 4096)
		r, _ := tb.queue.Submit(false, 0, buf)
		tb.queue.Unplug()
		if err := r.Wait(p); err != nil {
			t.Fatalf("read: %v", err)
		}
		got = buf
	})
	if !bytes.Equal(got, want) {
		t.Error("polling receiver corrupted data")
	}
}
