package hpbd

import (
	"bytes"
	"strings"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/ib"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// newSharedRegistryBed wires a single-server testbed whose client and
// server share one telemetry registry, as cluster.Build does — the
// configuration in which the server's timing stamps reach the client's
// critical-path analyzer.
func newSharedRegistryBed(t *testing.T, ccfg ClientConfig, mutate func(*ServerConfig)) (*testbed, *telemetry.Registry) {
	t.Helper()
	env := sim.NewEnv()
	reg := telemetry.New(env)
	f := ib.NewFabric(env, ib.DefaultConfig())
	ccfg.Telemetry = reg
	dev := NewDevice(f, "hpbd0", ccfg)
	sc := DefaultServerConfig(1 << 20)
	sc.Telemetry = reg
	if mutate != nil {
		mutate(&sc)
	}
	srv := NewServer(f, "mem0", sc)
	if err := dev.ConnectServer(srv, 1<<20); err != nil {
		t.Fatalf("ConnectServer: %v", err)
	}
	tb := &testbed{env: env, fabric: f, dev: dev, servers: []*Server{srv}}
	tb.queue = blockdev.NewQueue(env, netmodel.DefaultHost(), dev)
	return tb, reg
}

// TestLifecycleExactPartition round-trips real requests and checks the
// acceptance criterion directly: for every recorded request the eight
// stages sum to the end-to-end latency exactly, and the server-observed
// split (rdma vs. server-copy) is present because the stamp side channel
// crossed the process boundary.
func TestLifecycleExactPartition(t *testing.T) {
	tb, _ := newSharedRegistryBed(t, DefaultClientConfig(), nil)
	tb.run(func(p *sim.Proc) {
		w, err := tb.queue.Submit(true, 0, pattern(16*1024, 5))
		if err != nil {
			t.Errorf("Submit write: %v", err)
			return
		}
		tb.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Errorf("write: %v", err)
		}
		buf := make([]byte, 16*1024)
		r, err := tb.queue.Submit(false, 0, buf)
		if err != nil {
			t.Errorf("Submit read: %v", err)
			return
		}
		tb.queue.Unplug()
		if err := r.Wait(p); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	lc := tb.dev.Lifecycle()
	if lc == nil {
		t.Fatal("lifecycle analyzer not enabled by default")
	}
	if lc.Count() < 2 {
		t.Fatalf("recorded %d requests, want >= 2", lc.Count())
	}
	for _, rec := range lc.Flight().Records() {
		var sum sim.Duration
		for s := telemetry.Stage(0); s < telemetry.NumStages; s++ {
			if rec.Stages[s] < 0 {
				t.Errorf("req %d: stage %v negative: %v", rec.ID, s, rec.Stages[s])
			}
			sum += rec.Stages[s]
		}
		if sum != rec.Total() {
			t.Errorf("req %d: stages sum to %v, end-to-end is %v (must partition exactly)",
				rec.ID, sum, rec.Total())
		}
		if rec.Server != "mem0" {
			t.Errorf("req %d: server %q, want mem0", rec.ID, rec.Server)
		}
		if rec.Flow == 0 {
			t.Errorf("req %d: no causal flow id", rec.ID)
		}
	}
	if lc.StageSum(telemetry.StageServerCopy) == 0 {
		t.Error("server-copy stage never attributed: the stamp side channel is broken")
	}
	if lc.StageSum(telemetry.StageRDMA) == 0 {
		t.Error("rdma stage never attributed")
	}
	if lc.StageSum(telemetry.StageSend) == 0 {
		t.Error("send stage never attributed")
	}
}

// TestFlightDumpOnTimeout injects a server slow enough that the armed
// watchdog flags the in-flight request and dumps the flight recorder.
func TestFlightDumpOnTimeout(t *testing.T) {
	var dump bytes.Buffer
	ccfg := DefaultClientConfig()
	ccfg.RequestTimeout = 200 * sim.Microsecond
	ccfg.FlightDumpWriter = &dump
	tb, _ := newSharedRegistryBed(t, ccfg, func(sc *ServerConfig) {
		sc.StoreOpOverhead = 10 * sim.Millisecond
	})
	var waitErr error
	tb.env.Go("test", func(p *sim.Proc) {
		w, err := tb.queue.Submit(true, 0, pattern(4096, 1))
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		tb.queue.Unplug()
		waitErr = w.Wait(p)
	})
	// The watchdog process sleeps forever, so bound the run instead of
	// draining the event queue.
	tb.env.RunUntil(sim.Time(50 * sim.Millisecond))
	tb.env.Close()
	if waitErr != nil {
		t.Fatalf("request should still complete after the timeout flag: %v", waitErr)
	}
	if got := tb.dev.Stats().Timeouts; got == 0 {
		t.Fatal("watchdog flagged no timeouts")
	}
	out := dump.String()
	if !strings.Contains(out, "flight recorder dump") {
		t.Fatalf("no flight-recorder dump emitted:\n%s", out)
	}
	if !strings.Contains(out, "request timeout") {
		t.Fatalf("dump reason does not mention the timeout:\n%s", out)
	}
	if !strings.Contains(out, "server=mem0") {
		t.Fatalf("dump reason does not name the serving host:\n%s", out)
	}
}

// TestLifecycleDisabled checks the explicit opt-out: a negative ring size
// leaves the device with no analyzer and the datapath records nothing.
func TestLifecycleDisabled(t *testing.T) {
	ccfg := DefaultClientConfig()
	ccfg.FlightRecEntries = -1
	tb := newTestbed(t, 1, 1<<20, ccfg)
	tb.run(func(p *sim.Proc) {
		w, err := tb.queue.Submit(true, 0, pattern(4096, 2))
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		tb.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	if lc := tb.dev.Lifecycle(); lc != nil {
		t.Fatalf("lifecycle should be disabled, recorded %d requests", lc.Count())
	}
}
