package hpbd

import (
	"bytes"
	"fmt"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/ib"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
)

// testbed wires one client device to n servers, each exporting areaBytes.
type testbed struct {
	env     *sim.Env
	fabric  *ib.Fabric
	dev     *Device
	servers []*Server
	queue   *blockdev.Queue
}

func newTestbed(t *testing.T, nServers int, areaBytes int64, ccfg ClientConfig) *testbed {
	t.Helper()
	env := sim.NewEnv()
	f := ib.NewFabric(env, ib.DefaultConfig())
	dev := NewDevice(f, "hpbd0", ccfg)
	tb := &testbed{env: env, fabric: f, dev: dev}
	for i := 0; i < nServers; i++ {
		srv := NewServer(f, fmt.Sprintf("mem%d", i), DefaultServerConfig(areaBytes))
		if err := dev.ConnectServer(srv, areaBytes); err != nil {
			t.Fatalf("ConnectServer: %v", err)
		}
		tb.servers = append(tb.servers, srv)
	}
	tb.queue = blockdev.NewQueue(env, netmodel.DefaultHost(), dev)
	return tb
}

func (tb *testbed) run(fn func(p *sim.Proc)) {
	tb.env.Go("test", fn)
	tb.env.Run()
	tb.env.Close()
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

func TestWriteReadRoundTripSingleServer(t *testing.T) {
	tb := newTestbed(t, 1, 1<<20, DefaultClientConfig())
	want := pattern(128*1024, 3)
	var got []byte
	tb.run(func(p *sim.Proc) {
		w, err := tb.queue.Submit(true, 0, append([]byte(nil), want...))
		if err != nil {
			t.Fatalf("Submit write: %v", err)
		}
		tb.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Fatalf("write: %v", err)
		}
		buf := make([]byte, len(want))
		r, err := tb.queue.Submit(false, 0, buf)
		if err != nil {
			t.Fatalf("Submit read: %v", err)
		}
		tb.queue.Unplug()
		if err := r.Wait(p); err != nil {
			t.Fatalf("read: %v", err)
		}
		got = buf
	})
	if !bytes.Equal(got, want) {
		t.Error("128K round trip through HPBD corrupted data")
	}
	// The bytes must actually live in the server's RamDisk.
	if !bytes.Equal(tb.servers[0].Store().Peek(0, len(want)), want) {
		t.Error("server store does not hold the written bytes")
	}
}

func TestDataLandsOnCorrectServerBlockedLayout(t *testing.T) {
	// Two servers, 1 MB each: sector addresses below 1 MB go to server 0,
	// above to server 1 (blocked, non-striped).
	tb := newTestbed(t, 2, 1<<20, DefaultClientConfig())
	w0 := pattern(4096, 1)
	w1 := pattern(4096, 2)
	tb.run(func(p *sim.Proc) {
		a, _ := tb.queue.Submit(true, 0, append([]byte(nil), w0...))
		b, _ := tb.queue.Submit(true, (1<<20)/blockdev.SectorSize, append([]byte(nil), w1...))
		tb.queue.Unplug()
		a.Wait(p)
		b.Wait(p)
	})
	if !bytes.Equal(tb.servers[0].Store().Peek(0, 4096), w0) {
		t.Error("server 0 does not hold the first MB's data")
	}
	if !bytes.Equal(tb.servers[1].Store().Peek(0, 4096), w1) {
		t.Error("server 1 does not hold the second MB's data")
	}
	if tb.servers[0].Stats().Writes != 1 || tb.servers[1].Stats().Writes != 1 {
		t.Errorf("writes per server = %d/%d, want 1/1",
			tb.servers[0].Stats().Writes, tb.servers[1].Stats().Writes)
	}
}

func TestRequestSpanningServerBoundarySplits(t *testing.T) {
	tb := newTestbed(t, 2, 1<<20, DefaultClientConfig())
	// 64 KB write straddling the 1 MB boundary.
	start := int64(1<<20-32*1024) / blockdev.SectorSize
	want := pattern(64*1024, 9)
	var got []byte
	tb.run(func(p *sim.Proc) {
		w, err := tb.queue.Submit(true, start, append([]byte(nil), want...))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		tb.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Fatalf("write: %v", err)
		}
		buf := make([]byte, len(want))
		r, _ := tb.queue.Submit(false, start, buf)
		tb.queue.Unplug()
		if err := r.Wait(p); err != nil {
			t.Fatalf("read: %v", err)
		}
		got = buf
	})
	if !bytes.Equal(got, want) {
		t.Error("boundary-spanning round trip corrupted data")
	}
	if tb.dev.Stats().Splits == 0 {
		t.Error("spanning request was not split")
	}
	if tb.servers[0].Stats().Writes == 0 || tb.servers[1].Stats().Writes == 0 {
		t.Error("split pieces did not reach both servers")
	}
}

func TestManyConcurrentRequests(t *testing.T) {
	tb := newTestbed(t, 4, 1<<20, DefaultClientConfig())
	const pagesz = 4096
	const npages = 512 // 2 MB total across 4 servers
	tb.run(func(p *sim.Proc) {
		ios := make([]*blockdev.IO, 0, npages)
		for i := 0; i < npages; i++ {
			io, err := tb.queue.Submit(true, int64(i*8), pattern(pagesz, byte(i)))
			if err != nil {
				t.Fatalf("Submit %d: %v", i, err)
			}
			ios = append(ios, io)
			if i%32 == 31 {
				tb.queue.Unplug()
			}
		}
		tb.queue.Unplug()
		for i, io := range ios {
			if err := io.Wait(p); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		// Read everything back and verify.
		bufs := make([][]byte, npages)
		rios := make([]*blockdev.IO, npages)
		for i := 0; i < npages; i++ {
			bufs[i] = make([]byte, pagesz)
			rio, err := tb.queue.Submit(false, int64(i*8), bufs[i])
			if err != nil {
				t.Fatalf("Submit read %d: %v", i, err)
			}
			rios[i] = rio
			tb.queue.Unplug()
		}
		for i, io := range rios {
			if err := io.Wait(p); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			if !bytes.Equal(bufs[i], pattern(pagesz, byte(i))) {
				t.Fatalf("page %d corrupted", i)
			}
		}
	})
}

func TestFlowControlBoundsOutstanding(t *testing.T) {
	ccfg := DefaultClientConfig()
	ccfg.Credits = 2
	tb := newTestbed(t, 1, 16<<20, ccfg)
	tb.run(func(p *sim.Proc) {
		var ios []*blockdev.IO
		for i := 0; i < 64; i++ {
			io, _ := tb.queue.Submit(true, int64(i*256), pattern(4096, byte(i)))
			ios = append(ios, io)
			tb.queue.Unplug() // defeat merging: distinct sectors anyway
		}
		for _, io := range ios {
			io.Wait(p)
		}
	})
	if tb.dev.Stats().CreditStalls == 0 {
		t.Error("64 requests with 2 credits never stalled on flow control")
	}
	st := tb.dev.Stats()
	if st.PhysReqs != 64 || st.Replies != 64 {
		t.Errorf("phys/replies = %d/%d, want 64/64", st.PhysReqs, st.Replies)
	}
}

func TestPoolPressureBlocksAndRecovers(t *testing.T) {
	ccfg := DefaultClientConfig()
	ccfg.PoolBytes = 256 * 1024 // two 128K requests fill the pool
	tb := newTestbed(t, 1, 8<<20, ccfg)
	tb.run(func(p *sim.Proc) {
		var ios []*blockdev.IO
		for i := 0; i < 16; i++ {
			// Non-adjacent 128K writes: no merging, each needs 128K pool.
			sector := int64(i * 2 * (128 * 1024) / blockdev.SectorSize)
			io, err := tb.queue.Submit(true, sector, pattern(128*1024, byte(i)))
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			ios = append(ios, io)
			tb.queue.Unplug()
		}
		for _, io := range ios {
			if err := io.Wait(p); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
	})
	if tb.dev.Pool().AllocWaits == 0 {
		t.Error("pool allocation never waited despite 16x128K through a 256K pool")
	}
	if tb.dev.Pool().InUse() != 0 {
		t.Errorf("pool leak: %d bytes still in use", tb.dev.Pool().InUse())
	}
}

func TestOutOfRangeIO(t *testing.T) {
	tb := newTestbed(t, 1, 1<<20, DefaultClientConfig())
	tb.run(func(p *sim.Proc) {
		if _, err := tb.queue.Submit(true, tb.dev.Sectors(), make([]byte, 4096)); err != blockdev.ErrOutOfRange {
			t.Errorf("err = %v, want ErrOutOfRange", err)
		}
	})
}

func TestServerLossFailsDevice(t *testing.T) {
	tb := newTestbed(t, 1, 1<<20, DefaultClientConfig())
	var errs int
	tb.run(func(p *sim.Proc) {
		// Kill the server's QP mid-run, then issue I/O.
		w, _ := tb.queue.Submit(true, 0, pattern(4096, 1))
		tb.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Fatalf("first write should succeed: %v", err)
		}
		for qp := range tb.servers[0].conns {
			qp.Close()
		}
		var ios []*blockdev.IO
		for i := 0; i < 4; i++ {
			io, _ := tb.queue.Submit(true, int64(i*8), pattern(4096, 2))
			tb.queue.Unplug()
			ios = append(ios, io)
		}
		for _, io := range ios {
			if io.Wait(p) != nil {
				errs++
			}
		}
	})
	if errs != 4 {
		t.Errorf("errored I/Os after server loss = %d, want 4", errs)
	}
	if !tb.dev.Failed() {
		t.Error("device did not mark itself failed")
	}
	if tb.dev.Pool().InUse() != 0 {
		t.Errorf("pool leak after failure: %d bytes", tb.dev.Pool().InUse())
	}
}

func TestServerIdleSleepsAndWakes(t *testing.T) {
	tb := newTestbed(t, 1, 1<<20, DefaultClientConfig())
	tb.run(func(p *sim.Proc) {
		w, _ := tb.queue.Submit(true, 0, pattern(4096, 1))
		tb.queue.Unplug()
		w.Wait(p)
		// Let the server idle well past its 200us spin window.
		p.Sleep(5 * sim.Millisecond)
		if tb.servers[0].Stats().IdleSleeps == 0 {
			t.Error("server never yielded the CPU while idle")
		}
		// It must still serve requests after sleeping.
		r, _ := tb.queue.Submit(false, 0, make([]byte, 4096))
		tb.queue.Unplug()
		if err := r.Wait(p); err != nil {
			t.Errorf("read after idle sleep: %v", err)
		}
	})
}

func TestServerAreaExhaustion(t *testing.T) {
	env := sim.NewEnv()
	f := ib.NewFabric(env, ib.DefaultConfig())
	srv := NewServer(f, "mem0", DefaultServerConfig(1<<20))
	dev := NewDevice(f, "hpbd0", DefaultClientConfig())
	if err := dev.ConnectServer(srv, 1<<20); err != nil {
		t.Fatalf("first connect: %v", err)
	}
	dev2 := NewDevice(f, "hpbd1", DefaultClientConfig())
	if err := dev2.ConnectServer(srv, 1<<20); err == nil {
		t.Error("server exported more memory than it has")
	}
	env.Close()
}

func TestSixteenServers(t *testing.T) {
	tb := newTestbed(t, 16, 256*1024, DefaultClientConfig())
	tb.run(func(p *sim.Proc) {
		// One page to each server's range.
		var ios []*blockdev.IO
		for i := 0; i < 16; i++ {
			sector := int64(i) * (256 * 1024 / blockdev.SectorSize)
			io, err := tb.queue.Submit(true, sector, pattern(4096, byte(i)))
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			ios = append(ios, io)
			tb.queue.Unplug()
		}
		for _, io := range ios {
			if err := io.Wait(p); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
	})
	for i, srv := range tb.servers {
		if srv.Stats().Writes != 1 {
			t.Errorf("server %d writes = %d, want 1", i, srv.Stats().Writes)
		}
	}
}

// Four concurrent large writes must overlap at the server (multiple
// outstanding RDMAs + staging copies across the worker pool): the batch
// finishes in far less than 4x one request's latency.
func TestServerOverlapsRDMAAndCopy(t *testing.T) {
	one := func(n int) sim.Duration {
		tb := newTestbed(t, 1, 16<<20, DefaultClientConfig())
		var elapsed sim.Duration
		tb.run(func(p *sim.Proc) {
			t0 := p.Now()
			var ios []*blockdev.IO
			for i := 0; i < n; i++ {
				// Discontiguous sectors: no merging.
				io, err := tb.queue.Submit(true, int64(i*600), pattern(128*1024, byte(i)))
				if err != nil {
					t.Fatalf("Submit: %v", err)
				}
				ios = append(ios, io)
				tb.queue.Unplug()
			}
			for _, io := range ios {
				if err := io.Wait(p); err != nil {
					t.Fatalf("write: %v", err)
				}
			}
			elapsed = p.Now().Sub(t0)
		})
		return elapsed
	}
	single := one(1)
	four := one(4)
	if float64(four) > 3.0*float64(single) {
		t.Errorf("4 concurrent writes took %v vs %v for one; server pipeline not overlapping", four, single)
	}
}

func TestStatsCounters(t *testing.T) {
	tb := newTestbed(t, 1, 1<<20, DefaultClientConfig())
	tb.run(func(p *sim.Proc) {
		w, _ := tb.queue.Submit(true, 0, pattern(8192, 1))
		tb.queue.Unplug()
		w.Wait(p)
		r, _ := tb.queue.Submit(false, 0, make([]byte, 8192))
		tb.queue.Unplug()
		r.Wait(p)
	})
	d := tb.dev.Stats()
	if d.BytesWritten != 8192 || d.BytesRead != 8192 {
		t.Errorf("device bytes = %d/%d", d.BytesWritten, d.BytesRead)
	}
	s := tb.servers[0].Stats()
	if s.BytesStored != 8192 || s.BytesServed != 8192 {
		t.Errorf("server bytes = %d/%d", s.BytesStored, s.BytesServed)
	}
	if s.RDMAIssued != 2 {
		t.Errorf("RDMA ops = %d, want 2", s.RDMAIssued)
	}
}
