package hpbd

import (
	"bytes"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/placement"
	"hpbd/internal/sim"
)

// checkSegs validates the shared split invariants: segments cover the
// request contiguously, in order, with no overlap and no spill past a
// server area.
func checkSegs(t *testing.T, d *Device, segs []placement.Segment, n int) {
	t.Helper()
	off := 0
	for i, sg := range segs {
		if sg.Off != off {
			t.Errorf("seg %d starts at request offset %d, want %d", i, sg.Off, off)
		}
		if sg.Length <= 0 {
			t.Errorf("seg %d has length %d", i, sg.Length)
		}
		size := d.links[sg.Server].size
		if sg.Offset < 0 || sg.Offset+int64(sg.Length) > size {
			t.Errorf("seg %d [%d,+%d) spills out of its %d-byte area",
				i, sg.Offset, sg.Length, size)
		}
		off += sg.Length
	}
	if off != n {
		t.Errorf("segments cover %d bytes, want %d", off, n)
	}
}

// The blocked layout's boundary cases: a request that straddles exactly
// two server ranges symmetrically, and single-sector requests hugging
// both sides of a range edge.
func TestSplitExactBoundaries(t *testing.T) {
	const area = 1 << 20
	tb := newTestbed(t, 2, area, DefaultClientConfig())
	defer tb.env.Close()
	d := tb.dev

	// 8 KB centred on the boundary: exactly 4 KB to each server.
	segs := d.split(area-4096, 8192)
	checkSegs(t, d, segs, 8192)
	if len(segs) != 2 {
		t.Fatalf("straddle split into %d segments, want 2", len(segs))
	}
	if segs[0].Server != 0 || segs[0].Offset != area-4096 || segs[0].Length != 4096 {
		t.Errorf("left piece = {server %d off %d len %d}, want {0, %d, 4096}",
			segs[0].Server, segs[0].Offset, segs[0].Length, area-4096)
	}
	if segs[1].Server != 1 || segs[1].Offset != 0 || segs[1].Length != 4096 {
		t.Errorf("right piece = {off %d len %d}, want {0, 4096}", segs[1].Offset, segs[1].Length)
	}

	// One sector each side of the edge must not split.
	last := d.split(area-blockdev.SectorSize, blockdev.SectorSize)
	if len(last) != 1 || last[0].Server != 0 || last[0].Offset != area-blockdev.SectorSize {
		t.Errorf("last sector of range 0 split wrong: %+v", last)
	}
	first := d.split(area, blockdev.SectorSize)
	if len(first) != 1 || first[0].Server != 1 || first[0].Offset != 0 {
		t.Errorf("first sector of range 1 split wrong: %+v", first)
	}

	// The device's last sector is reachable; one byte past it is not.
	if segs := d.split(2*area-blockdev.SectorSize, blockdev.SectorSize); len(segs) != 1 {
		t.Errorf("device-tail sector split into %d segments", len(segs))
	}
	if segs := d.split(2*area-blockdev.SectorSize, 2*blockdev.SectorSize); segs != nil {
		t.Error("split past the device end did not fail")
	}
}

// The Figure 10 layout: 16 servers, blocked. A device-spanning range
// yields exactly one segment per server in address order, and every
// boundary sector lands on the right store.
func TestSplitSixteenServerLayout(t *testing.T) {
	const area = 256 * 1024
	tb := newTestbed(t, 16, area, DefaultClientConfig())
	d := tb.dev

	segs := d.split(0, 16*area)
	checkSegs(t, d, segs, 16*area)
	if len(segs) != 16 {
		t.Fatalf("full-device split into %d segments, want 16", len(segs))
	}
	for i, sg := range segs {
		if sg.Server != i || sg.Offset != 0 || sg.Length != area {
			t.Errorf("seg %d = {offset %d len %d}, want full area %d on server %d",
				i, sg.Offset, sg.Length, area, i)
		}
	}

	// Integration: write one page to the last page of every range; each
	// must land at the tail of its own server's store.
	tb.run(func(p *sim.Proc) {
		var ios []*blockdev.IO
		for i := 0; i < 16; i++ {
			sector := (int64(i+1)*area - 4096) / blockdev.SectorSize
			io, err := tb.queue.Submit(true, sector, pattern(4096, byte(i)))
			if err != nil {
				t.Fatalf("Submit %d: %v", i, err)
			}
			ios = append(ios, io)
			tb.queue.Unplug()
		}
		for i, io := range ios {
			if err := io.Wait(p); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
	})
	for i, srv := range tb.servers {
		if st := srv.Stats(); st.Writes != 1 {
			t.Errorf("server %d writes = %d, want 1", i, st.Writes)
		}
		if !bytes.Equal(srv.Store().Peek(area-4096, 4096), pattern(4096, byte(i))) {
			t.Errorf("server %d tail page corrupted", i)
		}
	}
	if tb.dev.Stats().Splits != 0 {
		t.Error("page-sized edge writes must not split")
	}
}

// The striped ablation layout: chunks rotate across servers, and a
// request crossing a stripe boundary splits at it.
func TestSplitStripedBoundaries(t *testing.T) {
	const area = 1 << 20
	const stripe = 64 * 1024
	ccfg := DefaultClientConfig()
	ccfg.StripeBytes = stripe
	tb := newTestbed(t, 2, area, ccfg)
	defer tb.env.Close()
	d := tb.dev

	// Two full stripes starting at a stripe boundary alternate servers.
	segs := d.split(0, 2*stripe)
	checkSegs(t, d, segs, 2*stripe)
	if len(segs) != 2 || segs[0].Server != 0 || segs[1].Server != 1 {
		t.Fatalf("striped split = %+v, want chunk 0 on server 0, chunk 1 on server 1", segs)
	}

	// A straddle of the stripe edge splits there; the second chunk of a
	// round maps to server 1 at the same row offset.
	segs = d.split(stripe-4096, 8192)
	checkSegs(t, d, segs, 8192)
	if len(segs) != 2 {
		t.Fatalf("stripe straddle split into %d segments, want 2", len(segs))
	}
	if segs[0].Server != 0 || segs[0].Offset != stripe-4096 {
		t.Errorf("left piece offset %d on wrong server", segs[0].Offset)
	}
	if segs[1].Server != 1 || segs[1].Offset != 0 {
		t.Errorf("right piece offset %d on wrong server", segs[1].Offset)
	}

	// Chunk 2 wraps to server 0, row 1: area offset stripe.
	segs = d.split(2*stripe, 4096)
	if len(segs) != 1 || segs[0].Server != 0 || segs[0].Offset != stripe {
		t.Errorf("round-robin wrap = %+v, want server 0 at area offset %d", segs, stripe)
	}
}

// The hybrid data path must route large requests around the pool: data
// stays correct, the pool is never touched, and the MR reuse cache turns
// repeat traffic into hits.
func TestHybridLargeBypassesPool(t *testing.T) {
	ccfg := DefaultClientConfig()
	ccfg.HybridDataPath = true
	tb := newTestbed(t, 1, 8<<20, ccfg)
	const size = 128 * 1024
	const reps = 6
	tb.run(func(p *sim.Proc) {
		for i := 0; i < reps; i++ {
			want := pattern(size, byte(i))
			sector := int64(i) * 2 * size / blockdev.SectorSize
			w, err := tb.queue.Submit(true, sector, append([]byte(nil), want...))
			if err != nil {
				t.Fatalf("Submit write %d: %v", i, err)
			}
			tb.queue.Unplug()
			if err := w.Wait(p); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			buf := make([]byte, size)
			r, err := tb.queue.Submit(false, sector, buf)
			if err != nil {
				t.Fatalf("Submit read %d: %v", i, err)
			}
			tb.queue.Unplug()
			if err := r.Wait(p); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("rep %d: hybrid round trip corrupted data", i)
			}
		}
	})
	st := tb.dev.Stats()
	if st.HybridLarge != 2*reps {
		t.Errorf("HybridLarge = %d, want %d (every request is at the crossover)", st.HybridLarge, 2*reps)
	}
	if peak := tb.dev.Pool().PeakInUse; peak != 0 {
		t.Errorf("pool peak = %d bytes; large requests must bypass the pool entirely", peak)
	}
	if tb.dev.mrc.Idle() == 0 {
		t.Error("MR cache idle list empty after traffic; buffers are not being reused")
	}
	// Sequential 128K requests reuse one cached MR: one cold miss, the
	// rest hits.
	if hits, misses := tb.dev.mrc.hits.Value(), tb.dev.mrc.misses.Value(); misses != 1 || hits != 2*reps-1 {
		t.Errorf("MR cache hits/misses = %d/%d, want %d/1", hits, misses, 2*reps-1)
	}
}

// Below the threshold the hybrid device must behave exactly like the
// default: pool-staged, no MR cache activity.
func TestHybridSmallStaysOnPool(t *testing.T) {
	ccfg := DefaultClientConfig()
	ccfg.HybridDataPath = true
	tb := newTestbed(t, 1, 1<<20, ccfg)
	want := pattern(4096, 5)
	tb.run(func(p *sim.Proc) {
		w, _ := tb.queue.Submit(true, 0, append([]byte(nil), want...))
		tb.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Fatalf("write: %v", err)
		}
	})
	if st := tb.dev.Stats(); st.HybridLarge != 0 {
		t.Errorf("HybridLarge = %d for a 4K request, want 0", st.HybridLarge)
	}
	if tb.dev.Pool().PeakInUse == 0 {
		t.Error("small request did not stage through the pool")
	}
	if !bytes.Equal(tb.servers[0].Store().Peek(0, 4096), want) {
		t.Error("server store does not hold the written bytes")
	}
}

// Doorbell batching on the client sender: a backlog of small requests
// must reach the server in fewer doorbells than requests, with data
// intact; unbatched, doorbells equal physical requests.
func TestClientDoorbellBatching(t *testing.T) {
	const writes = 64
	run := func(batch int) DeviceStats {
		ccfg := DefaultClientConfig()
		ccfg.Credits = 8
		ccfg.DoorbellBatch = batch
		tb := newTestbed(t, 1, 16<<20, ccfg)
		tb.run(func(p *sim.Proc) {
			var ios []*blockdev.IO
			for i := 0; i < writes; i++ {
				// Discontiguous sectors so the queue cannot merge.
				io, err := tb.queue.Submit(true, int64(i*64), pattern(4096, byte(i)))
				if err != nil {
					t.Fatalf("Submit %d: %v", i, err)
				}
				ios = append(ios, io)
			}
			tb.queue.Unplug()
			for i, io := range ios {
				if err := io.Wait(p); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
			}
			// Read everything back.
			for i := 0; i < writes; i++ {
				buf := make([]byte, 4096)
				r, _ := tb.queue.Submit(false, int64(i*64), buf)
				tb.queue.Unplug()
				if err := r.Wait(p); err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if !bytes.Equal(buf, pattern(4096, byte(i))) {
					t.Fatalf("page %d corrupted under batch=%d", i, batch)
				}
			}
		})
		return tb.dev.Stats()
	}
	plain := run(1)
	if plain.Doorbells != plain.PhysReqs {
		t.Errorf("unbatched doorbells = %d, want %d (one per request)",
			plain.Doorbells, plain.PhysReqs)
	}
	batched := run(8)
	if batched.PhysReqs != plain.PhysReqs {
		t.Fatalf("batched run sent %d phys reqs vs %d; not comparable",
			batched.PhysReqs, plain.PhysReqs)
	}
	if batched.Doorbells >= plain.Doorbells {
		t.Errorf("batched doorbells = %d, want < %d", batched.Doorbells, plain.Doorbells)
	}
}
