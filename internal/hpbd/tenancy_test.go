package hpbd

import (
	"bytes"
	"fmt"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/disk"
	"hpbd/internal/ib"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/tenant"
)

// tenantBed wires one server with a tenancy spec to one device per
// tenant, each with its own fallback disk so quota reclaim has a
// demotion target.
type tenantBed struct {
	env    *sim.Env
	srv    *Server
	devs   map[string]*Device
	queues map[string]*blockdev.Queue
	area   int64
}

func newTenantBed(t *testing.T, specStr string, areaBytes int64, fifo bool) *tenantBed {
	t.Helper()
	spec, err := tenant.ParseSpec(specStr)
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	f := ib.NewFabric(env, ib.DefaultConfig())
	scfg := DefaultServerConfig(areaBytes * int64(len(spec.Tenants)))
	scfg.Tenancy = spec
	scfg.TenantFIFO = fifo
	scfg.TenantSelfCheck = true
	tb := &tenantBed{
		env:    env,
		srv:    NewServer(f, "mem0", scfg),
		devs:   make(map[string]*Device),
		queues: make(map[string]*blockdev.Queue),
		area:   areaBytes,
	}
	for i := range spec.Tenants {
		id := spec.Tenants[i].ID
		ccfg := DefaultClientConfig()
		ccfg.Tenant = id
		ccfg.MaxRetries = 8
		ccfg.Fallback = disk.New(env, "fb-"+id, areaBytes, disk.DefaultParams())
		dev := NewDevice(f, "hpbd-"+id, ccfg)
		if err := dev.ConnectServer(tb.srv, areaBytes); err != nil {
			t.Fatalf("ConnectServer(%s): %v", id, err)
		}
		tb.devs[id] = dev
		tb.queues[id] = blockdev.NewQueue(env, netmodel.DefaultHost(), dev)
	}
	return tb
}

func (tb *tenantBed) stat(t *testing.T, id string) TenantStat {
	t.Helper()
	for _, st := range tb.srv.TenantStats() {
		if st.ID == id {
			return st
		}
	}
	t.Fatalf("no TenantStat for %s", id)
	return TenantStat{}
}

// TestQuotaPushbackAndReclaim writes twice a tenant's quota through the
// admission-controlled path: the server must push back with RNR-style
// retries, the reclaimer must demote cold pages to the fallback disk,
// and every write must eventually land — with residency driven back
// toward the quota rather than growing unbounded.
func TestQuotaPushbackAndReclaim(t *testing.T) {
	const quota = 512 << 10
	tb := newTenantBed(t, fmt.Sprintf("pool=16,a:w1:q%d", quota), 4<<20, false)
	const total = 2 * quota
	const chunk = 64 << 10
	tb.env.Go("writer", func(p *sim.Proc) {
		for off := int64(0); off < total; off += chunk {
			buf := pattern(chunk, byte(off>>16))
			r := blockdev.NewRequest(tb.env, true, off/blockdev.SectorSize, buf)
			tb.devs["a"].Submit(p, r)
			if err := r.Wait(p); err != nil {
				t.Errorf("write at %d: %v", off, err)
				return
			}
		}
	})
	tb.env.Run()
	tb.env.Close()
	st := tb.stat(t, "a")
	if st.QuotaRetries == 0 {
		t.Error("no quota pushback recorded while writing 2x the quota")
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded: reclaim never demoted cold pages")
	}
	// Admission is optimistic (in-flight writes admitted before earlier
	// ones mark residency), so allow one in-flight window of slack.
	slack := int64(blockdev.MaxRequestBytes) + chunk
	if st.Resident > quota+slack {
		t.Errorf("resident %d exceeds quota %d by more than the admission window %d",
			st.Resident, quota, slack)
	}
	if err := tb.srv.TenancyCheck(); err != nil {
		t.Error(err)
	}
}

// TestQuotaEvictionPreservesData reads back every byte written past the
// quota: pages demoted to the fallback disk must return the same data
// as pages still resident on the server.
func TestQuotaEvictionPreservesData(t *testing.T) {
	const quota = 256 << 10
	tb := newTenantBed(t, fmt.Sprintf("pool=16,a:w1:q%d", quota), 4<<20, false)
	const total = 4 * quota
	const chunk = 32 << 10
	ok := false
	tb.env.Go("rw", func(p *sim.Proc) {
		for off := int64(0); off < total; off += chunk {
			buf := pattern(chunk, byte(off/chunk))
			r := blockdev.NewRequest(tb.env, true, off/blockdev.SectorSize, buf)
			tb.devs["a"].Submit(p, r)
			if err := r.Wait(p); err != nil {
				t.Errorf("write at %d: %v", off, err)
				return
			}
		}
		for off := int64(0); off < total; off += chunk {
			buf := make([]byte, chunk)
			r := blockdev.NewRequest(tb.env, false, off/blockdev.SectorSize, buf)
			tb.devs["a"].Submit(p, r)
			if err := r.Wait(p); err != nil {
				t.Errorf("read at %d: %v", off, err)
				return
			}
			if !bytes.Equal(buf, pattern(chunk, byte(off/chunk))) {
				t.Errorf("chunk at %d corrupted through quota eviction", off)
				return
			}
		}
		ok = true
	})
	tb.env.Run()
	tb.env.Close()
	if !ok {
		t.Fatal("round trip did not complete")
	}
	st := tb.stat(t, "a")
	if st.Evictions == 0 {
		t.Error("4x-quota working set produced no evictions: the read-back never touched the fallback path")
	}
	if err := tb.srv.TenancyCheck(); err != nil {
		t.Error(err)
	}
}

// TestUnquotedTenantUnaffected runs a quota'd tenant to exhaustion next
// to an unlimited one: the neighbor's writes must see no pushback.
func TestUnquotedTenantUnaffected(t *testing.T) {
	tb := newTenantBed(t, "pool=16,a:w1:q256K,b:w1", 4<<20, false)
	const chunk = 64 << 10
	write := func(p *sim.Proc, id string, off int64) error {
		r := blockdev.NewRequest(tb.env, true, off/blockdev.SectorSize, pattern(chunk, 1))
		tb.devs[id].Submit(p, r)
		return r.Wait(p)
	}
	tb.env.Go("a", func(p *sim.Proc) {
		for off := int64(0); off < 1<<20; off += chunk {
			if err := write(p, "a", off); err != nil {
				t.Errorf("a: %v", err)
				return
			}
		}
	})
	tb.env.Go("b", func(p *sim.Proc) {
		for off := int64(0); off < 1<<20; off += chunk {
			if err := write(p, "b", off); err != nil {
				t.Errorf("b: %v", err)
				return
			}
		}
	})
	tb.env.Run()
	tb.env.Close()
	if st := tb.stat(t, "b"); st.QuotaRetries != 0 || st.Evictions != 0 {
		t.Errorf("unlimited tenant saw pushback: %d retries, %d evictions", st.QuotaRetries, st.Evictions)
	}
	if st := tb.stat(t, "a"); st.QuotaRetries == 0 {
		t.Error("quota'd tenant saw no pushback at 4x its quota")
	}
	if err := tb.srv.TenancyCheck(); err != nil {
		t.Error(err)
	}
}

// TestTenancyOffIdentical ensures the tenancy hooks are inert without a
// spec: a server built with a zero Tenancy config reports no tenant
// stats and serves exactly like the PR 9 data path (the byte-identity
// of the golden artifacts is asserted by the experiments suite; this
// guards the API surface).
func TestTenancyOffIdentical(t *testing.T) {
	tb := newTestbed(t, 1, 1<<20, DefaultClientConfig())
	if got := tb.servers[0].TenantStats(); got != nil {
		t.Errorf("TenantStats without tenancy = %+v, want nil", got)
	}
	if err := tb.servers[0].TenancyCheck(); err != nil {
		t.Errorf("TenancyCheck without tenancy: %v", err)
	}
	tb.env.Close()
}
