package hpbd

import (
	"bytes"
	"fmt"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/disk"
	"hpbd/internal/faultsim"
	"hpbd/internal/ib"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// chaosBed is a testbed with the recovery path armed and a fault
// schedule replayed against it: a client device (optionally with a
// local-disk fallback) over nServers servers, with the injector hooked
// into the fabric.
type chaosBed struct {
	*testbed
	reg *telemetry.Registry
	inj *faultsim.Injector
}

func newChaosBed(t *testing.T, nServers int, areaBytes int64, ccfg ClientConfig, fallback bool, spec string) *chaosBed {
	t.Helper()
	env := sim.NewEnv()
	reg := telemetry.New(env)
	f := ib.NewFabric(env, ib.DefaultConfig())
	ccfg.Telemetry = reg
	if fallback {
		ccfg.Fallback = disk.New(env, "hda-fb", areaBytes*int64(nServers), disk.DefaultParams())
	}
	dev := NewDevice(f, "hpbd0", ccfg)
	tb := &testbed{env: env, fabric: f, dev: dev}
	for i := 0; i < nServers; i++ {
		sc := DefaultServerConfig(areaBytes)
		sc.Telemetry = reg
		srv := NewServer(f, fmt.Sprintf("mem%d", i), sc)
		if err := dev.ConnectServer(srv, areaBytes); err != nil {
			t.Fatalf("ConnectServer: %v", err)
		}
		tb.servers = append(tb.servers, srv)
	}
	tb.queue = blockdev.NewQueue(env, netmodel.DefaultHost(), dev)
	cb := &chaosBed{testbed: tb, reg: reg}
	if spec != "" {
		sched, err := faultsim.ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec: %v", err)
		}
		cb.inj = faultsim.New(env, *sched, reg)
		for _, s := range tb.servers {
			cb.inj.AddServer(s)
		}
		cb.inj.AddClient(dev)
		f.SetFaultHook(cb.inj)
		cb.inj.Start()
	}
	return cb
}

// writeBlocks writes count blocks of blockBytes each, sequentially, with
// a per-block pattern derived from seed, and returns the first error.
func (cb *chaosBed) writeBlocks(p *sim.Proc, count, blockBytes int, seed byte) error {
	secPerBlock := int64(blockBytes / blockdev.SectorSize)
	for i := 0; i < count; i++ {
		w, err := cb.queue.Submit(true, int64(i)*secPerBlock, pattern(blockBytes, seed+byte(i)))
		if err != nil {
			return fmt.Errorf("submit write %d: %w", i, err)
		}
		cb.queue.Unplug()
		if err := w.Wait(p); err != nil {
			return fmt.Errorf("write %d: %w", i, err)
		}
	}
	return nil
}

// verifyBlocks reads every block back and compares against the seed
// pattern, failing the test on any mismatch (the corruption check).
func (cb *chaosBed) verifyBlocks(t *testing.T, p *sim.Proc, count, blockBytes int, seed byte) {
	t.Helper()
	secPerBlock := int64(blockBytes / blockdev.SectorSize)
	for i := 0; i < count; i++ {
		buf := make([]byte, blockBytes)
		r, err := cb.queue.Submit(false, int64(i)*secPerBlock, buf)
		if err != nil {
			t.Errorf("submit read %d: %v", i, err)
			return
		}
		cb.queue.Unplug()
		if err := r.Wait(p); err != nil {
			t.Errorf("read %d: %v", i, err)
			return
		}
		if !bytes.Equal(buf, pattern(blockBytes, seed+byte(i))) {
			t.Errorf("block %d corrupted after recovery", i)
		}
	}
}

// assertExactPartition checks the lifecycle invariant on every recorded
// request — degraded and retried ones included: the stages must sum to
// the end-to-end latency exactly.
func assertExactPartition(t *testing.T, dev *Device) {
	t.Helper()
	lc := dev.Lifecycle()
	if lc == nil {
		t.Fatal("lifecycle analyzer disabled")
	}
	for _, rec := range lc.Flight().Records() {
		var sum sim.Duration
		for s := telemetry.Stage(0); s < telemetry.NumStages; s++ {
			if rec.Stages[s] < 0 {
				t.Errorf("req %d: stage %v negative: %v", rec.ID, s, rec.Stages[s])
			}
			sum += rec.Stages[s]
		}
		if sum != rec.Total() {
			t.Errorf("req %d (server=%s retries=%d): stages sum to %v, end-to-end is %v",
				rec.ID, rec.Server, rec.Retries, sum, rec.Total())
		}
	}
}

// recoveryConfig arms retries and the watchdog at test-friendly scales.
func recoveryConfig() ClientConfig {
	ccfg := DefaultClientConfig()
	ccfg.MaxRetries = 2
	ccfg.RequestTimeout = 500 * sim.Microsecond
	return ccfg
}

// TestChaosTable drives the fault-kind matrix: each case runs a write
// stream while its schedule fires, optionally rewrites everything (so
// ranges lost with a crashed single-copy server regain an authoritative
// copy), reads all data back and compares byte-for-byte, then checks
// the lifecycle partition and the expected recovery counters.
func TestChaosTable(t *testing.T) {
	const blockBytes = 4096
	cases := []struct {
		name       string
		servers    int
		fallback   bool
		hybrid     bool
		blockBytes int
		blocks     int
		spec       string
		rewrite    bool // second write pass after the faults
		check      func(t *testing.T, cb *chaosBed)
	}{
		{
			// Server dies mid swap-out stream; the fallback disk absorbs
			// the rest. The rewrite pass gives every range an
			// authoritative copy (pre-crash ranges lived only on the
			// dead server, as in the paper's single-copy deployment).
			name: "crash-during-swap-out", servers: 1, fallback: true,
			blockBytes: blockBytes, blocks: 24,
			spec: "crash@400us=mem0", rewrite: true,
			check: func(t *testing.T, cb *chaosBed) {
				st := cb.dev.Stats()
				if st.LinkFailures != 1 {
					t.Errorf("LinkFailures = %d, want 1", st.LinkFailures)
				}
				if st.Fallbacks == 0 {
					t.Error("no requests absorbed by the fallback")
				}
				if cb.dev.Failed() {
					t.Error("device failed despite fallback")
				}
			},
		},
		{
			// Crash while 128 KB hybrid-path requests are in flight: the
			// large-transfer RDMA path must recover, not just the pool path.
			name: "crash-during-rdma", servers: 1, fallback: true, hybrid: true,
			blockBytes: 128 << 10, blocks: 12,
			spec: "crash@400us=mem0", rewrite: true,
			check: func(t *testing.T, cb *chaosBed) {
				st := cb.dev.Stats()
				if st.HybridLarge == 0 {
					t.Error("hybrid path never used; case mis-configured")
				}
				if st.LinkFailures != 1 {
					t.Errorf("LinkFailures = %d, want 1", st.LinkFailures)
				}
				if cb.dev.Failed() {
					t.Error("device failed despite fallback")
				}
			},
		},
		{
			// Double fault: both striped servers die at different times.
			name: "double-fault", servers: 2, fallback: true,
			blockBytes: blockBytes, blocks: 24,
			spec: "crash@300us=mem0,crash@700us=mem1", rewrite: true,
			check: func(t *testing.T, cb *chaosBed) {
				st := cb.dev.Stats()
				if st.LinkFailures != 2 {
					t.Errorf("LinkFailures = %d, want 2", st.LinkFailures)
				}
				if cb.dev.DownLinks() != 2 {
					t.Errorf("DownLinks = %d, want 2", cb.dev.DownLinks())
				}
				if cb.dev.Failed() {
					t.Error("device failed despite fallback")
				}
			},
		},
		{
			// Transient send errors burst, then clean air: requests must
			// retry through and steady state must resume with no data
			// loss and no degradation.
			// The burst is two errors: with sequential traffic both land
			// on the same request, which survives exactly because
			// MaxRetries is 2 (attempts 1 and 2 fail, attempt 3 clears).
			name: "recovery-then-steady-state", servers: 1, fallback: false,
			blockBytes: blockBytes, blocks: 24,
			spec: "senderr@200usx2=hpbd0",
			check: func(t *testing.T, cb *chaosBed) {
				st := cb.dev.Stats()
				if st.Retries == 0 {
					t.Error("send-error burst caused no retries")
				}
				if st.LinkFailures != 0 || st.Fallbacks != 0 {
					t.Errorf("transient errors escalated: links=%d fallbacks=%d",
						st.LinkFailures, st.Fallbacks)
				}
				if cb.dev.Failed() {
					t.Error("device failed on transient errors")
				}
			},
		},
		{
			// Receive-credit starvation: the server withholds buffers,
			// credits drain, senders stall — and everything completes
			// once the window lifts.
			name: "recv-starvation", servers: 1, fallback: false,
			blockBytes: blockBytes, blocks: 24,
			spec: "starve@200us+1ms=mem0",
			check: func(t *testing.T, cb *chaosBed) {
				if cb.dev.Failed() {
					t.Error("device failed under starvation")
				}
				if got := cb.dev.Stats().LinkFailures; got != 0 {
					t.Errorf("starvation escalated to %d link failures", got)
				}
			},
		},
		{
			// Registration-pool exhaustion: allocations stall until the
			// injector frees the pool; no errors, no data loss.
			name: "pool-exhaustion", servers: 1, fallback: false,
			blockBytes: blockBytes, blocks: 24,
			spec: "poolx@200us+1ms=hpbd0",
			check: func(t *testing.T, cb *chaosBed) {
				if cb.dev.Failed() {
					t.Error("device failed under pool exhaustion")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ccfg := recoveryConfig()
			if tc.hybrid {
				ccfg.HybridDataPath = true
			}
			area := int64(tc.blocks*tc.blockBytes)/int64(tc.servers) + 1<<20
			cb := newChaosBed(t, tc.servers, area, ccfg, tc.fallback, tc.spec)
			cb.run(func(p *sim.Proc) {
				if err := cb.writeBlocks(p, tc.blocks, tc.blockBytes, 3); err != nil {
					t.Errorf("write pass: %v", err)
					return
				}
				seed := byte(3)
				if tc.rewrite {
					seed = 11
					if err := cb.writeBlocks(p, tc.blocks, tc.blockBytes, seed); err != nil {
						t.Errorf("rewrite pass: %v", err)
						return
					}
				}
				cb.verifyBlocks(t, p, tc.blocks, tc.blockBytes, seed)
			})
			assertExactPartition(t, cb.dev)
			if cb.inj != nil {
				if got := cb.reg.Counter("faultsim.injected").Value(); got == 0 {
					t.Error("schedule injected no faults; case timing is off")
				}
				if got := cb.reg.Counter("faultsim.skipped").Value(); got != 0 {
					t.Errorf("schedule skipped %d faults (bad target?)", got)
				}
			}
			if leak := cb.dev.Pool().InUse(); leak != 0 {
				t.Errorf("pool leak after chaos: %d bytes", leak)
			}
		})
	}
}

// TestWedgedServerRecovers covers the watchdog fix: a server hang longer
// than the request timeout must not wedge the device. With a fallback
// the stalled writes are cancelled, retried, and finally absorbed; the
// device stays alive and the data reads back intact.
func TestWedgedServerRecovers(t *testing.T) {
	ccfg := recoveryConfig()
	cb := newChaosBed(t, 1, 1<<20, ccfg, true, "hang@100us+20ms=mem0")
	const blocks = 8
	cb.run(func(p *sim.Proc) {
		if err := cb.writeBlocks(p, blocks, 4096, 7); err != nil {
			t.Errorf("writes under hang: %v", err)
			return
		}
		cb.verifyBlocks(t, p, blocks, 4096, 7)
	})
	if got := cb.reg.Counter("hpbd.timeout_cancels").Value(); got == 0 {
		t.Error("watchdog cancelled nothing; the hang went unnoticed")
	}
	if cb.dev.Failed() {
		t.Error("device failed on a hung (not dead) server")
	}
	assertExactPartition(t, cb.dev)
}

// TestWedgedServerNoFallback is the same hang without a fallback: the
// stalled requests must eventually error (per-request, after retries)
// instead of hanging forever, the device must stay alive, and service
// must resume once the hang lifts.
func TestWedgedServerNoFallback(t *testing.T) {
	ccfg := recoveryConfig()
	cb := newChaosBed(t, 1, 1<<20, ccfg, false, "hang@100us+10ms=mem0")
	var errs, oks int
	cb.run(func(p *sim.Proc) {
		var ios []*blockdev.IO
		for i := 0; i < 4; i++ {
			io, err := cb.queue.Submit(true, int64(i*8), pattern(4096, 9))
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			cb.queue.Unplug()
			ios = append(ios, io)
		}
		for _, io := range ios {
			if io.Wait(p) != nil {
				errs++
			} else {
				oks++
			}
		}
		// Outlast the hang, then prove steady state resumed.
		p.Sleep(15 * sim.Millisecond)
		if err := cb.writeBlocks(p, 4, 4096, 21); err != nil {
			t.Errorf("post-hang writes: %v", err)
			return
		}
		cb.verifyBlocks(t, p, 4, 4096, 21)
	})
	if errs == 0 && cb.reg.Counter("hpbd.timeout_cancels").Value() == 0 {
		t.Error("hang neither errored nor cancelled any request (watchdog dead?)")
	}
	if cb.dev.Failed() {
		t.Error("a wedged server must not kill the device")
	}
	assertExactPartition(t, cb.dev)
}

// TestDefaultConfigStillFailStop pins the compatibility contract: with
// recovery disabled (the default config) a lost server still fails the
// whole device, exactly as before this package grew a recovery path.
func TestDefaultConfigStillFailStop(t *testing.T) {
	cb := newChaosBed(t, 1, 1<<20, DefaultClientConfig(), false, "crash@300us=mem0")
	var failed int
	cb.run(func(p *sim.Proc) {
		w, err := cb.queue.Submit(true, 0, pattern(4096, 5))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		cb.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Fatalf("pre-crash write: %v", err)
		}
		p.Sleep(400 * sim.Microsecond) // outlast the scheduled crash
		for i := 0; i < 4; i++ {
			io, err := cb.queue.Submit(true, int64(i*8), pattern(4096, 5))
			if err != nil {
				failed++
				continue
			}
			cb.queue.Unplug()
			if io.Wait(p) != nil {
				failed++
			}
		}
	})
	if failed == 0 {
		t.Error("crash before traffic end produced no failures under fail-stop config")
	}
	if !cb.dev.Failed() {
		t.Error("fail-stop device did not fail on server loss")
	}
}
