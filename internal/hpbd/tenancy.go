package hpbd

import (
	"sort"

	"hpbd/internal/blockdev"
	"hpbd/internal/ib"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
	"hpbd/internal/tenant"
	"hpbd/internal/wire"
)

// Multi-tenancy (server side). With ServerConfig.Tenancy set the server
// enforces the spec's QoS contract at the paper's natural flow-control
// point — the receive window. A credit covers one request slot from the
// moment its receive buffer is posted until the reply leaves: arrival
// consumes the buffer and immediately tries to acquire a fresh credit
// for the replacement post; when the bank refuses, the slot is withheld
// (exactly the StarveRecv machinery) so the greedy tenant's effective
// window shrinks and its excess sends complete as RNR errors that its
// client retries with backoff. Replying releases the request's credit,
// and freed credits are granted to withheld slots in the bank's
// deterministic priority order. Worker issue order comes from the
// byte-weighted fair queue instead of the FIFO work channel, and
// per-tenant resident bytes are tracked page-granular for the quota
// admission check and cold-page reclaim.

// tenantPageBytes is the residency-accounting granule (one 4K page).
const tenantPageBytes = 4096

// recvSlot is one receive buffer whose repost is withheld until its
// tenant can hold another credit.
type recvSlot struct {
	conn *clientConn
	wrid uint64
	slot int
}

// tenantMetrics are one tenant's server-side metric handles, registered
// lazily at server creation only when tenancy is on (so tenancy-off
// output stays byte-identical).
type tenantMetrics struct {
	held         *telemetry.Gauge
	borrowed     *telemetry.Gauge
	schedWait    *telemetry.Histogram
	resident     *telemetry.Gauge
	evictions    *telemetry.Counter
	quotaRetries *telemetry.Counter
}

// srvTenancy is the server's tenancy state.
type srvTenancy struct {
	spec      *tenant.Spec
	bank      *tenant.CreditBank
	sched     *tenant.Sched[srvReq]
	met       map[string]*tenantMetrics // keyed access only, never iterated
	withheld  map[string][]recvSlot     // per-tenant FIFO of withheld slots
	resident  map[string]int64          // per-tenant resident bytes on this server
	bufs      []*ib.MR                  // per-request staging pool (quantum mode)
	selfCheck bool
	checkErr  error
}

// tnInit builds the tenancy state for a validated spec. Flows, metrics
// and accounting are registered in spec (ID) order.
func (s *Server) tnInit() {
	spec := s.cfg.Tenancy
	tn := &srvTenancy{
		spec:      spec,
		bank:      tenant.NewCreditBank(spec),
		sched:     tenant.NewSched[srvReq](s.env, s.cfg.TenantFIFO),
		met:       make(map[string]*tenantMetrics, len(spec.Tenants)),
		withheld:  make(map[string][]recvSlot, len(spec.Tenants)),
		resident:  make(map[string]int64, len(spec.Tenants)),
		selfCheck: s.cfg.TenantSelfCheck,
	}
	if !s.cfg.TenantFIFO {
		// Quantum mode stages each in-service request in its own buffer
		// (the data outlives any single scheduler grant). A request in
		// service holds a credit, so the provisioned credit count bounds
		// the pool; registering at setup mirrors the workers' staging.
		for i := 0; i < spec.Provisioned(); i++ {
			tn.bufs = append(tn.bufs, s.hca.RegisterMRAtSetup(make([]byte, s.cfg.StagingBytes)))
		}
	}
	for i := range spec.Tenants {
		t := &spec.Tenants[i]
		tn.sched.AddFlow(t.ID, t.Weight)
		prefix := s.name + ".tenant." + t.ID + "."
		tn.met[t.ID] = &tenantMetrics{
			held:         s.tel.Gauge(prefix + "credits_held"),
			borrowed:     s.tel.Gauge(prefix + "credits_borrowed"),
			schedWait:    s.tel.Histogram(prefix + "sched_wait"),
			resident:     s.tel.Gauge(prefix + "resident_bytes"),
			evictions:    s.tel.Counter(prefix + "evictions"),
			quotaRetries: s.tel.Counter(prefix + "quota_retries"),
		}
	}
	s.tn = tn
}

// tnCheck runs the bank's conservation check (the creditbalance
// analyzer's runtime twin) when self-checking is armed, latching the
// first violation.
func (s *Server) tnCheck() {
	if s.tn.selfCheck && s.tn.checkErr == nil {
		s.tn.checkErr = s.tn.bank.Check()
	}
}

// TenancyCheck returns the first credit-conservation violation the
// self-check observed (nil: invariant held at every tick so far).
func (s *Server) TenancyCheck() error {
	if s.tn == nil {
		return nil
	}
	return s.tn.checkErr
}

// tnGauges refreshes tenant id's credit gauges from the bank.
func (s *Server) tnGauges(id string) {
	m := s.tn.met[id]
	m.held.Set(int64(s.tn.bank.Held(id)))
	m.borrowed.Set(int64(s.tn.bank.Borrowed(id)))
}

// tnPostSlot reposts one receive buffer (its tenant already holds the
// credit). A post failure means the connection is torn down: the credit
// goes back to the bank.
func (s *Server) tnPostSlot(sl recvSlot) {
	if sl.conn.qp.Closed() {
		s.tn.bank.Release(sl.conn.tenantID)
		return
	}
	if err := sl.conn.qp.PostRecv(ib.RecvWR{
		ID:    sl.wrid,
		Local: ib.Segment{MR: sl.conn.recvMR, Off: sl.slot * wire.RequestSize, Len: wire.RequestSize},
	}); err != nil {
		s.tn.bank.Release(sl.conn.tenantID)
	}
}

// tnRepostOrWithhold decides a freed receive slot's fate: repost under
// a fresh credit when the tenant may hold one, otherwise withhold the
// slot until a release grants it. Buffer posts use the capped acquire —
// a posted buffer pins its credit until a request lands on it, which an
// idle tenant may never do, so only the revocable Grant path (one
// decision per release, with live demand in view) hands out beyond-cap
// pool credits. An active StarveRecv fault withholds the slot in the
// fault's own stash, credit-free, exactly as the non-tenant path does.
func (s *Server) tnRepostOrWithhold(conn *clientConn, wrid uint64, slot int) {
	if s.env.Now() < s.starveUntil {
		s.starved = append(s.starved, starvedRecv{conn: conn, wrid: wrid, slot: slot})
		return
	}
	id := conn.tenantID
	if s.tn.bank.TryAcquireCapped(id) {
		s.tnCheck()
		s.tnPostSlot(recvSlot{conn: conn, wrid: wrid, slot: slot})
	} else {
		s.tn.withheld[id] = append(s.tn.withheld[id], recvSlot{conn: conn, wrid: wrid, slot: slot})
		s.tn.bank.Waitlist(id, 1)
	}
	s.tnGauges(id)
}

// tnGrantDrain hands freed credits to withheld slots in the bank's
// deterministic priority order until credits or demand run out.
func (s *Server) tnGrantDrain() {
	for {
		gid, ok := s.tn.bank.Grant()
		if !ok {
			return
		}
		s.tnCheck()
		slots := s.tn.withheld[gid]
		sl := slots[0]
		s.tn.withheld[gid] = slots[1:]
		s.tnPostSlot(sl)
		s.tnGauges(gid)
	}
}

// tnRelease returns the credit a served request held and re-grants. An
// active starvation window suppresses granting (credits pile up free);
// repostStarved drains the backlog when the window lifts.
func (s *Server) tnRelease(conn *clientConn) {
	id := conn.tenantID
	s.tn.bank.Release(id)
	s.tnCheck()
	s.tnGauges(id)
	if s.env.Now() < s.starveUntil {
		return
	}
	s.tnGrantDrain()
}

// tnPages returns the page span [first, last] a request covers within
// its connection's area.
func tnPages(req wire.Request) (int64, int64) {
	first := int64(req.Offset) / tenantPageBytes
	last := (int64(req.Offset) + int64(req.Length) - 1) / tenantPageBytes
	return first, last
}

// tnAdmitWrite is the quota admission check: a write that would grow
// the tenant's resident bytes past its quota is refused with RNR-style
// pushback (the client backs off and retries while reclaim makes room).
// The refusal kicks the connection's reclaim hook so the owning device
// starts demoting cold pages.
func (s *Server) tnAdmitWrite(conn *clientConn, req wire.Request) bool {
	t := s.tn.spec.Find(conn.tenantID)
	if t == nil || t.Quota <= 0 {
		return true
	}
	first, last := tnPages(req)
	var newBytes int64
	for pg := first; pg <= last; pg++ {
		if _, ok := conn.resident[pg]; !ok {
			newBytes += tenantPageBytes
		}
	}
	if newBytes == 0 || s.tn.resident[t.ID]+newBytes <= t.Quota {
		return true
	}
	s.tn.met[t.ID].quotaRetries.Inc()
	s.tracer.InstantArgs(s.name, "quota-retry", map[string]any{
		"tenant": t.ID, "resident": s.tn.resident[t.ID], "quota": t.Quota,
	})
	if conn.reclaimKick != nil {
		conn.reclaimKick()
	}
	return false
}

// pageHeat is one resident page's access stamps. Touch drives the
// coldness ranking (reads and writes both refresh it); write alone
// guards DiscardPage, so the reclaimer's own read-out of a victim page
// never disqualifies the eviction it is part of.
type pageHeat struct {
	touch sim.Time
	write sim.Time
}

// tnMarkWrite records a completed write's pages as resident (and hot).
func (s *Server) tnMarkWrite(conn *clientConn, req wire.Request) {
	now := s.env.Now()
	first, last := tnPages(req)
	id := conn.tenantID
	for pg := first; pg <= last; pg++ {
		if _, ok := conn.resident[pg]; !ok {
			s.tn.resident[id] += tenantPageBytes
		}
		conn.resident[pg] = pageHeat{touch: now, write: now}
	}
	s.tn.met[id].resident.Set(s.tn.resident[id])
}

// tnTouchRead refreshes the heat of a read's resident pages so reclaim
// keeps demoting genuinely cold data. The write stamp is untouched: a
// read never makes the server copy newer than a sampled fallback copy.
func (s *Server) tnTouchRead(conn *clientConn, req wire.Request) {
	now := s.env.Now()
	first, last := tnPages(req)
	for pg := first; pg <= last; pg++ {
		if h, ok := conn.resident[pg]; ok {
			h.touch = now
			conn.resident[pg] = h
		}
	}
}

// tnQuantum returns the fair queue's issue quantum in bytes. The 16 KB
// default keeps a victim's residual wait under a neighbor's bulk chunk
// near the small-request service time itself while holding per-chunk
// posting overhead to a few percent of a 128 KB transfer.
func (s *Server) tnQuantum() int {
	q := s.cfg.TenantQuantum
	if q <= 0 {
		q = 16 * 1024
	}
	if q > s.cfg.StagingBytes {
		q = s.cfg.StagingBytes
	}
	return q
}

// tnChunk is the next chunk's size for a request with done bytes moved.
func (s *Server) tnChunk(n, done int) int {
	chunk := n - done
	if q := s.tnQuantum(); chunk > q {
		chunk = q
	}
	return chunk
}

// tnDispatchBytes is the byte cost the receive loop charges when it
// queues a fresh request. In quantum mode every grant that moves a chunk
// over the wire is charged that chunk — so a flow's virtual time
// advances by exactly its payload bytes — which makes the dispatch
// charge the first chunk for writes (the first grant RDMA-reads it) and
// zero for reads (the first grant only dispatches the store read; the
// chunks charge themselves when the data is ready). FIFO charges the
// whole request up front; there the cost only feeds the byte counters.
func (s *Server) tnDispatchBytes(req wire.Request) int {
	n := int(req.Length)
	if s.cfg.TenantFIFO {
		return n
	}
	if req.Type == wire.ReqRead {
		return 0
	}
	return s.tnChunk(n, 0)
}

// tnGetBuf takes a staging buffer from the pool (registering a spare is
// a defensive fallback; the pool is provisioned for the credit limit).
func (s *Server) tnGetBuf() *ib.MR {
	if n := len(s.tn.bufs); n > 0 {
		b := s.tn.bufs[n-1]
		s.tn.bufs = s.tn.bufs[:n-1]
		return b
	}
	return s.hca.RegisterMRAtSetup(make([]byte, s.cfg.StagingBytes))
}

func (s *Server) tnPutBuf(b *ib.MR) { s.tn.bufs = append(s.tn.bufs, b) }

// tnCont is the state a request carries across scheduler grants in
// quantum mode: its staging buffer, how many payload bytes have moved,
// the store stage's outcome, and the lifecycle bookkeeping serveOne
// would have kept on its stack.
type tnCont struct {
	buf     *ib.MR
	done    int
	ready   bool // read: store read completed, chunks may stream
	fail    bool // read: store read failed
	wstart  sim.Time
	copyNs  sim.Duration
	flow    uint64
	hasFlow bool
}

// tnGrant is a scheduler grant's outcome.
type tnGrant int

const (
	tnDone   tnGrant = iota // request finished: the worker releases its credit
	tnMore                  // partially transferred: re-queue the continuation
	tnParked                // handed to a store proc, which re-queues or finishes it
)

// tnReply stamps and sends one reply (shared by the issue worker and the
// store procs, which reply off the worker's critical path).
func (s *Server) tnReply(p *sim.Proc, conn *clientConn, replyMR *ib.MR, req wire.Request, c *tnCont, st wire.Status) {
	if s.hangUntil > p.Now() {
		p.Sleep(s.hangUntil.Sub(p.Now()))
	}
	s.lifecycle().StampServer(req.Handle, telemetry.ServerStamp{
		Start: c.wstart, Reply: p.Now(), Copy: c.copyNs,
	})
	s.sendReply(p, conn, replyMR, req.Handle, st)
}

// tnServeQuantum services one scheduler grant of item in quantum mode.
// Validation and quota admission happen on the first grant; after that a
// grant moves at most one quantum of payload over the wire, and the
// store stage runs in a spawned proc off the issue worker entirely. Two
// properties fall out, and both are load-bearing for isolation:
//
//   - a competing tenant's small request waits at most one quantum of
//     wire time behind a neighbor's bulk transfer (the ingress link is
//     reserved at post time, so queue-order-only fairness cannot bound
//     this), and
//   - the issue worker never sits in the store's per-op overhead, so
//     that overhead — paid once per request, as in the monolithic path —
//     never becomes the preemption granularity.
//
// A request in flight stages its payload in a pool buffer (tnGetBuf) so
// nothing borrows the worker's staging across a preemption. Writes
// RDMA-read chunk by chunk, then hand buffer, store write and reply to a
// storer proc (tnParked). Reads dispatch the store read first (tnParked),
// whose proc re-queues the request when the data is staged; the chunks
// then RDMA-write per grant and the worker replies inline.
func (s *Server) tnServeQuantum(p *sim.Proc, wname string, replyMR *ib.MR, item srvReq) (srvReq, tnGrant) {
	conn, req := item.conn, item.req
	n := int(req.Length)
	c := item.cont
	if c == nil {
		c = &tnCont{wstart: p.Now()}
		c.flow, c.hasFlow = s.lifecycle().TakeFlow(req.Handle)
		if c.hasFlow {
			s.tracer.FlowStep(wname, "req", c.flow)
		}
		item.cont = c
		if n <= 0 || n > s.cfg.StagingBytes ||
			req.Offset+uint64(n) > uint64(conn.areaSize) {
			s.met.badRequests.Inc()
			s.tnReply(p, conn, replyMR, req, c, wire.StatusOutOfRange)
			return item, tnDone
		}
		switch req.Type {
		case wire.ReqWrite:
			if !s.tnAdmitWrite(conn, req) {
				s.tnReply(p, conn, replyMR, req, c, wire.StatusRetry)
				return item, tnDone
			}
		case wire.ReqRead:
		default:
			s.met.badRequests.Inc()
			s.tnReply(p, conn, replyMR, req, c, wire.StatusBadRequest)
			return item, tnDone
		}
		c.buf = s.tnGetBuf()
	}
	storeOff := conn.areaOff + int64(req.Offset)
	switch req.Type {
	case wire.ReqWrite:
		chunk := s.tnChunk(n, c.done)
		span := s.tracer.Begin(wname, "rdma-read")
		ev, err := s.postRDMA(p, conn, ib.OpRDMARead,
			ib.Segment{MR: c.buf, Off: c.done, Len: chunk}, req.RKey, int(req.Addr)+c.done, c.flow)
		if err != nil {
			s.tnPutBuf(c.buf)
			s.tnReply(p, conn, replyMR, req, c, wire.StatusServerError)
			return item, tnDone
		}
		ev.Wait(p)
		span.EndArgs(map[string]any{"bytes": chunk, "done": c.done})
		if conn.qp.Closed() {
			s.tnPutBuf(c.buf)
			return item, tnDone
		}
		c.done += chunk
		if c.done < n {
			return item, tnMore
		}
		s.env.Go(s.name+"-storer", func(sp *sim.Proc) {
			span := s.tracer.Begin(s.name+"-store", "store-write")
			copyStart := sp.Now()
			err := s.store.WriteAt(sp, c.buf.Buf[:n], storeOff)
			c.copyNs += sp.Now().Sub(copyStart)
			span.EndArgs(map[string]any{"bytes": n})
			st := wire.StatusServerError
			if err == nil {
				st = wire.StatusOK
				s.met.writes.Inc()
				s.met.bytesStored.Add(int64(n))
				s.tnMarkWrite(conn, req)
			}
			s.tnPutBuf(c.buf)
			if !conn.qp.Closed() {
				mr := s.hca.RegisterMRAtSetup(make([]byte, wire.ReplySize))
				s.tnReply(sp, conn, mr, req, c, st)
			}
			s.tnRelease(conn)
		})
		return item, tnParked

	case wire.ReqRead:
		if !c.ready {
			s.env.Go(s.name+"-reader", func(sp *sim.Proc) {
				span := s.tracer.Begin(s.name+"-store", "store-read")
				copyStart := sp.Now()
				err := s.store.ReadAt(sp, c.buf.Buf[:n], storeOff)
				c.copyNs += sp.Now().Sub(copyStart)
				span.EndArgs(map[string]any{"bytes": n})
				c.ready = true
				c.fail = err != nil
				s.tn.sched.Push(conn.tenantID, s.tnChunk(n, 0), sp.Now(), item)
			})
			return item, tnParked
		}
		if c.fail {
			s.tnPutBuf(c.buf)
			s.tnReply(p, conn, replyMR, req, c, wire.StatusServerError)
			return item, tnDone
		}
		chunk := s.tnChunk(n, c.done)
		span := s.tracer.Begin(wname, "rdma-write")
		ev, err := s.postRDMA(p, conn, ib.OpRDMAWrite,
			ib.Segment{MR: c.buf, Off: c.done, Len: chunk}, req.RKey, int(req.Addr)+c.done, c.flow)
		if err != nil {
			s.tnPutBuf(c.buf)
			s.tnReply(p, conn, replyMR, req, c, wire.StatusServerError)
			return item, tnDone
		}
		ev.Wait(p)
		span.EndArgs(map[string]any{"bytes": chunk, "done": c.done})
		if conn.qp.Closed() {
			s.tnPutBuf(c.buf)
			return item, tnDone
		}
		c.done += chunk
		if c.done < n {
			return item, tnMore
		}
		s.met.reads.Inc()
		s.met.bytesServed.Add(int64(n))
		s.tnTouchRead(conn, req)
		s.tnPutBuf(c.buf)
		s.tnReply(p, conn, replyMR, req, c, wire.StatusOK)
		return item, tnDone
	}
	s.met.badRequests.Inc()
	s.tnReply(p, conn, replyMR, req, c, wire.StatusBadRequest)
	return item, tnDone
}

// ColdPage is one resident page with its last-touch time, the token the
// client's reclaimer passes back to DiscardPage so a racing fresh write
// is never discarded.
type ColdPage struct {
	Page int64 // page index within the connection's area
	Last sim.Time
}

// ColdestPages returns up to maxBytes of the connection's coldest
// resident pages, coldest first (ties by page index, never map order).
func (s *Server) ColdestPages(qp *ib.QP, maxBytes int64) []ColdPage {
	conn := s.conns[qp]
	if conn == nil || s.tn == nil {
		return nil
	}
	pages := make([]ColdPage, 0, len(conn.resident))
	for pg, h := range conn.resident {
		pages = append(pages, ColdPage{Page: pg, Last: h.touch})
	}
	sort.Slice(pages, func(i, j int) bool {
		if pages[i].Last != pages[j].Last {
			return pages[i].Last < pages[j].Last
		}
		return pages[i].Page < pages[j].Page
	})
	n := int(maxBytes / tenantPageBytes)
	if maxBytes%tenantPageBytes != 0 {
		n++
	}
	if n < len(pages) {
		pages = pages[:n]
	}
	return pages
}

// DiscardPage drops one evicted page from the residency accounting,
// but only if it has not been rewritten since the reclaimer sampled it
// (its write stamp must not postdate cp.Last). Reads in the window —
// including the reclaimer's own copy-out — do not disqualify; a false
// return tells the reclaimer the server copy is newer and its fallback
// hold must be dropped.
func (s *Server) DiscardPage(qp *ib.QP, cp ColdPage) bool {
	conn := s.conns[qp]
	if conn == nil || s.tn == nil {
		return false
	}
	h, ok := conn.resident[cp.Page]
	if !ok || h.write > cp.Last {
		return false
	}
	delete(conn.resident, cp.Page)
	id := conn.tenantID
	s.tn.resident[id] -= tenantPageBytes
	s.tn.met[id].resident.Set(s.tn.resident[id])
	s.tn.met[id].evictions.Inc()
	return true
}

// TenantResident returns the connection's tenant's resident bytes on
// this server.
func (s *Server) TenantResident(qp *ib.QP) int64 {
	conn := s.conns[qp]
	if conn == nil || s.tn == nil {
		return 0
	}
	return s.tn.resident[conn.tenantID]
}

// TenantQuota returns the connection's tenant's quota (0: unlimited).
func (s *Server) TenantQuota(qp *ib.QP) int64 {
	conn := s.conns[qp]
	if conn == nil || s.tn == nil {
		return 0
	}
	if t := s.tn.spec.Find(conn.tenantID); t != nil {
		return t.Quota
	}
	return 0
}

// setReclaimKick registers the owning device's reclaim wakeup for a
// connection (called from ConnectServer when the device has a reclaimer).
func (s *Server) setReclaimKick(qp *ib.QP, kick func()) {
	if conn := s.conns[qp]; conn != nil {
		conn.reclaimKick = kick
	}
}

// TenantStat is one tenant's server-side QoS snapshot (hpbdctl tenants).
type TenantStat struct {
	ID       string
	Weight   int
	Reserved int
	Quota    int64

	Held     int // credits currently held
	Borrowed int // of which borrowed from the pool
	Waiting  int // withheld request slots

	SchedReqs  int64 // requests issued by the fair queue
	SchedBytes int64 // bytes issued by the fair queue
	Queued     int   // currently backlogged in the queue
	SchedP99   sim.Duration

	Resident     int64
	Evictions    int64
	QuotaRetries int64
}

// TenantStats snapshots every tenant in spec order (nil without tenancy).
func (s *Server) TenantStats() []TenantStat {
	if s.tn == nil {
		return nil
	}
	flows := s.tn.sched.FlowStats()
	out := make([]TenantStat, 0, len(flows))
	for _, f := range flows {
		t := s.tn.spec.Find(f.ID)
		m := s.tn.met[f.ID]
		out = append(out, TenantStat{
			ID:           f.ID,
			Weight:       t.Weight,
			Reserved:     t.Reserved,
			Quota:        t.Quota,
			Held:         s.tn.bank.Held(f.ID),
			Borrowed:     s.tn.bank.Borrowed(f.ID),
			Waiting:      s.tn.bank.Waiting(f.ID),
			SchedReqs:    f.Reqs,
			SchedBytes:   f.Bytes,
			Queued:       f.Queued,
			SchedP99:     m.schedWait.Quantile(0.99),
			Resident:     s.tn.resident[f.ID],
			Evictions:    m.evictions.Value(),
			QuotaRetries: m.quotaRetries.Value(),
		})
	}
	return out
}

// Multi-tenancy (client side). A device created with ClientConfig.Tenant
// presents that identity at attach; when it also has a fallback disk, a
// reclaimer process parks until a quota refusal kicks it, then demotes
// the server's coldest pages of this tenant to the fallback (read the
// page through the normal request path, absorb it on the fallback disk,
// mark the sectors fallback-held — PR 5's hold machinery — and discard
// the server copy), restoring headroom so the backed-off writes admit.

// reclaimHeadroom is how far below quota reclaim drives residency: one
// full-size request of room, so a refused 128K burst admits after one
// pass.
const reclaimHeadroom = int64(blockdev.MaxRequestBytes)

// reclaimer is the device's demotion daemon. It parks event-free while
// quota pressure is absent (a sleeping loop would keep Env.Run from
// draining) and runs passes while it makes progress.
func (d *Device) reclaimer(p *sim.Proc) {
	for {
		d.reclaimQ.Wait(p)
		for d.reclaimPass(p) {
		}
	}
}

// reclaimPass demotes cold pages on every over-quota link once,
// returning whether it evicted anything.
func (d *Device) reclaimPass(p *sim.Proc) bool {
	progress := false
	for _, link := range d.links {
		// startByte < 0: an elastic directory-mapped link; reclaim only
		// addresses the legacy blocked layout.
		if link.down || link.removed || link.srvQP == nil || link.srv.Crashed() || link.startByte < 0 {
			continue
		}
		quota := link.srv.TenantQuota(link.srvQP)
		res := link.srv.TenantResident(link.srvQP)
		if quota <= 0 || res+reclaimHeadroom <= quota {
			continue
		}
		target := res + reclaimHeadroom - quota
		for _, cp := range link.srv.ColdestPages(link.srvQP, target) {
			if d.demotePage(p, link, cp) {
				progress = true
			}
		}
	}
	return progress
}

// demotePage moves one cold page to the fallback disk: server read,
// fallback write, hold, then a guarded discard of the server copy. If a
// fresh write raced the demotion the discard refuses and the hold is
// dropped — the server copy stays authoritative.
func (d *Device) demotePage(p *sim.Proc, link *serverLink, cp ColdPage) bool {
	devByte := link.startByte + cp.Page*tenantPageBytes
	buf := make([]byte, tenantPageBytes)
	r := blockdev.NewRequest(d.env, false, devByte/blockdev.SectorSize, buf)
	d.Submit(p, r)
	if err := r.Wait(p); err != nil {
		return false
	}
	fr := blockdev.NewRequest(d.env, true, devByte/blockdev.SectorSize, buf)
	d.cfg.Fallback.Submit(p, fr)
	if err := fr.Wait(p); err != nil {
		return false
	}
	d.holdOnFallback(devByte, tenantPageBytes)
	if !link.srv.DiscardPage(link.srvQP, cp) {
		d.clearFallbackHold(devByte, tenantPageBytes)
		return false
	}
	d.tracer.InstantArgs(d.name, "demote", map[string]any{
		"server": link.srv.Name(), "page": cp.Page, "bytes": tenantPageBytes,
	})
	return true
}
