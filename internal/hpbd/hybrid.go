package hpbd

import (
	"math/bits"

	"hpbd/internal/ib"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// mrCache keeps recently used payload MRs registered so repeated large
// transfers amortize the registration cost (the MR-reuse idea RDMAbox
// applies to swap traffic). Idle MRs sit in least-recently-returned
// order; get hands out the first large-enough buffer, put evicts the
// coldest entry beyond the cap and pays deregistration for it. With the
// cache warm, a large request's registration cost drops to zero and the
// hybrid path wins against copy-into-pool everywhere at or above the
// Fig. 3 crossover.
type mrCache struct {
	hca  *ib.HCA
	cap  int
	odp  bool     // register misses as on-demand-paging regions
	idle []*ib.MR // least recently returned first

	hits   *telemetry.Counter
	misses *telemetry.Counter
	evicts *telemetry.Counter
	// idleG mirrors len(idle) so the trace shows cache occupancy over
	// time; keeping it exact through the eviction path is the accounting
	// contract TestMRCacheEvictWhileIdle pins down.
	idleG *telemetry.Gauge
}

func newMRCache(hca *ib.HCA, entries int, reg *telemetry.Registry) *mrCache {
	return &mrCache{
		hca:    hca,
		cap:    entries,
		hits:   reg.Counter("hpbd.hybrid.mr_hits"),
		misses: reg.Counter("hpbd.hybrid.mr_misses"),
		evicts: reg.Counter("hpbd.hybrid.mr_evicts"),
		idleG:  reg.Gauge("hpbd.hybrid.mr_idle"),
	}
}

// get returns an idle registered MR of at least n bytes, registering a
// fresh power-of-two-sized buffer (charging p the Fig. 3 registration
// cost) on a miss. The size rounding keeps buffers interchangeable across
// the narrow large-request size range, which is what makes reuse hit.
func (c *mrCache) get(p *sim.Proc, n int) *ib.MR {
	for i, mr := range c.idle {
		if len(mr.Buf) >= n {
			c.idle = append(c.idle[:i], c.idle[i+1:]...)
			c.hits.Inc()
			c.idleG.Set(int64(len(c.idle)))
			return mr
		}
	}
	c.misses.Inc()
	size := n
	if size < netmodel.PageSize {
		size = netmodel.PageSize
	}
	size = 1 << bits.Len(uint(size-1))
	if c.odp {
		// ODP mode: registration is ~free; the first WR through each
		// window pays the fault instead (charged by the fabric).
		return c.hca.RegisterODP(p, make([]byte, size))
	}
	return c.hca.RegisterMR(p, make([]byte, size))
}

// put returns an MR to the idle list, evicting (and deregistering) the
// least recently used entry beyond capacity. A nil p (failure teardown)
// skips the deregistration charge — there is no process to bill.
func (c *mrCache) put(p *sim.Proc, mr *ib.MR) {
	c.idle = append(c.idle, mr)
	if len(c.idle) <= c.cap {
		c.idleG.Set(int64(len(c.idle)))
		return
	}
	old := c.idle[0]
	c.idle = c.idle[1:]
	c.evicts.Inc()
	c.idleG.Set(int64(len(c.idle)))
	if p != nil {
		c.hca.DeregisterMR(p, old)
	} else {
		c.hca.DeregisterMRAtTeardown(old)
	}
}

// Idle returns how many registered MRs sit unused in the cache (tests).
func (c *mrCache) Idle() int { return len(c.idle) }
