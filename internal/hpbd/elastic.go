package hpbd

// Elastic membership and live migration.
//
// A Device created with ClientConfig.Elastic can change its server fleet
// at runtime: AddServerLive attaches a new server and rebalances onto it,
// DrainServer empties a server, RemoveServer retires a drained one. The
// sector→server map lives in a placement.Directory; until the first
// membership operation the directory does not exist and the device splits
// requests through the legacy static layout, byte-identically to a
// non-elastic device.
//
// Moves are executed by a live migration engine that copies a sector
// range from its source server to reserved space on the destination in
// chunk-sized batches while foreground I/O keeps flowing to the source.
// Writes that land in the moving range after their sectors were copied
// re-dirty them (write-forwarding); dirty sectors are re-copied, first
// concurrently with foreground traffic, then once more under a short
// write freeze that drains the last in-flight writes. The cutover commits
// the directory (epoch bump) and requeues still-pending in-range requests
// onto the destination in handle order — the same discipline as link
// failover. Any transfer error aborts the move with the range still
// mapped to its source, so a crash mid-migration never loses sectors.

import (
	"errors"
	"fmt"
	"sort"

	"hpbd/internal/blockdev"
	"hpbd/internal/ib"
	"hpbd/internal/placement"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
	"hpbd/internal/wire"
)

// ErrNotElastic reports a membership operation on a device that was not
// configured with ClientConfig.Elastic.
var ErrNotElastic = errors.New("hpbd: device not configured for elastic membership")

// ErrMigration wraps a transfer failure that aborted a move.
var ErrMigration = errors.New("hpbd: migration aborted")

// elasticMetrics are registered lazily on the first membership operation
// so a static topology's telemetry summary is unchanged.
type elasticMetrics struct {
	epoch       *telemetry.Gauge
	migBytes    *telemetry.Counter
	migMoves    *telemetry.Counter
	cutovers    *telemetry.Counter
	dirtyResent *telemetry.Counter
	requeued    *telemetry.Counter
	aborted     *telemetry.Counter
	stall       *telemetry.Histogram
	chunkCopy   *telemetry.Histogram
}

func newElasticMetrics(reg *telemetry.Registry) elasticMetrics {
	return elasticMetrics{
		epoch:       reg.Gauge("placement.epoch"),
		migBytes:    reg.Counter("migration.bytes"),
		migMoves:    reg.Counter("migration.moves"),
		cutovers:    reg.Counter("migration.cutovers"),
		dirtyResent: reg.Counter("migration.dirty_resent"),
		requeued:    reg.Counter("migration.requeued"),
		aborted:     reg.Counter("migration.aborted"),
		stall:       reg.Histogram("migration.stall"),
		chunkCopy:   reg.Histogram("migration.chunk"),
	}
}

// migState tracks one in-progress move. It lives in Device.mig for the
// duration of runMove so the foreground path can see it.
type migState struct {
	startSec int64 // first sector of the moving range
	endSec   int64 // one past the last sector
	frontier int64 // first sector the chunk loop has not copied yet
	// dirty holds copied sectors overwritten by foreground traffic since
	// their copy (write-forwarding set). Swept by resendDirty.
	dirty map[int64]struct{}
	// inflight counts tracked foreground writes (submitted into the
	// moving range, not yet terminally completed).
	inflight int
	freeze   bool // park new in-range writes until cutover
	freezeQ  *sim.WaitQueue
	drainQ   *sim.WaitQueue
}

// overlaps reports whether the byte range [devByte, devByte+n)
// intersects the moving sector range.
func (m *migState) overlaps(devByte int64, n int) bool {
	lo := devByte / blockdev.SectorSize
	hi := (devByte + int64(n) + blockdev.SectorSize - 1) / blockdev.SectorSize
	return lo < m.endSec && hi > m.startSec
}

// noteDone is called from finishPhys for every tracked foreground write:
// a successful one re-dirties its already-copied sectors, and the last
// in-flight write wakes the cutover drain.
func (m *migState) noteDone(ph *phys, err error) {
	if ph.write && err == nil {
		lo := ph.devByte / blockdev.SectorSize
		hi := (ph.devByte + int64(ph.length) + blockdev.SectorSize - 1) / blockdev.SectorSize
		for s := lo; s < hi; s++ {
			// Sectors at or past the frontier will be read fresh by the
			// chunk loop; only already-copied sectors need a resend.
			if s >= m.startSec && s < m.endSec && s < m.frontier {
				m.dirty[s] = struct{}{}
			}
		}
	}
	m.inflight--
	if m.inflight <= 0 {
		m.drainQ.WakeAll()
	}
}

// migGate parks a foreground write that targets a frozen moving range
// until the cutover completes. Reads are never gated: the source stays
// authoritative until the epoch flips.
func (d *Device) migGate(p *sim.Proc, r *blockdev.Request) {
	start := r.Sector * blockdev.SectorSize
	n := r.Bytes()
	m := d.mig
	if m == nil || !m.freeze || !m.overlaps(start, n) {
		return
	}
	t0 := p.Now()
	for {
		m = d.mig
		if m == nil || !m.freeze || !m.overlaps(start, n) {
			break
		}
		m.freezeQ.Wait(p)
	}
	d.emet.stall.Observe(p.Now().Sub(t0))
}

// Directory returns the placement directory, or nil while the device
// still runs its static legacy layout (no membership operation yet).
func (d *Device) Directory() *placement.Directory { return d.dir }

// HasServer reports whether a server of that name is connected.
func (d *Device) HasServer(name string) bool {
	for _, l := range d.links {
		if l.srv.Name() == name {
			return true
		}
	}
	return false
}

// ensureDir bootstraps the placement directory from the legacy layout on
// the first membership operation. Until then d.dir is nil and split
// walks the static areas, so merely enabling Elastic changes nothing.
func (d *Device) ensureDir() {
	if d.dir != nil {
		return
	}
	d.emet = newElasticMetrics(d.tel)
	dir := placement.NewDirectory()
	for _, l := range d.links {
		dir.Bootstrap(l.srv.Name(), l.size)
	}
	d.dir = dir
	d.emet.epoch.Set(int64(dir.Epoch()))
}

// ensureMigResources registers the long-lived migration staging MR
// (one-time registration charge) and sizes the copy chunk.
func (d *Device) ensureMigResources(p *sim.Proc) {
	if d.migMR != nil {
		return
	}
	chunk := d.cfg.MigrationChunkBytes
	if chunk <= 0 {
		chunk = 64 * 1024
	}
	if chunk > blockdev.MaxRequestBytes {
		// The server staging buffers (and the block layer itself) bound
		// a single transfer at 128KB.
		chunk = blockdev.MaxRequestBytes
	}
	chunk -= chunk % blockdev.SectorSize
	if chunk < blockdev.SectorSize {
		chunk = blockdev.SectorSize
	}
	d.migBuf = make([]byte, chunk)
	d.migMR = d.hca.RegisterMR(p, make([]byte, chunk))
}

// AddServerLive attaches srv to a running device as rebalancing headroom
// and migrates the fleet toward capacity-proportional balance. The
// device does not grow (swap capacity is fixed at connect time); the new
// server absorbs load and makes draining others possible.
func (d *Device) AddServerLive(p *sim.Proc, srv *Server, areaBytes int64) error {
	if d.memberMu == nil {
		return ErrNotElastic
	}
	if d.cfg.StripeBytes > 0 {
		return fmt.Errorf("hpbd: elastic membership requires the blocked layout")
	}
	if areaBytes <= 0 || areaBytes%blockdev.SectorSize != 0 {
		return fmt.Errorf("hpbd: invalid area size %d", areaBytes)
	}
	d.memberMu.Lock(p)
	defer d.memberMu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	d.ensureDir()
	d.ensureMigResources(p)
	qp := d.hca.CreateQP(d.cq, d.cq)
	srvQP, _, err := srv.attach(qp, areaBytes, d.cfg.Tenant)
	if err != nil {
		return err
	}
	link := &serverLink{
		srv:     srv,
		qp:      qp,
		srvQP:   srvQP,
		credits: sim.NewSemaphore(d.env, d.cfg.Credits),
		// startByte -1: this link is not part of the legacy address
		// space; only the directory maps sectors onto it.
		startByte: -1,
		size:      areaBytes,
		reqMR:     d.hca.RegisterMRAtSetup(make([]byte, d.cfg.Credits*wire.RequestSize)),
		recvMR:    d.hca.RegisterMRAtSetup(make([]byte, d.cfg.Credits*wire.ReplySize)),
	}
	for i := 0; i < d.cfg.Credits; i++ {
		if err := qp.PostRecv(ib.RecvWR{
			ID:    uint64(i),
			Local: ib.Segment{MR: link.recvMR, Off: i * wire.ReplySize, Len: wire.ReplySize},
		}); err != nil {
			return err
		}
	}
	d.links = append(d.links, link)
	d.byQP[qp] = link
	id := d.dir.AddServer(srv.Name(), areaBytes)
	if id != len(d.links)-1 {
		return fmt.Errorf("hpbd: directory/link index skew: %d != %d", id, len(d.links)-1)
	}
	d.emet.epoch.Set(int64(d.dir.Epoch()))
	d.tracer.InstantArgs(d.name, "member-add", map[string]any{
		"server": srv.Name(), "epoch": d.dir.Epoch(),
	})
	return d.rebalance(p)
}

// rebalance plans and executes moves until the directory reports
// balance. Capacity-capped plans can need more than one round; the
// round cap only guards a (never observed) planner oscillation.
func (d *Device) rebalance(p *sim.Proc) error {
	for round := 0; round < 64; round++ {
		moves := d.dir.PlanRebalance()
		if len(moves) == 0 {
			return nil
		}
		for _, mv := range moves {
			if err := d.runMove(p, mv); err != nil {
				return fmt.Errorf("%w: %v", ErrMigration, err)
			}
		}
	}
	return nil
}

// DrainServer migrates every range off the named server. The server
// stays attached (reads of not-yet-cut-over ranges may still hit it);
// retire it with RemoveServer once the drain returns.
func (d *Device) DrainServer(p *sim.Proc, name string) error {
	if d.memberMu == nil {
		return ErrNotElastic
	}
	if d.cfg.StripeBytes > 0 {
		return fmt.Errorf("hpbd: elastic membership requires the blocked layout")
	}
	d.memberMu.Lock(p)
	defer d.memberMu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	d.ensureDir()
	d.ensureMigResources(p)
	id := d.dir.FindServer(name)
	if id < 0 {
		return fmt.Errorf("hpbd: unknown server %q", name)
	}
	moves, err := d.dir.Drain(id)
	if err != nil {
		return err
	}
	d.emet.epoch.Set(int64(d.dir.Epoch()))
	d.tracer.InstantArgs(d.name, "member-drain", map[string]any{
		"server": name, "epoch": d.dir.Epoch(), "moves": len(moves),
	})
	for _, mv := range moves {
		if merr := d.runMove(p, mv); merr != nil {
			return fmt.Errorf("%w: %v", ErrMigration, merr)
		}
	}
	return nil
}

// RemoveServer retires a drained server: the directory slot is marked
// removed, in-flight stragglers on the link are waited out, and the QP
// is closed. The flushed completions of the closed QP are ignored (see
// handleErrorCQE), so decommissioning is not a failure.
func (d *Device) RemoveServer(p *sim.Proc, name string) error {
	if d.memberMu == nil {
		return ErrNotElastic
	}
	d.memberMu.Lock(p)
	defer d.memberMu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	d.ensureDir()
	id := d.dir.FindServer(name)
	if id < 0 {
		return fmt.Errorf("hpbd: unknown server %q", name)
	}
	if err := d.dir.Remove(id); err != nil {
		return err
	}
	link := d.links[id]
	// Let straggler reads (left behind on the source at a cutover)
	// finish before tearing the QP down; the directory no longer maps
	// anything here, so the count only ever shrinks.
	for {
		n := 0
		for _, ph := range d.pending {
			if ph.link == link {
				n++
			}
		}
		if n == 0 {
			break
		}
		p.Sleep(50 * sim.Microsecond)
	}
	link.removed = true
	link.down = true // Submit's down-link guard routes around it
	if !link.qp.Closed() {
		link.qp.Close()
	}
	d.emet.epoch.Set(int64(d.dir.Epoch()))
	d.tracer.InstantArgs(d.name, "member-remove", map[string]any{
		"server": name, "epoch": d.dir.Epoch(),
	})
	return nil
}

// runMove executes one planned move: reserve destination space, copy the
// range in chunks, re-send dirty sectors, freeze-drain-resend, commit,
// requeue. On any transfer error the move aborts with the directory
// unchanged — the range still lives on its source.
func (d *Device) runMove(p *sim.Proc, mv placement.Move) error {
	dstOff, err := d.dir.Reserve(mv)
	if err != nil {
		return err
	}
	d.emet.migMoves.Inc()
	seq := uint64(d.emet.migMoves.Value())
	m := &migState{
		startSec: mv.Start,
		endSec:   mv.Start + mv.Sectors,
		frontier: mv.Start,
		dirty:    make(map[int64]struct{}),
		freezeQ:  sim.NewWaitQueue(d.env),
		drainQ:   sim.NewWaitQueue(d.env),
	}
	d.mig = m
	defer func() {
		d.mig = nil
		m.freeze = false
		m.freezeQ.WakeAll()
	}()
	// Adopt foreground writes already in flight inside the range: their
	// completions must re-dirty and the cutover drain must wait for them.
	handles := make([]uint64, 0, len(d.pending))
	for h := range d.pending {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	for _, h := range handles {
		ph := d.pending[h]
		if ph.write && !ph.mig && ph.mtrack == nil && m.overlaps(ph.devByte, ph.length) {
			ph.mtrack = m
			m.inflight++
		}
	}
	span := d.tracer.Begin(d.name, "migrate")
	d.tracer.FlowBegin(d.name, "migration", seq)
	abort := func(xerr error) error {
		d.emet.aborted.Inc()
		d.lc.Flight().DumpOnEvent(fmt.Sprintf(
			"migration aborted: %s -> %s sectors=%d frontier=%d err=%v",
			d.links[mv.From].srv.Name(), d.links[mv.To].srv.Name(),
			mv.Sectors, m.frontier, xerr))
		d.tracer.FlowEnd(d.name, "migration", seq)
		span.EndArgs(map[string]any{
			"from": d.links[mv.From].srv.Name(), "to": d.links[mv.To].srv.Name(),
			"sectors": mv.Sectors, "aborted": true, "err": xerr.Error(),
		})
		return xerr
	}
	chunkSecs := int64(len(d.migBuf)) / blockdev.SectorSize
	for m.frontier < m.endSec {
		t0 := p.Now()
		secs := chunkSecs
		if m.frontier+secs > m.endSec {
			secs = m.endSec - m.frontier
		}
		n := int(secs * blockdev.SectorSize)
		devByte := m.frontier * blockdev.SectorSize
		srcOff := mv.SrcAreaOff + (m.frontier-mv.Start)*blockdev.SectorSize
		dstByte := dstOff + (m.frontier-mv.Start)*blockdev.SectorSize
		if err := d.copyChunk(p, mv, srcOff, dstByte, devByte, n); err != nil {
			return abort(err)
		}
		// Advancing the frontier after the copy means a write completing
		// mid-copy of its own chunk still re-dirties it (noteDone sees
		// the old frontier) — conservative, never lossy.
		m.frontier += secs
		d.emet.migBytes.Add(int64(n))
		d.emet.chunkCopy.Observe(p.Now().Sub(t0))
		d.tracer.FlowStep(d.name, "migration", seq)
		d.pace(p, n, t0)
	}
	// Pass 1: sweep the write-forwarding set concurrently with
	// foreground traffic to shrink the frozen window.
	if err := d.resendDirty(p, m, mv, dstOff); err != nil {
		return abort(err)
	}
	// Cutover: stop new in-range writes, wait out the in-flight ones,
	// sweep the final dirty set, flip the epoch.
	m.freeze = true
	freezeAt := p.Now()
	for m.inflight > 0 {
		m.drainQ.Wait(p)
	}
	if err := d.resendDirty(p, m, mv, dstOff); err != nil {
		return abort(err)
	}
	d.dir.Commit(mv, dstOff)
	d.emet.epoch.Set(int64(d.dir.Epoch()))
	d.emet.cutovers.Inc()
	d.requeueRange(mv)
	d.tracer.FlowEnd(d.name, "migration", seq)
	d.tracer.InstantArgs(d.name, "cutover", map[string]any{
		"epoch": d.dir.Epoch(), "start": mv.Start, "sectors": mv.Sectors,
		"freeze_us": p.Now().Sub(freezeAt).Micros(),
	})
	span.EndArgs(map[string]any{
		"from": d.links[mv.From].srv.Name(), "to": d.links[mv.To].srv.Name(),
		"sectors": mv.Sectors, "bytes": mv.Bytes(), "epoch": d.dir.Epoch(),
	})
	return nil
}

// copyChunk moves one chunk source→destination through the normal
// request path: an RDMA read off the source into the migration MR, then
// an RDMA write of that MR to the destination.
func (d *Device) copyChunk(p *sim.Proc, mv placement.Move, srcOff, dstByte, devByte int64, n int) error {
	if err := d.migXfer(p, d.links[mv.From], false, srcOff, devByte, n); err != nil {
		return err
	}
	return d.migXfer(p, d.links[mv.To], true, dstByte, devByte, n)
}

// resendDirty sweeps the current write-forwarding set: dirty sectors are
// coalesced into chunk-bounded runs and re-copied source→destination.
// The set is snapshotted and reset first, so writes completing during
// the sweep land in a fresh set for the next pass.
func (d *Device) resendDirty(p *sim.Proc, m *migState, mv placement.Move, dstOff int64) error {
	if len(m.dirty) == 0 {
		return nil
	}
	secs := make([]int64, 0, len(m.dirty))
	for s := range m.dirty {
		secs = append(secs, s)
	}
	sort.Slice(secs, func(i, j int) bool { return secs[i] < secs[j] })
	m.dirty = make(map[int64]struct{})
	chunkSecs := int64(len(d.migBuf)) / blockdev.SectorSize
	for i := 0; i < len(secs); {
		j := i + 1
		for j < len(secs) && secs[j] == secs[j-1]+1 && int64(j-i) < chunkSecs {
			j++
		}
		lo := secs[i]
		n := int((secs[j-1] - lo + 1) * blockdev.SectorSize)
		devByte := lo * blockdev.SectorSize
		srcOff := mv.SrcAreaOff + (lo-mv.Start)*blockdev.SectorSize
		dstByte := dstOff + (lo-mv.Start)*blockdev.SectorSize
		if err := d.copyChunk(p, mv, srcOff, dstByte, devByte, n); err != nil {
			return err
		}
		d.emet.dirtyResent.Add(int64(j - i))
		d.emet.migBytes.Add(int64(n))
		i = j
	}
	return nil
}

// requeueRange retargets still-pending foreground requests inside the
// committed range onto the destination. Sent requests are canceled and
// reissued under fresh handles in handle order — exactly the failover
// discipline — so a late source reply drops on the pending-miss path.
// Queued (unsent) requests are retargeted in place; the sender reads the
// link at issue time. Requests straddling the range boundary stay on the
// source: its copy is complete as of the freeze and is never erased, so
// such reads remain correct.
func (d *Device) requeueRange(mv placement.Move) {
	dst := d.links[mv.To]
	all := make([]uint64, 0, len(d.pending))
	for h := range d.pending {
		all = append(all, h)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sentH, queuedH []uint64
	for _, h := range all {
		ph := d.pending[h]
		if ph.mig || ph.link == dst {
			continue
		}
		lo := ph.devByte / blockdev.SectorSize
		hi := (ph.devByte + int64(ph.length) + blockdev.SectorSize - 1) / blockdev.SectorSize
		if lo < mv.Start || hi > mv.Start+mv.Sectors {
			continue
		}
		if ph.sent {
			sentH = append(sentH, h)
		} else {
			queuedH = append(queuedH, h)
		}
	}
	retarget := func(ph *phys) {
		segs := d.dir.Split(ph.devByte, ph.length)
		ph.link = d.links[segs[0].Server]
		ph.offset = segs[0].Offset
	}
	for _, h := range queuedH {
		retarget(d.pending[h])
	}
	for _, h := range sentH {
		ph := d.pending[h]
		delete(d.pending, h)
		ph.link.credits.Release(1)
		retarget(ph)
		d.nextH++
		ph.handle = d.nextH
		ph.sent = false
		ph.timedOut = false
		ph.enqAt = d.env.Now()
		d.pending[ph.handle] = ph
		d.sendQ.TrySend(ph)
		d.emet.requeued.Inc()
	}
	if len(sentH) > 0 {
		d.wdQ.WakeAll()
	}
}

// migXfer issues one migration transfer through the regular sender /
// credit / receiver machinery and waits for it. The payload rides the
// long-lived migration MR (hybrid-style: the server RDMAs against it
// directly), so the pool is never touched and foreground allocation is
// unaffected.
func (d *Device) migXfer(p *sim.Proc, link *serverLink, write bool, areaOff, devByte int64, n int) error {
	if d.failed {
		return ErrDeviceFailed
	}
	if link.down {
		return ErrServerLost
	}
	r := blockdev.NewRequest(d.env, write, devByte/blockdev.SectorSize, d.migBuf[:n])
	parent := &parentReq{req: r, remain: 1}
	if !write {
		parent.readBuf = make([]byte, n)
	}
	ph := &phys{
		parent:   parent,
		link:     link,
		write:    write,
		offset:   areaOff,
		off:      0,
		length:   n,
		poolOff:  -1,
		mr:       d.migMR,
		devByte:  devByte,
		mig:      true,
		flowID:   r.ID(),
		blkAt:    r.QueuedAt(),
		submitAt: p.Now(),
	}
	d.nextH++
	ph.handle = d.nextH
	ph.enqAt = p.Now()
	d.pending[ph.handle] = ph
	d.sendQ.Send(p, ph)
	d.wdQ.WakeAll()
	return r.Wait(p)
}

// pace throttles the chunk loop to the configured background bandwidth:
// each chunk's wall time is stretched to at least n bytes at
// MigrationMBps, yielding the difference to foreground traffic.
func (d *Device) pace(p *sim.Proc, n int, t0 sim.Time) {
	if d.cfg.MigrationMBps <= 0 {
		return
	}
	want := sim.Duration(float64(n) / (d.cfg.MigrationMBps * 1e6) * float64(sim.Second))
	if spent := p.Now().Sub(t0); want > spent {
		p.Sleep(want - spent)
	}
}
