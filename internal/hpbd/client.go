package hpbd

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"hpbd/internal/blockdev"
	"hpbd/internal/ib"
	"hpbd/internal/netmodel"
	"hpbd/internal/placement"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
	"hpbd/internal/wire"
)

// ErrDeviceFailed reports that the device lost a server connection and
// can no longer serve I/O.
var ErrDeviceFailed = errors.New("hpbd: device failed (server connection lost)")

// ErrRemote reports a non-OK reply status from a server.
var ErrRemote = errors.New("hpbd: remote error")

// ErrServerLost reports that a request's server connection died, retries
// were exhausted or impossible, and no fallback driver could absorb the
// request. Unlike ErrDeviceFailed it is per-request: the device keeps
// serving ranges whose servers survive.
var ErrServerLost = errors.New("hpbd: server lost")

// ClientConfig parameterizes the client block device driver.
type ClientConfig struct {
	// PoolBytes is the registration buffer pool size (paper default 1 MB,
	// initialized and registered at device load time).
	PoolBytes int
	// Credits is the per-server water-mark: the maximum outstanding
	// requests to one server (bounded by the server's pre-posted receive
	// buffers, §4.2.4).
	Credits int
	// Host carries wakeup costs.
	Host netmodel.HostModel
	// Telemetry, if non-nil, is the registry the driver reports into; nil
	// gives the device a private registry so Stats() always works.
	Telemetry *telemetry.Registry

	// HybridDataPath enables the adaptive copy/register data path:
	// requests of HybridThresholdBytes or more skip the pool and register
	// their payload on the fly through an MR reuse cache, while smaller
	// requests keep the paper's copy-into-pool path. Off by default (the
	// paper copies always).
	HybridDataPath bool
	// HybridThresholdBytes is the hybrid cutover size; zero means the
	// netmodel Fig. 3 crossover (~127 KB).
	HybridThresholdBytes int
	// MRCacheEntries bounds the hybrid path's MR reuse cache (zero: 8).
	MRCacheEntries int
	// DoorbellBatch, when > 1, makes the sender drain up to this many
	// queued requests and post each server's share as one chained work
	// request list (a single doorbell charge instead of per-WQE). Values
	// above Credits are clamped: a chain longer than the credit window
	// would wait on replies it has not posted. <= 1 keeps the paper's
	// one-post-per-request behavior.
	DoorbellBatch int
	// ODP switches the large-request MR path from pinned registrations to
	// on-demand-paging regions (ib.RegisterODP): registration is ~free and
	// the first WR through each page window pays a fault instead, so a
	// cold buffer costs less than a pinned registration and a warm one
	// costs nothing. Takes effect when the device has an MR path (
	// HybridDataPath or MergeWindow); off by default.
	ODP bool
	// MergeWindow, when > 1, makes the sender coalesce up to this many
	// sector-contiguous same-server queued requests into one large work
	// request (RDMAbox's merged I/O) before credit accounting and doorbell
	// batching: one credit, one WQE, one server-side op for the whole run,
	// with completion fanned back out per constituent handle. <= 1 (the
	// default) keeps the paper's one-WR-per-request behavior.
	MergeWindow int
	// MergeBytes caps a merged work request's payload (zero: the 128 KB
	// block-layer bound). It must not exceed the servers' StagingBytes —
	// a merged WR is one server op against one staging buffer.
	MergeBytes int
	// AdaptiveCrossover replaces the static hybrid threshold with a
	// feedback controller: every CrossoverWindow completed requests it
	// re-derives the copy/register crossover from the observed MR-cache
	// reuse rate and nudges the threshold toward it, stepping further
	// down when pool-wait time dominates the per-stage breakdown.
	// Requires HybridDataPath and the request-lifecycle analyzer
	// (FlightRecEntries >= 0). Off by default.
	AdaptiveCrossover bool
	// CrossoverWindow is the controller's observation window in completed
	// requests (zero: 64).
	CrossoverWindow int

	// FlightRecEntries sizes the always-on flight recorder ring of recent
	// request records (zero-alloc in steady state). 0 selects the default
	// (telemetry.DefaultFlightRecEntries); negative disables the
	// request-lifecycle analyzer entirely.
	FlightRecEntries int
	// FlightDumpWriter, if non-nil, arms automatic flight-recorder dumps:
	// a dump is written here when the device fails or a request exceeds
	// RequestTimeout.
	FlightDumpWriter io.Writer
	// RequestTimeout, when > 0, arms a watchdog process that flags
	// requests outstanding longer than this, counts them in
	// hpbd.timeouts, and dumps the flight recorder. Zero (the default)
	// spawns no watchdog, leaving the simulation schedule untouched.
	// With recovery enabled (MaxRetries/Fallback) the watchdog also
	// cancels each overdue request and re-routes it (retry or fallback),
	// so a wedged server cannot wedge the device forever.
	RequestTimeout sim.Duration

	// MaxRetries enables the recovery path: a physical request that
	// fails transiently (send error) or times out is retried up to this
	// many times with exponential backoff before degrading. Zero (the
	// default) keeps the paper's fail-stop behavior: any completion
	// error fails the whole device.
	MaxRetries int
	// RetryBackoff is the first retry's delay; attempt k waits
	// RetryBackoff << (k-1). Zero defaults to 50us when MaxRetries > 0.
	RetryBackoff sim.Duration
	// Fallback, if non-nil, is a last-resort block driver (the paper's
	// local-disk swap device): requests whose server is gone and whose
	// retries are exhausted are absorbed here instead of failing.
	// Setting Fallback also enables the recovery path.
	Fallback blockdev.Driver

	// Tenant is the identity this device presents when attaching to
	// servers (the area ledger owner; under server-side tenancy it must
	// appear in the servers' QoS spec). When the device also has a
	// Fallback driver, a reclaimer process demotes the tenant's coldest
	// server pages to the fallback whenever a quota refusal kicks it.
	// Empty (the default) attaches anonymously, exactly as before.
	Tenant string

	// Elastic enables dynamic membership: AddServerLive, DrainServer and
	// RemoveServer become available, and the first membership operation
	// switches the sector→server mapping from the static blocked layout
	// to the placement directory (until then the device behaves — and
	// reports — bit-identically to a static one). Requires the blocked
	// layout (StripeBytes must be 0).
	Elastic bool
	// MigrationChunkBytes is the live-migration copy granularity (zero:
	// 64 KB; clamped to the 128 KB server staging bound).
	MigrationChunkBytes int
	// MigrationMBps caps the migration engine's background copy rate in
	// MB/s: each chunk is stretched to at least its fair-share duration,
	// bounding migration/foreground interference. Zero leaves migration
	// unpaced (throttled only by credits and fabric contention).
	MigrationMBps float64

	// The remaining fields flip the paper's design choices for ablation
	// studies; all default to the paper's design (false/zero).

	// RegisterOnTheFly pays per-request registration/deregistration
	// instead of copying into the pre-registered pool (the alternative
	// §4.1 rejects using Figure 3).
	RegisterOnTheFly bool
	// PollingReceiver makes the receiver busy-poll the CQ instead of
	// sleeping on solicited completion events.
	PollingReceiver bool
	// StripeBytes, if non-zero, stripes the device across servers in
	// round-robin chunks instead of the paper's blocked distribution
	// (§4.2.5 argues striping does not pay at a 128 KB request bound).
	StripeBytes int64
	// FirstFitPool selects the paper's original first-fit free-list
	// allocator instead of the size-classed default (ablation baseline).
	FirstFitPool bool
}

// DefaultClientConfig returns the paper's client configuration.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		PoolBytes: 1 << 20,
		Credits:   16,
		Host:      netmodel.DefaultHost(),
	}
}

// DeviceStats aggregates client driver activity. It is a snapshot view
// assembled from the telemetry registry ("hpbd." counters); Stats() is the
// compatibility accessor.
type DeviceStats struct {
	PhysReqs     int64 // physical requests sent to servers
	Replies      int64
	BytesWritten int64
	BytesRead    int64
	Splits       int64 // block requests split across servers
	CreditStalls int64 // sends that waited on flow-control credits
	RemoteErrors int64
	Doorbells    int64 // send-side doorbells rung (== PhysReqs unless batching)
	RecvWakeups  int64 // receiver sleep->wakeup transitions
	HybridLarge  int64 // requests routed to the register-on-the-fly fast path
	Timeouts     int64 // requests the watchdog flagged as overdue
	Retries      int64 // physical requests re-sent by the recovery path
	LinkFailures int64 // server connections declared dead
	Fallbacks    int64 // requests absorbed by the fallback driver
}

// deviceMetrics are the driver's registry handles, resolved once at
// device creation so the hot path never touches the name maps.
type deviceMetrics struct {
	physReqs     *telemetry.Counter
	replies      *telemetry.Counter
	bytesWritten *telemetry.Counter
	bytesRead    *telemetry.Counter
	splits       *telemetry.Counter
	creditStalls *telemetry.Counter
	remoteErrors *telemetry.Counter
	doorbells    *telemetry.Counter
	recvWakeups  *telemetry.Counter
	hybridLarge  *telemetry.Counter
	timeouts     *telemetry.Counter
	queueWait    *telemetry.Histogram // Submit enqueue -> sender dequeue
	opWrite      *telemetry.Histogram // send posted -> reply handled
	opRead       *telemetry.Histogram
}

// recoveryMetrics are the recovery path's registry handles. They are
// resolved only when recovery is enabled so that a default-configured
// device registers no extra metrics and its Summary() output stays
// byte-identical to the fail-stop driver (the handles are nil-safe).
type recoveryMetrics struct {
	retries   *telemetry.Counter
	linkFails *telemetry.Counter
	fallbacks *telemetry.Counter
	cancels   *telemetry.Counter
}

func newRecoveryMetrics(reg *telemetry.Registry) recoveryMetrics {
	return recoveryMetrics{
		retries:   reg.Counter("hpbd.retries"),
		linkFails: reg.Counter("hpbd.link_failures"),
		fallbacks: reg.Counter("hpbd.fallbacks"),
		cancels:   reg.Counter("hpbd.timeout_cancels"),
	}
}

// mergeMetrics are the WR-merging path's registry handles, resolved only
// when MergeWindow > 1 so a non-merging device registers no extra series
// (the handles are nil-safe).
type mergeMetrics struct {
	reqs  *telemetry.Counter   // constituent requests absorbed into merged WRs
	wrs   *telemetry.Counter   // merged WRs posted
	bytes *telemetry.Counter   // payload bytes carried by merged WRs
	run   *telemetry.Histogram // merged run length (requests per WR)
}

func newMergeMetrics(reg *telemetry.Registry) mergeMetrics {
	return mergeMetrics{
		reqs:  reg.Counter("hpbd.merge.reqs"),
		wrs:   reg.Counter("hpbd.merge.wrs"),
		bytes: reg.Counter("hpbd.merge.bytes"),
		run:   reg.Histogram("hpbd.merge.run"),
	}
}

func newDeviceMetrics(reg *telemetry.Registry) deviceMetrics {
	return deviceMetrics{
		physReqs:     reg.Counter("hpbd.phys_reqs"),
		replies:      reg.Counter("hpbd.replies"),
		bytesWritten: reg.Counter("hpbd.bytes_written"),
		bytesRead:    reg.Counter("hpbd.bytes_read"),
		splits:       reg.Counter("hpbd.splits"),
		creditStalls: reg.Counter("hpbd.credit_stalls"),
		remoteErrors: reg.Counter("hpbd.remote_errors"),
		doorbells:    reg.Counter("hpbd.doorbells"),
		recvWakeups:  reg.Counter("hpbd.recv.wakeups"),
		hybridLarge:  reg.Counter("hpbd.hybrid.large_reqs"),
		timeouts:     reg.Counter("hpbd.timeouts"),
		queueWait:    reg.Histogram("hpbd.queue.wait"),
		opWrite:      reg.Histogram("hpbd.op.write"),
		opRead:       reg.Histogram("hpbd.op.read"),
	}
}

// serverLink is the client-side state for one memory server connection.
type serverLink struct {
	srv       *Server
	qp        *ib.QP
	srvQP     *ib.QP // server-side QP (keys the server's per-conn tenancy state)
	credits   *sim.Semaphore
	startByte int64
	size      int64
	reqMR     *ib.MR // Credits control-message staging slots
	recvMR    *ib.MR // Credits reply buffers
	slot      int    // next reqMR slot (round-robin)
	down      bool   // the recovery path declared this server dead
	removed   bool   // decommissioned by RemoveServer (drained, QP closed)
}

// parentReq tracks one block-layer request across its physical requests.
type parentReq struct {
	req     *blockdev.Request
	readBuf []byte // gather buffer for reads
	wdata   []byte // write payload, held while staging is merge-deferred
	remain  int
	err     error
}

// phys is one physical request to one server.
type phys struct {
	parent  *parentReq
	link    *serverLink
	write   bool
	offset  int64 // byte offset within the server area
	off     int   // byte offset within the parent request
	length  int
	poolOff int    // pool allocation, -1 on the hybrid path
	mr      *ib.MR // hybrid path: per-request registered payload buffer
	handle  uint64
	sent    bool
	devByte int64 // absolute device byte offset (fallback addressing)
	attempt int   // recovery re-sends already performed

	lazy bool // staging deferred to the sender's merge window
	// subs marks a merge carrier: the sector-contiguous requests riding
	// this WR, in device order. A carrier has no parent of its own —
	// completion (success or any error path) fans out to the subs, each
	// keeping its own handle, lifecycle record, and flow id.
	subs []*phys

	mig    bool      // a migration engine transfer (shared staging MR)
	mtrack *migState // in-range foreground write tracked by a live move

	timedOut bool     // the watchdog already flagged this request
	flowID   uint64   // block-layer request id, threads the causal flow
	blkAt    sim.Time // block-layer submission (parent request queued)
	submitAt sim.Time // driver began preparing this physical request
	enqAt    sim.Time // handed to the sender queue
	deqAt    sim.Time // sender dequeued it
	creditAt sim.Time // flow-control credit held
	sentAt   sim.Time // SEND posted to the fabric
}

// Device is the HPBD client: a block device driver (blockdev.Driver) that
// serves swap I/O from remote memory servers.
type Device struct {
	env  *sim.Env
	name string
	cfg  ClientConfig
	mem  netmodel.MemModel

	hca    *ib.HCA
	cq     *ib.CQ // shared send+recv CQ across all server QPs (§5)
	pool   *BufferPool
	poolMR *ib.MR

	links   []*serverLink
	byQP    map[*ib.QP]*serverLink
	areas   []placement.Area // legacy-layout view of the links
	total   int64
	sendQ   *sim.Chan[*phys]
	pending map[uint64]*phys
	nextH   uint64
	sleepQ  *sim.WaitQueue
	// wdQ parks the watchdog while no requests are in flight.
	wdQ *sim.WaitQueue
	// reclaimQ parks the tenancy reclaimer until a quota refusal kicks it
	// (nil unless cfg.Tenant and cfg.Fallback are both set).
	reclaimQ *sim.WaitQueue
	failed   bool
	tel      *telemetry.Registry
	met      deviceMetrics
	rmet     recoveryMetrics
	tracer   *telemetry.Tracer
	lc       *telemetry.Lifecycle

	downLinks int            // count of links the recovery path failed
	fbHeld    map[int64]bool // sectors whose authoritative copy is on Fallback

	hybridThr     int      // requests >= this register on the fly (0: hybrid off)
	mrc           *mrCache // nil unless HybridDataPath or MergeWindow
	doorbellBatch int      // effective batch limit (clamped to Credits)
	mergeWin      int      // sender merge window in requests (<= 1: off)
	mergeBytes    int      // merged WR payload cap
	mmet          mergeMetrics
	xover         *crossoverCtrl // adaptive threshold controller, nil unless enabled

	// Elastic-mode state (see elastic.go). All nil/zero until the first
	// membership operation, so a static topology — even with
	// cfg.Elastic set — runs the legacy layout byte-identically.
	dir      *placement.Directory
	memberMu *sim.Mutex // serializes membership operations
	mig      *migState  // the in-progress move, nil when idle
	migMR    *ib.MR     // long-lived migration staging MR
	migBuf   []byte     // host-side chunk scratch buffer
	emet     elasticMetrics
}

// NewDevice creates an HPBD client on the fabric. Connect servers with
// ConnectServer before first I/O.
func NewDevice(f *ib.Fabric, name string, cfg ClientConfig) *Device {
	env := f.Env()
	hca := f.NewHCA(name)
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.New(env)
	}
	pool := NewBufferPool(env, cfg.PoolBytes)
	if cfg.FirstFitPool {
		pool = NewFirstFitPool(env, cfg.PoolBytes)
	}
	d := &Device{
		tel:     tel,
		met:     newDeviceMetrics(tel),
		tracer:  tel.Tracer(),
		env:     env,
		name:    name,
		cfg:     cfg,
		mem:     f.Config().Mem,
		hca:     hca,
		cq:      hca.CreateCQ(name + "-cq"),
		pool:    pool,
		byQP:    make(map[*ib.QP]*serverLink),
		sendQ:   sim.NewChan[*phys](env, 0),
		pending: make(map[uint64]*phys),
		sleepQ:  sim.NewWaitQueue(env),
		wdQ:     sim.NewWaitQueue(env),
	}
	d.doorbellBatch = cfg.DoorbellBatch
	if d.doorbellBatch > cfg.Credits {
		d.doorbellBatch = cfg.Credits
	}
	if cfg.Elastic {
		d.memberMu = sim.NewMutex(env)
	}
	if d.recovery() {
		d.rmet = newRecoveryMetrics(tel)
		if d.cfg.Fallback != nil {
			d.fbHeld = make(map[int64]bool)
		}
	}
	if cfg.HybridDataPath {
		d.hybridThr = cfg.HybridThresholdBytes
		if d.hybridThr <= 0 {
			d.hybridThr = netmodel.Fig3CrossoverBytes
		}
		entries := cfg.MRCacheEntries
		if entries <= 0 {
			entries = 8
		}
		d.mrc = newMRCache(hca, entries, tel)
	}
	if cfg.MergeWindow > 1 {
		d.mergeWin = cfg.MergeWindow
		d.mergeBytes = cfg.MergeBytes
		if d.mergeBytes <= 0 {
			d.mergeBytes = blockdev.MaxRequestBytes
		}
		if d.mrc == nil {
			// Merged WRs ride reuse-cached MRs even when the hybrid path
			// is off; a threshold past any request size keeps unmerged
			// singles on the paper's copy-into-pool path.
			entries := cfg.MRCacheEntries
			if entries <= 0 {
				entries = 8
			}
			d.mrc = newMRCache(hca, entries, tel)
			d.hybridThr = int(^uint(0) >> 1)
		}
		d.mmet = newMergeMetrics(tel)
	}
	if cfg.ODP && d.mrc != nil {
		d.mrc.odp = true
	}
	if cfg.AdaptiveCrossover && cfg.HybridDataPath && cfg.FlightRecEntries >= 0 {
		d.xover = newCrossoverCtrl(d, cfg.CrossoverWindow, tel)
	}
	// The request-lifecycle analyzer and its flight recorder are always on
	// (cheap: timestamp reads and a ring copy per request, never a sleep)
	// unless explicitly disabled.
	if cfg.FlightRecEntries >= 0 {
		d.lc = tel.EnableLifecycle(cfg.FlightRecEntries)
		if cfg.FlightDumpWriter != nil {
			d.lc.Flight().SetDumpWriter(cfg.FlightDumpWriter)
		}
	}
	// The pool is registered once at device load time — the design point
	// the paper's Figure 3 motivates.
	d.pool.SetTelemetry(tel)
	d.poolMR = hca.RegisterMRAtSetup(make([]byte, cfg.PoolBytes))
	d.cq.SetEventHandler(func() { d.sleepQ.WakeAll() })
	env.Go(name+"-sender", d.sender)
	env.Go(name+"-receiver", d.receiver)
	if cfg.RequestTimeout > 0 {
		env.Go(name+"-watchdog", d.watchdog)
	}
	if cfg.Tenant != "" && cfg.Fallback != nil {
		d.reclaimQ = sim.NewWaitQueue(env)
		env.Go(name+"-reclaim", d.reclaimer)
	}
	return d
}

// Name implements blockdev.Driver.
func (d *Device) Name() string { return d.name }

// Sectors implements blockdev.Driver: the device size is the sum of the
// areas exported by the connected servers.
func (d *Device) Sectors() int64 { return d.total / blockdev.SectorSize }

// Stats returns a snapshot of the driver statistics, read back from the
// telemetry registry.
func (d *Device) Stats() DeviceStats {
	return DeviceStats{
		PhysReqs:     d.met.physReqs.Value(),
		Replies:      d.met.replies.Value(),
		BytesWritten: d.met.bytesWritten.Value(),
		BytesRead:    d.met.bytesRead.Value(),
		Splits:       d.met.splits.Value(),
		CreditStalls: d.met.creditStalls.Value(),
		RemoteErrors: d.met.remoteErrors.Value(),
		Doorbells:    d.met.doorbells.Value(),
		RecvWakeups:  d.met.recvWakeups.Value(),
		HybridLarge:  d.met.hybridLarge.Value(),
		Timeouts:     d.met.timeouts.Value(),
		Retries:      d.rmet.retries.Value(),
		LinkFailures: d.rmet.linkFails.Value(),
		Fallbacks:    d.rmet.fallbacks.Value(),
	}
}

// recovery reports whether the device runs the recovery path (retries,
// per-link failover, fallback) instead of the paper's fail-stop design.
func (d *Device) recovery() bool {
	return d.cfg.MaxRetries > 0 || d.cfg.Fallback != nil
}

// DownLinks returns the number of server connections the recovery path
// has declared dead.
func (d *Device) DownLinks() int { return d.downLinks }

// Lifecycle returns the device's request-lifecycle analyzer (nil when
// disabled via FlightRecEntries < 0).
func (d *Device) Lifecycle() *telemetry.Lifecycle { return d.lc }

// Telemetry returns the registry the device reports into.
func (d *Device) Telemetry() *telemetry.Registry { return d.tel }

// Pool exposes the registration buffer pool (for stats and tests).
func (d *Device) Pool() *BufferPool { return d.pool }

// HybridThreshold returns the current copy/register cutover in bytes —
// static configuration, or the adaptive controller's latest output.
func (d *Device) HybridThreshold() int { return d.hybridThr }

// InvalidateODP implements the faultsim ODPHost capability: it drops
// every resident on-demand-paging window on the client HCA, forcing the
// next WR through each ODP region to re-fault. Returns the number of
// windows invalidated (zero when the device holds no ODP regions).
func (d *Device) InvalidateODP() int { return d.hca.InvalidateODP() }

// Links returns the number of connected servers.
func (d *Device) Links() int { return len(d.links) }

// Failed reports whether the device has lost a server.
func (d *Device) Failed() bool { return d.failed }

// ConnectServer attaches areaBytes of srv's memory as the next contiguous
// range of this device (the paper's blocked, non-striped distribution).
func (d *Device) ConnectServer(srv *Server, areaBytes int64) error {
	if areaBytes <= 0 || areaBytes%blockdev.SectorSize != 0 {
		return fmt.Errorf("hpbd: invalid area size %d", areaBytes)
	}
	qp := d.hca.CreateQP(d.cq, d.cq)
	srvQP, _, err := srv.attach(qp, areaBytes, d.cfg.Tenant)
	if err != nil {
		return err
	}
	link := &serverLink{
		srv:       srv,
		qp:        qp,
		srvQP:     srvQP,
		credits:   sim.NewSemaphore(d.env, d.cfg.Credits),
		startByte: d.total,
		size:      areaBytes,
		reqMR:     d.hca.RegisterMRAtSetup(make([]byte, d.cfg.Credits*wire.RequestSize)),
		recvMR:    d.hca.RegisterMRAtSetup(make([]byte, d.cfg.Credits*wire.ReplySize)),
	}
	if d.reclaimQ != nil {
		srv.setReclaimKick(srvQP, d.reclaimQ.WakeAll)
	}
	for i := 0; i < d.cfg.Credits; i++ {
		if err := qp.PostRecv(ib.RecvWR{
			ID:    uint64(i),
			Local: ib.Segment{MR: link.recvMR, Off: i * wire.ReplySize, Len: wire.ReplySize},
		}); err != nil {
			return err
		}
	}
	d.links = append(d.links, link)
	d.byQP[qp] = link
	d.areas = append(d.areas, placement.Area{Start: d.total, Size: areaBytes})
	d.total += areaBytes
	return nil
}

// split maps a contiguous byte range of the device onto server areas:
// through the placement directory once the device has gone elastic,
// otherwise via the legacy blocked policy (or striped under ablation).
// The range math itself lives in internal/placement.
func (d *Device) split(start int64, n int) []placement.Segment {
	if d.dir != nil {
		return d.dir.Split(start, n)
	}
	if d.cfg.StripeBytes > 0 {
		return placement.Striped(d.areas, d.cfg.StripeBytes, start, n)
	}
	return placement.Blocked(d.areas, start, n)
}

// Submit implements blockdev.Driver: it splits the request across servers,
// copies write data into the registration pool (blocking on the pool's
// allocation wait queue under pressure), and hands the physical requests
// to the sender thread. Completion is signalled by the receiver thread.
func (d *Device) Submit(p *sim.Proc, r *blockdev.Request) {
	if d.failed {
		r.Complete(ErrDeviceFailed)
		return
	}
	if d.mig != nil && r.Write {
		// A frozen migrating range parks in-range writes until cutover.
		d.migGate(p, r)
	}
	start := r.Sector * blockdev.SectorSize
	n := r.Bytes()
	segs := d.split(start, n)
	if segs == nil {
		r.Complete(blockdev.ErrOutOfRange)
		return
	}
	if len(segs) > 1 {
		d.met.splits.Inc()
	}
	parent := &parentReq{req: r, remain: len(segs)}
	var wdata []byte
	if r.Write {
		wdata = r.Data()
		if d.mergeWin > 1 {
			parent.wdata = wdata // staging is deferred to the merge window
		}
	} else {
		parent.readBuf = make([]byte, n)
	}
	for _, sg := range segs {
		link := d.links[sg.Server]
		ph := &phys{
			parent:   parent,
			link:     link,
			write:    r.Write,
			offset:   sg.Offset,
			off:      sg.Off,
			length:   sg.Length,
			devByte:  sg.DevByte,
			flowID:   r.ID(),
			blkAt:    r.QueuedAt(),
			submitAt: p.Now(),
		}
		if link.down {
			// The server backing this range is gone: skip the pool and
			// the wire entirely and degrade immediately (fallback driver
			// or per-request error). poolOff -1 marks "no payload held".
			ph.poolOff = -1
			var data []byte
			if r.Write {
				data = wdata[sg.Off : sg.Off+sg.Length]
			}
			d.routeDegraded(ph, data)
			continue
		}
		if !r.Write && d.fallbackCovers(sg.DevByte, sg.Length) {
			// The authoritative copy lives on the fallback: a write was
			// absorbed there while the server was unreachable or wedged,
			// so the server's copy (if any) is stale even though the
			// link is up. Served from the fallback until a fresh server
			// write clears the hold. Swap I/O is page-granular, so a
			// read either matches an absorbed write's range exactly or
			// not at all — partial coverage does not arise.
			ph.poolOff = -1
			d.routeDegraded(ph, nil)
			continue
		}
		if d.mergeWin > 1 {
			// Merging defers staging to the sender: only there is it known
			// whether this request rides its own WR (pool or MR path, via
			// stageOne) or a merged carrier's MR. The parent holds the
			// write payload until then.
			ph.poolOff = -1
			ph.lazy = true
		} else if d.mrc != nil && sg.Length >= d.hybridThr {
			// Hybrid fast path: at or above the Fig. 3 crossover the
			// request skips the pool and the server RDMAs against a
			// per-request MR from the reuse cache. A cache miss charges
			// the registration cost here; a hit charges nothing — the
			// payload pages are (in the modeled driver) registered in
			// place, so no copy is charged either.
			ph.mr = d.mrc.get(p, sg.Length)
			ph.poolOff = -1
			if r.Write {
				copy(ph.mr.Buf[:sg.Length], wdata[sg.Off:sg.Off+sg.Length])
			}
			d.met.hybridLarge.Inc()
		} else {
			poolOff, err := d.pool.Alloc(p, sg.Length)
			if err != nil {
				d.finishPhys(&phys{parent: parent}, err)
				continue
			}
			ph.poolOff = poolOff
			if d.cfg.RegisterOnTheFly {
				// Ablation: pay the registration cost the pool design avoids
				// (the data still flows through pool space so the RDMA path
				// is unchanged; only the cost model differs).
				p.Sleep(d.mem.Register(sg.Length))
				if r.Write {
					copy(d.poolMR.Buf[poolOff:], wdata[sg.Off:sg.Off+sg.Length])
				}
			} else if r.Write {
				// The copy that replaces on-the-fly registration (§4.2.2).
				p.Sleep(d.mem.Memcpy(sg.Length))
				copy(d.poolMR.Buf[poolOff:], wdata[sg.Off:sg.Off+sg.Length])
			}
		}
		if m := d.mig; m != nil && r.Write && m.overlaps(sg.DevByte, sg.Length) {
			// A live move covers this write: its completion re-dirties
			// the copied sectors (write-forwarding) and cutover waits
			// for it to land.
			ph.mtrack = m
			m.inflight++
		}
		d.nextH++
		ph.handle = d.nextH
		ph.enqAt = p.Now()
		d.pending[ph.handle] = ph
		d.sendQ.Send(p, ph)
	}
	// An armed watchdog parks while nothing is in flight; wake it now
	// that pending is (possibly) non-empty.
	d.wdQ.WakeAll()
}

// releasePayload returns a request's payload buffer to its source: the MR
// reuse cache for hybrid requests, the registration pool otherwise. p may
// be nil on failure paths (a cache eviction then skips the deregistration
// charge — there is no process to bill).
func (d *Device) releasePayload(p *sim.Proc, ph *phys) {
	if ph.mig {
		return // the migration staging MR is device-owned and long-lived
	}
	if ph.mr != nil {
		d.mrc.put(p, ph.mr)
		ph.mr = nil
		return
	}
	if ph.poolOff < 0 {
		return // merge-deferred staging never happened: nothing held
	}
	d.pool.Free(ph.poolOff)
}

// marshalReq encodes ph's control message into the link's next staging
// slot and returns the segment to post. Slots rotate round-robin over the
// Credits-deep staging MR; the fabric copies the bytes at post time, so a
// slot is reusable as soon as its WR is posted, and the rotation only has
// to keep the slots of one marshalled-but-unposted chain distinct (chain
// length is clamped to Credits).
//
//hpbd:hotpath
func (d *Device) marshalReq(ph *phys) ib.Segment {
	link := ph.link
	typ := wire.ReqRead
	if ph.write {
		typ = wire.ReqWrite
	}
	addr, rkey := uint64(0), uint32(0)
	if ph.mr != nil {
		rkey = ph.mr.RKey // hybrid: server RDMAs against the request's own MR
	} else {
		addr, rkey = uint64(ph.poolOff), d.poolMR.RKey
	}
	slot := link.slot
	link.slot = (link.slot + 1) % d.cfg.Credits
	off := slot * wire.RequestSize
	wire.MarshalRequest(link.reqMR.Buf[off:off+wire.RequestSize], &wire.Request{
		Type:   typ,
		Handle: ph.handle,
		Offset: uint64(ph.offset),
		Length: uint32(ph.length),
		Addr:   addr,
		RKey:   rkey,
	})
	return ib.Segment{MR: link.reqMR, Off: off, Len: wire.RequestSize}
}

// sender is the request-issuing thread: it forwards queued physical
// requests as soon as flow-control credits permit (§4.2.3, §4.2.4). With
// DoorbellBatch > 1 it drains whatever has queued behind the blocking
// receive — a decision keyed on queue state at the current instant, never
// on wall time — and posts each server's share as one chained list.
func (d *Device) sender(p *sim.Proc) {
	for {
		ph, ok := d.sendQ.Recv(p)
		if !ok {
			return
		}
		limit := d.doorbellBatch
		if d.mergeWin > limit {
			limit = d.mergeWin
		}
		if limit <= 1 {
			d.sendOne(p, ph)
			continue
		}
		batch := []*phys{ph}
		for len(batch) < limit {
			next, ok2 := d.sendQ.TryRecv()
			if !ok2 {
				break
			}
			batch = append(batch, next)
		}
		if d.mergeWin > 1 {
			batch = d.mergeBatch(p, batch)
		}
		if d.doorbellBatch <= 1 {
			for _, mph := range batch {
				d.sendOne(p, mph)
			}
			continue
		}
		d.sendChained(p, batch)
	}
}

// mergeBatch coalesces sector-contiguous same-server runs of the drained
// batch into carrier WRs and stages everything else individually. Output
// preserves arrival order (a carrier sits where its first constituent
// did), so merging never reorders the issue stream.
func (d *Device) mergeBatch(p *sim.Proc, batch []*phys) []*phys {
	out := make([]*phys, 0, len(batch))
	for i := 0; i < len(batch); {
		j := d.mergeRun(batch, i)
		if j-i < 2 {
			ph := batch[i]
			if ph.lazy && !d.failed && !ph.link.down {
				if !d.stageOne(p, ph) {
					i = j
					continue // staging failed; the request is settled
				}
			}
			out = append(out, ph)
			i = j
			continue
		}
		out = append(out, d.buildCarrier(p, batch[i:j]))
		i = j
	}
	return out
}

// mergeRun scans the drained batch from i for the longest mergeable run:
// unstaged foreground requests to the same live server, same direction,
// contiguous in both device bytes and server-area offset, bounded by the
// merge window and payload cap. Returns the index one past the run.
//
//hpbd:hotpath
func (d *Device) mergeRun(batch []*phys, i int) int {
	ph := batch[i]
	if d.failed || !ph.lazy || ph.mig || ph.link.down {
		return i + 1
	}
	total := ph.length
	j := i + 1
	for j < len(batch) && j-i < d.mergeWin {
		nx := batch[j]
		if nx.link != ph.link || nx.write != ph.write || !nx.lazy || nx.mig || nx.link.down {
			break
		}
		if nx.devByte != ph.devByte+int64(total) || nx.offset != ph.offset+int64(total) {
			break
		}
		if total+nx.length > d.mergeBytes {
			break
		}
		total += nx.length
		j++
	}
	return j
}

// stageOne gives a merge-deferred request its payload home — the same
// pool-or-MR decision Submit makes when merging is off. Returns false
// when the pool allocation fails (the request is then settled here).
func (d *Device) stageOne(p *sim.Proc, ph *phys) bool {
	ph.lazy = false
	wdata := ph.parent.wdata
	if d.mrc != nil && ph.length >= d.hybridThr {
		ph.mr = d.mrc.get(p, ph.length)
		if ph.write {
			copy(ph.mr.Buf[:ph.length], wdata[ph.off:ph.off+ph.length])
		}
		d.met.hybridLarge.Inc()
		return true
	}
	poolOff, err := d.pool.Alloc(p, ph.length)
	if err != nil {
		if _, pending := d.pending[ph.handle]; pending {
			delete(d.pending, ph.handle)
			d.finishPhys(ph, err)
		}
		return false
	}
	ph.poolOff = poolOff
	if d.cfg.RegisterOnTheFly {
		p.Sleep(d.mem.Register(ph.length))
		if ph.write {
			copy(d.poolMR.Buf[poolOff:], wdata[ph.off:ph.off+ph.length])
		}
	} else if ph.write {
		p.Sleep(d.mem.Memcpy(ph.length))
		copy(d.poolMR.Buf[poolOff:], wdata[ph.off:ph.off+ph.length])
	}
	return true
}

// buildCarrier folds a mergeable run into one carrier WR: one credit,
// one WQE, one reuse-cached MR spanning the whole payload. Write data is
// gathered through the HCA's scatter/gather list (no memcpy charge — the
// point of merged I/O); the constituents leave the pending table and are
// settled exactly once by the carrier's completion fan-out, on every
// path.
func (d *Device) buildCarrier(p *sim.Proc, run []*phys) *phys {
	subs := append([]*phys(nil), run...) // run aliases the batch being rewritten
	first := subs[0]
	total := 0
	for _, s := range subs {
		total += s.length
	}
	c := &phys{
		link:     first.link,
		write:    first.write,
		offset:   first.offset,
		length:   total,
		poolOff:  -1,
		devByte:  first.devByte,
		flowID:   first.flowID,
		blkAt:    first.blkAt,
		submitAt: first.submitAt,
		enqAt:    first.enqAt,
		subs:     subs,
	}
	c.mr = d.mrc.get(p, total)
	if c.write {
		off := 0
		for _, s := range subs {
			copy(c.mr.Buf[off:off+s.length], s.parent.wdata[s.off:s.off+s.length])
			off += s.length
		}
	}
	for _, s := range subs {
		s.lazy = false
		//hpbd:allow handleonce -- subs are settled exactly once via the carrier's finishPhys fan-out
		delete(d.pending, s.handle)
	}
	d.nextH++
	c.handle = d.nextH
	d.pending[c.handle] = c
	d.mmet.reqs.Add(int64(len(subs)))
	d.mmet.wrs.Inc()
	d.mmet.bytes.Add(int64(total))
	d.mmet.run.Observe(sim.Duration(len(subs)))
	return c
}

// sendOne is the paper's per-request issue path: one credit, one WQE, one
// doorbell.
func (d *Device) sendOne(p *sim.Proc, ph *phys) {
	if d.failed {
		if _, pending := d.pending[ph.handle]; pending {
			delete(d.pending, ph.handle)
			d.releasePayload(p, ph)
			d.finishPhys(ph, ErrDeviceFailed)
		}
		return
	}
	if ph.link.down {
		// The link died while this request sat in the send queue.
		if _, pending := d.pending[ph.handle]; pending {
			delete(d.pending, ph.handle)
			d.retryOrRoute(ph)
		}
		return
	}
	ph.deqAt = p.Now()
	d.met.queueWait.Observe(ph.deqAt.Sub(ph.enqAt))
	if !ph.link.credits.TryAcquire(1) {
		d.met.creditStalls.Inc()
		stall := d.tracer.Begin(d.name, "credit-stall")
		ph.link.credits.Acquire(p, 1)
		stall.End()
	}
	ph.creditAt = p.Now()
	if ph.link.down {
		// The link died during the credit stall.
		ph.link.credits.Release(1)
		if _, pending := d.pending[ph.handle]; pending {
			delete(d.pending, ph.handle)
			d.retryOrRoute(ph)
		}
		return
	}
	seg := d.marshalReq(ph)
	// Mark in flight before posting: a failure during the post must
	// not leave the request unaccounted.
	ph.sent = true
	err := ph.link.qp.PostSend(p, ib.SendWR{ID: ph.handle, Op: ib.OpSend, Local: seg, Flow: ph.flowID})
	if err != nil {
		if d.recovery() {
			// A rejected post means the QP is gone; failLink requeues
			// this request (it is sent+pending) with the others.
			d.failLink(ph.link)
			return
		}
		if _, pending := d.pending[ph.handle]; pending {
			delete(d.pending, ph.handle)
			d.releasePayload(p, ph)
			d.finishPhys(ph, err)
		}
		ph.link.credits.Release(1)
		return
	}
	ph.sentAt = p.Now()
	d.markPosted(ph)
	d.met.physReqs.Inc()
	d.met.doorbells.Inc()
}

// markPosted threads the causal flow across the wire: when tracing is on,
// the server half continues the flow under the same id, which it looks up
// by wire handle through the shared-registry link table (the wire format
// itself is frozen — see telemetry.ServerStamp).
func (d *Device) markPosted(ph *phys) {
	if d.tracer == nil {
		return
	}
	d.tracer.FlowStep(d.name, "req", ph.flowID)
	d.lc.LinkFlow(ph.handle, ph.flowID)
}

// sendChained groups a drained batch by server link — links visited in
// connect order, never map order — acquires one credit per request, and
// posts each group as a single chained doorbell.
func (d *Device) sendChained(p *sim.Proc, batch []*phys) {
	live := batch[:0]
	for _, ph := range batch {
		if d.failed {
			if _, pending := d.pending[ph.handle]; pending {
				delete(d.pending, ph.handle)
				d.releasePayload(p, ph)
				d.finishPhys(ph, ErrDeviceFailed)
			}
			continue
		}
		if ph.link.down {
			if _, pending := d.pending[ph.handle]; pending {
				delete(d.pending, ph.handle)
				d.retryOrRoute(ph)
			}
			continue
		}
		ph.deqAt = p.Now()
		d.met.queueWait.Observe(ph.deqAt.Sub(ph.enqAt))
		live = append(live, ph)
	}
	for _, link := range d.links {
		var wrs []ib.SendWR
		var items []*phys
		for _, ph := range live {
			if ph.link != link {
				continue
			}
			if link.down {
				// The link died mid-batch (during an earlier credit stall).
				if _, pending := d.pending[ph.handle]; pending {
					delete(d.pending, ph.handle)
					d.retryOrRoute(ph)
				}
				continue
			}
			// Every acquired credit has an items entry, so the batch post
			// (or its error loop) below always settles it; the analyzer
			// cannot correlate len(items)==0 with "nothing acquired".
			//hpbd:allow creditbalance -- credit rides items; len(items)==0 implies no acquisition
			if !link.credits.TryAcquire(1) {
				d.met.creditStalls.Inc()
				stall := d.tracer.Begin(d.name, "credit-stall")
				//hpbd:allow creditbalance -- credit rides items; len(items)==0 implies no acquisition
				link.credits.Acquire(p, 1)
				stall.End()
			}
			ph.creditAt = p.Now()
			wrs = append(wrs, ib.SendWR{ID: ph.handle, Op: ib.OpSend, Local: d.marshalReq(ph), Flow: ph.flowID})
			ph.sent = true
			items = append(items, ph)
		}
		if len(items) == 0 {
			continue
		}
		err := link.qp.PostSendBatch(p, wrs)
		if err != nil {
			if d.recovery() {
				// The QP is gone; failLink requeues every chained request
				// (each is sent+pending) and releases its credit.
				d.failLink(link)
				continue
			}
			for _, ph := range items {
				if _, pending := d.pending[ph.handle]; pending {
					delete(d.pending, ph.handle)
					d.releasePayload(p, ph)
					d.finishPhys(ph, err)
				}
				link.credits.Release(1)
			}
			continue
		}
		now := p.Now()
		for _, ph := range items {
			ph.sentAt = now
			d.markPosted(ph)
			d.met.physReqs.Inc()
		}
		d.met.doorbells.Inc()
	}
}

// receiver is the event-driven reply thread: it sleeps until a solicited
// completion event fires, then drains every available reply in a burst
// before sleeping again (§4.2.3).
func (d *Device) receiver(p *sim.Proc) {
	for {
		e, ok := d.cq.Poll()
		if !ok {
			if d.cfg.PollingReceiver {
				// Ablation: busy-poll, no event arming or wakeup cost.
				e = d.cq.WaitPoll(p)
			} else {
				d.cq.ReqNotify(true) // solicited replies and errors wake us
				if e2, ok2 := d.cq.Poll(); ok2 {
					e = e2
				} else {
					d.sleepQ.Wait(p)
					p.Sleep(d.cfg.Host.Wakeup)
					// One wakeup serves however many replies the drain
					// loop below finds queued (CQE burst accounting:
					// replies/wakeups is the per-wakeup burst size).
					d.met.recvWakeups.Inc()
					continue
				}
			}
		}
		if e.Status != ib.StatusSuccess {
			d.handleErrorCQE(e)
			continue
		}
		if e.Op != ib.OpRecv {
			continue // send completions: control buffers are reusable
		}
		d.handleReply(p, e)
	}
}

// handleErrorCQE classifies a completion error. Without recovery it is
// the paper's fail-stop design: any error fails the device. With
// recovery, a flushed completion means the peer is gone (fail only that
// link and requeue its in-flight requests) while a transient send error
// (RNR or an injected QP fault — the request never reached the server)
// releases the credit and retries the request with backoff.
func (d *Device) handleErrorCQE(e ib.CQE) {
	link := d.byQP[e.QP]
	if link != nil && link.removed {
		// Closing a decommissioned server's QP flushes its posted
		// receives; those CQEs are expected, not a failure.
		return
	}
	if !d.recovery() {
		// A failed send or flushed receive means a server is gone.
		d.fail()
		return
	}
	if link == nil {
		d.fail()
		return
	}
	if e.Op == ib.OpRecv || e.Status == ib.StatusFlushErr {
		d.failLink(link)
		return
	}
	ph, ok := d.pending[e.WRID]
	if !ok || ph.link != link {
		return // already canceled or rerouted
	}
	delete(d.pending, e.WRID)
	link.credits.Release(1)
	d.retryOrRoute(ph)
}

func (d *Device) handleReply(p *sim.Proc, e ib.CQE) {
	replyAt := p.Now()
	link := d.byQP[e.QP]
	if link == nil {
		return
	}
	if e.Status != ib.StatusSuccess {
		d.fail()
		return
	}
	slot := int(e.WRID)
	rep, err := wire.UnmarshalReply(link.recvMR.Buf[slot*wire.ReplySize : (slot+1)*wire.ReplySize])
	if err != nil {
		d.fail()
		return
	}
	// Repost the reply buffer before releasing the credit so the server
	// can never overrun our receive queue.
	if perr := link.qp.PostRecv(ib.RecvWR{
		ID:    e.WRID,
		Local: ib.Segment{MR: link.recvMR, Off: slot * wire.ReplySize, Len: wire.ReplySize},
	}); perr != nil {
		d.fail()
		return
	}
	ph, ok := d.pending[rep.Handle]
	if !ok {
		return // duplicate or stale
	}
	delete(d.pending, rep.Handle)
	d.met.replies.Inc()

	if rep.Status == wire.StatusRetry && d.recovery() {
		// RNR-style admission pushback: the server refused the request
		// for now (tenant over its memory quota). Back off and retry
		// while reclaim makes room — the payload is still held for the
		// re-send — degrading to the fallback when retries exhaust.
		d.tracer.InstantArgs(d.name, "quota-pushback", map[string]any{"handle": rep.Handle})
		link.credits.Release(1)
		d.retryOrRoute(ph)
		return
	}

	if ph.subs != nil {
		d.applyMerged(p, ph, replyAt, rep.Status, link)
		return
	}

	var ferr error
	if rep.Status != wire.StatusOK {
		d.met.remoteErrors.Inc()
		ferr = fmt.Errorf("%w: %v", ErrRemote, rep.Status)
	} else if !ph.write {
		d.met.opRead.Observe(p.Now().Sub(ph.sentAt))
		if ph.mr != nil {
			// Hybrid path: the server's RDMA WRITE landed in the
			// request's own registered buffer, so there is no copy-out
			// charge (the registration was paid — or amortized away — at
			// submit); the MR goes back to the cache, not a deregister.
			copy(ph.parent.readBuf[ph.off:], ph.mr.Buf[:ph.length])
		} else {
			if d.cfg.RegisterOnTheFly {
				p.Sleep(d.mem.Deregister())
			} else {
				// Copy the RDMA-written data out of the pool into the request.
				p.Sleep(d.mem.Memcpy(ph.length))
			}
			copy(ph.parent.readBuf[ph.off:], d.poolMR.Buf[ph.poolOff:ph.poolOff+ph.length])
		}
		d.met.bytesRead.Add(int64(ph.length))
	} else {
		d.met.opWrite.Observe(p.Now().Sub(ph.sentAt))
		if ph.mr == nil && d.cfg.RegisterOnTheFly {
			p.Sleep(d.mem.Deregister())
		}
		d.met.bytesWritten.Add(int64(ph.length))
		// A server-acknowledged write makes the server copy authoritative
		// again for this range; drop any fallback hold left by an earlier
		// absorbed write. Migration copies are an exception: they move
		// whatever bytes the source holds — stale for held sectors — so
		// the fallback must stay authoritative across the cutover.
		if !ph.mig {
			d.clearFallbackHold(ph.devByte, ph.length)
		}
	}
	if d.tracer != nil {
		name := "read"
		if ph.write {
			name = "write"
		}
		d.tracer.Complete(d.name, name, ph.enqAt, p.Now(), map[string]any{
			"bytes": ph.length, "server": ph.link.srv.Name(),
			"flow": ph.flowID, "handle": ph.handle,
		})
		d.tracer.FlowEnd(d.name, "req", ph.flowID)
	}
	d.recordLifecycle(p, ph, replyAt, ferr)
	d.releasePayload(p, ph)
	link.credits.Release(1)
	d.finishPhys(ph, ferr)
}

// applyMerged completes a carrier WR: the single reply settles every
// constituent. Reads scatter out of the carrier MR into each parent's
// gather buffer (no copy charge — the MR path's zero-copy contract);
// each constituent gets its own lifecycle record and flow end, then the
// fan-out in finishPhys settles the handles.
func (d *Device) applyMerged(p *sim.Proc, ph *phys, replyAt sim.Time, status wire.Status, link *serverLink) {
	var ferr error
	if status != wire.StatusOK {
		d.met.remoteErrors.Inc()
		ferr = fmt.Errorf("%w: %v", ErrRemote, status)
	} else if !ph.write {
		d.met.opRead.Observe(p.Now().Sub(ph.sentAt))
		off := 0
		for _, s := range ph.subs {
			copy(s.parent.readBuf[s.off:s.off+s.length], ph.mr.Buf[off:off+s.length])
			off += s.length
		}
		d.met.bytesRead.Add(int64(ph.length))
	} else {
		d.met.opWrite.Observe(p.Now().Sub(ph.sentAt))
		d.met.bytesWritten.Add(int64(ph.length))
		if !ph.mig {
			d.clearFallbackHold(ph.devByte, ph.length)
		}
	}
	if d.tracer != nil {
		name := "read-merged"
		if ph.write {
			name = "write-merged"
		}
		d.tracer.Complete(d.name, name, ph.enqAt, p.Now(), map[string]any{
			"bytes": ph.length, "server": ph.link.srv.Name(),
			"flow": ph.flowID, "handle": ph.handle, "reqs": len(ph.subs),
		})
		var lastFlow uint64
		for _, s := range ph.subs {
			if s.flowID != lastFlow {
				d.tracer.FlowEnd(d.name, "req", s.flowID)
				lastFlow = s.flowID
			}
		}
	}
	d.recordMergedLifecycle(p, ph, replyAt, ferr)
	d.releasePayload(p, ph)
	link.credits.Release(1)
	d.finishPhys(ph, ferr)
}

// recordMergedLifecycle writes one lifecycle record per constituent of a
// merged WR. Each record partitions the constituent's own [blkAt, now]
// exactly: the early stages use its private timestamps, while the shared
// flight (credit -> send -> rdma/server copy -> reply -> drain) comes
// from the carrier's clock and single server stamp — the fan-in point is
// the carrier's dequeue.
func (d *Device) recordMergedLifecycle(p *sim.Proc, ph *phys, replyAt sim.Time, ferr error) {
	if d.lc == nil {
		return
	}
	now := p.Now()
	flightStart := ph.creditAt
	st, stOK := d.lc.TakeServerStamp(ph.handle) // carrier stamp: take once, split for all
	if stOK && !(st.Start >= flightStart && st.Reply >= st.Start && replyAt >= st.Reply) {
		stOK = false
	}
	for _, s := range ph.subs {
		rec := telemetry.ReqRecord{
			ID:      s.handle,
			Flow:    s.flowID,
			Write:   s.write,
			Err:     ferr != nil,
			Bytes:   s.length,
			Server:  ph.link.srv.Name(),
			Start:   s.blkAt,
			End:     now,
			Retries: retryCount(ph.attempt),
		}
		rec.Stages[telemetry.StageQueue] = s.submitAt.Sub(s.blkAt) + ph.deqAt.Sub(s.enqAt)
		rec.Stages[telemetry.StagePoolWait] = s.enqAt.Sub(s.submitAt)
		rec.Stages[telemetry.StageCreditStall] = ph.creditAt.Sub(ph.deqAt)
		if stOK {
			srvCopy := st.Copy
			if srvCopy > st.Reply.Sub(st.Start) {
				srvCopy = st.Reply.Sub(st.Start)
			}
			rec.Stages[telemetry.StageSend] = st.Start.Sub(flightStart)
			rec.Stages[telemetry.StageServerCopy] = srvCopy
			rec.Stages[telemetry.StageRDMA] = st.Reply.Sub(st.Start) - srvCopy
			rec.Stages[telemetry.StageReply] = replyAt.Sub(st.Reply)
		} else {
			rec.Stages[telemetry.StageSend] = ph.sentAt.Sub(flightStart)
			rec.Stages[telemetry.StageReply] = replyAt.Sub(ph.sentAt)
		}
		rec.Stages[telemetry.StageDrain] = now.Sub(replyAt)
		d.lc.Record(&rec)
		if d.xover != nil {
			d.xover.observe(&rec)
		}
	}
}

// recordLifecycle attributes the completed request's end-to-end latency to
// the critical-path stages. The stages partition [blkAt, now] exactly by
// construction: every boundary is a captured timestamp, and the server's
// interior split (send/rdma/server-copy/reply) comes from its stamp in the
// shared registry when available, falling back to post->reply flight time
// under "send"/"reply" when the server keeps a private registry.
//
//hpbd:hotpath
func (d *Device) recordLifecycle(p *sim.Proc, ph *phys, replyAt sim.Time, ferr error) {
	if d.lc == nil {
		return
	}
	now := p.Now()
	rec := telemetry.ReqRecord{
		ID:      ph.handle,
		Flow:    ph.flowID,
		Write:   ph.write,
		Err:     ferr != nil,
		Bytes:   ph.length,
		Server:  ph.link.srv.Name(),
		Start:   ph.blkAt,
		End:     now,
		Retries: retryCount(ph.attempt),
	}
	// Queueing is two segments: block layer -> driver dispatch, and the
	// driver's own send queue. Only the sum must partition.
	rec.Stages[telemetry.StageQueue] = ph.submitAt.Sub(ph.blkAt) + ph.deqAt.Sub(ph.enqAt)
	rec.Stages[telemetry.StagePoolWait] = ph.enqAt.Sub(ph.submitAt)
	rec.Stages[telemetry.StageCreditStall] = ph.creditAt.Sub(ph.deqAt)
	flightStart := ph.creditAt
	if st, ok := d.lc.TakeServerStamp(ph.handle); ok &&
		st.Start >= flightStart && st.Reply >= st.Start && replyAt >= st.Reply {
		srvCopy := st.Copy
		if srvCopy > st.Reply.Sub(st.Start) {
			srvCopy = st.Reply.Sub(st.Start)
		}
		rec.Stages[telemetry.StageSend] = st.Start.Sub(flightStart)
		rec.Stages[telemetry.StageServerCopy] = srvCopy
		rec.Stages[telemetry.StageRDMA] = st.Reply.Sub(st.Start) - srvCopy
		rec.Stages[telemetry.StageReply] = replyAt.Sub(st.Reply)
	} else {
		rec.Stages[telemetry.StageSend] = ph.sentAt.Sub(flightStart)
		rec.Stages[telemetry.StageReply] = replyAt.Sub(ph.sentAt)
	}
	rec.Stages[telemetry.StageDrain] = now.Sub(replyAt)
	d.lc.Record(&rec)
	if d.xover != nil {
		d.xover.observe(&rec)
	}
}

// finishPhys records one physical completion and completes the parent
// when all pieces are done. A merge carrier has no parent: its outcome
// fans out to the constituents instead, so every error path that settles
// the carrier (device failure, link failover, retry exhaustion, timeout
// cancel, degraded completion) settles each constituent exactly once.
func (d *Device) finishPhys(ph *phys, err error) {
	if m := ph.mtrack; m != nil {
		ph.mtrack = nil
		m.noteDone(ph, err)
	}
	if ph.subs != nil {
		subs := ph.subs
		ph.subs = nil // the fan-out happens once, whatever path got here
		for _, s := range subs {
			d.finishPhys(s, err)
		}
		return
	}
	parent := ph.parent
	if err != nil && parent.err == nil {
		parent.err = err
	}
	parent.remain--
	if parent.remain > 0 {
		return
	}
	if parent.err == nil && !parent.req.Write {
		parent.req.Scatter(parent.readBuf)
	}
	parent.req.Complete(parent.err)
}

// watchdog periodically scans the pending table for overdue requests
// (outstanding longer than RequestTimeout): each is counted once in
// hpbd.timeouts and triggers one flight-recorder dump, so a wedged server
// leaves the last N request records in the log. Without recovery it only
// reads the virtual clock and never completes requests, so arming it does
// not change request timing; with recovery enabled it also cancels each
// overdue in-flight request — releasing its credit and handing it to
// retryOrRoute — so a wedged server no longer wedges the device forever.
// It is only spawned when RequestTimeout > 0.
func (d *Device) watchdog(p *sim.Proc) {
	period := d.cfg.RequestTimeout / 2
	if period <= 0 {
		period = d.cfg.RequestTimeout
	}
	for {
		// Park event-free while nothing is in flight (or the device is
		// dead): a sleeping loop would keep the simulation's event queue
		// non-empty forever and Env.Run would never drain. Submit wakes
		// the queue when requests appear.
		for len(d.pending) == 0 || d.failed {
			d.wdQ.Wait(p)
		}
		p.Sleep(period)
		if d.failed {
			continue
		}
		now := p.Now()
		// Scan in handle order: the dump reason must not inherit map order.
		handles := make([]uint64, 0, len(d.pending))
		for h := range d.pending {
			handles = append(handles, h)
		}
		sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
		for _, h := range handles {
			ph := d.pending[h]
			age := now.Sub(ph.submitAt)
			if ph.timedOut || age < d.cfg.RequestTimeout {
				continue
			}
			ph.timedOut = true
			d.met.timeouts.Inc()
			d.lc.Flight().DumpOnEvent(fmt.Sprintf(
				"request timeout: handle=%d flow=%d server=%s age=%v",
				ph.handle, ph.flowID, ph.link.srv.Name(), age))
			if d.recovery() && ph.sent {
				// Cancel and re-route. A late reply to the old handle is
				// ignored by handleReply's pending-miss path (which also
				// leaves the credit alone — it is released here).
				delete(d.pending, h)
				ph.link.credits.Release(1)
				d.rmet.cancels.Inc()
				d.tracer.InstantArgs(d.name, "timeout-cancel", map[string]any{
					"handle": h, "server": ph.link.srv.Name(),
				})
				d.retryOrRoute(ph)
			}
		}
	}
}

// failLink declares one server connection dead: in-flight requests on it
// are requeued through retryOrRoute (which degrades them, since the link
// is down) and future Submits route around it. When every link is down
// and there is no fallback, the whole device fails. Idempotent — flushed
// completions from the closed QP funnel back here.
func (d *Device) failLink(link *serverLink) {
	if link.down || d.failed {
		return
	}
	link.down = true
	d.downLinks++
	d.rmet.linkFails.Inc()
	d.tracer.InstantArgs(d.name, "link-failed", map[string]any{"server": link.srv.Name()})
	d.lc.Flight().DumpOnEvent(fmt.Sprintf(
		"server %s lost: %d link(s) down, rerouting in-flight requests",
		link.srv.Name(), d.downLinks))
	if !link.qp.Closed() {
		link.qp.Close()
	}
	if d.downLinks == len(d.links) && d.cfg.Fallback == nil {
		d.fail()
		return
	}
	// Requeue the sent in-flight requests of this link in handle order
	// (completing a phys can complete its parent and wake its issuer, so
	// the order must not inherit map order). Unsent queued requests are
	// cleaned up by the sender on dequeue.
	handles := make([]uint64, 0, len(d.pending))
	for h, ph := range d.pending {
		if ph.link == link && ph.sent {
			handles = append(handles, h)
		}
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	for _, h := range handles {
		ph := d.pending[h]
		delete(d.pending, h)
		link.credits.Release(1)
		d.retryOrRoute(ph)
	}
}

// retryOrRoute decides what happens to a request that failed in flight:
// retry with exponential backoff on its own (live) link while attempts
// remain, otherwise degrade to the fallback driver / per-request error.
// The caller has already removed ph from pending and released its
// credit; the payload buffer is still held (a retry re-sends it).
func (d *Device) retryOrRoute(ph *phys) {
	if !ph.link.down && ph.attempt < d.cfg.MaxRetries {
		ph.attempt++
		d.rmet.retries.Inc()
		backoff := d.cfg.RetryBackoff
		if backoff <= 0 {
			backoff = 50 * sim.Microsecond
		}
		backoff <<= uint(ph.attempt - 1)
		d.tracer.InstantArgs(d.name, "retry", map[string]any{
			"handle": ph.handle, "attempt": ph.attempt, "backoff_us": backoff.Micros(),
		})
		// A fresh handle isolates this attempt from any late reply to the
		// previous one (handleReply drops unknown handles on the floor).
		d.nextH++
		ph.handle = d.nextH
		ph.sent = false
		ph.timedOut = false
		d.env.After(backoff, func() {
			if d.failed {
				d.releasePayload(nil, ph)
				d.finishPhys(ph, ErrDeviceFailed)
				return
			}
			if ph.link.down {
				if ph.mig {
					d.finishPhys(ph, ErrServerLost)
					return
				}
				data := d.extractPayload(ph)
				d.routeDegraded(ph, data)
				return
			}
			ph.enqAt = d.env.Now()
			d.pending[ph.handle] = ph
			d.sendQ.TrySend(ph)
			d.wdQ.WakeAll()
		})
		return
	}
	if ph.mig {
		// Out of retries (or the link is down): a migration transfer is
		// never degraded to the fallback — the engine observes the error
		// and aborts the move, leaving the range on its source. Nothing
		// is lost; the move just did not happen.
		d.finishPhys(ph, ErrServerLost)
		return
	}
	data := d.extractPayload(ph)
	d.routeDegraded(ph, data)
}

// extractPayload copies a write's payload out of the pool/MR and returns
// the buffers; the returned slice backs the degraded-path write. Reads
// just release (their data was never produced).
func (d *Device) extractPayload(ph *phys) []byte {
	var data []byte
	if ph.write {
		data = make([]byte, ph.length)
		if ph.mr != nil {
			copy(data, ph.mr.Buf[:ph.length])
		} else if ph.lazy {
			// Merge-deferred staging never happened: the payload still
			// lives in the parent's gather buffer.
			copy(data, ph.parent.wdata[ph.off:ph.off+ph.length])
		} else {
			copy(data, d.poolMR.Buf[ph.poolOff:ph.poolOff+ph.length])
		}
	}
	d.releasePayload(nil, ph)
	ph.poolOff = -1
	return data
}

// routeDegraded completes ph outside the RDMA path: through the fallback
// driver when it can absorb the request, otherwise with ErrServerLost.
// The payload buffer must already be released (data carries a write's
// bytes). Runs from proc or scheduler context; fallback I/O happens in a
// spawned process so no caller ever blocks on the fallback device.
func (d *Device) routeDegraded(ph *phys, data []byte) {
	fb := d.cfg.Fallback
	if ph.write {
		if fb != nil {
			d.rmet.fallbacks.Inc()
			d.tracer.InstantArgs(d.name, "fallback-write", map[string]any{"bytes": ph.length})
			d.env.Go(d.name+"-fbw", func(p *sim.Proc) {
				fr := blockdev.NewRequest(d.env, true, ph.devByte/blockdev.SectorSize, data)
				fb.Submit(p, fr)
				err := fr.Wait(p)
				if err == nil {
					d.holdOnFallback(ph.devByte, ph.length)
				}
				d.finishDegraded(ph, err, "fallback")
			})
			return
		}
		d.finishDegraded(ph, ErrServerLost, ph.link.srv.Name())
		return
	}
	if fb != nil && d.fallbackCovers(ph.devByte, ph.length) {
		d.rmet.fallbacks.Inc()
		d.tracer.InstantArgs(d.name, "fallback-read", map[string]any{"bytes": ph.length})
		d.env.Go(d.name+"-fbr", func(p *sim.Proc) {
			buf := make([]byte, ph.length)
			fr := blockdev.NewRequest(d.env, false, ph.devByte/blockdev.SectorSize, buf)
			fb.Submit(p, fr)
			err := fr.Wait(p)
			if err == nil {
				// The fallback driver scattered into buf (the standalone
				// request's only IO buffer). A carrier scatters on to its
				// constituents' parents — it has no parent of its own.
				if ph.subs != nil {
					off := 0
					for _, s := range ph.subs {
						copy(s.parent.readBuf[s.off:s.off+s.length], buf[off:off+s.length])
						off += s.length
					}
				} else {
					copy(ph.parent.readBuf[ph.off:], buf)
				}
			}
			d.finishDegraded(ph, err, "fallback")
		})
		return
	}
	// The authoritative copy died with the server (single-copy device;
	// mirrored cluster configurations mask this at the RAID layer).
	d.finishDegraded(ph, ErrServerLost, ph.link.srv.Name())
}

// holdOnFallback marks the sectors of [devByte, devByte+n) as living on
// the fallback device, making them readable through routeDegraded.
func (d *Device) holdOnFallback(devByte int64, n int) {
	for s := devByte / blockdev.SectorSize; s < (devByte+int64(n))/blockdev.SectorSize; s++ {
		d.fbHeld[s] = true
	}
}

// clearFallbackHold removes the fallback-authority marks for
// [devByte, devByte+n) after the range was successfully rewritten on a
// server.
func (d *Device) clearFallbackHold(devByte int64, n int) {
	if len(d.fbHeld) == 0 {
		return
	}
	for s := devByte / blockdev.SectorSize; s < (devByte+int64(n))/blockdev.SectorSize; s++ {
		delete(d.fbHeld, s)
	}
}

// fallbackCovers reports whether every sector of [devByte, devByte+n)
// has its authoritative copy on the fallback device.
func (d *Device) fallbackCovers(devByte int64, n int) bool {
	if d.fbHeld == nil {
		return false
	}
	for s := devByte / blockdev.SectorSize; s < (devByte+int64(n))/blockdev.SectorSize; s++ {
		if !d.fbHeld[s] {
			return false
		}
	}
	return true
}

// finishDegraded records a degraded-path lifecycle record (stages still
// partition [Start, End] exactly: everything after dispatch is drain
// time) and completes the physical request. A carrier degrades as its
// constituents: one record each, then one fan-out.
func (d *Device) finishDegraded(ph *phys, err error, server string) {
	now := d.env.Now()
	if d.lc != nil {
		if ph.subs != nil {
			for _, s := range ph.subs {
				d.degradedRecord(s, err, server, now, retryCount(ph.attempt))
			}
		} else {
			d.degradedRecord(ph, err, server, now, retryCount(ph.attempt))
		}
	}
	d.finishPhys(ph, err)
}

// degradedRecord writes one degraded-path lifecycle record for ph.
func (d *Device) degradedRecord(ph *phys, err error, server string, now sim.Time, retries uint8) {
	rec := telemetry.ReqRecord{
		ID:      ph.handle,
		Flow:    ph.flowID,
		Write:   ph.write,
		Err:     err != nil,
		Bytes:   ph.length,
		Server:  server,
		Start:   ph.blkAt,
		End:     now,
		Retries: retries,
	}
	rec.Stages[telemetry.StageQueue] = ph.submitAt.Sub(ph.blkAt)
	rec.Stages[telemetry.StageDrain] = now.Sub(ph.submitAt)
	d.lc.Record(&rec)
}

// retryCount clamps an attempt count into the record's uint8.
func retryCount(n int) uint8 {
	if n > 255 {
		return 255
	}
	return uint8(n)
}

// ExhaustPool implements the faultsim client fault surface: it grabs the
// entire registration pool for dur, so arriving requests stall on the
// allocator (and hybrid-path devices cut over to on-the-fly MRs). The
// allocations are returned in one burst when the window closes.
func (d *Device) ExhaustPool(dur sim.Duration) {
	var offs []int
	for {
		n := d.pool.LargestFree()
		if n <= 0 {
			break
		}
		off, err := d.pool.TryAlloc(n)
		if err != nil {
			break
		}
		offs = append(offs, off)
	}
	d.tracer.InstantArgs(d.name, "pool-exhaust", map[string]any{
		"grabbed": len(offs), "dur_us": dur.Micros(),
	})
	d.env.After(dur, func() {
		for _, off := range offs {
			d.pool.Free(off)
		}
	})
}

// fail moves the device to the failed state and errors out all pending
// requests (reliability handling, §4.1: RC excludes network loss, so a
// completion error means the peer is gone).
func (d *Device) fail() {
	if d.failed {
		return
	}
	d.failed = true
	d.lc.Flight().DumpOnEvent(fmt.Sprintf("device %s failed: %d requests pending", d.name, len(d.pending)))
	// Error out in handle order: completing a phys can complete its parent
	// request and wake its issuer, so the order must not inherit map order.
	handles := make([]uint64, 0, len(d.pending))
	for h := range d.pending {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	for _, h := range handles {
		ph := d.pending[h]
		if !ph.sent {
			continue // the sender cleans up queued requests on dequeue
		}
		delete(d.pending, h)
		d.releasePayload(nil, ph)
		d.finishPhys(ph, ErrDeviceFailed)
	}
}
