package hpbd

import (
	"bytes"
	"strings"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/sim"
)

// elasticConfig arms runtime membership on top of the default client.
func elasticConfig() ClientConfig {
	ccfg := DefaultClientConfig()
	ccfg.Elastic = true
	return ccfg
}

// addServer spawns a server on the bed's fabric and live-attaches it.
func (cb *chaosBed) addServer(t *testing.T, p *sim.Proc, name string, areaBytes int64) *Server {
	t.Helper()
	sc := DefaultServerConfig(areaBytes)
	sc.Telemetry = cb.reg
	srv := NewServer(cb.fabric, name, sc)
	if err := cb.dev.AddServerLive(p, srv, areaBytes); err != nil {
		t.Fatalf("AddServerLive(%s): %v", name, err)
	}
	cb.servers = append(cb.servers, srv)
	return srv
}

// TestElasticGrowMigratesAndRoundTrips is the tentpole happy path: fill
// a 2-server device, live-add a third server, and require (a) the
// balance actually moved sectors onto it, (b) every byte written before
// the grow reads back intact afterwards, and (c) blocks rewritten while
// the migration was in flight read back as their last written value
// (write-forwarding).
func TestElasticGrowMigratesAndRoundTrips(t *testing.T) {
	const area = 2 << 20
	const blocks, blockBytes = 32, 128 * 1024 // covers the 4 MB device exactly
	ccfg := elasticConfig()
	ccfg.MigrationMBps = 400 // stretch the copy so the writer below overlaps it
	cb := newChaosBed(t, 2, area, ccfg, false, "")

	done := sim.NewEvent(cb.env)
	idle := sim.NewEvent(cb.env)
	var lastSeed byte
	// A foreground writer hammering block 0 while the migration runs:
	// its final value must survive the cutover.
	cb.env.Go("rewriter", func(p *sim.Proc) {
		defer idle.Trigger()
		for i := 0; i < 40; i++ {
			seed := byte(100 + i)
			w, err := cb.queue.Submit(true, 0, pattern(blockBytes, seed))
			if err != nil {
				t.Errorf("rewrite submit: %v", err)
				return
			}
			cb.queue.Unplug()
			if err := w.Wait(p); err != nil {
				t.Errorf("rewrite %d: %v", i, err)
				return
			}
			lastSeed = seed
			if done.Triggered() {
				return
			}
			p.Sleep(20 * sim.Microsecond)
		}
	})
	cb.run(func(p *sim.Proc) {
		if err := cb.writeBlocks(p, blocks, blockBytes, 3); err != nil {
			t.Fatalf("write pass: %v", err)
		}
		if cb.dev.Directory() != nil {
			t.Fatal("directory exists before any membership operation")
		}
		cb.addServer(t, p, "mem2", 8<<20)
		done.Trigger()
		idle.Wait(p) // join the rewriter before reading its block
		dir := cb.dev.Directory()
		if dir == nil {
			t.Fatal("no directory after AddServerLive")
		}
		if dir.Epoch() < 2 {
			t.Errorf("epoch = %d after add+rebalance, want >= 2", dir.Epoch())
		}
		if n := dir.SectorsOn(2); n == 0 {
			t.Error("rebalance moved nothing onto the new server")
		}
		if len(dir.PlanRebalance()) != 0 {
			t.Error("directory still unbalanced after AddServerLive returned")
		}
		// Blocks 1.. kept their original pattern; block 0 has the
		// rewriter's last value.
		for i := 1; i < blocks; i++ {
			buf := make([]byte, blockBytes)
			r, _ := cb.queue.Submit(false, int64(i)*blockBytes/blockdev.SectorSize, buf)
			cb.queue.Unplug()
			if err := r.Wait(p); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			if !bytes.Equal(buf, pattern(blockBytes, 3+byte(i))) {
				t.Errorf("block %d corrupted by migration", i)
			}
		}
		buf := make([]byte, blockBytes)
		r, _ := cb.queue.Submit(false, 0, buf)
		cb.queue.Unplug()
		if err := r.Wait(p); err != nil {
			t.Fatalf("read block 0: %v", err)
		}
		if !bytes.Equal(buf, pattern(blockBytes, lastSeed)) {
			t.Error("block 0 lost its last concurrent rewrite across the cutover")
		}
	})
	if got := cb.reg.Counter("migration.bytes").Value(); got == 0 {
		t.Error("migration.bytes = 0; no data migrated")
	}
	if got := cb.reg.Counter("migration.cutovers").Value(); got == 0 {
		t.Error("no cutovers recorded")
	}
	if cb.servers[2].Stats().Writes == 0 {
		t.Error("new server received no migrated data")
	}
	if cb.reg.Gauge("placement.epoch").Value() == 0 {
		t.Error("placement.epoch gauge never set")
	}
	assertExactPartition(t, cb.dev)
}

// TestElasticDrainToDecommission retires a founding server: grow first
// (founders have no headroom), drain it, remove it, and require the
// data intact with the server link closed and ignored.
func TestElasticDrainToDecommission(t *testing.T) {
	const area = 1 << 20
	const blocks, blockBytes = 16, 128 * 1024
	cb := newChaosBed(t, 2, area, elasticConfig(), false, "")
	cb.run(func(p *sim.Proc) {
		if err := cb.writeBlocks(p, blocks, blockBytes, 5); err != nil {
			t.Fatalf("write pass: %v", err)
		}
		cb.addServer(t, p, "mem2", 8<<20)
		if err := cb.dev.DrainServer(p, "mem0"); err != nil {
			t.Fatalf("DrainServer: %v", err)
		}
		dir := cb.dev.Directory()
		if n := dir.SectorsOn(0); n != 0 {
			t.Fatalf("mem0 still owns %d sectors after drain", n)
		}
		if err := cb.dev.RemoveServer(p, "mem0"); err != nil {
			t.Fatalf("RemoveServer: %v", err)
		}
		cb.verifyBlocks(t, p, blocks, blockBytes, 5)
		// Steady state after decommission: full rewrite + verify.
		if err := cb.writeBlocks(p, blocks, blockBytes, 9); err != nil {
			t.Fatalf("post-remove writes: %v", err)
		}
		cb.verifyBlocks(t, p, blocks, blockBytes, 9)
	})
	if !cb.dev.links[0].removed {
		t.Error("mem0 link not marked removed")
	}
	if cb.dev.Failed() {
		t.Error("decommissioning failed the device")
	}
	if w0 := cb.servers[0].Stats().Writes; w0 >= int64(blocks)*2 {
		t.Errorf("mem0 kept taking writes after decommission (%d)", w0)
	}
	assertExactPartition(t, cb.dev)
}

// TestElasticConfigAloneChangesNothing pins the bit-identical default:
// a device with Elastic enabled but no membership operations must
// produce exactly the same telemetry as a non-elastic one.
func TestElasticConfigAloneChangesNothing(t *testing.T) {
	runOnce := func(elastic bool) string {
		ccfg := DefaultClientConfig()
		ccfg.Elastic = elastic
		cb := newChaosBed(t, 2, 1<<20, ccfg, false, "")
		cb.run(func(p *sim.Proc) {
			if err := cb.writeBlocks(p, 24, 4096, 3); err != nil {
				t.Fatalf("writes: %v", err)
			}
			cb.verifyBlocks(t, p, 24, 4096, 3)
		})
		if cb.dev.Directory() != nil {
			t.Fatal("static elastic device grew a directory")
		}
		return cb.reg.Summary()
	}
	plain, elastic := runOnce(false), runOnce(true)
	if plain != elastic {
		t.Errorf("enabling Elastic with a static fleet changed telemetry:\n--- plain ---\n%s--- elastic ---\n%s", plain, elastic)
	}
	if strings.Contains(elastic, "migration.") || strings.Contains(elastic, "placement.") {
		t.Error("elastic metrics registered without a membership operation")
	}
}

// TestDeterministicReplayMigration replays a full membership scenario —
// grow, concurrent traffic, drain, decommission — twice in fresh
// simulations and requires byte-identical telemetry and directory
// state: the seed-replay contract extended to migration.
func TestDeterministicReplayMigration(t *testing.T) {
	runOnce := func() (string, string) {
		ccfg := elasticConfig()
		ccfg.MigrationMBps = 800
		cb := newChaosBed(t, 2, 1<<20, ccfg, false, "")
		cb.run(func(p *sim.Proc) {
			if err := cb.writeBlocks(p, 16, 64*1024, 3); err != nil {
				t.Fatalf("writes: %v", err)
			}
			cb.addServer(t, p, "mem2", 6<<20)
			if err := cb.writeBlocks(p, 8, 64*1024, 31); err != nil {
				t.Fatalf("mid writes: %v", err)
			}
			if err := cb.dev.DrainServer(p, "mem1"); err != nil {
				t.Fatalf("drain: %v", err)
			}
			if err := cb.dev.RemoveServer(p, "mem1"); err != nil {
				t.Fatalf("remove: %v", err)
			}
			cb.verifyBlocks(t, p, 8, 64*1024, 31)
		})
		var dump strings.Builder
		cb.dev.Directory().Dump(&dump)
		return cb.reg.Summary(), dump.String()
	}
	sum1, dir1 := runOnce()
	sum2, dir2 := runOnce()
	if sum1 != sum2 {
		t.Errorf("telemetry diverged across replays:\n--- run 1 ---\n%s--- run 2 ---\n%s", sum1, sum2)
	}
	if dir1 != dir2 {
		t.Errorf("directory diverged across replays:\n--- run 1 ---\n%s--- run 2 ---\n%s", dir1, dir2)
	}
	if !strings.Contains(dir1, "removed") {
		t.Errorf("scenario did not decommission a server:\n%s", dir1)
	}
}

// TestElasticGuards pins the API edges: membership on a non-elastic
// device fails cleanly, as do striped layouts and unknown servers.
func TestElasticGuards(t *testing.T) {
	cb := newChaosBed(t, 1, 1<<20, DefaultClientConfig(), false, "")
	cb.run(func(p *sim.Proc) {
		srv := NewServer(cb.fabric, "memX", DefaultServerConfig(1<<20))
		if err := cb.dev.AddServerLive(p, srv, 1<<20); err != ErrNotElastic {
			t.Errorf("AddServerLive on static device = %v, want ErrNotElastic", err)
		}
		if err := cb.dev.DrainServer(p, "mem0"); err != ErrNotElastic {
			t.Errorf("DrainServer on static device = %v, want ErrNotElastic", err)
		}
	})

	striped := elasticConfig()
	striped.StripeBytes = 64 * 1024
	cb2 := newChaosBed(t, 2, 1<<20, striped, false, "")
	cb2.run(func(p *sim.Proc) {
		srv := NewServer(cb2.fabric, "memY", DefaultServerConfig(1<<20))
		if err := cb2.dev.AddServerLive(p, srv, 1<<20); err == nil {
			t.Error("AddServerLive under striping must fail")
		}
		if err := cb2.dev.DrainServer(p, "nope"); err == nil {
			t.Error("drain under striping must fail")
		}
	})

	cb3 := newChaosBed(t, 2, 1<<20, elasticConfig(), false, "")
	cb3.run(func(p *sim.Proc) {
		if err := cb3.dev.DrainServer(p, "ghost"); err == nil ||
			!strings.Contains(err.Error(), "unknown server") {
			t.Errorf("drain of unknown server = %v", err)
		}
		if err := cb3.dev.RemoveServer(p, "mem0"); err == nil {
			t.Error("remove of an owning server must fail (drain first)")
		}
	})
}
