package hpbd

import (
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/ib"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// adaptiveBed is a hybrid-path client with the crossover controller armed
// at a small observation window so short tests tick it many times.
func newAdaptiveBed(t *testing.T, odp bool) *chaosBed {
	t.Helper()
	env := sim.NewEnv()
	reg := telemetry.New(env)
	f := ib.NewFabric(env, ib.DefaultConfig())
	ccfg := DefaultClientConfig()
	ccfg.HybridDataPath = true
	ccfg.AdaptiveCrossover = true
	ccfg.CrossoverWindow = 8
	ccfg.ODP = odp
	ccfg.Telemetry = reg
	dev := NewDevice(f, "hpbd0", ccfg)
	tb := &testbed{env: env, fabric: f, dev: dev}
	srv := NewServer(f, "mem0", DefaultServerConfig(64<<20))
	if err := dev.ConnectServer(srv, 64<<20); err != nil {
		t.Fatalf("ConnectServer: %v", err)
	}
	tb.servers = append(tb.servers, srv)
	tb.queue = blockdev.NewQueue(env, netmodel.DefaultHost(), dev)
	return &chaosBed{testbed: tb, reg: reg}
}

// adaptiveWorkload drives two phases: small discontiguous writes that
// carry no MR-reuse signal (the controller must probe downward), then
// repeated 64K writes whose reuse the controller can measure.
func adaptiveWorkload(t *testing.T, cb *chaosBed, smalls, larges int) (thrAfterSmalls int) {
	t.Helper()
	cb.run(func(p *sim.Proc) {
		for i := 0; i < smalls; i++ {
			// Stride 64 sectors so the elevator cannot coalesce the phase
			// into a handful of large requests.
			w, err := cb.queue.Submit(true, int64(i*64), pattern(4096, byte(i)))
			if err != nil {
				t.Fatalf("submit small %d: %v", i, err)
			}
			cb.queue.Unplug()
			if err := w.Wait(p); err != nil {
				t.Fatalf("small write %d: %v", i, err)
			}
		}
		thrAfterSmalls = cb.dev.HybridThreshold()
		const size = 64 * 1024
		for i := 0; i < larges; i++ {
			w, err := cb.queue.Submit(true, 1<<20/blockdev.SectorSize, pattern(size, byte(i)))
			if err != nil {
				t.Fatalf("submit large %d: %v", i, err)
			}
			cb.queue.Unplug()
			if err := w.Wait(p); err != nil {
				t.Fatalf("large write %d: %v", i, err)
			}
		}
	})
	return thrAfterSmalls
}

// The controller must move: downward probing when the workload gives it
// no reuse signal, convergence into the request range once it does, and
// an always-sane published threshold.
func TestAdaptiveCrossoverAdapts(t *testing.T) {
	cb := newAdaptiveBed(t, false)
	static := cb.dev.HybridThreshold()
	if static != netmodel.Fig3CrossoverBytes {
		t.Fatalf("initial threshold = %d, want the static design point %d", static, netmodel.Fig3CrossoverBytes)
	}
	thrAfterSmalls := adaptiveWorkload(t, cb, 16, 80)
	if thrAfterSmalls >= static {
		t.Errorf("threshold after a no-signal phase = %d, want probed below %d", thrAfterSmalls, static)
	}
	thr := cb.dev.HybridThreshold()
	if cb.dev.Stats().HybridLarge == 0 {
		t.Fatal("64K writes never reached the MR path; the controller failed to adapt")
	}
	if thr > 64*1024 {
		t.Errorf("final threshold = %d, want <= 64K with deep reuse measured", thr)
	}
	if thr < netmodel.PageSize || thr%netmodel.PageSize != 0 {
		t.Errorf("final threshold = %d, want a page multiple >= one page", thr)
	}
	if ticks := cb.reg.Counter("hpbd.crossover.ticks").Value(); ticks < 10 {
		t.Errorf("controller ticked %d times over 96 completions at window 8, want >= 10", ticks)
	}
	if g := cb.reg.Gauge("hpbd.crossover.bytes").Value(); g != int64(thr) {
		t.Errorf("published threshold gauge = %d, live threshold = %d", g, thr)
	}
	assertExactPartition(t, cb.dev)
}

// With ODP registrations the measured crossover sits at or below the
// pinned one for the same workload — on-demand regions only make the
// register path cheaper.
func TestAdaptiveCrossoverODPNoHigher(t *testing.T) {
	pinned := newAdaptiveBed(t, false)
	adaptiveWorkload(t, pinned, 16, 80)
	odp := newAdaptiveBed(t, true)
	adaptiveWorkload(t, odp, 16, 80)
	if o, p := odp.dev.HybridThreshold(), pinned.dev.HybridThreshold(); o > p {
		t.Errorf("ODP threshold = %d > pinned threshold %d for the same workload", o, p)
	}
}

// Same seed, same workload, same controller trajectory: the adaptive
// threshold must not perturb the simulator's determinism contract.
func TestAdaptiveCrossoverDeterministic(t *testing.T) {
	type snap struct {
		thr          int
		ticks        int64
		hits, misses int64
	}
	take := func() snap {
		cb := newAdaptiveBed(t, false)
		adaptiveWorkload(t, cb, 16, 80)
		return snap{
			thr:    cb.dev.HybridThreshold(),
			ticks:  cb.reg.Counter("hpbd.crossover.ticks").Value(),
			hits:   cb.dev.mrc.hits.Value(),
			misses: cb.dev.mrc.misses.Value(),
		}
	}
	a, b := take(), take()
	if a != b {
		t.Errorf("two identical runs diverged: %+v vs %+v", a, b)
	}
}

// AdaptiveCrossover without the hybrid path has nothing to control and
// must stay inert.
func TestAdaptiveCrossoverRequiresHybrid(t *testing.T) {
	env := sim.NewEnv()
	reg := telemetry.New(env)
	f := ib.NewFabric(env, ib.DefaultConfig())
	ccfg := DefaultClientConfig()
	ccfg.AdaptiveCrossover = true
	ccfg.Telemetry = reg
	dev := NewDevice(f, "hpbd0", ccfg)
	srv := NewServer(f, "mem0", DefaultServerConfig(1<<20))
	if err := dev.ConnectServer(srv, 1<<20); err != nil {
		t.Fatalf("ConnectServer: %v", err)
	}
	queue := blockdev.NewQueue(env, netmodel.DefaultHost(), dev)
	env.Go("io", func(p *sim.Proc) {
		w, _ := queue.Submit(true, 0, pattern(4096, 1))
		queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	env.Run()
	env.Close()
	if ticks := reg.Counter("hpbd.crossover.ticks").Value(); ticks != 0 {
		t.Errorf("controller ticked %d times without a hybrid path", ticks)
	}
}
