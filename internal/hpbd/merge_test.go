package hpbd

import (
	"bytes"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/faultsim"
	"hpbd/internal/ib"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// mergeBed builds a client with WR merging armed over one server whose
// staging buffer accommodates merged payloads, with the node registry
// attached (the merge.* series live there) and an optional fault schedule.
func newMergeBed(t *testing.T, ccfg ClientConfig, stagingBytes int, spec string) *chaosBed {
	t.Helper()
	env := sim.NewEnv()
	reg := telemetry.New(env)
	f := ib.NewFabric(env, ib.DefaultConfig())
	ccfg.Telemetry = reg
	dev := NewDevice(f, "hpbd0", ccfg)
	tb := &testbed{env: env, fabric: f, dev: dev}
	sc := DefaultServerConfig(64 << 20)
	sc.StagingBytes = stagingBytes
	sc.Telemetry = reg
	srv := NewServer(f, "mem0", sc)
	if err := dev.ConnectServer(srv, 64<<20); err != nil {
		t.Fatalf("ConnectServer: %v", err)
	}
	tb.servers = append(tb.servers, srv)
	tb.queue = blockdev.NewQueue(env, netmodel.DefaultHost(), dev)
	cb := &chaosBed{testbed: tb, reg: reg}
	if spec != "" {
		sched, err := faultsim.ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec: %v", err)
		}
		cb.inj = faultsim.New(env, *sched, reg)
		cb.inj.AddServer(srv)
		cb.inj.AddClient(dev)
		f.SetFaultHook(cb.inj)
		cb.inj.Start()
	}
	return cb
}

// mergeConfig arms the merge window over a small credit pool: the tight
// window is what backlogs the send queue, and the backlog is what gives
// the sender contiguous runs to coalesce.
func mergeConfig() ClientConfig {
	ccfg := DefaultClientConfig()
	ccfg.Credits = 2
	ccfg.MergeWindow = 4
	ccfg.MergeBytes = 512 * 1024
	return ccfg
}

// assertMergeClean checks the invariants every merged run must restore:
// all credits back, nothing pending, no staging-pool leak.
func assertMergeClean(t *testing.T, cb *chaosBed, credits int) {
	t.Helper()
	for i, link := range cb.dev.links {
		if got := link.credits.Available(); got != credits {
			t.Errorf("link %d credits = %d, want %d (carrier settled its credit wrong)", i, got, credits)
		}
	}
	if n := len(cb.dev.pending); n != 0 {
		t.Errorf("%d requests still pending after quiesce", n)
	}
	if leak := cb.dev.Pool().InUse(); leak != 0 {
		t.Errorf("pool leak: %d bytes", leak)
	}
}

// Contiguous 128K writes under a tight credit window must coalesce into
// carrier WRs — fewer wire ops than block requests — and fan completion
// back out so every block-layer request settles with its own data intact,
// on the write and the read side both.
func TestMergedWriteReadRoundTrip(t *testing.T) {
	const blocks = 16
	const blockBytes = 128 * 1024 // block-layer max: the elevator cannot pre-merge these
	cb := newMergeBed(t, mergeConfig(), 512*1024, "")
	secPerBlock := int64(blockBytes / blockdev.SectorSize)
	got := make([][]byte, blocks)
	cb.run(func(p *sim.Proc) {
		var ios []*blockdev.IO
		for i := 0; i < blocks; i++ {
			w, err := cb.queue.Submit(true, int64(i)*secPerBlock, pattern(blockBytes, byte(i)))
			if err != nil {
				t.Fatalf("submit write %d: %v", i, err)
			}
			ios = append(ios, w)
		}
		cb.queue.Unplug()
		for i, w := range ios {
			if err := w.Wait(p); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		ios = ios[:0]
		for i := 0; i < blocks; i++ {
			got[i] = make([]byte, blockBytes)
			r, err := cb.queue.Submit(false, int64(i)*secPerBlock, got[i])
			if err != nil {
				t.Fatalf("submit read %d: %v", i, err)
			}
			ios = append(ios, r)
		}
		cb.queue.Unplug()
		for i, r := range ios {
			if err := r.Wait(p); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
		}
	})
	for i := range got {
		if !bytes.Equal(got[i], pattern(blockBytes, byte(i))) {
			t.Errorf("block %d corrupted through the merged path", i)
		}
	}
	wrs := cb.reg.Counter("hpbd.merge.wrs").Value()
	reqs := cb.reg.Counter("hpbd.merge.reqs").Value()
	if wrs == 0 {
		t.Fatal("no carrier WRs built; merging never engaged")
	}
	if reqs < 2*wrs {
		t.Errorf("merge.reqs = %d for %d carriers; every carrier must absorb >= 2 requests", reqs, wrs)
	}
	if max := cb.reg.Histogram("hpbd.merge.run").Max(); max > sim.Duration(cb.dev.mergeWin) {
		t.Errorf("merged run of %v exceeds the %d-request window", max, cb.dev.mergeWin)
	}
	// The wire saw fewer server ops than block requests — the point.
	st := cb.servers[0].Stats()
	if st.Writes >= blocks || st.Reads >= blocks {
		t.Errorf("server ops = %d writes / %d reads for %d+%d requests; merging saved nothing",
			st.Writes, st.Reads, blocks, blocks)
	}
	assertMergeClean(t, cb, 2)
	assertExactPartition(t, cb.dev)
}

// The satellite fault case: a transient send error lands on a merged WR.
// The carrier retries as a unit and every constituent handle is settled
// exactly once — data intact, credits balanced, nothing pending, and the
// per-request lifecycle partition still exact. The merged retry is
// visible in the flight records: the constituents of a retried carrier
// share its server stamp, so at least two records with Retries > 0 carry
// identical send/reply stage splits.
func TestMergedSenderrSettlesEveryHandleOnce(t *testing.T) {
	const blocks = 16
	const blockBytes = 128 * 1024
	ccfg := mergeConfig()
	ccfg.MaxRetries = 2
	cb := newMergeBed(t, ccfg, 512*1024, "senderr@300usx2=hpbd0")
	secPerBlock := int64(blockBytes / blockdev.SectorSize)
	cb.run(func(p *sim.Proc) {
		var ios []*blockdev.IO
		for i := 0; i < blocks; i++ {
			w, err := cb.queue.Submit(true, int64(i)*secPerBlock, pattern(blockBytes, byte(i+1)))
			if err != nil {
				t.Fatalf("submit write %d: %v", i, err)
			}
			ios = append(ios, w)
		}
		cb.queue.Unplug()
		for i, w := range ios {
			if err := w.Wait(p); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		cb.verifyBlocks(t, p, blocks, blockBytes, 1)
	})
	if got := cb.reg.Counter("faultsim.injected").Value(); got == 0 {
		t.Fatal("schedule injected nothing; case timing is off")
	}
	st := cb.dev.Stats()
	if st.Retries == 0 {
		t.Fatal("send errors caused no retries")
	}
	if st.LinkFailures != 0 || cb.dev.Failed() {
		t.Error("transient send error on a carrier escalated to link/device failure")
	}
	if cb.reg.Counter("hpbd.merge.wrs").Value() == 0 {
		t.Fatal("no carriers built; the fault cannot have hit a merged WR")
	}
	// Find the retried carrier's fan-out in the flight records.
	type split struct{ send, reply sim.Duration }
	seen := map[split]int{}
	mergedRetry := false
	for _, rec := range cb.dev.Lifecycle().Flight().Records() {
		if rec.Retries == 0 {
			continue
		}
		k := split{rec.Stages[telemetry.StageSend], rec.Stages[telemetry.StageReply]}
		seen[k]++
		if seen[k] >= 2 {
			mergedRetry = true
		}
	}
	if !mergedRetry {
		t.Error("no two retried records share a server stamp; the senderr hit only unmerged WRs")
	}
	assertMergeClean(t, cb, 2)
	assertExactPartition(t, cb.dev)
}

// TestMRCacheEvictWhileIdle pins the cache's idle accounting through the
// eviction path: the hpbd.hybrid.mr_idle gauge must track len(idle)
// exactly when put() evicts beyond capacity — in both the charged and the
// teardown (nil-proc) deregistration variants — and the evicted MR must
// actually be deregistered.
func TestMRCacheEvictWhileIdle(t *testing.T) {
	env := sim.NewEnv()
	reg := telemetry.New(env)
	f := ib.NewFabric(env, ib.DefaultConfig())
	h := f.NewHCA("c")
	c := newMRCache(h, 2, reg)
	gauge := reg.Gauge("hpbd.hybrid.mr_idle")
	env.Go("cache", func(p *sim.Proc) {
		// Three cold gets (nothing idle yet): all misses.
		a, b2, c3 := c.get(p, 32*1024), c.get(p, 32*1024), c.get(p, 32*1024)
		if got := c.misses.Value(); got != 3 {
			t.Fatalf("misses = %d, want 3", got)
		}
		if gauge.Value() != 0 {
			t.Fatalf("mr_idle = %d with everything checked out, want 0", gauge.Value())
		}
		c.put(p, a)
		c.put(p, b2)
		if c.Idle() != 2 || gauge.Value() != 2 {
			t.Fatalf("idle/gauge = %d/%d after two puts, want 2/2", c.Idle(), gauge.Value())
		}
		// Third put overflows cap=2: the oldest entry (a) is evicted and
		// deregistered, and the gauge must land on 2 — not 3.
		c.put(p, c3)
		if got := c.evicts.Value(); got != 1 {
			t.Errorf("evicts = %d, want 1", got)
		}
		if c.Idle() != 2 {
			t.Errorf("idle = %d after eviction, want 2", c.Idle())
		}
		if gauge.Value() != 2 {
			t.Errorf("mr_idle gauge = %d after eviction, want 2 (evict-while-idle regression)", gauge.Value())
		}
		if a.Valid() {
			t.Error("evicted MR still registered")
		}
		// The teardown variant (nil proc, failure path) keeps the same
		// accounting without charging anyone. A larger size forces a fresh
		// registration instead of reusing an idle 32K buffer, so this put
		// overflows the cap again and evicts the oldest idle entry (b2).
		d := c.get(p, 64*1024)
		c.put(nil, d)
		if got := c.evicts.Value(); got != 2 {
			t.Errorf("evicts = %d after teardown put, want 2", got)
		}
		if c.Idle() != 2 || gauge.Value() != 2 {
			t.Errorf("idle/gauge = %d/%d after teardown eviction, want 2/2", c.Idle(), gauge.Value())
		}
		if b2.Valid() {
			t.Error("teardown-evicted MR still registered")
		}
	})
	env.Run()
	env.Close()
}

// The ODP client path end to end: with ClientConfig.ODP the hybrid MR
// cache registers on-demand regions, so a cold large write pays page
// faults on the wire (odp.faults), a warm repeat pays none, and an
// odpinval fault through the injector forces a re-fault — with no effect
// on data integrity.
func TestClientODPFaultLifecycle(t *testing.T) {
	env := sim.NewEnv()
	reg := telemetry.New(env)
	ibcfg := ib.DefaultConfig()
	ibcfg.Telemetry = reg // the odp.faults series lives on the fabric
	f := ib.NewFabric(env, ibcfg)
	ccfg := DefaultClientConfig()
	ccfg.HybridDataPath = true
	ccfg.ODP = true
	ccfg.Telemetry = reg
	dev := NewDevice(f, "hpbd0", ccfg)
	srv := NewServer(f, "mem0", DefaultServerConfig(8<<20))
	if err := dev.ConnectServer(srv, 8<<20); err != nil {
		t.Fatalf("ConnectServer: %v", err)
	}
	queue := blockdev.NewQueue(env, netmodel.DefaultHost(), dev)

	const size = 128 * 1024 // 2 ODP windows in the cache's 128K buffer
	faults := reg.Counter("odp.faults")
	write := func(p *sim.Proc, seed byte) {
		w, err := queue.Submit(true, 0, pattern(size, seed))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	env.Go("io", func(p *sim.Proc) {
		write(p, 3)
		if got := faults.Value(); got != 2 {
			t.Errorf("cold 128K write faulted %d windows, want 2", got)
		}
		write(p, 4)
		if got := faults.Value(); got != 2 {
			t.Errorf("warm write re-faulted: %d total windows, want still 2", got)
		}
		// The injector's odpinval surface, called directly here (its
		// schedule plumbing is covered in faultsim): every cached window
		// drops, so the next write faults afresh.
		if dropped := dev.InvalidateODP(); dropped != 2 {
			t.Errorf("InvalidateODP dropped %d windows, want 2", dropped)
		}
		write(p, 5)
		if got := faults.Value(); got != 4 {
			t.Errorf("post-invalidate write faulted %d total windows, want 4", got)
		}
	})
	env.Run()
	env.Close()
	if misses := dev.mrc.misses.Value(); misses != 1 {
		t.Errorf("mr cache misses = %d, want 1 (ODP region must be reused)", misses)
	}
	if !bytes.Equal(srv.Store().Peek(0, size), pattern(size, 5)) {
		t.Error("data corrupted through the ODP path")
	}
}

// The odpinval fault kind dispatches through a live schedule against the
// device (which implements faultsim.ODPHost); with no ODP regions armed
// it is a harmless no-op that still counts as injected.
func TestODPInvalScheduleAgainstDevice(t *testing.T) {
	ccfg := mergeConfig()
	cb := newMergeBed(t, ccfg, 512*1024, "odpinval@200us=hpbd0")
	cb.run(func(p *sim.Proc) {
		if err := cb.writeBlocks(p, 8, 128*1024, 9); err != nil {
			t.Errorf("writes: %v", err)
			return
		}
		cb.verifyBlocks(t, p, 8, 128*1024, 9)
	})
	if got := cb.reg.Counter("faultsim.injected").Value(); got != 1 {
		t.Errorf("injected = %d, want 1", got)
	}
	if got := cb.reg.Counter("faultsim.skipped").Value(); got != 0 {
		t.Errorf("skipped = %d, want 0 (device must expose the ODP surface)", got)
	}
}
