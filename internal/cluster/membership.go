package cluster

// Runtime fleet membership: the controller face of the placement
// subsystem. A node built with Config.Elastic can grow its server fleet,
// drain servers and decommission them while swap I/O keeps flowing; the
// HPBD device's placement directory and live migration engine do the
// heavy lifting (internal/hpbd/elastic.go, internal/placement).
//
// Mirrored nodes stay fully replicated across membership changes: every
// operation is applied to both replica devices, and since each device
// always maps the whole sector space onto its own (disjoint) fleet, every
// sector keeps one copy per side through any sequence of grows and
// drains — re-replication falls out of the RAID-1 geometry rather than
// needing a copy protocol of its own.

import (
	"fmt"

	"hpbd/internal/hpbd"
	"hpbd/internal/sim"
)

// devices returns the node's HPBD devices (one, or two when mirrored).
func (n *Node) devices() []*hpbd.Device {
	if n.HPBD == nil {
		return nil
	}
	if n.HPBD2 != nil {
		return []*hpbd.Device{n.HPBD, n.HPBD2}
	}
	return []*hpbd.Device{n.HPBD}
}

// GrowFleet spawns one new memory server per HPBD device (two for a
// mirrored node, keeping the replica sets symmetric), attaches each as
// rebalancing headroom and live-migrates the fleet toward
// capacity-proportional balance. Returns the servers it added. New
// servers continue the memN naming sequence and are registered with the
// node's fault injector, so fault schedules can target them.
func (n *Node) GrowFleet(p *sim.Proc, areaBytes int64) ([]*hpbd.Server, error) {
	if n.fabric == nil {
		return nil, fmt.Errorf("cluster: membership requires an HPBD node")
	}
	var added []*hpbd.Server
	for _, dev := range n.devices() {
		sc := n.scfg(areaBytes)
		if sc.Telemetry == nil {
			sc.Telemetry = n.Tel
		}
		if n.srvBatch > 1 {
			sc.DoorbellBatch = n.srvBatch
		}
		srv := hpbd.NewServer(n.fabric, fmt.Sprintf("mem%d", n.nextSrv), sc)
		n.nextSrv++
		if err := dev.AddServerLive(p, srv, areaBytes); err != nil {
			return added, err
		}
		n.HPBDServers = append(n.HPBDServers, srv)
		if n.Faults != nil {
			n.Faults.AddServer(srv)
		}
		added = append(added, srv)
	}
	return added, nil
}

// DrainServer live-migrates every range off the named server (on
// whichever device owns it). The server stays attached until
// RemoveServer.
func (n *Node) DrainServer(p *sim.Proc, name string) error {
	for _, dev := range n.devices() {
		if dev.HasServer(name) {
			return dev.DrainServer(p, name)
		}
	}
	return fmt.Errorf("cluster: no server %q", name)
}

// RemoveServer retires a drained server: waits out its in-flight
// stragglers and closes its connection.
func (n *Node) RemoveServer(p *sim.Proc, name string) error {
	for _, dev := range n.devices() {
		if dev.HasServer(name) {
			return dev.RemoveServer(p, name)
		}
	}
	return fmt.Errorf("cluster: no server %q", name)
}

// Decommission drains and then removes the named server — the two-step
// retire-a-machine flow as one call.
func (n *Node) Decommission(p *sim.Proc, name string) error {
	if err := n.DrainServer(p, name); err != nil {
		return err
	}
	return n.RemoveServer(p, name)
}
