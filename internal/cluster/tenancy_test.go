package cluster

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/faultsim"
	"hpbd/internal/sim"
	"hpbd/internal/tenant"
)

func tenantSpec(t *testing.T, s string) *tenant.Spec {
	t.Helper()
	spec, err := tenant.ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// tenantPattern gives each tenant a distinct byte fill so cross-tenant
// bleed through the shared store is detectable.
func tenantPattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*13 + seed
	}
	return b
}

func submitWait(p *sim.Proc, env *sim.Env, n *TenantNode, write bool, off int64, buf []byte) error {
	r := blockdev.NewRequest(env, write, off/blockdev.SectorSize, buf)
	n.Dev.Submit(p, r)
	return r.Wait(p)
}

// TestTenantFleetDataIsolation writes a distinct pattern for every
// tenant at the same device offsets and reads them all back: the shared
// servers keep one area per tenant, so no write may bleed into a
// neighbor's bytes.
func TestTenantFleetDataIsolation(t *testing.T) {
	env := sim.NewEnv()
	fleet, err := NewTenantFleet(env, TenantFleetConfig{
		Spec:         tenantSpec(t, "pool=32,a:w1,b:w2,c:w4"),
		Servers:      2,
		SwapBytesPer: 2 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 64 << 10
	got := make(map[string][]byte)
	for i, n := range fleet.Nodes {
		n := n
		seed := byte(i + 1)
		env.Go("tenant-"+n.ID, func(p *sim.Proc) {
			want := tenantPattern(chunk, seed)
			// Offsets straddle the two-server split (1 MB boundary).
			for _, off := range []int64{0, 1<<20 - chunk, 1 << 20} {
				if err := submitWait(p, env, n, true, off, append([]byte(nil), want...)); err != nil {
					t.Errorf("%s write at %d: %v", n.ID, off, err)
					return
				}
			}
			buf := make([]byte, chunk)
			if err := submitWait(p, env, n, false, 1<<20-chunk, buf); err != nil {
				t.Errorf("%s read: %v", n.ID, err)
				return
			}
			got[n.ID] = append([]byte(nil), buf...)
		})
	}
	env.Run()
	env.Close()
	for i, n := range fleet.Nodes {
		want := tenantPattern(chunk, byte(i+1))
		if !bytes.Equal(got[n.ID], want) {
			t.Errorf("tenant %s read back foreign or corrupt bytes", n.ID)
		}
	}
}

// replayTenancy runs one deterministic three-tenant workload over a
// two-server fleet with a mid-run crash of mem0 and renders every
// observable artifact — per-tenant read-back digests, the servers'
// QoS snapshots and each registry's metric summary — into one string.
func replayTenancy(t *testing.T, seed int64) string {
	t.Helper()
	env := sim.NewEnv()
	fleet, err := NewTenantFleet(env, TenantFleetConfig{
		Spec:         tenantSpec(t, "pool=32,a:w1:r4,b:w2:r4,c:w4:r4"),
		Servers:      2,
		SwapBytesPer: 2 << 20,
		SelfCheck:    true,
		Fallback:     true,
		Faults: &faultsim.Schedule{Faults: []faultsim.Fault{
			{At: 500 * sim.Microsecond, Kind: faultsim.KindCrash, Target: "mem0"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	const page = 4096
	const pages = 96
	for i, n := range fleet.Nodes {
		i, n := i, n
		env.Go("load-"+n.ID, func(p *sim.Proc) {
			// An LCG keyed by tenant and seed drives sizes and offsets
			// so the interleaving is rich but fully reproducible.
			state := uint64(seed)*2862933555777941757 + uint64(i+1)
			next := func(m int) int {
				state = state*6364136223846793005 + 1442695040888963407
				return int(state>>33) % m
			}
			failed := 0
			for round := 0; round < pages; round++ {
				pg := int64(next(256))
				sz := page * (1 + next(4))
				buf := tenantPattern(sz, byte(i*31+round))
				if err := submitWait(p, env, n, true, pg*page, buf); err != nil {
					failed++ // crash window: the error path is part of the artifact
				}
			}
			// Read-back digest: sum of all bytes at 32 fixed pages.
			sum := 0
			buf := make([]byte, page)
			for k := 0; k < 32; k++ {
				if err := submitWait(p, env, n, false, int64(k*7%256)*page, buf); err != nil {
					failed++
					continue
				}
				for _, v := range buf {
					sum += int(v)
				}
			}
			fmt.Fprintf(&b, "tenant %s: digest %d, failed %d, t=%v\n", n.ID, sum, failed, p.Now())
		})
	}
	env.Run()
	env.Close()
	for _, srv := range fleet.Servers {
		if err := srv.TenancyCheck(); err != nil {
			t.Errorf("%s conservation after crash replay: %v", srv.Name(), err)
		}
		for _, st := range srv.TenantStats() {
			fmt.Fprintf(&b, "%s/%s: reqs %d bytes %d held %d borrowed %d resident %d evict %d qretry %d\n",
				srv.Name(), st.ID, st.SchedReqs, st.SchedBytes, st.Held, st.Borrowed,
				st.Resident, st.Evictions, st.QuotaRetries)
		}
	}
	b.WriteString(fleet.Tel.Summary())
	for _, n := range fleet.Nodes {
		b.WriteString(n.Tel.Summary())
	}
	return b.String()
}

// TestDeterministicReplayTenancy is the tenancy tier's determinism
// gate: the same seed must reproduce a three-tenant run byte for byte —
// latencies, QoS counters, crash recovery and all — even with a server
// crashing mid-run. Scheduling, credit grants and reclaim hold the
// determinism contract or this diffs.
func TestDeterministicReplayTenancy(t *testing.T) {
	first := replayTenancy(t, 42)
	second := replayTenancy(t, 42)
	if first != second {
		t.Fatalf("replay diverged:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	// A different seed must actually change the artifact, or the
	// comparison above is vacuous.
	if other := replayTenancy(t, 43); other == first {
		t.Error("different seed produced an identical artifact; the workload is not exercising the fleet")
	}
}

// TestTenancyCreditConservation floods a self-checking fleet from every
// tenant at once and verifies the credit bank balances on each server —
// the runtime invariant (free + held == provisioned) that the
// creditbalance analyzer enforces statically.
func TestTenancyCreditConservation(t *testing.T) {
	env := sim.NewEnv()
	fleet, err := NewTenantFleet(env, TenantFleetConfig{
		Spec:         tenantSpec(t, "pool=16,a:w1:r2,b:w4:r2,c:w2"),
		Servers:      2,
		SwapBytesPer: 2 << 20,
		SelfCheck:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range fleet.Nodes {
		n := n
		for w := 0; w < 4; w++ {
			w := w
			env.Go(fmt.Sprintf("load-%s-%d", n.ID, w), func(p *sim.Proc) {
				buf := make([]byte, blockdev.MaxRequestBytes)
				for i := 0; i < 24; i++ {
					off := int64((w*24+i)%12) * blockdev.MaxRequestBytes
					if err := submitWait(p, env, n, true, off, buf); err != nil {
						t.Errorf("%s: %v", n.ID, err)
						return
					}
				}
			})
		}
	}
	env.Run()
	env.Close()
	for _, srv := range fleet.Servers {
		if err := srv.TenancyCheck(); err != nil {
			t.Errorf("%s: %v", srv.Name(), err)
		}
		for _, st := range srv.TenantStats() {
			if st.SchedReqs == 0 {
				t.Errorf("%s/%s issued no requests: the flood never reached the scheduler", srv.Name(), st.ID)
			}
		}
	}
}
