// Package cluster assembles complete simulated nodes — VM, swap device
// (HPBD over InfiniBand, NBD over GigE or IPoIB, local disk, or none) and
// the remote servers behind it — matching the paper's experiment setups.
package cluster

import (
	"fmt"

	"hpbd/internal/blockdev"
	"hpbd/internal/disk"
	"hpbd/internal/faultsim"
	"hpbd/internal/health"
	"hpbd/internal/hpbd"
	"hpbd/internal/ib"
	"hpbd/internal/mirror"
	"hpbd/internal/nbd"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/tcpip"
	"hpbd/internal/telemetry"
	"hpbd/internal/tenant"
	"hpbd/internal/vm"
)

// SwapKind selects the swap backing for a node.
type SwapKind int

const (
	// SwapNone runs with local memory only (the paper's baseline).
	SwapNone SwapKind = iota
	// SwapDisk swaps to the local ATA disk model.
	SwapDisk
	// SwapHPBD swaps to remote memory over simulated InfiniBand.
	SwapHPBD
	// SwapNBDGigE swaps to an NBD server over Gigabit Ethernet.
	SwapNBDGigE
	// SwapNBDIPoIB swaps to an NBD server over IPoIB.
	SwapNBDIPoIB
)

func (k SwapKind) String() string {
	switch k {
	case SwapNone:
		return "local-memory"
	case SwapDisk:
		return "disk"
	case SwapHPBD:
		return "hpbd"
	case SwapNBDGigE:
		return "nbd-gige"
	case SwapNBDIPoIB:
		return "nbd-ipoib"
	}
	return "?"
}

// Config describes one node and its swap backing.
type Config struct {
	// MemBytes is local memory available to applications.
	MemBytes int64
	// Swap selects the backing store kind.
	Swap SwapKind
	// SwapBytes is the total swap area (split evenly across Servers for
	// HPBD).
	SwapBytes int64
	// Servers is the number of HPBD memory servers (default 1).
	Servers int
	// Client overrides the HPBD client configuration (zero: defaults).
	Client *hpbd.ClientConfig
	// ServerCfg overrides the per-server configuration (nil: defaults).
	ServerCfg func(storeBytes int64) hpbd.ServerConfig
	// IB overrides the fabric configuration (nil: defaults).
	IB *ib.Config
	// Disk overrides the disk model (nil: defaults).
	Disk *disk.Params
	// VMConfig, if non-nil, mutates the VM configuration before the
	// system is built (readahead window, watermarks, ...).
	VMConfig func(*vm.Config)
	// Elevator enables C-LOOK dispatch on the swap queue (off = FIFO,
	// which is what the calibration assumes; the elevator is studied as
	// an extension).
	Elevator bool
	// LogRequests enables per-request logging on the swap queue (Fig. 6).
	LogRequests bool
	// Mirror builds two HPBD devices over disjoint server sets and swaps
	// to a RAID-1 mirror over them, so one server crash loses no pages.
	// Each side gets Servers servers; SwapBytes is the size of each
	// replica, not the sum. HPBD only.
	Mirror bool
	// Faults, if non-nil, replays a deterministic fault schedule against
	// the node's servers, devices and fabric. HPBD only.
	Faults *faultsim.Schedule
	// FallbackDisk gives each HPBD device a local-disk fallback driver,
	// the last-resort degraded mode when every server is lost. HPBD only.
	FallbackDisk bool
	// Elastic enables runtime membership on the HPBD device(s): the node
	// can grow the fleet, drain and decommission servers while swap I/O
	// keeps flowing (see membership.go). Until the first membership
	// operation the node behaves byte-identically to a static one. HPBD
	// only.
	Elastic bool
	// Telemetry, if non-nil, is the node-wide metrics registry shared by
	// the VM, the fabric, the HPBD client and every server. Nil creates
	// one per node (metrics are always on; tracing stays opt-in via
	// Registry.EnableTracing). Layer-specific overrides (Client.Telemetry,
	// IB.Telemetry, ...) win over this when set.
	Telemetry *telemetry.Registry
	// Health, if non-nil, runs the fleet health engine over the node's
	// registry: a sim-time sampler, SLO burn-rate tracking and anomaly
	// rules (see internal/health). The zero Config selects the documented
	// defaults. Nil (the default) runs no health code at all and keeps
	// every output surface byte-identical.
	Health *health.Config
	// Tenancy, if non-nil, provisions every HPBD server with the
	// multi-tenant QoS spec: per-tenant credit partitioning of the
	// receive window, weighted fair scheduling of RDMA issue, and
	// per-tenant memory quotas (see internal/tenant and hpbd/tenancy.go).
	// The node's own device attaches as TenantID. Nil (the default) keeps
	// every output surface byte-identical to a single-tenant node. HPBD
	// only. Multi-device fleets are built with NewTenantFleet.
	Tenancy *tenant.Spec
	// TenantID is the identity the node's device presents when Tenancy is
	// set (default: the spec's first tenant).
	TenantID string
	// TenantFIFO replaces the fair queue with FIFO issue while keeping
	// the rest of the tenancy machinery (the isolation experiments'
	// control arm).
	TenantFIFO bool
}

// Node is an assembled machine.
type Node struct {
	Env   *sim.Env
	VM    *vm.System
	Queue *blockdev.Queue
	Swap  SwapKind
	// Tel is the node-wide telemetry registry (never nil after Build).
	Tel *telemetry.Registry

	HPBD        *hpbd.Device
	HPBDServers []*hpbd.Server
	NBDServer   *nbd.Server
	Disk        *disk.Disk

	// HPBD2 and Mirror are set for mirrored configurations: HPBD/HPBD2
	// are the two replicas and Mirror is the RAID-1 device the swap
	// queue runs over.
	HPBD2  *hpbd.Device
	Mirror *mirror.Device
	// Faults is the fault injector when Config.Faults was given.
	Faults *faultsim.Injector
	// Health is the fleet health monitor when Config.Health was given.
	Health *health.Monitor

	// Ready triggers when the swap device is attached (the NBD dial
	// happens in simulated time); workloads should wait on it.
	Ready *sim.Event

	// Membership-controller state (HPBD nodes; see membership.go).
	fabric   *ib.Fabric
	scfg     func(storeBytes int64) hpbd.ServerConfig
	srvBatch int // doorbell batch inherited by spawned servers (0: default)
	nextSrv  int // next memN server name
}

// Build assembles a node on env.
func Build(env *sim.Env, cfg Config) (*Node, error) {
	if cfg.Servers <= 0 {
		cfg.Servers = 1
	}
	if (cfg.Mirror || cfg.Faults != nil || cfg.FallbackDisk || cfg.Elastic) && cfg.Swap != SwapHPBD {
		return nil, fmt.Errorf("cluster: Mirror/Faults/FallbackDisk/Elastic require SwapHPBD, got %s", cfg.Swap)
	}
	if cfg.Tenancy != nil {
		if cfg.Swap != SwapHPBD {
			return nil, fmt.Errorf("cluster: Tenancy requires SwapHPBD, got %s", cfg.Swap)
		}
		if err := cfg.Tenancy.Validate(); err != nil {
			return nil, err
		}
		if cfg.TenantID == "" {
			cfg.TenantID = cfg.Tenancy.Tenants[0].ID
		}
		if cfg.Tenancy.Find(cfg.TenantID) == nil {
			return nil, fmt.Errorf("cluster: TenantID %q not in the QoS spec", cfg.TenantID)
		}
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.New(env)
	}
	vmcfg := vm.DefaultConfig(cfg.MemBytes)
	if cfg.VMConfig != nil {
		cfg.VMConfig(&vmcfg)
	}
	if vmcfg.Telemetry == nil {
		vmcfg.Telemetry = tel
	}
	n := &Node{
		Env:   env,
		VM:    vm.NewSystem(env, vmcfg),
		Swap:  cfg.Swap,
		Tel:   tel,
		Ready: sim.NewEvent(env),
	}
	host := vmcfg.Host

	switch cfg.Swap {
	case SwapNone:
		n.Ready.Trigger()

	case SwapDisk:
		params := disk.DefaultParams()
		if cfg.Disk != nil {
			params = *cfg.Disk
		}
		n.Disk = disk.New(env, "hda-swap", cfg.SwapBytes, params)
		n.Queue = blockdev.NewQueue(env, host, n.Disk)
		n.finish(cfg)

	case SwapHPBD:
		ibcfg := ib.DefaultConfig()
		if cfg.IB != nil {
			ibcfg = *cfg.IB
		}
		if ibcfg.Telemetry == nil {
			ibcfg.Telemetry = tel
		}
		fabric := ib.NewFabric(env, ibcfg)
		ccfg := hpbd.DefaultClientConfig()
		if cfg.Client != nil {
			ccfg = *cfg.Client
		}
		if ccfg.Telemetry == nil {
			ccfg.Telemetry = tel
		}
		// Fault-aware configurations get request recovery by default
		// unless the caller pinned an explicit client config. The
		// watchdog timeout matters after a crash: requests already
		// delivered to the dead server hold credits and would stall the
		// sender forever without cancel-and-retry.
		if cfg.Client == nil && (cfg.Mirror || cfg.Faults != nil) {
			ccfg.MaxRetries = 2
			ccfg.RequestTimeout = 5 * sim.Millisecond
		}
		if cfg.Elastic {
			ccfg.Elastic = true
		}
		if cfg.Tenancy != nil {
			ccfg.Tenant = cfg.TenantID
			// Credit partitioning surfaces as RNR/quota pushback; the
			// retry path must be armed for the device to ride it out.
			if ccfg.MaxRetries == 0 {
				ccfg.MaxRetries = 8
			}
		}
		area := cfg.SwapBytes / int64(cfg.Servers)
		area -= area % blockdev.SectorSize
		if area <= 0 {
			return nil, fmt.Errorf("cluster: swap area %d too small for %d servers", cfg.SwapBytes, cfg.Servers)
		}
		scfg := hpbd.DefaultServerConfig
		if cfg.ServerCfg != nil {
			scfg = cfg.ServerCfg
		}
		sides := 1
		if cfg.Mirror {
			sides = 2
		}
		// Server names continue across sides (mem0..memS-1 on the
		// primary, memS.. on the secondary) so the single-device layout
		// and its telemetry are byte-identical to earlier revisions.
		var devs []*hpbd.Device
		serverIdx := 0
		for side := 0; side < sides; side++ {
			sideCfg := ccfg
			if cfg.FallbackDisk {
				params := disk.DefaultParams()
				if cfg.Disk != nil {
					params = *cfg.Disk
				}
				sideCfg.Fallback = disk.New(env, fmt.Sprintf("hda-fb%d", side), area*int64(cfg.Servers), params)
			}
			dev := hpbd.NewDevice(fabric, fmt.Sprintf("hpbd%d", side), sideCfg)
			for i := 0; i < cfg.Servers; i++ {
				sc := scfg(area)
				if sc.Telemetry == nil {
					sc.Telemetry = tel
				}
				if cfg.Tenancy != nil && sc.Tenancy == nil {
					sc.Tenancy = cfg.Tenancy
					sc.TenantFIFO = cfg.TenantFIFO
				}
				// A doorbell-batching client implies batching servers unless an
				// explicit server config already decided.
				if cfg.ServerCfg == nil && ccfg.DoorbellBatch > 1 {
					sc.DoorbellBatch = ccfg.DoorbellBatch
				}
				srv := hpbd.NewServer(fabric, fmt.Sprintf("mem%d", serverIdx), sc)
				serverIdx++
				if err := dev.ConnectServer(srv, area); err != nil {
					return nil, err
				}
				n.HPBDServers = append(n.HPBDServers, srv)
			}
			devs = append(devs, dev)
		}
		if cfg.Faults != nil {
			inj := faultsim.New(env, *cfg.Faults, tel)
			for _, s := range n.HPBDServers {
				inj.AddServer(s)
			}
			for _, d := range devs {
				inj.AddClient(d)
			}
			fabric.SetFaultHook(inj)
			inj.Start()
			n.Faults = inj
		}
		n.fabric = fabric
		n.scfg = scfg
		if cfg.ServerCfg == nil && ccfg.DoorbellBatch > 1 {
			n.srvBatch = ccfg.DoorbellBatch
		}
		n.nextSrv = serverIdx
		n.HPBD = devs[0]
		if cfg.Mirror {
			n.HPBD2 = devs[1]
			md, err := mirror.New(env, "md0", devs[0], devs[1])
			if err != nil {
				return nil, err
			}
			md.SetTelemetry(tel)
			n.Mirror = md
			n.Queue = blockdev.NewQueue(env, host, md)
		} else {
			n.Queue = blockdev.NewQueue(env, host, devs[0])
		}
		n.finish(cfg)

	case SwapNBDGigE, SwapNBDIPoIB:
		link := netmodel.GigE()
		if cfg.Swap == SwapNBDIPoIB {
			link = netmodel.IPoIB()
		}
		mem := netmodel.DefaultMem()
		net := tcpip.NewNetwork(env, link, mem)
		ch, sh := net.NewHost("client"), net.NewHost("nbd-server")
		srv, err := nbd.NewServer(env, sh, cfg.SwapBytes, mem)
		if err != nil {
			return nil, err
		}
		srv.SetTelemetry(tel)
		n.NBDServer = srv
		size := cfg.SwapBytes
		env.Go("nbd-setup", func(p *sim.Proc) {
			dev, derr := nbd.NewDevice(p, "nbd0", ch, sh, size)
			if derr != nil {
				return // Ready never triggers; workloads report the hang
			}
			dev.SetTelemetry(tel)
			n.Queue = blockdev.NewQueue(env, host, dev)
			n.finish(cfg)
		})

	default:
		return nil, fmt.Errorf("cluster: unknown swap kind %d", cfg.Swap)
	}
	return n, nil
}

// finish registers the swap queue with the VM and signals readiness.
func (n *Node) finish(cfg Config) {
	n.Queue.SetTelemetry(n.Tel)
	if cfg.LogRequests {
		n.Queue.EnableLog()
	}
	if cfg.Elevator {
		n.Queue.EnableElevator()
	}
	if cfg.Health != nil {
		n.Health = health.NewMonitor(n.Env, n.Tel, *cfg.Health)
		n.Queue.SetActivityHook(n.Health.Kick)
		n.Health.Start()
	}
	n.VM.AddSwap(n.Queue, 0)
	n.Ready.Trigger()
}
