package cluster

import (
	"testing"

	"hpbd/internal/sim"
)

// TestGrowFleetUnderSwapPressure grows an elastic node mid-workload:
// the VM keeps swapping while GrowFleet attaches a server and migrates,
// and every page must read back its written value afterwards.
func TestGrowFleetUnderSwapPressure(t *testing.T) {
	env := sim.NewEnv()
	node, err := Build(env, Config{
		MemBytes: 1 << 20, Swap: SwapHPBD, SwapBytes: 4 << 20,
		Servers: 2, Elastic: true,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	const pages = 768 // 3 MB over 1 MB of RAM: most pages live in swap
	as := node.VM.NewAddressSpace("w", pages)
	env.Go("w", func(p *sim.Proc) {
		node.Ready.Wait(p)
		for i := 0; i < pages; i++ {
			if err := as.Touch(p, i, true); err != nil {
				t.Errorf("Touch %d: %v", i, err)
				return
			}
		}
		added, gerr := node.GrowFleet(p, 8<<20)
		if gerr != nil {
			t.Errorf("GrowFleet: %v", gerr)
			return
		}
		if len(added) != 1 || added[0].Name() != "mem2" {
			t.Errorf("added = %v, want one server mem2", added)
		}
		if len(node.HPBDServers) != 3 {
			t.Errorf("fleet size = %d, want 3", len(node.HPBDServers))
		}
		// Swap traffic after the grow lands on the rebalanced layout;
		// touching every page faults the swapped ones back in through it.
		for i := 0; i < pages; i++ {
			if err := as.Touch(p, i, false); err != nil {
				t.Errorf("read-back Touch %d: %v", i, err)
				return
			}
		}
		if dir := node.HPBD.Directory(); dir == nil || dir.SectorsOn(2) == 0 {
			t.Error("grow moved no sectors onto the new server")
		}
		if err := node.Decommission(p, "mem0"); err != nil {
			t.Errorf("Decommission: %v", err)
			return
		}
		for i := 0; i < pages; i++ {
			if err := as.Touch(p, i, false); err != nil {
				t.Errorf("post-decommission Touch %d: %v", i, err)
				return
			}
		}
	})
	env.Run()
	env.Close()
	if node.HPBD.Failed() {
		t.Error("device failed during membership changes")
	}
}

// TestGrowFleetMirroredAddsBothSides keeps a mirrored node symmetric: one
// GrowFleet call adds a server per replica and both devices rebalance.
func TestGrowFleetMirroredAddsBothSides(t *testing.T) {
	env := sim.NewEnv()
	node, err := Build(env, Config{
		MemBytes: 1 << 20, Swap: SwapHPBD, SwapBytes: 2 << 20,
		Servers: 1, Mirror: true, Elastic: true,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	const pages = 512
	as := node.VM.NewAddressSpace("w", pages)
	env.Go("w", func(p *sim.Proc) {
		node.Ready.Wait(p)
		for i := 0; i < pages; i++ {
			if err := as.Touch(p, i, true); err != nil {
				t.Errorf("Touch %d: %v", i, err)
				return
			}
		}
		added, gerr := node.GrowFleet(p, 4<<20)
		if gerr != nil {
			t.Errorf("GrowFleet: %v", gerr)
			return
		}
		if len(added) != 2 {
			t.Fatalf("mirrored grow added %d servers, want 2 (one per side)", len(added))
		}
		for _, dev := range node.devices() {
			dir := dev.Directory()
			if dir == nil || len(dir.PlanRebalance()) != 0 {
				t.Errorf("%v: replica not rebalanced after mirrored grow", dev)
			}
		}
		for i := 0; i < pages; i++ {
			if err := as.Touch(p, i, false); err != nil {
				t.Errorf("read-back Touch %d: %v", i, err)
				return
			}
		}
	})
	env.Run()
	env.Close()
	if len(node.HPBDServers) != 4 {
		t.Errorf("fleet size = %d, want 4", len(node.HPBDServers))
	}
}

// TestMembershipRequiresElastic pins the config guard.
func TestMembershipRequiresElastic(t *testing.T) {
	if _, err := Build(sim.NewEnv(), Config{
		MemBytes: 1 << 20, Swap: SwapDisk, SwapBytes: 2 << 20, Elastic: true,
	}); err == nil {
		t.Error("Elastic over disk swap must fail at Build")
	}

	env := sim.NewEnv()
	node, err := Build(env, Config{
		MemBytes: 1 << 20, Swap: SwapHPBD, SwapBytes: 2 << 20, Servers: 1,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	env.Go("w", func(p *sim.Proc) {
		node.Ready.Wait(p)
		if _, gerr := node.GrowFleet(p, 2<<20); gerr == nil {
			t.Error("GrowFleet on a non-elastic node must fail")
		}
	})
	env.Run()
	env.Close()
}
