package cluster

import (
	"testing"

	"hpbd/internal/sim"
	"hpbd/internal/vm"
)

// fill drives a node with a simple overcommit workload and returns the
// elapsed virtual time.
func fill(t *testing.T, cfg Config, pages int) sim.Duration {
	t.Helper()
	env := sim.NewEnv()
	node, err := Build(env, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	as := node.VM.NewAddressSpace("w", pages)
	var elapsed sim.Duration
	env.Go("w", func(p *sim.Proc) {
		node.Ready.Wait(p)
		t0 := p.Now()
		for i := 0; i < pages; i++ {
			if err := as.Touch(p, i, true); err != nil {
				t.Errorf("Touch: %v", err)
				return
			}
			p.Sleep(10 * sim.Microsecond)
		}
		elapsed = p.Now().Sub(t0)
	})
	env.Run()
	env.Close()
	return elapsed
}

func TestBuildEveryKind(t *testing.T) {
	kinds := []SwapKind{SwapNone, SwapDisk, SwapHPBD, SwapNBDGigE, SwapNBDIPoIB}
	const mem = 2 << 20
	for _, k := range kinds {
		cfg := Config{MemBytes: mem, Swap: k, SwapBytes: 8 << 20}
		pages := 256 // 1 MB: fits for SwapNone
		if k != SwapNone {
			pages = 1024 // 4 MB: must swap
		}
		if e := fill(t, cfg, pages); e <= 0 {
			t.Errorf("%v: elapsed = %v", k, e)
		}
	}
}

func TestHPBDMultiServerSplitsArea(t *testing.T) {
	env := sim.NewEnv()
	node, err := Build(env, Config{
		MemBytes: 2 << 20, Swap: SwapHPBD, SwapBytes: 8 << 20, Servers: 4,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(node.HPBDServers) != 4 {
		t.Fatalf("servers = %d", len(node.HPBDServers))
	}
	if got := node.HPBD.Sectors() * 512; got != 8<<20 {
		t.Errorf("device bytes = %d, want %d", got, 8<<20)
	}
	env.Close()
}

func TestSwapKindOrderingUnderPressure(t *testing.T) {
	// The paper's central ordering: hpbd faster than both NBDs, NBDs
	// faster than disk, when overcommitted.
	const mem = 2 << 20
	const pages = 1024
	times := map[SwapKind]sim.Duration{}
	for _, k := range []SwapKind{SwapHPBD, SwapNBDGigE, SwapNBDIPoIB, SwapDisk} {
		times[k] = fill(t, Config{MemBytes: mem, Swap: k, SwapBytes: 16 << 20}, pages)
	}
	if !(times[SwapHPBD] < times[SwapNBDIPoIB] &&
		times[SwapNBDIPoIB] < times[SwapNBDGigE] &&
		times[SwapNBDGigE] < times[SwapDisk]) {
		t.Errorf("ordering violated: %v", times)
	}
}

func TestStatsAccessible(t *testing.T) {
	env := sim.NewEnv()
	node, err := Build(env, Config{MemBytes: 1 << 20, Swap: SwapDisk, SwapBytes: 4 << 20, LogRequests: true})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	as := node.VM.NewAddressSpace("w", 512)
	env.Go("w", func(p *sim.Proc) {
		node.Ready.Wait(p)
		for i := 0; i < 512; i++ {
			as.Touch(p, i, true)
		}
	})
	env.Run()
	env.Close()
	if node.Queue.Stats().RequestsDispatched == 0 {
		t.Error("no requests dispatched")
	}
	if len(node.Queue.Stats().Log) == 0 {
		t.Error("request log empty despite LogRequests")
	}
	if node.VM.Stats().SwapOuts == 0 {
		t.Error("no swap-outs recorded")
	}
}

func TestInvalidConfigs(t *testing.T) {
	env := sim.NewEnv()
	if _, err := Build(env, Config{MemBytes: 1 << 20, Swap: SwapHPBD, SwapBytes: 100, Servers: 3}); err == nil {
		t.Error("tiny swap area across 3 servers should fail")
	}
	if _, err := Build(env, Config{MemBytes: 1 << 20, Swap: SwapKind(99)}); err == nil {
		t.Error("unknown kind should fail")
	}
	env.Close()
}

func TestTwoWorkloadsShareNode(t *testing.T) {
	env := sim.NewEnv()
	node, err := Build(env, Config{MemBytes: 2 << 20, Swap: SwapHPBD, SwapBytes: 16 << 20, Servers: 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	done := 0
	for k := 0; k < 2; k++ {
		as := node.VM.NewAddressSpace("w", 512)
		env.Go("w", func(p *sim.Proc) {
			node.Ready.Wait(p)
			for i := 0; i < 512; i++ {
				if err := as.Touch(p, i, true); err != nil {
					t.Errorf("Touch: %v", err)
					return
				}
				p.Sleep(5 * sim.Microsecond)
			}
			done++
		})
	}
	env.Run()
	env.Close()
	if done != 2 {
		t.Errorf("done = %d, want 2", done)
	}
	_ = vm.PageSize
}
