package cluster

import (
	"bytes"
	"strings"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/faultsim"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

func mustSpec(t *testing.T, spec string) *faultsim.Schedule {
	t.Helper()
	s, err := faultsim.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	return s
}

func chaosPattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*13 + seed
	}
	return b
}

// TestMirroredCrashNoCorruption is the RAID-layer integrity check:
// writes stream through the mirrored swap device while one replica's
// only server crashes mid-stream, and every block must read back intact
// from the survivor — zero corruption, with the loss visible as degraded
// writes on the mirror and a link failure on the dead replica.
func TestMirroredCrashNoCorruption(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	reg := telemetry.New(env)
	node, err := Build(env, Config{
		MemBytes:  1 << 20,
		Swap:      SwapHPBD,
		SwapBytes: 4 << 20,
		Servers:   1,
		Mirror:    true,
		Faults:    mustSpec(t, "crash@300us=mem0"),
		Telemetry: reg,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	const (
		blocks     = 32
		blockBytes = 4096
	)
	secPerBlock := int64(blockBytes / blockdev.SectorSize)
	env.Go("chaos", func(p *sim.Proc) {
		node.Ready.Wait(p)
		for i := 0; i < blocks; i++ {
			w, err := node.Queue.Submit(true, int64(i)*secPerBlock, chaosPattern(blockBytes, byte(i)))
			if err != nil {
				t.Errorf("submit write %d: %v", i, err)
				return
			}
			node.Queue.Unplug()
			if err := w.Wait(p); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			p.Sleep(20 * sim.Microsecond) // stretch the stream across the crash
		}
		for i := 0; i < blocks; i++ {
			buf := make([]byte, blockBytes)
			r, err := node.Queue.Submit(false, int64(i)*secPerBlock, buf)
			if err != nil {
				t.Errorf("submit read %d: %v", i, err)
				return
			}
			node.Queue.Unplug()
			if err := r.Wait(p); err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			if !bytes.Equal(buf, chaosPattern(blockBytes, byte(i))) {
				t.Errorf("block %d corrupted after replica loss", i)
			}
		}
	})
	env.Run()

	if got := node.Tel.Counter("faultsim.injected").Value(); got != 1 {
		t.Errorf("faults injected = %d, want 1", got)
	}
	if got := node.Tel.Counter("hpbd.link_failures").Value(); got < 1 {
		t.Errorf("link failures = %d, want >= 1", got)
	}
	ms := node.Mirror.Stats()
	if ms.DegradedWrites == 0 {
		t.Error("no degraded writes despite a replica crash mid-stream")
	}
	if !node.HPBD.Failed() {
		t.Error("replica 0 lost its only server but is not marked failed")
	}
	if node.HPBD2.Failed() {
		t.Error("surviving replica is marked failed")
	}
	assertNodeExactPartition(t, node)
}

// assertNodeExactPartition checks the lifecycle invariant over every
// request the node recorded, recovered and degraded ones included: the
// per-stage durations must sum to the end-to-end latency exactly.
func assertNodeExactPartition(t *testing.T, node *Node) {
	t.Helper()
	lc := node.Tel.Lifecycle()
	if lc == nil {
		t.Fatal("no lifecycle analyzer on the node registry")
	}
	if lc.Count() == 0 {
		t.Fatal("no request lifecycles recorded")
	}
	for _, rec := range lc.Flight().Records() {
		var sum sim.Duration
		for s := telemetry.Stage(0); s < telemetry.NumStages; s++ {
			if rec.Stages[s] < 0 {
				t.Errorf("req %d: stage %v negative: %v", rec.ID, s, rec.Stages[s])
			}
			sum += rec.Stages[s]
		}
		if sum != rec.Total() {
			t.Errorf("req %d: stages sum %v != total %v", rec.ID, sum, rec.Total())
		}
	}
}

// TestMirroredWorkloadSurvivesCrash is the acceptance-criterion run: a
// fig5-style overcommitted workload on a mirrored two-server node with a
// one-server-crash schedule completes, and the recovery shows up in the
// trace (fault injection and link failure instants) and in the lifecycle
// records.
func TestMirroredWorkloadSurvivesCrash(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	reg := telemetry.New(env)
	reg.EnableTracing()
	node, err := Build(env, Config{
		MemBytes:  2 << 20,
		Swap:      SwapHPBD,
		SwapBytes: 8 << 20,
		Servers:   1, // per replica: mem0 backs hpbd0, mem1 backs hpbd1
		Mirror:    true,
		Faults:    mustSpec(t, "crash@3ms=mem0"),
		Telemetry: reg,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	const pages = 1024 // 4 MB through 2 MB of RAM: must swap
	as := node.VM.NewAddressSpace("w", pages)
	var elapsed sim.Duration
	env.Go("w", func(p *sim.Proc) {
		node.Ready.Wait(p)
		t0 := p.Now()
		for i := 0; i < pages; i++ {
			if err := as.Touch(p, i, true); err != nil {
				t.Errorf("Touch %d: %v", i, err)
				return
			}
			p.Sleep(10 * sim.Microsecond)
		}
		// Second pass re-reads everything, forcing swap-ins that must
		// now be served by the surviving replica.
		for i := 0; i < pages; i++ {
			if err := as.Touch(p, i, false); err != nil {
				t.Errorf("re-Touch %d: %v", i, err)
				return
			}
		}
		elapsed = p.Now().Sub(t0)
	})
	env.Run()

	if elapsed <= 3*sim.Millisecond {
		t.Fatalf("workload finished in %v, before the 3ms crash — it never exercised recovery", elapsed)
	}
	if got := node.Tel.Counter("faultsim.injected").Value(); got != 1 {
		t.Errorf("faults injected = %d, want 1", got)
	}
	if got := node.Tel.Counter("hpbd.link_failures").Value(); got < 1 {
		t.Errorf("link failures = %d, want >= 1", got)
	}
	if node.VM.Stats().SwapOuts == 0 {
		t.Error("workload never swapped; not a fig5-style run")
	}
	assertNodeExactPartition(t, node)

	var buf bytes.Buffer
	if err := reg.Tracer().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	tr := buf.String()
	for _, want := range []string{"fault:crash", "link-failed"} {
		if !strings.Contains(tr, want) {
			t.Errorf("trace missing %q instant", want)
		}
	}
}

// TestFaultConfigRequiresHPBD pins the config validation: fault
// schedules, mirroring and disk fallback are HPBD-only knobs.
func TestFaultConfigRequiresHPBD(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	bad := []Config{
		{MemBytes: 1 << 20, Swap: SwapDisk, SwapBytes: 4 << 20, Mirror: true},
		{MemBytes: 1 << 20, Swap: SwapDisk, SwapBytes: 4 << 20, Faults: mustSpec(t, "crash@1ms=mem0")},
		{MemBytes: 1 << 20, Swap: SwapNBDGigE, SwapBytes: 4 << 20, FallbackDisk: true},
	}
	for i, cfg := range bad {
		if _, err := Build(env, cfg); err == nil {
			t.Errorf("config %d: Build accepted a non-HPBD fault/mirror config", i)
		}
	}
}
