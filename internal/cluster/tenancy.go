package cluster

import (
	"fmt"

	"hpbd/internal/blockdev"
	"hpbd/internal/disk"
	"hpbd/internal/faultsim"
	"hpbd/internal/hpbd"
	"hpbd/internal/ib"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
	"hpbd/internal/tenant"
)

// TenantFleetConfig describes a shared HPBD server fleet serving one
// block device per tenant of a QoS spec — the multi-tenant topology the
// isolation suite, the sweep-tenant experiment and `hpbdctl tenants`
// all build.
type TenantFleetConfig struct {
	// Spec is the QoS contract (validated; every tenant in it gets a
	// device). Quotas are enforced per server.
	Spec *tenant.Spec
	// Servers is the shared fleet size (default 1).
	Servers int
	// SwapBytesPer is each tenant's device size, split evenly across the
	// fleet; every server's store holds one area per tenant.
	SwapBytesPer int64
	// FIFO selects the strict-FIFO control scheduler instead of WFQ.
	FIFO bool
	// SelfCheck arms the servers' credit-conservation runtime check.
	SelfCheck bool
	// Fallback gives each tenant device a local fallback disk — the
	// reclaim target for quota evictions and the overflow path when
	// admission pushback outlasts the retry budget.
	Fallback bool
	// Client overrides the per-tenant device configuration (nil:
	// defaults plus MaxRetries=8, the pushback retry budget).
	Client *hpbd.ClientConfig
	// ServerCfg overrides the per-server configuration (nil: defaults).
	ServerCfg func(storeBytes int64) hpbd.ServerConfig
	// IB overrides the fabric configuration (nil: defaults).
	IB *ib.Config
	// Faults, if non-nil, replays a deterministic fault schedule against
	// the fleet's servers and every tenant device.
	Faults *faultsim.Schedule
	// Disk overrides the fallback disk model (nil: defaults).
	Disk *disk.Params
}

// TenantNode is one tenant's client stack. Each node reports into its
// own registry so per-tenant latency distributions never mix.
type TenantNode struct {
	ID    string
	Dev   *hpbd.Device
	Queue *blockdev.Queue
	Tel   *telemetry.Registry
}

// TenantFleet is an assembled multi-tenant cluster: a shared server
// fleet (one registry) and one client node per tenant.
type TenantFleet struct {
	Env     *sim.Env
	Tel     *telemetry.Registry // the servers' shared registry
	Servers []*hpbd.Server
	Nodes   []*TenantNode // spec order
	Faults  *faultsim.Injector
}

// Node returns tenant id's client stack (nil if unknown).
func (f *TenantFleet) Node(id string) *TenantNode {
	for _, n := range f.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// NewTenantFleet assembles the fleet. Devices attach in spec order, each
// across the whole fleet, so the layout — like everything else in the
// simulation — is deterministic.
func NewTenantFleet(env *sim.Env, cfg TenantFleetConfig) (*TenantFleet, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("cluster: tenant fleet needs a QoS spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 1
	}
	area := cfg.SwapBytesPer / int64(cfg.Servers)
	area -= area % blockdev.SectorSize
	if area <= 0 {
		return nil, fmt.Errorf("cluster: swap area %d too small for %d servers", cfg.SwapBytesPer, cfg.Servers)
	}
	ibcfg := ib.DefaultConfig()
	if cfg.IB != nil {
		ibcfg = *cfg.IB
	}
	tel := ibcfg.Telemetry
	if tel == nil {
		tel = telemetry.New(env)
		ibcfg.Telemetry = tel
	}
	fabric := ib.NewFabric(env, ibcfg)
	scfg := hpbd.DefaultServerConfig
	if cfg.ServerCfg != nil {
		scfg = cfg.ServerCfg
	}
	fleet := &TenantFleet{Env: env, Tel: tel}
	storeBytes := area * int64(len(cfg.Spec.Tenants))
	for i := 0; i < cfg.Servers; i++ {
		sc := scfg(storeBytes)
		if sc.Telemetry == nil {
			sc.Telemetry = tel
		}
		sc.Tenancy = cfg.Spec
		sc.TenantFIFO = cfg.FIFO
		sc.TenantSelfCheck = cfg.SelfCheck
		fleet.Servers = append(fleet.Servers, hpbd.NewServer(fabric, fmt.Sprintf("mem%d", i), sc))
	}
	host := netmodel.DefaultHost()
	for i := range cfg.Spec.Tenants {
		id := cfg.Spec.Tenants[i].ID
		ccfg := hpbd.DefaultClientConfig()
		if cfg.Client != nil {
			ccfg = *cfg.Client
		}
		ccfg.Tenant = id
		if ccfg.MaxRetries == 0 {
			ccfg.MaxRetries = 8
		}
		if ccfg.Telemetry == nil {
			ccfg.Telemetry = telemetry.New(env)
		}
		if cfg.Fallback {
			params := disk.DefaultParams()
			if cfg.Disk != nil {
				params = *cfg.Disk
			}
			ccfg.Fallback = disk.New(env, "fb-"+id, cfg.SwapBytesPer, params)
		}
		dev := hpbd.NewDevice(fabric, "hpbd-"+id, ccfg)
		for _, srv := range fleet.Servers {
			if err := dev.ConnectServer(srv, area); err != nil {
				return nil, err
			}
		}
		fleet.Nodes = append(fleet.Nodes, &TenantNode{
			ID:    id,
			Dev:   dev,
			Queue: blockdev.NewQueue(env, host, dev),
			Tel:   ccfg.Telemetry,
		})
	}
	if cfg.Faults != nil {
		inj := faultsim.New(env, *cfg.Faults, tel)
		for _, s := range fleet.Servers {
			inj.AddServer(s)
		}
		for _, n := range fleet.Nodes {
			inj.AddClient(n.Dev)
		}
		fabric.SetFaultHook(inj)
		inj.Start()
		fleet.Faults = inj
	}
	return fleet, nil
}
