package experiments

import (
	"fmt"
	"strings"

	"hpbd/internal/cluster"
	"hpbd/internal/health"
	"hpbd/internal/sim"
	"hpbd/internal/workload"
)

// SweepElastic measures what growing the fleet costs the foreground: a
// testswap run over a static two-server node, then the same run while
// the node grows 2 -> 4 -> 8 servers mid-stream with live migration
// rebalancing after every add. Rows report total runtime and foreground
// swap p99 for both, plus the virtual time each rebalance wave took.
// The grow instants are derived from the static run's duration (1/4 and
// 1/2 points), so the sweep is fully deterministic.
func SweepElastic(c Config) (*Result, error) {
	s := c.scale()
	res := &Result{
		ID:    "sweep-elastic",
		Title: fmt.Sprintf("Testswap while the fleet grows 2 -> 4 -> 8 (1/%d scale)", s),
		Unit:  "s",
		PaperNote: "extension: the paper's fleet is fixed at module load — this " +
			"measures live growth with migration riding the same RDMA data path",
	}
	data := int64(paperData) / s
	// Health rides along read-only; its SLO summary becomes an extra
	// column showing whether the grows cost the foreground any budget.
	base := cluster.Config{
		MemBytes:  paperMem / s,
		Swap:      cluster.SwapHPBD,
		SwapBytes: paperSwap / s,
		Servers:   2,
		Elastic:   true,
		Health:    &health.Config{},
	}

	// Static baseline: same node shape, no membership changes. Elastic
	// stays on (it is byte-identical until the first operation), so the
	// two runs differ only by the grows.
	staticRun, node, err := measureElastic(base, data, 0, 0, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("%s/static: %w", res.ID, err)
	}
	p50, p99 := swapLatency(node)
	res.Rows = append(res.Rows, Row{
		Label: "static-2servers", Value: staticRun.Seconds(),
		P50ms: p50, P99ms: p99, Stat: stageBreakdown(node),
		SLO: node.Health.SLOSummary(),
	})

	growAt1 := staticRun / 4
	growAt2 := staticRun / 2
	var rebal1, rebal2 sim.Duration
	elapsed, node, err := measureElastic(base, data, growAt1, growAt2, &rebal1, &rebal2)
	if err != nil {
		return nil, fmt.Errorf("%s/grow: %w", res.ID, err)
	}
	p50, p99 = swapLatency(node)
	tel := node.Tel
	res.Rows = append(res.Rows,
		Row{
			Label: "elastic-grow-2-4-8", Value: elapsed.Seconds(),
			P50ms: p50, P99ms: p99,
			Stat: fmt.Sprintf("epoch=%d migrated=%dKB moves=%d requeued=%d stalls=%d",
				tel.Gauge("placement.epoch").Value(),
				tel.Counter("migration.bytes").Value()/1024,
				tel.Counter("migration.moves").Value(),
				tel.Counter("migration.requeued").Value(),
				tel.Histogram("migration.stall").Count()),
			SLO: node.Health.SLOSummary(),
		},
		Row{Label: "rebalance-2to4", Value: rebal1.Seconds(), Stat: "2 servers added"},
		Row{Label: "rebalance-4to8", Value: rebal2.Seconds(), Stat: "4 servers added"},
	)
	return res, nil
}

// PlacementDump runs a short elastic scenario — testswap over servers
// founders with one mid-run fleet grow — and returns the placement
// directory's deterministic dump plus the migration counters, for
// hpbdctl's placement subcommand. The same flags always produce the
// same bytes.
func PlacementDump(c Config, servers int) (string, error) {
	if servers <= 0 {
		servers = 2
	}
	s := c.scale()
	cfg := cluster.Config{
		MemBytes:  paperMem / s,
		Swap:      cluster.SwapHPBD,
		SwapBytes: paperSwap / s,
		Servers:   servers,
		Elastic:   true,
	}
	env := sim.NewEnv()
	node, err := cluster.Build(env, cfg)
	if err != nil {
		return "", err
	}
	data := int64(paperData) / (s * 4) // a short stream: the dump is the point
	w := workload.NewTestswap(node.VM, data)
	var runErr error
	env.Go("workload", func(p *sim.Proc) {
		node.Ready.Wait(p)
		if runErr = w.Run(p); runErr != nil {
			return
		}
		if _, runErr = node.GrowFleet(p, cfg.SwapBytes/int64(servers)); runErr != nil {
			return
		}
	})
	env.Run()
	env.Close()
	if runErr != nil {
		return "", runErr
	}
	dir := node.HPBD.Directory()
	if dir == nil {
		return "", fmt.Errorf("elastic node has no placement directory")
	}
	var b strings.Builder
	dir.Dump(&b)
	fmt.Fprintf(&b, "migration: %d KB moved in %d moves, %d cutovers, %d requests requeued\n",
		node.Tel.Counter("migration.bytes").Value()/1024,
		node.Tel.Counter("migration.moves").Value(),
		node.Tel.Counter("migration.cutovers").Value(),
		node.Tel.Counter("migration.requeued").Value())
	return b.String(), nil
}

// measureElastic runs testswap on an elastic node, optionally growing
// the fleet 2->4 at growAt1 and 4->8 at growAt2 (virtual time since the
// node became ready; 0 disables). The rebalance wave durations are
// written through rebal1/rebal2 when non-nil.
func measureElastic(ccfg cluster.Config, data int64, growAt1, growAt2 sim.Duration, rebal1, rebal2 *sim.Duration) (sim.Duration, *cluster.Node, error) {
	env := sim.NewEnv()
	node, err := cluster.Build(env, ccfg)
	if err != nil {
		return 0, nil, err
	}
	area := ccfg.SwapBytes / int64(ccfg.Servers)
	w := workload.NewTestswap(node.VM, data)
	var elapsed sim.Duration
	var runErr, growErr error
	env.Go("workload", func(p *sim.Proc) {
		node.Ready.Wait(p)
		t0 := p.Now()
		runErr = w.Run(p)
		elapsed = p.Now().Sub(t0)
	})
	if growAt1 > 0 {
		env.Go("membership", func(p *sim.Proc) {
			node.Ready.Wait(p)
			t0 := p.Now()
			p.Sleep(growAt1)
			w1 := p.Now()
			for i := 0; i < 2; i++ {
				if _, err := node.GrowFleet(p, area); err != nil {
					growErr = fmt.Errorf("grow 2->4: %w", err)
					return
				}
			}
			if rebal1 != nil {
				*rebal1 = p.Now().Sub(w1)
			}
			if wait := growAt2 - p.Now().Sub(t0); wait > 0 {
				p.Sleep(wait)
			}
			w2 := p.Now()
			for i := 0; i < 4; i++ {
				if _, err := node.GrowFleet(p, area); err != nil {
					growErr = fmt.Errorf("grow 4->8: %w", err)
					return
				}
			}
			if rebal2 != nil {
				*rebal2 = p.Now().Sub(w2)
			}
		})
	}
	env.Run()
	env.Close()
	if runErr != nil {
		return 0, node, fmt.Errorf("workload: %w", runErr)
	}
	if growErr != nil {
		return 0, node, growErr
	}
	return elapsed, node, nil
}
