package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// replayOnce runs a scaled-down fig5 scenario (testswap over a striped
// HPBD node) with tracing enabled and returns the rendered telemetry
// summary and the Chrome trace JSON.
func replayOnce(t *testing.T, seed int64) (summary, trace string) {
	t.Helper()
	reg, err := TraceRun(Config{Scale: 256, Seed: seed}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.Tracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return reg.Summary(), buf.String()
}

// TestDeterministicReplay is the determinism contract's regression test:
// two runs with the same seed must produce byte-identical telemetry
// summaries and byte-identical trace event sequences. Any wall-clock
// read, global-rand draw, or map-ordered scheduling decision anywhere in
// the swap path shows up here as a diff (and hpbd-vet should have flagged
// it first).
func TestDeterministicReplay(t *testing.T) {
	sum1, tr1 := replayOnce(t, 42)
	sum2, tr2 := replayOnce(t, 42)

	if sum1 == "" || !strings.Contains(sum1, "histograms") {
		t.Fatalf("summary looks empty or untracked:\n%s", sum1)
	}
	if len(tr1) < 100 {
		t.Fatalf("trace suspiciously small: %d bytes", len(tr1))
	}
	if sum1 != sum2 {
		t.Errorf("telemetry summaries differ between identical-seed runs:\n--- run1\n%s\n--- run2\n%s", sum1, sum2)
	}
	if tr1 != tr2 {
		t.Errorf("trace event sequences differ between identical-seed runs (run1 %d bytes, run2 %d bytes)", len(tr1), len(tr2))
	}

	// Different seeds must actually change the run (guards against the
	// comparison trivially passing because the seed is ignored).
	sum3, _ := replayOnce(t, 43)
	if sum1 == sum3 {
		t.Log("note: seed 42 and 43 produced identical summaries; testswap is seed-insensitive, which is acceptable for a sequential workload")
	}
}

// TestDeterministicReplayQuicksort repeats the check with the quicksort
// workload, whose data-dependent access pattern exercises readahead, the
// swap cache, and multi-server striping harder than sequential testswap.
func TestDeterministicReplayQuicksort(t *testing.T) {
	run := func(seed int64) (string, string) {
		t.Helper()
		reg, err := TraceRunQuicksort(Config{Scale: 512, Seed: seed}, 2)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.Tracer().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return reg.Summary(), buf.String()
	}
	sum1, tr1 := run(7)
	sum2, tr2 := run(7)
	if sum1 != sum2 {
		t.Errorf("quicksort telemetry summaries differ between identical-seed runs:\n--- run1\n%s\n--- run2\n%s", sum1, sum2)
	}
	if tr1 != tr2 {
		t.Errorf("quicksort trace event sequences differ between identical-seed runs (run1 %d bytes, run2 %d bytes)", len(tr1), len(tr2))
	}
}

// TestDeterministicReplayFaults extends the determinism contract to the
// fault injector and the recovery machinery: two runs of the same fault
// schedule against the same seeded mirrored node must produce
// byte-identical summaries (recovery counters included) and trace event
// sequences — retries, backoff timers, link failover and requeue order
// all replay exactly.
func TestDeterministicReplayFaults(t *testing.T) {
	const spec = "crash@2ms=mem0,delay@500us+1ms~50us=mem1,senderr@1msx2=hpbd0"
	run := func() (string, string) {
		t.Helper()
		reg, err := TraceRunFaults(Config{Scale: 512, Seed: 42}, 1, spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.Tracer().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return reg.Summary(), buf.String()
	}
	sum1, tr1 := run()
	sum2, tr2 := run()
	if sum1 != sum2 {
		t.Errorf("fault-run telemetry summaries differ between identical runs:\n--- run1\n%s\n--- run2\n%s", sum1, sum2)
	}
	if tr1 != tr2 {
		t.Errorf("fault-run trace event sequences differ between identical runs (run1 %d bytes, run2 %d bytes)", len(tr1), len(tr2))
	}
	// The schedule must actually have fired (guards against the diff
	// trivially passing on a fault-free run).
	if !strings.Contains(tr1, "fault:crash") {
		t.Error("trace records no crash injection; schedule did not fire")
	}
}
