package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Runner produces one result.
type Runner func(Config) (*Result, error)

// Registry maps experiment IDs to their runners.
var Registry = map[string]Runner{
	"fig1":   func(Config) (*Result, error) { return Fig1(), nil },
	"fig3":   func(Config) (*Result, error) { return Fig3(), nil },
	"table1": func(Config) (*Result, error) { return Table1(), nil },
	"fig5":   Fig5,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,

	"ablation-registration": AblationRegistration,
	"ablation-receiver":     AblationReceiver,
	"ablation-striping":     AblationStriping,
	"ablation-poolsize":     AblationPoolSize,
	"ablation-hybrid":       AblationHybrid,
	"ablation-doorbell":     AblationDoorbell,
	"ablation-health":       AblationHealth,
	"ablation-odp":          AblationODP,
	"ablation-merge":        AblationMerge,
	"ablation-crossover":    AblationCrossover,

	"sweep-bandwidth": SweepBandwidth,
	"sweep-credits":   SweepCredits,
	"sweep-degraded":  SweepDegraded,
	"sweep-elastic":   SweepElastic,
	"sweep-readahead": SweepReadahead,
	"sweep-tenant":    SweepTenant,
	"sweep-elevator":  SweepElevator,
}

// Names returns the registered experiment IDs in stable order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		// figN first in numeric order, then the rest alphabetically.
		fi, fj := strings.HasPrefix(out[i], "fig"), strings.HasPrefix(out[j], "fig")
		if fi != fj {
			return fi
		}
		if fi && fj {
			var a, b int
			fmt.Sscanf(out[i], "fig%d", &a)
			fmt.Sscanf(out[j], "fig%d", &b)
			return a < b
		}
		return out[i] < out[j]
	})
	return out
}

// Format renders a result as an aligned text table.
func Format(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", r.ID, r.Title)
	if r.PaperNote != "" {
		fmt.Fprintf(&b, "   (%s)\n", r.PaperNote)
	}
	width := 0
	for _, row := range r.Rows {
		if len(row.Label) > width {
			width = len(row.Label)
		}
	}
	for _, row := range r.Rows {
		if r.Unit == "" {
			fmt.Fprintf(&b, "   %-*s\n", width, row.Label)
			continue
		}
		fmt.Fprintf(&b, "   %-*s  %10.3f %s", width, row.Label, row.Value, r.Unit)
		if row.P99ms > 0 {
			fmt.Fprintf(&b, "   swap p50=%.3fms p99=%.3fms", row.P50ms, row.P99ms)
		}
		if row.Stat != "" {
			fmt.Fprintf(&b, "   [%s]", row.Stat)
		}
		if row.SLO != "" {
			fmt.Fprintf(&b, "   {slo: %s}", row.SLO)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders a result as comma-separated rows
// (id,label,value,unit,p50ms,p99ms,stat) for downstream plotting. The
// latency columns are zero when the run did not measure them. Rows from
// health-enabled runs gain a trailing quoted SLO-compliance column;
// health-off rows keep the original seven columns byte-for-byte.
func CSV(r *Result) string {
	var b strings.Builder
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%g,%s,%g,%g,%q",
			r.ID, row.Label, row.Value, r.Unit, row.P50ms, row.P99ms, row.Stat)
		if row.SLO != "" {
			fmt.Fprintf(&b, ",%q", row.SLO)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Ratio returns rows[i].Value / rows[j].Value for ratio checks.
func (r *Result) Ratio(labelNum, labelDen string) (float64, error) {
	num, den := -1.0, -1.0
	for _, row := range r.Rows {
		if row.Label == labelNum {
			num = row.Value
		}
		if row.Label == labelDen {
			den = row.Value
		}
	}
	if num < 0 || den <= 0 {
		return 0, fmt.Errorf("experiments: labels %q/%q not found", labelNum, labelDen)
	}
	return num / den, nil
}
