package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestTraceRunMetrics runs the traced quick sort and checks every metric
// the acceptance criteria call out: swap latency quantiles, pool alloc
// accounting, per-server RDMA counts and the QP-cache miss counter.
func TestTraceRunMetrics(t *testing.T) {
	reg, err := TraceRunQuicksort(smallCfg, 2)
	if err != nil {
		t.Fatal(err)
	}

	in := reg.Histogram("vm.swapin.latency")
	if in.Count() == 0 {
		t.Fatal("quick sort never swapped in; scale too large?")
	}
	p50, p99 := in.Quantile(0.50), in.Quantile(0.99)
	if !(p99 >= p50 && p50 > 0) {
		t.Fatalf("swap-in quantiles implausible: p50=%v p99=%v", p50, p99)
	}
	if out := reg.Histogram("vm.swapout.latency"); out.Count() == 0 {
		t.Fatal("no swap-out latencies recorded")
	}

	if reg.Histogram("pool.alloc.wait").Count() != reg.Counter("pool.alloc.waits").Value() {
		t.Fatalf("pool wait histogram (%d) and counter (%d) disagree",
			reg.Histogram("pool.alloc.wait").Count(), reg.Counter("pool.alloc.waits").Value())
	}
	if reg.Gauge("pool.in_use").Peak() == 0 {
		t.Fatal("pool in-use gauge never rose")
	}

	for _, srv := range []string{"mem0", "mem1"} {
		if reg.Counter(srv+".rdma_issued").Value() == 0 {
			t.Fatalf("%s issued no RDMA operations", srv)
		}
	}
	// Two QPs on one HCA with a single-entry context cache: misses must
	// occur (the Fig. 10 mechanism); at minimum the counter must exist.
	if reg.Counter("ib.qp_cache_miss").Value() < 0 {
		t.Fatal("qp cache miss counter negative")
	}

	if reg.Tracer().Len() == 0 {
		t.Fatal("tracing was enabled but no events recorded")
	}
	var buf bytes.Buffer
	if err := reg.Tracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export invalid JSON: %v", err)
	}

	sum := reg.Summary()
	for _, want := range []string{"vm.swapin.latency", "vm.swapout.latency", "hpbd.phys_reqs", "pool.in_use"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

// TestSweepLatencyColumns checks that sweep rows carry the swap latency
// quantiles pulled from the node registry.
func TestSweepLatencyColumns(t *testing.T) {
	res, err := SweepCredits(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !(row.P99ms >= row.P50ms && row.P50ms > 0) {
			t.Fatalf("row %s: latency columns not populated: p50=%g p99=%g",
				row.Label, row.P50ms, row.P99ms)
		}
	}
	text := Format(res)
	if !strings.Contains(text, "swap p50=") {
		t.Fatalf("formatted table missing latency annotation:\n%s", text)
	}
	csv := CSV(res)
	line := strings.SplitN(csv, "\n", 2)[0]
	if got := strings.Count(line, ","); got != 6 {
		t.Fatalf("CSV row should have 7 columns, got %d+1: %s", got, line)
	}
}
