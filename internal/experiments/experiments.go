// Package experiments reproduces every figure of the paper's evaluation
// (Figures 1, 3, 5-10) plus ablation studies of the design choices argued
// in §4. Each runner returns a Result whose rows mirror the paper's
// series; cmd/hpbd-bench prints them and EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"math/rand"

	"hpbd/internal/cluster"
	"hpbd/internal/sim"
	"hpbd/internal/vm"
	"hpbd/internal/workload"
)

// PaperScale divides the paper's dataset and memory sizes. The default 32
// maps 1 GB / 512 MB onto 32 MB / 16 MB, keeping every ratio (dataset :
// memory : swap : request size) intact while the simulation stays fast.
const PaperScale = 32

// Paper-scale quantities (before division by the scale factor).
const (
	paperMem      = 512 << 20
	paperData     = 1 << 30
	paperSwap     = 1 << 30
	paperBigMem   = 2 << 30 // the "enough memory" runs use the full 2 GB
	paperQsortInt = 256 << 20
)

// Row is one reported measurement. P50ms/P99ms, when non-zero, are
// per-page swap latency quantiles in milliseconds pulled from the node's
// telemetry registry (vm.swapin.latency, falling back to
// vm.swapout.latency for write-only workloads).
type Row struct {
	Label string
	Value float64 // seconds unless the result says otherwise
	Stat  string  // optional annotation
	P50ms float64 // swap-in latency p50, ms (0 = not measured)
	P99ms float64 // swap-in latency p99, ms (0 = not measured)
	// SLO is the health engine's per-objective compliance summary
	// ("req-e2e-p99 99.2% req-errors 100.0%"); empty when the run did not
	// enable health. Renderers append it as an extra column only when
	// present, so health-off output is byte-identical.
	SLO string
}

// Result is one reproduced table/figure.
type Result struct {
	ID        string
	Title     string
	Unit      string
	Rows      []Row
	PaperNote string // what the paper reports, for EXPERIMENTS.md
}

// Config bundles the experiment parameters.
type Config struct {
	Scale int   // divide paper sizes by this; 0 means PaperScale
	Seed  int64 // workload RNG seed
}

func (c Config) scale() int64 {
	if c.Scale <= 0 {
		return PaperScale
	}
	return int64(c.Scale)
}

// runnable is a workload with a Run method.
type runnable interface {
	Run(p *sim.Proc) error
}

// measure builds a node, constructs the workload, and returns the virtual
// time the workload took (after the node became ready).
func measure(ccfg cluster.Config, seed int64, mk func(*vm.System, *rand.Rand) runnable) (sim.Duration, *cluster.Node, error) {
	env := sim.NewEnv()
	node, err := cluster.Build(env, ccfg)
	if err != nil {
		return 0, nil, err
	}
	w := mk(node.VM, rand.New(rand.NewSource(seed)))
	var elapsed sim.Duration
	var runErr error
	env.Go("workload", func(p *sim.Proc) {
		node.Ready.Wait(p)
		t0 := p.Now()
		runErr = w.Run(p)
		elapsed = p.Now().Sub(t0)
	})
	env.Run()
	env.Close()
	if runErr != nil {
		return 0, node, fmt.Errorf("workload: %w", runErr)
	}
	return elapsed, node, nil
}

// swapLatency extracts the node's per-page swap latency quantiles (ms)
// from the telemetry registry: swap-in when the run faulted pages back,
// otherwise swap-out (write-only workloads like testswap never swap in).
// Zeros when the run never swapped at all.
func swapLatency(node *cluster.Node) (p50ms, p99ms float64) {
	h := node.Tel.Histogram("vm.swapin.latency")
	if h.Count() == 0 {
		h = node.Tel.Histogram("vm.swapout.latency")
	}
	if h.Count() == 0 {
		return 0, 0
	}
	const ms = float64(sim.Millisecond)
	return float64(h.Quantile(0.50)) / ms, float64(h.Quantile(0.99)) / ms
}

// stageBreakdown summarizes the node's critical-path attribution as its
// three largest stages ("rdma 40% send 25% queue 20%"): the swap device
// records every request's per-stage latency partition into the node
// registry's Lifecycle. Empty when the node never completed a request.
func stageBreakdown(node *cluster.Node) string {
	return node.Tel.Lifecycle().TopStages(3)
}

// swapConfigs returns the paper's five configurations for single-server
// application tests, at the given scale.
func swapConfigs(s int64) []struct {
	Label string
	Cfg   cluster.Config
} {
	mem := int64(paperMem) / s
	big := int64(paperBigMem) / s
	swap := int64(paperSwap) / s
	return []struct {
		Label string
		Cfg   cluster.Config
	}{
		{"local-memory", cluster.Config{MemBytes: big, Swap: cluster.SwapNone}},
		{"hpbd", cluster.Config{MemBytes: mem, Swap: cluster.SwapHPBD, SwapBytes: swap, Servers: 1}},
		{"nbd-ipoib", cluster.Config{MemBytes: mem, Swap: cluster.SwapNBDIPoIB, SwapBytes: swap}},
		{"nbd-gige", cluster.Config{MemBytes: mem, Swap: cluster.SwapNBDGigE, SwapBytes: swap}},
		{"disk", cluster.Config{MemBytes: mem, Swap: cluster.SwapDisk, SwapBytes: swap}},
	}
}

// Fig5 reproduces the testswap execution-time comparison.
func Fig5(c Config) (*Result, error) {
	s := c.scale()
	res := &Result{
		ID:    "fig5",
		Title: fmt.Sprintf("Testswap execution time (1/%d scale)", s),
		Unit:  "s",
		PaperNote: "paper: local 5.8s, HPBD 8.4s (1.45x slower than memory, " +
			"2.2x faster than disk, 1.45x faster than NBD-GigE, 1.29x faster than NBD-IPoIB)",
	}
	for _, cfg := range swapConfigs(s) {
		data := int64(paperData) / s
		elapsed, _, err := measure(cfg.Cfg, c.Seed, func(sys *vm.System, _ *rand.Rand) runnable {
			return workload.NewTestswap(sys, data)
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", res.ID, cfg.Label, err)
		}
		res.Rows = append(res.Rows, Row{Label: cfg.Label, Value: elapsed.Seconds()})
	}
	return res, nil
}

// Fig7 reproduces the quick sort execution-time comparison.
func Fig7(c Config) (*Result, error) {
	s := c.scale()
	res := &Result{
		ID:    "fig7",
		Title: fmt.Sprintf("Quick sort execution time (1/%d scale)", s),
		Unit:  "s",
		PaperNote: "paper: local 94s, HPBD 138s (1.47x slower than memory, " +
			"4.5x faster than disk, 1.36x faster than NBD-GigE, 1.13x faster than NBD-IPoIB)",
	}
	elems := int(int64(paperQsortInt) / s)
	for _, cfg := range swapConfigs(s) {
		elapsed, _, err := measure(cfg.Cfg, c.Seed, func(sys *vm.System, rnd *rand.Rand) runnable {
			return workload.NewQuicksort(sys, "qsort", elems, rnd)
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", res.ID, cfg.Label, err)
		}
		res.Rows = append(res.Rows, Row{Label: cfg.Label, Value: elapsed.Seconds()})
	}
	return res, nil
}

// Fig8 reproduces the Barnes execution-time comparison. The body count is
// chosen so the footprint slightly exceeds local memory, as in the paper
// (516 MB observed against 512 MB local).
func Fig8(c Config) (*Result, error) {
	s := c.scale()
	res := &Result{
		ID:    "fig8",
		Title: fmt.Sprintf("Barnes execution time (1/%d scale)", s),
		Unit:  "s",
		PaperNote: "paper: same ordering as quick sort with smaller gaps " +
			"(footprint 516MB vs 512MB memory: light swapping)",
	}
	// Bodies sized so the measured footprint (222 B/body: the body record
	// plus ~1.5 octree cells of 96 B) sits just inside local memory but
	// above the kswapd watermarks, the regime the paper describes (516 MB
	// peak against 512 MB): reclaim churns lightly at the margins and
	// swapping stays non-intensive, which is why Fig. 8's gaps are small.
	// Unlike the sort, Barnes's hot set is its whole footprint, so even a
	// 1% overshoot would thrash; the paper's 516 MB peak was clearly not
	// 516 MB of uniformly hot pages.
	mem := int64(paperMem) / s
	bodies := int(float64(mem) * 0.992 / 222)
	for _, cfg := range swapConfigs(s) {
		elapsed, _, err := measure(cfg.Cfg, c.Seed, func(sys *vm.System, rnd *rand.Rand) runnable {
			return workload.NewBarnes(sys, "barnes", bodies, 2, rnd)
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", res.ID, cfg.Label, err)
		}
		res.Rows = append(res.Rows, Row{Label: cfg.Label, Value: elapsed.Seconds()})
	}
	return res, nil
}
