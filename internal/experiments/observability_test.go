package experiments

import (
	"bytes"
	"strings"
	"testing"

	"hpbd/internal/telemetry"
)

// breakdownOnce runs the scaled-down fig5 scenario and returns the node's
// critical-path breakdown table and the OpenMetrics exposition.
func breakdownOnce(t *testing.T, seed int64) (table, metrics string) {
	t.Helper()
	reg, err := TraceRun(Config{Scale: 256, Seed: seed}, 2)
	if err != nil {
		t.Fatal(err)
	}
	lc := reg.Lifecycle()
	if lc == nil {
		t.Fatal("HPBD device did not enable the lifecycle analyzer")
	}
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	return lc.BreakdownTable(), buf.String()
}

// TestBreakdownGolden is the critical-path analyzer's determinism
// regression: the per-stage breakdown of two identical-seed runs must be
// byte-identical, and the shares must describe an exact partition of the
// end-to-end time (the table always ends on the 100.00% row).
func TestBreakdownGolden(t *testing.T) {
	tab1, om1 := breakdownOnce(t, 42)
	tab2, om2 := breakdownOnce(t, 42)
	if tab1 != tab2 {
		t.Errorf("breakdown tables differ between identical-seed runs:\n--- run1\n%s\n--- run2\n%s", tab1, tab2)
	}
	if om1 != om2 {
		t.Errorf("OpenMetrics expositions differ between identical-seed runs")
	}
	for _, stage := range []string{"queue", "pool-wait", "credit-stall", "send", "rdma", "server-copy", "reply", "drain", "end-to-end"} {
		if !strings.Contains(tab1, stage) {
			t.Errorf("breakdown table missing stage %q:\n%s", stage, tab1)
		}
	}
	if !strings.Contains(tab1, "100.00%") {
		t.Errorf("breakdown table missing the exact-partition total row:\n%s", tab1)
	}
}

// TestSweepOpenMetricsLexes runs the fig5 scenario and feeds the
// registry's OpenMetrics exposition through a line-level check: every
// per-stage histogram family must appear with cumulative buckets and the
// exposition must end with the EOF marker.
func TestSweepOpenMetricsLexes(t *testing.T) {
	_, om := breakdownOnce(t, 42)
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Fatalf("exposition does not end with # EOF:\n...%s", om[max(0, len(om)-200):])
	}
	for s := telemetry.Stage(0); s < telemetry.NumStages; s++ {
		name := "req_stage_" + strings.ReplaceAll(s.String(), "-", "_") + "_seconds"
		if !strings.Contains(om, name+"_count") {
			t.Errorf("exposition missing per-stage histogram %s", name)
		}
	}
	if !strings.Contains(om, "req_e2e_seconds_count") {
		t.Errorf("exposition missing end-to-end histogram")
	}
	if !strings.Contains(om, `le="+Inf"`) {
		t.Errorf("exposition has no +Inf bucket")
	}
}

// TestSweepRowsCarryBreakdown checks the sweep runners annotate each row
// with the top-stage attribution.
func TestSweepRowsCarryBreakdown(t *testing.T) {
	res, err := SweepCredits(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !strings.Contains(row.Stat, "%") {
			t.Fatalf("row %s: no stage attribution in Stat %q", row.Label, row.Stat)
		}
	}
}
