package experiments

import (
	"strings"
	"testing"
)

// smallCfg runs experiments at 1/256 scale so the whole suite is fast in
// unit tests; ratio assertions are loose at this scale and tightened in
// the benchmark harness at the default 1/32 scale.
var smallCfg = Config{Scale: 256, Seed: 1}

func TestFig1OrderingAndShape(t *testing.T) {
	res := Fig1()
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	vals := map[string]float64{}
	for _, r := range res.Rows {
		vals[r.Label] = r.Value
	}
	for _, n := range []string{"4", "4096", "131072"} {
		mc, rd, ip, ge := vals["memcpy/"+n], vals["ib-rdma/"+n], vals["ipoib/"+n], vals["gige/"+n]
		if !(mc < rd && rd < ip && ip < ge) {
			t.Errorf("n=%s: ordering broken: %g %g %g %g", n, mc, rd, ip, ge)
		}
	}
}

func TestFig3RegistrationDominates(t *testing.T) {
	res := Fig3()
	vals := map[string]float64{}
	for _, r := range res.Rows {
		vals[r.Label] = r.Value
	}
	for _, n := range []string{"4096", "65536"} {
		if vals["register/"+n] <= vals["memcpy/"+n] {
			t.Errorf("n=%s: registration (%g) should exceed memcpy (%g)",
				n, vals["register/"+n], vals["memcpy/"+n])
		}
	}
}

func TestFig5ShapeAtSmallScale(t *testing.T) {
	res, err := Fig5(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	local, _ := res.Ratio("local-memory", "local-memory")
	_ = local
	for _, pair := range [][2]string{
		{"hpbd", "local-memory"},
		{"nbd-ipoib", "hpbd"},
		{"nbd-gige", "nbd-ipoib"},
		{"disk", "nbd-gige"},
	} {
		r, err := res.Ratio(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if r < 1.0 {
			t.Errorf("%s should be slower than %s (ratio %.2f)", pair[0], pair[1], r)
		}
	}
	// The headline: HPBD within ~2x of local memory, disk far behind it.
	if r, _ := res.Ratio("hpbd", "local-memory"); r > 2.2 {
		t.Errorf("hpbd/local = %.2f, want < 2.2", r)
	}
	if r, _ := res.Ratio("disk", "hpbd"); r < 1.5 {
		t.Errorf("disk/hpbd = %.2f, want > 1.5", r)
	}
}

func TestFig6RequestSizes(t *testing.T) {
	res, err := Fig6(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	var avg float64
	for _, r := range res.Rows {
		if r.Label == "average" {
			avg = r.Value
		}
	}
	// Paper: testswap requests cluster near 120 KB. At any scale the
	// merged swap-out requests must average at least ~64 KB.
	if avg < 64 {
		t.Errorf("average request size = %.1f KB, want >= 64", avg)
	}
}

func TestFig7ShapeAtSmallScale(t *testing.T) {
	res, err := Fig7(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := res.Ratio("hpbd", "local-memory"); r < 1.0 || r > 2.5 {
		t.Errorf("hpbd/local = %.2f, want within (1, 2.5)", r)
	}
	if r, _ := res.Ratio("disk", "hpbd"); r < 1.5 {
		t.Errorf("disk/hpbd = %.2f, want > 1.5", r)
	}
}

func TestFig10ServersSweepRuns(t *testing.T) {
	res, err := Fig10(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	// 16 servers must not be dramatically better than 1 (the paper shows
	// flat-to-slightly-worse).
	r, _ := res.Ratio("16-servers", "1-servers")
	if r < 0.8 {
		t.Errorf("16-servers/1-server = %.2f; expected no big speedup", r)
	}
}

func TestAblationRegistrationLoses(t *testing.T) {
	res, err := AblationRegistration(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := res.Ratio("register-fly", "pool-copy")
	if err != nil {
		t.Fatal(err)
	}
	if r <= 1.0 {
		t.Errorf("register-on-the-fly (%.2fx) should be slower than pool copy", r)
	}
}

func TestSweepCreditsShape(t *testing.T) {
	res, err := SweepCredits(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	one, _ := res.Ratio("credits-1", "credits-16")
	if one < 1.0 {
		t.Errorf("credits-1/credits-16 = %.2f; one credit should not be faster", one)
	}
}

func TestAblationHybridWinsAtLargeSizes(t *testing.T) {
	res, err := AblationHybrid(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := res.Ratio("hybrid/128K", "copy/128K")
	if err != nil {
		t.Fatal(err)
	}
	if r >= 1.0 {
		t.Errorf("hybrid/copy at 128K = %.3f; hybrid should beat copy-into-pool above the crossover", r)
	}
	// Below the threshold the hybrid device takes the pool path, so the
	// small sizes must not regress.
	small, err := res.Ratio("hybrid/4K", "copy/4K")
	if err != nil {
		t.Fatal(err)
	}
	if small > 1.01 {
		t.Errorf("hybrid/copy at 4K = %.3f; small requests should be unaffected", small)
	}
}

func TestAblationDoorbellReducesHostOverhead(t *testing.T) {
	res, err := AblationDoorbell(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := res.Ratio("batch-8", "batch-1")
	if err != nil {
		t.Fatal(err)
	}
	if r >= 1.0 {
		t.Errorf("batched/unbatched host overhead = %.3f; chaining should cut doorbell cost", r)
	}
}

func TestAblationODPBeatsPinnedCycle(t *testing.T) {
	res, err := AblationODP(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []string{"32K", "128K"} {
		r, err := res.Ratio("odp/"+size, "pinned/"+size)
		if err != nil {
			t.Fatal(err)
		}
		if r >= 1.0 {
			t.Errorf("odp/pinned at %s = %.3f; on-demand paging should beat the pin-down on a cold cycle", size, r)
		}
	}
}

func TestAblationMergeCutsWireOps(t *testing.T) {
	res, err := AblationMerge(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := res.Ratio("merge-8", "merge-off")
	if err != nil {
		t.Fatal(err)
	}
	if r >= 1.0 {
		t.Errorf("merge-8/merge-off = %.3f; merging a paced backlog should cut per-write latency", r)
	}
}

func TestAblationCrossoverAdaptiveWins(t *testing.T) {
	res, err := AblationCrossover(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := res.Ratio("adaptive", "static")
	if err != nil {
		t.Fatal(err)
	}
	if r >= 1.0 {
		t.Errorf("adaptive/static = %.3f; the controller should beat the static threshold on a 64K stream", r)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table1",
		"ablation-registration", "ablation-receiver", "ablation-striping", "ablation-poolsize",
		"ablation-hybrid", "ablation-doorbell",
		"ablation-odp", "ablation-merge", "ablation-crossover",
		"sweep-bandwidth", "sweep-credits", "sweep-readahead"}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("registry missing %s", id)
		}
	}
	names := Names()
	if names[0] != "fig1" {
		t.Errorf("Names()[0] = %s, want fig1", names[0])
	}
}

func TestFormat(t *testing.T) {
	res := &Result{ID: "x", Title: "T", Unit: "s",
		Rows: []Row{{Label: "a", Value: 1.5}, {Label: "bb", Value: 2, Stat: "note"}}}
	out := Format(res)
	for _, want := range []string{"== x: T", "a", "bb", "1.500 s", "[note]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}
