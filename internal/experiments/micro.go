package experiments

import (
	"fmt"

	"hpbd/internal/netmodel"
)

// Fig1 reproduces the latency comparison of memcpy, RDMA write, IPoIB and
// GigE for message sizes up to 128 K (paper Figure 1).
func Fig1() *Result {
	res := &Result{
		ID:    "fig1",
		Title: "One-way latency vs message size",
		Unit:  "us",
		PaperNote: "paper: RDMA tracks memcpy closely; IPoIB and GigE sit " +
			"an order of magnitude above for small messages and diverge with size",
	}
	mem := netmodel.DefaultMem()
	links := []netmodel.LinkModel{netmodel.IB4X(), netmodel.IPoIB(), netmodel.GigE()}
	for n := 4; n <= 128*1024; n *= 2 {
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("memcpy/%d", n),
			Value: mem.Memcpy(n).Micros(),
		})
		for _, l := range links {
			res.Rows = append(res.Rows, Row{
				Label: fmt.Sprintf("%s/%d", l.Name, n),
				Value: l.Latency(n, mem).Micros(),
			})
		}
	}
	return res
}

// Fig3 reproduces the memory registration vs memcpy cost comparison
// (paper Figure 3), the argument for the pre-registered pool design.
func Fig3() *Result {
	res := &Result{
		ID:    "fig3",
		Title: "Memory registration vs memcpy cost",
		Unit:  "us",
		PaperNote: "paper: registration is far costlier than copying " +
			"within the 4K-127K swap request range",
	}
	mem := netmodel.DefaultMem()
	for n := 4 * 1024; n <= 256*1024; n *= 2 {
		res.Rows = append(res.Rows,
			Row{Label: fmt.Sprintf("register/%d", n), Value: mem.Register(n).Micros()},
			Row{Label: fmt.Sprintf("memcpy/%d", n), Value: mem.Memcpy(n).Micros()},
		)
	}
	return res
}

// Table1 renders the paper's taxonomy of remote-memory systems.
func Table1() *Result {
	res := &Result{
		ID:        "table1",
		Title:     "Remote memory systems taxonomy (paper Table 1)",
		Unit:      "",
		PaperNote: "static classification, reproduced verbatim",
	}
	rows := []string{
		"COCA   | simulation     | global mgmt | -            | -      ",
		"PNR    | simulation     | global mgmt | -            | -      ",
		"JMNRM  | simulation     | global mgmt | -            | -      ",
		"NRAM   | implementation | local       | user level   | TCP/IP ",
		"NRD    | implementation | local       | kernel level | TCP/IP ",
		"RRMP   | implementation | local       | kernel level | TCP/IP ",
		"MOSIX  | implementation | global mgmt | kernel level | TCP/IP ",
		"GMM    | implementation | global mgmt | kernel level | UDP    ",
		"DoDo   | implementation | global mgmt | user level   | ULP    ",
		"HPBD   | implementation | local       | kernel level | ULP    ",
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, Row{Label: r})
	}
	return res
}
