package experiments

import (
	"fmt"
	"math/rand"

	"hpbd/internal/cluster"
	"hpbd/internal/sim"
	"hpbd/internal/vm"
	"hpbd/internal/workload"
)

// Fig6 reproduces the testswap request-size profile: the average request
// size within each cluster of requests (bursts separated by idle gaps),
// showing the ~120 KB swap-out requests the block layer builds.
func Fig6(c Config) (*Result, error) {
	s := c.scale()
	cfg := cluster.Config{
		MemBytes:    paperMem / s,
		Swap:        cluster.SwapHPBD,
		SwapBytes:   paperSwap / s,
		Servers:     1,
		LogRequests: true,
	}
	data := int64(paperData) / s
	var node *cluster.Node
	elapsed, node, err := measure(cfg, c.Seed, func(sys *vm.System, _ *rand.Rand) runnable {
		return workload.NewTestswap(sys, data)
	})
	if err != nil {
		return nil, err
	}
	_ = elapsed
	log := node.Queue.Stats().Log
	res := &Result{
		ID:        "fig6",
		Title:     fmt.Sprintf("Testswap average request size per request cluster (1/%d scale)", s),
		Unit:      "KB",
		PaperNote: "paper: testswap involves mostly ~120K requests",
	}
	if len(log) == 0 {
		return nil, fmt.Errorf("fig6: no requests logged")
	}
	// A "request cluster" is a burst of requests separated by >= 1 ms of
	// queue silence (kswapd reclaim batches).
	const gap = sim.Millisecond
	var cur []int
	var clusters [][]int
	last := log[0].At
	for _, r := range log {
		if r.At.Sub(last) >= gap && len(cur) > 0 {
			clusters = append(clusters, cur)
			cur = nil
		}
		cur = append(cur, r.Bytes)
		last = r.At
	}
	if len(cur) > 0 {
		clusters = append(clusters, cur)
	}
	// Report up to 24 evenly spaced clusters plus the global average.
	stride := len(clusters)/24 + 1
	for i := 0; i < len(clusters); i += stride {
		sum := 0
		for _, b := range clusters[i] {
			sum += b
		}
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("cluster-%d", i),
			Value: float64(sum) / float64(len(clusters[i])) / 1024,
			Stat:  fmt.Sprintf("%d reqs", len(clusters[i])),
		})
	}
	total, count := 0, 0
	for _, cl := range clusters {
		for _, b := range cl {
			total += b
			count++
		}
	}
	res.Rows = append(res.Rows, Row{
		Label: "average",
		Value: float64(total) / float64(count) / 1024,
		Stat:  fmt.Sprintf("%d requests in %d clusters", count, len(clusters)),
	})
	return res, nil
}
