package experiments

import (
	"fmt"
	"math/rand"

	"hpbd/internal/cluster"
	"hpbd/internal/faultsim"
	"hpbd/internal/health"
	"hpbd/internal/sim"
	"hpbd/internal/vm"
	"hpbd/internal/workload"
)

// testswapWorkload adapts testswap to measure's workload factory shape.
func testswapWorkload(data int64) func(*vm.System, *rand.Rand) runnable {
	return func(sys *vm.System, _ *rand.Rand) runnable {
		return workload.NewTestswap(sys, data)
	}
}

// HealthRun executes testswap over a multi-server HPBD node with the
// fleet health engine enabled and returns the node for its health
// surfaces (node.Health.Report, .TopTable, .Ring().WriteCSV, ...). When
// spec is non-empty the node is mirrored and the fault schedule replays
// against it — the "watch an incident happen" mode behind
// "hpbdctl health -spec ...". Servers defaults to 4 (2 per side when
// mirrored) and the same flags always produce the same bytes.
func HealthRun(c Config, servers int, spec string, hcfg health.Config) (*cluster.Node, error) {
	s := c.scale()
	cfg := cluster.Config{
		MemBytes:  paperMem / s,
		Swap:      cluster.SwapHPBD,
		SwapBytes: paperSwap / s,
		Servers:   servers,
		Health:    &hcfg,
	}
	if spec != "" {
		sched, err := faultsim.ParseSpec(spec)
		if err != nil {
			return nil, err
		}
		cfg.Mirror = true
		cfg.Faults = sched
		if cfg.Servers <= 0 {
			cfg.Servers = 2
		}
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 4
	}
	env := sim.NewEnv()
	node, err := cluster.Build(env, cfg)
	if err != nil {
		return nil, err
	}
	data := int64(paperData) / s
	w := workload.NewTestswap(node.VM, data)
	var runErr error
	env.Go("workload", func(p *sim.Proc) {
		node.Ready.Wait(p)
		runErr = w.Run(p)
	})
	env.Run()
	env.Close()
	if runErr != nil {
		return node, fmt.Errorf("health workload: %w", runErr)
	}
	return node, nil
}

// HealthTopRun executes testswap over an elastic node that grows 2 -> 4
// servers mid-run, with the health engine sampling throughout, and
// returns the node. Its TopTable shows the load moving between placement
// epochs — the "hpbdctl top" scenario.
func HealthTopRun(c Config, servers int, hcfg health.Config) (*cluster.Node, error) {
	if servers <= 0 {
		servers = 2
	}
	s := c.scale()
	cfg := cluster.Config{
		MemBytes:  paperMem / s,
		Swap:      cluster.SwapHPBD,
		SwapBytes: paperSwap / s,
		Servers:   servers,
		Elastic:   true,
		Health:    &hcfg,
	}
	env := sim.NewEnv()
	node, err := cluster.Build(env, cfg)
	if err != nil {
		return nil, err
	}
	area := cfg.SwapBytes / int64(servers)
	data := int64(paperData) / s
	w := workload.NewTestswap(node.VM, data)
	var runErr, growErr error
	env.Go("workload", func(p *sim.Proc) {
		node.Ready.Wait(p)
		runErr = w.Run(p)
	})
	env.Go("membership", func(p *sim.Proc) {
		node.Ready.Wait(p)
		p.Sleep(2 * sim.Millisecond)
		for i := 0; i < servers; i++ {
			if _, err := node.GrowFleet(p, area); err != nil {
				growErr = fmt.Errorf("grow: %w", err)
				return
			}
		}
	})
	env.Run()
	env.Close()
	if runErr != nil {
		return node, fmt.Errorf("top workload: %w", runErr)
	}
	if growErr != nil {
		return node, growErr
	}
	return node, nil
}

// AblationHealth measures what the health engine costs the workload it
// watches: testswap on a two-server node with health off, on at the
// default 200us sampling interval, and on at an aggressive 50us. The
// sampler only reads the registry, so the virtual elapsed time must not
// move at all — the rows exist to prove that, and the Stat column
// records how much sampling actually happened.
func AblationHealth(c Config) (*Result, error) {
	s := c.scale()
	res := &Result{
		ID:    "ablation-health",
		Title: fmt.Sprintf("Health-engine overhead on testswap (1/%d scale)", s),
		Unit:  "s",
		PaperNote: "extension: the engine samples the registry in sim time, so " +
			"enabling it must not move the workload — rows differ only in Stat",
	}
	base := cluster.Config{
		MemBytes:  paperMem / s,
		Swap:      cluster.SwapHPBD,
		SwapBytes: paperSwap / s,
		Servers:   2,
	}
	data := int64(paperData) / s
	mk := func(label string, hcfg *health.Config) error {
		cfg := base
		cfg.Health = hcfg
		elapsed, node, err := measure(cfg, c.Seed, testswapWorkload(data))
		if err != nil {
			return fmt.Errorf("%s/%s: %w", res.ID, label, err)
		}
		p50, p99 := swapLatency(node)
		row := Row{Label: label, Value: elapsed.Seconds(), P50ms: p50, P99ms: p99}
		if node.Health != nil {
			row.Stat = fmt.Sprintf("samples=%d alerts=%d",
				node.Tel.Counter("health.samples").Value(),
				node.Tel.Counter("health.alerts").Value())
			row.SLO = node.Health.SLOSummary()
		} else {
			row.Stat = "health off"
		}
		res.Rows = append(res.Rows, row)
		return nil
	}
	if err := mk("health-off", nil); err != nil {
		return nil, err
	}
	if err := mk("health-200us", &health.Config{}); err != nil {
		return nil, err
	}
	if err := mk("health-50us", &health.Config{SampleInterval: 50 * sim.Microsecond}); err != nil {
		return nil, err
	}
	return res, nil
}
