package experiments

import (
	"fmt"
	"math/rand"

	"hpbd/internal/cluster"
	"hpbd/internal/hpbd"
	"hpbd/internal/vm"
	"hpbd/internal/workload"
)

// (cluster is used by the pool-size sweep's two-instance configuration.)

// hpbdConfig builds the standard single-client HPBD node config at scale.
func hpbdConfig(s int64, servers int, mutate func(*hpbd.ClientConfig)) cluster.Config {
	ccfg := hpbd.DefaultClientConfig()
	if mutate != nil {
		mutate(&ccfg)
	}
	return cluster.Config{
		MemBytes:  paperMem / s,
		Swap:      cluster.SwapHPBD,
		SwapBytes: paperSwap / s,
		Servers:   servers,
		Client:    &ccfg,
	}
}

// AblationRegistration compares the paper's copy-into-pool design against
// registering buffers on the fly (§4.1 / Figure 3's argument). The quick
// sort is the sensitive workload: its swap-ins are page_cluster-sized
// (~32 K), deep inside the range where Fig. 3 shows registration losing.
func AblationRegistration(c Config) (*Result, error) {
	s := c.scale()
	res := &Result{
		ID:        "ablation-registration",
		Title:     fmt.Sprintf("Quick sort: pool copy vs register-on-the-fly (1/%d scale)", s),
		Unit:      "s",
		PaperNote: "design argument §4.1: registration on the critical path should lose",
	}
	elems := int(int64(paperQsortInt) / s)
	cases := []struct {
		label  string
		mutate func(*hpbd.ClientConfig)
	}{
		{"pool-copy", nil},
		{"register-fly", func(cc *hpbd.ClientConfig) { cc.RegisterOnTheFly = true }},
	}
	for _, cs := range cases {
		elapsed, _, err := measure(hpbdConfig(s, 1, cs.mutate), c.Seed, func(sys *vm.System, rnd *rand.Rand) runnable {
			return workload.NewQuicksort(sys, "qsort", elems, rnd)
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", res.ID, cs.label, err)
		}
		res.Rows = append(res.Rows, Row{Label: cs.label, Value: elapsed.Seconds()})
	}
	return res, nil
}

// AblationReceiver compares the event-driven receiver against a
// busy-polling receiver (§4.2.3).
func AblationReceiver(c Config) (*Result, error) {
	s := c.scale()
	res := &Result{
		ID:        "ablation-receiver",
		Title:     fmt.Sprintf("Quick sort: event-driven vs polling receiver (1/%d scale)", s),
		Unit:      "s",
		PaperNote: "design argument §4.2.3: events cost a wakeup but free the CPU",
	}
	elems := int(int64(paperQsortInt) / s)
	cases := []struct {
		label  string
		mutate func(*hpbd.ClientConfig)
	}{
		{"event-driven", nil},
		{"polling", func(cc *hpbd.ClientConfig) { cc.PollingReceiver = true }},
	}
	for _, cs := range cases {
		elapsed, _, err := measure(hpbdConfig(s, 1, cs.mutate), c.Seed, func(sys *vm.System, rnd *rand.Rand) runnable {
			return workload.NewQuicksort(sys, "qsort", elems, rnd)
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", res.ID, cs.label, err)
		}
		res.Rows = append(res.Rows, Row{Label: cs.label, Value: elapsed.Seconds()})
	}
	return res, nil
}

// AblationStriping compares the paper's blocked distribution against
// 64 KB striping over 4 servers (§4.2.5).
func AblationStriping(c Config) (*Result, error) {
	s := c.scale()
	res := &Result{
		ID:        "ablation-striping",
		Title:     fmt.Sprintf("Quick sort, 4 servers: blocked vs 64K-striped layout (1/%d scale)", s),
		Unit:      "s",
		PaperNote: "design argument §4.2.5: striping splits <=128K requests for little gain",
	}
	elems := int(int64(paperQsortInt) / s)
	cases := []struct {
		label  string
		mutate func(*hpbd.ClientConfig)
	}{
		{"blocked", nil},
		{"striped-64k", func(cc *hpbd.ClientConfig) { cc.StripeBytes = 64 * 1024 }},
	}
	for _, cs := range cases {
		elapsed, node, err := measure(hpbdConfig(s, 4, cs.mutate), c.Seed, func(sys *vm.System, rnd *rand.Rand) runnable {
			return workload.NewQuicksort(sys, "qsort", elems, rnd)
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", res.ID, cs.label, err)
		}
		res.Rows = append(res.Rows, Row{
			Label: cs.label,
			Value: elapsed.Seconds(),
			Stat:  fmt.Sprintf("splits %d", node.HPBD.Stats().Splits),
		})
	}
	return res, nil
}

// AblationPoolSize sweeps the registration pool size under the
// two-concurrent-sorts workload, where faults from both instances plus
// reclaim write-back keep several requests in flight and a small pool
// forces the allocation wait queue to serialize them (§4.2.2).
func AblationPoolSize(c Config) (*Result, error) {
	s := c.scale()
	res := &Result{
		ID:        "ablation-poolsize",
		Title:     fmt.Sprintf("Two quick sorts vs registration pool size (1/%d scale)", s),
		Unit:      "s",
		PaperNote: "paper fixes the pool at 1MB; small pools stall on the wait queue",
	}
	elems := int(int64(paperQsortInt) / s / 2)
	for _, kb := range []int{128, 256, 512, 1024, 4096} {
		ccfg := hpbd.DefaultClientConfig()
		ccfg.PoolBytes = kb * 1024
		cfg := cluster.Config{
			MemBytes:  paperMem / s / 2,
			Swap:      cluster.SwapHPBD,
			SwapBytes: paperSwap / s,
			Servers:   2,
			Client:    &ccfg,
		}
		times, node, err := measureTwoOn(cfg, c.Seed, elems)
		if err != nil {
			return nil, fmt.Errorf("%s/%dKB: %w", res.ID, kb, err)
		}
		avg := (times[0] + times[1]) / 2
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("pool-%dKB", kb),
			Value: avg.Seconds(),
			Stat:  fmt.Sprintf("alloc waits %d", node.HPBD.Pool().AllocWaits),
		})
	}
	return res, nil
}
