package experiments

import (
	"fmt"
	"math/rand"

	"hpbd/internal/cluster"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
	"hpbd/internal/vm"
	"hpbd/internal/workload"
)

// traceMeasure is measure with event tracing enabled: it builds a
// multi-server HPBD node around a tracing registry, runs the workload,
// and returns the registry for trace/metrics export.
func traceMeasure(c Config, servers int, mk func(*vm.System, *rand.Rand) runnable) (*telemetry.Registry, error) {
	if servers <= 0 {
		servers = 4
	}
	s := c.scale()
	env := sim.NewEnv()
	reg := telemetry.New(env)
	reg.EnableTracing()
	cfg := cluster.Config{
		MemBytes:  paperMem / s,
		Swap:      cluster.SwapHPBD,
		SwapBytes: paperSwap / s,
		Servers:   servers,
		Telemetry: reg,
	}
	node, err := cluster.Build(env, cfg)
	if err != nil {
		return nil, err
	}
	w := mk(node.VM, rand.New(rand.NewSource(c.Seed)))
	var runErr error
	env.Go("workload", func(p *sim.Proc) {
		node.Ready.Wait(p)
		runErr = w.Run(p)
	})
	env.Run()
	env.Close()
	if runErr != nil {
		return reg, fmt.Errorf("traced workload: %w", runErr)
	}
	return reg, nil
}

// TraceRun executes the stock testswap workload over a multi-server HPBD
// node with event tracing enabled and returns the node's telemetry
// registry. Callers render the registry's tracer as Chrome trace-event
// JSON (Tracer.WriteJSON) and its metrics as a table (Registry.Summary).
// Servers defaults to 4 when <= 0, matching the paper's striped setup.
func TraceRun(c Config, servers int) (*telemetry.Registry, error) {
	s := c.scale()
	data := int64(paperData) / s
	return traceMeasure(c, servers, func(sys *vm.System, _ *rand.Rand) runnable {
		return workload.NewTestswap(sys, data)
	})
}

// TraceRunQuicksort is TraceRun with the quick-sort workload, whose
// random access pattern exercises readahead and swap-cache behaviour the
// sequential testswap does not.
func TraceRunQuicksort(c Config, servers int) (*telemetry.Registry, error) {
	s := c.scale()
	elems := int(int64(paperQsortInt) / s)
	return traceMeasure(c, servers, func(sys *vm.System, rnd *rand.Rand) runnable {
		return workload.NewQuicksort(sys, "qsort", elems, rnd)
	})
}
