package experiments

import (
	"fmt"
	"math/rand"

	"hpbd/internal/cluster"
	"hpbd/internal/faultsim"
	"hpbd/internal/health"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
	"hpbd/internal/vm"
	"hpbd/internal/workload"
)

// TraceRunFaults executes testswap over a mirrored HPBD node (servers
// per side) while replaying the given fault spec, with event tracing
// enabled. The returned registry holds the trace — recovery shows up as
// faultsim/link-failed/retry instants interleaved with the request
// lifecycle — plus the recovery counters. Spec syntax is
// faultsim.ParseSpec's, e.g. "crash@8ms=mem0,delay@2ms+4ms~200us=mem1".
func TraceRunFaults(c Config, servers int, spec string) (*telemetry.Registry, error) {
	if servers <= 0 {
		servers = 1
	}
	sched, err := faultsim.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	s := c.scale()
	env := sim.NewEnv()
	reg := telemetry.New(env)
	reg.EnableTracing()
	cfg := cluster.Config{
		MemBytes:  paperMem / s,
		Swap:      cluster.SwapHPBD,
		SwapBytes: paperSwap / s,
		Servers:   servers,
		Mirror:    true,
		Faults:    sched,
		Telemetry: reg,
	}
	node, err := cluster.Build(env, cfg)
	if err != nil {
		return nil, err
	}
	data := int64(paperData) / s
	w := workload.NewTestswap(node.VM, data)
	var runErr error
	env.Go("workload", func(p *sim.Proc) {
		node.Ready.Wait(p)
		runErr = w.Run(p)
	})
	env.Run()
	env.Close()
	if runErr != nil {
		return reg, fmt.Errorf("faulted workload: %w", runErr)
	}
	return reg, nil
}

// recoveryStat summarizes a node's recovery activity for a result row.
func recoveryStat(node *cluster.Node) string {
	t := node.Tel
	s := fmt.Sprintf("retries=%d links-lost=%d fallbacks=%d",
		t.Counter("hpbd.retries").Value(),
		t.Counter("hpbd.link_failures").Value(),
		t.Counter("hpbd.fallbacks").Value())
	if node.Mirror != nil {
		ms := node.Mirror.Stats()
		s += fmt.Sprintf(" failovers=%d degraded-writes=%d", ms.ReadFailovers, ms.DegradedWrites)
	}
	return s
}

// SweepDegraded measures degraded-mode cost: testswap on a mirrored
// two-server node, healthy versus with one server crashed halfway
// through the healthy run's virtual duration, plus the last-resort
// local-disk fallback on a single-server device. The crash instant is
// derived from the healthy run (half its virtual time), so the sweep is
// fully deterministic without wall-clock input.
func SweepDegraded(c Config) (*Result, error) {
	s := c.scale()
	res := &Result{
		ID:    "sweep-degraded",
		Title: fmt.Sprintf("Testswap under server loss (1/%d scale)", s),
		Unit:  "s",
		PaperNote: "extension: the paper defers reliability to mirroring " +
			"(Network RamDisk) — this measures what the failover costs",
	}
	data := int64(paperData) / s
	mkWorkload := func(sys *vm.System, _ *rand.Rand) runnable {
		return workload.NewTestswap(sys, data)
	}
	// The health engine rides along (it only reads the registry, so the
	// measured times do not move) and its SLO-compliance summary becomes
	// an extra column: degraded modes should show the latency objective
	// eating budget while the healthy run stays clean.
	base := cluster.Config{
		MemBytes:  paperMem / s,
		Swap:      cluster.SwapHPBD,
		SwapBytes: paperSwap / s,
		Servers:   1,
		Mirror:    true,
		Health:    &health.Config{},
	}

	healthy, node, err := measure(base, c.Seed, mkWorkload)
	if err != nil {
		return nil, fmt.Errorf("%s/healthy: %w", res.ID, err)
	}
	p50, p99 := swapLatency(node)
	res.Rows = append(res.Rows, Row{
		Label: "mirrored-healthy", Value: healthy.Seconds(),
		P50ms: p50, P99ms: p99, Stat: recoveryStat(node),
		SLO: node.Health.SLOSummary(),
	})

	crashAt := sim.Duration(healthy) / 2
	crashed := base
	sched := faultsim.Schedule{Faults: []faultsim.Fault{
		{At: crashAt, Kind: faultsim.KindCrash, Target: "mem0"},
	}}
	crashed.Faults = &sched
	elapsed, node, err := measure(crashed, c.Seed, mkWorkload)
	if err != nil {
		return nil, fmt.Errorf("%s/crash: %w", res.ID, err)
	}
	p50, p99 = swapLatency(node)
	res.Rows = append(res.Rows, Row{
		Label: "mirrored-crash-mid-run", Value: elapsed.Seconds(),
		P50ms: p50, P99ms: p99, Stat: recoveryStat(node),
		SLO: node.Health.SLOSummary(),
	})

	fb := base
	fb.Mirror = false
	fb.FallbackDisk = true
	fb.Faults = &faultsim.Schedule{Faults: []faultsim.Fault{
		{At: crashAt, Kind: faultsim.KindCrash, Target: "mem0"},
	}}
	elapsed, node, err = measure(fb, c.Seed, mkWorkload)
	if err != nil {
		return nil, fmt.Errorf("%s/fallback: %w", res.ID, err)
	}
	p50, p99 = swapLatency(node)
	res.Rows = append(res.Rows, Row{
		Label: "fallback-disk-crash", Value: elapsed.Seconds(),
		P50ms: p50, P99ms: p99, Stat: recoveryStat(node),
		SLO: node.Health.SLOSummary(),
	})
	return res, nil
}
