package experiments

import (
	"fmt"
	"math/rand"

	"hpbd/internal/cluster"
	"hpbd/internal/sim"
	"hpbd/internal/vm"
	"hpbd/internal/workload"
)

// measureTwoOn runs two concurrent quick sort instances on one node (the
// paper's dual-processor contention scenario) and returns each instance's
// execution time plus the node for stats inspection.
func measureTwoOn(ccfg cluster.Config, seed int64, elems int) ([2]sim.Duration, *cluster.Node, error) {
	env := sim.NewEnv()
	node, err := cluster.Build(env, ccfg)
	if err != nil {
		return [2]sim.Duration{}, nil, err
	}
	var times [2]sim.Duration
	var errs [2]error
	for k := 0; k < 2; k++ {
		k := k
		q := workload.NewQuicksort(node.VM, fmt.Sprintf("qsort%d", k), elems,
			rand.New(rand.NewSource(seed+int64(k))))
		env.Go(fmt.Sprintf("inst%d", k), func(p *sim.Proc) {
			node.Ready.Wait(p)
			t0 := p.Now()
			errs[k] = q.Run(p)
			times[k] = p.Now().Sub(t0)
		})
	}
	env.Run()
	env.Close()
	for k := 0; k < 2; k++ {
		if errs[k] != nil {
			return times, node, fmt.Errorf("instance %d: %w", k, errs[k])
		}
	}
	return times, node, nil
}

// Fig9 reproduces the two-concurrent-quick-sorts experiment: execution
// time with all of memory, with 50% and 25% of it under HPBD multi-server
// swap, and with disk swap.
func Fig9(c Config) (*Result, error) {
	s := c.scale()
	res := &Result{
		ID:    "fig9",
		Title: fmt.Sprintf("Two concurrent quick sorts (1/%d scale)", s),
		Unit:  "s",
		PaperNote: "paper: HPBD 1.7x slower than local memory at 50% memory, " +
			"2.5x at 25%; disk 36x",
	}
	elems := int(int64(paperQsortInt) / s)
	// Paper setup: each memory server exports a 512 MB area.
	serverArea := int64(512<<20) / s
	swap := 5 * serverArea
	cases := []struct {
		label string
		cfg   cluster.Config
	}{
		{"local-memory", cluster.Config{
			MemBytes: 2*paperData/s + 2*paperData/s/8, Swap: cluster.SwapNone}},
		{"hpbd-50%", cluster.Config{
			MemBytes: paperData / s, Swap: cluster.SwapHPBD, SwapBytes: swap, Servers: 5}},
		{"hpbd-25%", cluster.Config{
			MemBytes: paperData / s / 2, Swap: cluster.SwapHPBD, SwapBytes: swap, Servers: 5}},
		{"disk-25%", cluster.Config{
			MemBytes: paperData / s / 2, Swap: cluster.SwapDisk, SwapBytes: swap}},
	}
	for _, cs := range cases {
		times, _, err := measureTwoOn(cs.cfg, c.Seed, elems)
		if err != nil {
			return nil, fmt.Errorf("fig9/%s: %w", cs.label, err)
		}
		avg := (times[0] + times[1]) / 2
		res.Rows = append(res.Rows, Row{
			Label: cs.label,
			Value: avg.Seconds(),
			Stat:  fmt.Sprintf("inst0 %.2fs, inst1 %.2fs", times[0].Seconds(), times[1].Seconds()),
		})
	}
	return res, nil
}

// Fig10 reproduces the quick sort server sweep: execution time with the
// swap area distributed over 1-16 memory servers.
func Fig10(c Config) (*Result, error) {
	s := c.scale()
	res := &Result{
		ID:    "fig10",
		Title: fmt.Sprintf("Quick sort with multiple servers (1/%d scale)", s),
		Unit:  "s",
		PaperNote: "paper: flat up to 8 servers, some degradation at 16 " +
			"(HCA multi-QP processing)",
	}
	elems := int(int64(paperQsortInt) / s)
	for _, servers := range []int{1, 2, 4, 8, 16} {
		cfg := cluster.Config{
			MemBytes:  paperMem / s,
			Swap:      cluster.SwapHPBD,
			SwapBytes: paperSwap / s,
			Servers:   servers,
		}
		elapsed, _, err := measure(cfg, c.Seed, func(sys *vm.System, rnd *rand.Rand) runnable {
			return workload.NewQuicksort(sys, "qsort", elems, rnd)
		})
		if err != nil {
			return nil, fmt.Errorf("fig10/%d: %w", servers, err)
		}
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("%d-servers", servers),
			Value: elapsed.Seconds(),
		})
	}
	return res, nil
}
