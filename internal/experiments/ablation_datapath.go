package experiments

import (
	"fmt"

	"hpbd/internal/blockdev"
	"hpbd/internal/hpbd"
	"hpbd/internal/ib"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
)

// datapathRig drives an HPBD device directly through the block queue
// (no VM on top), which is what the data-path ablations need: the copy vs
// register decision and the doorbell cost live entirely below the VM.
type datapathRig struct {
	env     *sim.Env
	dev     *hpbd.Device
	servers []*hpbd.Server
	queue   *blockdev.Queue
}

func newDatapathRig(ibcfg ib.Config, ccfg hpbd.ClientConfig, scfg func(int64) hpbd.ServerConfig, servers int, areaBytes int64) (*datapathRig, error) {
	env := sim.NewEnv()
	f := ib.NewFabric(env, ibcfg)
	dev := hpbd.NewDevice(f, "hpbd0", ccfg)
	r := &datapathRig{env: env, dev: dev}
	for i := 0; i < servers; i++ {
		srv := hpbd.NewServer(f, fmt.Sprintf("mem%d", i), scfg(areaBytes))
		if err := dev.ConnectServer(srv, areaBytes); err != nil {
			return nil, err
		}
		r.servers = append(r.servers, srv)
	}
	r.queue = blockdev.NewQueue(env, netmodel.DefaultHost(), dev)
	return r, nil
}

// run executes fn as the rig's only workload process and returns the
// virtual time it took.
func (r *datapathRig) run(fn func(p *sim.Proc) error) (sim.Duration, error) {
	var elapsed sim.Duration
	var err error
	r.env.Go("workload", func(p *sim.Proc) {
		t0 := p.Now()
		err = fn(p)
		elapsed = p.Now().Sub(t0)
	})
	r.env.Run()
	r.env.Close()
	return elapsed, err
}

// AblationHybrid compares the paper's copy-into-pool data path against the
// hybrid path that registers large payloads on the fly through a reusable
// MR cache. Sequential round trips expose the client-side copy, which
// pipelined throughput hides behind the wire time; the hybrid win should
// appear at 128 K (above the Fig. 3 crossover) and nowhere below it.
func AblationHybrid(c Config) (*Result, error) {
	res := &Result{
		ID:    "ablation-hybrid",
		Title: "Sequential request latency: copy-into-pool vs hybrid copy/register",
		Unit:  "us",
		PaperNote: "extension of §4.1: with MR reuse the Fig. 3 crossover drops " +
			"below 128K, so the largest swap requests should favor registration",
	}
	const reps = 16
	for _, mode := range []struct {
		label  string
		hybrid bool
	}{{"copy", false}, {"hybrid", true}} {
		for _, size := range []int{4 << 10, 32 << 10, 64 << 10, 128 << 10} {
			ccfg := hpbd.DefaultClientConfig()
			ccfg.HybridDataPath = mode.hybrid
			rig, err := newDatapathRig(ib.DefaultConfig(), ccfg, hpbd.DefaultServerConfig, 1, 8<<20)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", res.ID, mode.label, err)
			}
			data := make([]byte, size)
			elapsed, err := rig.run(func(p *sim.Proc) error {
				for i := 0; i < reps; i++ {
					off := int64(i*size) / blockdev.SectorSize
					w, serr := rig.queue.Submit(true, off, data)
					if serr != nil {
						return serr
					}
					rig.queue.Unplug()
					if werr := w.Wait(p); werr != nil {
						return werr
					}
					rd, serr := rig.queue.Submit(false, off, data)
					if serr != nil {
						return serr
					}
					rig.queue.Unplug()
					if rerr := rd.Wait(p); rerr != nil {
						return rerr
					}
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s/%d: %w", res.ID, mode.label, size, err)
			}
			st := rig.dev.Stats()
			row := Row{
				Label: fmt.Sprintf("%s/%dK", mode.label, size/1024),
				Value: elapsed.Micros() / (2 * reps),
			}
			if mode.hybrid {
				row.Stat = fmt.Sprintf("large %d", st.HybridLarge)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// AblationDoorbell measures the host CPU spent ringing doorbells with and
// without chained submission, under a burst of small writes that keeps the
// credit window full (which is what builds client-side chains) and all
// four server workers busy (which builds server-side chains).
func AblationDoorbell(c Config) (*Result, error) {
	res := &Result{
		ID:    "ablation-doorbell",
		Title: "Doorbell host overhead: per-WQE posts vs chained submission",
		Unit:  "us",
		PaperNote: "extension of §4.2: one doorbell per chain cuts per-request " +
			"host cost; the wire time is unchanged",
	}
	const (
		writes = 256
		size   = 4 << 10
	)
	for _, batch := range []int{1, 8} {
		ibcfg := ib.DefaultConfig()
		ibcfg.PerDoorbell = ibcfg.PerWQE
		ccfg := hpbd.DefaultClientConfig()
		ccfg.Credits = 8
		ccfg.DoorbellBatch = batch
		scfg := func(area int64) hpbd.ServerConfig {
			sc := hpbd.DefaultServerConfig(area)
			sc.DoorbellBatch = batch
			return sc
		}
		rig, err := newDatapathRig(ibcfg, ccfg, scfg, 1, 8<<20)
		if err != nil {
			return nil, fmt.Errorf("%s/batch-%d: %w", res.ID, batch, err)
		}
		data := make([]byte, size)
		// Stride double the request size so the block queue cannot merge
		// neighbors back into 128K requests: the burst must reach the
		// driver as `writes` individual small requests.
		stride := int64(2*size) / blockdev.SectorSize
		elapsed, err := rig.run(func(p *sim.Proc) error {
			ios := make([]*blockdev.IO, 0, writes)
			for i := 0; i < writes; i++ {
				w, serr := rig.queue.Submit(true, int64(i)*stride, data)
				if serr != nil {
					return serr
				}
				ios = append(ios, w)
			}
			rig.queue.Unplug()
			for _, w := range ios {
				if werr := w.Wait(p); werr != nil {
					return werr
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s/batch-%d: %w", res.ID, batch, err)
		}
		st := rig.dev.Stats()
		doorbells := st.Doorbells
		for _, srv := range rig.servers {
			doorbells += srv.Stats().Doorbells
		}
		overhead := sim.Duration(doorbells) * ibcfg.PerDoorbell
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("batch-%d", batch),
			Value: overhead.Micros() / float64(st.PhysReqs),
			Stat: fmt.Sprintf("doorbells %d reqs %d elapsed %.3fms",
				doorbells, st.PhysReqs, elapsed.Seconds()*1e3),
		})
	}
	return res, nil
}
