package experiments

import (
	"fmt"

	"hpbd/internal/blockdev"
	"hpbd/internal/hpbd"
	"hpbd/internal/ib"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// AblationODP compares pinned registration against on-demand paging on
// the register-transfer-deregister cycle every cache-missing large request
// pays. Sequential cycles put the register path on the critical path
// (pipelined throughput hides it behind the wire — the hybrid device's MR
// cache exists for exactly that reason): pinned mode pays the full
// Figure 3 pin-down before the first byte moves, ODP mode starts the wire
// almost immediately and pays bounded first-touch faults instead.
func AblationODP(c Config) (*Result, error) {
	res := &Result{
		ID:    "ablation-odp",
		Title: "Register-transfer-deregister cycle: pinned MRs vs on-demand paging",
		Unit:  "us",
		PaperNote: "extension of §4.1: ODP removes the pin-down from the register " +
			"path, so cache-missing large requests stop paying Fig. 3 prices",
	}
	const reps = 32
	for _, mode := range []struct {
		label string
		odp   bool
	}{{"pinned", false}, {"odp", true}} {
		for _, size := range []int{32 << 10, 128 << 10} {
			env := sim.NewEnv()
			icfg := ib.DefaultConfig()
			reg := telemetry.New(env)
			icfg.Telemetry = reg
			f := ib.NewFabric(env, icfg)
			cli, srv := f.NewHCA("cli"), f.NewHCA("srv")
			sendCQ, recvCQ := cli.CreateCQ("cli-send"), cli.CreateCQ("cli-recv")
			qp := cli.CreateQP(sendCQ, recvCQ)
			ib.Connect(qp, srv.CreateQP(srv.CreateCQ("srv-send"), srv.CreateCQ("srv-recv")))
			dst := srv.RegisterMRAtSetup(make([]byte, size))
			data := make([]byte, size)
			var elapsed sim.Duration
			var runErr error
			env.Go("cycle", func(p *sim.Proc) {
				start := p.Now()
				for i := 0; i < reps; i++ {
					var mr *ib.MR
					if mode.odp {
						mr = cli.RegisterODP(p, data)
					} else {
						mr = cli.RegisterMR(p, data)
					}
					err := qp.PostSend(p, ib.SendWR{
						ID: uint64(i), Op: ib.OpRDMAWrite,
						Local:     ib.Segment{MR: mr, Off: 0, Len: size},
						RemoteKey: dst.RKey,
					})
					if err != nil {
						runErr = err
						return
					}
					if e := sendCQ.WaitPoll(p); e.Status != ib.StatusSuccess {
						runErr = fmt.Errorf("write %d: %v", i, e.Status)
						return
					}
					cli.DeregisterMR(p, mr)
				}
				elapsed = p.Now().Sub(start)
			})
			env.Run()
			env.Close()
			if runErr != nil {
				return nil, fmt.Errorf("%s/%s/%d: %w", res.ID, mode.label, size, runErr)
			}
			res.Rows = append(res.Rows, Row{
				Label: fmt.Sprintf("%s/%dK", mode.label, size/1024),
				Value: elapsed.Micros() / reps,
				Stat:  fmt.Sprintf("faults %d", reg.Counter("odp.faults").Value()),
			})
		}
	}
	return res, nil
}

// AblationMerge compares one-WR-per-request issue against adjacent-WR
// merging under a backlog of contiguous maximum-size requests. The merged
// mode folds runs of block-layer requests into single carrier WRs: one
// credit, one WQE, one server store op per run instead of per request,
// with the payload gathered through the HCA instead of copied.
func AblationMerge(c Config) (*Result, error) {
	res := &Result{
		ID:    "ablation-merge",
		Title: "Swap-out backlog: per-request WRs vs adjacent-WR merging",
		Unit:  "us",
		PaperNote: "beyond §4.2: the block elevator stops at the 128K request " +
			"bound; merging adjacent requests at the driver recovers the rest",
	}
	const (
		writes = 64
		size   = 4 << 10
		// Submission pacing just above the block layer's per-request
		// dispatch cost: each page reaches the driver as its own request
		// (the elevator merges only what is pending together), leaving the
		// driver-level merge window as the only coalescing stage — the
		// paced trickle a swap-out stream produces under memory pressure.
		pace = 10 * sim.Microsecond
	)
	for _, mode := range []struct {
		label  string
		window int
	}{{"merge-off", 1}, {"merge-8", 8}} {
		ccfg := hpbd.DefaultClientConfig()
		ccfg.Credits = 2 // tight window: the backlog is what builds runs
		ccfg.MergeWindow = mode.window
		rig, err := newDatapathRig(ib.DefaultConfig(), ccfg, hpbd.DefaultServerConfig, 1, 64<<20)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", res.ID, mode.label, err)
		}
		data := make([]byte, size)
		elapsed, err := rig.run(func(p *sim.Proc) error {
			ios := make([]*blockdev.IO, 0, writes)
			for i := 0; i < writes; i++ {
				w, serr := rig.queue.Submit(true, int64(i*size)/blockdev.SectorSize, data)
				if serr != nil {
					return serr
				}
				ios = append(ios, w)
				rig.queue.Unplug()
				p.Sleep(pace)
			}
			for _, w := range ios {
				if werr := w.Wait(p); werr != nil {
					return werr
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", res.ID, mode.label, err)
		}
		res.Rows = append(res.Rows, Row{
			Label: mode.label,
			Value: elapsed.Micros() / writes,
			Stat:  fmt.Sprintf("wire ops %d", rig.servers[0].Stats().Writes),
		})
	}
	return res, nil
}

// AblationCrossover compares the static Figure 3 hybrid threshold against
// the adaptive controller on a workload the static point misroutes:
// repeated 64K transfers sit below the 127K design point, so the static
// device copies every one of them through the pool, while the controller
// measures the MR cache's reuse and pulls the threshold under them.
func AblationCrossover(c Config) (*Result, error) {
	res := &Result{
		ID:    "ablation-crossover",
		Title: "64K request stream: static Fig. 3 threshold vs adaptive controller",
		Unit:  "us",
		PaperNote: "the Fig. 3 crossover assumes one-shot registration; measured " +
			"reuse moves it, and the controller follows the measurement",
	}
	const (
		smalls = 16 // no-signal phase: the controller must probe, not stall
		larges = 128
		size   = 64 << 10
	)
	for _, mode := range []struct {
		label    string
		adaptive bool
	}{{"static", false}, {"adaptive", true}} {
		ccfg := hpbd.DefaultClientConfig()
		ccfg.HybridDataPath = true
		ccfg.AdaptiveCrossover = mode.adaptive
		ccfg.CrossoverWindow = 8
		rig, err := newDatapathRig(ib.DefaultConfig(), ccfg, hpbd.DefaultServerConfig, 1, 64<<20)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", res.ID, mode.label, err)
		}
		elapsed, err := rig.run(func(p *sim.Proc) error {
			small := make([]byte, 4096)
			for i := 0; i < smalls; i++ {
				w, serr := rig.queue.Submit(true, int64(i*64), small)
				if serr != nil {
					return serr
				}
				rig.queue.Unplug()
				if werr := w.Wait(p); werr != nil {
					return werr
				}
			}
			data := make([]byte, size)
			off := int64(8<<20) / blockdev.SectorSize
			for i := 0; i < larges; i++ {
				w, serr := rig.queue.Submit(true, off, data)
				if serr != nil {
					return serr
				}
				rig.queue.Unplug()
				if werr := w.Wait(p); werr != nil {
					return werr
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", res.ID, mode.label, err)
		}
		res.Rows = append(res.Rows, Row{
			Label: mode.label,
			Value: elapsed.Micros() / (smalls + larges),
			Stat: fmt.Sprintf("large %d thr %d", rig.dev.Stats().HybridLarge,
				rig.dev.HybridThreshold()),
		})
	}
	return res, nil
}
