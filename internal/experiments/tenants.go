package experiments

import (
	"fmt"
	"sort"
	"strings"

	"hpbd/internal/blockdev"
	"hpbd/internal/cluster"
	"hpbd/internal/sim"
	"hpbd/internal/tenant"
)

// UnknownExperiment builds the error for an unregistered experiment ID,
// listing every registered experiment in Names() order so a typo on the
// command line is immediately recoverable.
func UnknownExperiment(name string) error {
	return fmt.Errorf("unknown experiment %q (registered: %s)", name, strings.Join(Names(), " "))
}

// IsolationParams shapes one noisy-neighbor run: tenant a fires a
// continuous burst storm of 128 KB writes while tenant b — the victim —
// performs closed-loop 4 KB read-ins. The victim's per-request latencies
// are returned for quantile checks.
type IsolationParams struct {
	// FIFO selects the control scheduler (strict arrival order).
	FIFO bool
	// Solo disables the storm: the victim-alone baseline.
	Solo bool
	// Probes is the victim's read count (0: 300).
	Probes int
	// StormDepth is the storm's outstanding-request target (0: 16).
	StormDepth int
	// Pool is the per-server credit pool (0: 32, an even 16/16 split).
	Pool int
}

// storm keeps depth 128 KB writes outstanding against node's device
// until *stop, cycling over the device from distinct start offsets.
func tenantStorm(env *sim.Env, node *cluster.TenantNode, depth int, stop *bool) {
	total := node.Dev.Sectors() * blockdev.SectorSize
	span := total / int64(depth)
	span -= span % int64(blockdev.MaxRequestBytes)
	for w := 0; w < depth; w++ {
		base := int64(w) * span
		env.Go(fmt.Sprintf("storm-%d", w), func(p *sim.Proc) {
			buf := make([]byte, blockdev.MaxRequestBytes)
			for off := int64(0); !*stop; off = (off + int64(blockdev.MaxRequestBytes)) % span {
				r := blockdev.NewRequest(env, true, (base+off)/blockdev.SectorSize, buf)
				node.Dev.Submit(p, r)
				if r.Wait(p) != nil {
					return
				}
			}
		})
	}
}

// RunTenantIsolation runs one arm of the noisy-neighbor scenario on a
// single shared server and returns the victim's sorted read latencies.
// Everything is deterministic: same parameters, same latencies.
func RunTenantIsolation(pr IsolationParams) ([]sim.Duration, error) {
	if pr.Probes <= 0 {
		pr.Probes = 300
	}
	if pr.StormDepth <= 0 {
		pr.StormDepth = 16
	}
	if pr.Pool <= 0 {
		pr.Pool = 32
	}
	spec, err := tenant.ParseSpec(fmt.Sprintf("pool=%d,a:w1,b:w1", pr.Pool))
	if err != nil {
		return nil, err
	}
	env := sim.NewEnv()
	fleet, err := cluster.NewTenantFleet(env, cluster.TenantFleetConfig{
		Spec:         spec,
		Servers:      1,
		SwapBytesPer: 4 << 20,
		FIFO:         pr.FIFO,
	})
	if err != nil {
		return nil, err
	}
	victim := fleet.Node("b")
	noisy := fleet.Node("a")
	const page = 4096
	const region = 64 // victim pages pre-written, then probed
	lats := make([]sim.Duration, 0, pr.Probes)
	stop := false
	env.Go("victim", func(p *sim.Proc) {
		buf := make([]byte, page)
		for i := 0; i < region; i++ {
			r := blockdev.NewRequest(env, true, int64(i)*page/blockdev.SectorSize, buf)
			victim.Dev.Submit(p, r)
			if r.Wait(p) != nil {
				stop = true
				return
			}
		}
		if !pr.Solo {
			tenantStorm(env, noisy, pr.StormDepth, &stop)
			// Let the storm reach its steady backlog before probing.
			p.Sleep(2 * sim.Millisecond)
		}
		for i := 0; i < pr.Probes; i++ {
			pg := int64(i*7) % region
			t0 := p.Now()
			r := blockdev.NewRequest(env, false, pg*page/blockdev.SectorSize, buf)
			victim.Dev.Submit(p, r)
			if r.Wait(p) != nil {
				break
			}
			lats = append(lats, p.Now().Sub(t0))
		}
		stop = true
	})
	env.Run()
	env.Close()
	if len(lats) < pr.Probes {
		return nil, fmt.Errorf("victim completed %d/%d probes", len(lats), pr.Probes)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats, nil
}

// LatP99 returns the 99th percentile of sorted latencies.
func LatP99(sorted []sim.Duration) sim.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// SweepTenant is the noisy-neighbor isolation sweep: tenant b's 4 KB
// read-in p99 alone, under tenant a's 128 KB write storm with the FIFO
// control scheduler, and under the same storm with weighted fair
// queueing. The WFQ arm is required to stay within 1.5x of the solo
// baseline — the isolation contract the test tier enforces — while the
// FIFO control shows what sharing without QoS costs.
func SweepTenant(c Config) (*Result, error) {
	res := &Result{
		ID:    "sweep-tenant",
		Title: "Victim read p99 vs a neighbor's 128KB write storm (1 server, 2 tenants)",
		Unit:  "ms",
		PaperNote: "extension: the paper is single-client — this measures the QoS " +
			"layer's noisy-neighbor isolation (WFQ + credit partitioning vs FIFO)",
	}
	probes := 300
	if s := c.scale(); s > PaperScale {
		probes = 100 // cheap CI runs still exercise every arm
	}
	arms := []struct {
		label string
		pr    IsolationParams
	}{
		{"b-solo", IsolationParams{Solo: true, Probes: probes}},
		{"b-vs-storm-fifo", IsolationParams{FIFO: true, Probes: probes}},
		{"b-vs-storm-wfq", IsolationParams{Probes: probes}},
	}
	var solo float64
	for _, arm := range arms {
		lats, err := RunTenantIsolation(arm.pr)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", res.ID, arm.label, err)
		}
		p50 := lats[len(lats)/2].Micros() / 1000
		p99 := LatP99(lats).Micros() / 1000
		stat := ""
		if arm.label == "b-solo" {
			solo = p99
		} else if solo > 0 {
			stat = fmt.Sprintf("%.2fx solo p99", p99/solo)
		}
		res.Rows = append(res.Rows, Row{Label: arm.label, Value: p99, P50ms: p50, P99ms: p99, Stat: stat})
	}
	return res, nil
}

// starvationShare is the alert threshold: a tenant with pending demand
// whose issued byte share is below this fraction of its weight share is
// being starved of its entitlement.
const starvationShare = 0.25

// TenantsReport runs a deterministic mixed load over a tenant fleet
// built from specStr and renders the per-tenant QoS table hpbdctl
// tenants prints: credits held/borrowed, withheld demand, sched-wait
// p99, issued requests/bytes, resident bytes, evictions and quota
// pushback, snapshotted mid-storm. Tenants starved below their weighted
// entitlement get a starvation alert line under the table.
func TenantsReport(specStr string, fifo bool) (string, error) {
	spec, err := tenant.ParseSpec(specStr)
	if err != nil {
		return "", err
	}
	env := sim.NewEnv()
	fleet, err := cluster.NewTenantFleet(env, cluster.TenantFleetConfig{
		Spec:         spec,
		Servers:      1,
		SwapBytesPer: 4 << 20,
		FIFO:         fifo,
		SelfCheck:    true,
		Fallback:     true,
	})
	if err != nil {
		return "", err
	}
	// Every tenant runs the same storm shape; QoS — not arrival order —
	// decides who gets served. The snapshot lands mid-storm so held
	// credits and backlogs are visible, then the storms are released.
	stop := false
	for _, n := range fleet.Nodes {
		tenantStorm(env, n, 16, &stop)
	}
	var b strings.Builder
	env.Go("report", func(p *sim.Proc) {
		p.Sleep(20 * sim.Millisecond)
		srv := fleet.Servers[0]
		stats := srv.TenantStats()
		var totalBytes int64
		totalWeight := 0
		for _, st := range stats {
			totalBytes += st.SchedBytes
			totalWeight += st.Weight
		}
		fmt.Fprintf(&b, "tenants on %s (pool=%d, sched=%s, t=%v):\n",
			srv.Name(), spec.Pool, map[bool]string{true: "fifo", false: "wfq"}[fifo], p.Now())
		fmt.Fprintf(&b, "%-10s %6s %4s %8s %5s %7s %5s %12s %8s %10s %10s %6s %7s\n",
			"TENANT", "WEIGHT", "RES", "QUOTA", "HELD", "BORROW", "WAIT",
			"SCHEDP99US", "REQS", "BYTES", "RESIDENT", "EVICT", "QRETRY")
		var alerts []string
		for _, st := range stats {
			fmt.Fprintf(&b, "%-10s %6d %4d %8d %5d %7d %5d %12.0f %8d %10d %10d %6d %7d\n",
				st.ID, st.Weight, st.Reserved, st.Quota, st.Held, st.Borrowed, st.Waiting,
				st.SchedP99.Micros(), st.SchedReqs, st.SchedBytes, st.Resident,
				st.Evictions, st.QuotaRetries)
			if totalBytes == 0 || totalWeight == 0 {
				continue
			}
			byteShare := float64(st.SchedBytes) / float64(totalBytes)
			weightShare := float64(st.Weight) / float64(totalWeight)
			if (st.Queued > 0 || st.Waiting > 0) && byteShare < starvationShare*weightShare {
				alerts = append(alerts, fmt.Sprintf(
					"starvation alert: tenant %s issued %.1f%% of bytes against a %.1f%% weight share",
					st.ID, byteShare*100, weightShare*100))
			}
		}
		for _, a := range alerts {
			fmt.Fprintf(&b, "%s\n", a)
		}
		if err := srv.TenancyCheck(); err != nil {
			fmt.Fprintf(&b, "credit conservation VIOLATED: %v\n", err)
		} else {
			fmt.Fprintf(&b, "credit conservation: ok\n")
		}
		stop = true
	})
	env.Run()
	env.Close()
	return b.String(), nil
}
