package experiments

import (
	"fmt"
	"math/rand"

	"hpbd/internal/cluster"
	"hpbd/internal/hpbd"
	"hpbd/internal/ib"
	"hpbd/internal/netmodel"
	"hpbd/internal/vm"
	"hpbd/internal/workload"
)

// SweepBandwidth reruns testswap over HPBD with the fabric bandwidth
// swept from well below to well above the paper's 4X link. It backs the
// paper's central observation (§6.2): once the network approaches what
// the memory system delivers, host overhead dominates and faster links
// stop helping.
func SweepBandwidth(c Config) (*Result, error) {
	s := c.scale()
	res := &Result{
		ID:    "sweep-bandwidth",
		Title: fmt.Sprintf("Testswap vs fabric bandwidth (1/%d scale)", s),
		Unit:  "s",
		PaperNote: "paper §6.2: with HPBD the network cost is < 30%; " +
			"host overhead dominates, so returns diminish with faster links",
	}
	data := int64(paperData) / s
	for _, mbps := range []float64{125, 250, 500, 840, 1600, 3200} {
		ibcfg := ib.DefaultConfig()
		ibcfg.Link.BW = netmodel.MBps(mbps)
		cfg := cluster.Config{
			MemBytes:  paperMem / s,
			Swap:      cluster.SwapHPBD,
			SwapBytes: paperSwap / s,
			Servers:   1,
			IB:        &ibcfg,
		}
		elapsed, node, err := measure(cfg, c.Seed, func(sys *vm.System, _ *rand.Rand) runnable {
			return workload.NewTestswap(sys, data)
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%.0f: %w", res.ID, mbps, err)
		}
		p50, p99 := swapLatency(node)
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("%.0fMBps", mbps),
			Value: elapsed.Seconds(),
			P50ms: p50, P99ms: p99,
			Stat: stageBreakdown(node),
		})
	}
	return res, nil
}

// SweepElevator compares FIFO against C-LOOK dispatch on the disk under
// the two-concurrent-sorts workload — the case where seek ping-pong
// between the two instances' streams is worst. (Runs at twice the
// configured scale divisor: the disk case is expensive.)
func SweepElevator(c Config) (*Result, error) {
	s := c.scale() * 2
	res := &Result{
		ID:        "sweep-elevator",
		Title:     fmt.Sprintf("Two quick sorts on disk: FIFO vs C-LOOK dispatch (1/%d scale)", s),
		Unit:      "s",
		PaperNote: "extension: 2.4's elevator reduces the read/write seek alternation",
	}
	elems := int(int64(paperQsortInt) / s)
	for _, elevator := range []bool{false, true} {
		label := "fifo"
		if elevator {
			label = "c-look"
		}
		cfg := cluster.Config{
			MemBytes:  paperData / s / 2,
			Swap:      cluster.SwapDisk,
			SwapBytes: 5 * (int64(512<<20) / s),
			Elevator:  elevator,
		}
		times, _, err := measureTwoOn(cfg, c.Seed, elems)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", res.ID, label, err)
		}
		res.Rows = append(res.Rows, Row{
			Label: label,
			Value: ((times[0] + times[1]) / 2).Seconds(),
		})
	}
	return res, nil
}

// SweepCredits varies the flow-control water-mark (§4.2.4): too few
// credits serialize the pipeline; beyond a handful there is nothing left
// to win because requests are latency-bound.
func SweepCredits(c Config) (*Result, error) {
	s := c.scale()
	res := &Result{
		ID:        "sweep-credits",
		Title:     fmt.Sprintf("Quick sort vs flow-control credits (1/%d scale)", s),
		Unit:      "s",
		PaperNote: "water-mark flow control §4.2.4",
	}
	elems := int(int64(paperQsortInt) / s)
	for _, credits := range []int{1, 2, 4, 8, 16, 32} {
		credits := credits
		cfg := hpbdConfig(s, 1, func(cc *hpbd.ClientConfig) { cc.Credits = credits })
		elapsed, node, err := measure(cfg, c.Seed, func(sys *vm.System, rnd *rand.Rand) runnable {
			return workload.NewQuicksort(sys, "qsort", elems, rnd)
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%d: %w", res.ID, credits, err)
		}
		p50, p99 := swapLatency(node)
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("credits-%d", credits),
			Value: elapsed.Seconds(),
			P50ms: p50, P99ms: p99,
			Stat: fmt.Sprintf("stalls %d; %s", node.HPBD.Stats().CreditStalls, stageBreakdown(node)),
		})
	}
	return res, nil
}

// SweepReadahead varies the swap-in readahead window on the quick sort;
// the 2.4 default (8 pages) sits near the knee for sequential-scan
// workloads.
func SweepReadahead(c Config) (*Result, error) {
	s := c.scale()
	res := &Result{
		ID:        "sweep-readahead",
		Title:     fmt.Sprintf("Quick sort vs swap-in readahead window (1/%d scale)", s),
		Unit:      "s",
		PaperNote: "Linux page_cluster: readahead amortizes request latency on sequential faults",
	}
	elems := int(int64(paperQsortInt) / s)
	for _, ra := range []int{1, 2, 4, 8, 16, 32} {
		ra := ra
		cfg := hpbdConfig(s, 1, nil)
		cfg.VMConfig = func(v *vm.Config) { v.ReadAheadPages = ra }
		elapsed, node, err := measure(cfg, c.Seed,
			func(sys *vm.System, rnd *rand.Rand) runnable {
				return workload.NewQuicksort(sys, "qsort", elems, rnd)
			})
		if err != nil {
			return nil, fmt.Errorf("%s/%d: %w", res.ID, ra, err)
		}
		st := node.VM.Stats()
		p50, p99 := swapLatency(node)
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("ra-%d", ra),
			Value: elapsed.Seconds(),
			P50ms: p50, P99ms: p99,
			Stat: fmt.Sprintf("swapins %d, ra %d, useful %d",
				st.SwapIns, st.ReadAheadPages, st.ReadAheadUseful),
		})
	}
	return res, nil
}
