package experiments

import (
	"strings"
	"testing"
)

// TestUnknownExperimentListsRegistered is the regression test for the
// hpbd-bench -exp error path: a typo'd experiment ID must come back
// with the full registered list in Names() order, not a bare "unknown".
func TestUnknownExperimentListsRegistered(t *testing.T) {
	err := UnknownExperiment("fig99")
	if err == nil {
		t.Fatal("UnknownExperiment returned nil")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown experiment "fig99"`) {
		t.Errorf("error does not name the bad ID: %q", msg)
	}
	names := Names()
	if !strings.Contains(msg, strings.Join(names, " ")) {
		t.Errorf("error does not list Names() in order:\n%q\nwant to contain %q",
			msg, strings.Join(names, " "))
	}
	for _, want := range []string{"fig5", "sweep-tenant", "table1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error missing registered experiment %q: %q", want, msg)
		}
	}
}

func TestSweepTenantRegistered(t *testing.T) {
	if _, ok := Registry["sweep-tenant"]; !ok {
		t.Fatal("sweep-tenant not in the experiment registry")
	}
}

// TestTenantsReportStarvationAlert drives the deterministic weighted-
// unfair scenario the CI tenancy-smoke job greps: under FIFO a
// weight-10 tenant sharing with a heavily-reserved weight-1 tenant is
// served far below its entitlement, and the report must say so. The
// same spec under WFQ must not alert — the scheduler is the remedy.
func TestTenantsReportStarvationAlert(t *testing.T) {
	const spec = "pool=2,a:w1:r30,b:w10"
	fifo, err := TenantsReport(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fifo, "starvation alert: tenant b") {
		t.Errorf("FIFO report lacks the starvation alert:\n%s", fifo)
	}
	if !strings.Contains(fifo, "credit conservation: ok") {
		t.Errorf("FIFO report lacks the conservation check:\n%s", fifo)
	}
	wfq, err := TenantsReport(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(wfq, "starvation alert") {
		t.Errorf("WFQ report alerts despite fair scheduling:\n%s", wfq)
	}
	if !strings.Contains(wfq, "credit conservation: ok") {
		t.Errorf("WFQ report lacks the conservation check:\n%s", wfq)
	}
}
