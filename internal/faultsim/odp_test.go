package faultsim

import (
	"reflect"
	"testing"

	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

func TestParseSpecODPInval(t *testing.T) {
	s, err := ParseSpec("odpinval@3ms=hpbd0")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{{At: 3 * sim.Millisecond, Kind: KindODPInval, Target: "hpbd0"}}
	if !reflect.DeepEqual(s.Faults, want) {
		t.Errorf("parsed faults = %+v, want %+v", s.Faults, want)
	}
	// Text and wire round trips both preserve the new kind.
	s2, err := ParseSpec(s.Spec())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s.Spec(), err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Errorf("spec round-trip changed schedule: %+v vs %+v", s, s2)
	}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s3, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, s3) {
		t.Errorf("wire round-trip changed schedule: %+v vs %+v", s, s3)
	}
}

// odpHost is a fake client that additionally exposes the optional
// ODPHost surface.
type odpHost struct {
	fakeClient
	invals int
}

func (h *odpHost) InvalidateODP() int { h.invals++; return 3 }

func TestInjectorODPInval(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	reg := telemetry.New(env)
	sched, err := ParseSpec("odpinval@1ms=hpbd0,odpinval@2ms=hpbd1")
	if err != nil {
		t.Fatal(err)
	}
	in := New(env, *sched, reg)
	withODP := &odpHost{fakeClient: fakeClient{name: "hpbd0"}}
	in.AddClient(withODP)
	// hpbd1 exists but has no ODP surface: the fault must count as
	// skipped, not panic or misfire.
	in.AddClient(&fakeClient{name: "hpbd1"})
	in.Start()
	env.Run()

	if withODP.invals != 1 {
		t.Errorf("ODP-capable client invalidated %d times, want 1", withODP.invals)
	}
	if got := reg.Counter("faultsim.injected").Value(); got != 1 {
		t.Errorf("injected = %d, want 1", got)
	}
	if got := reg.Counter("faultsim.skipped").Value(); got != 1 {
		t.Errorf("skipped = %d, want 1 (target without ODP surface)", got)
	}
}
