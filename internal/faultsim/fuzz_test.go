package faultsim

import (
	"reflect"
	"testing"
)

// FuzzUnmarshalSchedule checks the wire decoder on arbitrary input: it
// must never panic, and any schedule it accepts must survive a
// re-marshal/re-decode round trip unchanged (the decoder re-sorts, so
// the second decode must be a fixed point).
func FuzzUnmarshalSchedule(f *testing.F) {
	seed, err := ParseSpec("crash@5ms=mem0,delay@2ms+4ms~200us=mem1,senderr@1msx3=hpbd0")
	if err != nil {
		f.Fatal(err)
	}
	data, err := seed.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte("FS"))
	f.Add([]byte{'F', 'S', 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := s.Marshal()
		if err != nil {
			t.Fatalf("accepted schedule failed to re-marshal: %v", err)
		}
		s2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-marshal output failed to decode: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed schedule:\n  %+v\nvs\n  %+v", s, s2)
		}
	})
}
