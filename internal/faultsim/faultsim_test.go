package faultsim

import (
	"reflect"
	"strings"
	"testing"

	"hpbd/internal/ib"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("delay@2ms+4ms~200us=mem1, crash@5ms=mem0,senderr@1msx3=hpbd0")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{At: 1 * sim.Millisecond, Kind: KindSendErr, Target: "hpbd0", Count: 3},
		{At: 2 * sim.Millisecond, Kind: KindDelay, Target: "mem1", Dur: 4 * sim.Millisecond, Extra: 200 * sim.Microsecond},
		{At: 5 * sim.Millisecond, Kind: KindCrash, Target: "mem0"},
	}
	if !reflect.DeepEqual(s.Faults, want) {
		t.Errorf("parsed faults = %+v, want %+v", s.Faults, want)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"crash5ms=mem0",                   // missing @
		"boom@5ms=mem0",                   // unknown kind
		"crash@5ms",                       // missing target
		"crash@5ms=",                      // empty target
		"crash@xyz=mem0",                  // bad duration
		"senderr@1msx0=mem0",              // zero count
		"senderr@1msxq=mem0",              // bad count
		"delay@1ms~zz=mem0",               // bad extra
		"hang@1ms+zz=mem0",                // bad dur
		"crash@5 ms=mem0",                 // inner space
		"crash@9999999999999999999s=mem0", // overflow
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", spec)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	const spec = "senderr@1msx3=hpbd0,delay@2ms+4ms~200us=mem1,crash@5ms=mem0,starve@6ms+500us=mem1,hang@7ms+1ms=mem0,poolx@8ms+2ms=hpbd1"
	s, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSpec(s.Spec())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s.Spec(), err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Errorf("spec round-trip changed schedule:\n  %+v\nvs\n  %+v", s, s2)
	}
}

func TestWireRoundTrip(t *testing.T) {
	s, err := ParseSpec("crash@5ms=mem0,delay@2ms+4ms~200us=mem1,senderr@1msx3=hpbd0,poolx@3ms+1ms=hpbd1")
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Errorf("wire round-trip changed schedule:\n  %+v\nvs\n  %+v", s, s2)
	}
	// A second marshal of the decoded schedule is byte-identical.
	data2, err := s2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("re-marshal not byte-identical")
	}
}

func TestUnmarshalRejects(t *testing.T) {
	good, err := (&Schedule{Faults: []Fault{{At: 1, Kind: KindCrash, Target: "mem0"}}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         nil,
		"bad magic":     append([]byte("XS"), good[2:]...),
		"bad version":   append([]byte{'F', 'S', 99}, good[3:]...),
		"truncated":     good[:len(good)-2],
		"trailing":      append(append([]byte(nil), good...), 0),
		"unknown kind":  func() []byte { b := append([]byte(nil), good...); b[5] = byte(numKinds); return b }(),
		"negative time": func() []byte { b := append([]byte(nil), good...); b[6] = 0x80; return b }(),
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("Unmarshal(%s) succeeded, want error", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	servers := []string{"mem0", "mem1"}
	clients := []string{"hpbd0"}
	a := Generate(7, 20, 10*sim.Millisecond, servers, clients)
	b := Generate(7, 20, 10*sim.Millisecond, servers, clients)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different schedules")
	}
	c := Generate(8, 20, 10*sim.Millisecond, servers, clients)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
	last := sim.Duration(-1)
	for _, f := range a.Faults {
		if f.Kind == KindCrash {
			t.Error("Generate produced a crash fault")
		}
		if f.At < last {
			t.Error("generated schedule not sorted by At")
		}
		last = f.At
		if f.At < 0 || f.At >= 10*sim.Millisecond {
			t.Errorf("fault at %v outside horizon", f.At)
		}
	}
}

// fakeServer records the sim-times at which each fault surface was hit.
type fakeServer struct {
	name    string
	env     *sim.Env
	crashes []sim.Time
	hangs   []sim.Duration
	starves []sim.Duration
}

func (f *fakeServer) Name() string              { return f.name }
func (f *fakeServer) Crash()                    { f.crashes = append(f.crashes, f.env.Now()) }
func (f *fakeServer) HangFor(d sim.Duration)    { f.hangs = append(f.hangs, d) }
func (f *fakeServer) StarveRecv(d sim.Duration) { f.starves = append(f.starves, d) }

type fakeClient struct {
	name     string
	exhausts []sim.Duration
}

func (f *fakeClient) Name() string               { return f.name }
func (f *fakeClient) ExhaustPool(d sim.Duration) { f.exhausts = append(f.exhausts, d) }

func TestInjectorReplay(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	reg := telemetry.New(env)
	sched, err := ParseSpec("crash@5ms=mem0,hang@2ms+1ms=mem1,poolx@3ms+1ms=hpbd0,starve@4ms+2ms=mem1,crash@6ms=ghost")
	if err != nil {
		t.Fatal(err)
	}
	in := New(env, *sched, reg)
	srv0 := &fakeServer{name: "mem0", env: env}
	srv1 := &fakeServer{name: "mem1", env: env}
	cli := &fakeClient{name: "hpbd0"}
	in.AddServer(srv0)
	in.AddServer(srv1)
	in.AddClient(cli)
	in.Start()
	env.Run()

	if len(srv0.crashes) != 1 || srv0.crashes[0] != sim.Time(5*sim.Millisecond) {
		t.Errorf("mem0 crashes = %v, want one at 5ms", srv0.crashes)
	}
	if len(srv1.hangs) != 1 || srv1.hangs[0] != sim.Millisecond {
		t.Errorf("mem1 hangs = %v, want [1ms]", srv1.hangs)
	}
	if len(srv1.starves) != 1 || srv1.starves[0] != 2*sim.Millisecond {
		t.Errorf("mem1 starves = %v, want [2ms]", srv1.starves)
	}
	if len(cli.exhausts) != 1 || cli.exhausts[0] != sim.Millisecond {
		t.Errorf("hpbd0 exhausts = %v, want [1ms]", cli.exhausts)
	}
	if got := reg.Counter("faultsim.injected").Value(); got != 4 {
		t.Errorf("injected = %d, want 4", got)
	}
	// The ghost target is counted as skipped, not applied or panicked.
	if got := reg.Counter("faultsim.skipped").Value(); got != 1 {
		t.Errorf("skipped = %d, want 1", got)
	}
	if got := strings.Join(in.Targets(), ","); got != "hpbd0,mem0,mem1" {
		t.Errorf("Targets() = %q", got)
	}
}

func TestInjectorSendFault(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	sched, err := ParseSpec("senderr@1msx2=mem0,delay@2ms+1ms~100us=mem1")
	if err != nil {
		t.Fatal(err)
	}
	in := New(env, *sched, nil)
	in.AddServer(&fakeServer{name: "mem0", env: env})
	in.AddServer(&fakeServer{name: "mem1", env: env})
	in.Start()
	env.RunUntil(sim.Time(2500 * sim.Microsecond))

	// Two one-shot send errors on mem0, then clean.
	for i := 0; i < 2; i++ {
		if _, st := in.SendFault("mem0", ib.OpSend); st != ib.StatusRNR {
			t.Fatalf("senderr %d: status %v, want RNR", i, st)
		}
	}
	if _, st := in.SendFault("mem0", ib.OpSend); st != ib.StatusSuccess {
		t.Errorf("third send: status %v, want success", st)
	}
	// Inside mem1's delay window (now = 2.5ms in [2ms, 3ms)).
	extra, st := in.SendFault("mem1", ib.OpRDMAWrite)
	if st != ib.StatusSuccess || extra != 100*sim.Microsecond {
		t.Errorf("delayed send: extra=%v st=%v, want 100us success", extra, st)
	}
	// An HCA with no active fault is untouched.
	if extra, st := in.SendFault("mem0", ib.OpRDMAWrite); st != ib.StatusSuccess || extra != 0 {
		t.Errorf("clean send: extra=%v st=%v", extra, st)
	}
}
