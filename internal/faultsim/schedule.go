// Package faultsim is a deterministic, schedule-driven fault injector
// for the simulated HPBD stack. A Schedule is an ordered list of faults
// — server crash/hang, QP send errors, reply delay spikes,
// receive-credit starvation, registration-pool exhaustion — each
// pinned to a sim-time instant. The Injector replays the schedule on
// the sim clock and applies each fault through narrow interfaces on
// the fabric, servers, and clients, so a given schedule+seed replays
// byte-identically run-to-run.
//
// Schedules have two interchangeable encodings: a human-writable text
// spec for CLI flags ("crash@5ms=mem0,delay@2ms+4ms~200us=mem1") and a
// compact binary wire form (Marshal/Unmarshal) for embedding in
// configs and fuzzing.
package faultsim

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"hpbd/internal/sim"
)

// Kind identifies a fault class.
type Kind uint8

const (
	// KindCrash permanently kills a server at At: its QPs close, posted
	// receives flush, and new attaches are refused.
	KindCrash Kind = iota
	// KindHang wedges a server for Dur: requests are accepted but no
	// reply is produced until the hang lifts (the watchdog-visible case).
	KindHang
	// KindSendErr makes the next Count send-side work requests posted by
	// the target HCA complete with an error CQE instead of reaching the
	// wire (a transient QP failure; the client may retry).
	KindSendErr
	// KindDelay adds Extra latency to every send-side work request the
	// target HCA posts during [At, At+Dur) — a reply/response delay spike.
	KindDelay
	// KindStarve makes the target server stop reposting receive buffers
	// for Dur, so client credits drain and senders stall on flow control.
	KindStarve
	// KindPoolExhaust grabs the target client's entire registration pool
	// for Dur, forcing allocation stalls (and hybrid-path fallbacks).
	KindPoolExhaust
	// KindODPInval invalidates every resident on-demand-paging window on
	// the target's HCA (an MMU-notifier storm under memory pressure), so
	// the next access to each ODP region re-faults. Targets that expose
	// no ODP surface skip the fault.
	KindODPInval
	numKinds
)

var kindTokens = [numKinds]string{"crash", "hang", "senderr", "delay", "starve", "poolx", "odpinval"}

func (k Kind) String() string {
	if int(k) < len(kindTokens) {
		return kindTokens[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Fault is one scheduled fault event.
type Fault struct {
	// At is the sim-time offset from schedule start when the fault fires.
	At sim.Duration
	// Kind selects the fault class.
	Kind Kind
	// Target names the victim: a server or HCA name for server/fabric
	// faults, a device name for client faults.
	Target string
	// Dur bounds transient faults (hang, delay window, starvation,
	// pool exhaustion). Ignored by crash and senderr.
	Dur sim.Duration
	// Extra is the added per-operation latency for delay faults.
	Extra sim.Duration
	// Count is the number of affected operations for senderr (default 1).
	Count int
}

// Schedule is a fault schedule, sorted by At (ties keep input order).
type Schedule struct {
	Faults []Fault
}

// Empty reports whether the schedule contains no faults.
func (s *Schedule) Empty() bool { return s == nil || len(s.Faults) == 0 }

// sortFaults orders faults by At, keeping the input order of ties so
// the spec author controls same-instant application order.
func sortFaults(fs []Fault) {
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].At < fs[j].At })
}

// ParseSpec parses the comma-separated text form. Each fault is
//
//	kind@at[+dur][~extra][xN]=target
//
// where kind is crash|hang|senderr|delay|starve|poolx, at/dur/extra are
// sim durations ("5ms", "200us"), N is the senderr operation count, and
// target names the victim. Example:
//
//	crash@5ms=mem0,delay@2ms+4ms~200us=mem1,senderr@1msx3=hpbd0
func ParseSpec(spec string) (*Schedule, error) {
	var s Schedule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := parseFault(part)
		if err != nil {
			return nil, err
		}
		s.Faults = append(s.Faults, f)
	}
	sortFaults(s.Faults)
	return &s, nil
}

func parseFault(tok string) (Fault, error) {
	var f Fault
	kindStr, rest, ok := strings.Cut(tok, "@")
	if !ok {
		return f, fmt.Errorf("faultsim: fault %q missing '@at'", tok)
	}
	kind := -1
	for i, t := range kindTokens {
		if t == kindStr {
			kind = i
			break
		}
	}
	if kind < 0 {
		return f, fmt.Errorf("faultsim: unknown fault kind %q in %q", kindStr, tok)
	}
	f.Kind = Kind(kind)
	timing, target, ok := strings.Cut(rest, "=")
	if !ok || target == "" {
		return f, fmt.Errorf("faultsim: fault %q missing '=target'", tok)
	}
	f.Target = target
	// timing is at[+dur][~extra][xN]; split from the right.
	if at, n, ok := cutLast(timing, "x"); ok {
		c, err := strconv.Atoi(n)
		if err != nil || c <= 0 {
			return f, fmt.Errorf("faultsim: bad count %q in %q", n, tok)
		}
		f.Count = c
		timing = at
	}
	if at, ex, ok := cutLast(timing, "~"); ok {
		d, err := sim.ParseDuration(ex)
		if err != nil {
			return f, fmt.Errorf("faultsim: bad extra in %q: %v", tok, err)
		}
		f.Extra = d
		timing = at
	}
	if at, du, ok := cutLast(timing, "+"); ok {
		d, err := sim.ParseDuration(du)
		if err != nil {
			return f, fmt.Errorf("faultsim: bad duration in %q: %v", tok, err)
		}
		f.Dur = d
		timing = at
	}
	at, err := sim.ParseDuration(timing)
	if err != nil {
		return f, fmt.Errorf("faultsim: bad at-time in %q: %v", tok, err)
	}
	f.At = at
	return f, nil
}

// cutLast is strings.Cut on the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// Spec renders the schedule back into the text form ParseSpec accepts.
func (s *Schedule) Spec() string {
	if s.Empty() {
		return ""
	}
	parts := make([]string, 0, len(s.Faults))
	for _, f := range s.Faults {
		var b strings.Builder
		b.WriteString(f.Kind.String())
		b.WriteByte('@')
		b.WriteString(f.At.String())
		if f.Dur > 0 {
			b.WriteByte('+')
			b.WriteString(f.Dur.String())
		}
		if f.Extra > 0 {
			b.WriteByte('~')
			b.WriteString(f.Extra.String())
		}
		if f.Count > 0 {
			fmt.Fprintf(&b, "x%d", f.Count)
		}
		b.WriteByte('=')
		b.WriteString(f.Target)
		parts = append(parts, b.String())
	}
	return strings.Join(parts, ",")
}

// Wire encoding: magic "FS" + version byte + u16 fault count, then per
// fault: kind u8, at/dur/extra u64, count u32, target len u8 + bytes.
// All integers big-endian.
const (
	wireMagic0  = 'F'
	wireMagic1  = 'S'
	wireVersion = 1
	maxFaults   = 1 << 12
)

// Marshal encodes the schedule into the binary wire form.
func (s *Schedule) Marshal() ([]byte, error) {
	n := 0
	if s != nil {
		n = len(s.Faults)
	}
	if n > maxFaults {
		return nil, fmt.Errorf("faultsim: %d faults exceeds wire limit %d", n, maxFaults)
	}
	buf := make([]byte, 0, 5+n*32)
	buf = append(buf, wireMagic0, wireMagic1, wireVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(n))
	for i := 0; i < n; i++ {
		f := &s.Faults[i]
		if f.At < 0 || f.Dur < 0 || f.Extra < 0 || f.Count < 0 {
			return nil, fmt.Errorf("faultsim: fault %d has negative field", i)
		}
		if f.Kind >= numKinds {
			return nil, fmt.Errorf("faultsim: fault %d has unknown kind %d", i, f.Kind)
		}
		if len(f.Target) > 255 {
			return nil, fmt.Errorf("faultsim: fault %d target too long", i)
		}
		buf = append(buf, byte(f.Kind))
		buf = binary.BigEndian.AppendUint64(buf, uint64(f.At))
		buf = binary.BigEndian.AppendUint64(buf, uint64(f.Dur))
		buf = binary.BigEndian.AppendUint64(buf, uint64(f.Extra))
		buf = binary.BigEndian.AppendUint32(buf, uint32(f.Count))
		buf = append(buf, byte(len(f.Target)))
		buf = append(buf, f.Target...)
	}
	return buf, nil
}

// Unmarshal decodes the binary wire form. Decoded schedules are
// re-sorted by At so a hand-built (or fuzzed) encoding cannot smuggle
// an out-of-order schedule past the injector.
func Unmarshal(data []byte) (*Schedule, error) {
	if len(data) < 5 || data[0] != wireMagic0 || data[1] != wireMagic1 {
		return nil, fmt.Errorf("faultsim: bad schedule magic")
	}
	if data[2] != wireVersion {
		return nil, fmt.Errorf("faultsim: unsupported schedule version %d", data[2])
	}
	n := int(binary.BigEndian.Uint16(data[3:5]))
	if n > maxFaults {
		return nil, fmt.Errorf("faultsim: fault count %d exceeds limit", n)
	}
	var s Schedule
	off := 5
	for i := 0; i < n; i++ {
		if len(data)-off < 30 {
			return nil, fmt.Errorf("faultsim: truncated fault %d", i)
		}
		var f Fault
		f.Kind = Kind(data[off])
		if f.Kind >= numKinds {
			return nil, fmt.Errorf("faultsim: fault %d has unknown kind %d", i, f.Kind)
		}
		at := binary.BigEndian.Uint64(data[off+1:])
		du := binary.BigEndian.Uint64(data[off+9:])
		ex := binary.BigEndian.Uint64(data[off+17:])
		if at >= 1<<63 || du >= 1<<63 || ex >= 1<<63 {
			return nil, fmt.Errorf("faultsim: fault %d duration overflows", i)
		}
		f.At, f.Dur, f.Extra = sim.Duration(at), sim.Duration(du), sim.Duration(ex)
		f.Count = int(binary.BigEndian.Uint32(data[off+25:]))
		tlen := int(data[off+29])
		off += 30
		if len(data)-off < tlen {
			return nil, fmt.Errorf("faultsim: truncated target in fault %d", i)
		}
		f.Target = string(data[off : off+tlen])
		off += tlen
		s.Faults = append(s.Faults, f)
	}
	if off != len(data) {
		return nil, fmt.Errorf("faultsim: %d trailing bytes after schedule", len(data)-off)
	}
	sortFaults(s.Faults)
	return &s, nil
}

// Generate derives a random schedule of n faults over the window
// [0, horizon) from seed, spread across the named targets (servers for
// server/fabric faults, clients for pool faults). The same
// (seed, n, horizon, targets) always yields the same schedule.
func Generate(seed int64, n int, horizon sim.Duration, servers, clients []string) *Schedule {
	rnd := rand.New(rand.NewSource(seed))
	var s Schedule
	for i := 0; i < n; i++ {
		var f Fault
		// Crash is excluded from random generation: a crashed server
		// never recovers, which would end most scenarios early. Chaos
		// runs add crashes explicitly.
		kinds := []Kind{KindHang, KindSendErr, KindDelay, KindStarve}
		if len(clients) > 0 {
			kinds = append(kinds, KindPoolExhaust)
		}
		f.Kind = kinds[rnd.Intn(len(kinds))]
		f.At = sim.Duration(rnd.Int63n(int64(horizon)))
		switch f.Kind {
		case KindPoolExhaust:
			f.Target = clients[rnd.Intn(len(clients))]
			f.Dur = sim.Duration(rnd.Int63n(int64(horizon/8))) + 50*sim.Microsecond
		case KindSendErr:
			f.Target = servers[rnd.Intn(len(servers))]
			f.Count = 1 + rnd.Intn(3)
		case KindDelay:
			f.Target = servers[rnd.Intn(len(servers))]
			f.Dur = sim.Duration(rnd.Int63n(int64(horizon/8))) + 50*sim.Microsecond
			f.Extra = sim.Duration(rnd.Int63n(int64(500*sim.Microsecond))) + 10*sim.Microsecond
		default: // hang, starve
			f.Target = servers[rnd.Intn(len(servers))]
			f.Dur = sim.Duration(rnd.Int63n(int64(horizon/8))) + 50*sim.Microsecond
		}
		s.Faults = append(s.Faults, f)
	}
	sortFaults(s.Faults)
	return &s
}
