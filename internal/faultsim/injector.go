package faultsim

import (
	"sort"

	"hpbd/internal/ib"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// Server is the fault surface a memory server exposes to the injector.
type Server interface {
	Name() string
	// Crash kills the server permanently: QPs close, receives flush,
	// new attaches are refused.
	Crash()
	// HangFor delays every reply produced during the next d of sim-time.
	HangFor(d sim.Duration)
	// StarveRecv stops receive-buffer reposting for d, draining the
	// client's credit window.
	StarveRecv(d sim.Duration)
}

// Client is the fault surface a block-device client exposes.
type Client interface {
	Name() string
	// ExhaustPool grabs the whole registration pool for d, forcing
	// allocation stalls and hybrid-path fallbacks.
	ExhaustPool(d sim.Duration)
}

// ODPHost is the optional capability a Server or Client additionally
// implements when its HCA can hold on-demand-paging regions; odpinval
// faults type-assert for it, so existing implementations keep compiling
// unchanged.
type ODPHost interface {
	// InvalidateODP drops all resident ODP windows on the host's HCA and
	// returns how many were invalidated.
	InvalidateODP() int
}

// Injector replays a Schedule against registered servers and clients
// on the sim clock. It also implements ib.FaultHook so send-error and
// delay faults apply inside the fabric's timing model. All state
// transitions happen at scheduled sim-times from a single replay
// process, so runs are deterministic.
type Injector struct {
	env   *sim.Env
	sched Schedule

	servers map[string]Server
	clients map[string]Client

	// sendErr[hca] is the number of upcoming send WRs from that HCA to
	// fail; delayUntil/delayExtra describe the active delay window.
	sendErr    map[string]int
	delayUntil map[string]sim.Time
	delayExtra map[string]sim.Duration

	injected *telemetry.Counter
	skipped  *telemetry.Counter
	tracer   *telemetry.Tracer
}

// New builds an injector for sched. The telemetry registry may be nil;
// when present the injector publishes faultsim.injected /
// faultsim.skipped counters and emits a trace instant per fault.
func New(env *sim.Env, sched Schedule, reg *telemetry.Registry) *Injector {
	sortFaults(sched.Faults)
	return &Injector{
		env:        env,
		sched:      sched,
		servers:    make(map[string]Server),
		clients:    make(map[string]Client),
		sendErr:    make(map[string]int),
		delayUntil: make(map[string]sim.Time),
		delayExtra: make(map[string]sim.Duration),
		injected:   reg.Counter("faultsim.injected"),
		skipped:    reg.Counter("faultsim.skipped"),
		tracer:     reg.Tracer(),
	}
}

// AddServer registers a crash/hang/starve target.
func (in *Injector) AddServer(s Server) { in.servers[s.Name()] = s }

// AddClient registers a pool-exhaustion target.
func (in *Injector) AddClient(c Client) { in.clients[c.Name()] = c }

// Targets returns the sorted names of all registered fault targets.
func (in *Injector) Targets() []string {
	var names []string
	for n := range in.servers {
		names = append(names, n)
	}
	for n := range in.clients {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Start spawns the replay process. Call after all targets are
// registered and before env.Run.
func (in *Injector) Start() {
	if len(in.sched.Faults) == 0 {
		return
	}
	in.env.Go("faultsim", func(p *sim.Proc) {
		for _, f := range in.sched.Faults {
			if wait := sim.Time(f.At).Sub(p.Now()); wait > 0 {
				p.Sleep(wait)
			}
			in.apply(p, f)
		}
	})
}

// apply fires one fault at its scheduled instant.
func (in *Injector) apply(p *sim.Proc, f Fault) {
	srv, isSrv := in.servers[f.Target]
	cli, isCli := in.clients[f.Target]
	ok := true
	switch f.Kind {
	case KindCrash:
		if ok = isSrv; ok {
			srv.Crash()
		}
	case KindHang:
		if ok = isSrv; ok {
			srv.HangFor(f.Dur)
		}
	case KindStarve:
		if ok = isSrv; ok {
			srv.StarveRecv(f.Dur)
		}
	case KindSendErr:
		// Send errors key on the HCA name, which for both servers and
		// clients equals the registered target name.
		if ok = isSrv || isCli; ok {
			n := f.Count
			if n <= 0 {
				n = 1
			}
			in.sendErr[f.Target] += n
		}
	case KindDelay:
		if ok = isSrv || isCli; ok {
			until := p.Now().Add(f.Dur)
			if until > in.delayUntil[f.Target] {
				in.delayUntil[f.Target] = until
			}
			in.delayExtra[f.Target] = f.Extra
		}
	case KindPoolExhaust:
		if ok = isCli; ok {
			cli.ExhaustPool(f.Dur)
		}
	case KindODPInval:
		var host ODPHost
		if isSrv {
			host, _ = srv.(ODPHost)
		} else if isCli {
			host, _ = cli.(ODPHost)
		}
		if ok = host != nil; ok {
			host.InvalidateODP()
		}
	default:
		ok = false
	}
	if !ok {
		in.skipped.Inc()
		return
	}
	in.injected.Inc()
	if in.tracer != nil {
		in.tracer.InstantArgs("faultsim", "fault:"+f.Kind.String(), map[string]any{
			"target": f.Target, "dur_us": f.Dur.Micros(), "extra_us": f.Extra.Micros(),
		})
	}
}

// SendFault implements ib.FaultHook: one-shot send errors first, then
// any active delay window. Lookups are by exact HCA name, so state
// never depends on map iteration order.
func (in *Injector) SendFault(hca string, op ib.Opcode) (sim.Duration, ib.Status) {
	if n := in.sendErr[hca]; n > 0 {
		in.sendErr[hca] = n - 1
		in.injected.Inc()
		if in.tracer != nil {
			in.tracer.InstantArgs("faultsim", "senderr:"+op.String(), map[string]any{"hca": hca})
		}
		// RNR is the transient, retryable NAK in this model: the WR
		// never reached the peer, so a retry is safe.
		return 0, ib.StatusRNR
	}
	if until, active := in.delayUntil[hca]; active && in.env.Now() < until {
		return in.delayExtra[hca], ib.StatusSuccess
	}
	return 0, ib.StatusSuccess
}
