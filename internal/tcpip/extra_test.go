package tcpip

import (
	"testing"

	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
)

func TestThroughputMatchesEffectiveBandwidth(t *testing.T) {
	// Streaming many chunks must approach the model's effective bandwidth
	// (wire-limited for GigE).
	env, n, a, b := newPair(t, netmodel.GigE())
	const chunk = 64 * 1024
	const chunks = 64
	var elapsed sim.Duration
	env.Go("server", func(p *sim.Proc) {
		l, _ := b.Listen(1)
		c, _ := l.Accept(p)
		buf := make([]byte, chunk)
		for i := 0; i < chunks; i++ {
			if err := c.ReadFull(p, buf); err != nil {
				t.Errorf("ReadFull: %v", err)
				return
			}
		}
		c.Write(p, []byte{1})
	})
	env.Go("client", func(p *sim.Proc) {
		c, err := a.Dial(p, b, 1)
		for err != nil {
			p.Sleep(sim.Microsecond)
			c, err = a.Dial(p, b, 1)
		}
		t0 := p.Now()
		data := make([]byte, chunk)
		for i := 0; i < chunks; i++ {
			c.Write(p, data)
		}
		one := make([]byte, 1)
		c.ReadFull(p, one)
		elapsed = p.Now().Sub(t0)
	})
	env.Run()
	env.Close()
	mbps := float64(chunk*chunks) / 1e6 / elapsed.Seconds()
	eff := float64(n.Link().EffectiveBW(netmodel.DefaultMem())) / 1e6
	if mbps < eff*0.6 || mbps > eff*1.05 {
		t.Errorf("streaming throughput %.1f MB/s, want near effective %.1f MB/s", mbps, eff)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	env, _, _, b := newPair(t, netmodel.GigE())
	var acceptErr error
	env.Go("server", func(p *sim.Proc) {
		l, _ := b.Listen(1)
		env.After(10*sim.Microsecond, l.Close)
		_, acceptErr = l.Accept(p)
	})
	env.Run()
	env.Close()
	if acceptErr == nil {
		t.Error("Accept returned nil after listener close")
	}
}

func TestDialAfterListenerClose(t *testing.T) {
	env, _, a, b := newPair(t, netmodel.GigE())
	env.Go("t", func(p *sim.Proc) {
		l, _ := b.Listen(1)
		l.Close()
		if _, err := a.Dial(p, b, 1); err != ErrNoListener {
			t.Errorf("err = %v, want ErrNoListener", err)
		}
	})
	env.Run()
	env.Close()
}

func TestTwoConnectionsShareHostLink(t *testing.T) {
	// Two simultaneous streams through one host's egress must take about
	// twice as long as one (link serialization).
	run := func(conns int) sim.Duration {
		env, _, a, b := newPair(t, netmodel.GigE())
		const n = 256 * 1024
		done := sim.NewEvent(env)
		remaining := conns
		l, _ := b.Listen(1)
		for k := 0; k < conns; k++ {
			env.Go("server", func(p *sim.Proc) {
				c, err := l.Accept(p)
				if err != nil {
					return
				}
				buf := make([]byte, n)
				c.ReadFull(p, buf)
				remaining--
				if remaining == 0 {
					done.Trigger()
				}
			})
			env.Go("client", func(p *sim.Proc) {
				c, err := a.Dial(p, b, 1)
				for err != nil {
					p.Sleep(sim.Microsecond)
					c, err = a.Dial(p, b, 1)
				}
				c.Write(p, make([]byte, n))
			})
		}
		var end sim.Time
		env.Go("waiter", func(p *sim.Proc) {
			done.Wait(p)
			end = p.Now()
		})
		env.Run()
		env.Close()
		return sim.Duration(end)
	}
	one, two := run(1), run(2)
	if float64(two) < 1.6*float64(one) {
		t.Errorf("2 streams (%v) should take ~2x one stream (%v)", two, one)
	}
}
