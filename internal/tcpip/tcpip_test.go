package tcpip

import (
	"bytes"
	"testing"

	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
)

func newPair(t *testing.T, link netmodel.LinkModel) (*sim.Env, *Network, *Host, *Host) {
	t.Helper()
	env := sim.NewEnv()
	n := NewNetwork(env, link, netmodel.DefaultMem())
	return env, n, n.NewHost("a"), n.NewHost("b")
}

func TestDialWriteReadRoundTrip(t *testing.T) {
	env, _, a, b := newPair(t, netmodel.GigE())
	msg := []byte("swap me out, scotty")
	var got []byte
	env.Go("server", func(p *sim.Proc) {
		l, err := b.Listen(7)
		if err != nil {
			t.Errorf("Listen: %v", err)
			return
		}
		c, err := l.Accept(p)
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		buf := make([]byte, len(msg))
		if err := c.ReadFull(p, buf); err != nil {
			t.Errorf("ReadFull: %v", err)
			return
		}
		got = buf
		c.Write(p, []byte("ack"))
	})
	env.Go("client", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond) // let the listener come up
		c, err := a.Dial(p, b, 7)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		if err := c.Write(p, msg); err != nil {
			t.Errorf("Write: %v", err)
		}
		ack := make([]byte, 3)
		if err := c.ReadFull(p, ack); err != nil {
			t.Errorf("read ack: %v", err)
		}
		if string(ack) != "ack" {
			t.Errorf("ack = %q", ack)
		}
	})
	env.Run()
	if !bytes.Equal(got, msg) {
		t.Errorf("server got %q", got)
	}
}

func TestDialNoListener(t *testing.T) {
	env, _, a, b := newPair(t, netmodel.GigE())
	env.Go("client", func(p *sim.Proc) {
		if _, err := a.Dial(p, b, 99); err != ErrNoListener {
			t.Errorf("err = %v, want ErrNoListener", err)
		}
	})
	env.Run()
}

func TestStreamCoalescesAndSplits(t *testing.T) {
	// TCP is a byte stream: two writes may be read in one or many reads.
	env, _, a, b := newPair(t, netmodel.IPoIB())
	var got []byte
	env.Go("server", func(p *sim.Proc) {
		l, _ := b.Listen(1)
		c, _ := l.Accept(p)
		buf := make([]byte, 6)
		for len(got) < 12 {
			n, err := c.Read(p, buf)
			if err != nil {
				t.Errorf("Read: %v", err)
				return
			}
			got = append(got, buf[:n]...)
		}
	})
	env.Go("client", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		c, _ := a.Dial(p, b, 1)
		c.Write(p, []byte("hello "))
		c.Write(p, []byte("world!"))
	})
	env.Run()
	if string(got) != "hello world!" {
		t.Errorf("got %q", got)
	}
}

func TestGigESlowerThanIPoIB(t *testing.T) {
	run := func(link netmodel.LinkModel) sim.Duration {
		env, _, a, b := newPair(t, link)
		n := 128 * 1024
		var elapsed sim.Duration
		env.Go("server", func(p *sim.Proc) {
			l, _ := b.Listen(1)
			c, _ := l.Accept(p)
			buf := make([]byte, n)
			c.ReadFull(p, buf)
			c.Write(p, []byte{1})
		})
		env.Go("client", func(p *sim.Proc) {
			c, err := a.Dial(p, b, 1)
			for err != nil {
				p.Sleep(sim.Microsecond)
				c, err = a.Dial(p, b, 1)
			}
			t0 := p.Now()
			c.Write(p, make([]byte, n))
			one := make([]byte, 1)
			c.ReadFull(p, one)
			elapsed = p.Now().Sub(t0)
		})
		env.Run()
		return elapsed
	}
	gige, ipoib := run(netmodel.GigE()), run(netmodel.IPoIB())
	if gige <= ipoib {
		t.Errorf("gige 128K RTT %v should exceed ipoib %v", gige, ipoib)
	}
	if float64(gige) > 3.0*float64(ipoib) {
		t.Errorf("gige/ipoib = %.2f; expected < 3x (paper Fig. 1 shows ~2x at 128K)", float64(gige)/float64(ipoib))
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	env, _, a, b := newPair(t, netmodel.GigE())
	var readErr error
	env.Go("server", func(p *sim.Proc) {
		l, _ := b.Listen(1)
		c, _ := l.Accept(p)
		buf := make([]byte, 10)
		_, readErr = c.Read(p, buf)
	})
	env.Go("client", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		c, _ := a.Dial(p, b, 1)
		p.Sleep(10 * sim.Microsecond)
		c.Close()
	})
	env.Run()
	if readErr != ErrClosed {
		t.Errorf("reader got %v, want ErrClosed", readErr)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	env, _, a, b := newPair(t, netmodel.GigE())
	env.Go("server", func(p *sim.Proc) {
		l, _ := b.Listen(1)
		l.Accept(p)
	})
	env.Go("client", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		c, _ := a.Dial(p, b, 1)
		c.Close()
		if err := c.Write(p, []byte("x")); err != ErrClosed {
			t.Errorf("Write after close: %v, want ErrClosed", err)
		}
	})
	env.Run()
}

func TestPortInUse(t *testing.T) {
	env, _, _, b := newPair(t, netmodel.GigE())
	if _, err := b.Listen(5); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if _, err := b.Listen(5); err == nil {
		t.Error("second Listen on same port should fail")
	}
	env.Close()
}

func TestBufferedAccounting(t *testing.T) {
	env, _, a, b := newPair(t, netmodel.GigE())
	env.Go("pair", func(p *sim.Proc) {
		l, _ := b.Listen(1)
		var srv *Conn
		done := sim.NewEvent(p.Env())
		p.Env().Go("acc", func(p2 *sim.Proc) {
			srv, _ = l.Accept(p2)
			done.Trigger()
		})
		c, _ := a.Dial(p, b, 1)
		done.Wait(p)
		c.Write(p, make([]byte, 1000))
		p.Sleep(10 * sim.Millisecond)
		if srv.Buffered() != 1000 {
			t.Errorf("Buffered = %d, want 1000", srv.Buffered())
		}
		buf := make([]byte, 400)
		srv.Read(p, buf)
		if srv.Buffered() != 600 {
			t.Errorf("Buffered after partial read = %d, want 600", srv.Buffered())
		}
	})
	env.Run()
}
