// Package tcpip models kernel TCP/IP stream sockets in virtual time, for
// the paper's NBD baselines over Gigabit Ethernet and IPoIB.
//
// The model charges each side the TCP/IP stack costs that distinguish the
// IP paths from native verbs: per-message and per-segment protocol
// processing plus a kernel/user data copy, on top of wire serialization at
// the sender's egress and receiver's ingress ports. Stream semantics
// (byte-oriented, no message boundaries) are preserved, since the paper
// contrasts them with InfiniBand's pre-posted-receive message model.
package tcpip

import (
	"errors"

	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
)

// Errors returned by socket operations.
var (
	ErrClosed     = errors.New("tcpip: connection closed")
	ErrNoListener = errors.New("tcpip: connection refused")
)

// Network is one IP network (e.g. the GigE segment or the IPoIB fabric).
type Network struct {
	env  *sim.Env
	link netmodel.LinkModel
	mem  netmodel.MemModel
}

// NewNetwork creates a network from a link model.
func NewNetwork(env *sim.Env, link netmodel.LinkModel, mem netmodel.MemModel) *Network {
	return &Network{env: env, link: link, mem: mem}
}

// Env returns the simulation environment.
func (n *Network) Env() *sim.Env { return n.env }

// Link returns the underlying link model.
func (n *Network) Link() netmodel.LinkModel { return n.link }

// Host is a node's presence on one network.
type Host struct {
	net       *Network
	name      string
	listeners map[int]*Listener

	egressFree  sim.Time
	ingressFree sim.Time
}

// NewHost attaches a host to the network.
func (n *Network) NewHost(name string) *Host {
	return &Host{net: n, name: name, listeners: make(map[int]*Listener)}
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Listener accepts incoming connections on a port.
type Listener struct {
	host    *Host
	port    int
	backlog *sim.Chan[*Conn]
	closed  bool
}

// Listen starts accepting connections on port.
func (h *Host) Listen(port int) (*Listener, error) {
	if _, busy := h.listeners[port]; busy {
		return nil, errors.New("tcpip: port in use")
	}
	l := &Listener{host: h, port: port, backlog: sim.NewChan[*Conn](h.net.env, 128)}
	h.listeners[port] = l
	return l, nil
}

// Accept blocks until a connection arrives.
func (l *Listener) Accept(p *sim.Proc) (*Conn, error) {
	c, ok := l.backlog.Recv(p)
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

// Close stops the listener.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.host.listeners, l.port)
	l.backlog.Close()
}

// chunk is a delivered burst of bytes plus the receive-side CPU the reader
// must pay to consume it.
type chunk struct {
	data []byte
	cpu  sim.Duration
}

// Conn is one direction-pair of a TCP connection.
type Conn struct {
	net    *Network
	local  *Host
	remote *Host
	peer   *Conn
	rx     []chunk
	rxWait *sim.WaitQueue
	closed bool
}

// Dial connects to (remote, port), charging the handshake round trips.
func (h *Host) Dial(p *sim.Proc, remote *Host, port int) (*Conn, error) {
	l := remote.listeners[port]
	if l == nil || l.closed {
		return nil, ErrNoListener
	}
	// Three-way handshake: one and a half RTTs of small packets.
	p.Sleep(3 * h.net.link.Prop)
	env := h.net.env
	c := &Conn{net: h.net, local: h, remote: remote, rxWait: sim.NewWaitQueue(env)}
	s := &Conn{net: h.net, local: remote, remote: h, rxWait: sim.NewWaitQueue(env)}
	c.peer, s.peer = s, c
	l.backlog.Send(p, s)
	return c, nil
}

// Write sends len(data) bytes, charging the caller the send-side stack
// cost and modeling wire occupancy. It returns after the local stack has
// accepted the data (as with a socket send into the send buffer); delivery
// happens asynchronously.
func (c *Conn) Write(p *sim.Proc, data []byte) error {
	if c.closed || c.peer == nil {
		return ErrClosed
	}
	if c.peer.closed {
		return ErrClosed
	}
	n := len(data)
	link := c.net.link
	// Send-side entry cost: syscall and first-segment processing. The
	// remaining per-segment work pipelines with transmission and is
	// captured by the effective bandwidth below.
	p.Sleep(link.PerMsgCPU + link.SegTime(c.net.mem))

	env := c.net.env
	now := env.Now()
	effBW := link.EffectiveBW(c.net.mem)
	egStart := maxTime(now, c.local.egressFree)
	egDone := egStart.Add(effBW.Over(n))
	c.local.egressFree = egDone
	inStart := maxTime(egStart.Add(link.Prop), c.remote.ingressFree)
	inDone := inStart.Add(effBW.Over(n))
	c.remote.ingressFree = inDone

	payload := append([]byte(nil), data...)
	// Receive-side cost paid by the reader: per-message processing plus
	// one segment's worth of work (the rest overlapped with arrival).
	rxCPU := link.PerMsgCPU + link.SegTime(c.net.mem)
	peer := c.peer
	env.After(inDone.Sub(now), func() {
		if peer.closed {
			return
		}
		peer.rx = append(peer.rx, chunk{data: payload, cpu: rxCPU})
		peer.rxWait.WakeAll()
	})
	return nil
}

// Read consumes up to len(buf) available bytes, blocking until at least
// one byte (or EOF) arrives. The reader pays the receive-side stack cost
// proportional to the bytes consumed.
func (c *Conn) Read(p *sim.Proc, buf []byte) (int, error) {
	for len(c.rx) == 0 {
		if c.closed {
			return 0, ErrClosed
		}
		c.rxWait.Wait(p)
	}
	total := 0
	var cpu sim.Duration
	for total < len(buf) && len(c.rx) > 0 {
		ch := &c.rx[0]
		n := copy(buf[total:], ch.data)
		total += n
		if n == len(ch.data) {
			cpu += ch.cpu
			c.rx = c.rx[1:]
		} else {
			// Partial consume: charge proportionally.
			cpu += sim.Duration(float64(ch.cpu) * float64(n) / float64(len(ch.data)))
			ch.cpu -= sim.Duration(float64(ch.cpu) * float64(n) / float64(len(ch.data)))
			ch.data = ch.data[n:]
			break
		}
	}
	p.Sleep(cpu)
	return total, nil
}

// ReadFull reads exactly len(buf) bytes or fails.
func (c *Conn) ReadFull(p *sim.Proc, buf []byte) error {
	got := 0
	for got < len(buf) {
		n, err := c.Read(p, buf[got:])
		if err != nil {
			return err
		}
		got += n
	}
	return nil
}

// Close shuts the connection down in both directions.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.rxWait.WakeAll()
	if c.peer != nil && !c.peer.closed {
		c.peer.closed = true
		c.peer.rxWait.WakeAll()
	}
}

// Buffered returns the number of received-but-unread bytes.
func (c *Conn) Buffered() int {
	n := 0
	for _, ch := range c.rx {
		n += len(ch.data)
	}
	return n
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
