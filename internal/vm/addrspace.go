package vm

import (
	"fmt"

	"hpbd/internal/sim"
)

// AddressSpace is one process's paged anonymous memory region.
type AddressSpace struct {
	sys   *System
	name  string
	pages []Page
}

// NewAddressSpace creates a region of n pages (all initially not present).
func (s *System) NewAddressSpace(name string, n int) *AddressSpace {
	as := &AddressSpace{sys: s, name: name, pages: make([]Page, n)}
	for i := range as.pages {
		as.pages[i].as = as
		as.pages[i].idx = i
	}
	return as
}

// Name returns the address space's diagnostic name.
func (as *AddressSpace) Name() string { return as.name }

// NumPages returns the region size in pages.
func (as *AddressSpace) NumPages() int { return len(as.pages) }

// Page returns the bookkeeping record for page idx.
func (as *AddressSpace) Page(idx int) *Page { return &as.pages[idx] }

// Resident reports whether page idx is mapped; it is the workload fast
// path and charges no simulated time.
func (as *AddressSpace) Resident(idx int) bool {
	return as.pages[idx].state == PageResident
}

// MarkAccess updates reference/dirty state of a resident page without
// faulting; callers must have checked Resident. It is free of simulated
// cost (the hardware sets these bits).
func (as *AddressSpace) MarkAccess(idx int, write bool) {
	pg := &as.pages[idx]
	pg.referenced = true
	if pg.readahead {
		pg.readahead = false
		as.sys.stats.ReadAheadUseful++
	}
	if write && !pg.dirty {
		pg.dirty = true
		// Writing to a clean swap-cache page detaches it from its slot
		// (the slot contents are now stale).
		if pg.dev != nil {
			pg.dev.freeSlot(pg.slot)
			pg.dev = nil
		}
	}
}

// Touch accesses page idx, faulting it in if needed. It charges the fault
// cost and blocks on any required I/O. write marks the page dirty.
func (as *AddressSpace) Touch(p *sim.Proc, idx int, write bool) error {
	if idx < 0 || idx >= len(as.pages) {
		return fmt.Errorf("vm: page %d out of range (%d pages)", idx, len(as.pages))
	}
	pg := &as.pages[idx]
	if pg.state == PageResident {
		as.MarkAccess(idx, write)
		return nil
	}
	s := as.sys
	s.stats.Faults++
	p.Sleep(s.cfg.Host.PageFaultCPU)

	for {
		switch pg.state {
		case PageResident:
			if pg.readahead {
				pg.readahead = false
				s.stats.ReadAheadUseful++
			}
			as.MarkAccess(idx, write)
			return nil

		case PageNotPresent:
			if err := s.allocFrame(p); err != nil {
				return err
			}
			pg.state = PageResident
			pg.dirty = write
			// Fresh pages enter the LRU unreferenced: only re-accesses
			// while resident mark them young. Single-touch streaming
			// pages thus evict on the first scan (as 2.4's page-table
			// scan does after clearing the young bit).
			pg.referenced = false
			s.lruAdd(pg)
			s.stats.DemandZero++
			return nil

		case PageSwappedOut:
			if err := as.swapIn(p, pg); err != nil {
				return err
			}
			// Loop: page is now Resident (or the read failed and state
			// reverted).

		case PageReading, PageWriting:
			// Wait for the in-flight transition, then re-inspect.
			ev := pg.ioDone
			if ev == nil {
				// Completion raced ahead of us; re-inspect immediately.
				continue
			}
			ev.Wait(p)
		}
	}
}

// swapIn reads pg (and a readahead window around its slot) back into
// memory, blocking until pg's own read completes.
func (as *AddressSpace) swapIn(p *sim.Proc, pg *Page) error {
	s := as.sys
	dev := pg.dev
	s.stats.SwapIns++

	// Claim the faulting page first so concurrent faulters wait on its
	// ioDone instead of issuing a duplicate read; then get its frame
	// (which may block under memory pressure).
	pg.state = PageReading
	pg.ioDone = sim.NewEvent(s.env)
	pg.readahead = false
	if err := s.allocFrame(p); err != nil {
		pg.state = PageSwappedOut
		ev := pg.ioDone
		pg.ioDone = nil
		ev.Trigger()
		return err
	}

	// Readahead window: the aligned group of ReadAheadPages slots
	// containing pg's slot (Linux swapin_readahead).
	ra := s.cfg.ReadAheadPages
	if ra < 1 {
		ra = 1
	}
	start := pg.slot - pg.slot%ra
	end := start + ra
	if end > dev.Slots() {
		end = dev.Slots()
	}

	batch := []*Page{pg}
	for slot := start; slot < end; slot++ {
		owner := dev.owner[slot]
		if owner == nil || owner == pg || owner.state != PageSwappedOut {
			continue
		}
		if !s.tryAllocFrame() {
			continue // no spare memory: skip speculative read
		}
		owner.state = PageReading
		owner.ioDone = sim.NewEvent(s.env)
		owner.readahead = true
		s.stats.ReadAheadPages++
		batch = append(batch, owner)
	}

	// Submit the reads and let a watcher finalize each page as its I/O
	// completes.
	submitAt := s.env.Now()
	ios := make([]*ioHandle, 0, len(batch))
	flowsBegun := map[uint64]bool{} // membership only, never iterated
	for _, bp := range batch {
		h, err := submitPageIO(dev, false, bp.slot)
		if err == nil && s.tracer != nil {
			// One flow per merged block request, beginning at the vm layer.
			if id := h.io.RequestID(); id != 0 && !flowsBegun[id] {
				flowsBegun[id] = true
				s.tracer.FlowBegin("vm", "req", id)
			}
		}
		if err != nil {
			// Should not happen (slot addresses are in range); surface
			// loudly in tests.
			bp.state = PageSwappedOut
			bp.ioDone.Trigger()
			s.releaseFrame()
			return err
		}
		ios = append(ios, h)
	}
	dev.Queue.Unplug()

	myDone := pg.ioDone
	s.env.Go("swapin-watch", func(wp *sim.Proc) {
		for i, h := range ios {
			bp := batch[i]
			err := h.wait(wp)
			if err != nil {
				bp.state = PageSwappedOut
				s.releaseFrame()
			} else {
				// The faulting page is batch[0], so its latency is exact;
				// readahead pages may be observed slightly late when their
				// I/O overtakes an earlier one in the batch.
				s.hSwapIn.Observe(wp.Now().Sub(submitAt))
				if s.tracer != nil {
					s.tracer.Complete("vm", "swap-in", submitAt, wp.Now(),
						map[string]any{"slot": bp.slot, "readahead": bp.readahead, "req": h.io.RequestID()})
				}
				bp.state = PageResident
				bp.dirty = false
				bp.referenced = false
				// Keep the slot binding: a clean swap-cache page can be
				// reclaimed later without rewriting.
				s.lruAdd(bp)
			}
			bp.ioDone.Trigger()
			bp.ioDone = nil
		}
	})

	myDone.Wait(p)
	if pg.state != PageResident {
		return fmt.Errorf("vm: swap-in failed for %s page %d", as.name, pg.idx)
	}
	return nil
}

// Release tears the address space down: frames return to the free pool
// and swap slots are freed. In-flight transitions are left to complete on
// their own (their frames are reclaimed by the watcher paths).
func (as *AddressSpace) Release() {
	s := as.sys
	for i := range as.pages {
		pg := &as.pages[i]
		switch pg.state {
		case PageResident:
			s.lruRemove(pg)
			s.releaseFrame()
			if pg.dev != nil {
				pg.dev.freeSlot(pg.slot)
				pg.dev = nil
			}
			pg.state = PageNotPresent
		case PageSwappedOut:
			pg.dev.freeSlot(pg.slot)
			pg.dev = nil
			pg.state = PageNotPresent
		}
	}
}

// ResidentPages counts currently mapped pages.
func (as *AddressSpace) ResidentPages() int {
	n := 0
	for i := range as.pages {
		if as.pages[i].state == PageResident {
			n++
		}
	}
	return n
}
