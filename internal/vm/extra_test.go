package vm

import (
	"testing"

	"hpbd/internal/sim"
)

func TestReadAheadUsefulnessCounted(t *testing.T) {
	r := newRig(128, 4096, 20*sim.Microsecond)
	as := r.sys.NewAddressSpace("a", 256)
	r.run(func(p *sim.Proc) {
		// Fill sequentially (evicts the early pages), then re-read
		// sequentially: readahead should prefetch pages that the next
		// faults use, and those hits must be counted.
		for i := 0; i < 256; i++ {
			as.Touch(p, i, true)
		}
		for i := 0; i < 128; i++ {
			if err := as.Touch(p, i, false); err != nil {
				t.Fatalf("Touch: %v", err)
			}
		}
	})
	st := r.sys.Stats()
	if st.ReadAheadPages == 0 {
		t.Fatal("no readahead happened")
	}
	if st.ReadAheadUseful == 0 {
		t.Error("sequential re-read made no readahead page useful")
	}
	if st.ReadAheadUseful > st.ReadAheadPages {
		t.Errorf("useful (%d) > issued (%d)", st.ReadAheadUseful, st.ReadAheadPages)
	}
	// Sequential re-read should make most readahead useful.
	if float64(st.ReadAheadUseful) < 0.5*float64(st.ReadAheadPages) {
		t.Errorf("readahead hit rate %d/%d < 50%% on a sequential scan",
			st.ReadAheadUseful, st.ReadAheadPages)
	}
}

func TestDirectReclaimCountsUnderPressure(t *testing.T) {
	r := newRig(256, 4096, 30*sim.Microsecond)
	as := r.sys.NewAddressSpace("a", 1024)
	r.run(func(p *sim.Proc) {
		for i := 0; i < 1024; i++ {
			if err := as.Touch(p, i, true); err != nil {
				t.Fatalf("Touch: %v", err)
			}
		}
	})
	if r.sys.Stats().DirectReclaims == 0 {
		t.Error("sustained overcommit did no direct reclaim (2.4 semantics)")
	}
}

func TestPageStateString(t *testing.T) {
	cases := map[PageState]string{
		PageNotPresent: "not-present",
		PageResident:   "resident",
		PageWriting:    "writing",
		PageSwappedOut: "swapped",
		PageReading:    "reading",
		PageState(99):  "?",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestLowSwapHookFires(t *testing.T) {
	r := newRig(64, 96, 0) // small swap: 96 slots
	fired := 0
	r.sys.SetLowSwapHook(64, func() { fired++ })
	as := r.sys.NewAddressSpace("a", 160)
	r.run(func(p *sim.Proc) {
		for i := 0; i < 160; i++ {
			if err := as.Touch(p, i, true); err != nil {
				break // OOM is fine here; the hook is what we check
			}
		}
	})
	if fired != 1 {
		t.Errorf("hook fired %d times, want exactly 1 (one-shot)", fired)
	}
}

func TestSwapDeviceAccessors(t *testing.T) {
	r := newRig(64, 512, 0)
	if r.swap.Slots() != 512 {
		t.Errorf("Slots = %d", r.swap.Slots())
	}
	if r.swap.FreeSlots() != 512 {
		t.Errorf("FreeSlots = %d", r.swap.FreeSlots())
	}
	if r.sys.SwapFree() != 512 {
		t.Errorf("SwapFree = %d", r.sys.SwapFree())
	}
	if len(r.sys.SwapDevices()) != 1 {
		t.Errorf("SwapDevices = %d", len(r.sys.SwapDevices()))
	}
	r.env.Close()
}

func TestSlotClusteringSequential(t *testing.T) {
	// Sequential reclaim must produce sequential slots (the property that
	// makes request merging work).
	r := newRig(128, 4096, 0)
	as := r.sys.NewAddressSpace("a", 512)
	r.run(func(p *sim.Proc) {
		for i := 0; i < 512; i++ {
			as.Touch(p, i, true)
		}
	})
	// Inspect the slots bound to the evicted early pages: runs of
	// consecutive pages should hold consecutive slots.
	runs, prevSlot, runLen, maxRun := 0, -2, 0, 0
	for i := 0; i < 512; i++ {
		pg := as.Page(i)
		if pg.dev == nil {
			continue
		}
		if pg.slot == prevSlot+1 {
			runLen++
		} else {
			runs++
			runLen = 1
		}
		if runLen > maxRun {
			maxRun = runLen
		}
		prevSlot = pg.slot
	}
	if maxRun < 16 {
		t.Errorf("longest consecutive slot run = %d, want >= 16 (clustered allocation)", maxRun)
	}
	_ = runs
}
