package vm

import (
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/sim"
)

// fakeDriver is an instant (or fixed-delay) block driver for VM tests.
type fakeDriver struct {
	name    string
	sectors int64
	delay   sim.Duration
	reqs    []int // request sizes in bytes
	fail    bool
}

func (f *fakeDriver) Name() string   { return f.name }
func (f *fakeDriver) Sectors() int64 { return f.sectors }
func (f *fakeDriver) Submit(p *sim.Proc, r *blockdev.Request) {
	if f.delay > 0 {
		p.Sleep(f.delay)
	}
	f.reqs = append(f.reqs, r.Bytes())
	if f.fail {
		r.Complete(errTest)
		return
	}
	r.Complete(nil)
}

var errTest = blockdev.ErrOutOfRange // any sentinel will do

type rig struct {
	env  *sim.Env
	sys  *System
	dev  *fakeDriver
	swap *SwapDevice
}

// newRig builds a VM with memPages of RAM and swapPages of swap on an
// instant device.
func newRig(memPages, swapPages int, delay sim.Duration) *rig {
	env := sim.NewEnv()
	cfg := DefaultConfig(int64(memPages) * PageSize)
	d := &fakeDriver{name: "swap0", sectors: int64(swapPages) * SectorsPerPage, delay: delay}
	sys := NewSystem(env, cfg)
	q := blockdev.NewQueue(env, cfg.Host, d)
	sw := sys.AddSwap(q, 0)
	return &rig{env: env, sys: sys, dev: d, swap: sw}
}

func (r *rig) run(fn func(p *sim.Proc)) {
	r.env.Go("test", fn)
	r.env.Run()
	r.env.Close()
}

func TestDemandZeroWithinMemory(t *testing.T) {
	r := newRig(256, 1024, 0)
	as := r.sys.NewAddressSpace("a", 64)
	r.run(func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			if err := as.Touch(p, i, true); err != nil {
				t.Errorf("Touch(%d): %v", i, err)
			}
		}
	})
	st := r.sys.Stats()
	if st.DemandZero != 64 || st.SwapOuts != 0 || st.SwapIns != 0 {
		t.Errorf("stats = %+v, want 64 demand-zero and no swap traffic", st)
	}
	if as.ResidentPages() != 64 {
		t.Errorf("resident = %d, want 64", as.ResidentPages())
	}
}

func TestOvercommitTriggersClusteredSwapOut(t *testing.T) {
	r := newRig(256, 4096, 50*sim.Microsecond)
	as := r.sys.NewAddressSpace("a", 512) // 2x memory
	r.run(func(p *sim.Proc) {
		for i := 0; i < 512; i++ {
			if err := as.Touch(p, i, true); err != nil {
				t.Fatalf("Touch(%d): %v", i, err)
			}
			p.Sleep(20 * sim.Microsecond) // fill pace
		}
	})
	st := r.sys.Stats()
	if st.SwapOuts == 0 {
		t.Fatal("no swap-outs under 2x overcommit")
	}
	// Sequential dirty stream + clustered slots => large merged requests.
	var maxReq int
	for _, sz := range r.dev.reqs {
		if sz > maxReq {
			maxReq = sz
		}
	}
	if maxReq < 64*1024 {
		t.Errorf("largest swap-out request = %d bytes; expected >= 64K from merging", maxReq)
	}
}

func TestRefaultSwapsIn(t *testing.T) {
	r := newRig(128, 4096, 20*sim.Microsecond)
	as := r.sys.NewAddressSpace("a", 256)
	r.run(func(p *sim.Proc) {
		for i := 0; i < 256; i++ {
			if err := as.Touch(p, i, true); err != nil {
				t.Fatalf("fill Touch(%d): %v", i, err)
			}
		}
		// Early pages must have been evicted; re-touch them.
		for i := 0; i < 64; i++ {
			if err := as.Touch(p, i, false); err != nil {
				t.Fatalf("refault Touch(%d): %v", i, err)
			}
			if !as.Resident(i) {
				t.Fatalf("page %d not resident after refault", i)
			}
		}
	})
	st := r.sys.Stats()
	if st.SwapIns == 0 {
		t.Error("no swap-ins recorded on refault")
	}
	if st.ReadAheadPages == 0 {
		t.Error("readahead brought in no extra pages")
	}
}

func TestWriteToCleanSwapCachePageFreesSlot(t *testing.T) {
	r := newRig(128, 4096, 0)
	as := r.sys.NewAddressSpace("a", 256)
	r.run(func(p *sim.Proc) {
		for i := 0; i < 256; i++ {
			as.Touch(p, i, true)
		}
		// Refault page 0 read-only: it stays bound to its slot.
		as.Touch(p, 0, false)
		pg := as.Page(0)
		if pg.dev == nil {
			t.Fatal("clean swap-cache page lost its slot binding")
		}
		free0 := r.swap.FreeSlots()
		as.Touch(p, 0, true) // dirty it: slot must be freed
		if pg.dev != nil {
			t.Error("dirtied page still bound to a swap slot")
		}
		if r.swap.FreeSlots() != free0+1 {
			t.Errorf("free slots %d -> %d, want +1", free0, r.swap.FreeSlots())
		}
	})
}

func TestCleanReclaimAvoidsRewrite(t *testing.T) {
	r := newRig(128, 4096, 0)
	as := r.sys.NewAddressSpace("a", 512)
	r.run(func(p *sim.Proc) {
		for i := 0; i < 512; i++ {
			as.Touch(p, i, true)
		}
		preOuts := r.sys.Stats().SwapOuts
		// Touch early pages read-only, repeatedly, cycling through more
		// than memory: the second pass evicts clean swap-cache pages.
		for round := 0; round < 2; round++ {
			for i := 0; i < 512; i++ {
				if err := as.Touch(p, i, false); err != nil {
					t.Fatalf("Touch: %v", err)
				}
			}
		}
		st := r.sys.Stats()
		if st.FreedClean == 0 {
			t.Error("no clean reclaims; swap cache not working")
		}
		if st.SwapOuts-preOuts > st.FreedClean {
			t.Errorf("rewrites (%d) exceed clean frees (%d); read-only pages being rewritten",
				st.SwapOuts-preOuts, st.FreedClean)
		}
	})
}

func TestOOMWhenSwapFull(t *testing.T) {
	r := newRig(64, 32, 0) // tiny swap
	as := r.sys.NewAddressSpace("a", 256)
	var sawErr error
	r.run(func(p *sim.Proc) {
		for i := 0; i < 256; i++ {
			if err := as.Touch(p, i, true); err != nil {
				sawErr = err
				return
			}
		}
	})
	if sawErr != ErrOutOfMemory {
		t.Errorf("err = %v, want ErrOutOfMemory", sawErr)
	}
}

func TestReleaseReturnsFramesAndSlots(t *testing.T) {
	r := newRig(128, 4096, 0)
	as := r.sys.NewAddressSpace("a", 256)
	r.run(func(p *sim.Proc) {
		for i := 0; i < 256; i++ {
			as.Touch(p, i, true)
		}
		p.Sleep(10 * sim.Millisecond) // let write-backs drain
		as.Release()
		p.Sleep(10 * sim.Millisecond)
		if got := r.sys.FreePages(); got != r.sys.Config().PhysPages {
			t.Errorf("free pages after release = %d, want %d", got, r.sys.Config().PhysPages)
		}
		if r.swap.FreeSlots() != r.swap.Slots() {
			t.Errorf("slots leaked: %d free of %d", r.swap.FreeSlots(), r.swap.Slots())
		}
	})
}

func TestTouchOutOfRange(t *testing.T) {
	r := newRig(64, 64, 0)
	as := r.sys.NewAddressSpace("a", 16)
	r.run(func(p *sim.Proc) {
		if err := as.Touch(p, 16, false); err == nil {
			t.Error("out-of-range touch accepted")
		}
		if err := as.Touch(p, -1, false); err == nil {
			t.Error("negative touch accepted")
		}
	})
}

func TestConcurrentFaultersSingleRead(t *testing.T) {
	r := newRig(128, 4096, 100*sim.Microsecond)
	as := r.sys.NewAddressSpace("a", 256)
	r.env.Go("fill", func(p *sim.Proc) {
		for i := 0; i < 256; i++ {
			as.Touch(p, i, true)
		}
		// Two processes fault the same evicted page concurrently.
		preIns := r.sys.Stats().SwapIns
		done := sim.NewEvent(r.env)
		for k := 0; k < 2; k++ {
			r.env.Go("faulter", func(fp *sim.Proc) {
				if err := as.Touch(fp, 0, false); err != nil {
					t.Errorf("Touch: %v", err)
				}
				done.Trigger()
			})
		}
		done.Wait(p)
		if got := r.sys.Stats().SwapIns - preIns; got != 1 {
			t.Errorf("swap-ins for one page faulted twice = %d, want 1", got)
		}
	})
	r.env.Run()
	r.env.Close()
}

func TestTwoAddressSpacesShareMemory(t *testing.T) {
	r := newRig(256, 8192, 0)
	a := r.sys.NewAddressSpace("a", 200)
	b := r.sys.NewAddressSpace("b", 200)
	var doneA, doneB bool
	r.env.Go("a", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			if err := a.Touch(p, i, true); err != nil {
				t.Errorf("a.Touch: %v", err)
				return
			}
			p.Sleep(10 * sim.Microsecond)
		}
		doneA = true
	})
	r.env.Go("b", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			if err := b.Touch(p, i, true); err != nil {
				t.Errorf("b.Touch: %v", err)
				return
			}
			p.Sleep(10 * sim.Microsecond)
		}
		doneB = true
	})
	r.env.Run()
	r.env.Close()
	if !doneA || !doneB {
		t.Fatal("workloads did not finish")
	}
	if r.sys.Stats().SwapOuts == 0 {
		t.Error("combined footprint 400 pages in 256 frames produced no swap-outs")
	}
}

// Frame accounting invariant: free + resident + in-flight-writing frames
// equals the physical total after any workload, with no leaks.
func TestFrameAccountingInvariant(t *testing.T) {
	r := newRig(128, 4096, 30*sim.Microsecond)
	as := r.sys.NewAddressSpace("a", 300)
	r.run(func(p *sim.Proc) {
		rnd := r.env.Rand
		for k := 0; k < 3000; k++ {
			idx := rnd.Intn(300)
			if err := as.Touch(p, idx, rnd.Intn(2) == 0); err != nil {
				t.Fatalf("Touch: %v", err)
			}
		}
		p.Sleep(50 * sim.Millisecond) // drain write-backs
		inUse := 0
		for i := 0; i < as.NumPages(); i++ {
			switch as.Page(i).State() {
			case PageResident, PageWriting, PageReading:
				inUse++
			}
		}
		if got := r.sys.FreePages() + inUse; got != r.sys.Config().PhysPages {
			t.Errorf("frames: free %d + in-use %d = %d, want %d",
				r.sys.FreePages(), inUse, got, r.sys.Config().PhysPages)
		}
	})
}

// Slot accounting: every non-free slot is owned by a page that refers back
// to it.
func TestSlotOwnershipInvariant(t *testing.T) {
	r := newRig(128, 2048, 10*sim.Microsecond)
	as := r.sys.NewAddressSpace("a", 400)
	r.run(func(p *sim.Proc) {
		rnd := r.env.Rand
		for k := 0; k < 4000; k++ {
			if err := as.Touch(p, rnd.Intn(400), rnd.Intn(3) > 0); err != nil {
				t.Fatalf("Touch: %v", err)
			}
		}
		p.Sleep(50 * sim.Millisecond)
		used := 0
		for slot, inUse := range r.swap.used {
			if !inUse {
				if r.swap.owner[slot] != nil {
					t.Fatalf("free slot %d has an owner", slot)
				}
				continue
			}
			used++
			own := r.swap.owner[slot]
			if own == nil {
				t.Fatalf("used slot %d has no owner", slot)
			}
			if own.dev != r.swap || own.slot != slot {
				t.Fatalf("slot %d owner back-reference mismatch", slot)
			}
		}
		if used != r.swap.Slots()-r.swap.FreeSlots() {
			t.Errorf("used count %d != slots-free %d", used, r.swap.Slots()-r.swap.FreeSlots())
		}
	})
}

func TestMultipleSwapDevicesPriority(t *testing.T) {
	env := sim.NewEnv()
	cfg := DefaultConfig(128 * PageSize)
	sys := NewSystem(env, cfg)
	hi := &fakeDriver{name: "hi", sectors: 64 * SectorsPerPage}
	lo := &fakeDriver{name: "lo", sectors: 4096 * SectorsPerPage}
	swHi := sys.AddSwap(blockdev.NewQueue(env, cfg.Host, hi), 10)
	swLo := sys.AddSwap(blockdev.NewQueue(env, cfg.Host, lo), 1)
	as := sys.NewAddressSpace("a", 400)
	env.Go("fill", func(p *sim.Proc) {
		for i := 0; i < 400; i++ {
			if err := as.Touch(p, i, true); err != nil {
				t.Fatalf("Touch: %v", err)
			}
		}
	})
	env.Run()
	env.Close()
	if swHi.FreeSlots() != 0 {
		t.Errorf("high-priority device not filled first: %d slots free", swHi.FreeSlots())
	}
	if swLo.FreeSlots() == swLo.Slots() {
		t.Error("low-priority device never used after high filled")
	}
}
