// Package vm simulates the Linux 2.4 virtual memory system as the paper's
// swap traffic generator: paged address spaces, demand faults, a kswapd
// background reclaimer with free-page watermarks, a two-list (active /
// inactive) LRU approximation, clustered swap-slot allocation, and
// swap-in readahead over prioritized swap devices.
//
// The package tracks page *state*, not page contents: byte fidelity of the
// swap path is the block devices' business and is tested there. What vm
// reproduces is the I/O request stream the paper's Figure 6 profiles —
// large merged sequential write-outs and page_cluster-sized read-ins — and
// the stall behaviour that turns device latency into application slowdown.
package vm

import (
	"hpbd/internal/netmodel"
	"hpbd/internal/telemetry"
)

// PageSize is the x86 page size used throughout.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// SectorsPerPage is the number of 512-byte sectors per page.
const SectorsPerPage = PageSize / 512

// Config parameterizes a System.
type Config struct {
	// PhysPages is the number of physical page frames available for
	// application memory (total memory minus the kernel's share).
	PhysPages int
	// FreeMin is the hard floor: allocations stall below it.
	FreeMin int
	// FreeLow wakes kswapd.
	FreeLow int
	// FreeHigh is kswapd's reclaim target.
	FreeHigh int
	// SwapClusterMax is kswapd's per-batch reclaim size in pages
	// (Linux 2.4: 32 pages = one full 128 KB request when slots are
	// contiguous).
	SwapClusterMax int
	// ReadAheadPages is the swap-in readahead window (Linux page_cluster
	// default 2^3 = 8 pages).
	ReadAheadPages int
	// SlotCluster is the swap-slot allocator's cluster length
	// (SWAPFILE_CLUSTER = 256 slots).
	SlotCluster int
	// Host carries the CPU cost model.
	Host netmodel.HostModel
	// Telemetry, if non-nil, receives swap path latencies: the
	// vm.swapout.latency and vm.swapin.latency histograms (submit to
	// completion per page) and, with tracing enabled, "vm" track spans.
	Telemetry *telemetry.Registry
}

// DefaultConfig sizes a 2.4-style configuration for memBytes of
// application-usable memory.
func DefaultConfig(memBytes int64) Config {
	pages := int(memBytes / PageSize)
	min := pages / 64
	if min < 16 {
		min = 16
	}
	return Config{
		PhysPages:      pages,
		FreeMin:        min,
		FreeLow:        min * 2,
		FreeHigh:       min * 3,
		SwapClusterMax: 32,
		ReadAheadPages: 8,
		SlotCluster:    256,
		Host:           netmodel.DefaultHost(),
	}
}

// PageState is the lifecycle state of a virtual page.
type PageState uint8

const (
	// PageNotPresent means never touched or discarded-clean: the next
	// touch is a demand-zero (or refill) fault with no swap-in.
	PageNotPresent PageState = iota
	// PageResident means mapped in a physical frame.
	PageResident
	// PageWriting means unmapped with write-out I/O in flight.
	PageWriting
	// PageSwappedOut means the contents live in a swap slot.
	PageSwappedOut
	// PageReading means swap-in I/O is in flight.
	PageReading
)

func (s PageState) String() string {
	switch s {
	case PageNotPresent:
		return "not-present"
	case PageResident:
		return "resident"
	case PageWriting:
		return "writing"
	case PageSwappedOut:
		return "swapped"
	case PageReading:
		return "reading"
	}
	return "?"
}

// Stats aggregates VM activity.
type Stats struct {
	Faults          int64 // all page faults
	DemandZero      int64 // faults satisfied without I/O
	SwapIns         int64 // faults requiring a read
	ReadAheadPages  int64 // extra pages read by readahead
	ReadAheadUseful int64 // readahead pages later faulted while resident
	SwapOuts        int64 // pages written out
	FreedClean      int64 // pages reclaimed without I/O
	AllocStalls     int64 // times an allocation had to wait for memory
	DirectReclaims  int64 // synchronous reclaim passes by allocators
	KswapdWakes     int64
}
