package vm

import (
	"errors"

	"hpbd/internal/blockdev"
)

// ErrSwapFull reports that no swap device has a free slot.
var ErrSwapFull = errors.New("vm: swap space exhausted")

// SwapDevice is one registered swap area backed by a block device queue.
type SwapDevice struct {
	Queue *blockdev.Queue
	Prio  int

	nslots    int
	used      []bool
	owner     []*Page // reverse map slot -> page, for readahead
	freeSlots int
	// Clustered allocation state (SWAPFILE_CLUSTER): hand out consecutive
	// slots from the current cluster so sequential reclaim produces
	// sequential device offsets, which the block layer then merges.
	next      int
	remaining int
	cluster   int
}

func newSwapDevice(q *blockdev.Queue, prio, slotCluster int) *SwapDevice {
	n := int(q.Driver().Sectors() / SectorsPerPage)
	return &SwapDevice{
		Queue:     q,
		Prio:      prio,
		nslots:    n,
		used:      make([]bool, n),
		owner:     make([]*Page, n),
		freeSlots: n,
		cluster:   slotCluster,
	}
}

// Slots returns the device's total slot count.
func (d *SwapDevice) Slots() int { return d.nslots }

// FreeSlots returns the number of unallocated slots.
func (d *SwapDevice) FreeSlots() int { return d.freeSlots }

// allocSlot returns a slot index, preferring the current cluster.
func (d *SwapDevice) allocSlot(pg *Page) (int, bool) {
	if d.freeSlots == 0 {
		return 0, false
	}
	if d.remaining > 0 && d.next < d.nslots && !d.used[d.next] {
		s := d.next
		d.next++
		d.remaining--
		d.take(s, pg)
		return s, true
	}
	// Find a fresh cluster of consecutive free slots.
	run := 0
	for i := 0; i < d.nslots; i++ {
		if d.used[i] {
			run = 0
			continue
		}
		run++
		if run == d.cluster {
			start := i - run + 1
			d.next = start + 1
			d.remaining = d.cluster - 1
			d.take(start, pg)
			return start, true
		}
	}
	// Fragmented: first free slot.
	for i := 0; i < d.nslots; i++ {
		if !d.used[i] {
			d.remaining = 0
			d.take(i, pg)
			return i, true
		}
	}
	return 0, false
}

func (d *SwapDevice) take(s int, pg *Page) {
	d.used[s] = true
	d.owner[s] = pg
	d.freeSlots--
}

// freeSlot releases slot s.
func (d *SwapDevice) freeSlot(s int) {
	if !d.used[s] {
		return
	}
	d.used[s] = false
	d.owner[s] = nil
	d.freeSlots++
}

// slotSector converts a slot index to the device sector address.
func (d *SwapDevice) slotSector(s int) int64 { return int64(s) * SectorsPerPage }
