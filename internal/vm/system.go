package vm

import (
	"container/list"
	"errors"
	"sort"

	"hpbd/internal/blockdev"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// ErrOutOfMemory reports that an allocation could not be satisfied: memory
// and swap are exhausted (or reclaim made no progress).
var ErrOutOfMemory = errors.New("vm: out of memory")

// Page is the per-virtual-page bookkeeping record.
type Page struct {
	as         *AddressSpace
	idx        int
	state      PageState
	dirty      bool
	referenced bool

	// Swap binding (valid in PageWriting/PageSwappedOut/PageReading, and
	// in PageResident for clean swap-cache pages).
	dev  *SwapDevice
	slot int

	// LRU membership while resident.
	elem   *list.Element
	active bool

	// ioDone is triggered when an in-flight transition (write-out or
	// read-in) finishes; waiters re-inspect state afterwards.
	ioDone *sim.Event

	// readahead marks pages brought in speculatively, for stats.
	readahead bool
}

// State returns the page's current lifecycle state.
func (pg *Page) State() PageState { return pg.state }

// System is one node's VM: physical frames, the LRU lists, kswapd, and the
// registered swap devices.
type System struct {
	env *sim.Env
	cfg Config

	freePages int
	active    *list.List // of *Page, front = most recent
	inactive  *list.List
	swapDevs  []*SwapDevice

	freeWait   *sim.WaitQueue // allocators waiting for memory
	kswapdWake *sim.WaitQueue
	// lastScanFutile records that the previous reclaim pass made no
	// progress, so kswapd parks instead of spinning below the watermark.
	lastScanFutile bool
	// reclaiming serializes direct reclaim so concurrent allocators do
	// not all launder at once.
	reclaiming bool
	// lowSwapHook fires once when free swap slots fall below
	// lowSwapPages; consumers re-arm it after acting (dynamic swap
	// growth, see internal/dynswap).
	lowSwapPages int
	lowSwapHook  func()
	// rrCount drives round-robin rotation among equal-priority devices.
	rrCount int64
	stats   Stats

	// Telemetry handles (nil-safe: no-ops without cfg.Telemetry).
	hSwapOut *telemetry.Histogram // page write-back submit -> completion
	hSwapIn  *telemetry.Histogram // page read submit -> completion
	tracer   *telemetry.Tracer
}

// NewSystem creates a VM on env and starts kswapd.
func NewSystem(env *sim.Env, cfg Config) *System {
	s := &System{
		env:        env,
		cfg:        cfg,
		freePages:  cfg.PhysPages,
		active:     list.New(),
		inactive:   list.New(),
		freeWait:   sim.NewWaitQueue(env),
		kswapdWake: sim.NewWaitQueue(env),
		hSwapOut:   cfg.Telemetry.Histogram("vm.swapout.latency"),
		hSwapIn:    cfg.Telemetry.Histogram("vm.swapin.latency"),
		tracer:     cfg.Telemetry.Tracer(),
	}
	env.Go("kswapd", s.kswapd)
	return s
}

// Env returns the simulation environment.
func (s *System) Env() *sim.Env { return s.env }

// Config returns the VM configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns a copy of the counters.
func (s *System) Stats() Stats { return s.stats }

// FreePages returns the current free frame count.
func (s *System) FreePages() int { return s.freePages }

// AddSwap registers a block device queue as a swap area with the given
// priority (higher is used first, as with swapon -p) and returns the
// device record.
func (s *System) AddSwap(q *blockdev.Queue, prio int) *SwapDevice {
	d := newSwapDevice(q, prio, s.cfg.SlotCluster)
	s.swapDevs = append(s.swapDevs, d)
	s.sortSwapDevs()
	return d
}

// SwapDevices returns the registered devices in priority order.
func (s *System) SwapDevices() []*SwapDevice { return s.swapDevs }

// SwapFree returns total free slots across devices.
func (s *System) SwapFree() int {
	n := 0
	for _, d := range s.swapDevs {
		n += d.FreeSlots()
	}
	return n
}

// SetLowSwapHook arms fn to fire (once, in scheduler context) when free
// swap slots drop below pages. Re-arm after handling.
func (s *System) SetLowSwapHook(pages int, fn func()) {
	s.lowSwapPages = pages
	s.lowSwapHook = fn
}

// allocSwapSlot picks a device and allocates a slot: highest priority
// first, round-robin among devices of equal priority (as swapon does, so
// equal-priority devices share load instead of filling in order).
func (s *System) allocSwapSlot(pg *Page) (*SwapDevice, int, error) {
	for _, d := range s.rotatedDevs() {
		if slot, ok := d.allocSlot(pg); ok {
			if s.lowSwapHook != nil && s.SwapFree() < s.lowSwapPages {
				fn := s.lowSwapHook
				s.lowSwapHook = nil
				s.env.After(0, fn)
			}
			return d, slot, nil
		}
	}
	if s.lowSwapHook != nil {
		// Swap is already exhausted: fire immediately so growth can
		// rescue the allocation (the page is retried on the next scan).
		fn := s.lowSwapHook
		s.lowSwapHook = nil
		s.env.After(0, fn)
	}
	return nil, 0, ErrSwapFull
}

// lruAdd puts a resident page on the front of the active list.
func (s *System) lruAdd(pg *Page) {
	pg.active = true
	pg.elem = s.active.PushFront(pg)
}

// lruRemove detaches a page from whichever list holds it.
func (s *System) lruRemove(pg *Page) {
	if pg.elem == nil {
		return
	}
	if pg.active {
		s.active.Remove(pg.elem)
	} else {
		s.inactive.Remove(pg.elem)
	}
	pg.elem = nil
}

// wakeKswapd nudges the background reclaimer.
func (s *System) wakeKswapd() {
	if s.kswapdWake.WakeOne() {
		s.stats.KswapdWakes++
	}
}

// allocFrame obtains one free frame for p. Below the low watermark the
// allocating process performs synchronous direct reclaim — the Linux 2.4
// balance_classzone behaviour the paper's platform ran — so application
// progress is coupled to the swap device's write-back latency.
func (s *System) allocFrame(p *sim.Proc) error {
	if s.freePages < s.cfg.FreeLow && !s.reclaiming {
		// Launder a batch ourselves and wait for it (balance_classzone).
		// Concurrent allocators (and recursive swap-in allocations) skip
		// straight to the floor check below. kswapd is only woken as a
		// safety net near the hard floor.
		s.reclaiming = true
		s.directReclaim(p)
		s.reclaiming = false
	}
	if s.freePages <= 2 {
		// Emergency only: under sustained pressure reclaim happens in
		// process context above; kswapd is the last-resort trickle.
		s.wakeKswapd()
	}
	attempts := 0
	for s.freePages <= 0 {
		s.stats.AllocStalls++
		s.wakeKswapd()
		if !s.freeWait.WaitTimeout(p, 10*sim.Millisecond) {
			attempts++
			if attempts > 200 {
				return ErrOutOfMemory
			}
		}
	}
	s.freePages--
	return nil
}

// tryAllocFrame is the non-blocking variant used by readahead: it fails
// rather than stalls when memory is tight.
func (s *System) tryAllocFrame() bool {
	if s.freePages <= s.cfg.FreeMin {
		return false
	}
	s.freePages--
	return true
}

// releaseFrame returns a frame to the free pool and wakes waiters.
func (s *System) releaseFrame() {
	s.freePages++
	s.freeWait.WakeAll()
}

// rotatedDevs returns the devices in allocation order: descending
// priority, with a rotating start position within each equal-priority
// group. The rotation advances once per SlotCluster allocations so whole
// clusters stay on one device (merging still works) while load spreads.
func (s *System) rotatedDevs() []*SwapDevice {
	if len(s.swapDevs) <= 1 {
		return s.swapDevs
	}
	s.rrCount++
	out := make([]*SwapDevice, 0, len(s.swapDevs))
	for i := 0; i < len(s.swapDevs); {
		j := i
		for j < len(s.swapDevs) && s.swapDevs[j].Prio == s.swapDevs[i].Prio {
			j++
		}
		group := s.swapDevs[i:j]
		if len(group) == 1 {
			out = append(out, group[0])
		} else {
			start := int(s.rrCount/int64(s.cfg.SlotCluster)) % len(group)
			for k := 0; k < len(group); k++ {
				out = append(out, group[(start+k)%len(group)])
			}
		}
		i = j
	}
	return out
}

// sortSwapDevs keeps devices in descending priority order.
func (s *System) sortSwapDevs() {
	sort.SliceStable(s.swapDevs, func(i, j int) bool {
		return s.swapDevs[i].Prio > s.swapDevs[j].Prio
	})
}
