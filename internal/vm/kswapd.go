package vm

import (
	"hpbd/internal/blockdev"
	"hpbd/internal/sim"
)

// ioHandle wraps a submitted page I/O.
type ioHandle struct{ io *blockdev.IO }

// submitPageIO queues one page-sized I/O at the device offset for slot.
func submitPageIO(dev *SwapDevice, write bool, slot int) (*ioHandle, error) {
	buf := make([]byte, PageSize)
	io, err := dev.Queue.Submit(write, dev.slotSector(slot), buf)
	if err != nil {
		return nil, err
	}
	return &ioHandle{io: io}, nil
}

func (h *ioHandle) wait(p *sim.Proc) error { return h.io.Wait(p) }

// kswapd is the background reclaimer: woken when free pages fall below
// FreeLow, it ages the LRU and evicts from the inactive tail until free
// pages reach FreeHigh.
func (s *System) kswapd(p *sim.Proc) {
	for {
		// Park until an allocator wakes us (even if still below the
		// watermark: when reclaim can make no progress, spinning would
		// live-lock the simulation; allocators re-wake us on every stall).
		if s.freePages >= s.cfg.FreeLow || s.lastScanFutile {
			s.kswapdWake.Wait(p)
		}
		s.lastScanFutile = false
		noProgress := 0
		// kswapd only restores the floor-to-low band: allocating
		// processes launder for themselves above it (2.4's
		// balance_classzone keeps reclaim in process context under
		// sustained pressure, which is what couples the paper's
		// application times to swap device latency).
		for s.freePages < s.cfg.FreeLow && noProgress < 3 {
			freed, writes := s.shrink(p, s.cfg.SwapClusterMax)
			inflight := len(writes)
			if inflight > 0 {
				// 2.4 kswapd launders synchronously: it waits for its
				// batch before scanning again, so background reclaim
				// cannot outrun the swap device.
				s.finalizeWrites(p, writes)
				freed += inflight
			}
			switch {
			case freed == 0 && inflight == 0:
				// No progress possible right now (nothing on the lists,
				// everything referenced, or swap full). Back off briefly,
				// then park again; allocators re-wake us.
				noProgress++
				if noProgress >= 3 {
					s.lastScanFutile = true
				}
				s.kswapdWake.WaitTimeout(p, 2*sim.Millisecond)
			case freed == 0:
				// Throttle: wait for some write-back to finish.
				noProgress = 0
				s.freeWait.WaitTimeout(p, 5*sim.Millisecond)
			default:
				noProgress = 0
			}
		}
	}
}

// refillInactive ages pages from the active tail onto the inactive list,
// giving referenced pages a second trip around the active list.
func (s *System) refillInactive(p *sim.Proc, want int) {
	moved := 0
	scans := s.active.Len()
	for moved < want && scans > 0 && s.active.Len() > 0 {
		scans--
		e := s.active.Back()
		pg := e.Value.(*Page)
		s.active.Remove(e)
		p.Sleep(s.cfg.Host.ReclaimPerPage / 4)
		if pg.referenced {
			pg.referenced = false
			pg.elem = s.active.PushFront(pg)
			continue
		}
		pg.active = false
		pg.elem = s.inactive.PushFront(pg)
		moved++
	}
}

// writeout is one in-flight page write-back produced by shrink.
type writeout struct {
	pg    *Page
	h     *ioHandle
	dev   *SwapDevice
	start sim.Time // submission, for the swap-out latency histogram
}

// finalizeWrites waits for each write-back and finalizes its page. It runs
// on kswapd's watcher for background reclaim, or synchronously on the
// allocating process for direct reclaim (the Linux 2.4 balance_classzone
// path that couples application progress to swap device latency).
func (s *System) finalizeWrites(p *sim.Proc, writes []writeout) {
	for _, w := range writes {
		err := w.h.wait(p)
		pg := w.pg
		if err == nil {
			s.hSwapOut.Observe(p.Now().Sub(w.start))
			if s.tracer != nil {
				s.tracer.Complete("vm", "swap-out", w.start, p.Now(),
					map[string]any{"slot": pg.slot, "req": w.h.io.RequestID()})
			}
		}
		if err != nil {
			// Failed write-back: page stays resident and dirty.
			w.dev.freeSlot(pg.slot)
			pg.dev = nil
			pg.state = PageResident
			pg.dirty = true
			s.lruAdd(pg)
		} else {
			pg.state = PageSwappedOut
			s.releaseFrame()
		}
		ev := pg.ioDone
		pg.ioDone = nil
		if ev != nil {
			ev.Trigger()
		}
	}
}

// directReclaim is the synchronous reclaim an allocating process performs
// under memory pressure: scan, launder, and wait for the write-backs.
func (s *System) directReclaim(p *sim.Proc) int {
	s.stats.DirectReclaims++
	freed, writes := s.shrink(p, s.cfg.SwapClusterMax)
	if len(writes) > 0 {
		s.finalizeWrites(p, writes)
		freed += len(writes)
	}
	return freed
}

// shrink evicts up to batch pages from the inactive tail. It returns the
// number of frames freed immediately and the write-backs it submitted
// (whose frames free when the caller finalizes them).
func (s *System) shrink(p *sim.Proc, batch int) (freed int, writes []writeout) {
	if s.inactive.Len() < batch {
		s.refillInactive(p, batch-s.inactive.Len())
	}
	// Slice keyed by a seen-map: unplug order must follow submission
	// order, not random map order (Unplug dispatches queued I/O).
	seen := map[*SwapDevice]bool{}
	var devsTouched []*SwapDevice
	flowsBegun := map[uint64]bool{} // membership only, never iterated

	scanned := 0
	for scanned < batch && s.inactive.Len() > 0 {
		scanned++
		e := s.inactive.Back()
		pg := e.Value.(*Page)
		s.inactive.Remove(e)
		pg.elem = nil
		p.Sleep(s.cfg.Host.ReclaimPerPage)

		if pg.referenced {
			// Second chance: back to active.
			pg.referenced = false
			s.lruAdd(pg)
			continue
		}
		if !pg.dirty {
			// Clean: drop the frame. A swap-cache page keeps its slot
			// (refault will read it back); a never-written page refaults
			// as demand-zero.
			if pg.dev != nil {
				pg.state = PageSwappedOut
			} else {
				pg.state = PageNotPresent
			}
			s.releaseFrame()
			s.stats.FreedClean++
			freed++
			continue
		}
		// Dirty: needs a slot and a write-back.
		dev, slot, err := s.allocSwapSlot(pg)
		if err != nil {
			// Swap full: the page stays resident; put it back on active
			// so we do not rescan it immediately.
			s.lruAdd(pg)
			continue
		}
		pg.dev, pg.slot = dev, slot
		pg.state = PageWriting
		pg.dirty = false
		pg.ioDone = sim.NewEvent(s.env)
		h, serr := submitPageIO(dev, true, slot)
		if serr != nil {
			// Device refused (should not happen): undo.
			dev.freeSlot(slot)
			pg.dev = nil
			pg.state = PageResident
			pg.dirty = true
			ev := pg.ioDone
			pg.ioDone = nil
			ev.Trigger()
			s.lruAdd(pg)
			continue
		}
		s.stats.SwapOuts++
		if s.tracer != nil {
			// One flow per merged block request, beginning at the vm layer.
			if id := h.io.RequestID(); id != 0 && !flowsBegun[id] {
				flowsBegun[id] = true
				s.tracer.FlowBegin("vm", "req", id)
			}
		}
		writes = append(writes, writeout{pg: pg, h: h, dev: dev, start: p.Now()})
		if !seen[dev] {
			seen[dev] = true
			devsTouched = append(devsTouched, dev)
		}
	}
	for _, dev := range devsTouched {
		dev.Queue.Unplug()
	}
	return freed, writes
}
