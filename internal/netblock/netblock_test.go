package netblock

import (
	"bytes"
	"io"
	"log"
	"sync"
	"testing"
)

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func startServer(t *testing.T, capacity int64) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", ServerConfig{CapacityBytes: capacity, Logger: quietLogger()})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31) ^ seed
	}
	return b
}

func TestRoundTrip(t *testing.T) {
	s := startServer(t, 1<<20)
	c, err := Dial(s.Addr(), 1<<20, 8)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	want := pattern(128*1024, 7)
	if _, err := c.WriteAt(want, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(want))
	if _, err := c.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("round trip corrupted data")
	}
}

func TestManyPagesConcurrent(t *testing.T) {
	s := startServer(t, 4<<20)
	c, err := Dial(s.Addr(), 4<<20, 16)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	const pages = 256
	var wg sync.WaitGroup
	errs := make(chan error, pages)
	for i := 0; i < pages; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := pattern(4096, byte(i))
			if _, err := c.WriteAt(buf, int64(i)*4096); err != nil {
				errs <- err
				return
			}
			got := make([]byte, 4096)
			if _, err := c.ReadAt(got, int64(i)*4096); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, buf) {
				errs <- ErrRemote
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent I/O: %v", err)
	}
}

func TestPipelinedWrites(t *testing.T) {
	s := startServer(t, 4<<20)
	c, err := Dial(s.Addr(), 4<<20, 8)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	var waits []func() error
	for i := 0; i < 32; i++ {
		w, err := c.WriteAsync(pattern(32*1024, byte(i)), int64(i)*32*1024)
		if err != nil {
			t.Fatalf("WriteAsync %d: %v", i, err)
		}
		waits = append(waits, w)
	}
	for i, w := range waits {
		if err := w(); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	got := make([]byte, 32*1024)
	if _, err := c.ReadAt(got, 5*32*1024); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, pattern(32*1024, 5)) {
		t.Error("pipelined write corrupted data")
	}
}

func TestRangeAndSizeErrors(t *testing.T) {
	s := startServer(t, 1<<20)
	c, err := Dial(s.Addr(), 1<<20, 4)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.WriteAt(make([]byte, 4096), 1<<20); err != ErrOutOfRange {
		t.Errorf("tail write err = %v", err)
	}
	if _, err := c.ReadAt(make([]byte, 4096), -1); err != ErrOutOfRange {
		t.Errorf("negative read err = %v", err)
	}
	if _, err := c.WriteAt(nil, 0); err != ErrBadSize {
		t.Errorf("empty write err = %v", err)
	}
	if _, err := c.WriteAt(make([]byte, MaxRequestBytes+1), 0); err != ErrBadSize {
		t.Errorf("oversize write err = %v", err)
	}
}

func TestCapacityExhaustion(t *testing.T) {
	s := startServer(t, 1<<20)
	c1, err := Dial(s.Addr(), 768*1024, 4)
	if err != nil {
		t.Fatalf("first Dial: %v", err)
	}
	defer c1.Close()
	if _, err := Dial(s.Addr(), 768*1024, 4); err == nil {
		t.Error("second attach should exceed capacity")
	}
	if s.Allocated() != 768*1024 {
		t.Errorf("Allocated = %d", s.Allocated())
	}
}

func TestOversubscribedAreaRejected(t *testing.T) {
	s := startServer(t, 1<<20)
	if _, err := Dial(s.Addr(), 2<<20, 4); err == nil {
		t.Error("area larger than capacity accepted")
	}
}

func TestServerCloseFailsClients(t *testing.T) {
	s, err := Serve("127.0.0.1:0", ServerConfig{CapacityBytes: 1 << 20, Logger: quietLogger()})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	c, err := Dial(s.Addr(), 1<<20, 4)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.WriteAt(pattern(4096, 1), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	s.Close()
	// Subsequent I/O must fail, not hang.
	if _, err := c.ReadAt(make([]byte, 4096), 0); err == nil {
		t.Error("read after server close should fail")
	}
}

func TestTwoClientsIsolated(t *testing.T) {
	s := startServer(t, 2<<20)
	c1, err := Dial(s.Addr(), 1<<20, 4)
	if err != nil {
		t.Fatalf("Dial1: %v", err)
	}
	defer c1.Close()
	c2, err := Dial(s.Addr(), 1<<20, 4)
	if err != nil {
		t.Fatalf("Dial2: %v", err)
	}
	defer c2.Close()
	a, b := pattern(4096, 1), pattern(4096, 2)
	if _, err := c1.WriteAt(a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.WriteAt(b, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := c1.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Error("client 1 sees client 2's data (or lost its own)")
	}
	if _, err := c2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b) {
		t.Error("client 2 data wrong")
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	s := startServer(t, 1<<20)
	c, err := Dial(s.Addr(), 1<<20, 4)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	got := make([]byte, 4096)
	for i := range got {
		got[i] = 0xFF
	}
	if _, err := c.ReadAt(got, 512*1024); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten area not zero")
		}
	}
}

func TestStat(t *testing.T) {
	s := startServer(t, 2<<20)
	c, err := Dial(s.Addr(), 1<<20, 4)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	capacity, allocated, err := c.Stat()
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if capacity != 2<<20 {
		t.Errorf("capacity = %d", capacity)
	}
	if allocated != 1<<20 {
		t.Errorf("allocated = %d", allocated)
	}
	// Stat interleaves correctly with data traffic.
	if _, err := c.WriteAt(pattern(4096, 1), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if _, _, err := c.Stat(); err != nil {
		t.Fatalf("second Stat: %v", err)
	}
}
