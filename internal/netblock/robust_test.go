package netblock

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"hpbd/internal/wire"
)

// TestGarbageHelloRejected: a client that sends junk instead of a Hello
// must be rejected without disturbing the server.
func TestGarbageHelloRejected(t *testing.T) {
	s := startServer(t, 1<<20)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	junk := make([]byte, wire.HelloSize)
	for i := range junk {
		junk[i] = 0xEE
	}
	if _, err := conn.Write(junk); err != nil {
		t.Fatalf("write: %v", err)
	}
	rep := make([]byte, wire.HelloReplySize)
	if _, err := io.ReadFull(conn, rep); err != nil {
		t.Fatalf("read reply: %v", err)
	}
	hr, err := wire.UnmarshalHelloReply(rep)
	if err != nil {
		t.Fatalf("UnmarshalHelloReply: %v", err)
	}
	if hr.Status == wire.StatusOK {
		t.Error("garbage hello accepted")
	}
	// The server must still serve legitimate clients.
	c, err := Dial(s.Addr(), 64*1024, 4)
	if err != nil {
		t.Fatalf("Dial after garbage client: %v", err)
	}
	defer c.Close()
	if _, err := c.WriteAt(pattern(4096, 1), 0); err != nil {
		t.Errorf("WriteAt: %v", err)
	}
}

// TestOversizedRequestDropsConnection: a request header with an absurd
// length cannot be resynchronized, so the server must drop the stream
// rather than trust it.
func TestOversizedRequestDropsConnection(t *testing.T) {
	s := startServer(t, 1<<20)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	hb := make([]byte, wire.HelloSize)
	wire.MarshalHello(hb, &wire.Hello{AreaBytes: 64 * 1024})
	conn.Write(hb)
	hrb := make([]byte, wire.HelloReplySize)
	io.ReadFull(conn, hrb)

	hdr := make([]byte, wire.RequestSize)
	wire.MarshalRequest(hdr, &wire.Request{
		Type: wire.ReqWrite, Handle: 1, Offset: 0, Length: 1 << 30,
	})
	conn.Write(hdr)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	one := make([]byte, 1)
	if _, err := conn.Read(one); err == nil {
		t.Error("server kept the connection after an unresyncable request")
	}
}

// TestOutOfRangeWritePayloadDrained: a rejected write whose payload is
// still sane in size must not desynchronize the stream.
func TestOutOfRangeWritePayloadDrained(t *testing.T) {
	s := startServer(t, 1<<20)
	c, err := Dial(s.Addr(), 64*1024, 4)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	// Issue a raw out-of-range write through the client's own plumbing is
	// blocked by checkRange, so go raw.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	hb := make([]byte, wire.HelloSize)
	wire.MarshalHello(hb, &wire.Hello{AreaBytes: 64 * 1024})
	conn.Write(hb)
	hrb := make([]byte, wire.HelloReplySize)
	io.ReadFull(conn, hrb)

	hdr := make([]byte, wire.RequestSize)
	wire.MarshalRequest(hdr, &wire.Request{
		Type: wire.ReqWrite, Handle: 7, Offset: 60 * 1024, Length: 8192, // tail overrun
	})
	conn.Write(hdr)
	conn.Write(make([]byte, 8192))
	rep := make([]byte, wire.ReplySize)
	if _, err := io.ReadFull(conn, rep); err != nil {
		t.Fatalf("read reply: %v", err)
	}
	r, err := wire.UnmarshalReply(rep)
	if err != nil || r.Status != wire.StatusOutOfRange {
		t.Errorf("reply = %+v, %v; want out-of-range", r, err)
	}
	// Stream still in sync: a good request must work.
	wire.MarshalRequest(hdr, &wire.Request{Type: wire.ReqRead, Handle: 8, Offset: 0, Length: 4096})
	conn.Write(hdr)
	if _, err := io.ReadFull(conn, rep); err != nil {
		t.Fatalf("read second reply: %v", err)
	}
	if r, _ := wire.UnmarshalReply(rep); r.Status != wire.StatusOK || r.Handle != 8 {
		t.Errorf("second reply = %+v", r)
	}
	data := make([]byte, 4096)
	if _, err := io.ReadFull(conn, data); err != nil {
		t.Fatalf("read payload: %v", err)
	}
}

// TestRandomOpsAgainstModel drives random reads/writes concurrently and
// checks the store against an in-memory model.
func TestRandomOpsAgainstModel(t *testing.T) {
	const size = 1 << 20
	const pageSz = 4096
	s := startServer(t, size)
	c, err := Dial(s.Addr(), size, 8)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	model := make([]byte, size)
	var mu sync.Mutex // serialize per-page ownership in the model
	rnd := rand.New(rand.NewSource(99))
	type op struct {
		page int
		val  uint64
	}
	ops := make([]op, 400)
	for i := range ops {
		ops[i] = op{page: rnd.Intn(size / pageSz), val: rnd.Uint64()}
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(ops))
	for _, o := range ops {
		o := o
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, pageSz)
			binary.LittleEndian.PutUint64(buf, o.val)
			mu.Lock() // model and store must agree per page
			defer mu.Unlock()
			if _, err := c.WriteAt(buf, int64(o.page)*pageSz); err != nil {
				errs <- err
				return
			}
			copy(model[o.page*pageSz:], buf)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("op: %v", err)
	}
	// Verify every touched page.
	got := make([]byte, pageSz)
	for _, o := range ops {
		if _, err := c.ReadAt(got, int64(o.page)*pageSz); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
		if !bytes.Equal(got, model[o.page*pageSz:(o.page+1)*pageSz]) {
			t.Fatalf("page %d diverged from model", o.page)
		}
	}
}
