package netblock

import (
	"io"
	"log"
	"testing"
)

func benchPair(b *testing.B, size int64) (*Server, *Client) {
	b.Helper()
	s, err := Serve("127.0.0.1:0", ServerConfig{
		CapacityBytes: size,
		Logger:        log.New(io.Discard, "", 0),
	})
	if err != nil {
		b.Fatalf("Serve: %v", err)
	}
	c, err := Dial(s.Addr(), size, 16)
	if err != nil {
		s.Close()
		b.Fatalf("Dial: %v", err)
	}
	b.Cleanup(func() {
		c.Close()
		s.Close()
	})
	return s, c
}

// BenchmarkWriteAllocs measures steady-state allocations per 4 KB write.
// The pooled header/reply buffers should keep this near zero on both ends.
func BenchmarkWriteAllocs(b *testing.B) {
	_, c := benchPair(b, 1<<20)
	page := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%16) * 4096
		if _, err := c.WriteAt(page, off); err != nil {
			b.Fatalf("WriteAt: %v", err)
		}
	}
}

// BenchmarkReadAllocs measures steady-state allocations per 4 KB read; the
// reply payload comes out of payloadPool instead of a fresh make.
func BenchmarkReadAllocs(b *testing.B) {
	_, c := benchPair(b, 1<<20)
	page := make([]byte, 4096)
	if _, err := c.WriteAt(page, 0); err != nil {
		b.Fatalf("WriteAt: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadAt(page, 0); err != nil {
			b.Fatalf("ReadAt: %v", err)
		}
	}
}
