package netblock

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"hpbd/internal/telemetry"
)

// stageAcc is the live-path analogue of the simulator's critical-path
// analyzer: mutex-guarded wall-clock sums per telemetry.Stage, so a real
// TCP run reports the same breakdown taxonomy as the simulated HPBD and
// NBD datapaths. Stages the socket client cannot observe (block-layer
// queue, staging-pool wait, RDMA, server copy) stay zero; per the shared
// convention, unattributed server + wire time lands in the reply stage.
// The recorded stages partition each request's end-to-end wall time
// exactly, as in the simulator.
type stageAcc struct {
	mu    sync.Mutex
	count int64
	errs  int64
	sums  [telemetry.NumStages]time.Duration
	e2e   time.Duration
}

// record ingests one completed request. credit and send come from the
// issue path, drain is the client-side copy-out, total is end-to-end;
// whatever is left over is the reply stage (server + wire).
func (a *stageAcc) record(err bool, credit, send, drain, total time.Duration) {
	reply := total - credit - send - drain
	if reply < 0 {
		reply = 0
	}
	a.mu.Lock()
	a.count++
	if err {
		a.errs++
	}
	a.sums[telemetry.StageCreditStall] += credit
	a.sums[telemetry.StageSend] += send
	a.sums[telemetry.StageReply] += reply
	a.sums[telemetry.StageDrain] += drain
	a.e2e += total
	a.mu.Unlock()
}

// StageSum returns the accumulated wall-clock time in one stage.
func (c *Client) StageSum(s telemetry.Stage) time.Duration {
	if s < 0 || s >= telemetry.NumStages {
		return 0
	}
	c.stages.mu.Lock()
	defer c.stages.mu.Unlock()
	return c.stages.sums[s]
}

// Requests returns how many I/Os the breakdown has ingested.
func (c *Client) Requests() int64 {
	c.stages.mu.Lock()
	defer c.stages.mu.Unlock()
	return c.stages.count
}

// Breakdown renders the client's critical-path attribution in the same
// fixed stage order and format family as the simulator's BreakdownTable,
// so live and simulated runs read side by side.
func (c *Client) Breakdown() string {
	a := &c.stages
	a.mu.Lock()
	defer a.mu.Unlock()
	var b strings.Builder
	if a.count == 0 {
		fmt.Fprintf(&b, "critical-path breakdown: no completed requests\n")
		return b.String()
	}
	fmt.Fprintf(&b, "critical-path breakdown (%d requests, %d errors, mean end-to-end %.3fus, wall clock):\n",
		a.count, a.errs, float64(a.e2e.Nanoseconds())/float64(a.count)/1e3)
	fmt.Fprintf(&b, "  %-14s %14s %12s %8s\n", "stage", "total(ms)", "mean(us)", "share")
	for s := telemetry.Stage(0); s < telemetry.NumStages; s++ {
		tot := float64(a.sums[s].Nanoseconds())
		share := 0.0
		if a.e2e > 0 {
			share = tot / float64(a.e2e.Nanoseconds())
		}
		fmt.Fprintf(&b, "  %-14s %14.6f %12.3f %7.2f%%\n",
			s.String(), tot/1e6, tot/float64(a.count)/1e3, share*100)
	}
	fmt.Fprintf(&b, "  %-14s %14.6f %12.3f %7.2f%%\n",
		"end-to-end", float64(a.e2e.Nanoseconds())/1e6,
		float64(a.e2e.Nanoseconds())/float64(a.count)/1e3, 100.0)
	return b.String()
}
