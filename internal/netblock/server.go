// Package netblock is the runnable, real-network incarnation of HPBD: a
// user-space remote-memory block store speaking the same wire protocol as
// the simulated system, over stdlib TCP. A memory server exports part of
// its RAM; clients mount it as a block device and read/write pages with
// multiple outstanding requests (the credit-based flow control and
// request/reply framing of the paper, with the RDMA data movement
// replaced by inline payloads, which is what RDMA-less transports do).
//
// It is the piece a downstream user can deploy today: run
// cmd/hpbd-server on a memory-rich host and mount it with Client.
package netblock

import (
	"errors"
	"io"
	"log"
	"net"
	"sync"

	"hpbd/internal/wire"
)

// MaxRequestBytes bounds a single transfer (the block layer's 128 KB).
const MaxRequestBytes = 128 * 1024

// replyPool recycles reply frames (header + worst-case inline payload)
// across requests and connections.
var replyPool = sync.Pool{New: func() any {
	b := make([]byte, wire.ReplySize+MaxRequestBytes)
	return &b
}}

// getReply takes a pooled frame sliced to n bytes.
func getReply(n int) *[]byte {
	p := replyPool.Get().(*[]byte)
	*p = (*p)[:cap(*p)][:n]
	return p
}

// ServerConfig parameterizes a memory server.
type ServerConfig struct {
	// CapacityBytes is the total memory the server will export.
	CapacityBytes int64
	// Logger receives connection lifecycle messages (nil: log.Default).
	Logger *log.Logger
}

// Server is the user-space memory server daemon.
type Server struct {
	cfg ServerConfig
	ln  net.Listener
	log *log.Logger

	mu        sync.Mutex
	allocated int64
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// Serve starts a server listening on addr ("host:port"; ":0" picks a free
// port). It returns immediately; Addr reports the bound address.
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.CapacityBytes <= 0 {
		return nil, errors.New("netblock: capacity must be positive")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.Default()
	}
	s := &Server{cfg: cfg, ln: ln, log: logger, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Allocated returns the bytes currently exported to clients.
func (s *Server) Allocated() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocated
}

// Close stops the listener and all connections and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// reserve claims area bytes from the capacity, returning false if the
// server is fully subscribed.
func (s *Server) reserve(n int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.allocated+n > s.cfg.CapacityBytes {
		return false
	}
	s.allocated += n
	return true
}

func (s *Server) release(n int64) {
	s.mu.Lock()
	s.allocated -= n
	s.mu.Unlock()
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// serveConn handles the handshake and then the request stream for one
// client.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)

	hbuf := make([]byte, wire.HelloSize)
	if _, err := io.ReadFull(conn, hbuf); err != nil {
		return
	}
	hello, err := wire.UnmarshalHello(hbuf)
	hrep := wire.HelloReply{Status: wire.StatusOK}
	var area []byte
	switch {
	case err != nil:
		hrep.Status = wire.StatusBadRequest
	case hello.AreaBytes == 0 || hello.AreaBytes > uint64(s.cfg.CapacityBytes):
		hrep.Status = wire.StatusOutOfRange
	case !s.reserve(int64(hello.AreaBytes)):
		hrep.Status = wire.StatusServerError
	default:
		area = make([]byte, hello.AreaBytes)
		defer s.release(int64(hello.AreaBytes))
	}
	hrbuf := make([]byte, wire.HelloReplySize)
	wire.MarshalHelloReply(hrbuf, &hrep)
	if _, err := conn.Write(hrbuf); err != nil || hrep.Status != wire.StatusOK {
		return
	}
	s.log.Printf("netblock: client %s attached, area %d bytes", conn.RemoteAddr(), len(area))
	defer s.log.Printf("netblock: client %s detached", conn.RemoteAddr())

	// Request loop. Replies go through a dedicated writer goroutine so
	// request processing never blocks on a slow reply path. The writer
	// coalesces whatever has queued up into one writev per wakeup and
	// recycles the frames; after a write error it keeps draining (and
	// discarding) so the request loop never blocks on a dead socket.
	replies := make(chan *[]byte, 64)
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		var failed bool
		var batch net.Buffers
		var rec []*[]byte
		for f := range replies {
			batch = append(batch[:0], *f)
			rec = append(rec[:0], f)
		drain:
			for len(batch) < cap(replies) {
				select {
				case f2, ok := <-replies:
					if !ok {
						break drain
					}
					batch = append(batch, *f2)
					rec = append(rec, f2)
				default:
					break drain
				}
			}
			if !failed {
				// Flush through a shadow header: WriteTo consumes its
				// receiver, and batch's backing array is reused next wakeup.
				bw := batch
				if _, err := bw.WriteTo(conn); err != nil {
					failed = true
				}
			}
			for _, r := range rec {
				replyPool.Put(r)
			}
			for i := range batch {
				batch[i] = nil
			}
			for i := range rec {
				rec[i] = nil
			}
		}
	}()
	defer wwg.Wait()
	defer close(replies)

	hdr := make([]byte, wire.RequestSize)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		req, err := wire.UnmarshalRequest(hdr)
		if err != nil {
			return // corrupted stream: drop the connection
		}
		n := int(req.Length)
		st := wire.StatusOK
		if n <= 0 || n > MaxRequestBytes || req.Offset+uint64(n) > uint64(len(area)) {
			st = wire.StatusOutOfRange
		}
		switch req.Type {
		case wire.ReqWrite:
			// Payload follows even for rejected requests, to keep the
			// stream in sync; cap the drain at the declared length.
			if st != wire.StatusOK {
				if n > 0 && n <= MaxRequestBytes {
					if _, err := io.CopyN(io.Discard, conn, int64(n)); err != nil {
						return
					}
				} else {
					return // cannot resync
				}
			} else if _, err := io.ReadFull(conn, area[req.Offset:req.Offset+uint64(n)]); err != nil {
				return
			}
			out := getReply(wire.ReplySize)
			wire.MarshalReply(*out, &wire.Reply{Handle: req.Handle, Status: st})
			replies <- out
		case wire.ReqRead:
			if st != wire.StatusOK {
				out := getReply(wire.ReplySize)
				wire.MarshalReply(*out, &wire.Reply{Handle: req.Handle, Status: st})
				replies <- out
				continue
			}
			out := getReply(wire.ReplySize + n)
			wire.MarshalReply(*out, &wire.Reply{Handle: req.Handle, Status: st})
			copy((*out)[wire.ReplySize:], area[req.Offset:req.Offset+uint64(n)])
			replies <- out
		case wire.ReqStat:
			out := getReply(wire.ReplySize + wire.StatPayloadSize)
			wire.MarshalReply(*out, &wire.Reply{Handle: req.Handle, Status: wire.StatusOK})
			wire.MarshalStat((*out)[wire.ReplySize:], &wire.Stat{
				CapacityBytes:  uint64(s.cfg.CapacityBytes),
				AllocatedBytes: uint64(s.Allocated()),
			})
			replies <- out
		default:
			out := getReply(wire.ReplySize)
			wire.MarshalReply(*out, &wire.Reply{Handle: req.Handle, Status: wire.StatusBadRequest})
			replies <- out
		}
	}
}
