package netblock

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hpbd/internal/wire"
)

// Client errors.
var (
	ErrClosed     = errors.New("netblock: client closed")
	ErrRejected   = errors.New("netblock: server rejected attach")
	ErrRemote     = errors.New("netblock: remote error")
	ErrOutOfRange = errors.New("netblock: I/O out of range")
	ErrBadSize    = errors.New("netblock: invalid I/O size")
	ErrLostConn   = errors.New("netblock: connection lost")
)

// hdrPool recycles request-header buffers across issues; payloadPool
// recycles reply payload buffers across reads. Both store pointers so the
// pool does not re-box the slice header on every Put.
var (
	hdrPool = sync.Pool{New: func() any {
		b := make([]byte, wire.RequestSize)
		return &b
	}}
	payloadPool = sync.Pool{New: func() any {
		b := make([]byte, MaxRequestBytes)
		return &b
	}}
)

func putPayload(p *[]byte) {
	if p != nil {
		payloadPool.Put(p)
	}
}

// Client is a remote-memory block device over TCP. ReadAt/WriteAt are
// safe for concurrent use; up to `credits` requests are pipelined on the
// wire (the paper's water-mark flow control).
type Client struct {
	conn    net.Conn
	size    int64
	credits chan struct{}

	// Outgoing frames queue under wmu and are flushed by whichever issuer
	// finds no flush in progress; concurrent issuers' frames coalesce into
	// a single writev (one syscall per burst instead of per frame — the
	// socket analogue of the doorbell batching in the simulated client).
	wmu       sync.Mutex
	wq        net.Buffers
	wrecycle  []*[]byte // pooled header buffers to release after flushing
	wqSpare   net.Buffers
	wrecSpare []*[]byte // retired queue slices, reused to avoid churn
	wflushing bool
	wlost     bool

	pmu     sync.Mutex
	pending map[uint64]*waiter
	nextH   uint64
	closed  bool
	lostErr error

	// stages attributes each request's wall-clock latency to the shared
	// critical-path taxonomy (see stages.go).
	stages stageAcc

	wg sync.WaitGroup
}

// waiter tracks one outstanding request.
type waiter struct {
	ch      chan result
	readLen int // payload length expected with the reply (0 for writes)
	// credit and send are the issue path's wall-clock stage measurements,
	// consumed by the caller when it records the completed request.
	credit time.Duration
	send   time.Duration
}

type result struct {
	status wire.Status
	data   []byte
	pooled *[]byte // backing buffer of data to return to payloadPool
	err    error
}

// Dial attaches to the memory server at addr, reserving size bytes, with
// the given number of flow-control credits (<= 0 means 16).
func Dial(addr string, size int64, credits int) (*Client, error) {
	if size <= 0 {
		return nil, errors.New("netblock: size must be positive")
	}
	if credits <= 0 {
		credits = 16
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	hbuf := make([]byte, wire.HelloSize)
	wire.MarshalHello(hbuf, &wire.Hello{AreaBytes: uint64(size)})
	if _, err := conn.Write(hbuf); err != nil {
		conn.Close()
		return nil, err
	}
	hrbuf := make([]byte, wire.HelloReplySize)
	if _, err := io.ReadFull(conn, hrbuf); err != nil {
		conn.Close()
		return nil, err
	}
	hrep, err := wire.UnmarshalHelloReply(hrbuf)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if hrep.Status != wire.StatusOK {
		conn.Close()
		return nil, fmt.Errorf("%w: %v", ErrRejected, hrep.Status)
	}
	c := &Client{
		conn:    conn,
		size:    size,
		credits: make(chan struct{}, credits),
		pending: make(map[uint64]*waiter),
	}
	for i := 0; i < credits; i++ {
		c.credits <- struct{}{}
	}
	c.wg.Add(1)
	go c.recvLoop()
	return c, nil
}

// Size returns the attached area size in bytes.
func (c *Client) Size() int64 { return c.size }

// Close tears the connection down; outstanding requests fail.
func (c *Client) Close() error {
	c.pmu.Lock()
	if c.closed {
		c.pmu.Unlock()
		return nil
	}
	c.closed = true
	c.pmu.Unlock()
	err := c.conn.Close()
	c.wg.Wait()
	c.fail(ErrClosed)
	return err
}

// recvLoop is the reply demultiplexer (the event-driven receiver thread
// of the paper's client design).
func (c *Client) recvLoop() {
	defer c.wg.Done()
	rbuf := make([]byte, wire.ReplySize)
	for {
		if _, err := io.ReadFull(c.conn, rbuf); err != nil {
			c.fail(ErrLostConn)
			return
		}
		rep, err := wire.UnmarshalReply(rbuf)
		if err != nil {
			c.fail(err)
			return
		}
		c.pmu.Lock()
		w := c.pending[rep.Handle]
		delete(c.pending, rep.Handle)
		c.pmu.Unlock()
		if w == nil {
			c.fail(fmt.Errorf("netblock: reply for unknown handle %d", rep.Handle))
			return
		}
		var data []byte
		var pooled *[]byte
		if w.readLen > 0 && rep.Status == wire.StatusOK {
			pooled = payloadPool.Get().(*[]byte)
			if cap(*pooled) < w.readLen {
				*pooled = make([]byte, w.readLen)
			}
			data = (*pooled)[:w.readLen]
			if _, err := io.ReadFull(c.conn, data); err != nil {
				putPayload(pooled)
				w.ch <- result{err: ErrLostConn}
				c.credits <- struct{}{}
				c.fail(ErrLostConn)
				return
			}
		}
		w.ch <- result{status: rep.Status, data: data, pooled: pooled}
		// The reply releases the flow-control credit (the paper's
		// receiver thread replenishes the water-mark).
		c.credits <- struct{}{}
	}
}

// fail errors out every waiter and records the loss.
func (c *Client) fail(err error) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.lostErr == nil {
		c.lostErr = err
	}
	for h, w := range c.pending {
		delete(c.pending, h)
		select {
		case w.ch <- result{err: ErrLostConn}:
		default:
		}
		select {
		case c.credits <- struct{}{}:
		default:
		}
	}
}

// checkRange validates an I/O against the attached area.
func (c *Client) checkRange(off int64, n int) error {
	if n <= 0 || n > MaxRequestBytes {
		return ErrBadSize
	}
	if off < 0 || off+int64(n) > c.size {
		return ErrOutOfRange
	}
	return nil
}

// send queues a header frame (plus optional payload) for transmission and
// flushes the queue unless another issuer is already flushing (that
// issuer's next writev picks them up). recycle buffers go back to hdrPool
// once their frames are on the wire.
func (c *Client) send(hdr, payload []byte, recycle *[]byte) error {
	c.wmu.Lock()
	if c.wlost {
		c.wmu.Unlock()
		if recycle != nil {
			hdrPool.Put(recycle)
		}
		return ErrLostConn
	}
	c.wq = append(c.wq, hdr)
	if payload != nil {
		c.wq = append(c.wq, payload)
	}
	if recycle != nil {
		c.wrecycle = append(c.wrecycle, recycle)
	}
	if c.wflushing {
		c.wmu.Unlock()
		return nil // the active flusher will carry these frames
	}
	c.wflushing = true
	var lost bool
	for len(c.wq) > 0 && !lost {
		// Swap in the spare queue slices so concurrent enqueuers reuse
		// retired backing arrays instead of growing fresh ones each burst.
		batch := c.wq
		rec := c.wrecycle
		c.wq = c.wqSpare
		c.wrecycle = c.wrecSpare
		c.wqSpare = nil
		c.wrecSpare = nil
		c.wmu.Unlock()
		// WriteTo advances (and nils out) its receiver; flush a shadow
		// header so batch keeps the backing array for reuse.
		bw := batch
		_, err := bw.WriteTo(c.conn)
		for _, r := range rec {
			hdrPool.Put(r)
		}
		if err != nil {
			c.fail(ErrLostConn)
			lost = true
		}
		for i := range batch {
			batch[i] = nil
		}
		for i := range rec {
			rec[i] = nil
		}
		c.wmu.Lock()
		c.wqSpare = batch[:0]
		c.wrecSpare = rec[:0]
	}
	c.wlost = c.wlost || lost
	c.wflushing = false
	// Frames enqueued after a failed writev will never flush; release
	// their header buffers now that wlost stops new arrivals.
	if c.wlost {
		for _, r := range c.wrecycle {
			hdrPool.Put(r)
		}
		c.wq, c.wrecycle = nil, nil
	}
	lost = c.wlost
	c.wmu.Unlock()
	if lost {
		return ErrLostConn
	}
	return nil
}

// issue sends one request (plus optional payload) and returns the waiter,
// with the credit-stall and send stage durations measured on it.
func (c *Client) issue(typ wire.ReqType, off int64, n int, payload []byte) (*waiter, error) {
	issueAt := time.Now()
	<-c.credits // water-mark flow control
	creditAt := time.Now()
	c.pmu.Lock()
	if c.closed || c.lostErr != nil {
		err := c.lostErr
		c.pmu.Unlock()
		c.credits <- struct{}{}
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	c.nextH++
	h := c.nextH
	w := &waiter{ch: make(chan result, 1), credit: creditAt.Sub(issueAt)}
	if typ == wire.ReqRead {
		w.readLen = n
	}
	c.pending[h] = w
	c.pmu.Unlock()

	hp := hdrPool.Get().(*[]byte)
	hdr := (*hp)[:wire.RequestSize]
	wire.MarshalRequest(hdr, &wire.Request{
		Type: typ, Handle: h, Offset: uint64(off), Length: uint32(n),
	})
	if err := c.send(hdr, payload, hp); err != nil {
		// fail() may have already reaped the waiter and refunded the
		// credit; only undo what is still ours.
		c.pmu.Lock()
		_, still := c.pending[h]
		delete(c.pending, h)
		c.pmu.Unlock()
		if still {
			c.credits <- struct{}{}
		}
		return nil, err
	}
	w.send = time.Since(creditAt)
	return w, nil
}

// wait collects the result (the credit was already returned by the
// receive loop when the reply arrived).
func (c *Client) wait(w *waiter) (result, error) {
	r := <-w.ch
	if r.err != nil {
		return r, r.err
	}
	switch r.status {
	case wire.StatusOK:
		return r, nil
	case wire.StatusOutOfRange:
		return r, ErrOutOfRange
	default:
		return r, fmt.Errorf("%w: %v", ErrRemote, r.status)
	}
}

// WriteAt stores p at byte offset off (a swap-out). It blocks until the
// server acknowledges.
func (c *Client) WriteAt(p []byte, off int64) (int, error) {
	if err := c.checkRange(off, len(p)); err != nil {
		return 0, err
	}
	start := time.Now()
	w, err := c.issue(wire.ReqWrite, off, len(p), p)
	if err != nil {
		return 0, err
	}
	_, werr := c.wait(w)
	c.stages.record(werr != nil, w.credit, w.send, 0, time.Since(start))
	if werr != nil {
		return 0, werr
	}
	return len(p), nil
}

// ReadAt fills p from byte offset off (a swap-in).
func (c *Client) ReadAt(p []byte, off int64) (int, error) {
	if err := c.checkRange(off, len(p)); err != nil {
		return 0, err
	}
	start := time.Now()
	w, err := c.issue(wire.ReqRead, off, len(p), nil)
	if err != nil {
		return 0, err
	}
	r, err := c.wait(w)
	if err != nil {
		putPayload(r.pooled)
		c.stages.record(true, w.credit, w.send, 0, time.Since(start))
		return 0, err
	}
	drainAt := time.Now()
	n := copy(p, r.data)
	putPayload(r.pooled)
	c.stages.record(false, w.credit, w.send, time.Since(drainAt), time.Since(start))
	return n, nil
}

// Stat asks the server for its capacity and current allocation.
func (c *Client) Stat() (capacity, allocated int64, err error) {
	w, err := c.issueStat()
	if err != nil {
		return 0, 0, err
	}
	r, err := c.wait(w)
	if err != nil {
		putPayload(r.pooled)
		return 0, 0, err
	}
	st, err := wire.UnmarshalStat(r.data)
	putPayload(r.pooled)
	if err != nil {
		return 0, 0, ErrLostConn
	}
	return int64(st.CapacityBytes), int64(st.AllocatedBytes), nil
}

// issueStat sends a stat request expecting the fixed stat payload.
func (c *Client) issueStat() (*waiter, error) {
	<-c.credits
	c.pmu.Lock()
	if c.closed || c.lostErr != nil {
		err := c.lostErr
		c.pmu.Unlock()
		c.credits <- struct{}{}
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	c.nextH++
	h := c.nextH
	w := &waiter{ch: make(chan result, 1), readLen: wire.StatPayloadSize}
	c.pending[h] = w
	c.pmu.Unlock()

	hp := hdrPool.Get().(*[]byte)
	hdr := (*hp)[:wire.RequestSize]
	wire.MarshalRequest(hdr, &wire.Request{Type: wire.ReqStat, Handle: h})
	if err := c.send(hdr, nil, hp); err != nil {
		c.pmu.Lock()
		_, still := c.pending[h]
		delete(c.pending, h)
		c.pmu.Unlock()
		if still {
			c.credits <- struct{}{}
		}
		return nil, err
	}
	return w, nil
}

// WriteAsync begins a pipelined write; the returned function blocks for
// completion. Use it to keep several requests on the wire at once.
func (c *Client) WriteAsync(p []byte, off int64) (func() error, error) {
	if err := c.checkRange(off, len(p)); err != nil {
		return nil, err
	}
	start := time.Now()
	w, err := c.issue(wire.ReqWrite, off, len(p), p)
	if err != nil {
		return nil, err
	}
	return func() error {
		_, werr := c.wait(w)
		c.stages.record(werr != nil, w.credit, w.send, 0, time.Since(start))
		return werr
	}, nil
}
