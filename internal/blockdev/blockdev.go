// Package blockdev models the Linux 2.4 block I/O layer: per-device
// request queues that merge adjacent buffer-head-sized I/Os into larger
// requests (bounded by the 128 KB single-request limit the paper cites),
// plus plug/unplug batching and per-request dispatch statistics.
//
// The VM system submits page-sized I/Os; the merging behaviour of this
// layer is what produces the ~120 KB average swap-out requests the paper
// profiles in Figure 6.
package blockdev

import (
	"errors"
	"fmt"

	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// SectorSize is the unit of block addressing.
const SectorSize = 512

// MaxRequestBytes is the largest single request the layer will build
// (Linux 2.4: 255 sectors ~ 128 KB; we use the even 128 KB the paper cites).
const MaxRequestBytes = 128 * 1024

// ErrOutOfRange is returned for I/O beyond the device end.
var ErrOutOfRange = errors.New("blockdev: I/O beyond end of device")

// IO is one submitted unit (a buffer head): page-sized in the swap path.
type IO struct {
	Write  bool
	Sector int64
	Data   []byte
	done   *sim.Event
	err    error
	req    *Request
}

// Wait blocks until the I/O completes and returns its error.
func (io *IO) Wait(p *sim.Proc) error {
	io.done.Wait(p)
	return io.err
}

// Done reports whether the I/O has completed.
func (io *IO) Done() bool { return io.done.Triggered() }

// Err returns the completion error (valid after Done).
func (io *IO) Err() error { return io.err }

// Request is a merged run of I/Os, contiguous on the device.
type Request struct {
	Write  bool
	Sector int64
	ios    []*IO
	nbytes int
	queued sim.Time
	id     uint64
}

// ID returns the queue-assigned request id (0 for standalone requests).
// Downstream drivers use it as the causal flow id in traces and flight
// records, tying block-layer, driver, fabric and server events together.
func (r *Request) ID() uint64 { return r.id }

// QueuedAt returns the virtual time the request entered the block layer.
func (r *Request) QueuedAt() sim.Time { return r.queued }

// RequestID returns the id of the request this I/O was merged into
// (valid once submitted; 0 before).
func (io *IO) RequestID() uint64 {
	if io.req == nil {
		return 0
	}
	return io.req.id
}

// Bytes returns the total request payload size.
func (r *Request) Bytes() int { return r.nbytes }

// End returns the sector just past the request.
func (r *Request) End() int64 { return r.Sector + int64(r.nbytes/SectorSize) }

// NumIOs returns how many buffer heads were merged into this request.
func (r *Request) NumIOs() int { return len(r.ios) }

// Data gathers the request payload (for writes) into one contiguous buffer.
func (r *Request) Data() []byte {
	buf := make([]byte, 0, r.nbytes)
	for _, io := range r.ios {
		buf = append(buf, io.Data...)
	}
	return buf
}

// Scatter distributes read data back to the constituent I/O buffers.
func (r *Request) Scatter(data []byte) {
	off := 0
	for _, io := range r.ios {
		off += copy(io.Data, data[off:])
	}
}

// Complete finishes the request, propagating err to every merged I/O.
func (r *Request) Complete(err error) {
	for _, io := range r.ios {
		io.err = err
		io.done.Trigger()
	}
}

// NewRequest builds a standalone request outside a queue, for layered
// drivers (mirroring, striping) that fan one request out to children.
// Completion is observed with Wait.
func NewRequest(env *sim.Env, write bool, sector int64, data []byte) *Request {
	io := &IO{Write: write, Sector: sector, Data: data, done: sim.NewEvent(env)}
	r := &Request{Write: write, Sector: sector, ios: []*IO{io}, nbytes: len(data), queued: env.Now()}
	io.req = r
	return r
}

// Wait blocks until the request completes and returns its error.
func (r *Request) Wait(p *sim.Proc) error {
	return r.ios[0].Wait(p)
}

// Err returns the first constituent IO's completion error.
func (r *Request) Err() error { return r.ios[0].err }

// Driver is a block device driver: it accepts dispatched requests and
// completes them asynchronously (drivers that can only handle one request
// at a time block inside Submit).
type Driver interface {
	Name() string
	Sectors() int64
	// Submit hands the driver one request. It runs on the queue's
	// dispatch process and may block for admission control; completion is
	// signalled via r.Complete, possibly later.
	Submit(p *sim.Proc, r *Request)
}

// RequestStat records one dispatched request for profiling (Figure 6)
// and trace capture (traceio).
type RequestStat struct {
	At     sim.Time
	Sector int64
	Bytes  int
	Write  bool
	IOs    int
}

// Stats aggregates queue activity.
type Stats struct {
	IOsSubmitted       int
	RequestsDispatched int
	BytesRead          int64
	BytesWritten       int64
	Merges             int
	Log                []RequestStat
}

// Queue is a per-device request queue.
type Queue struct {
	env      *sim.Env
	host     netmodel.HostModel
	driver   Driver
	pending  []*Request
	plugged  bool
	work     *sim.WaitQueue
	stats    Stats
	logReqs  bool
	elevator bool
	headPos  int64
	nextID   uint64
	comp     string // trace track name, set with telemetry
	tracer   *telemetry.Tracer
	qwait    *telemetry.Histogram
	merges   *telemetry.Counter
	reqIOs   *telemetry.Histogram
	activity func() // submission hook (health-engine kick); nil when unused
}

// NewQueue creates the request queue for driver and starts its dispatch
// process on env.
func NewQueue(env *sim.Env, host netmodel.HostModel, driver Driver) *Queue {
	q := &Queue{env: env, host: host, driver: driver, work: sim.NewWaitQueue(env)}
	env.Go("blkq-"+driver.Name(), q.dispatch)
	return q
}

// Driver returns the underlying driver.
func (q *Queue) Driver() Driver { return q.driver }

// SetTelemetry attaches the node registry: queue-wait latency feeds the
// blk.queue.wait histogram and, when tracing is on, every dispatch emits a
// span plus a causal flow step under the request id.
func (q *Queue) SetTelemetry(reg *telemetry.Registry) {
	q.comp = "blkq-" + q.driver.Name()
	q.tracer = reg.Tracer()
	q.qwait = reg.Histogram("blk.queue.wait")
}

// EnableLog turns on per-request logging (needed for Figure 6).
func (q *Queue) EnableLog() { q.logReqs = true }

// EnableMergeTelemetry exports the elevator's merge activity into reg:
// blk.merges counts buffer heads absorbed into a pending request
// (front or back), and the blk.req.ios histogram records the merged run
// length of every dispatched request — the upstream counterpart of the
// hpbd client's merge.* series, so client-side WR merging and block-layer
// merging can be compared in one trace. Opt-in so default metric output
// is unchanged.
func (q *Queue) EnableMergeTelemetry(reg *telemetry.Registry) {
	q.merges = reg.Counter("blk.merges")
	q.reqIOs = reg.Histogram("blk.req.ios")
}

// EnableElevator switches dispatch from FIFO to C-LOOK ordering: the
// pending request with the lowest sector at or past the last dispatch
// position goes first, wrapping to the lowest sector when none remain
// ahead. Seek-sensitive devices (the disk) benefit; latency-uniform
// devices (HPBD) do not care.
func (q *Queue) EnableElevator() { q.elevator = true }

// SetActivityHook installs a callback invoked on every Submit. The
// cluster uses it to re-arm a parked health-engine sampler when swap
// traffic resumes; a nil hook (the default) costs one predictable branch.
func (q *Queue) SetActivityHook(fn func()) { q.activity = fn }

// Stats returns a copy of the queue statistics.
func (q *Queue) Stats() Stats { return q.stats }

// ResetStats clears counters and the request log.
func (q *Queue) ResetStats() { q.stats = Stats{} }

// Submit queues one I/O, merging it with a pending request when adjacent.
// The queue plugs itself on first I/O; callers submit a batch and then
// Unplug. Returns the IO handle to wait on.
func (q *Queue) Submit(write bool, sector int64, data []byte) (*IO, error) {
	if len(data)%SectorSize != 0 || len(data) == 0 {
		return nil, fmt.Errorf("blockdev: I/O size %d not a positive sector multiple", len(data))
	}
	if sector < 0 || sector+int64(len(data)/SectorSize) > q.driver.Sectors() {
		return nil, ErrOutOfRange
	}
	io := &IO{Write: write, Sector: sector, Data: data, done: sim.NewEvent(q.env)}
	q.stats.IOsSubmitted++
	if q.activity != nil {
		q.activity()
	}

	// Try back/front merge against pending requests (2.4 scans the whole
	// queue; ours is short, so a linear scan is faithful and cheap).
	for _, r := range q.pending {
		if r.Write != write || r.nbytes+len(data) > MaxRequestBytes {
			continue
		}
		if r.End() == sector { // back merge
			r.ios = append(r.ios, io)
			r.nbytes += len(data)
			io.req = r
			q.stats.Merges++
			q.merges.Inc()
			return io, nil
		}
		if sector+int64(len(data)/SectorSize) == r.Sector { // front merge
			r.ios = append([]*IO{io}, r.ios...)
			r.Sector = sector
			r.nbytes += len(data)
			io.req = r
			q.stats.Merges++
			q.merges.Inc()
			return io, nil
		}
	}
	q.nextID++
	r := &Request{Write: write, Sector: sector, ios: []*IO{io}, nbytes: len(data), queued: q.env.Now(), id: q.nextID}
	io.req = r
	if len(q.pending) == 0 {
		q.plugged = true
	}
	q.pending = append(q.pending, r)
	return io, nil
}

// Unplug releases pending requests to the dispatch process.
func (q *Queue) Unplug() {
	if !q.plugged && len(q.pending) == 0 {
		return
	}
	q.plugged = false
	q.work.WakeAll()
}

// Pending returns the number of undispatched requests.
func (q *Queue) Pending() int { return len(q.pending) }

// dispatch is the per-device kernel thread: it pulls requests off the
// queue (once unplugged) and hands them to the driver.
func (q *Queue) dispatch(p *sim.Proc) {
	for {
		for q.plugged || len(q.pending) == 0 {
			q.work.Wait(p)
		}
		r := q.pickNext()
		q.stats.RequestsDispatched++
		if r.Write {
			q.stats.BytesWritten += int64(r.nbytes)
		} else {
			q.stats.BytesRead += int64(r.nbytes)
		}
		if q.logReqs {
			q.stats.Log = append(q.stats.Log, RequestStat{
				At: p.Now(), Sector: r.Sector, Bytes: r.nbytes, Write: r.Write, IOs: len(r.ios),
			})
		}
		p.Sleep(q.host.BlockPerRequest + sim.Duration(len(r.ios))*q.host.BlockPerBH)
		q.qwait.Observe(p.Now().Sub(r.queued))
		// Run length, not a latency: the histogram machinery is
		// unit-agnostic, so the count rides in the Duration slot.
		q.reqIOs.Observe(sim.Duration(len(r.ios)))
		if q.tracer != nil {
			q.tracer.Complete(q.comp, "dispatch", r.queued, p.Now(), map[string]any{
				"req": r.id, "sector": r.Sector, "bytes": r.nbytes, "ios": len(r.ios), "write": r.Write,
			})
			q.tracer.FlowStep(q.comp, "req", r.id)
		}
		q.headPos = r.End()
		q.driver.Submit(p, r)
	}
}

// pickNext removes and returns the next request to dispatch.
func (q *Queue) pickNext() *Request {
	if !q.elevator || len(q.pending) == 1 {
		r := q.pending[0]
		q.pending = q.pending[1:]
		return r
	}
	// C-LOOK: lowest sector >= headPos, else lowest sector overall.
	best, bestWrap := -1, -1
	for i, r := range q.pending {
		if r.Sector >= q.headPos {
			if best < 0 || r.Sector < q.pending[best].Sector {
				best = i
			}
		}
		if bestWrap < 0 || r.Sector < q.pending[bestWrap].Sector {
			bestWrap = i
		}
	}
	if best < 0 {
		best = bestWrap
	}
	r := q.pending[best]
	q.pending = append(q.pending[:best], q.pending[best+1:]...)
	return r
}
