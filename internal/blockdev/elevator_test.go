package blockdev

import (
	"testing"

	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
)

func TestElevatorOrdersBySector(t *testing.T) {
	env := sim.NewEnv()
	d := &memDriver{store: make([]byte, 1<<20), delay: 500 * sim.Microsecond}
	q := NewQueue(env, netmodel.DefaultHost(), d)
	q.EnableElevator()
	env.Go("io", func(p *sim.Proc) {
		// Submit in scrambled sector order while the driver is busy with
		// the first; the rest must dispatch in ascending sector order.
		first, _ := q.Submit(true, 0, make([]byte, 4096))
		q.Unplug()
		p.Sleep(50 * sim.Microsecond) // let the first dispatch
		var ios []*IO
		for _, sector := range []int64{800, 160, 480, 320, 640} {
			io, err := q.Submit(true, sector, make([]byte, 4096))
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			ios = append(ios, io)
			q.Unplug()
		}
		first.Wait(p)
		for _, io := range ios {
			io.Wait(p)
		}
	})
	env.Run()
	env.Close()
	got := make([]int64, 0, len(d.seen))
	for _, r := range d.seen[1:] { // skip the first request
		got = append(got, r.Sector)
	}
	want := []int64{160, 320, 480, 640, 800}
	if len(got) != len(want) {
		t.Fatalf("dispatched %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

func TestElevatorWrapsCLook(t *testing.T) {
	env := sim.NewEnv()
	d := &memDriver{store: make([]byte, 1<<20), delay: 500 * sim.Microsecond}
	q := NewQueue(env, netmodel.DefaultHost(), d)
	q.EnableElevator()
	env.Go("io", func(p *sim.Proc) {
		// Park the head high, then submit one below and one above: the
		// one ahead of the head goes first, then the wrap.
		first, _ := q.Submit(true, 1000, make([]byte, 4096))
		q.Unplug()
		p.Sleep(50 * sim.Microsecond)
		lo, _ := q.Submit(true, 8, make([]byte, 4096))
		hi, _ := q.Submit(true, 1200, make([]byte, 4096))
		q.Unplug()
		first.Wait(p)
		lo.Wait(p)
		hi.Wait(p)
	})
	env.Run()
	env.Close()
	if len(d.seen) != 3 {
		t.Fatalf("requests = %d", len(d.seen))
	}
	if d.seen[1].Sector != 1200 || d.seen[2].Sector != 8 {
		t.Errorf("order = [%d %d], want [1200 8] (ahead first, then wrap)",
			d.seen[1].Sector, d.seen[2].Sector)
	}
}

func TestFIFOWithoutElevator(t *testing.T) {
	env := sim.NewEnv()
	d := &memDriver{store: make([]byte, 1<<20), delay: 500 * sim.Microsecond}
	q := NewQueue(env, netmodel.DefaultHost(), d)
	env.Go("io", func(p *sim.Proc) {
		first, _ := q.Submit(true, 0, make([]byte, 4096))
		q.Unplug()
		p.Sleep(50 * sim.Microsecond)
		var ios []*IO
		for _, sector := range []int64{800, 160, 480} {
			io, _ := q.Submit(true, sector, make([]byte, 4096))
			ios = append(ios, io)
			q.Unplug()
		}
		first.Wait(p)
		for _, io := range ios {
			io.Wait(p)
		}
	})
	env.Run()
	env.Close()
	if d.seen[1].Sector != 800 || d.seen[2].Sector != 160 || d.seen[3].Sector != 480 {
		t.Errorf("FIFO order violated: %d %d %d", d.seen[1].Sector, d.seen[2].Sector, d.seen[3].Sector)
	}
}

func TestNewRequestStandalone(t *testing.T) {
	env := sim.NewEnv()
	r := NewRequest(env, true, 8, make([]byte, 4096))
	if r.Bytes() != 4096 || r.Sector != 8 || !r.Write {
		t.Errorf("request fields wrong: %+v", r)
	}
	done := false
	env.Go("w", func(p *sim.Proc) {
		if err := r.Wait(p); err != nil {
			t.Errorf("Wait: %v", err)
		}
		done = true
	})
	env.After(10*sim.Microsecond, func() { r.Complete(nil) })
	env.Run()
	env.Close()
	if !done || r.Err() != nil {
		t.Error("standalone request did not complete")
	}
}
