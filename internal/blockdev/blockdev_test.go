package blockdev

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
)

// memDriver is a trivial instant driver backed by a byte slice, recording
// every request it sees.
type memDriver struct {
	store []byte
	seen  []*Request
	delay sim.Duration
}

func (m *memDriver) Name() string   { return "mem" }
func (m *memDriver) Sectors() int64 { return int64(len(m.store) / SectorSize) }
func (m *memDriver) Submit(p *sim.Proc, r *Request) {
	if m.delay > 0 {
		p.Sleep(m.delay)
	}
	m.seen = append(m.seen, r)
	off := r.Sector * SectorSize
	if r.Write {
		copy(m.store[off:], r.Data())
	} else {
		r.Scatter(m.store[off : off+int64(r.Bytes())])
	}
	r.Complete(nil)
}

func newQueue(size int, delay sim.Duration) (*sim.Env, *Queue, *memDriver) {
	env := sim.NewEnv()
	d := &memDriver{store: make([]byte, size), delay: delay}
	q := NewQueue(env, netmodel.DefaultHost(), d)
	return env, q, d
}

func TestWriteReadRoundTrip(t *testing.T) {
	env, q, _ := newQueue(1<<20, 0)
	env.Go("io", func(p *sim.Proc) {
		w := make([]byte, 4096)
		for i := range w {
			w[i] = byte(i % 251)
		}
		io, err := q.Submit(true, 8, w)
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		q.Unplug()
		if err := io.Wait(p); err != nil {
			t.Errorf("write: %v", err)
		}
		r := make([]byte, 4096)
		io2, _ := q.Submit(false, 8, r)
		q.Unplug()
		if err := io2.Wait(p); err != nil {
			t.Errorf("read: %v", err)
		}
		if !bytes.Equal(r, w) {
			t.Error("round trip mismatch")
		}
	})
	env.Run()
	env.Close()
}

func TestAdjacentWritesMergeUpTo128K(t *testing.T) {
	env, q, d := newQueue(1<<22, 0)
	env.Go("io", func(p *sim.Proc) {
		// 64 sequential 4K pages = 256 KB: must become exactly two 128 KB
		// requests.
		var last *IO
		for i := 0; i < 64; i++ {
			io, err := q.Submit(true, int64(i*8), make([]byte, 4096))
			if err != nil {
				t.Errorf("Submit %d: %v", i, err)
			}
			last = io
		}
		q.Unplug()
		last.Wait(p)
	})
	env.Run()
	env.Close()
	if len(d.seen) != 2 {
		t.Fatalf("dispatched %d requests, want 2", len(d.seen))
	}
	for _, r := range d.seen {
		if r.Bytes() != MaxRequestBytes {
			t.Errorf("request bytes = %d, want %d", r.Bytes(), MaxRequestBytes)
		}
		if r.NumIOs() != 32 {
			t.Errorf("request merged %d IOs, want 32", r.NumIOs())
		}
	}
}

func TestFrontMerge(t *testing.T) {
	env, q, d := newQueue(1<<20, 0)
	env.Go("io", func(p *sim.Proc) {
		a, _ := q.Submit(true, 8, make([]byte, 4096))
		b, _ := q.Submit(true, 0, make([]byte, 4096)) // front-merges
		q.Unplug()
		a.Wait(p)
		b.Wait(p)
	})
	env.Run()
	env.Close()
	if len(d.seen) != 1 || d.seen[0].Sector != 0 || d.seen[0].Bytes() != 8192 {
		t.Fatalf("requests = %+v, want one 8K request at sector 0", d.seen)
	}
}

func TestNoMergeAcrossDirection(t *testing.T) {
	env, q, d := newQueue(1<<20, 0)
	env.Go("io", func(p *sim.Proc) {
		a, _ := q.Submit(true, 0, make([]byte, 4096))
		b, _ := q.Submit(false, 8, make([]byte, 4096))
		q.Unplug()
		a.Wait(p)
		b.Wait(p)
	})
	env.Run()
	env.Close()
	if len(d.seen) != 2 {
		t.Fatalf("dispatched %d requests, want 2 (no read/write merge)", len(d.seen))
	}
}

func TestNonAdjacentDoNotMerge(t *testing.T) {
	env, q, d := newQueue(1<<20, 0)
	env.Go("io", func(p *sim.Proc) {
		a, _ := q.Submit(true, 0, make([]byte, 4096))
		b, _ := q.Submit(true, 16, make([]byte, 4096)) // gap of one page
		q.Unplug()
		a.Wait(p)
		b.Wait(p)
	})
	env.Run()
	env.Close()
	if len(d.seen) != 2 {
		t.Fatalf("dispatched %d requests, want 2", len(d.seen))
	}
}

func TestPlugHoldsDispatchUntilUnplug(t *testing.T) {
	env, q, d := newQueue(1<<20, 0)
	env.Go("io", func(p *sim.Proc) {
		q.Submit(true, 0, make([]byte, 4096))
		p.Sleep(sim.Millisecond)
		if len(d.seen) != 0 {
			t.Error("request dispatched while plugged")
		}
		q.Unplug()
		p.Sleep(sim.Millisecond)
		if len(d.seen) != 1 {
			t.Error("request not dispatched after unplug")
		}
	})
	env.Run()
	env.Close()
}

func TestOutOfRangeAndBadSize(t *testing.T) {
	env, q, _ := newQueue(1<<20, 0)
	if _, err := q.Submit(true, 1<<20/SectorSize, make([]byte, 4096)); err != ErrOutOfRange {
		t.Errorf("out of range err = %v", err)
	}
	if _, err := q.Submit(true, -1, make([]byte, 4096)); err != ErrOutOfRange {
		t.Errorf("negative sector err = %v", err)
	}
	if _, err := q.Submit(true, 0, make([]byte, 100)); err == nil {
		t.Error("non-sector-multiple size accepted")
	}
	if _, err := q.Submit(true, 0, nil); err == nil {
		t.Error("empty I/O accepted")
	}
	env.Close()
}

func TestStatsAndLog(t *testing.T) {
	env, q, _ := newQueue(1<<20, 0)
	q.EnableLog()
	env.Go("io", func(p *sim.Proc) {
		var last *IO
		for i := 0; i < 8; i++ {
			last, _ = q.Submit(true, int64(i*8), make([]byte, 4096))
		}
		q.Unplug()
		last.Wait(p)
		r, _ := q.Submit(false, 0, make([]byte, 4096))
		q.Unplug()
		r.Wait(p)
	})
	env.Run()
	env.Close()
	st := q.Stats()
	if st.IOsSubmitted != 9 {
		t.Errorf("IOsSubmitted = %d, want 9", st.IOsSubmitted)
	}
	if st.RequestsDispatched != 2 {
		t.Errorf("RequestsDispatched = %d, want 2", st.RequestsDispatched)
	}
	if st.BytesWritten != 8*4096 || st.BytesRead != 4096 {
		t.Errorf("bytes = %d/%d", st.BytesWritten, st.BytesRead)
	}
	if st.Merges != 7 {
		t.Errorf("Merges = %d, want 7", st.Merges)
	}
	if len(st.Log) != 2 {
		t.Errorf("log entries = %d, want 2", len(st.Log))
	}
}

// Property: any batch of distinct in-range page writes is eventually
// dispatched covering exactly the submitted sectors, each request is
// <= MaxRequestBytes, and requests are contiguous runs.
func TestQuickMergeInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		// Distinct page indices in [0, 256).
		pages := map[int]bool{}
		for _, r := range raw {
			pages[int(r)] = true
		}
		if len(pages) == 0 {
			return true
		}
		env, q, d := newQueue(256*4096, 0)
		ok := true
		env.Go("io", func(p *sim.Proc) {
			var ios []*IO
			for pg := range pages {
				io, err := q.Submit(true, int64(pg*8), make([]byte, 4096))
				if err != nil {
					ok = false
					return
				}
				ios = append(ios, io)
			}
			q.Unplug()
			for _, io := range ios {
				if io.Wait(p) != nil {
					ok = false
				}
			}
		})
		env.Run()
		env.Close()
		if !ok {
			return false
		}
		covered := map[int64]bool{}
		for _, r := range d.seen {
			if r.Bytes() > MaxRequestBytes || r.Bytes()%4096 != 0 {
				return false
			}
			for s := r.Sector; s < r.End(); s += 8 {
				if covered[s] {
					return false // double dispatch
				}
				covered[s] = true
			}
		}
		if len(covered) != len(pages) {
			return false
		}
		for pg := range pages {
			if !covered[int64(pg*8)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSlowDriverAccumulatesMerges(t *testing.T) {
	// While the driver is busy with one request, later adjacent I/Os keep
	// merging — the mechanism that builds large swap-out requests under
	// a slow disk.
	env, q, d := newQueue(1<<22, 10*sim.Millisecond)
	env.Go("io", func(p *sim.Proc) {
		var ios []*IO
		for i := 0; i < 40; i++ {
			io, _ := q.Submit(true, int64(i*8), make([]byte, 4096))
			ios = append(ios, io)
			q.Unplug()
			p.Sleep(100 * sim.Microsecond) // trickle in during service
		}
		for _, io := range ios {
			io.Wait(p)
		}
	})
	env.Run()
	env.Close()
	if len(d.seen) >= 40 {
		t.Errorf("no merging under slow driver: %d requests", len(d.seen))
	}
	fmt.Printf("slow-driver merging: 40 IOs -> %d requests\n", len(d.seen))
}
