package blockdev

import (
	"bytes"
	"strings"
	"testing"

	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// EnableMergeTelemetry must mirror the elevator's merge accounting: the
// blk.merges counter tracks Stats().Merges exactly, and the blk.req.ios
// histogram records one sample per dispatched request carrying its merged
// run length.
func TestMergeTelemetryMirrorsElevator(t *testing.T) {
	env := sim.NewEnv()
	d := &memDriver{store: make([]byte, 1<<20)}
	q := NewQueue(env, netmodel.DefaultHost(), d)
	reg := telemetry.New(env)
	q.EnableMergeTelemetry(reg)

	env.Go("io", func(p *sim.Proc) {
		// One run of 4 contiguous pages (3 back merges) and one isolated
		// page: two requests, with run lengths 4 and 1.
		var ios []*IO
		for i := 0; i < 4; i++ {
			io, err := q.Submit(true, int64(i*8), make([]byte, 4096))
			if err != nil {
				t.Errorf("Submit %d: %v", i, err)
				return
			}
			ios = append(ios, io)
		}
		lone, err := q.Submit(true, 1024, make([]byte, 4096))
		if err != nil {
			t.Errorf("Submit lone: %v", err)
			return
		}
		ios = append(ios, lone)
		q.Unplug()
		for i, io := range ios {
			if err := io.Wait(p); err != nil {
				t.Errorf("IO %d: %v", i, err)
			}
		}
	})
	env.Run()
	env.Close()

	st := q.Stats()
	if st.Merges != 3 || st.RequestsDispatched != 2 {
		t.Fatalf("elevator saw %d merges / %d requests, want 3 / 2", st.Merges, st.RequestsDispatched)
	}
	if got := reg.Counter("blk.merges").Value(); got != int64(st.Merges) {
		t.Errorf("blk.merges = %d, want %d (must track Stats().Merges)", got, st.Merges)
	}
	h := reg.Histogram("blk.req.ios")
	if h.Count() != int64(st.RequestsDispatched) {
		t.Errorf("blk.req.ios samples = %d, want one per dispatched request (%d)",
			h.Count(), st.RequestsDispatched)
	}
	// Run lengths ride in the duration slot: 4 and 1, so sum 5 and max 4.
	if h.Sum() != 5 || h.Max() != 4 {
		t.Errorf("blk.req.ios sum/max = %v/%v, want 5/4", h.Sum(), h.Max())
	}
}

// Without the opt-in call the queue must not register the series at all —
// the default OpenMetrics output is frozen.
func TestMergeTelemetryIsOptIn(t *testing.T) {
	env := sim.NewEnv()
	d := &memDriver{store: make([]byte, 1<<20)}
	q := NewQueue(env, netmodel.DefaultHost(), d)
	reg := telemetry.New(env)
	q.SetTelemetry(reg)
	env.Go("io", func(p *sim.Proc) {
		a, _ := q.Submit(true, 0, make([]byte, 4096))
		b, _ := q.Submit(true, 8, make([]byte, 4096))
		q.Unplug()
		a.Wait(p)
		b.Wait(p)
	})
	env.Run()
	env.Close()
	if q.Stats().Merges != 1 {
		t.Fatal("adjacent pages did not merge; test rig broken")
	}
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "blk_merges") {
		t.Error("blk.merges registered without opt-in; default metric output changed")
	}
}
