package workload

import (
	"math"
	"math/rand"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/sim"
	"hpbd/internal/vm"
)

// instantDriver completes every request after a small fixed delay.
type instantDriver struct {
	sectors int64
	delay   sim.Duration
}

func (d *instantDriver) Name() string   { return "fastswap" }
func (d *instantDriver) Sectors() int64 { return d.sectors }
func (d *instantDriver) Submit(p *sim.Proc, r *blockdev.Request) {
	if d.delay > 0 {
		p.Sleep(d.delay)
	}
	r.Complete(nil)
}

func newVM(memPages, swapPages int) (*sim.Env, *vm.System) {
	env := sim.NewEnv()
	cfg := vm.DefaultConfig(int64(memPages) * vm.PageSize)
	sys := vm.NewSystem(env, cfg)
	q := blockdev.NewQueue(env, cfg.Host, &instantDriver{
		sectors: int64(swapPages) * vm.SectorsPerPage,
		delay:   30 * sim.Microsecond,
	})
	sys.AddSwap(q, 0)
	return env, sys
}

func TestTestswapInMemoryTiming(t *testing.T) {
	env, sys := newVM(4096, 8192) // 16 MB memory
	ts := NewTestswap(sys, 4<<20) // 4 MB array: fits
	var elapsed sim.Duration
	env.Go("ts", func(p *sim.Proc) {
		t0 := p.Now()
		if err := ts.Run(p); err != nil {
			t.Errorf("Run: %v", err)
		}
		elapsed = p.Now().Sub(t0)
	})
	env.Run()
	env.Close()
	// 1 Mi ints at 22 ns = ~23 ms of compute plus fault costs.
	want := sim.Duration(1<<20) * TestswapCPUPerInt
	if elapsed < want || elapsed > want*2 {
		t.Errorf("in-memory testswap took %v, want ~%v", elapsed, want)
	}
	if sys.Stats().SwapOuts != 0 {
		t.Error("in-memory testswap should not swap")
	}
}

func TestTestswapOvercommitSwaps(t *testing.T) {
	env, sys := newVM(1024, 8192) // 4 MB memory
	ts := NewTestswap(sys, 8<<20) // 8 MB array
	env.Go("ts", func(p *sim.Proc) {
		if err := ts.Run(p); err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	env.Run()
	env.Close()
	if sys.Stats().SwapOuts == 0 {
		t.Error("2x overcommit testswap produced no swap-outs")
	}
	// Sequential single-pass writes should produce almost no swap-ins.
	if ins := sys.Stats().SwapIns; ins > 32 {
		t.Errorf("sequential testswap swapped in %d pages; expected ~0", ins)
	}
}

func TestQuicksortSortsInMemory(t *testing.T) {
	env, sys := newVM(4096, 1024)
	q := NewQuicksort(sys, "qs", 1<<16, rand.New(rand.NewSource(7)))
	env.Go("qs", func(p *sim.Proc) {
		if err := q.Run(p); err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	env.Run()
	env.Close()
	if !q.Sorted() {
		t.Error("quicksort output not sorted")
	}
	if sys.Stats().SwapOuts != 0 {
		t.Error("in-memory sort should not swap")
	}
}

func TestQuicksortSortsUnderMemoryPressure(t *testing.T) {
	// 2 MB of data in 1 MB of memory: the sort must still be correct and
	// must generate traffic in both directions.
	env, sys := newVM(256, 4096)
	q := NewQuicksort(sys, "qs", 1<<19, rand.New(rand.NewSource(11)))
	env.Go("qs", func(p *sim.Proc) {
		if err := q.Run(p); err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	env.Run()
	env.Close()
	if !q.Sorted() {
		t.Error("paged quicksort output not sorted")
	}
	st := sys.Stats()
	if st.SwapOuts == 0 || st.SwapIns == 0 {
		t.Errorf("paged sort traffic: outs=%d ins=%d, want both > 0", st.SwapOuts, st.SwapIns)
	}
}

func TestQuicksortDeterministic(t *testing.T) {
	run := func() sim.Time {
		env, sys := newVM(256, 4096)
		q := NewQuicksort(sys, "qs", 1<<18, rand.New(rand.NewSource(3)))
		env.Go("qs", func(p *sim.Proc) { q.Run(p) })
		end := env.Run()
		env.Close()
		return end
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical runs finished at %v and %v", a, b)
	}
}

func TestPagedArrayChargesCPU(t *testing.T) {
	env, sys := newVM(1024, 1024)
	arr := NewPagedArray(sys, "a", 1<<16, 4, 10*sim.Nanosecond)
	var elapsed sim.Duration
	env.Go("t", func(p *sim.Proc) {
		t0 := p.Now()
		for i := 0; i < 1<<16; i++ {
			if err := arr.Access(p, i, false); err != nil {
				t.Errorf("Access: %v", err)
			}
		}
		arr.Flush(p)
		elapsed = p.Now().Sub(t0)
	})
	env.Run()
	env.Close()
	cpu := sim.Duration(1<<16) * 10 * sim.Nanosecond
	if elapsed < cpu {
		t.Errorf("elapsed %v < pure CPU %v", elapsed, cpu)
	}
	if elapsed > cpu*2 {
		t.Errorf("elapsed %v > 2x pure CPU %v (fault overhead too high for resident array)", elapsed, cpu)
	}
	if arr.Accesses != 1<<16 {
		t.Errorf("Accesses = %d", arr.Accesses)
	}
}

func TestAccessRangeTouchesAllPages(t *testing.T) {
	env, sys := newVM(1024, 1024)
	arr := NewPagedArray(sys, "a", 1<<16, 4, sim.Nanosecond)
	env.Go("t", func(p *sim.Proc) {
		if err := arr.AccessRange(p, 100, 5000, true); err != nil {
			t.Errorf("AccessRange: %v", err)
		}
		first := 100 * 4 / vm.PageSize
		last := (100 + 5000) * 4 / vm.PageSize
		for pg := first; pg <= last; pg++ {
			if !arr.AddressSpace().Resident(pg) {
				t.Errorf("page %d not resident after AccessRange", pg)
			}
		}
	})
	env.Run()
	env.Close()
}

func TestBarnesRunsAndConservesMomentum(t *testing.T) {
	env, sys := newVM(8192, 8192)
	b := NewBarnes(sys, "barnes", 2000, 2, rand.New(rand.NewSource(5)))
	m0x, m0y, m0z := b.TotalMomentum()
	env.Go("b", func(p *sim.Proc) {
		if err := b.Run(p); err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	env.Run()
	env.Close()
	m1x, m1y, m1z := b.TotalMomentum()
	// The multipole approximation is not exactly symmetric, so momentum
	// drifts at the approximation error, not machine epsilon; with
	// theta=0.6 and unit total mass it must stay tiny per step.
	drift := math.Abs(m1x-m0x) + math.Abs(m1y-m0y) + math.Abs(m1z-m0z)
	if drift > 1e-3 {
		t.Errorf("momentum drift %g; force computation broken", drift)
	}
	for i := 0; i < b.N(); i++ {
		if math.IsNaN(b.px[i]) || math.IsNaN(b.vx[i]) {
			t.Fatalf("body %d went NaN", i)
		}
	}
}

func TestBarnesPagesUnderPressure(t *testing.T) {
	// Footprint: 4000 bodies * 80B + cells ~ 1 MB in 512 KB of memory.
	env, sys := newVM(128, 4096)
	b := NewBarnes(sys, "barnes", 4000, 1, rand.New(rand.NewSource(9)))
	env.Go("b", func(p *sim.Proc) {
		if err := b.Run(p); err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	env.Run()
	env.Close()
	if sys.Stats().SwapOuts == 0 {
		t.Error("overcommitted Barnes produced no swap-outs")
	}
}
