package workload

import (
	"fmt"
	"math"
	"math/rand"

	"hpbd/internal/sim"
	"hpbd/internal/vm"
)

// BarnesCPUPerAccess calibrates compute per instrumented access for the
// N-body code (force kernels do real floating-point work per visit).
const BarnesCPUPerAccess = 35 * sim.Nanosecond

// bodyBytes is the footprint of one body (pos, vel, acc, mass as in the
// SPLASH-2 body record).
const bodyBytes = 80

// nodeBytes is the footprint of one octree cell.
const nodeBytes = 96

// theta is the Barnes-Hut opening angle.
const theta = 0.6

// eps2 is the softening length squared.
const eps2 = 1e-4

// node is one octree cell: an internal cell with children, or a leaf
// holding a single body.
type node struct {
	cx, cy, cz float64 // cell center
	half       float64 // half edge length
	mx, my, mz float64 // center of mass
	mass       float64
	body       int32 // leaf body index, or -1
	children   [8]int32
	leaf       bool
}

// Barnes is the paper's third benchmark: a Barnes-Hut simulation of
// gravitational interaction (the SPLASH-2 "Barnes" application). The
// octree and the physics are real; body and cell accesses are paged.
type Barnes struct {
	px, py, pz []float64
	vx, vy, vz []float64
	ax, ay, az []float64
	mass       []float64

	bodies *PagedArray
	cells  *PagedArray

	arena    []node
	maxCells int
	steps    int
	dt       float64
}

// NewBarnes creates an n-body system with the given number of simulation
// steps. Bodies start in a uniform sphere with small random velocities.
func NewBarnes(sys *vm.System, name string, n, steps int, rnd *rand.Rand) *Barnes {
	b := &Barnes{
		px: make([]float64, n), py: make([]float64, n), pz: make([]float64, n),
		vx: make([]float64, n), vy: make([]float64, n), vz: make([]float64, n),
		ax: make([]float64, n), ay: make([]float64, n), az: make([]float64, n),
		mass:  make([]float64, n),
		steps: steps,
		dt:    0.025,
	}
	// The SPLASH configuration's memory grows to just past the body
	// array: cells are roughly one per body at equilibrium.
	b.maxCells = 2*n + 64
	b.bodies = NewPagedArray(sys, name+"-bodies", n, bodyBytes, BarnesCPUPerAccess)
	b.cells = NewPagedArray(sys, name+"-cells", b.maxCells, nodeBytes, BarnesCPUPerAccess)
	for i := 0; i < n; i++ {
		for {
			x, y, z := rnd.Float64()*2-1, rnd.Float64()*2-1, rnd.Float64()*2-1
			if x*x+y*y+z*z <= 1 {
				b.px[i], b.py[i], b.pz[i] = x, y, z
				break
			}
		}
		b.vx[i] = (rnd.Float64() - 0.5) * 0.1
		b.vy[i] = (rnd.Float64() - 0.5) * 0.1
		b.vz[i] = (rnd.Float64() - 0.5) * 0.1
		b.mass[i] = 1.0 / float64(n)
	}
	return b
}

// Bodies exposes the body array for stats.
func (b *Barnes) Bodies() *PagedArray { return b.bodies }

// N returns the body count.
func (b *Barnes) N() int { return len(b.px) }

// TotalMomentum returns the system momentum (a conservation check for
// tests; leapfrog with symmetric forces conserves it up to roundoff).
func (b *Barnes) TotalMomentum() (mx, my, mz float64) {
	for i := range b.px {
		mx += b.vx[i] * b.mass[i]
		my += b.vy[i] * b.mass[i]
		mz += b.vz[i] * b.mass[i]
	}
	return
}

// Run executes the configured number of steps.
func (b *Barnes) Run(p *sim.Proc) error {
	for s := 0; s < b.steps; s++ {
		root, err := b.buildTree(p)
		if err != nil {
			return err
		}
		if err := b.computeForces(p, root); err != nil {
			return err
		}
		if err := b.integrate(p); err != nil {
			return err
		}
	}
	b.bodies.Flush(p)
	b.cells.Flush(p)
	return nil
}

// newCell allocates a cell from the arena (paged write access).
func (b *Barnes) newCell(p *sim.Proc, cx, cy, cz, half float64) (int32, error) {
	if len(b.arena) >= b.maxCells {
		return -1, fmt.Errorf("barnes: cell arena exhausted (%d)", b.maxCells)
	}
	idx := int32(len(b.arena))
	b.arena = append(b.arena, node{cx: cx, cy: cy, cz: cz, half: half, body: -1, leaf: true})
	for i := range b.arena[idx].children {
		b.arena[idx].children[i] = -1
	}
	if err := b.cells.Access(p, int(idx), true); err != nil {
		return -1, err
	}
	return idx, nil
}

// buildTree constructs the octree over all bodies.
func (b *Barnes) buildTree(p *sim.Proc) (int32, error) {
	b.arena = b.arena[:0]
	// Bounding cube.
	max := 1.0
	for i := range b.px {
		if err := b.bodies.Access(p, i, false); err != nil {
			return -1, err
		}
		for _, v := range [3]float64{b.px[i], b.py[i], b.pz[i]} {
			if a := math.Abs(v); a > max {
				max = a
			}
		}
	}
	root, err := b.newCell(p, 0, 0, 0, max*1.001)
	if err != nil {
		return -1, err
	}
	for i := range b.px {
		if err := b.insert(p, root, int32(i)); err != nil {
			return -1, err
		}
	}
	if err := b.summarize(p, root); err != nil {
		return -1, err
	}
	return root, nil
}

// octant returns which child of cell idx the body at (x,y,z) belongs in.
func octant(n *node, x, y, z float64) int {
	o := 0
	if x >= n.cx {
		o |= 1
	}
	if y >= n.cy {
		o |= 2
	}
	if z >= n.cz {
		o |= 4
	}
	return o
}

func childCenter(n *node, o int) (float64, float64, float64, float64) {
	h := n.half / 2
	cx, cy, cz := n.cx-h, n.cy-h, n.cz-h
	if o&1 != 0 {
		cx = n.cx + h
	}
	if o&2 != 0 {
		cy = n.cy + h
	}
	if o&4 != 0 {
		cz = n.cz + h
	}
	return cx, cy, cz, h
}

// insert places body bi into the subtree at ci.
func (b *Barnes) insert(p *sim.Proc, ci, bi int32) error {
	for depth := 0; depth < 512; depth++ {
		if err := b.cells.Access(p, int(ci), true); err != nil {
			return err
		}
		n := &b.arena[ci]
		if n.leaf && n.body < 0 {
			n.body = bi
			return nil
		}
		if n.leaf {
			// Split: push the resident body down.
			old := n.body
			n.body = -1
			n.leaf = false
			if err := b.pushDown(p, ci, old); err != nil {
				return err
			}
			n = &b.arena[ci] // arena may have grown
		}
		if err := b.bodies.Access(p, int(bi), false); err != nil {
			return err
		}
		o := octant(n, b.px[bi], b.py[bi], b.pz[bi])
		if n.children[o] < 0 {
			cx, cy, cz, h := childCenter(n, o)
			child, err := b.newCell(p, cx, cy, cz, h)
			if err != nil {
				return err
			}
			b.arena[ci].children[o] = child
		}
		ci = b.arena[ci].children[o]
	}
	return fmt.Errorf("barnes: insertion depth exceeded (coincident bodies?)")
}

func (b *Barnes) pushDown(p *sim.Proc, ci, bi int32) error {
	if err := b.bodies.Access(p, int(bi), false); err != nil {
		return err
	}
	n := &b.arena[ci]
	o := octant(n, b.px[bi], b.py[bi], b.pz[bi])
	if n.children[o] < 0 {
		cx, cy, cz, h := childCenter(n, o)
		child, err := b.newCell(p, cx, cy, cz, h)
		if err != nil {
			return err
		}
		b.arena[ci].children[o] = child
	}
	child := b.arena[ci].children[o]
	if err := b.cells.Access(p, int(child), true); err != nil {
		return err
	}
	cn := &b.arena[child]
	if cn.leaf && cn.body < 0 {
		cn.body = bi
		return nil
	}
	return b.insert(p, child, bi)
}

// summarize computes centers of mass bottom-up.
func (b *Barnes) summarize(p *sim.Proc, ci int32) error {
	if err := b.cells.Access(p, int(ci), true); err != nil {
		return err
	}
	n := &b.arena[ci]
	if n.leaf {
		if n.body >= 0 {
			bi := n.body
			if err := b.bodies.Access(p, int(bi), false); err != nil {
				return err
			}
			n = &b.arena[ci]
			n.mass = b.mass[bi]
			n.mx, n.my, n.mz = b.px[bi], b.py[bi], b.pz[bi]
		}
		return nil
	}
	var m, mx, my, mz float64
	for _, ch := range n.children {
		if ch < 0 {
			continue
		}
		if err := b.summarize(p, ch); err != nil {
			return err
		}
		c := &b.arena[ch]
		m += c.mass
		mx += c.mx * c.mass
		my += c.my * c.mass
		mz += c.mz * c.mass
	}
	n = &b.arena[ci]
	n.mass = m
	if m > 0 {
		n.mx, n.my, n.mz = mx/m, my/m, mz/m
	}
	return nil
}

// computeForces runs the theta-criterion traversal for every body.
func (b *Barnes) computeForces(p *sim.Proc, root int32) error {
	stack := make([]int32, 0, 128)
	for i := range b.px {
		if err := b.bodies.Access(p, i, true); err != nil {
			return err
		}
		b.ax[i], b.ay[i], b.az[i] = 0, 0, 0
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			ci := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if err := b.cells.Access(p, int(ci), false); err != nil {
				return err
			}
			n := &b.arena[ci]
			if n.mass == 0 {
				continue
			}
			dx, dy, dz := n.mx-b.px[i], n.my-b.py[i], n.mz-b.pz[i]
			d2 := dx*dx + dy*dy + dz*dz + eps2
			if n.leaf || (n.half*2)*(n.half*2) < theta*theta*d2 {
				if n.leaf && n.body == int32(i) {
					continue
				}
				inv := 1 / math.Sqrt(d2)
				f := n.mass * inv * inv * inv
				b.ax[i] += f * dx
				b.ay[i] += f * dy
				b.az[i] += f * dz
				continue
			}
			for _, ch := range n.children {
				if ch >= 0 {
					stack = append(stack, ch)
				}
			}
		}
	}
	return nil
}

// integrate advances positions and velocities (leapfrog).
func (b *Barnes) integrate(p *sim.Proc) error {
	for i := range b.px {
		if err := b.bodies.Access(p, i, true); err != nil {
			return err
		}
		b.vx[i] += b.ax[i] * b.dt
		b.vy[i] += b.ay[i] * b.dt
		b.vz[i] += b.az[i] * b.dt
		b.px[i] += b.vx[i] * b.dt
		b.py[i] += b.vy[i] * b.dt
		b.pz[i] += b.vz[i] * b.dt
	}
	return nil
}

// Release frees the workload's memory.
func (b *Barnes) Release() {
	b.bodies.Release()
	b.cells.Release()
}

// CellsUsed returns the number of octree cells allocated in the last
// built tree (footprint sizing for experiments).
func (b *Barnes) CellsUsed() int { return len(b.arena) }
