package workload

import (
	"math/rand"

	"hpbd/internal/sim"
	"hpbd/internal/vm"
)

// QuicksortCPUPerAccess calibrates compute per instrumented array access
// so the paper's in-memory run (256 Mi integers in 94 s) is reproduced at
// the paper's scale.
const QuicksortCPUPerAccess = 6 * sim.Nanosecond

// insertionCutoff is the subarray size below which insertion sort runs.
const insertionCutoff = 32

// Quicksort is the paper's application benchmark: sort randomly generated
// integers whose footprint exceeds local memory. The sort is real (the
// data ends up ordered); every element read and write also drives the
// paged access layer.
type Quicksort struct {
	data []int32
	arr  *PagedArray
}

// NewQuicksort creates a sorter over n random int32s drawn from rnd.
func NewQuicksort(sys *vm.System, name string, n int, rnd *rand.Rand) *Quicksort {
	q := &Quicksort{
		data: make([]int32, n),
		arr:  NewPagedArray(sys, name, n, 4, QuicksortCPUPerAccess),
	}
	for i := range q.data {
		q.data[i] = int32(rnd.Uint32())
	}
	return q
}

// Array exposes the underlying paged array for stats.
func (q *Quicksort) Array() *PagedArray { return q.arr }

// Len returns the element count.
func (q *Quicksort) Len() int { return len(q.data) }

// Sorted verifies the post-condition (tests).
func (q *Quicksort) Sorted() bool {
	for i := 1; i < len(q.data); i++ {
		if q.data[i-1] > q.data[i] {
			return false
		}
	}
	return true
}

// read loads element i through the paging layer.
func (q *Quicksort) read(p *sim.Proc, i int) (int32, error) {
	if err := q.arr.Access(p, i, false); err != nil {
		return 0, err
	}
	return q.data[i], nil
}

// swap exchanges elements i and j through the paging layer.
func (q *Quicksort) swap(p *sim.Proc, i, j int) error {
	if err := q.arr.Access(p, i, true); err != nil {
		return err
	}
	if err := q.arr.Access(p, j, true); err != nil {
		return err
	}
	q.data[i], q.data[j] = q.data[j], q.data[i]
	return nil
}

// Run sorts the array.
func (q *Quicksort) Run(p *sim.Proc) error {
	// Explicit stack; always recurse into the smaller half first so the
	// stack stays O(log n).
	type span struct{ lo, hi int }
	stack := []span{{0, len(q.data) - 1}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		lo, hi := s.lo, s.hi
		for hi-lo >= insertionCutoff {
			mid, err := q.partition(p, lo, hi)
			if err != nil {
				return err
			}
			if mid-lo < hi-mid {
				stack = append(stack, span{mid + 1, hi})
				hi = mid - 1
			} else {
				stack = append(stack, span{lo, mid - 1})
				lo = mid + 1
			}
		}
		if err := q.insertion(p, lo, hi); err != nil {
			return err
		}
	}
	q.arr.Flush(p)
	return nil
}

// partition is the CLRS PARTITION (Lomuto): a single left-to-right scan
// with the last element as pivot, exchanged to the middle at the end. The
// strictly sequential access pattern matters for the paper's results: it
// is what lets swap-in readahead and block-layer merging work for the
// sort (the paper's quick sort follows CLRS [20], and sorts uniformly
// random input, where the last-element pivot is well-behaved).
func (q *Quicksort) partition(p *sim.Proc, lo, hi int) (int, error) {
	pivot, err := q.read(p, hi)
	if err != nil {
		return 0, err
	}
	i := lo - 1
	for j := lo; j < hi; j++ {
		v, err := q.read(p, j)
		if err != nil {
			return 0, err
		}
		if v <= pivot {
			i++
			if i != j {
				if err := q.swap(p, i, j); err != nil {
					return 0, err
				}
			}
		}
	}
	if err := q.swap(p, i+1, hi); err != nil {
		return 0, err
	}
	return i + 1, nil
}

func (q *Quicksort) insertion(p *sim.Proc, lo, hi int) error {
	for i := lo + 1; i <= hi; i++ {
		v, err := q.read(p, i)
		if err != nil {
			return err
		}
		j := i - 1
		for j >= lo {
			w, err := q.read(p, j)
			if err != nil {
				return err
			}
			if w <= v {
				break
			}
			if err := q.arr.Access(p, j+1, true); err != nil {
				return err
			}
			q.data[j+1] = w
			j--
		}
		if err := q.arr.Access(p, j+1, true); err != nil {
			return err
		}
		q.data[j+1] = v
	}
	return nil
}

// Release frees the workload's memory.
func (q *Quicksort) Release() { q.arr.Release() }
