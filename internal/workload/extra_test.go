package workload

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hpbd/internal/sim"
)

// Quicksort must produce exactly what the stdlib sort produces on the
// same input (it is a real sort, not a model of one).
func TestQuicksortMatchesReference(t *testing.T) {
	env, sys := newVM(4096, 1024)
	rnd := rand.New(rand.NewSource(21))
	q := NewQuicksort(sys, "qs", 1<<15, rand.New(rand.NewSource(21)))
	ref := make([]int32, 1<<15)
	for i := range ref {
		ref[i] = int32(rnd.Uint32())
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	env.Go("qs", func(p *sim.Proc) {
		if err := q.Run(p); err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	env.Run()
	env.Close()
	for i := range ref {
		if q.data[i] != ref[i] {
			t.Fatalf("element %d = %d, want %d", i, q.data[i], ref[i])
		}
	}
}

// Property: sortedness and length hold for arbitrary small inputs,
// including duplicates and adversarial patterns.
func TestQuickQuicksortProperty(t *testing.T) {
	f := func(vals []int32) bool {
		env, sys := newVM(2048, 1024)
		n := len(vals)
		if n == 0 {
			n = 1
			vals = []int32{42}
		}
		q := NewQuicksort(sys, "qs", n, rand.New(rand.NewSource(1)))
		copy(q.data, vals)
		ok := true
		env.Go("qs", func(p *sim.Proc) {
			if err := q.Run(p); err != nil {
				ok = false
			}
		})
		env.Run()
		env.Close()
		if !ok || !q.Sorted() {
			return false
		}
		// Same multiset.
		ref := append([]int32(nil), vals...)
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		for i := range ref {
			if q.data[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuicksortSortedInputNoPathology(t *testing.T) {
	// Already-sorted input is Lomuto's worst case; insertionCutoff plus
	// the recursion strategy must keep it from blowing the stack or
	// running forever at test sizes.
	env, sys := newVM(4096, 1024)
	q := NewQuicksort(sys, "qs", 1<<14, rand.New(rand.NewSource(1)))
	for i := range q.data {
		q.data[i] = int32(i)
	}
	env.Go("qs", func(p *sim.Proc) {
		if err := q.Run(p); err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	env.Run()
	env.Close()
	if !q.Sorted() {
		t.Error("sorted input came out unsorted")
	}
}

func TestTestswapDeterministic(t *testing.T) {
	run := func() sim.Time {
		env, sys := newVM(512, 4096)
		ts := NewTestswap(sys, 4<<20)
		env.Go("ts", func(p *sim.Proc) { ts.Run(p) })
		end := env.Run()
		env.Close()
		return end
	}
	if a, b := run(), run(); a != b {
		t.Errorf("runs differ: %v vs %v", a, b)
	}
}

func TestBarnesCellsBoundedAcrossSteps(t *testing.T) {
	env, sys := newVM(8192, 1024)
	b := NewBarnes(sys, "b", 3000, 3, rand.New(rand.NewSource(13)))
	env.Go("b", func(p *sim.Proc) {
		if err := b.Run(p); err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	env.Run()
	env.Close()
	if b.CellsUsed() == 0 || b.CellsUsed() >= b.maxCells {
		t.Errorf("cells used = %d of %d", b.CellsUsed(), b.maxCells)
	}
}

func TestWorkloadRelease(t *testing.T) {
	env, sys := newVM(1024, 4096)
	ts := NewTestswap(sys, 8<<20)
	env.Go("ts", func(p *sim.Proc) {
		if err := ts.Run(p); err != nil {
			t.Errorf("Run: %v", err)
		}
		p.Sleep(50 * sim.Millisecond)
		ts.Release()
		if got := sys.FreePages(); got != sys.Config().PhysPages {
			t.Errorf("free pages after release = %d, want %d", got, sys.Config().PhysPages)
		}
	})
	env.Run()
	env.Close()
}
