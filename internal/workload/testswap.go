package workload

import (
	"hpbd/internal/sim"
	"hpbd/internal/vm"
)

// TestswapCPUPerInt is calibrated so the paper's in-memory run (1 GB of
// integers in 5.8 s) is reproduced: 5.8 s / 256 Mi writes ~ 21.6 ns each.
const TestswapCPUPerInt = 22 * sim.Nanosecond

// Testswap is the paper's microbenchmark: allocate a large integer array
// and sequentially write into it, driving a pure swap-out stream once the
// array exceeds local memory.
type Testswap struct {
	arr   *PagedArray
	elems int
}

// NewTestswap builds a testswap over bytes of array (4-byte integers).
func NewTestswap(sys *vm.System, bytes int64) *Testswap {
	elems := int(bytes / 4)
	return &Testswap{
		arr:   NewPagedArray(sys, "testswap", elems, 4, TestswapCPUPerInt),
		elems: elems,
	}
}

// Array exposes the underlying paged array for stats.
func (t *Testswap) Array() *PagedArray { return t.arr }

// Run writes every element once, in order.
func (t *Testswap) Run(p *sim.Proc) error {
	perPage := vm.PageSize / 4
	for i := 0; i < t.elems; i += perPage {
		n := t.elems - i
		if n > perPage {
			n = perPage
		}
		// One page-granularity access covering perPage integer stores.
		t.arr.accum += t.arr.cpu * sim.Duration(n-1)
		if err := t.arr.Access(p, i, true); err != nil {
			return err
		}
	}
	t.arr.Flush(p)
	return nil
}

// Release frees the workload's memory.
func (t *Testswap) Release() { t.arr.Release() }
