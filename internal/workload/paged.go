// Package workload implements the paper's three test programs — testswap,
// quick sort, and a Barnes-Hut N-body simulation (the SPLASH-2 "Barnes"
// stand-in) — running against the simulated VM through a paged-array
// access layer.
//
// The algorithms are real: the sort sorts real integers and the N-body
// code walks a real octree. What the access layer adds is (a) a calibrated
// CPU charge per element access and (b) page-granularity residency checks
// that turn the algorithms' genuine access patterns into page faults on
// the simulated VM. Dataset sizes are scaled down from the paper by a
// configurable factor; ratios between swap configurations are preserved.
package workload

import (
	"hpbd/internal/sim"
	"hpbd/internal/vm"
)

// PagedArray mediates element accesses to a virtual array backed by the
// simulated VM. CPU time is accumulated per access and flushed to the
// simulation clock in batches (or at any fault), keeping the event count
// tractable without distorting timing at experiment scale.
type PagedArray struct {
	as        *vm.AddressSpace
	elemBytes int
	cpu       sim.Duration // per-access CPU charge
	accum     sim.Duration
	flushAt   sim.Duration

	Accesses int64
	FaultsIn int64
}

// NewPagedArray creates an array of elems elements of elemBytes each,
// charging cpuPerAccess of compute per element access.
func NewPagedArray(sys *vm.System, name string, elems, elemBytes int, cpuPerAccess sim.Duration) *PagedArray {
	bytes := elems * elemBytes
	pages := (bytes + vm.PageSize - 1) / vm.PageSize
	return &PagedArray{
		as:        sys.NewAddressSpace(name, pages),
		elemBytes: elemBytes,
		cpu:       cpuPerAccess,
		flushAt:   50 * sim.Microsecond,
	}
}

// AddressSpace exposes the underlying VM region.
func (a *PagedArray) AddressSpace() *vm.AddressSpace { return a.as }

// Access touches element idx. write marks the page dirty.
func (a *PagedArray) Access(p *sim.Proc, idx int, write bool) error {
	a.Accesses++
	a.accum += a.cpu
	page := idx * a.elemBytes >> vm.PageShift
	if a.as.Resident(page) {
		a.as.MarkAccess(page, write)
		if a.accum >= a.flushAt {
			d := a.accum
			a.accum = 0
			p.Sleep(d)
		}
		return nil
	}
	d := a.accum
	a.accum = 0
	p.Sleep(d)
	a.FaultsIn++
	return a.as.Touch(p, page, write)
}

// AccessRange touches every page covering elements [idx, idx+count).
func (a *PagedArray) AccessRange(p *sim.Proc, idx, count int, write bool) error {
	first := idx * a.elemBytes >> vm.PageShift
	last := (idx+count)*a.elemBytes - 1
	if count <= 0 {
		return nil
	}
	lastPage := last >> vm.PageShift
	for pg := first; pg <= lastPage; pg++ {
		a.Accesses++
		a.accum += a.cpu
		if a.as.Resident(pg) {
			a.as.MarkAccess(pg, write)
			continue
		}
		d := a.accum
		a.accum = 0
		p.Sleep(d)
		a.FaultsIn++
		if err := a.as.Touch(p, pg, write); err != nil {
			return err
		}
	}
	if a.accum >= a.flushAt {
		d := a.accum
		a.accum = 0
		p.Sleep(d)
	}
	return nil
}

// Flush charges any accumulated CPU time to the clock; call at the end of
// a run so the final partial batch is not lost.
func (a *PagedArray) Flush(p *sim.Proc) {
	d := a.accum
	a.accum = 0
	p.Sleep(d)
}

// Release returns the array's memory to the VM.
func (a *PagedArray) Release() { a.as.Release() }
