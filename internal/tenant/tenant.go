// Package tenant is the multi-tenancy layer for the simulated HPBD
// stack: many client devices (tenants) share one memory-server fleet
// with enforceable isolation. It provides the three mechanisms the
// server composes:
//
//   - a Spec describing each tenant's QoS contract — scheduling weight,
//     guaranteed credit reservation and memory quota — with a
//     human-writable text form for CLI flags ("pool=8,A:w4:r8:q1M")
//     and a versioned binary wire form (Marshal/Unmarshal) for
//     embedding in configs and fuzzing, mirroring internal/faultsim's
//     FS-v1 schedule codec;
//   - a CreditBank (credits.go) partitioning the server's receive
//     window into per-tenant reservations plus a weighted borrowable
//     common pool, so a greedy tenant stalls on its own window and
//     never on a victim's;
//   - a Sched (wfq.go), the deterministic byte-weighted fair queue
//     that replaces FIFO issue of server work when tenancy is on.
//
// The package depends only on internal/sim so the hpbd client and
// server can both import it.
package tenant

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tenant is one tenant's QoS contract.
type Tenant struct {
	// ID names the tenant; clients present it at attach time.
	ID string
	// Weight is the tenant's fair-queueing weight (>= 1): scheduler
	// bandwidth and pool-borrowing priority scale with it.
	Weight int
	// Reserved is the tenant's guaranteed credit reservation: that many
	// request slots at each server are always available to it, whatever
	// the other tenants do.
	Reserved int
	// Quota bounds the tenant's resident bytes per server (0: no limit).
	// Writes that would exceed it are admission-controlled with
	// RNR-style pushback, and cold pages are reclaimed to the tenant's
	// fallback disk.
	Quota int64
}

// Spec is a full multi-tenancy contract: the shared credit pool plus
// every tenant's entry, normalized to ID order.
type Spec struct {
	// Pool is the number of borrowable credits shared by all tenants on
	// top of their reservations.
	Pool int
	// Tenants holds one entry per tenant, sorted by ID.
	Tenants []Tenant
}

// Limits keep fuzzed and hand-built specs inside sane bounds.
const (
	maxTenants  = 256
	maxIDLen    = 64
	maxWeight   = 1 << 20
	maxReserved = 1 << 20
	maxPool     = 1 << 20
)

// Find returns the tenant entry for id, or nil.
func (s *Spec) Find(id string) *Tenant {
	for i := range s.Tenants {
		if s.Tenants[i].ID == id {
			return &s.Tenants[i]
		}
	}
	return nil
}

// Provisioned is the total credit supply: the pool plus every
// reservation.
func (s *Spec) Provisioned() int {
	n := s.Pool
	for i := range s.Tenants {
		n += s.Tenants[i].Reserved
	}
	return n
}

// TotalWeight sums the tenant weights.
func (s *Spec) TotalWeight() int {
	w := 0
	for i := range s.Tenants {
		w += s.Tenants[i].Weight
	}
	return w
}

// normalize sorts tenants by ID (the canonical order used for grant
// tie-breaks, metric registration and rendering).
func (s *Spec) normalize() {
	sort.Slice(s.Tenants, func(i, j int) bool { return s.Tenants[i].ID < s.Tenants[j].ID })
}

// Validate checks the spec's invariants: at least one tenant, unique
// well-formed IDs, positive weights, non-negative reservations/quotas
// and at least one provisioned credit.
func (s *Spec) Validate() error {
	if len(s.Tenants) == 0 {
		return fmt.Errorf("tenant: spec has no tenants")
	}
	if len(s.Tenants) > maxTenants {
		return fmt.Errorf("tenant: %d tenants exceeds limit %d", len(s.Tenants), maxTenants)
	}
	if s.Pool < 0 || s.Pool > maxPool {
		return fmt.Errorf("tenant: pool %d out of range", s.Pool)
	}
	seen := make(map[string]bool, len(s.Tenants))
	for i := range s.Tenants {
		t := &s.Tenants[i]
		if err := checkID(t.ID); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("tenant: duplicate tenant %q", t.ID)
		}
		seen[t.ID] = true
		if t.Weight < 1 || t.Weight > maxWeight {
			return fmt.Errorf("tenant: %s weight %d out of range", t.ID, t.Weight)
		}
		if t.Reserved < 0 || t.Reserved > maxReserved {
			return fmt.Errorf("tenant: %s reservation %d out of range", t.ID, t.Reserved)
		}
		if t.Quota < 0 {
			return fmt.Errorf("tenant: %s quota %d negative", t.ID, t.Quota)
		}
	}
	if s.Provisioned() < 1 {
		return fmt.Errorf("tenant: spec provisions no credits")
	}
	return nil
}

// checkID enforces the tenant-ID charset (the IDs appear in metric
// names and the text spec, so separators are excluded).
func checkID(id string) error {
	if id == "" || len(id) > maxIDLen {
		return fmt.Errorf("tenant: bad tenant id %q", id)
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return fmt.Errorf("tenant: bad character %q in tenant id %q", c, id)
		}
	}
	return nil
}

// ParseSpec parses the comma-separated text form. The first entries may
// set the shared pool ("pool=N"); each remaining entry is one tenant:
//
//	id[:wW][:rR][:qBYTES]
//
// where W is the fair-queueing weight (default 1), R the reserved
// credits (default 0) and BYTES the memory quota with an optional
// K/M/G suffix (default 0 = unlimited). Example:
//
//	pool=8,A:w4:r8:q2M,B:w1:r4
func ParseSpec(spec string) (*Spec, error) {
	var s Spec
	sawPool := false
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "pool="); ok {
			if sawPool {
				return nil, fmt.Errorf("tenant: duplicate pool entry in %q", spec)
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("tenant: bad pool %q: %v", v, err)
			}
			s.Pool = n
			sawPool = true
			continue
		}
		t, err := parseTenant(part)
		if err != nil {
			return nil, err
		}
		s.Tenants = append(s.Tenants, t)
	}
	s.normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func parseTenant(tok string) (Tenant, error) {
	t := Tenant{Weight: 1}
	fields := strings.Split(tok, ":")
	t.ID = fields[0]
	for _, f := range fields[1:] {
		if len(f) < 2 {
			return t, fmt.Errorf("tenant: bad field %q in %q", f, tok)
		}
		switch f[0] {
		case 'w':
			n, err := strconv.Atoi(f[1:])
			if err != nil {
				return t, fmt.Errorf("tenant: bad weight in %q: %v", tok, err)
			}
			t.Weight = n
		case 'r':
			n, err := strconv.Atoi(f[1:])
			if err != nil {
				return t, fmt.Errorf("tenant: bad reservation in %q: %v", tok, err)
			}
			t.Reserved = n
		case 'q':
			n, err := parseBytes(f[1:])
			if err != nil {
				return t, fmt.Errorf("tenant: bad quota in %q: %v", tok, err)
			}
			t.Quota = n
		default:
			return t, fmt.Errorf("tenant: unknown field %q in %q", f, tok)
		}
	}
	return t, nil
}

// parseBytes reads a byte count with an optional K/M/G suffix
// (powers of 1024).
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if n < 0 || n > (1<<62)/mult {
		return 0, fmt.Errorf("byte count %q out of range", s)
	}
	return n * mult, nil
}

// formatBytes renders n with the largest exact K/M/G suffix so
// Spec round-trips through the text form.
func formatBytes(n int64) string {
	switch {
	case n > 0 && n%(1<<30) == 0:
		return strconv.FormatInt(n>>30, 10) + "G"
	case n > 0 && n%(1<<20) == 0:
		return strconv.FormatInt(n>>20, 10) + "M"
	case n > 0 && n%(1<<10) == 0:
		return strconv.FormatInt(n>>10, 10) + "K"
	}
	return strconv.FormatInt(n, 10)
}

// String renders the spec back into the canonical text form ParseSpec
// accepts: the pool first, then the tenants in ID order.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pool=%d", s.Pool)
	for i := range s.Tenants {
		t := &s.Tenants[i]
		fmt.Fprintf(&b, ",%s:w%d:r%d", t.ID, t.Weight, t.Reserved)
		if t.Quota > 0 {
			b.WriteString(":q")
			b.WriteString(formatBytes(t.Quota))
		}
	}
	return b.String()
}

// Wire encoding: magic "TQ" + version byte + u32 pool + u16 tenant
// count, then per tenant: id len u8 + bytes, weight u32, reserved u32,
// quota u64. All integers big-endian.
const (
	wireMagic0  = 'T'
	wireMagic1  = 'Q'
	wireVersion = 1
)

// Marshal encodes the spec into the binary wire form. The spec must be
// valid (Marshal validates, so a fuzzer cannot round-trip garbage).
func (s *Spec) Marshal() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 9+len(s.Tenants)*24)
	buf = append(buf, wireMagic0, wireMagic1, wireVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.Pool))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s.Tenants)))
	for i := range s.Tenants {
		t := &s.Tenants[i]
		buf = append(buf, byte(len(t.ID)))
		buf = append(buf, t.ID...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(t.Weight))
		buf = binary.BigEndian.AppendUint32(buf, uint32(t.Reserved))
		buf = binary.BigEndian.AppendUint64(buf, uint64(t.Quota))
	}
	return buf, nil
}

// Unmarshal decodes the binary wire form. Decoded specs are re-sorted
// and re-validated, so a hand-built (or fuzzed) encoding cannot smuggle
// an out-of-order or out-of-bounds contract past the server.
func Unmarshal(data []byte) (*Spec, error) {
	if len(data) < 9 || data[0] != wireMagic0 || data[1] != wireMagic1 {
		return nil, fmt.Errorf("tenant: bad spec magic")
	}
	if data[2] != wireVersion {
		return nil, fmt.Errorf("tenant: unsupported spec version %d", data[2])
	}
	pool := binary.BigEndian.Uint32(data[3:7])
	if pool > maxPool {
		return nil, fmt.Errorf("tenant: pool %d out of range", pool)
	}
	n := int(binary.BigEndian.Uint16(data[7:9]))
	s := Spec{Pool: int(pool)}
	off := 9
	for i := 0; i < n; i++ {
		if len(data)-off < 1 {
			return nil, fmt.Errorf("tenant: truncated tenant %d", i)
		}
		idLen := int(data[off])
		off++
		if len(data)-off < idLen+16 {
			return nil, fmt.Errorf("tenant: truncated tenant %d", i)
		}
		var t Tenant
		t.ID = string(data[off : off+idLen])
		off += idLen
		w := binary.BigEndian.Uint32(data[off:])
		r := binary.BigEndian.Uint32(data[off+4:])
		q := binary.BigEndian.Uint64(data[off+8:])
		off += 16
		if w > maxWeight || r > maxReserved || q >= 1<<63 {
			return nil, fmt.Errorf("tenant: tenant %d field out of range", i)
		}
		t.Weight, t.Reserved, t.Quota = int(w), int(r), int64(q)
		s.Tenants = append(s.Tenants, t)
	}
	if off != len(data) {
		return nil, fmt.Errorf("tenant: %d trailing bytes after spec", len(data)-off)
	}
	s.normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
