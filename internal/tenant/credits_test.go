package tenant

import "testing"

func mustSpec(t *testing.T, s string) *Spec {
	t.Helper()
	spec, err := ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func checkBank(t *testing.T, b *CreditBank) {
	t.Helper()
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestBankReservationFirst(t *testing.T) {
	b := NewCreditBank(mustSpec(t, "pool=2,a:w1:r2,b:w1"))
	// a's first two acquires come from its reservation, not the pool.
	for i := 0; i < 2; i++ {
		if !b.TryAcquire("a") {
			t.Fatalf("acquire %d failed", i)
		}
	}
	if b.Borrowed("a") != 0 {
		t.Errorf("a borrowed %d from the pool before draining its reservation", b.Borrowed("a"))
	}
	if b.PoolFree() != 2 {
		t.Errorf("pool free = %d, want 2", b.PoolFree())
	}
	// The third spills into the pool.
	if !b.TryAcquire("a") {
		t.Fatal("pool acquire failed")
	}
	if b.Borrowed("a") != 1 || b.Held("a") != 3 {
		t.Errorf("a borrowed=%d held=%d, want 1, 3", b.Borrowed("a"), b.Held("a"))
	}
	checkBank(t, b)
}

func TestBankCappedAcquire(t *testing.T) {
	// Pool 4 split 1:1 means each flow's borrow cap is 2. Capped
	// acquires (buffer posts) must stop at the cap even with the pool
	// half full; the plain acquire may go beyond while nobody waits.
	b := NewCreditBank(mustSpec(t, "pool=4,a:w1,b:w1"))
	for i := 0; i < 2; i++ {
		if !b.TryAcquireCapped("a") {
			t.Fatalf("capped acquire %d failed under cap", i)
		}
	}
	if b.TryAcquireCapped("a") {
		t.Error("capped acquire succeeded past the weighted cap")
	}
	if !b.TryAcquire("a") {
		t.Error("uncapped acquire failed with pool free and no other demand")
	}
	// Once b has demand it could satisfy, a's beyond-cap borrowing stops.
	b.Waitlist("b", 1)
	if b.TryAcquire("a") {
		t.Error("beyond-cap acquire succeeded while another tenant waits")
	}
	checkBank(t, b)
}

func TestBankWeightedCaps(t *testing.T) {
	// Pool 9 at weights 2:1 splits 6/3.
	b := NewCreditBank(mustSpec(t, "pool=9,a:w2,b:w1"))
	got := 0
	for b.TryAcquireCapped("a") {
		got++
	}
	if got != 6 {
		t.Errorf("a capped borrow = %d, want 6", got)
	}
	got = 0
	for b.TryAcquireCapped("b") {
		got++
	}
	if got != 3 {
		t.Errorf("b capped borrow = %d, want 3", got)
	}
	checkBank(t, b)
}

func TestBankCapRemainders(t *testing.T) {
	// Pool 4 over three weight-1 flows: 4/3 leaves a remainder credit,
	// which goes to the earliest ID — caps 2/1/1.
	b := NewCreditBank(mustSpec(t, "pool=4,a,b,c"))
	caps := []struct {
		id   string
		want int
	}{{"a", 2}, {"b", 1}, {"c", 1}}
	for _, tc := range caps {
		got := 0
		for b.TryAcquireCapped(tc.id) {
			got++
		}
		if got != tc.want {
			t.Errorf("%s cap = %d, want %d", tc.id, got, tc.want)
		}
		for i := 0; i < got; i++ {
			b.Release(tc.id)
		}
	}
	checkBank(t, b)
}

func TestBankReleaseReturnsPoolFirst(t *testing.T) {
	b := NewCreditBank(mustSpec(t, "pool=2,a:w1:r1"))
	for i := 0; i < 3; i++ {
		if !b.TryAcquire("a") {
			t.Fatalf("acquire %d failed", i)
		}
	}
	if b.PoolFree() != 0 {
		t.Fatalf("pool free = %d, want 0", b.PoolFree())
	}
	b.Release("a")
	if b.PoolFree() != 1 {
		t.Errorf("release returned to reservation before the pool: free = %d", b.PoolFree())
	}
	checkBank(t, b)
}

func TestBankOverReleaseCaught(t *testing.T) {
	b := NewCreditBank(mustSpec(t, "pool=2,a:w1"))
	b.Release("a") // nothing held: ignored, bank stays consistent
	checkBank(t, b)
	b.Release("unknown")
	checkBank(t, b)
}

func TestBankGrantPriority(t *testing.T) {
	// b has an unused reservation, so a waiting b beats a waiting a for
	// the next grant even though a asked first.
	b := NewCreditBank(mustSpec(t, "pool=8,a:w3,b:w1:r1"))
	b.Waitlist("a", 1)
	b.Waitlist("b", 1)
	id, ok := b.Grant()
	if !ok || id != "b" {
		t.Fatalf("Grant = %q, %v; want b (reserved entitlement)", id, ok)
	}
	// Both reservations spent: pool grants go to the smallest
	// borrowed/weight ratio; a fresh tie goes to the earlier ID.
	b.Waitlist("b", 1)
	id, ok = b.Grant()
	if !ok || id != "a" {
		t.Fatalf("Grant = %q, %v; want a (ratio tie, earlier ID)", id, ok)
	}
	// Now a has borrowed 1 (ratio 1/3), b 0 (ratio 0/1): b is lower.
	b.Waitlist("a", 1)
	id, ok = b.Grant()
	if !ok || id != "b" {
		t.Fatalf("Grant = %q, %v; want b (smaller borrowed/weight)", id, ok)
	}
	// One waiter left (a); with no demand beyond it, Grant stops.
	id, ok = b.Grant()
	if !ok || id != "a" {
		t.Fatalf("Grant = %q, %v; want a (last waiter)", id, ok)
	}
	if id, ok := b.Grant(); ok {
		t.Fatalf("Grant = %q with nobody waiting, want none", id)
	}
	checkBank(t, b)
}

func TestBankGrantPoolExhausted(t *testing.T) {
	b := NewCreditBank(mustSpec(t, "pool=2,a:w1,b:w1"))
	b.Waitlist("a", 3)
	granted := 0
	for {
		if _, ok := b.Grant(); !ok {
			break
		}
		granted++
	}
	if granted != 2 {
		t.Errorf("granted %d credits from a pool of 2", granted)
	}
	if b.Waiting("a") != 1 {
		t.Errorf("a waiting = %d, want 1 (unsatisfied demand)", b.Waiting("a"))
	}
	checkBank(t, b)
}

func TestBankGrantBeyondCap(t *testing.T) {
	// Only a waits; its cap (1 of pool 2 at weights 1:1) is spent.
	// Grant still hands it the idle credit — work conservation.
	b := NewCreditBank(mustSpec(t, "pool=2,a:w1,b:w1"))
	if !b.TryAcquireCapped("a") {
		t.Fatal("capped acquire failed")
	}
	b.Waitlist("a", 1)
	id, ok := b.Grant()
	if !ok || id != "a" {
		t.Fatalf("Grant = %q, %v; want a beyond its cap with no other demand", id, ok)
	}
	checkBank(t, b)
}

func TestBankUnknownTenant(t *testing.T) {
	b := NewCreditBank(mustSpec(t, "pool=2,a:w1"))
	if b.TryAcquire("ghost") || b.TryAcquireCapped("ghost") {
		t.Error("acquire for unknown tenant succeeded")
	}
	b.Waitlist("ghost", 1) // ignored
	if _, ok := b.Grant(); ok {
		t.Error("Grant served an unknown tenant")
	}
	checkBank(t, b)
}

// TestBankConservation drives a deterministic interleaving of every
// bank operation and verifies the conservation invariant after each
// step — the unit-level twin of the fleet self-check.
func TestBankConservation(t *testing.T) {
	b := NewCreditBank(mustSpec(t, "pool=5,a:w3:r2,b:w1:r1,c:w2"))
	held := map[string]int{}
	// A fixed pseudo-random walk (LCG) over acquire/release/waitlist/grant.
	state := uint64(12345)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	ids := []string{"a", "b", "c"}
	for step := 0; step < 2000; step++ {
		id := ids[next(3)]
		switch next(4) {
		case 0:
			if b.TryAcquire(id) {
				held[id]++
			}
		case 1:
			if b.TryAcquireCapped(id) {
				held[id]++
			}
		case 2:
			if held[id] > 0 {
				b.Release(id)
				held[id]--
			}
		case 3:
			b.Waitlist(id, 1)
			if g, ok := b.Grant(); ok {
				held[g]++
			}
		}
		if err := b.Check(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for _, id := range ids {
			if b.Held(id) != held[id] {
				t.Fatalf("step %d: %s held %d, bank says %d", step, id, held[id], b.Held(id))
			}
		}
	}
	// Drain everything: the bank must return to full.
	for _, id := range ids {
		for held[id] > 0 {
			b.Release(id)
			held[id]--
		}
	}
	if b.PoolFree() != 5 {
		t.Errorf("pool free after drain = %d, want 5", b.PoolFree())
	}
	checkBank(t, b)
}
