package tenant

import "hpbd/internal/sim"

// Sched is the deterministic weighted fair queue the server feeds its
// workers from when tenancy is on. It implements start-time fair
// queueing with byte-weighted virtual finish times: a push is tagged
//
//	start  = max(vtime, flow.lastFinish)
//	finish = start + bytes*costScale/weight
//
// and pops take the smallest finish tag (ties by push sequence, so
// equal tags keep arrival order). vtime advances to the start tag of
// each popped item, which keeps a newly-busy flow from replaying
// history it was idle for. 128K requests therefore pay 32x what 4K
// requests pay, and a tenant's share of issue bandwidth converges to
// its weight share — the property the isolation suite asserts.
//
// A FIFO mode (the isolation experiments' control) keeps the identical
// plumbing — including the sched-wait measurement — but orders strictly
// by sequence. All state is integer arithmetic; no clock, no
// randomness, no map iteration.
type Sched[T any] struct {
	wq     *sim.WaitQueue
	fifo   bool
	flows  map[string]*schedFlow // keyed access only; snapshot walks ids
	ids    []string              // registration order
	heap   []entry[T]            // min-heap on (key, seq)
	vtime  uint64
	seq    uint64
	closed bool
}

// costScale converts bytes/weight into integer virtual time with
// enough resolution that weight differences survive the division.
const costScale = 1024

// entry is one queued item.
type entry[T any] struct {
	key    uint64 // virtual finish tag (FIFO: sequence)
	start  uint64 // virtual start tag
	seq    uint64
	bytes  int
	pushAt sim.Time
	flow   *schedFlow
	val    T
}

// schedFlow is one tenant's scheduler state.
type schedFlow struct {
	id         string
	weight     int
	lastFinish uint64
	queued     int
	reqs       int64 // issued (popped) requests
	bytes      int64 // issued bytes
}

// NewSched creates a scheduler; fifo selects the control mode.
func NewSched[T any](env *sim.Env, fifo bool) *Sched[T] {
	return &Sched[T]{
		wq:    sim.NewWaitQueue(env),
		fifo:  fifo,
		flows: make(map[string]*schedFlow),
	}
}

// AddFlow registers a tenant with its weight. Flows must be registered
// before the first Push for their ID.
func (s *Sched[T]) AddFlow(id string, weight int) {
	if weight < 1 {
		weight = 1
	}
	if _, ok := s.flows[id]; ok {
		return
	}
	s.flows[id] = &schedFlow{id: id, weight: weight}
	s.ids = append(s.ids, id)
}

// Push enqueues one item for tenant id, paying bytes of virtual cost,
// and wakes a parked worker. Unregistered IDs run at weight 1.
func (s *Sched[T]) Push(id string, bytes int, now sim.Time, v T) {
	f := s.flows[id]
	if f == nil {
		s.AddFlow(id, 1)
		f = s.flows[id]
	}
	s.seq++
	e := entry[T]{seq: s.seq, bytes: bytes, pushAt: now, flow: f, val: v}
	if s.fifo {
		e.key = s.seq
	} else {
		e.start = s.vtime
		if f.lastFinish > e.start {
			e.start = f.lastFinish
		}
		cost := uint64(bytes) * costScale / uint64(f.weight)
		if cost == 0 {
			cost = 1
		}
		e.key = e.start + cost
		f.lastFinish = e.key
	}
	f.queued++
	s.heapPush(e)
	s.wq.WakeOne()
}

// Pop dequeues the item with the smallest finish tag, blocking the
// worker while the queue is empty. It returns the item, its push time
// (for the sched-wait histogram) and false once the scheduler is
// closed and drained.
func (s *Sched[T]) Pop(p *sim.Proc) (T, sim.Time, bool) {
	for {
		if len(s.heap) > 0 {
			e := s.heapPop()
			if !s.fifo && e.start > s.vtime {
				s.vtime = e.start
			}
			e.flow.queued--
			e.flow.reqs++
			e.flow.bytes += int64(e.bytes)
			return e.val, e.pushAt, true
		}
		if s.closed {
			var zero T
			return zero, 0, false
		}
		s.wq.Wait(p)
	}
}

// Close wakes every parked worker; Pops drain the queue then return
// false.
func (s *Sched[T]) Close() {
	s.closed = true
	s.wq.WakeAll()
}

// Backlog returns the queued item count for id.
func (s *Sched[T]) Backlog(id string) int {
	if f := s.flows[id]; f != nil {
		return f.queued
	}
	return 0
}

// FlowStat is one tenant's issue accounting.
type FlowStat struct {
	ID     string
	Weight int
	Reqs   int64 // requests issued to workers
	Bytes  int64 // bytes issued to workers
	Queued int   // currently backlogged
}

// FlowStats snapshots every flow in registration order.
func (s *Sched[T]) FlowStats() []FlowStat {
	out := make([]FlowStat, 0, len(s.ids))
	for _, id := range s.ids {
		f := s.flows[id]
		out = append(out, FlowStat{ID: f.id, Weight: f.weight, Reqs: f.reqs, Bytes: f.bytes, Queued: f.queued})
	}
	return out
}

// heapPush/heapPop maintain the min-heap on (key, seq) without the
// interface boxing of container/heap.
func (s *Sched[T]) heapPush(e entry[T]) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *Sched[T]) heapPop() entry[T] {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && entryLess(s.heap[l], s.heap[small]) {
			small = l
		}
		if r < last && entryLess(s.heap[r], s.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		s.heap[i], s.heap[small] = s.heap[small], s.heap[i]
		i = small
	}
	return top
}

func entryLess[T any](a, b entry[T]) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}
