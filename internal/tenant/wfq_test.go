package tenant

import (
	"fmt"
	"strings"
	"testing"

	"hpbd/internal/sim"
)

// drain closes the scheduler and pops every queued item into a slice of
// values in issue order, running the pops inside env.
func drain(t *testing.T, env *sim.Env, s *Sched[string]) []string {
	t.Helper()
	var order []string
	done := false
	s.Close()
	env.Go("drain", func(p *sim.Proc) {
		for {
			v, _, ok := s.Pop(p)
			if !ok {
				break
			}
			order = append(order, v)
		}
		done = true
	})
	env.Run()
	env.Close()
	if !done {
		t.Fatal("drain proc did not finish")
	}
	return order
}

func TestSchedFIFOOrder(t *testing.T) {
	env := sim.NewEnv()
	s := NewSched[string](env, true)
	s.AddFlow("a", 1)
	s.AddFlow("b", 8)
	// FIFO ignores weights and bytes: strict arrival order.
	s.Push("a", 128<<10, 0, "a1")
	s.Push("b", 4<<10, 0, "b1")
	s.Push("a", 128<<10, 0, "a2")
	s.Push("b", 4<<10, 0, "b2")
	got := drain(t, env, s)
	want := []string{"a1", "b1", "a2", "b2"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("FIFO order = %v, want %v", got, want)
	}
}

func TestSchedByteWeighting(t *testing.T) {
	// Equal weights, unequal sizes: a's second 128K burst must not
	// issue ahead of b's backlog of 4K reads — large requests pay
	// proportionally more virtual time.
	env := sim.NewEnv()
	s := NewSched[string](env, false)
	s.AddFlow("a", 1)
	s.AddFlow("b", 1)
	s.Push("a", 128<<10, 0, "a1")
	s.Push("a", 128<<10, 0, "a2")
	for i := 0; i < 32; i++ {
		s.Push("b", 4<<10, 0, fmt.Sprintf("b%d", i))
	}
	got := drain(t, env, s)
	// a2's finish tag is two 128K costs out: every one of b's reads
	// (32*4K = one 128K of virtual time) issues before it.
	if got[len(got)-1] != "a2" {
		t.Errorf("last issue = %s, want a2 (largest finish tag); order %v", got[len(got)-1], got)
	}
	// a1 and b31 carry the identical finish tag (128K at weight 1);
	// the earlier push sequence breaks the tie in a1's favour.
	a1 := indexOf(got, "a1")
	b31 := indexOf(got, "b31")
	if a1 > b31 {
		t.Errorf("tag tie broke against arrival order: a1 at %d, b31 at %d; order %v", a1, b31, got)
	}
}

func TestSchedWeightShares(t *testing.T) {
	// Backlogged flows at weights 3:1 with equal-size items: in any
	// issue window the weight-3 flow gets ~3x the grants.
	env := sim.NewEnv()
	s := NewSched[string](env, false)
	s.AddFlow("a", 3)
	s.AddFlow("b", 1)
	const n = 64
	for i := 0; i < n; i++ {
		s.Push("a", 4096, 0, "a")
		s.Push("b", 4096, 0, "b")
	}
	got := drain(t, env, s)
	// Count a-grants inside the first 40 issues: expect 3/4 of them
	// (+-2 for startup skew).
	aFirst := 0
	for _, id := range got[:40] {
		if id == "a" {
			aFirst++
		}
	}
	if aFirst < 28 || aFirst > 32 {
		t.Errorf("a got %d of the first 40 grants, want ~30 (weight 3 of 4)", aFirst)
	}
}

func TestSchedIdleFlowNoHistory(t *testing.T) {
	// A flow that was idle while vtime advanced must not bank the
	// bandwidth it "missed": its next push starts at current vtime and
	// competes fairly rather than locking out the busy flow.
	env := sim.NewEnv()
	s := NewSched[string](env, false)
	s.AddFlow("a", 1)
	s.AddFlow("b", 1)
	for i := 0; i < 8; i++ {
		s.Push("a", 64<<10, 0, "a")
	}
	env.Go("pops", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			s.Pop(p)
		}
		// vtime is now far along; b wakes from idleness.
		s.Push("b", 64<<10, p.Now(), "b1")
		s.Push("a", 64<<10, p.Now(), "a9")
		s.Push("b", 64<<10, p.Now(), "b2")
	})
	env.Run()
	got := drain(t, env, s)
	// b1 starts at vtime, not at 0, so a9 must beat b2 instead of
	// waiting out b's phantom debt.
	if indexOf(got, "a9") > indexOf(got, "b2") {
		t.Errorf("returning flow starved behind idle flow's backlog: %v", got)
	}
}

func TestSchedDeterminism(t *testing.T) {
	run := func() []string {
		env := sim.NewEnv()
		s := NewSched[string](env, false)
		s.AddFlow("a", 2)
		s.AddFlow("b", 1)
		s.AddFlow("c", 5)
		for i := 0; i < 30; i++ {
			s.Push([]string{"a", "b", "c"}[i%3], (i%5+1)*4096, 0, fmt.Sprintf("%d", i))
		}
		return drain(t, env, s)
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); strings.Join(got, ",") != strings.Join(first, ",") {
			t.Fatalf("run %d diverged:\n%v\n%v", i, got, first)
		}
	}
}

func TestSchedUnregisteredFlow(t *testing.T) {
	env := sim.NewEnv()
	s := NewSched[string](env, false)
	s.Push("ghost", 4096, 0, "g") // auto-registers at weight 1
	got := drain(t, env, s)
	if len(got) != 1 || got[0] != "g" {
		t.Errorf("drain = %v, want [g]", got)
	}
	stats := s.FlowStats()
	if len(stats) != 1 || stats[0].ID != "ghost" || stats[0].Weight != 1 {
		t.Errorf("FlowStats = %+v, want ghost at weight 1", stats)
	}
}

func TestSchedFlowStats(t *testing.T) {
	env := sim.NewEnv()
	s := NewSched[string](env, false)
	s.AddFlow("a", 2)
	s.Push("a", 4096, 0, "a1")
	s.Push("a", 8192, 0, "a2")
	if s.Backlog("a") != 2 {
		t.Errorf("Backlog = %d, want 2", s.Backlog("a"))
	}
	env.Go("pop", func(p *sim.Proc) { s.Pop(p) })
	env.Run()
	env.Close()
	st := s.FlowStats()[0]
	if st.Reqs != 1 || st.Bytes != 4096 || st.Queued != 1 {
		t.Errorf("FlowStat = %+v, want 1 req, 4096 bytes, 1 queued", st)
	}
}

func TestSchedPopBlocksUntilPush(t *testing.T) {
	// A worker parked on an empty queue wakes when an item arrives.
	env := sim.NewEnv()
	s := NewSched[string](env, false)
	var got string
	env.Go("worker", func(p *sim.Proc) {
		v, _, ok := s.Pop(p)
		if ok {
			got = v
		}
	})
	env.Go("producer", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		s.Push("a", 4096, p.Now(), "late")
	})
	env.Run()
	env.Close()
	if got != "late" {
		t.Errorf("parked worker got %q, want late", got)
	}
}

func indexOf(xs []string, want string) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return -1
}
