package tenant

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTenantSpec exercises both TQ-v1 codec directions from one corpus:
// inputs that parse as text specs must survive text and binary round
// trips unchanged, and inputs that decode as binary specs must re-encode
// byte-identically. Any panic, validation escape or round-trip drift is
// a finding.
func FuzzTenantSpec(f *testing.F) {
	seeds := []string{
		"pool=8,A:w4:r8:q2M,B:w1:r4",
		"pool=0,a:r1",
		"pool=32,a:w1,b:w2:q1M",
		"pool=2,a:w1:r30,b:w10",
		"pool=1,x_y-9:w1048576:r1048576:q4G",
		"pool=4,a,a",  // duplicate: must fail, not panic
		"pool=4,a:w0", // invalid weight
		"TQ\x01\x00\x00\x00\x04\x00\x01\x01a\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Text direction.
		if s, err := ParseSpec(string(data)); err == nil {
			if err := s.Validate(); err != nil {
				t.Fatalf("ParseSpec returned invalid spec: %v", err)
			}
			s2, err := ParseSpec(s.String())
			if err != nil {
				t.Fatalf("reparse of %q: %v", s.String(), err)
			}
			if !reflect.DeepEqual(s, s2) {
				t.Fatalf("text round trip drift: %+v != %+v", s, s2)
			}
			enc, err := s.Marshal()
			if err != nil {
				t.Fatalf("Marshal of valid spec: %v", err)
			}
			s3, err := Unmarshal(enc)
			if err != nil {
				t.Fatalf("Unmarshal of Marshal output: %v", err)
			}
			if !reflect.DeepEqual(s, s3) {
				t.Fatalf("binary round trip drift: %+v != %+v", s, s3)
			}
		}
		// Binary direction: fuzzed bytes that decode must be valid and
		// re-encode to the same bytes (the codec is canonical).
		if s, err := Unmarshal(data); err == nil {
			if err := s.Validate(); err != nil {
				t.Fatalf("Unmarshal returned invalid spec: %v", err)
			}
			enc, err := s.Marshal()
			if err != nil {
				t.Fatalf("re-Marshal of decoded spec: %v", err)
			}
			s2, err := Unmarshal(enc)
			if err != nil {
				t.Fatalf("re-Unmarshal: %v", err)
			}
			if !reflect.DeepEqual(s, s2) {
				t.Fatalf("binary re-decode drift: %+v != %+v", s, s2)
			}
			// Decoded specs are normalized, so a decoded-then-encoded
			// spec is a fixed point even if the input bytes were not.
			enc2, err := s2.Marshal()
			if err != nil {
				t.Fatalf("second Marshal: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("canonical encoding not a fixed point: %x != %x", enc, enc2)
			}
		}
	})
}
