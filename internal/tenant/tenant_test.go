package tenant

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("pool=8,A:w4:r8:q2M,B:w1:r4")
	if err != nil {
		t.Fatal(err)
	}
	if s.Pool != 8 {
		t.Errorf("pool = %d, want 8", s.Pool)
	}
	want := []Tenant{
		{ID: "A", Weight: 4, Reserved: 8, Quota: 2 << 20},
		{ID: "B", Weight: 1, Reserved: 4},
	}
	if !reflect.DeepEqual(s.Tenants, want) {
		t.Errorf("tenants = %+v, want %+v", s.Tenants, want)
	}
	if s.Provisioned() != 8+8+4 {
		t.Errorf("Provisioned = %d, want 20", s.Provisioned())
	}
	if s.TotalWeight() != 5 {
		t.Errorf("TotalWeight = %d, want 5", s.TotalWeight())
	}
}

func TestParseSpecDefaults(t *testing.T) {
	// Bare IDs default to weight 1, no reservation, no quota; tenants
	// are normalized to ID order regardless of spec order.
	s, err := ParseSpec("pool=4,zeta,alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tenants) != 2 || s.Tenants[0].ID != "alpha" || s.Tenants[1].ID != "zeta" {
		t.Fatalf("tenants = %+v, want alpha then zeta", s.Tenants)
	}
	for _, tn := range s.Tenants {
		if tn.Weight != 1 || tn.Reserved != 0 || tn.Quota != 0 {
			t.Errorf("%s = %+v, want weight 1, reserved 0, quota 0", tn.ID, tn)
		}
	}
}

func TestParseSpecQuotaSuffixes(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
	}{
		{"q512", 512},
		{"q4K", 4 << 10},
		{"q1M", 1 << 20},
		{"q2G", 2 << 30},
	} {
		s, err := ParseSpec("pool=1,a:" + tc.in)
		if err != nil {
			t.Errorf("%s: %v", tc.in, err)
			continue
		}
		if got := s.Tenants[0].Quota; got != tc.want {
			t.Errorf("%s: quota = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",                                  // no tenants
		"pool=4",                            // no tenants
		"pool=4,pool=4,a",                   // duplicate pool
		"pool=x,a",                          // bad pool
		"pool=-1,a",                         // negative pool
		"pool=4,a,a",                        // duplicate tenant
		"pool=4,a:w0",                       // weight < 1
		"pool=4,a:wx",                       // bad weight
		"pool=4,a:r-1",                      // negative reservation
		"pool=4,a:q-1",                      // negative quota
		"pool=4,a:z9",                       // unknown field
		"pool=4,a:w",                        // short field
		"pool=4,bad id",                     // bad charset
		"pool=4,a.b",                        // bad charset
		"a",                                 // no provisioned credits
		"pool=4," + strings.Repeat("x", 65), // ID too long
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want failure", spec)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"pool=8,A:w4:r8:q2M,B:w1:r4",
		"pool=0,a:w1:r1",
		"pool=32,a:w1:r0,b:w2:r0:q1M,c:w7:r3:q4097",
	} {
		s, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		text := s.String()
		s2, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("reparse %q: %v", text, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Errorf("round trip of %q via %q changed spec: %+v != %+v", spec, text, s, s2)
		}
		if text2 := s2.String(); text2 != text {
			t.Errorf("String not a fixed point: %q then %q", text, text2)
		}
	}
}

func TestSpecMarshalRoundTrip(t *testing.T) {
	s, err := ParseSpec("pool=8,A:w4:r8:q2M,B:w1:r4,c-3:w9")
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Errorf("binary round trip changed spec: %+v != %+v", s, s2)
	}
	data2, err := s2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("re-encoding not byte-identical: %x != %x", data, data2)
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	s := &Spec{Pool: 4} // no tenants
	if _, err := s.Marshal(); err == nil {
		t.Error("Marshal of invalid spec succeeded")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, err := ParseSpec("pool=4,a:w2:r1")
	if err != nil {
		t.Fatal(err)
	}
	data, err := good.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"short":          data[:5],
		"bad magic":      append([]byte("XX"), data[2:]...),
		"bad version":    append([]byte{'T', 'Q', 9}, data[3:]...),
		"trailing bytes": append(append([]byte{}, data...), 0),
		"truncated body": data[:len(data)-4],
	}
	for name, d := range cases {
		if _, err := Unmarshal(d); err == nil {
			t.Errorf("%s: Unmarshal succeeded, want failure", name)
		}
	}
}

func TestUnmarshalRevalidates(t *testing.T) {
	// A hand-built encoding with a zero weight must be rejected even
	// though it is structurally well-formed.
	data := []byte{'T', 'Q', 1, 0, 0, 0, 4, 0, 1, // pool=4, 1 tenant
		1, 'a', // id "a"
		0, 0, 0, 0, // weight 0: invalid
		0, 0, 0, 1, // reserved 1
		0, 0, 0, 0, 0, 0, 0, 0, // quota 0
	}
	if _, err := Unmarshal(data); err == nil {
		t.Error("Unmarshal accepted a zero-weight tenant")
	}
}

func TestFind(t *testing.T) {
	s, err := ParseSpec("pool=4,a:w2,b:w3")
	if err != nil {
		t.Fatal(err)
	}
	if f := s.Find("b"); f == nil || f.Weight != 3 {
		t.Errorf("Find(b) = %+v, want weight 3", f)
	}
	if f := s.Find("nope"); f != nil {
		t.Errorf("Find(nope) = %+v, want nil", f)
	}
}
