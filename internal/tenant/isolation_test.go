// Package tenant_test holds the noisy-neighbor isolation tier: the
// black-box suite that asserts the QoS contract end to end through the
// experiments layer (client, wire protocol, server scheduler, credit
// bank). It lives outside package tenant so it can drive the full
// cluster without an import cycle.
package tenant_test

import (
	"testing"

	"hpbd/internal/experiments"
	"hpbd/internal/sim"
)

// isolationBound is the contract the WFQ scheduler must meet: the
// victim's p99 under a neighbor's storm stays within this factor of its
// solo p99. The FIFO control must violate the same bound — otherwise
// the scenario isn't stressful enough to prove anything.
const isolationBound = 1.5

// runArm runs one isolation arm and returns its p99.
func runArm(t *testing.T, pr experiments.IsolationParams) sim.Duration {
	t.Helper()
	lats, err := experiments.RunTenantIsolation(pr)
	if err != nil {
		t.Fatal(err)
	}
	return experiments.LatP99(lats)
}

// TestNoisyNeighborIsolation is the headline assertion of the tenancy
// tier: tenant a hammers the shared server with a 128 KB write storm
// while tenant b performs closed-loop 4 KB reads. Under weighted fair
// queueing b's p99 must stay within 1.5x of its solo baseline; under
// the FIFO control the same storm must blow past that bound, proving
// the isolation comes from the scheduler and not from slack in the
// scenario.
func TestNoisyNeighborIsolation(t *testing.T) {
	solo := runArm(t, experiments.IsolationParams{Solo: true})
	fifo := runArm(t, experiments.IsolationParams{FIFO: true})
	wfq := runArm(t, experiments.IsolationParams{})
	if solo <= 0 {
		t.Fatalf("solo p99 = %v", solo)
	}
	fifoX := float64(fifo) / float64(solo)
	wfqX := float64(wfq) / float64(solo)
	t.Logf("victim p99: solo %v, fifo %v (%.2fx), wfq %v (%.2fx), bound %.1fx",
		solo, fifo, fifoX, wfq, wfqX, isolationBound)
	if wfqX > isolationBound {
		t.Errorf("WFQ victim p99 %.2fx solo exceeds the %.1fx isolation bound", wfqX, isolationBound)
	}
	if fifoX <= isolationBound {
		t.Errorf("FIFO control p99 %.2fx solo within the %.1fx bound: the scenario is not adversarial enough", fifoX, isolationBound)
	}
}

// TestIsolationDeterministic re-runs the WFQ arm and requires identical
// latency sequences: the isolation numbers recorded in EXPERIMENTS.md
// are reproducible artifacts, not flaky measurements.
func TestIsolationDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat run of the full arm")
	}
	first, err := experiments.RunTenantIsolation(experiments.IsolationParams{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := experiments.RunTenantIsolation(experiments.IsolationParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("runs returned %d vs %d probes", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("probe %d diverged: %v vs %v", i, first[i], second[i])
		}
	}
}
