package tenant

import "fmt"

// CreditBank partitions one server's receive window among tenants: each
// tenant holds its guaranteed reservation outright and may borrow from
// the shared pool up to a weighted cap (or beyond it while nobody else
// is waiting — the bank is work-conserving). A credit covers one
// request slot from the instant its receive buffer is posted until the
// reply leaves, so the conservation invariant
//
//	free + sum(held reserved + borrowed) == provisioned
//
// holds at every instant; Check is the runtime twin of the
// creditbalance static analyzer and verifies it on demand.
//
// The bank is plain bookkeeping — no processes, no clock — so the
// server drives it from its single-threaded event context and every
// decision is deterministic: flows are scanned in spec (ID) order and
// borrow grants go to the flow with the smallest borrowed/weight ratio,
// ties to the earlier ID.
type CreditBank struct {
	pool     int
	poolFree int
	flows    []*bankFlow
	byID     map[string]*bankFlow
	held     int // independent acquire/release tally, cross-checked by Check
}

// bankFlow is one tenant's bank account.
type bankFlow struct {
	t        Tenant
	cap      int // weighted borrow cap (fair share of the pool)
	heldRes  int // reserved credits currently held
	borrowed int // pool credits currently held
	waiting  int // withheld request slots waiting for a credit
}

// NewCreditBank builds the bank for a validated spec. Borrow caps are
// the pool split by weight, remainders going to earlier IDs.
func NewCreditBank(spec *Spec) *CreditBank {
	b := &CreditBank{
		pool:     spec.Pool,
		poolFree: spec.Pool,
		byID:     make(map[string]*bankFlow, len(spec.Tenants)),
	}
	totalW := spec.TotalWeight()
	rem := spec.Pool
	for i := range spec.Tenants {
		f := &bankFlow{t: spec.Tenants[i]}
		f.cap = spec.Pool * f.t.Weight / totalW
		rem -= f.cap
		b.flows = append(b.flows, f)
		b.byID[f.t.ID] = f
	}
	for i := 0; rem > 0 && len(b.flows) > 0; i++ {
		b.flows[i%len(b.flows)].cap++
		rem--
	}
	return b
}

// TryAcquire takes one credit for tenant id: from its reservation
// first, then from the pool. A flow already at its weighted cap may
// only keep borrowing while no other tenant is waiting for pool
// credits it could use — that keeps the pool work-conserving without
// letting a greedy tenant starve a borrower below its share.
func (b *CreditBank) TryAcquire(id string) bool {
	f := b.byID[id]
	if f == nil {
		return false
	}
	if f.heldRes < f.t.Reserved {
		f.heldRes++
		b.held++
		return true
	}
	if b.poolFree > 0 && (f.borrowed < f.cap || !b.otherPoolDemand(f)) {
		f.borrowed++
		b.poolFree--
		b.held++
		return true
	}
	return false
}

// TryAcquireCapped is the buffer-post acquire: reservation first, then
// the pool only while under the weighted cap. A posted receive buffer
// pins its credit until a request lands on it — which an idle tenant
// may never send — so posts must not borrow past their share;
// beyond-cap borrowing is reserved for Grant, where the decision is
// remade at every release with live demand in view.
func (b *CreditBank) TryAcquireCapped(id string) bool {
	f := b.byID[id]
	if f == nil {
		return false
	}
	if f.heldRes < f.t.Reserved {
		f.heldRes++
		b.held++
		return true
	}
	if b.poolFree > 0 && f.borrowed < f.cap {
		f.borrowed++
		b.poolFree--
		b.held++
		return true
	}
	return false
}

// otherPoolDemand reports whether any flow besides f is waiting and
// still under its borrow cap (i.e. entitled to the pool credit f wants
// to take beyond its own cap).
func (b *CreditBank) otherPoolDemand(f *bankFlow) bool {
	for _, g := range b.flows {
		if g != f && g.waiting > 0 && (g.heldRes < g.t.Reserved || g.borrowed < g.cap) {
			return true
		}
	}
	return false
}

// Release returns one of id's credits: borrowed pool credits go back
// first so the shared pool refills before the private reservation.
func (b *CreditBank) Release(id string) {
	f := b.byID[id]
	if f == nil {
		return
	}
	if f.borrowed > 0 {
		f.borrowed--
		b.poolFree++
	} else if f.heldRes > 0 {
		f.heldRes--
	} else {
		return // over-release: Check reports the imbalance
	}
	b.held--
}

// Waitlist adjusts id's count of withheld request slots (demand). The
// server pairs +1 with stashing a slot and Grant decrements on grant.
func (b *CreditBank) Waitlist(id string, delta int) {
	if f := b.byID[id]; f != nil {
		f.waiting += delta
		if f.waiting < 0 {
			f.waiting = 0
		}
	}
}

// Grant picks the waiting tenant entitled to the next credit, acquires
// it on their behalf, and returns the ID. Priority: reserved
// entitlement in ID order, then the under-cap borrower with the
// smallest borrowed/weight ratio, then (pool still free, nobody under
// cap) any waiter by the same ratio — all deterministic.
func (b *CreditBank) Grant() (string, bool) {
	for _, f := range b.flows {
		if f.waiting > 0 && f.heldRes < f.t.Reserved {
			f.heldRes++
			b.held++
			f.waiting--
			return f.t.ID, true
		}
	}
	if b.poolFree == 0 {
		return "", false
	}
	pick := b.pickBorrower(true)
	if pick == nil {
		pick = b.pickBorrower(false)
	}
	if pick == nil {
		return "", false
	}
	pick.borrowed++
	b.poolFree--
	b.held++
	pick.waiting--
	return pick.t.ID, true
}

// pickBorrower returns the waiting flow with the smallest
// borrowed/weight ratio (ties to the earlier ID), optionally only among
// flows under their borrow cap.
func (b *CreditBank) pickBorrower(underCap bool) *bankFlow {
	var pick *bankFlow
	for _, f := range b.flows {
		if f.waiting == 0 || (underCap && f.borrowed >= f.cap) {
			continue
		}
		// f.borrowed/f.t.Weight < pick.borrowed/pick.t.Weight, cross-multiplied.
		if pick == nil || f.borrowed*pick.t.Weight < pick.borrowed*f.t.Weight {
			pick = f
		}
	}
	return pick
}

// Held returns the credits tenant id currently holds (reserved + borrowed).
func (b *CreditBank) Held(id string) int {
	if f := b.byID[id]; f != nil {
		return f.heldRes + f.borrowed
	}
	return 0
}

// Borrowed returns the pool credits tenant id currently holds.
func (b *CreditBank) Borrowed(id string) int {
	if f := b.byID[id]; f != nil {
		return f.borrowed
	}
	return 0
}

// Waiting returns tenant id's withheld-slot count.
func (b *CreditBank) Waiting(id string) int {
	if f := b.byID[id]; f != nil {
		return f.waiting
	}
	return 0
}

// PoolFree returns the unborrowed pool credits.
func (b *CreditBank) PoolFree() int { return b.poolFree }

// Provisioned returns the total credit supply.
func (b *CreditBank) Provisioned() int {
	n := b.pool
	for _, f := range b.flows {
		n += f.t.Reserved
	}
	return n
}

// Check verifies the conservation invariant — held + free equals
// provisioned, per-flow holdings inside their bounds, and the running
// acquire/release tally consistent with the per-flow state. It is the
// runtime twin of the creditbalance analyzer: the server runs it at
// every scheduler tick under TenantSelfCheck.
func (b *CreditBank) Check() error {
	if b.poolFree < 0 || b.poolFree > b.pool {
		return fmt.Errorf("tenant: pool free %d outside [0,%d]", b.poolFree, b.pool)
	}
	held, borrowed := 0, 0
	for _, f := range b.flows {
		if f.heldRes < 0 || f.heldRes > f.t.Reserved {
			return fmt.Errorf("tenant: %s holds %d reserved credits of %d", f.t.ID, f.heldRes, f.t.Reserved)
		}
		if f.borrowed < 0 {
			return fmt.Errorf("tenant: %s borrowed %d < 0", f.t.ID, f.borrowed)
		}
		if f.waiting < 0 {
			return fmt.Errorf("tenant: %s waiting %d < 0", f.t.ID, f.waiting)
		}
		held += f.heldRes + f.borrowed
		borrowed += f.borrowed
	}
	if borrowed+b.poolFree != b.pool {
		return fmt.Errorf("tenant: pool leak: borrowed %d + free %d != %d", borrowed, b.poolFree, b.pool)
	}
	if held != b.held {
		return fmt.Errorf("tenant: held tally %d != per-flow sum %d", b.held, held)
	}
	free := b.poolFree
	for _, f := range b.flows {
		free += f.t.Reserved - f.heldRes
	}
	if held+free != b.Provisioned() {
		return fmt.Errorf("tenant: held %d + free %d != provisioned %d", held, free, b.Provisioned())
	}
	return nil
}
