package placement

import (
	"reflect"
	"testing"
)

// areas builds n equal areas laid out contiguously — the blocked layout
// the client constructs at ConnectServer time.
func areas(n int, size int64) []Area {
	out := make([]Area, n)
	for i := range out {
		out[i] = Area{Start: int64(i) * size, Size: size}
	}
	return out
}

// The legacy blocked policy must reproduce the seed client's split math
// exactly: these tables are the segment lists the original
// client.go split produced for the Figure 10 sixteen-server layout and
// the boundary cases.
func TestBlockedGoldenSixteenServers(t *testing.T) {
	const area = 256 * 1024
	as := areas(16, area)

	// A device-spanning request: one full-area segment per server, in
	// address order.
	got := Blocked(as, 0, 16*area)
	if len(got) != 16 {
		t.Fatalf("full-device split into %d segments, want 16", len(got))
	}
	for i, sg := range got {
		want := Segment{Server: i, Offset: 0, Off: i * area, Length: area, DevByte: int64(i) * area}
		if sg != want {
			t.Errorf("seg %d = %+v, want %+v", i, sg, want)
		}
	}

	// The last page of every server's range stays whole and lands at the
	// area tail.
	for i := 0; i < 16; i++ {
		start := int64(i+1)*area - 4096
		segs := Blocked(as, start, 4096)
		want := []Segment{{Server: i, Offset: area - 4096, Off: 0, Length: 4096, DevByte: start}}
		if !reflect.DeepEqual(segs, want) {
			t.Errorf("tail page of server %d = %+v, want %+v", i, segs, want)
		}
	}
}

func TestBlockedGoldenBoundaries(t *testing.T) {
	const area = 1 << 20
	as := areas(2, area)

	cases := []struct {
		name  string
		start int64
		n     int
		want  []Segment
	}{
		{
			"straddle split at the area edge",
			area - 4096, 8192,
			[]Segment{
				{Server: 0, Offset: area - 4096, Off: 0, Length: 4096, DevByte: area - 4096},
				{Server: 1, Offset: 0, Off: 4096, Length: 4096, DevByte: area},
			},
		},
		{
			"last sector of area 0",
			area - SectorSize, SectorSize,
			[]Segment{{Server: 0, Offset: area - SectorSize, Off: 0, Length: SectorSize, DevByte: area - SectorSize}},
		},
		{
			"first sector of area 1",
			area, SectorSize,
			[]Segment{{Server: 1, Offset: 0, Off: 0, Length: SectorSize, DevByte: area}},
		},
		{
			"device tail sector",
			2*area - SectorSize, SectorSize,
			[]Segment{{Server: 1, Offset: area - SectorSize, Off: 0, Length: SectorSize, DevByte: 2*area - SectorSize}},
		},
		{"past the device end", 2*area - SectorSize, 2 * SectorSize, nil},
		{"entirely out of range", 2 * area, SectorSize, nil},
	}
	for _, c := range cases {
		if got := Blocked(as, c.start, c.n); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %+v, want %+v", c.name, got, c.want)
		}
	}
}

func TestStripedGolden(t *testing.T) {
	const area = 1 << 20
	const stripe = 64 * 1024
	as := areas(2, area)

	cases := []struct {
		name  string
		start int64
		n     int
		want  []Segment
	}{
		{
			"two full stripes alternate servers",
			0, 2 * stripe,
			[]Segment{
				{Server: 0, Offset: 0, Off: 0, Length: stripe, DevByte: 0},
				{Server: 1, Offset: 0, Off: stripe, Length: stripe, DevByte: stripe},
			},
		},
		{
			"straddle splits at the stripe edge",
			stripe - 4096, 8192,
			[]Segment{
				{Server: 0, Offset: stripe - 4096, Off: 0, Length: 4096, DevByte: stripe - 4096},
				{Server: 1, Offset: 0, Off: 4096, Length: 4096, DevByte: stripe},
			},
		},
		{
			"chunk 2 wraps to server 0 row 1",
			2 * stripe, 4096,
			[]Segment{{Server: 0, Offset: stripe, Off: 0, Length: 4096, DevByte: 2 * stripe}},
		},
		{"past the last row", 2 * area, SectorSize, nil},
	}
	for _, c := range cases {
		if got := Striped(as, stripe, c.start, c.n); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %+v, want %+v", c.name, got, c.want)
		}
	}
}

// A directory bootstrapped from the legacy areas must split identically
// to the blocked policy across the whole device.
func TestDirectoryMatchesBlockedAtBootstrap(t *testing.T) {
	const area = 256 * 1024
	as := areas(16, area)
	d := NewDirectory()
	for i := 0; i < 16; i++ {
		d.Bootstrap("s", area)
	}
	if d.Epoch() != 0 {
		t.Errorf("bootstrap epoch = %d, want 0", d.Epoch())
	}
	for start := int64(0); start < 16*area; start += 37 * SectorSize {
		n := 8192
		if start+int64(n) > 16*area {
			n = int(16*area - start)
		}
		if got, want := d.Split(start, n), Blocked(as, start, n); !reflect.DeepEqual(got, want) {
			t.Fatalf("Split(%d, %d) = %+v, want %+v", start, n, got, want)
		}
	}
}
