// Package placement owns the sector→server mapping of an HPBD device.
//
// The paper's client hardwires two static layouts: a blocked
// distribution (each server exports the next contiguous slice of the
// device, §4.2.5) and a striped ablation (round-robin chunks). Both are
// reproduced here as pure policy functions over immutable Area lists —
// byte-identical to the original split math — so the default figures do
// not move.
//
// On top of the static policies sits the Directory: a versioned,
// epoch-stamped map of sector ranges to servers that makes membership
// dynamic. Servers can be added, drained and removed at runtime; the
// directory plans rebalancing moves (capacity-proportional targets,
// minimal movement, deterministic order) and the device's migration
// engine executes them, committing each move with an epoch bump.
package placement

import (
	"hpbd/internal/blockdev"
)

// SectorSize aliases the block layer's addressing unit.
const SectorSize = blockdev.SectorSize

// Area is one server's exported memory region. Start is the device byte
// offset the area covers under the blocked layout (unused by the
// striped policy, which derives position round-robin).
type Area struct {
	Start int64 // device byte offset (blocked layout)
	Size  int64 // bytes exported
}

// Segment is one piece of a split request: Length bytes of the parent
// request at byte Off map to the owning server's area at byte Offset.
type Segment struct {
	Server  int   // index into the device's server list
	Offset  int64 // byte offset within the server area
	Off     int   // byte offset within the parent request
	Length  int
	DevByte int64 // absolute device byte offset of this piece
}

// Blocked maps [start, start+n) onto contiguous server areas — the
// paper's default distribution. Returns nil when the range falls
// outside every area (out-of-range I/O).
func Blocked(areas []Area, start int64, n int) []Segment {
	var out []Segment
	reqOff := 0
	for n > 0 {
		srv := -1
		for i := range areas {
			if start >= areas[i].Start && start < areas[i].Start+areas[i].Size {
				srv = i
				break
			}
		}
		if srv < 0 {
			return nil
		}
		a := areas[srv]
		avail := int(a.Start + a.Size - start)
		take := n
		if take > avail {
			take = avail
		}
		out = append(out, Segment{Server: srv, Offset: start - a.Start, Off: reqOff, Length: take, DevByte: start})
		start += int64(take)
		reqOff += take
		n -= take
	}
	return out
}

// Striped distributes [start, start+n) round-robin over the areas in
// stripe-sized chunks (the §4.2.5 ablation layout). Returns nil when a
// chunk would land beyond its server's area.
func Striped(areas []Area, stripe int64, start int64, n int) []Segment {
	nl := int64(len(areas))
	reqOff := 0
	var out []Segment
	for n > 0 {
		chunk := start / stripe
		li := chunk % nl
		row := chunk / nl
		inChunk := start % stripe
		take := int(stripe - inChunk)
		if take > n {
			take = n
		}
		areaOff := row*stripe + inChunk
		if areaOff+int64(take) > areas[li].Size {
			return nil
		}
		out = append(out, Segment{Server: int(li), Offset: areaOff, Off: reqOff, Length: take, DevByte: start})
		start += int64(take)
		reqOff += take
		n -= take
	}
	return out
}
