package placement

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// State is a directory server's membership state.
type State int

const (
	// Active servers hold ranges and receive rebalanced load.
	Active State = iota
	// Draining servers are being emptied; no new ranges land on them.
	Draining
	// Removed servers have left the fleet (their slot is retained so
	// server indices stay stable).
	Removed
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Draining:
		return "draining"
	case Removed:
		return "removed"
	}
	return "?"
}

// ServerInfo describes one fleet member.
type ServerInfo struct {
	Name      string
	AreaBytes int64 // exported area capacity
	State     State
}

// Range maps [Start, Start+Sectors) of the device to byte AreaOff of
// its server's area. Epoch records the directory epoch at which the
// range last changed owner.
type Range struct {
	Start   int64 // first device sector
	Sectors int64
	Server  int
	AreaOff int64
	Epoch   uint64
}

// Move is one planned migration: re-host [Start, Start+Sectors) from
// server From (where it lives at byte SrcAreaOff) to server To.
type Move struct {
	Start      int64 // first device sector
	Sectors    int64
	From, To   int
	SrcAreaOff int64
}

// Bytes returns the move's payload size.
func (m Move) Bytes() int64 { return m.Sectors * SectorSize }

// ErrNoCapacity reports that a plan could not place sectors because no
// recipient has free area space.
var ErrNoCapacity = errors.New("placement: no free capacity for move")

// Directory is the versioned sector→server map. Ranges are kept sorted
// by Start and always cover [0, TotalSectors) exactly: moves retarget
// ranges, they never unmap them, so the device size is fixed at
// bootstrap (swap capacity does not change once the VM has it — new
// servers add headroom to migrate into, not new sectors).
//
// Destination space is allocated append-only within each server's area
// (alloc is a high-water mark). Space vacated by a move is not reused;
// repeated membership churn can therefore exhaust an area and fail a
// later plan with ErrNoCapacity — the trade for trivially deterministic,
// fragmentation-free offset assignment.
type Directory struct {
	epoch   uint64
	servers []ServerInfo
	ranges  []Range
	alloc   []int64 // per-server allocated bytes (high-water mark)
	total   int64   // device sectors
}

// NewDirectory returns an empty directory; populate it with Bootstrap.
func NewDirectory() *Directory { return &Directory{} }

// Bootstrap appends a founding server owning the next contiguous slice
// of the device — the blocked layout, so a directory bootstrapped from
// the legacy areas splits identically to Blocked. No epoch bump: the
// bootstrap layout is epoch 0.
func (d *Directory) Bootstrap(name string, areaBytes int64) int {
	id := len(d.servers)
	d.servers = append(d.servers, ServerInfo{Name: name, AreaBytes: areaBytes, State: Active})
	d.alloc = append(d.alloc, areaBytes)
	sectors := areaBytes / SectorSize
	d.ranges = append(d.ranges, Range{Start: d.total, Sectors: sectors, Server: id, AreaOff: 0, Epoch: 0})
	d.total += sectors
	return id
}

// AddServer registers a new empty fleet member and bumps the epoch. The
// device does not grow; the server is rebalancing headroom.
func (d *Directory) AddServer(name string, areaBytes int64) int {
	id := len(d.servers)
	d.servers = append(d.servers, ServerInfo{Name: name, AreaBytes: areaBytes, State: Active})
	d.alloc = append(d.alloc, 0)
	d.epoch++
	return id
}

// Epoch returns the directory version; every membership change and
// every committed move bumps it.
func (d *Directory) Epoch() uint64 { return d.epoch }

// TotalSectors returns the fixed device size.
func (d *Directory) TotalSectors() int64 { return d.total }

// NumServers returns the fleet size including drained/removed slots.
func (d *Directory) NumServers() int { return len(d.servers) }

// Servers returns a copy of the fleet table.
func (d *Directory) Servers() []ServerInfo {
	return append([]ServerInfo(nil), d.servers...)
}

// Ranges returns a copy of the range table (sorted by Start).
func (d *Directory) Ranges() []Range {
	return append([]Range(nil), d.ranges...)
}

// FindServer returns the index of the named server, or -1.
func (d *Directory) FindServer(name string) int {
	for i := range d.servers {
		if d.servers[i].Name == name {
			return i
		}
	}
	return -1
}

// SectorsOn returns how many device sectors currently live on server id.
func (d *Directory) SectorsOn(id int) int64 {
	var n int64
	for _, r := range d.ranges {
		if r.Server == id {
			n += r.Sectors
		}
	}
	return n
}

// FreeBytes returns the unallocated space of server id's area.
func (d *Directory) FreeBytes(id int) int64 {
	return d.servers[id].AreaBytes - d.alloc[id]
}

// rangeIdxAt returns the index of the range containing sector (ranges
// cover [0, total) contiguously, so this only fails out of range).
func (d *Directory) rangeIdxAt(sector int64) int {
	i := sort.Search(len(d.ranges), func(i int) bool {
		return d.ranges[i].Start+d.ranges[i].Sectors > sector
	})
	if i >= len(d.ranges) || sector < d.ranges[i].Start {
		return -1
	}
	return i
}

// Split maps the byte range [start, start+n) through the directory,
// producing one segment per crossed range. Returns nil out of range.
func (d *Directory) Split(start int64, n int) []Segment {
	if start < 0 || n <= 0 || start+int64(n) > d.total*SectorSize {
		return nil
	}
	end := start + int64(n)
	reqOff := 0
	var out []Segment
	for start < end {
		i := d.rangeIdxAt(start / SectorSize)
		if i < 0 {
			return nil
		}
		r := d.ranges[i]
		rEnd := (r.Start + r.Sectors) * SectorSize
		take := int(rEnd - start)
		if int64(take) > end-start {
			take = int(end - start)
		}
		out = append(out, Segment{
			Server:  r.Server,
			Offset:  r.AreaOff + (start - r.Start*SectorSize),
			Off:     reqOff,
			Length:  take,
			DevByte: start,
		})
		start += int64(take)
		reqOff += take
	}
	return out
}

// splitAt ensures a range boundary exists at sector (a pure remap: the
// sector→server mapping is unchanged, so no epoch bump).
func (d *Directory) splitAt(sector int64) {
	if sector <= 0 || sector >= d.total {
		return
	}
	i := d.rangeIdxAt(sector)
	r := d.ranges[i]
	if r.Start == sector {
		return
	}
	head := r
	head.Sectors = sector - r.Start
	tail := Range{
		Start:   sector,
		Sectors: r.Start + r.Sectors - sector,
		Server:  r.Server,
		AreaOff: r.AreaOff + (sector-r.Start)*SectorSize,
		Epoch:   r.Epoch,
	}
	d.ranges = append(d.ranges, Range{})
	copy(d.ranges[i+2:], d.ranges[i+1:])
	d.ranges[i] = head
	d.ranges[i+1] = tail
}

// targets computes each server's capacity-proportional share of the
// device, in sectors. Non-active servers get 0. Rounding remainders go
// to the lowest-indexed active servers so the split is deterministic.
func (d *Directory) targets() []int64 {
	out := make([]int64, len(d.servers))
	var capSum int64
	for _, s := range d.servers {
		if s.State == Active {
			capSum += s.AreaBytes
		}
	}
	if capSum == 0 {
		return out
	}
	var assigned int64
	for i, s := range d.servers {
		if s.State != Active {
			continue
		}
		out[i] = d.total * s.AreaBytes / capSum
		assigned += out[i]
	}
	for i := 0; assigned < d.total && i < len(d.servers); i++ {
		if d.servers[i].State == Active {
			out[i]++
			assigned++
		}
	}
	return out
}

// owned tallies sectors per server from the range table.
func (d *Directory) owned() []int64 {
	out := make([]int64, len(d.servers))
	for _, r := range d.ranges {
		out[r.Server] += r.Sectors
	}
	return out
}

// PlanRebalance plans the moves that bring every server to its
// capacity-proportional target, consistent-hash style: only the excess
// moves, and it is carved off the tail (highest device sectors) of each
// over-full server. Recipients and donors are visited in ascending
// index order, and assignments are capped by the recipient's free area
// space, so the plan is deterministic and always executable. An empty
// plan means the directory is balanced (or nothing can move).
func (d *Directory) PlanRebalance() []Move {
	target := d.targets()
	own := d.owned()
	free := make([]int64, len(d.servers))
	for i := range d.servers {
		free[i] = d.FreeBytes(i) / SectorSize
	}
	var moves []Move
	for to := range d.servers {
		if d.servers[to].State != Active {
			continue
		}
		need := target[to] - own[to]
		for from := range d.servers {
			if need <= 0 || free[to] <= 0 {
				break
			}
			if from == to || d.servers[from].State == Removed {
				continue
			}
			excess := own[from] - target[from]
			if excess <= 0 {
				continue
			}
			take := need
			if take > excess {
				take = excess
			}
			if take > free[to] {
				take = free[to]
			}
			carved := d.carve(from, to, take)
			for _, mv := range carved {
				own[from] -= mv.Sectors
				own[to] += mv.Sectors
				free[to] -= mv.Sectors
				need -= mv.Sectors
			}
			moves = append(moves, carved...)
		}
	}
	return moves
}

// carve plans up to take sectors off server from, taken from its
// highest-addressed ranges first (splitting the last one as needed),
// destined for server to. It mutates only range boundaries (pure
// remaps); ownership changes happen at Commit.
func (d *Directory) carve(from, to int, take int64) []Move {
	var moves []Move
	for take > 0 {
		// Highest-Start range owned by from.
		best := -1
		for i := len(d.ranges) - 1; i >= 0; i-- {
			if d.ranges[i].Server == from {
				best = i
				break
			}
		}
		if best < 0 {
			break
		}
		r := d.ranges[best]
		if r.Sectors > take {
			d.splitAt(r.Start + r.Sectors - take)
			r = d.ranges[best+1]
		}
		moves = append(moves, Move{
			Start: r.Start, Sectors: r.Sectors,
			From: from, To: to, SrcAreaOff: r.AreaOff,
		})
		take -= r.Sectors
	}
	// Carving walks tails downward, so moves come out in descending
	// Start order; flip to ascending for cache-friendly, readable plans.
	for i, j := 0, len(moves)-1; i < j; i, j = i+1, j-1 {
		moves[i], moves[j] = moves[j], moves[i]
	}
	return moves
}

// Drain marks server id as draining (epoch bump) and plans the moves
// that empty it onto the active servers with the most free space (ties
// to the lowest index). ErrNoCapacity if the fleet cannot absorb it.
func (d *Directory) Drain(id int) ([]Move, error) {
	if id < 0 || id >= len(d.servers) {
		return nil, fmt.Errorf("placement: no server %d", id)
	}
	if d.servers[id].State != Active {
		return nil, fmt.Errorf("placement: server %s is %v, cannot drain", d.servers[id].Name, d.servers[id].State)
	}
	d.servers[id].State = Draining
	d.epoch++
	free := make([]int64, len(d.servers))
	for i := range d.servers {
		free[i] = d.FreeBytes(i) / SectorSize
	}
	var moves []Move
	// Walk the drained server's ranges in device order; each range goes
	// to the emptiest recipient, splitting when it does not fit whole.
	for i := 0; i < len(d.ranges); i++ {
		r := d.ranges[i]
		if r.Server != id {
			continue
		}
		best, bestFree := -1, int64(0)
		for j := range d.servers {
			if j == id || d.servers[j].State != Active {
				continue
			}
			if free[j] > bestFree {
				best, bestFree = j, free[j]
			}
		}
		if best < 0 {
			return moves, ErrNoCapacity
		}
		take := r.Sectors
		if take > bestFree {
			take = bestFree
			d.splitAt(r.Start + take)
			r = d.ranges[i]
		}
		moves = append(moves, Move{
			Start: r.Start, Sectors: r.Sectors,
			From: id, To: best, SrcAreaOff: r.AreaOff,
		})
		free[best] -= r.Sectors
	}
	return moves, nil
}

// Reserve allocates destination space for a move and returns the byte
// offset within the target's area. Space is never reclaimed (see the
// Directory comment); a move that later aborts leaks its reservation.
func (d *Directory) Reserve(m Move) (int64, error) {
	need := m.Sectors * SectorSize
	if d.alloc[m.To]+need > d.servers[m.To].AreaBytes {
		return 0, fmt.Errorf("%w: server %s needs %d bytes, %d free",
			ErrNoCapacity, d.servers[m.To].Name, need, d.FreeBytes(m.To))
	}
	off := d.alloc[m.To]
	d.alloc[m.To] += need
	return off, nil
}

// Commit retargets the moved sectors to their destination at the
// reserved offset and bumps the epoch — the cutover point. Adjacent
// ranges that end up contiguous on the same server are merged to keep
// the table compact.
func (d *Directory) Commit(m Move, dstAreaOff int64) {
	d.splitAt(m.Start)
	d.splitAt(m.Start + m.Sectors)
	d.epoch++
	for i := range d.ranges {
		r := &d.ranges[i]
		if r.Start >= m.Start && r.Start+r.Sectors <= m.Start+m.Sectors {
			r.Server = m.To
			r.AreaOff = dstAreaOff + (r.Start-m.Start)*SectorSize
			r.Epoch = d.epoch
		}
	}
	d.merge()
}

// merge coalesces adjacent ranges that are contiguous on one server.
func (d *Directory) merge() {
	out := d.ranges[:0]
	for _, r := range d.ranges {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.Server == r.Server &&
				last.Start+last.Sectors == r.Start &&
				last.AreaOff+last.Sectors*SectorSize == r.AreaOff {
				last.Sectors += r.Sectors
				if r.Epoch > last.Epoch {
					last.Epoch = r.Epoch
				}
				continue
			}
		}
		out = append(out, r)
	}
	d.ranges = out
}

// Remove retires an empty server (epoch bump). It must hold no ranges:
// drain first.
func (d *Directory) Remove(id int) error {
	if id < 0 || id >= len(d.servers) {
		return fmt.Errorf("placement: no server %d", id)
	}
	if d.servers[id].State == Removed {
		return nil
	}
	if n := d.SectorsOn(id); n > 0 {
		return fmt.Errorf("placement: server %s still owns %d sectors, drain first", d.servers[id].Name, n)
	}
	d.servers[id].State = Removed
	d.epoch++
	return nil
}

// Dump writes the directory in a fixed, deterministic format: the
// header, the per-server table (index order) and the range table
// (device order).
func (d *Directory) Dump(w io.Writer) {
	fmt.Fprintf(w, "placement directory: epoch %d, %d servers, %d ranges, %d sectors\n",
		d.epoch, len(d.servers), len(d.ranges), d.total)
	fmt.Fprintf(w, "  %-8s %-9s %10s %12s %10s %6s\n", "server", "state", "sectors", "bytes", "alloc", "ranges")
	for i, s := range d.servers {
		sec := d.SectorsOn(i)
		nr := 0
		for _, r := range d.ranges {
			if r.Server == i {
				nr++
			}
		}
		fmt.Fprintf(w, "  %-8s %-9s %10d %12d %10d %6d\n",
			s.Name, s.State, sec, sec*SectorSize, d.alloc[i], nr)
	}
	for _, r := range d.ranges {
		fmt.Fprintf(w, "  [%8d, %8d) -> %-8s area+%-10d epoch %d\n",
			r.Start, r.Start+r.Sectors, d.servers[r.Server].Name, r.AreaOff, r.Epoch)
	}
}
