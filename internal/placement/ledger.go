package placement

import (
	"fmt"
	"io"
	"strings"
)

// OwnedArea is one allocated area of a server's store, tagged with the
// tenant that owns it ("" for single-tenant use).
type OwnedArea struct {
	Owner string
	Off   int64
	Size  int64
}

// Ledger tracks a server's area allocations with tenant ownership. It
// replaces the bare high-water-mark the server used to keep: the
// allocation policy is identical (append-only, first-come), but every
// area carries an owner, so per-tenant accounting and the hpbdctl
// tenants table can attribute store bytes to tenants.
type Ledger struct {
	cap   int64
	next  int64
	areas []OwnedArea
}

// NewLedger creates a ledger over cap bytes of store.
func NewLedger(cap int64) *Ledger { return &Ledger{cap: cap} }

// Allocate reserves the next size bytes for owner and returns the area
// offset. Allocation is append-only — areas are never reclaimed, which
// matches the paper's attach-for-life protocol.
func (l *Ledger) Allocate(owner string, size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("placement: invalid area size %d", size)
	}
	if l.next+size > l.cap {
		return 0, fmt.Errorf("placement: cannot allocate %d bytes (%d free)", size, l.Free())
	}
	off := l.next
	l.next += size
	l.areas = append(l.areas, OwnedArea{Owner: owner, Off: off, Size: size})
	return off, nil
}

// Allocated returns the bytes handed out so far.
func (l *Ledger) Allocated() int64 { return l.next }

// Free returns the unallocated store bytes.
func (l *Ledger) Free() int64 { return l.cap - l.next }

// OwnerBytes sums the areas owned by owner.
func (l *Ledger) OwnerBytes(owner string) int64 {
	var n int64
	for i := range l.areas {
		if l.areas[i].Owner == owner {
			n += l.areas[i].Size
		}
	}
	return n
}

// Areas returns the allocations in allocation order.
func (l *Ledger) Areas() []OwnedArea {
	out := make([]OwnedArea, len(l.areas))
	copy(out, l.areas)
	return out
}

// Dump pretty-prints the ledger (one line per area, allocation order).
func (l *Ledger) Dump(w io.Writer) {
	fmt.Fprintf(w, "area ledger: %d/%d bytes allocated, %d areas\n", l.next, l.cap, len(l.areas))
	for i := range l.areas {
		a := &l.areas[i]
		owner := a.Owner
		if owner == "" {
			owner = "-"
		}
		fmt.Fprintf(w, "  [%12d, %12d) %10d bytes  owner %s\n", a.Off, a.Off+a.Size, a.Size, owner)
	}
}

// String renders the ledger via Dump.
func (l *Ledger) String() string {
	var b strings.Builder
	l.Dump(&b)
	return b.String()
}
