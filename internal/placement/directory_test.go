package placement

import (
	"strings"
	"testing"
)

const mb = int64(1 << 20)

// grow builds a 2-server directory and adds one larger empty server.
// Founders bootstrap fully allocated, so all migration headroom — and
// any later drain capacity — comes from the newcomer.
func grow(t *testing.T) *Directory {
	t.Helper()
	d := NewDirectory()
	d.Bootstrap("mem0", 8*mb)
	d.Bootstrap("mem1", 8*mb)
	d.AddServer("mem2", 24*mb)
	return d
}

// executePlan runs a planned move list to completion the way the
// migration engine would: reserve, then commit.
func executePlan(t *testing.T, d *Directory, moves []Move) {
	t.Helper()
	for _, m := range moves {
		off, err := d.Reserve(m)
		if err != nil {
			t.Fatalf("Reserve(%+v): %v", m, err)
		}
		d.Commit(m, off)
	}
}

func TestRebalancePlanMovesOnlyExcess(t *testing.T) {
	d := grow(t)
	if d.Epoch() != 1 {
		t.Errorf("epoch after AddServer = %d, want 1", d.Epoch())
	}
	moves := d.PlanRebalance()
	if len(moves) == 0 {
		t.Fatal("adding an empty server planned no moves")
	}
	var moved int64
	for _, m := range moves {
		if m.To != 2 {
			t.Errorf("move %+v targets server %d, want the new server", m, m.To)
		}
		moved += m.Sectors
	}
	want := d.TotalSectors() * 24 / 40 // capacity-proportional share (24 MB of 40 MB)
	if diff := moved - want; diff < -2 || diff > 2 {
		t.Errorf("plan moves %d sectors, want ~%d (24/40 of device)", moved, want)
	}

	executePlan(t, d, moves)
	if again := d.PlanRebalance(); len(again) != 0 {
		t.Errorf("directory still unbalanced after executing the plan: %+v", again)
	}
	// The map must still cover [0, total) exactly, in order.
	var at int64
	for _, r := range d.Ranges() {
		if r.Start != at {
			t.Fatalf("range table has a gap/overlap at sector %d", at)
		}
		at += r.Sectors
	}
	if at != d.TotalSectors() {
		t.Fatalf("ranges cover %d sectors, want %d", at, d.TotalSectors())
	}
}

func TestSplitUnchangedByPureRemaps(t *testing.T) {
	d := grow(t)
	before := make(map[int64]Segment)
	for s := int64(0); s < d.TotalSectors(); s += 97 {
		before[s] = d.Split(s*SectorSize, SectorSize)[0]
	}
	d.PlanRebalance() // plans carve ranges (pure remaps), commit nothing
	for s, want := range before {
		got := d.Split(s*SectorSize, SectorSize)[0]
		// Off/DevByte unchanged trivially; the owner and area offset must
		// also be untouched by planning alone.
		if got != want {
			t.Fatalf("sector %d remapped by planning: %+v -> %+v", s, want, got)
		}
	}
}

func TestDrainEmptiesServerAndRemove(t *testing.T) {
	d := grow(t)
	executePlan(t, d, d.PlanRebalance())

	if err := d.Remove(0); err == nil {
		t.Fatal("Remove of a non-empty server must fail")
	}
	moves, err := d.Drain(0)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, m := range moves {
		if m.From != 0 {
			t.Errorf("drain move %+v does not come from the drained server", m)
		}
		if m.To == 0 {
			t.Errorf("drain move %+v targets the drained server", m)
		}
	}
	executePlan(t, d, moves)
	if n := d.SectorsOn(0); n != 0 {
		t.Fatalf("server 0 still owns %d sectors after drain", n)
	}
	if err := d.Remove(0); err != nil {
		t.Fatalf("Remove after drain: %v", err)
	}
	if st := d.Servers()[0].State; st != Removed {
		t.Errorf("server 0 state = %v, want removed", st)
	}
	// A removed server is never a rebalance recipient.
	for _, m := range d.PlanRebalance() {
		if m.To == 0 {
			t.Errorf("rebalance targets removed server: %+v", m)
		}
	}
}

func TestDrainWithoutCapacityFails(t *testing.T) {
	d := NewDirectory()
	d.Bootstrap("mem0", 8*mb)
	d.Bootstrap("mem1", 8*mb)
	// Both founders are fully allocated; nothing can absorb a drain.
	if _, err := d.Drain(0); err == nil {
		t.Fatal("drain with zero fleet headroom must fail")
	}
}

func TestCommitBumpsEpochAndStampsRanges(t *testing.T) {
	d := grow(t)
	moves := d.PlanRebalance()
	e0 := d.Epoch()
	executePlan(t, d, moves[:1])
	if d.Epoch() != e0+1 {
		t.Errorf("epoch after one commit = %d, want %d", d.Epoch(), e0+1)
	}
	m := moves[0]
	for s := m.Start; s < m.Start+m.Sectors; s += 64 {
		sg := d.Split(s*SectorSize, SectorSize)[0]
		if sg.Server != m.To {
			t.Fatalf("sector %d maps to server %d after commit, want %d", s, sg.Server, m.To)
		}
	}
	for _, r := range d.Ranges() {
		if r.Server == m.To && r.Epoch != d.Epoch() {
			t.Errorf("moved range %+v not stamped with the commit epoch %d", r, d.Epoch())
		}
	}
}

func TestDumpDeterministic(t *testing.T) {
	mk := func() string {
		d := grow(t)
		executePlan(t, d, d.PlanRebalance())
		var b strings.Builder
		d.Dump(&b)
		return b.String()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("two identical histories dumped differently:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{"epoch", "mem0", "mem2", "active"} {
		if !strings.Contains(a, want) {
			t.Errorf("dump missing %q:\n%s", want, a)
		}
	}
}
