package placement

import (
	"strings"
	"testing"
)

func TestLedgerAllocate(t *testing.T) {
	l := NewLedger(1000)
	off1, err := l.Allocate("a", 400)
	if err != nil || off1 != 0 {
		t.Fatalf("first Allocate = %d, %v", off1, err)
	}
	off2, err := l.Allocate("b", 300)
	if err != nil || off2 != 400 {
		t.Fatalf("second Allocate = %d, %v; want append at 400", off2, err)
	}
	if l.Allocated() != 700 || l.Free() != 300 {
		t.Errorf("allocated %d free %d, want 700/300", l.Allocated(), l.Free())
	}
	if _, err := l.Allocate("c", 301); err == nil {
		t.Error("over-capacity Allocate succeeded")
	}
	if _, err := l.Allocate("c", 0); err == nil {
		t.Error("zero-size Allocate succeeded")
	}
	if _, err := l.Allocate("c", -1); err == nil {
		t.Error("negative-size Allocate succeeded")
	}
	// Failed allocations must not consume space.
	if l.Allocated() != 700 {
		t.Errorf("failed allocations moved the mark to %d", l.Allocated())
	}
}

func TestLedgerOwnership(t *testing.T) {
	l := NewLedger(1 << 20)
	for i, alloc := range []struct {
		owner string
		size  int64
	}{{"a", 4096}, {"b", 8192}, {"a", 4096}, {"", 512}} {
		if _, err := l.Allocate(alloc.owner, alloc.size); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if got := l.OwnerBytes("a"); got != 8192 {
		t.Errorf("OwnerBytes(a) = %d, want 8192", got)
	}
	if got := l.OwnerBytes("b"); got != 8192 {
		t.Errorf("OwnerBytes(b) = %d, want 8192", got)
	}
	if got := l.OwnerBytes(""); got != 512 {
		t.Errorf("OwnerBytes(\"\") = %d, want 512", got)
	}
	if got := l.OwnerBytes("ghost"); got != 0 {
		t.Errorf("OwnerBytes(ghost) = %d, want 0", got)
	}
	areas := l.Areas()
	if len(areas) != 4 {
		t.Fatalf("Areas len = %d, want 4", len(areas))
	}
	// Areas are contiguous in allocation order.
	var next int64
	for i, a := range areas {
		if a.Off != next {
			t.Errorf("area %d at %d, want %d (append-only layout)", i, a.Off, next)
		}
		next = a.Off + a.Size
	}
	// The returned slice is a copy: mutating it must not corrupt the ledger.
	areas[0].Owner = "evil"
	if l.Areas()[0].Owner != "a" {
		t.Error("Areas exposed internal state")
	}
}

func TestLedgerDump(t *testing.T) {
	l := NewLedger(8192)
	if _, err := l.Allocate("a", 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Allocate("", 1024); err != nil {
		t.Fatal(err)
	}
	out := l.String()
	for _, want := range []string{"5120/8192", "2 areas", "owner a", "owner -"} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q:\n%s", want, out)
		}
	}
}
