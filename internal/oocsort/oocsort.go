// Package oocsort is an out-of-core sort that uses remote memory as its
// scratch space: the downstream application story for HPBD. A dataset
// larger than the local memory budget is sorted by building sorted runs
// in RAM, parking them in a remote-memory store (netblock.Client in real
// deployments), and streaming a k-way merge back out.
//
// This is the same job the paper's quick sort does through the kernel
// swap path, recast as an explicit library for environments where a
// kernel block device is not available.
package oocsort

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Store is the scratch space: netblock.Client satisfies it.
type Store interface {
	WriteAt(p []byte, off int64) (int, error)
	ReadAt(p []byte, off int64) (int, error)
	Size() int64
}

// Errors.
var (
	ErrBudget     = errors.New("oocsort: memory budget too small")
	ErrStoreSmall = errors.New("oocsort: store smaller than the dataset")
)

// keyBytes is the record size (uint32 keys).
const keyBytes = 4

// chunkBytes is the I/O granularity against the store (the block layer's
// 128 KB request bound).
const chunkBytes = 128 * 1024

// Stats describes one sort.
type Stats struct {
	Keys           int64
	Runs           int
	BytesToStore   int64
	BytesFromStore int64
}

// Sort reads uint32 keys (little-endian) from src until EOF, sorts them
// using at most memBudget bytes of local memory for key storage, with
// store as the run scratch, and writes the sorted keys to dst.
func Sort(dst io.Writer, src io.Reader, memBudget int64, store Store) (Stats, error) {
	var st Stats
	runKeys := memBudget / keyBytes
	if runKeys < 1024 {
		return st, fmt.Errorf("%w: %d bytes", ErrBudget, memBudget)
	}

	// Phase 1: build sorted runs in the store.
	type run struct {
		off  int64 // byte offset in the store
		keys int64
	}
	var runs []run
	var next int64
	buf := make([]uint32, 0, runKeys)
	rdbuf := make([]byte, chunkBytes)
	var leftover []byte
	for {
		n, err := src.Read(rdbuf)
		if n > 0 {
			data := append(leftover, rdbuf[:n]...)
			whole := len(data) / keyBytes * keyBytes
			for i := 0; i < whole; i += keyBytes {
				buf = append(buf, binary.LittleEndian.Uint32(data[i:]))
				if int64(len(buf)) == runKeys {
					r, werr := flushRun(store, next, buf)
					if werr != nil {
						return st, werr
					}
					runs = append(runs, run{off: next, keys: int64(len(buf))})
					next += r
					st.BytesToStore += r
					buf = buf[:0]
				}
			}
			leftover = append(leftover[:0], data[whole:]...)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
	}
	if len(leftover) != 0 {
		return st, errors.New("oocsort: input not a whole number of keys")
	}
	if len(buf) > 0 {
		r, werr := flushRun(store, next, buf)
		if werr != nil {
			return st, werr
		}
		runs = append(runs, run{off: next, keys: int64(len(buf))})
		next += r
		st.BytesToStore += r
	}
	st.Runs = len(runs)
	for _, r := range runs {
		st.Keys += r.keys
	}
	if st.Keys == 0 {
		return st, nil
	}

	// Phase 2: k-way merge. Each run gets an equal share of the budget
	// as its read buffer, clamped to one chunk on both sides (chunkBytes
	// is also the store's largest single request).
	share := memBudget / int64(len(runs))
	if share < chunkBytes {
		share = chunkBytes
	}
	if share > chunkBytes {
		share = chunkBytes
	}
	h := &runHeap{}
	for _, r := range runs {
		rr := &runReader{store: store, off: r.off, remaining: r.keys, bufCap: share / keyBytes * keyBytes, stats: &st}
		if ok, err := rr.fill(); err != nil {
			return st, err
		} else if ok {
			heap.Push(h, rr)
		}
	}
	out := make([]byte, 0, chunkBytes)
	for h.Len() > 0 {
		rr := (*h)[0]
		out = binary.LittleEndian.AppendUint32(out, rr.head)
		ok, err := rr.advance()
		if err != nil {
			return st, err
		}
		if ok {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
		if len(out) >= chunkBytes {
			if _, err := dst.Write(out); err != nil {
				return st, err
			}
			out = out[:0]
		}
	}
	if len(out) > 0 {
		if _, err := dst.Write(out); err != nil {
			return st, err
		}
	}
	return st, nil
}

// flushRun sorts buf and writes it at off, returning bytes written.
func flushRun(store Store, off int64, buf []uint32) (int64, error) {
	nbytes := int64(len(buf)) * keyBytes
	if off+nbytes > store.Size() {
		return 0, ErrStoreSmall
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	enc := make([]byte, 0, chunkBytes)
	written := int64(0)
	for i := 0; i < len(buf); {
		enc = enc[:0]
		for i < len(buf) && len(enc) < chunkBytes {
			enc = binary.LittleEndian.AppendUint32(enc, buf[i])
			i++
		}
		if _, err := store.WriteAt(enc, off+written); err != nil {
			return 0, err
		}
		written += int64(len(enc))
	}
	return written, nil
}

// runReader streams one sorted run from the store.
type runReader struct {
	store     Store
	off       int64
	remaining int64 // keys left (including buffered)
	bufCap    int64
	buf       []byte
	pos       int
	head      uint32
	stats     *Stats
}

// fill loads the next buffer and sets head; ok is false at run end.
func (r *runReader) fill() (bool, error) {
	if r.remaining == 0 {
		return false, nil
	}
	n := r.bufCap
	if n > r.remaining*keyBytes {
		n = r.remaining * keyBytes
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := r.store.ReadAt(r.buf, r.off); err != nil {
		return false, err
	}
	r.stats.BytesFromStore += n
	r.off += n
	r.pos = 0
	r.head = binary.LittleEndian.Uint32(r.buf)
	return true, nil
}

// advance moves to the next key; ok is false at run end.
func (r *runReader) advance() (bool, error) {
	r.remaining--
	r.pos += keyBytes
	if r.remaining == 0 {
		return false, nil
	}
	if r.pos >= len(r.buf) {
		return r.fill()
	}
	r.head = binary.LittleEndian.Uint32(r.buf[r.pos:])
	return true, nil
}

// runHeap orders runReaders by their head key.
type runHeap []*runReader

func (h runHeap) Len() int            { return len(h) }
func (h runHeap) Less(i, j int) bool  { return h[i].head < h[j].head }
func (h runHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x interface{}) { *h = append(*h, x.(*runReader)) }
func (h *runHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// MemStore is an in-memory Store for tests and local demos.
type MemStore struct{ Buf []byte }

// NewMemStore allocates an n-byte store.
func NewMemStore(n int64) *MemStore { return &MemStore{Buf: make([]byte, n)} }

// Size implements Store.
func (m *MemStore) Size() int64 { return int64(len(m.Buf)) }

// WriteAt implements Store.
func (m *MemStore) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > int64(len(m.Buf)) {
		return 0, ErrStoreSmall
	}
	return copy(m.Buf[off:], p), nil
}

// ReadAt implements Store.
func (m *MemStore) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > int64(len(m.Buf)) {
		return 0, ErrStoreSmall
	}
	return copy(p, m.Buf[off:]), nil
}
