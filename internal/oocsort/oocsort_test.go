package oocsort

import (
	"bytes"
	"encoding/binary"
	"io"
	"log"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hpbd/internal/netblock"
)

// genKeys encodes n random keys and returns both the stream and the
// sorted expectation.
func genKeys(n int, seed int64) ([]byte, []uint32) {
	rnd := rand.New(rand.NewSource(seed))
	keys := make([]uint32, n)
	raw := make([]byte, n*4)
	for i := range keys {
		keys[i] = rnd.Uint32()
		binary.LittleEndian.PutUint32(raw[i*4:], keys[i])
	}
	expect := append([]uint32(nil), keys...)
	sort.Slice(expect, func(i, j int) bool { return expect[i] < expect[j] })
	return raw, expect
}

func decode(t *testing.T, b []byte) []uint32 {
	t.Helper()
	if len(b)%4 != 0 {
		t.Fatalf("output not key-aligned: %d bytes", len(b))
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

func TestSortSmallerThanBudgetSingleRun(t *testing.T) {
	raw, expect := genKeys(10000, 1)
	var out bytes.Buffer
	st, err := Sort(&out, bytes.NewReader(raw), 1<<20, NewMemStore(1<<20))
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	if st.Runs != 1 || st.Keys != 10000 {
		t.Errorf("stats = %+v", st)
	}
	got := decode(t, out.Bytes())
	for i := range expect {
		if got[i] != expect[i] {
			t.Fatalf("key %d = %d, want %d", i, got[i], expect[i])
		}
	}
}

func TestSortManyRuns(t *testing.T) {
	const n = 500_000 // 2 MB of keys
	raw, expect := genKeys(n, 2)
	var out bytes.Buffer
	st, err := Sort(&out, bytes.NewReader(raw), 128*1024, NewMemStore(4<<20))
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	if st.Runs < 10 {
		t.Errorf("runs = %d, want many (budget forces runs)", st.Runs)
	}
	got := decode(t, out.Bytes())
	if len(got) != n {
		t.Fatalf("got %d keys, want %d", len(got), n)
	}
	for i := range expect {
		if got[i] != expect[i] {
			t.Fatalf("key %d mismatch", i)
		}
	}
}

func TestStoreTooSmall(t *testing.T) {
	raw, _ := genKeys(100_000, 3)
	var out bytes.Buffer
	if _, err := Sort(&out, bytes.NewReader(raw), 64*1024, NewMemStore(64*1024)); err == nil {
		t.Error("undersized store accepted")
	}
}

func TestBudgetTooSmall(t *testing.T) {
	raw, _ := genKeys(100, 4)
	var out bytes.Buffer
	if _, err := Sort(&out, bytes.NewReader(raw), 128, NewMemStore(1<<20)); err == nil {
		t.Error("tiny budget accepted")
	}
}

func TestEmptyInput(t *testing.T) {
	var out bytes.Buffer
	st, err := Sort(&out, bytes.NewReader(nil), 1<<20, NewMemStore(1<<20))
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	if st.Keys != 0 || out.Len() != 0 {
		t.Errorf("empty input produced %d keys", st.Keys)
	}
}

func TestRaggedInputRejected(t *testing.T) {
	var out bytes.Buffer
	if _, err := Sort(&out, bytes.NewReader(make([]byte, 7)), 1<<20, NewMemStore(1<<20)); err == nil {
		t.Error("ragged input accepted")
	}
}

// The real thing: sort through an actual netblock server over loopback.
func TestSortOverNetblock(t *testing.T) {
	srv, err := netblock.Serve("127.0.0.1:0", netblock.ServerConfig{
		CapacityBytes: 16 << 20,
		Logger:        log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	c, err := netblock.Dial(srv.Addr(), 8<<20, 16)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	const n = 1 << 20 // 4 MB of keys through a 256 KB budget
	raw, expect := genKeys(n, 5)
	var out bytes.Buffer
	st, err := Sort(&out, bytes.NewReader(raw), 256*1024, c)
	if err != nil {
		t.Fatalf("Sort over netblock: %v", err)
	}
	if st.Runs < 8 {
		t.Errorf("runs = %d", st.Runs)
	}
	got := decode(t, out.Bytes())
	for i := range expect {
		if got[i] != expect[i] {
			t.Fatalf("key %d mismatch", i)
		}
	}
}

// Property: any key multiset round-trips sorted.
func TestQuickSortedProperty(t *testing.T) {
	f := func(keys []uint32) bool {
		raw := make([]byte, len(keys)*4)
		for i, k := range keys {
			binary.LittleEndian.PutUint32(raw[i*4:], k)
		}
		var out bytes.Buffer
		if _, err := Sort(&out, bytes.NewReader(raw), 8*1024, NewMemStore(1<<20)); err != nil {
			return false
		}
		got := out.Bytes()
		if len(got) != len(raw) {
			return false
		}
		expect := append([]uint32(nil), keys...)
		sort.Slice(expect, func(i, j int) bool { return expect[i] < expect[j] })
		for i, k := range expect {
			if binary.LittleEndian.Uint32(got[i*4:]) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
