// Package wire defines the HPBD protocol messages exchanged between the
// client block driver and the memory servers, with a fixed binary layout.
// The same encoding is used by the simulated InfiniBand implementation
// (internal/hpbd) and the real TCP implementation (internal/netblock), and
// its message signature field is the validation mechanism the paper
// mentions for request/response integrity.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic values guard against corrupted or misrouted messages.
const (
	ReqMagic = 0x48504244 // "HPBD"
	RepMagic = 0x44425048 // "DBPH"
)

// ReqType distinguishes request directions.
type ReqType uint8

const (
	// ReqWrite is a swap-out: the server pulls page data from the client
	// (RDMA READ) and stores it.
	ReqWrite ReqType = 1
	// ReqRead is a swap-in: the server pushes stored page data to the
	// client (RDMA WRITE).
	ReqRead ReqType = 2
	// ReqStat asks the server for capacity/allocation counters (real TCP
	// implementation only; an operations aid, not part of the paper).
	ReqStat ReqType = 3
)

func (t ReqType) String() string {
	switch t {
	case ReqWrite:
		return "write"
	case ReqRead:
		return "read"
	case ReqStat:
		return "stat"
	}
	return fmt.Sprintf("ReqType(%d)", uint8(t))
}

// StatPayloadSize is the payload following a successful ReqStat reply:
// capacity and allocated bytes as two big-endian uint64s.
const StatPayloadSize = 16

// Stat is the payload of a successful ReqStat reply.
type Stat struct {
	CapacityBytes  uint64
	AllocatedBytes uint64
}

// MarshalStat encodes s into buf (StatPayloadSize bytes).
func MarshalStat(buf []byte, s *Stat) {
	_ = buf[StatPayloadSize-1]
	binary.BigEndian.PutUint64(buf[0:], s.CapacityBytes)
	binary.BigEndian.PutUint64(buf[8:], s.AllocatedBytes)
}

// UnmarshalStat decodes a Stat from buf. The payload rides inside an
// already-validated Reply, so it carries no magic of its own.
func UnmarshalStat(buf []byte) (Stat, error) {
	if len(buf) < StatPayloadSize {
		return Stat{}, ErrShortMessage
	}
	return Stat{
		CapacityBytes:  binary.BigEndian.Uint64(buf[0:]),
		AllocatedBytes: binary.BigEndian.Uint64(buf[8:]),
	}, nil
}

// Status codes carried in replies.
type Status uint8

const (
	StatusOK Status = iota
	StatusBadRequest
	StatusOutOfRange
	StatusServerError
	// StatusRetry is RNR-style admission pushback: the server refused
	// the request for now (a tenant over its memory quota) and the
	// client should back off and retry after reclaim makes room.
	StatusRetry
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadRequest:
		return "bad-request"
	case StatusOutOfRange:
		return "out-of-range"
	case StatusServerError:
		return "server-error"
	case StatusRetry:
		return "retry"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Request is the control message for one physical page-transfer request.
type Request struct {
	Magic  uint32
	Type   ReqType
	Handle uint64 // client-chosen identifier echoed in the reply
	Offset uint64 // byte offset within this client's area on the server
	Length uint32 // transfer size in bytes
	// Addr/RKey address the client's registration-pool buffer the server
	// RDMAs against (pool-relative byte offset and the pool MR's rkey).
	Addr uint64
	RKey uint32
}

// RequestSize is the wire size of a Request in bytes.
const RequestSize = 4 + 1 + 8 + 8 + 4 + 8 + 4

// Reply is the control message completing a request.
type Reply struct {
	Magic  uint32
	Handle uint64
	Status Status
}

// ReplySize is the wire size of a Reply in bytes.
const ReplySize = 4 + 8 + 1

// Errors from decoding.
var (
	ErrShortMessage = errors.New("wire: short message")
	ErrBadMagic     = errors.New("wire: bad magic")
)

// Hello is the connection-setup message a client sends to reserve a swap
// area on a memory server (the out-of-band exchange the paper performs
// over a socket at device initialization).
type Hello struct {
	Magic     uint32
	AreaBytes uint64
}

// HelloSize is the wire size of a Hello.
const HelloSize = 4 + 8

// HelloMagic guards Hello messages.
const HelloMagic = 0x48454c4f // "HELO"

// MarshalHello encodes h into buf (HelloSize bytes).
func MarshalHello(buf []byte, h *Hello) {
	_ = buf[HelloSize-1]
	binary.BigEndian.PutUint32(buf[0:], HelloMagic)
	binary.BigEndian.PutUint64(buf[4:], h.AreaBytes)
}

// UnmarshalHello decodes a Hello from buf.
func UnmarshalHello(buf []byte) (Hello, error) {
	if len(buf) < HelloSize {
		return Hello{}, ErrShortMessage
	}
	if binary.BigEndian.Uint32(buf[0:]) != HelloMagic {
		return Hello{}, ErrBadMagic
	}
	return Hello{Magic: HelloMagic, AreaBytes: binary.BigEndian.Uint64(buf[4:])}, nil
}

// HelloReply answers a Hello.
type HelloReply struct {
	Magic  uint32
	Status Status
}

// HelloReplySize is the wire size of a HelloReply.
const HelloReplySize = 4 + 1

// MarshalHelloReply encodes hr into buf (HelloReplySize bytes).
func MarshalHelloReply(buf []byte, hr *HelloReply) {
	_ = buf[HelloReplySize-1]
	binary.BigEndian.PutUint32(buf[0:], RepMagic)
	buf[4] = byte(hr.Status)
}

// UnmarshalHelloReply decodes a HelloReply from buf.
func UnmarshalHelloReply(buf []byte) (HelloReply, error) {
	if len(buf) < HelloReplySize {
		return HelloReply{}, ErrShortMessage
	}
	if binary.BigEndian.Uint32(buf[0:]) != RepMagic {
		return HelloReply{}, ErrBadMagic
	}
	return HelloReply{Magic: RepMagic, Status: Status(buf[4])}, nil
}

// MarshalRequest encodes r into buf, which must hold RequestSize bytes.
func MarshalRequest(buf []byte, r *Request) {
	_ = buf[RequestSize-1]
	binary.BigEndian.PutUint32(buf[0:], ReqMagic)
	buf[4] = byte(r.Type)
	binary.BigEndian.PutUint64(buf[5:], r.Handle)
	binary.BigEndian.PutUint64(buf[13:], r.Offset)
	binary.BigEndian.PutUint32(buf[21:], r.Length)
	binary.BigEndian.PutUint64(buf[25:], r.Addr)
	binary.BigEndian.PutUint32(buf[33:], r.RKey)
}

// UnmarshalRequest decodes a Request from buf.
func UnmarshalRequest(buf []byte) (Request, error) {
	if len(buf) < RequestSize {
		return Request{}, ErrShortMessage
	}
	if binary.BigEndian.Uint32(buf[0:]) != ReqMagic {
		return Request{}, ErrBadMagic
	}
	return Request{
		Magic:  ReqMagic,
		Type:   ReqType(buf[4]),
		Handle: binary.BigEndian.Uint64(buf[5:]),
		Offset: binary.BigEndian.Uint64(buf[13:]),
		Length: binary.BigEndian.Uint32(buf[21:]),
		Addr:   binary.BigEndian.Uint64(buf[25:]),
		RKey:   binary.BigEndian.Uint32(buf[33:]),
	}, nil
}

// MarshalReply encodes rp into buf, which must hold ReplySize bytes.
func MarshalReply(buf []byte, rp *Reply) {
	_ = buf[ReplySize-1]
	binary.BigEndian.PutUint32(buf[0:], RepMagic)
	binary.BigEndian.PutUint64(buf[4:], rp.Handle)
	buf[12] = byte(rp.Status)
}

// UnmarshalReply decodes a Reply from buf.
func UnmarshalReply(buf []byte) (Reply, error) {
	if len(buf) < ReplySize {
		return Reply{}, ErrShortMessage
	}
	if binary.BigEndian.Uint32(buf[0:]) != RepMagic {
		return Reply{}, ErrBadMagic
	}
	return Reply{
		Magic:  RepMagic,
		Handle: binary.BigEndian.Uint64(buf[4:]),
		Status: Status(buf[12]),
	}, nil
}
