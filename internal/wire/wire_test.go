package wire

import (
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	f := func(typ bool, handle, offset, addr uint64, length, rkey uint32) bool {
		r := Request{Type: ReqWrite, Handle: handle, Offset: offset, Length: length, Addr: addr, RKey: rkey}
		if typ {
			r.Type = ReqRead
		}
		buf := make([]byte, RequestSize)
		MarshalRequest(buf, &r)
		got, err := UnmarshalRequest(buf)
		if err != nil {
			return false
		}
		r.Magic = ReqMagic
		return got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	f := func(handle uint64, st uint8) bool {
		rp := Reply{Handle: handle, Status: Status(st)}
		buf := make([]byte, ReplySize)
		MarshalReply(buf, &rp)
		got, err := UnmarshalReply(buf)
		if err != nil {
			return false
		}
		rp.Magic = RepMagic
		return got == rp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	buf := make([]byte, RequestSize)
	MarshalRequest(buf, &Request{Type: ReqRead, Handle: 7})
	buf[0] ^= 0xff
	if _, err := UnmarshalRequest(buf); err != ErrBadMagic {
		t.Errorf("request err = %v, want ErrBadMagic", err)
	}
	rb := make([]byte, ReplySize)
	MarshalReply(rb, &Reply{Handle: 7})
	rb[1] ^= 0xff
	if _, err := UnmarshalReply(rb); err != ErrBadMagic {
		t.Errorf("reply err = %v, want ErrBadMagic", err)
	}
}

func TestShortMessages(t *testing.T) {
	if _, err := UnmarshalRequest(make([]byte, RequestSize-1)); err != ErrShortMessage {
		t.Errorf("short request err = %v", err)
	}
	if _, err := UnmarshalReply(make([]byte, ReplySize-1)); err != ErrShortMessage {
		t.Errorf("short reply err = %v", err)
	}
}

func TestStringers(t *testing.T) {
	if ReqWrite.String() != "write" || ReqRead.String() != "read" {
		t.Error("ReqType strings wrong")
	}
	if StatusOK.String() != "ok" || StatusOutOfRange.String() != "out-of-range" {
		t.Error("Status strings wrong")
	}
}
