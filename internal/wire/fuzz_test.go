package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalRequest: arbitrary bytes must never panic, and anything
// that decodes successfully must re-encode to the same bytes.
func FuzzUnmarshalRequest(f *testing.F) {
	seed := make([]byte, RequestSize)
	MarshalRequest(seed, &Request{Type: ReqWrite, Handle: 7, Offset: 4096, Length: 131072, Addr: 12, RKey: 9})
	f.Add(seed)
	f.Add(make([]byte, RequestSize))
	f.Add([]byte{0x48})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalRequest(data)
		if err != nil {
			return
		}
		out := make([]byte, RequestSize)
		MarshalRequest(out, &r)
		if !bytes.Equal(out, data[:RequestSize]) {
			t.Errorf("re-encode mismatch: %x vs %x", out, data[:RequestSize])
		}
	})
}

// FuzzUnmarshalReply mirrors the request fuzzer.
func FuzzUnmarshalReply(f *testing.F) {
	seed := make([]byte, ReplySize)
	MarshalReply(seed, &Reply{Handle: 3, Status: StatusOK})
	f.Add(seed)
	f.Add(make([]byte, ReplySize))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalReply(data)
		if err != nil {
			return
		}
		out := make([]byte, ReplySize)
		MarshalReply(out, &r)
		if !bytes.Equal(out, data[:ReplySize]) {
			t.Errorf("re-encode mismatch: %x vs %x", out, data[:ReplySize])
		}
	})
}

// FuzzUnmarshalHelloReply covers the handshake acknowledgement the real
// client decodes straight off the network.
func FuzzUnmarshalHelloReply(f *testing.F) {
	seed := make([]byte, HelloReplySize)
	MarshalHelloReply(seed, &HelloReply{Status: StatusOK})
	f.Add(seed)
	bad := make([]byte, HelloReplySize)
	MarshalHelloReply(bad, &HelloReply{Status: StatusServerError})
	f.Add(bad)
	f.Add([]byte{})
	f.Add([]byte{0x44})
	f.Fuzz(func(t *testing.T, data []byte) {
		hr, err := UnmarshalHelloReply(data)
		if err != nil {
			return
		}
		out := make([]byte, HelloReplySize)
		MarshalHelloReply(out, &hr)
		if !bytes.Equal(out, data[:HelloReplySize]) {
			t.Errorf("re-encode mismatch: %x vs %x", out, data[:HelloReplySize])
		}
	})
}

// FuzzUnmarshalStat covers the stat payload riding inside an
// already-validated reply (no magic of its own, so every 16-byte input
// must round-trip).
func FuzzUnmarshalStat(f *testing.F) {
	seed := make([]byte, StatPayloadSize)
	MarshalStat(seed, &Stat{CapacityBytes: 1 << 30, AllocatedBytes: 1 << 20})
	f.Add(seed)
	f.Add(make([]byte, StatPayloadSize))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := UnmarshalStat(data)
		if err != nil {
			return
		}
		out := make([]byte, StatPayloadSize)
		MarshalStat(out, &st)
		if !bytes.Equal(out, data[:StatPayloadSize]) {
			t.Errorf("re-encode mismatch: %x vs %x", out, data[:StatPayloadSize])
		}
	})
}

// FuzzUnmarshalHello covers the handshake path the real server exposes to
// the network.
func FuzzUnmarshalHello(f *testing.F) {
	seed := make([]byte, HelloSize)
	MarshalHello(seed, &Hello{AreaBytes: 1 << 20})
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := UnmarshalHello(data)
		if err != nil {
			return
		}
		out := make([]byte, HelloSize)
		MarshalHello(out, &h)
		if !bytes.Equal(out, data[:HelloSize]) {
			t.Errorf("re-encode mismatch")
		}
	})
}
