package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalRequest: arbitrary bytes must never panic, and anything
// that decodes successfully must re-encode to the same bytes.
func FuzzUnmarshalRequest(f *testing.F) {
	seed := make([]byte, RequestSize)
	MarshalRequest(seed, &Request{Type: ReqWrite, Handle: 7, Offset: 4096, Length: 131072, Addr: 12, RKey: 9})
	f.Add(seed)
	f.Add(make([]byte, RequestSize))
	f.Add([]byte{0x48})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalRequest(data)
		if err != nil {
			return
		}
		out := make([]byte, RequestSize)
		MarshalRequest(out, &r)
		if !bytes.Equal(out, data[:RequestSize]) {
			t.Errorf("re-encode mismatch: %x vs %x", out, data[:RequestSize])
		}
	})
}

// FuzzUnmarshalReply mirrors the request fuzzer.
func FuzzUnmarshalReply(f *testing.F) {
	seed := make([]byte, ReplySize)
	MarshalReply(seed, &Reply{Handle: 3, Status: StatusOK})
	f.Add(seed)
	f.Add(make([]byte, ReplySize))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalReply(data)
		if err != nil {
			return
		}
		out := make([]byte, ReplySize)
		MarshalReply(out, &r)
		if !bytes.Equal(out, data[:ReplySize]) {
			t.Errorf("re-encode mismatch: %x vs %x", out, data[:ReplySize])
		}
	})
}

// FuzzUnmarshalHello covers the handshake path the real server exposes to
// the network.
func FuzzUnmarshalHello(f *testing.F) {
	seed := make([]byte, HelloSize)
	MarshalHello(seed, &Hello{AreaBytes: 1 << 20})
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := UnmarshalHello(data)
		if err != nil {
			return
		}
		out := make([]byte, HelloSize)
		MarshalHello(out, &h)
		if !bytes.Equal(out, data[:HelloSize]) {
			t.Errorf("re-encode mismatch")
		}
	})
}
