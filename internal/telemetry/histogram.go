package telemetry

import "hpbd/internal/sim"

// bucketBounds are the shared upper bounds of every histogram's buckets:
// log-spaced with four sub-buckets per octave (ratio 2^(1/4) ~ 1.19) from
// 64 ns up past 100 virtual seconds. The geometry bounds the quantile
// error: any extracted quantile lies within one bucket (< 19% relative)
// of the exact order statistic.
var bucketBounds = makeBounds()

func makeBounds() []sim.Duration {
	var bounds []sim.Duration
	last := sim.Duration(0)
	// 2^(1/4) steps without floating-point accumulation error: each octave
	// is exact (64 << o) and the sub-buckets interpolate geometrically.
	ratios := []float64{1, 1.189207, 1.414214, 1.681793}
	for octave := 0; ; octave++ {
		base := sim.Duration(64) << uint(octave)
		for _, r := range ratios {
			b := sim.Duration(float64(base) * r)
			if b <= last {
				b = last + 1
			}
			bounds = append(bounds, b)
			last = b
			if b > 200*sim.Second {
				return bounds
			}
		}
	}
}

// Histogram accumulates latency observations into fixed log-spaced
// buckets. Quantiles are extracted to within one bucket of the exact
// value; exact min, max, count and sum are kept alongside.
type Histogram struct {
	name   string
	counts []int64 // one per bound, plus the final overflow bucket
	count  int64
	sum    sim.Duration
	min    sim.Duration
	max    sim.Duration
}

func newHistogram(name string) *Histogram {
	return &Histogram{name: name, counts: make([]int64, len(bucketBounds)+1)}
}

// Observe records one latency sample. Negative samples clamp to zero.
//
//hpbd:hotpath
func (h *Histogram) Observe(d sim.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[h.bucket(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// bucket returns the index of the first bucket whose bound is >= d, by
// binary search (the overflow bucket for samples beyond the last bound).
func (h *Histogram) bucket(d sim.Duration) int {
	lo, hi := 0, len(bucketBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if bucketBounds[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all samples.
func (h *Histogram) Sum() sim.Duration {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() sim.Duration {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() sim.Duration {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() sim.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.count)
}

// HistSnapshot is a point-in-time copy of a histogram's bucket state.
// Subtracting two snapshots of the same histogram (Sub) yields the
// distribution of only the samples observed between them, so periodic
// scrapers can extract windowed quantiles from the cumulative buckets.
type HistSnapshot struct {
	Counts []int64      // per-bucket counts (same geometry as the source)
	N      int64        // total samples
	Sum    sim.Duration // exact sum of samples
}

// Snapshot copies the histogram's current bucket state. A nil histogram
// snapshots to the zero value.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	counts := make([]int64, len(h.counts))
	copy(counts, h.counts)
	return HistSnapshot{Counts: counts, N: h.count, Sum: h.sum}
}

// Sub returns the windowed delta snapshot s - prev: the distribution of
// the samples observed after prev was taken. A zero-value prev returns s
// unchanged, so the first window of a scrape series needs no special case.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	if len(prev.Counts) == 0 {
		return s
	}
	counts := make([]int64, len(s.Counts))
	for i := range s.Counts {
		c := s.Counts[i]
		if i < len(prev.Counts) {
			c -= prev.Counts[i]
		}
		if c < 0 { // never negative for snapshots of one histogram
			c = 0
		}
		counts[i] = c
	}
	return HistSnapshot{Counts: counts, N: s.N - prev.N, Sum: s.Sum - prev.Sum}
}

// Quantile extracts the q-th quantile from the snapshot as the upper
// bound of the bucket holding the order statistic (the same one-bucket
// error contract as Histogram.Quantile, without the min/max clamp — a
// snapshot does not retain exact extrema). Empty snapshots return 0.
func (s HistSnapshot) Quantile(q float64) sim.Duration {
	if s.N <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.N) + 0.5)
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(bucketBounds) {
				return bucketBounds[i]
			}
			// Overflow bucket: the best deterministic bound we have.
			return bucketBounds[len(bucketBounds)-1]
		}
	}
	return bucketBounds[len(bucketBounds)-1]
}

// CountAbove returns how many samples in the snapshot exceed d, to bucket
// granularity: a sample in the bucket straddling d counts as below it, so
// the result is a deterministic underestimate by at most one bucket.
func (s HistSnapshot) CountAbove(d sim.Duration) int64 {
	above := s.N
	for i, c := range s.Counts {
		if i >= len(bucketBounds) || bucketBounds[i] > d {
			break
		}
		above -= c
	}
	if above < 0 {
		return 0
	}
	return above
}

// Quantile returns the q-th quantile (0 <= q <= 1) as the upper bound of
// the bucket holding the order statistic, clamped into [Min, Max] so that
// degenerate distributions report exact values. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			var v sim.Duration
			if i < len(bucketBounds) {
				v = bucketBounds[i]
			} else {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}
