package telemetry

import "hpbd/internal/sim"

// bucketBounds are the shared upper bounds of every histogram's buckets:
// log-spaced with four sub-buckets per octave (ratio 2^(1/4) ~ 1.19) from
// 64 ns up past 100 virtual seconds. The geometry bounds the quantile
// error: any extracted quantile lies within one bucket (< 19% relative)
// of the exact order statistic.
var bucketBounds = makeBounds()

func makeBounds() []sim.Duration {
	var bounds []sim.Duration
	last := sim.Duration(0)
	// 2^(1/4) steps without floating-point accumulation error: each octave
	// is exact (64 << o) and the sub-buckets interpolate geometrically.
	ratios := []float64{1, 1.189207, 1.414214, 1.681793}
	for octave := 0; ; octave++ {
		base := sim.Duration(64) << uint(octave)
		for _, r := range ratios {
			b := sim.Duration(float64(base) * r)
			if b <= last {
				b = last + 1
			}
			bounds = append(bounds, b)
			last = b
			if b > 200*sim.Second {
				return bounds
			}
		}
	}
}

// Histogram accumulates latency observations into fixed log-spaced
// buckets. Quantiles are extracted to within one bucket of the exact
// value; exact min, max, count and sum are kept alongside.
type Histogram struct {
	name   string
	counts []int64 // one per bound, plus the final overflow bucket
	count  int64
	sum    sim.Duration
	min    sim.Duration
	max    sim.Duration
}

func newHistogram(name string) *Histogram {
	return &Histogram{name: name, counts: make([]int64, len(bucketBounds)+1)}
}

// Observe records one latency sample. Negative samples clamp to zero.
//
//hpbd:hotpath
func (h *Histogram) Observe(d sim.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[h.bucket(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// bucket returns the index of the first bucket whose bound is >= d, by
// binary search (the overflow bucket for samples beyond the last bound).
func (h *Histogram) bucket(d sim.Duration) int {
	lo, hi := 0, len(bucketBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if bucketBounds[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all samples.
func (h *Histogram) Sum() sim.Duration {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() sim.Duration {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() sim.Duration {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() sim.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.count)
}

// Quantile returns the q-th quantile (0 <= q <= 1) as the upper bound of
// the bucket holding the order statistic, clamped into [Min, Max] so that
// degenerate distributions report exact values. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			var v sim.Duration
			if i < len(bucketBounds) {
				v = bucketBounds[i]
			} else {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}
