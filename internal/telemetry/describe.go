package telemetry

import "strings"

// metricHelp is the central metric-description table: one line per known
// metric family, keyed by the registry's dotted name. WriteOpenMetrics
// emits each as a # HELP line; hpbdctl's health views reuse the same text
// so every surface describes a metric identically. Keep entries terse,
// present-tense and free of newlines (the exposition format forbids them).
var metricHelp = map[string]string{
	// Block layer.
	"blk.merges":     "block-layer requests absorbed by front/back merge",
	"blk.queue.wait": "block-layer queueing delay per request",
	"blk.req.ios":    "I/Os per dispatched block request (merge run length)",

	// HPBD client datapath.
	"hpbd.reads":             "read requests submitted to the HPBD client",
	"hpbd.bytes_read":        "bytes read back from remote memory",
	"hpbd.bytes_written":     "bytes written to remote memory",
	"hpbd.phys_reqs":         "physical per-server requests after splitting",
	"hpbd.splits":            "requests split across server boundaries",
	"hpbd.replies":           "replies received from memory servers",
	"hpbd.remote_errors":     "requests completed with a remote error status",
	"hpbd.credit_stalls":     "sends that blocked on flow-control credits",
	"hpbd.doorbells":         "doorbells rung (batched WR chains count once)",
	"hpbd.recv.wakeups":      "receive-completion wakeups on the client",
	"hpbd.queue.wait":        "driver send-queue residency per request",
	"hpbd.op.read":           "end-to-end latency of client read operations",
	"hpbd.op.write":          "end-to-end latency of client write operations",
	"hpbd.retries":           "requests re-sent by the recovery path",
	"hpbd.timeouts":          "requests that exceeded the watchdog timeout",
	"hpbd.timeout_cancels":   "overdue requests cancelled and re-routed",
	"hpbd.link_failures":     "server links declared dead",
	"hpbd.fallbacks":         "requests absorbed by the local-disk fallback",
	"hpbd.hybrid.large_reqs": "requests routed over the register path",
	"hpbd.hybrid.mr_hits":    "MR cache hits on the register path",
	"hpbd.hybrid.mr_misses":  "MR cache misses (fresh registrations)",
	"hpbd.hybrid.mr_evicts":  "MR cache evictions (LRU)",
	"hpbd.hybrid.mr_idle":    "registered MRs currently idle in the cache",
	"hpbd.merge.reqs":        "requests folded into carrier WRs",
	"hpbd.merge.wrs":         "carrier WRs issued for merged runs",
	"hpbd.merge.bytes":       "bytes moved inside merged carrier WRs",
	"hpbd.merge.run":         "requests per merged carrier WR",
	"hpbd.crossover.bytes":   "current adaptive copy/register crossover",
	"hpbd.crossover.ticks":   "adaptive-crossover controller evaluations",

	// Staging pool.
	"pool.in_use":       "staging-pool bytes currently allocated",
	"pool.largest_free": "largest free staging-pool extent",
	"pool.fragments":    "free extents in the staging pool",
	"pool.alloc.waits":  "allocations that blocked for a free extent",
	"pool.alloc.wait":   "allocation blocking time",

	// Fabric.
	"ib.qp_cache_miss": "QP context cache misses in the HCA model",
	"odp.faults":       "on-demand-paging faults charged on first touch",

	// VM.
	"vm.swapin.latency":  "per-page swap-in latency",
	"vm.swapout.latency": "per-page swap-out latency",

	// Request lifecycle (critical-path analyzer).
	"req.e2e":                "end-to-end request latency",
	"req.stage.queue":        "block-layer queueing stage",
	"req.stage.pool_wait":    "staging-pool wait stage",
	"req.stage.credit_stall": "flow-control credit stall stage",
	"req.stage.send":         "request wire-transfer stage",
	"req.stage.rdma":         "server-side RDMA data-movement stage",
	"req.stage.server_copy":  "server local store memcpy stage",
	"req.stage.reply":        "reply wire-transfer stage",
	"req.stage.drain":        "client completion-drain stage",

	// Mirroring, migration, placement.
	"mirror.reads":           "reads served by the RAID-1 mirror",
	"mirror.writes":          "writes fanned out to both replicas",
	"mirror.read_failovers":  "reads failed over to the surviving replica",
	"mirror.degraded_writes": "writes acknowledged by one replica only",
	"migration.bytes":        "bytes copied by live migration",
	"migration.moves":        "planned range moves executed",
	"migration.cutovers":     "migration epoch flips committed",
	"migration.aborted":      "migrations aborted by transfer errors",
	"migration.dirty_resent": "dirty sectors re-sent during migration",
	"migration.requeued":     "pending requests requeued at cutover",
	"migration.chunk":        "per-chunk migration copy time",
	"migration.stall":        "foreground stall behind the migration freeze",
	"placement.epoch":        "placement directory version",

	// Fault injection.
	"faultsim.injected": "faults injected on schedule",
	"faultsim.skipped":  "scheduled faults with no matching target",

	// Fleet health engine.
	"health.samples":   "health-engine samples taken",
	"health.alerts":    "health alerts fired (SLO burns + anomaly rules)",
	"health.slo_burns": "SLO burn-rate alerts fired",
}

// serverHelp describes the per-server metric families, which are named
// <server>.<suffix> (mem0.requests, ...) and so cannot be listed
// statically.
var serverHelp = map[string]string{
	"requests":     "requests picked up by this memory server",
	"writes":       "store writes executed by this server",
	"reads":        "store reads executed by this server",
	"bytes_stored": "bytes written into this server's store",
	"bytes_served": "bytes served out of this server's store",
	"bad_requests": "malformed or out-of-range requests rejected",
	"idle_sleeps":  "times the server worker parked idle",
	"rdma_issued":  "RDMA operations issued by this server",
	"doorbells":    "doorbells rung by this server",
}

// MetricHelp returns the one-line description for a metric family, or ""
// when the family is unknown. Per-server families ("mem0.requests") match
// on their suffix.
func MetricHelp(name string) string {
	if h, ok := metricHelp[name]; ok {
		return h
	}
	if i := strings.LastIndexByte(name, '.'); i > 0 {
		if h, ok := serverHelp[name[i+1:]]; ok && !strings.Contains(name[:i], ".") {
			return h
		}
	}
	return ""
}
