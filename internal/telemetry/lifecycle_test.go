package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"hpbd/internal/sim"
)

func testRecord(i int) ReqRecord {
	us := sim.Microsecond
	rec := ReqRecord{
		ID:     uint64(100 + i),
		Flow:   uint64(i),
		Write:  i%2 == 0,
		Bytes:  4096,
		Server: "mem0",
		Start:  sim.Time(i) * sim.Time(50*us),
	}
	rec.Stages = [NumStages]sim.Duration{
		2 * us, 3 * us, 0, 5 * us, 7 * us, 4 * us, 6 * us, 1 * us,
	}
	total := sim.Duration(0)
	for _, d := range rec.Stages {
		total += d
	}
	rec.End = rec.Start.Add(total)
	return rec
}

// TestLifecycleStagePartition: recorded stages must sum to end-to-end
// exactly, and the analyzer's sums must reflect every record.
func TestLifecycleStagePartition(t *testing.T) {
	var now sim.Time
	reg := NewWithClock(func() sim.Time { return now })
	lc := reg.EnableLifecycle(8)
	for i := 0; i < 5; i++ {
		rec := testRecord(i)
		if got := rec.Total(); got != 28*sim.Microsecond {
			t.Fatalf("record %d total = %v, want 28us", i, got)
		}
		lc.Record(&rec)
	}
	if lc.Count() != 5 {
		t.Fatalf("count = %d, want 5", lc.Count())
	}
	var stageTotal sim.Duration
	for s := Stage(0); s < NumStages; s++ {
		stageTotal += lc.StageSum(s)
		if h := lc.StageHistogram(s); h.Count() != 5 {
			t.Fatalf("stage %v histogram count = %d, want 5", s, h.Count())
		}
	}
	if want := 5 * 28 * sim.Microsecond; stageTotal != want {
		t.Fatalf("stage sums total %v, want %v (exact partition)", stageTotal, want)
	}
	if reg.Histogram("req.e2e").Count() != 5 {
		t.Fatal("req.e2e histogram not fed")
	}
}

// TestBreakdownTableDeterministic: the same record stream renders the
// byte-identical breakdown table and flight dump twice.
func TestBreakdownTableDeterministic(t *testing.T) {
	render := func() (string, string) {
		reg := NewWithClock(func() sim.Time { return 0 })
		lc := reg.EnableLifecycle(16)
		for i := 0; i < 9; i++ {
			rec := testRecord(i)
			lc.Record(&rec)
		}
		var dump bytes.Buffer
		if err := lc.Flight().Dump(&dump, "test"); err != nil {
			t.Fatal(err)
		}
		return lc.BreakdownTable(), dump.String()
	}
	t1, d1 := render()
	t2, d2 := render()
	if t1 != t2 {
		t.Fatalf("breakdown table not deterministic:\n%s\nvs\n%s", t1, t2)
	}
	if d1 != d2 {
		t.Fatalf("flight dump not deterministic:\n%s\nvs\n%s", d1, d2)
	}
	for _, stage := range stageNames {
		if !strings.Contains(t1, stage) {
			t.Fatalf("breakdown table missing stage %q:\n%s", stage, t1)
		}
	}
	if !strings.Contains(t1, "end-to-end") || !strings.Contains(t1, "100.00%") {
		t.Fatalf("breakdown table missing end-to-end row:\n%s", t1)
	}
}

// TestTopStages: compact sweep-row rendering picks the largest stages in
// descending share order.
func TestTopStages(t *testing.T) {
	reg := NewWithClock(func() sim.Time { return 0 })
	lc := reg.EnableLifecycle(4)
	rec := testRecord(0)
	lc.Record(&rec)
	got := lc.TopStages(2)
	// rdma (7us) then reply (6us) out of the 28us total.
	if got != "rdma 25% reply 21%" {
		t.Fatalf("TopStages(2) = %q", got)
	}
}

// TestFlightRecorderWraparound: the ring retains exactly the last Cap
// records, oldest first, while counting every add.
func TestFlightRecorderWraparound(t *testing.T) {
	reg := NewWithClock(func() sim.Time { return 0 })
	lc := reg.EnableLifecycle(4)
	f := lc.Flight()
	for i := 0; i < 11; i++ {
		rec := testRecord(i)
		lc.Record(&rec)
	}
	if f.Cap() != 4 || f.Len() != 4 || f.Total() != 11 {
		t.Fatalf("cap/len/total = %d/%d/%d, want 4/4/11", f.Cap(), f.Len(), f.Total())
	}
	recs := f.Records()
	for i, rec := range recs {
		if want := uint64(100 + 7 + i); rec.ID != want {
			t.Fatalf("record %d has ID %d, want %d (oldest first)", i, rec.ID, want)
		}
	}
}

// TestFlightRecorderZeroAlloc: steady-state Record (histograms + ring
// copy) must not allocate, so the recorder can stay always-on.
func TestFlightRecorderZeroAlloc(t *testing.T) {
	reg := NewWithClock(func() sim.Time { return 0 })
	lc := reg.EnableLifecycle(64)
	rec := testRecord(1)
	// Warm up: create-on-access histograms exist after EnableLifecycle, and
	// the first adds touch fresh ring slots (no allocation either way).
	for i := 0; i < 128; i++ {
		lc.Record(&rec)
	}
	if avg := testing.AllocsPerRun(200, func() { lc.Record(&rec) }); avg != 0 {
		t.Fatalf("Record allocates %.1f per op in steady state, want 0", avg)
	}
}

// TestFlightRecorderDumpOnEvent: an armed recorder emits dumps with the
// reason; a disarmed one stays silent.
func TestFlightRecorderDumpOnEvent(t *testing.T) {
	reg := NewWithClock(func() sim.Time { return 0 })
	lc := reg.EnableLifecycle(2)
	rec := testRecord(3)
	lc.Record(&rec)
	f := lc.Flight()

	f.DumpOnEvent("should be silent")
	if f.Dumps() != 0 {
		t.Fatal("disarmed recorder dumped")
	}
	var buf bytes.Buffer
	f.SetDumpWriter(&buf)
	f.DumpOnEvent("request timeout handle=103")
	if f.Dumps() != 1 {
		t.Fatalf("dumps = %d, want 1", f.Dumps())
	}
	out := buf.String()
	if !strings.Contains(out, "request timeout handle=103") || !strings.Contains(out, "103") {
		t.Fatalf("dump missing reason or record:\n%s", out)
	}
}

// TestLifecycleSideChannels: server stamps and flow links round-trip by
// handle and are consumed exactly once.
func TestLifecycleSideChannels(t *testing.T) {
	reg := NewWithClock(func() sim.Time { return 0 })
	lc := reg.EnableLifecycle(2)
	lc.StampServer(9, ServerStamp{Start: 100, Reply: 300, Copy: 50})
	st, ok := lc.TakeServerStamp(9)
	if !ok || st.Start != 100 || st.Reply != 300 || st.Copy != 50 {
		t.Fatalf("stamp round-trip failed: %+v ok=%v", st, ok)
	}
	if _, ok := lc.TakeServerStamp(9); ok {
		t.Fatal("stamp not consumed")
	}
	lc.LinkFlow(9, 42)
	if f, ok := lc.TakeFlow(9); !ok || f != 42 {
		t.Fatalf("flow round-trip failed: %d ok=%v", f, ok)
	}
	if _, ok := lc.TakeFlow(9); ok {
		t.Fatal("flow not consumed")
	}
}

// TestLifecycleNilSafety: every method must be a no-op on nil handles, the
// same contract the rest of the telemetry package keeps.
func TestLifecycleNilSafety(t *testing.T) {
	var lc *Lifecycle
	var f *FlightRecorder
	rec := testRecord(0)
	lc.Record(&rec)
	lc.StampServer(1, ServerStamp{})
	lc.LinkFlow(1, 2)
	if _, ok := lc.TakeServerStamp(1); ok {
		t.Fatal("nil lifecycle returned a stamp")
	}
	if _, ok := lc.TakeFlow(1); ok {
		t.Fatal("nil lifecycle returned a flow")
	}
	if lc.Count() != 0 || lc.Errors() != 0 || lc.StageSum(StageRDMA) != 0 {
		t.Fatal("nil lifecycle accumulated state")
	}
	if lc.Breakdown() != nil || lc.BreakdownTable() != "" || lc.TopStages(3) != "" {
		t.Fatal("nil lifecycle rendered output")
	}
	if lc.Flight() != nil || lc.StageHistogram(StageSend) != nil {
		t.Fatal("nil lifecycle returned handles")
	}
	f.add(&rec)
	f.SetDumpWriter(&bytes.Buffer{})
	f.DumpOnEvent("x")
	if f.Len() != 0 || f.Cap() != 0 || f.Total() != 0 || f.Records() != nil {
		t.Fatal("nil flight recorder accumulated state")
	}
	var buf bytes.Buffer
	if err := f.Dump(&buf, "nil"); err != nil {
		t.Fatal(err)
	}
	var reg *Registry
	if reg.EnableLifecycle(4) != nil || reg.Lifecycle() != nil {
		t.Fatal("nil registry returned a lifecycle")
	}
}
