// Package telemetry is the observability layer for the HPBD stack: a
// sim-time-aware metrics registry (counters, gauges, and latency
// histograms with quantile extraction) plus a structured span tracer that
// exports Chrome trace_event JSON for chrome://tracing / Perfetto.
//
// Every handle type (*Registry, *Counter, *Gauge, *Histogram, *Tracer and
// Span) is nil-safe: methods on a nil receiver are no-ops that return zero
// values, so instrumented code paths need no "is telemetry on?" branches.
// A subsystem holds handles obtained once at setup; when telemetry is
// disabled the handles are nil and the hot path pays only a nil check.
//
// Metrics are timestamp-free aggregates; the tracer timestamps events in
// virtual time (sim.Time), so traces from the deterministic simulation are
// exactly reproducible run-to-run.
package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"hpbd/internal/sim"
)

// Registry owns a namespace of named metrics and (optionally) a tracer.
// Metric handles are created on first access and shared thereafter. Like
// the rest of the simulation, a Registry is confined to one sim.Env's
// cooperatively-scheduled processes and needs no locking.
type Registry struct {
	now       func() sim.Time
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	tracer    *Tracer
	lifecycle *Lifecycle
}

// New creates a registry whose tracer (if enabled) timestamps events with
// env's virtual clock.
func New(env *sim.Env) *Registry { return NewWithClock(env.Now) }

// NewWithClock creates a registry on an arbitrary clock (tests).
func NewWithClock(now func() sim.Time) *Registry {
	return &Registry{
		now:      now,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = newHistogram(name)
		r.hists[name] = h
	}
	return h
}

// EnableTracing attaches a span tracer to the registry. Before this call
// Tracer returns nil and all span operations are no-ops.
func (r *Registry) EnableTracing() *Tracer {
	if r == nil {
		return nil
	}
	if r.tracer == nil {
		r.tracer = newTracer(r.now)
	}
	return r.tracer
}

// Tracer returns the attached tracer, or nil when tracing is disabled.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Counter is a monotonically accumulating int64 metric.
type Counter struct {
	name string
	v    int64
}

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the accumulated count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level metric that also tracks its peak.
type Gauge struct {
	name string
	v    int64
	peak int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.peak {
		g.peak = v
	}
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.Set(g.v + delta)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Peak returns the highest level ever Set.
func (g *Gauge) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak
}

// Summary renders every metric in the registry as an aligned text table:
// counters and gauges sorted by name, then histograms with count, mean and
// the p50/p90/p99 quantiles. An empty registry renders as an empty string.
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	if len(r.counters) > 0 {
		fmt.Fprintf(&b, "counters:\n")
		for _, name := range sortedKeys(r.counters) {
			fmt.Fprintf(&b, "  %-34s %12d\n", name, r.counters[name].Value())
		}
	}
	if len(r.gauges) > 0 {
		fmt.Fprintf(&b, "gauges (current / peak):\n")
		for _, name := range sortedKeys(r.gauges) {
			g := r.gauges[name]
			fmt.Fprintf(&b, "  %-34s %12d / %d\n", name, g.Value(), g.Peak())
		}
	}
	if len(r.hists) > 0 {
		fmt.Fprintf(&b, "histograms (count mean p50 p90 p99 max):\n")
		for _, name := range sortedKeys(r.hists) {
			h := r.hists[name]
			if h.Count() == 0 {
				fmt.Fprintf(&b, "  %-34s %8d\n", name, 0)
				continue
			}
			fmt.Fprintf(&b, "  %-34s %8d %10v %10v %10v %10v %10v\n",
				name, h.Count(), h.Mean(),
				h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max())
		}
	}
	return b.String()
}

// VisitCounters calls fn for every counter in sorted name order. It is
// the read API for samplers (internal/health) that scrape the registry
// periodically; the iteration order is deterministic by construction.
func (r *Registry) VisitCounters(fn func(name string, v int64)) {
	if r == nil {
		return
	}
	for _, name := range sortedKeys(r.counters) {
		fn(name, r.counters[name].Value())
	}
}

// VisitGauges calls fn for every gauge in sorted name order.
func (r *Registry) VisitGauges(fn func(name string, v, peak int64)) {
	if r == nil {
		return
	}
	for _, name := range sortedKeys(r.gauges) {
		g := r.gauges[name]
		fn(name, g.Value(), g.Peak())
	}
}

// VisitHistograms calls fn for every histogram in sorted name order.
func (r *Registry) VisitHistograms(fn func(name string, h *Histogram)) {
	if r == nil {
		return
	}
	for _, name := range sortedKeys(r.hists) {
		fn(name, r.hists[name])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
