package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WriteOpenMetrics exports every metric in the registry as OpenMetrics
// text exposition (the format Prometheus scrapes): counters as <name>_total,
// gauges as current level plus a <name>_peak companion, histograms with
// cumulative le-bucketed counts, _sum and _count. Durations are exported in
// seconds per the OpenMetrics unit convention. Metric families are emitted
// in sorted-name order and only non-empty buckets appear (plus the
// mandatory +Inf), so the snapshot is deterministic and compact. Families
// with an entry in the central description table (describe.go) carry a
// # HELP line. Distinct registry names that sanitize to the same
// OpenMetrics name ("a.b" and "a_b" both become "a_b") are kept distinct
// by a deterministic _dupN suffix instead of silently merging into one
// family. A nil or empty registry writes just the EOF marker.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "# EOF\n")
		return err
	}
	var b strings.Builder
	used := make(map[string]bool)
	for _, name := range sortedKeys(r.counters) {
		n := claimFamilyName(used, sanitizeMetricName(name))
		fmt.Fprintf(&b, "# TYPE %s counter\n", n)
		writeHelp(&b, n, name)
		fmt.Fprintf(&b, "%s_total %d\n", n, r.counters[name].Value())
	}
	for _, name := range sortedKeys(r.gauges) {
		g := r.gauges[name]
		n := claimFamilyName(used, sanitizeMetricName(name))
		fmt.Fprintf(&b, "# TYPE %s gauge\n", n)
		writeHelp(&b, n, name)
		fmt.Fprintf(&b, "%s %d\n", n, g.Value())
		fmt.Fprintf(&b, "# TYPE %s_peak gauge\n", n)
		fmt.Fprintf(&b, "%s_peak %d\n", n, g.Peak())
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		n := claimFamilyName(used, sanitizeMetricName(name)+"_seconds")
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		fmt.Fprintf(&b, "# UNIT %s seconds\n", n)
		writeHelp(&b, n, name)
		cum := int64(0)
		for i, c := range h.counts {
			if c == 0 || i >= len(bucketBounds) {
				continue
			}
			cum += c
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", n, formatSeconds(float64(bucketBounds[i])/1e9), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count())
		fmt.Fprintf(&b, "%s_sum %s\n", n, formatSeconds(float64(h.Sum())/1e9))
		fmt.Fprintf(&b, "%s_count %d\n", n, h.Count())
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// claimFamilyName reserves a sanitized family name, appending a _dupN
// suffix when a previously emitted family already claimed it. Families
// are claimed in sorted-original-name order within each metric section,
// so the disambiguation is deterministic run-to-run.
func claimFamilyName(used map[string]bool, n string) string {
	if !used[n] {
		used[n] = true
		return n
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s_dup%d", n, i)
		if !used[cand] {
			used[cand] = true
			return cand
		}
	}
}

// writeHelp emits the # HELP line for a family when the central
// description table knows the metric.
func writeHelp(b *strings.Builder, family, metric string) {
	if h := MetricHelp(metric); h != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", family, h)
	}
}

// MetricName maps a registry name onto the OpenMetrics charset, exactly
// as WriteOpenMetrics does for its family names. Exported so periodic
// exporters built on registry snapshots (the health engine's sample
// pages) emit names that line up with the live exposition.
func MetricName(name string) string { return sanitizeMetricName(name) }

// sanitizeMetricName maps the registry's dotted names onto the OpenMetrics
// charset [a-zA-Z0-9_:] ("hpbd.reads" -> "hpbd_reads").
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatSeconds renders a seconds value with enough precision to round-trip
// nanosecond sim durations, trimming trailing zeros for compactness.
func formatSeconds(v float64) string {
	s := fmt.Sprintf("%.9f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}
