package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WriteOpenMetrics exports every metric in the registry as OpenMetrics
// text exposition (the format Prometheus scrapes): counters as <name>_total,
// gauges as current level plus a <name>_peak companion, histograms with
// cumulative le-bucketed counts, _sum and _count. Durations are exported in
// seconds per the OpenMetrics unit convention. Metric families are emitted
// in sorted-name order and only non-empty buckets appear (plus the
// mandatory +Inf), so the snapshot is deterministic and compact. A nil or
// empty registry writes just the EOF marker.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "# EOF\n")
		return err
	}
	var b strings.Builder
	for _, name := range sortedKeys(r.counters) {
		n := sanitizeMetricName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", n)
		fmt.Fprintf(&b, "%s_total %d\n", n, r.counters[name].Value())
	}
	for _, name := range sortedKeys(r.gauges) {
		g := r.gauges[name]
		n := sanitizeMetricName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", n)
		fmt.Fprintf(&b, "%s %d\n", n, g.Value())
		fmt.Fprintf(&b, "# TYPE %s_peak gauge\n", n)
		fmt.Fprintf(&b, "%s_peak %d\n", n, g.Peak())
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		n := sanitizeMetricName(name) + "_seconds"
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		fmt.Fprintf(&b, "# UNIT %s seconds\n", n)
		cum := int64(0)
		for i, c := range h.counts {
			if c == 0 || i >= len(bucketBounds) {
				continue
			}
			cum += c
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", n, formatSeconds(float64(bucketBounds[i])/1e9), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count())
		fmt.Fprintf(&b, "%s_sum %s\n", n, formatSeconds(float64(h.Sum())/1e9))
		fmt.Fprintf(&b, "%s_count %d\n", n, h.Count())
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// sanitizeMetricName maps the registry's dotted names onto the OpenMetrics
// charset [a-zA-Z0-9_:] ("hpbd.reads" -> "hpbd_reads").
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatSeconds renders a seconds value with enough precision to round-trip
// nanosecond sim durations, trimming trailing zeros for compactness.
func formatSeconds(v float64) string {
	s := fmt.Sprintf("%.9f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}
