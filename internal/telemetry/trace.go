package telemetry

import (
	"encoding/json"
	"io"
	"strconv"

	"hpbd/internal/sim"
)

// Tracer records structured events — spans with a component, a name and
// optional attributes, plus instant markers — timestamped in virtual time.
// Export is Chrome trace_event JSON (the format chrome://tracing and
// Perfetto load directly): each distinct component becomes one named
// track, so the client driver, the pool, every server worker and every
// HCA render as parallel timelines.
type Tracer struct {
	now      func() sim.Time
	events   []traceEvent
	nextSpan uint64
}

func newTracer(now func() sim.Time) *Tracer { return &Tracer{now: now} }

type phase byte

const (
	phaseComplete  phase = 'X'
	phaseInstant   phase = 'i'
	phaseFlowStart phase = 's'
	phaseFlowStep  phase = 't'
	phaseFlowEnd   phase = 'f'
)

// flowCat is the category flow events share; Chrome/Perfetto bind flow
// arrows by (category, name, id), so all phases of one flow use it.
const flowCat = "flow"

// traceEvent is the internal record; timestamps stay in sim time until
// export. id carries the flow id for flow phases and is 0 otherwise.
type traceEvent struct {
	comp  string
	name  string
	ph    phase
	start sim.Time
	dur   sim.Duration
	id    uint64
	args  map[string]any
}

// Span is an open interval started by Begin or BeginChild. The zero Span
// (and any Span from a nil Tracer) is inert: End is a no-op. Spans opened
// with BeginChild carry a span id and a parent link, exported as "span" /
// "parent" args so causal chains survive into the trace viewer.
type Span struct {
	t      *Tracer
	comp   string
	name   string
	start  sim.Time
	id     uint64
	parent uint64
}

// Begin opens a span on the component's track at the current virtual time.
func (t *Tracer) Begin(comp, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, comp: comp, name: name, start: t.now()}
}

// BeginChild opens a span with a fresh span id, causally linked to the
// given parent span id (0 for a root). The link is exported in the span's
// args; use Span.ID to chain further children.
func (t *Tracer) BeginChild(comp, name string, parent uint64) Span {
	if t == nil {
		return Span{}
	}
	t.nextSpan++
	return Span{t: t, comp: comp, name: name, start: t.now(), id: t.nextSpan, parent: parent}
}

// ID returns the span's causal id (0 for plain Begin spans and inert spans).
func (s Span) ID() uint64 { return s.id }

// End closes the span at the current virtual time.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs closes the span, attaching attributes shown in the trace viewer.
// Spans from BeginChild also attach their "span" id and "parent" link.
func (s Span) EndArgs(args map[string]any) {
	if s.t == nil {
		return
	}
	if s.id != 0 {
		if args == nil {
			args = make(map[string]any, 2)
		}
		args["span"] = s.id
		if s.parent != 0 {
			args["parent"] = s.parent
		}
	}
	s.t.Complete(s.comp, s.name, s.start, s.t.now(), args)
}

// Complete records a span whose endpoints the caller measured itself —
// the shape the fabric model needs, where an operation is posted at one
// virtual instant and completes in a scheduler callback at another.
func (t *Tracer) Complete(comp, name string, start, end sim.Time, args map[string]any) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.events = append(t.events, traceEvent{
		comp: comp, name: name, ph: phaseComplete,
		start: start, dur: end.Sub(start), args: args,
	})
}

// Instant records a point event on the component's track.
func (t *Tracer) Instant(comp, name string) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{comp: comp, name: name, ph: phaseInstant, start: t.now()})
}

// InstantArgs records a point event carrying key/value arguments (the
// fault injector and recovery path annotate their events this way).
func (t *Tracer) InstantArgs(comp, name string, args map[string]any) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{comp: comp, name: name, ph: phaseInstant, start: t.now(), args: args})
}

// FlowBegin starts a causal flow arrow on the component's track. All
// events of one flow share the name and id (the viewer binds arrows on
// category+name+id); the HPBD stack uses the block-layer request id.
func (t *Tracer) FlowBegin(comp, name string, id uint64) {
	t.flowEvent(comp, name, phaseFlowStart, id)
}

// FlowStep continues a flow through an intermediate component.
func (t *Tracer) FlowStep(comp, name string, id uint64) {
	t.flowEvent(comp, name, phaseFlowStep, id)
}

// FlowEnd terminates a flow on the component's track.
func (t *Tracer) FlowEnd(comp, name string, id uint64) {
	t.flowEvent(comp, name, phaseFlowEnd, id)
}

func (t *Tracer) flowEvent(comp, name string, ph phase, id uint64) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{comp: comp, name: name, ph: ph, start: t.now(), id: id})
}

// Len returns the number of recorded events (0 on a nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded events in record order as (component, name,
// start, duration) tuples for tests; instants have zero duration.
func (t *Tracer) Events() []EventInfo {
	if t == nil {
		return nil
	}
	out := make([]EventInfo, len(t.events))
	for i, e := range t.events {
		out[i] = EventInfo{Comp: e.comp, Name: e.name, Start: e.start, Dur: e.dur, Instant: e.ph == phaseInstant, Flow: e.id, Phase: byte(e.ph)}
	}
	return out
}

// EventInfo is the test-visible view of one recorded event.
type EventInfo struct {
	Comp    string
	Name    string
	Start   sim.Time
	Dur     sim.Duration
	Instant bool
	Flow    uint64
	Phase   byte
}

// jsonEvent is one trace_event object on the wire. Chrome's ts/dur are
// microseconds; the simulation's nanosecond clock divides down losslessly
// into the float64 mantissa for any plausible run length.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type jsonTrace struct {
	TraceEvents     []jsonEvent `json:"traceEvents"`
	DisplayTimeUnit string      `json:"displayTimeUnit"`
}

// WriteJSON exports the trace as Chrome trace_event JSON. Components are
// assigned thread IDs in first-appearance order and named with metadata
// events, so the export is deterministic for a deterministic simulation.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := w.Write([]byte(`{"traceEvents":[],"displayTimeUnit":"ms"}` + "\n"))
		return err
	}
	const pid = 1
	tids := make(map[string]int)
	var out jsonTrace
	out.DisplayTimeUnit = "ms"
	for _, e := range t.events {
		tid, ok := tids[e.comp]
		if !ok {
			tid = len(tids) + 1
			tids[e.comp] = tid
			out.TraceEvents = append(out.TraceEvents, jsonEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": e.comp},
			})
		}
		je := jsonEvent{
			Name: e.name,
			Cat:  e.comp,
			Ph:   string(e.ph),
			Ts:   float64(e.start) / 1e3,
			Pid:  pid,
			Tid:  tid,
			Args: e.args,
		}
		switch e.ph {
		case phaseComplete:
			dur := float64(e.dur) / 1e3
			je.Dur = &dur
		case phaseInstant:
			je.S = "t"
		case phaseFlowStart, phaseFlowStep, phaseFlowEnd:
			je.Cat = flowCat
			je.ID = strconv.FormatUint(e.id, 10)
			if e.ph == phaseFlowEnd {
				// Bind the arrow head to the enclosing slice at this
				// timestamp rather than the next one.
				je.BP = "e"
			}
		}
		out.TraceEvents = append(out.TraceEvents, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
