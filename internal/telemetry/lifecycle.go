package telemetry

import (
	"fmt"
	"io"
	"strings"

	"hpbd/internal/sim"
)

// Stage names one segment of a swap request's critical path. The taxonomy
// is shared by the HPBD datapath, the simulated NBD baseline and the real
// TCP netblock client so per-stage breakdowns compare apples-to-apples;
// stages a transport cannot observe simply stay zero. For every completed
// request the recorded stages partition the end-to-end latency exactly:
// sum(Stages) == End - Start in virtual nanoseconds, by construction.
type Stage int

const (
	// StageQueue: block-layer queueing — submission to driver dispatch,
	// plus time parked on the driver's internal send queue.
	StageQueue Stage = iota
	// StagePoolWait: waiting for (and preparing) a staging-pool extent —
	// allocator blocking, copy-in or MR registration on the hybrid path.
	StagePoolWait
	// StageCreditStall: blocked on flow-control credits at the sender.
	StageCreditStall
	// StageSend: doorbell, wire transfer and server-side pickup of the
	// request message.
	StageSend
	// StageRDMA: the server-side RDMA data movement (READ or WRITE).
	StageRDMA
	// StageServerCopy: the server's local store memcpy.
	StageServerCopy
	// StageReply: reply marshal, wire transfer and client receive.
	StageReply
	// StageDrain: client-side completion drain — copy-out and block-layer
	// completion after the reply arrives.
	StageDrain
	// NumStages bounds the enum; per-request stage vectors are
	// [NumStages]sim.Duration.
	NumStages
)

var stageNames = [NumStages]string{
	"queue", "pool-wait", "credit-stall", "send",
	"rdma", "server-copy", "reply", "drain",
}

var stageMetricNames = [NumStages]string{
	"queue", "pool_wait", "credit_stall", "send",
	"rdma", "server_copy", "reply", "drain",
}

// String returns the stage's display name ("queue", "pool-wait", ...).
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// ReqRecord is one completed request's lifecycle: identity, shape, and the
// exact per-stage latency partition. Records are fixed-size values so the
// flight recorder can retain them with zero steady-state allocation.
type ReqRecord struct {
	ID      uint64 // wire handle of the request
	Flow    uint64 // causal flow id (block-layer request id); 0 if untraced
	Write   bool
	Err     bool  // completed with an error status
	Retries uint8 // recovery re-sends this request survived
	Bytes   int
	Server  string   // serving host, "" if unknown
	Start   sim.Time // block-layer submission
	End     sim.Time // completion delivered
	Stages  [NumStages]sim.Duration
}

// Total returns the end-to-end latency (== the sum of Stages).
func (r *ReqRecord) Total() sim.Duration { return r.End.Sub(r.Start) }

// ServerStamp carries server-side timing for one in-flight request across
// the (simulated) process boundary. The wire format is frozen — growing a
// message would change the fabric model's byte-charged transfer times — so
// a server publishes its stamp through the shared node Registry instead,
// keyed by wire handle, and the client consumes it on reply.
type ServerStamp struct {
	Start sim.Time     // server worker picked the request up
	Reply sim.Time     // server posted the reply
	Copy  sim.Duration // local store memcpy portion of [Start, Reply]
}

// Lifecycle is the critical-path analyzer: it accumulates per-stage
// histograms and exact per-stage sums from completed-request records,
// feeds the flight recorder, and relays server stamps and flow ids
// between the client and server halves of the datapath. Obtain one only
// via Registry.EnableLifecycle / Registry.Lifecycle; all methods are
// nil-safe no-ops so disabled paths need no branches.
//
// Handle-keyed relay maps assume one client device per registry (true for
// a cluster node, which shares one registry across its whole stack).
type Lifecycle struct {
	flight *FlightRecorder
	e2e    *Histogram
	hists  [NumStages]*Histogram
	count  int64
	errs   int64
	sums   [NumStages]sim.Duration
	sumE2E sim.Duration
	stamps map[uint64]ServerStamp
	flows  map[uint64]uint64
}

func newLifecycle(r *Registry, ring int) *Lifecycle {
	if ring <= 0 {
		ring = DefaultFlightRecEntries
	}
	l := &Lifecycle{
		flight: &FlightRecorder{ring: make([]ReqRecord, ring)},
		e2e:    r.Histogram("req.e2e"),
		stamps: make(map[uint64]ServerStamp),
		flows:  make(map[uint64]uint64),
	}
	for s := Stage(0); s < NumStages; s++ {
		l.hists[s] = r.Histogram("req.stage." + stageMetricNames[s])
	}
	return l
}

// DefaultFlightRecEntries is the ring size EnableLifecycle uses when the
// caller passes ring <= 0.
const DefaultFlightRecEntries = 256

// EnableLifecycle attaches (or returns the existing) critical-path
// analyzer with a flight-recorder ring of the given size (<= 0 selects
// DefaultFlightRecEntries). Idempotent: the first call fixes the ring
// size. Per-stage histograms appear in the registry as req.stage.<name>
// plus req.e2e.
func (r *Registry) EnableLifecycle(ring int) *Lifecycle {
	if r == nil {
		return nil
	}
	if r.lifecycle == nil {
		r.lifecycle = newLifecycle(r, ring)
	}
	return r.lifecycle
}

// Lifecycle returns the attached analyzer, or nil when not enabled.
func (r *Registry) Lifecycle() *Lifecycle {
	if r == nil {
		return nil
	}
	return r.lifecycle
}

// Record ingests one completed request: per-stage histograms, exact sums
// and the flight-recorder ring. Zero-alloc in steady state.
//
//hpbd:hotpath
func (l *Lifecycle) Record(rec *ReqRecord) {
	if l == nil {
		return
	}
	l.count++
	if rec.Err {
		l.errs++
	}
	total := rec.End.Sub(rec.Start)
	l.sumE2E += total
	l.e2e.Observe(total)
	for s := Stage(0); s < NumStages; s++ {
		l.sums[s] += rec.Stages[s]
		l.hists[s].Observe(rec.Stages[s])
	}
	l.flight.add(rec)
}

// Count returns the number of recorded requests.
func (l *Lifecycle) Count() int64 {
	if l == nil {
		return 0
	}
	return l.count
}

// Errors returns how many recorded requests completed with an error.
func (l *Lifecycle) Errors() int64 {
	if l == nil {
		return 0
	}
	return l.errs
}

// StageSum returns the exact accumulated virtual time spent in one stage.
func (l *Lifecycle) StageSum(s Stage) sim.Duration {
	if l == nil || s < 0 || s >= NumStages {
		return 0
	}
	return l.sums[s]
}

// StageHistogram returns the per-stage latency histogram (nil when the
// lifecycle is disabled).
func (l *Lifecycle) StageHistogram(s Stage) *Histogram {
	if l == nil || s < 0 || s >= NumStages {
		return nil
	}
	return l.hists[s]
}

// Flight returns the always-on flight recorder (nil when disabled).
func (l *Lifecycle) Flight() *FlightRecorder {
	if l == nil {
		return nil
	}
	return l.flight
}

// StampServer publishes server-side timing for an in-flight request. The
// client consumes it with TakeServerStamp when the reply drains.
func (l *Lifecycle) StampServer(handle uint64, st ServerStamp) {
	if l == nil {
		return
	}
	l.stamps[handle] = st
}

// TakeServerStamp removes and returns the server stamp for a handle.
func (l *Lifecycle) TakeServerStamp(handle uint64) (ServerStamp, bool) {
	if l == nil {
		return ServerStamp{}, false
	}
	st, ok := l.stamps[handle]
	if ok {
		delete(l.stamps, handle)
	}
	return st, ok
}

// LinkFlow associates a wire handle with a causal flow id so the server
// half of the path can continue the client's flow in the trace.
func (l *Lifecycle) LinkFlow(handle, flow uint64) {
	if l == nil {
		return
	}
	l.flows[handle] = flow
}

// TakeFlow removes and returns the flow id linked to a handle.
func (l *Lifecycle) TakeFlow(handle uint64) (uint64, bool) {
	if l == nil {
		return 0, false
	}
	f, ok := l.flows[handle]
	if ok {
		delete(l.flows, handle)
	}
	return f, ok
}

// StageStat is one row of a critical-path breakdown.
type StageStat struct {
	Stage Stage
	Total sim.Duration // exact accumulated virtual time in this stage
	Mean  sim.Duration // Total / request count
	Share float64      // fraction of accumulated end-to-end time
}

// Breakdown returns the per-stage attribution in fixed stage order. The
// shares sum to 1 because the stages partition every request exactly.
func (l *Lifecycle) Breakdown() []StageStat {
	if l == nil || l.count == 0 {
		return nil
	}
	out := make([]StageStat, NumStages)
	for s := Stage(0); s < NumStages; s++ {
		st := StageStat{Stage: s, Total: l.sums[s]}
		st.Mean = st.Total / sim.Duration(l.count)
		if l.sumE2E > 0 {
			st.Share = float64(st.Total) / float64(l.sumE2E)
		}
		out[s] = st
	}
	return out
}

// BreakdownTable renders the critical-path attribution as a deterministic
// aligned text table (stages in fixed order, fixed-precision columns).
func (l *Lifecycle) BreakdownTable() string {
	if l == nil {
		return ""
	}
	var b strings.Builder
	if l.count == 0 {
		fmt.Fprintf(&b, "critical-path breakdown: no completed requests\n")
		return b.String()
	}
	fmt.Fprintf(&b, "critical-path breakdown (%d requests, %d errors, mean end-to-end %.3fus):\n",
		l.count, l.errs, float64(l.sumE2E)/float64(l.count)/1e3)
	fmt.Fprintf(&b, "  %-14s %14s %12s %8s\n", "stage", "total(ms)", "mean(us)", "share")
	for _, st := range l.Breakdown() {
		fmt.Fprintf(&b, "  %-14s %14.6f %12.3f %7.2f%%\n",
			st.Stage.String(), float64(st.Total)/1e6, float64(st.Mean)/1e3, st.Share*100)
	}
	fmt.Fprintf(&b, "  %-14s %14.6f %12.3f %7.2f%%\n",
		"end-to-end", float64(l.sumE2E)/1e6, float64(l.sumE2E)/float64(l.count)/1e3, 100.0)
	return b.String()
}

// TopStages renders the n largest stages as a compact "stage pct" list
// (ties broken by stage order) for one-line sweep output.
func (l *Lifecycle) TopStages(n int) string {
	if l == nil || l.count == 0 || l.sumE2E == 0 {
		return ""
	}
	stats := l.Breakdown()
	// Selection sort by share, descending, stable in stage order: NumStages
	// is 8, and determinism matters more than asymptotics here.
	for i := 0; i < len(stats); i++ {
		best := i
		for j := i + 1; j < len(stats); j++ {
			if stats[j].Share > stats[best].Share {
				best = j
			}
		}
		stats[i], stats[best] = stats[best], stats[i]
	}
	if n > len(stats) {
		n = len(stats)
	}
	parts := make([]string, 0, n)
	for _, st := range stats[:n] {
		parts = append(parts, fmt.Sprintf("%s %.0f%%", st.Stage.String(), st.Share*100))
	}
	return strings.Join(parts, " ")
}

// FlightRecorder is an always-on fixed-size ring of the most recent
// request records. Adding a record is an in-place value copy — zero
// allocation in steady state — so it stays enabled in production runs.
// Obtain one only via Lifecycle.Flight; all methods are nil-safe.
type FlightRecorder struct {
	ring  []ReqRecord
	next  int
	total uint64
	dumpW io.Writer
	dumps int
}

// add appends a record, overwriting the oldest once the ring is full.
//
//hpbd:hotpath
func (f *FlightRecorder) add(rec *ReqRecord) {
	if f == nil || len(f.ring) == 0 {
		return
	}
	f.ring[f.next] = *rec
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
	}
	f.total++
}

// Len returns how many records the ring currently holds.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	if f.total < uint64(len(f.ring)) {
		return int(f.total)
	}
	return len(f.ring)
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// Total returns how many records have ever been added.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	return f.total
}

// Dumps returns how many automatic dumps have been emitted.
func (f *FlightRecorder) Dumps() int {
	if f == nil {
		return 0
	}
	return f.dumps
}

// Records returns the retained records, oldest first.
func (f *FlightRecorder) Records() []ReqRecord {
	if f == nil {
		return nil
	}
	n := f.Len()
	out := make([]ReqRecord, 0, n)
	start := 0
	if f.total > uint64(len(f.ring)) {
		start = f.next
	}
	for i := 0; i < n; i++ {
		out = append(out, f.ring[(start+i)%len(f.ring)])
	}
	return out
}

// SetDumpWriter arms automatic dumps: DumpOnEvent writes here. A nil
// writer disarms.
func (f *FlightRecorder) SetDumpWriter(w io.Writer) {
	if f == nil {
		return
	}
	f.dumpW = w
}

// DumpOnEvent emits a dump to the armed writer (no-op when disarmed);
// the datapath calls it on request failure or timeout.
func (f *FlightRecorder) DumpOnEvent(reason string) {
	if f == nil || f.dumpW == nil {
		return
	}
	f.dumps++
	f.Dump(f.dumpW, reason)
}

// Dump writes the retained records as a deterministic aligned table,
// oldest first, with the per-stage latency split in microseconds.
func (f *FlightRecorder) Dump(w io.Writer, reason string) error {
	if f == nil {
		_, err := fmt.Fprintf(w, "== flight recorder: disabled (%s)\n", reason)
		return err
	}
	if _, err := fmt.Fprintf(w, "== flight recorder dump: %s\n== last %d of %d requests (oldest first, durations in us)\n",
		reason, f.Len(), f.total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s %6s %3s %8s %-8s %12s %10s", "id", "flow", "op", "bytes", "server", "start_us", "e2e"); err != nil {
		return err
	}
	for s := Stage(0); s < NumStages; s++ {
		if _, err := fmt.Fprintf(w, " %10s", stageNames[s]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, " rty err"); err != nil {
		return err
	}
	for _, rec := range f.Records() {
		op := "W"
		if !rec.Write {
			op = "R"
		}
		errMark := "-"
		if rec.Err {
			errMark = "E"
		}
		if _, err := fmt.Fprintf(w, "%8d %6d %3s %8d %-8s %12.3f %10.3f",
			rec.ID, rec.Flow, op, rec.Bytes, rec.Server,
			float64(rec.Start)/1e3, float64(rec.Total())/1e3); err != nil {
			return err
		}
		for s := Stage(0); s < NumStages; s++ {
			if _, err := fmt.Fprintf(w, " %10.3f", float64(rec.Stages[s])/1e3); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, " %3d %3s\n", rec.Retries, errMark); err != nil {
			return err
		}
	}
	return nil
}
