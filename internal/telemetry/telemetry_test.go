package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"hpbd/internal/sim"
)

func testRegistry() *Registry {
	var now sim.Time
	return NewWithClock(func() sim.Time { return now })
}

func TestCounter(t *testing.T) {
	r := testRegistry()
	c := r.Counter("a")
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	if r.Counter("a") != c {
		t.Fatal("second access should return the same handle")
	}
}

func TestGaugePeak(t *testing.T) {
	r := testRegistry()
	g := r.Gauge("level")
	g.Set(5)
	g.Add(10)
	g.Add(-12)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Value())
	}
	if g.Peak() != 15 {
		t.Fatalf("peak = %d, want 15", g.Peak())
	}
}

// TestNilSafety exercises every handle method on nil receivers: all must
// be no-ops returning zero values, because instrumented code holds nil
// handles when telemetry is off.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("x"), r.Gauge("x"), r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(sim.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || g.Peak() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must read as zero")
	}
	if r.EnableTracing() != nil || r.Tracer() != nil {
		t.Fatal("nil registry cannot trace")
	}
	var tr *Tracer
	sp := tr.Begin("c", "n")
	sp.End()
	sp.EndArgs(map[string]any{"k": 1})
	tr.Complete("c", "n", 0, 1, nil)
	tr.Instant("c", "n")
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must record nothing")
	}
	if r.Summary() != "" {
		t.Fatal("nil registry summary must be empty")
	}
	var zero Span
	zero.End() // must not panic
}

// quantileWithin asserts the histogram estimate brackets the exact order
// statistic from below within one log bucket (< 19% relative error), the
// package's documented guarantee.
func quantileWithin(t *testing.T, h *Histogram, samples []sim.Duration, q float64) {
	t.Helper()
	sorted := append([]sim.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int64(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	exact := sorted[rank-1]
	got := h.Quantile(q)
	if got < exact {
		t.Fatalf("q%.2f = %v below exact %v", q, got, exact)
	}
	limit := sim.Duration(math.Ceil(float64(exact)*1.19)) + 1
	if got > limit {
		t.Fatalf("q%.2f = %v exceeds one-bucket bound %v (exact %v)", q, got, limit, exact)
	}
}

func TestHistogramQuantileUniform(t *testing.T) {
	h := newHistogram("u")
	var samples []sim.Duration
	// Uniform over [100us, 10ms]: every 10th microsecond.
	for d := 100 * sim.Microsecond; d <= 10*sim.Millisecond; d += 10 * sim.Microsecond {
		h.Observe(d)
		samples = append(samples, d)
	}
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0} {
		quantileWithin(t, h, samples, q)
	}
}

func TestHistogramQuantileExponential(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	h := newHistogram("e")
	samples := make([]sim.Duration, 20000)
	for i := range samples {
		// Exponential with 1 ms mean: the long-tailed shape real swap
		// latencies have.
		d := sim.Duration(rnd.ExpFloat64() * float64(sim.Millisecond))
		if d < 1 {
			d = 1
		}
		h.Observe(d)
		samples[i] = d
	}
	for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
		quantileWithin(t, h, samples, q)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := newHistogram("d")
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must read as zero")
	}
	const v = 333 * sim.Microsecond
	for i := 0; i < 100; i++ {
		h.Observe(v)
	}
	// Min==Max clamping makes every quantile exact for a constant stream.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != v {
			t.Fatalf("constant stream q%.2f = %v, want %v", q, got, v)
		}
	}
	if h.Mean() != v || h.Min() != v || h.Max() != v {
		t.Fatalf("mean/min/max = %v/%v/%v, want %v", h.Mean(), h.Min(), h.Max(), v)
	}
	h.Observe(-5) // clamps to 0
	if h.Min() != 0 {
		t.Fatalf("negative sample should clamp to 0, min = %v", h.Min())
	}
}

func TestHistogramBoundsMonotonic(t *testing.T) {
	for i := 1; i < len(bucketBounds); i++ {
		if bucketBounds[i] <= bucketBounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v then %v",
				i, bucketBounds[i-1], bucketBounds[i])
		}
	}
	if last := bucketBounds[len(bucketBounds)-1]; last < 200*sim.Second {
		t.Fatalf("last bound %v does not cover 200s", last)
	}
}

func TestSummary(t *testing.T) {
	r := testRegistry()
	if r.Summary() != "" {
		t.Fatal("empty registry summary must be empty")
	}
	r.Counter("reqs").Add(7)
	r.Gauge("in_use").Set(3)
	h := r.Histogram("lat")
	h.Observe(2 * sim.Millisecond)
	s := r.Summary()
	for _, want := range []string{"counters:", "reqs", "7", "gauges", "in_use", "histograms", "lat"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}
