package telemetry

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"hpbd/internal/sim"
)

// lexOpenMetrics is a minimal OpenMetrics text-format lexer: it checks
// line shape (comments, samples, EOF), metric-name charset, monotone
// cumulative buckets and the mandatory trailing # EOF, returning the
// number of sample lines. It is deliberately a lexer, not a full parser —
// enough to catch a malformed export in CI.
func lexOpenMetrics(t *testing.T, text string) int {
	t.Helper()
	lines := strings.Split(text, "\n")
	if len(lines) < 2 || lines[len(lines)-1] != "" || lines[len(lines)-2] != "# EOF" {
		t.Fatalf("export must end with '# EOF\\n', got tail %q", lines[len(lines)-2:])
	}
	nameOK := func(n string) bool {
		for i := 0; i < len(n); i++ {
			c := n[i]
			ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
				(i > 0 && c >= '0' && c <= '9')
			if !ok {
				return false
			}
		}
		return len(n) > 0
	}
	samples := 0
	lastBucket := map[string]int64{}
	for i, line := range lines[:len(lines)-2] {
		if strings.HasPrefix(line, "# TYPE ") || strings.HasPrefix(line, "# UNIT ") {
			fields := strings.Fields(line)
			if len(fields) < 4 || !nameOK(fields[2]) {
				t.Fatalf("line %d: bad metadata %q", i+1, line)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d: sample %q is not 'name value'", i+1, line)
		}
		name := fields[0]
		if j := strings.IndexByte(name, '{'); j >= 0 {
			base := name[:j]
			label := name[j:]
			if !nameOK(base) || !strings.HasPrefix(label, `{le="`) || !strings.HasSuffix(label, `"}`) {
				t.Fatalf("line %d: bad labeled sample %q", i+1, line)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("line %d: bucket value %q: %v", i+1, fields[1], err)
			}
			if v < lastBucket[base] {
				t.Fatalf("line %d: bucket counts not cumulative: %d after %d", i+1, v, lastBucket[base])
			}
			lastBucket[base] = v
		} else if !nameOK(name) {
			t.Fatalf("line %d: bad metric name %q", i+1, line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("line %d: value %q not a number: %v", i+1, fields[1], err)
		}
		samples++
	}
	return samples
}

// TestWriteOpenMetrics: counters, gauges and histograms all export, names
// sanitize to the OpenMetrics charset, and the output lexes clean.
func TestWriteOpenMetrics(t *testing.T) {
	var now sim.Time
	reg := NewWithClock(func() sim.Time { return now })
	reg.Counter("hpbd.reads").Add(7)
	reg.Gauge("pool.free-bytes").Set(4096)
	h := reg.Histogram("req.stage.rdma")
	h.Observe(100 * sim.Nanosecond)
	h.Observe(3 * sim.Microsecond)
	h.Observe(3 * sim.Microsecond)
	h.Observe(70 * sim.Millisecond)

	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	samples := lexOpenMetrics(t, out)
	if samples < 7 {
		t.Fatalf("expected >= 7 samples, got %d:\n%s", samples, out)
	}
	for _, want := range []string{
		"hpbd_reads_total 7",
		"pool_free_bytes 4096",
		"pool_free_bytes_peak 4096",
		"req_stage_rdma_seconds_count 4",
		`req_stage_rdma_seconds_bucket{le="+Inf"} 4`,
		"req_stage_rdma_seconds_sum 0.070006",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q:\n%s", want, out)
		}
	}
}

// TestWriteOpenMetricsDeterministic: two exports of the same registry are
// byte-identical (sorted families, fixed formatting).
func TestWriteOpenMetricsDeterministic(t *testing.T) {
	reg := NewWithClock(func() sim.Time { return 0 })
	for _, n := range []string{"z.last", "a.first", "m.mid"} {
		reg.Counter(n).Inc()
		reg.Histogram("h." + n).Observe(sim.Microsecond)
	}
	var b1, b2 bytes.Buffer
	if err := reg.WriteOpenMetrics(&b1); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteOpenMetrics(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("export not deterministic:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	idx := strings.Index(b1.String(), "a_first_total")
	idx2 := strings.Index(b1.String(), "m_mid_total")
	idx3 := strings.Index(b1.String(), "z_last_total")
	if !(idx >= 0 && idx < idx2 && idx2 < idx3) {
		t.Fatalf("counter families not sorted:\n%s", b1.String())
	}
}

// TestWriteOpenMetricsNil: a nil registry still writes a valid (empty)
// exposition.
func TestWriteOpenMetricsNil(t *testing.T) {
	var reg *Registry
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "# EOF\n" {
		t.Fatalf("nil export = %q", buf.String())
	}
}
