package telemetry

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"hpbd/internal/sim"
)

// lexOpenMetrics is a minimal OpenMetrics text-format lexer: it checks
// line shape (comments, samples, EOF), metric-name charset, monotone
// cumulative buckets and the mandatory trailing # EOF, returning the
// number of sample lines. It is deliberately a lexer, not a full parser —
// enough to catch a malformed export in CI.
func lexOpenMetrics(t *testing.T, text string) int {
	t.Helper()
	lines := strings.Split(text, "\n")
	if len(lines) < 2 || lines[len(lines)-1] != "" || lines[len(lines)-2] != "# EOF" {
		t.Fatalf("export must end with '# EOF\\n', got tail %q", lines[len(lines)-2:])
	}
	nameOK := func(n string) bool {
		for i := 0; i < len(n); i++ {
			c := n[i]
			ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
				(i > 0 && c >= '0' && c <= '9')
			if !ok {
				return false
			}
		}
		return len(n) > 0
	}
	samples := 0
	lastBucket := map[string]int64{}
	for i, line := range lines[:len(lines)-2] {
		if strings.HasPrefix(line, "# TYPE ") || strings.HasPrefix(line, "# UNIT ") || strings.HasPrefix(line, "# HELP ") {
			fields := strings.Fields(line)
			if len(fields) < 4 || !nameOK(fields[2]) {
				t.Fatalf("line %d: bad metadata %q", i+1, line)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d: sample %q is not 'name value'", i+1, line)
		}
		name := fields[0]
		if j := strings.IndexByte(name, '{'); j >= 0 {
			base := name[:j]
			label := name[j:]
			if !nameOK(base) || !strings.HasPrefix(label, `{le="`) || !strings.HasSuffix(label, `"}`) {
				t.Fatalf("line %d: bad labeled sample %q", i+1, line)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("line %d: bucket value %q: %v", i+1, fields[1], err)
			}
			if v < lastBucket[base] {
				t.Fatalf("line %d: bucket counts not cumulative: %d after %d", i+1, v, lastBucket[base])
			}
			lastBucket[base] = v
		} else if !nameOK(name) {
			t.Fatalf("line %d: bad metric name %q", i+1, line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("line %d: value %q not a number: %v", i+1, fields[1], err)
		}
		samples++
	}
	return samples
}

// TestWriteOpenMetrics: counters, gauges and histograms all export, names
// sanitize to the OpenMetrics charset, and the output lexes clean.
func TestWriteOpenMetrics(t *testing.T) {
	var now sim.Time
	reg := NewWithClock(func() sim.Time { return now })
	reg.Counter("hpbd.reads").Add(7)
	reg.Gauge("pool.free-bytes").Set(4096)
	h := reg.Histogram("req.stage.rdma")
	h.Observe(100 * sim.Nanosecond)
	h.Observe(3 * sim.Microsecond)
	h.Observe(3 * sim.Microsecond)
	h.Observe(70 * sim.Millisecond)

	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	samples := lexOpenMetrics(t, out)
	if samples < 7 {
		t.Fatalf("expected >= 7 samples, got %d:\n%s", samples, out)
	}
	for _, want := range []string{
		"hpbd_reads_total 7",
		"pool_free_bytes 4096",
		"pool_free_bytes_peak 4096",
		"req_stage_rdma_seconds_count 4",
		`req_stage_rdma_seconds_bucket{le="+Inf"} 4`,
		"req_stage_rdma_seconds_sum 0.070006",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q:\n%s", want, out)
		}
	}
}

// TestWriteOpenMetricsDeterministic: two exports of the same registry are
// byte-identical (sorted families, fixed formatting).
func TestWriteOpenMetricsDeterministic(t *testing.T) {
	reg := NewWithClock(func() sim.Time { return 0 })
	for _, n := range []string{"z.last", "a.first", "m.mid"} {
		reg.Counter(n).Inc()
		reg.Histogram("h." + n).Observe(sim.Microsecond)
	}
	var b1, b2 bytes.Buffer
	if err := reg.WriteOpenMetrics(&b1); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteOpenMetrics(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("export not deterministic:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	idx := strings.Index(b1.String(), "a_first_total")
	idx2 := strings.Index(b1.String(), "m_mid_total")
	idx3 := strings.Index(b1.String(), "z_last_total")
	if !(idx >= 0 && idx < idx2 && idx2 < idx3) {
		t.Fatalf("counter families not sorted:\n%s", b1.String())
	}
}

// TestWriteOpenMetricsHelp: families listed in the central description
// table carry a # HELP line with the table's text; unknown families carry
// none; per-server families match on suffix.
func TestWriteOpenMetricsHelp(t *testing.T) {
	reg := NewWithClock(func() sim.Time { return 0 })
	reg.Counter("hpbd.reads").Add(3)
	reg.Counter("mem0.requests").Add(5)
	reg.Counter("no.such.metric").Inc()
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lexOpenMetrics(t, out)
	if want := "# HELP hpbd_reads " + MetricHelp("hpbd.reads") + "\n"; !strings.Contains(out, want) {
		t.Errorf("missing %q in:\n%s", want, out)
	}
	if want := "# HELP mem0_requests " + MetricHelp("mem0.requests") + "\n"; !strings.Contains(out, want) {
		t.Errorf("per-server HELP missing %q in:\n%s", want, out)
	}
	if strings.Contains(out, "# HELP no_such_metric") {
		t.Errorf("unknown family got a HELP line:\n%s", out)
	}
	if MetricHelp("mem0.requests") == "" || MetricHelp("mem12.doorbells") == "" {
		t.Error("per-server suffix lookup broken")
	}
	if MetricHelp("a.b.requests") != "" {
		t.Error("nested-prefix name should not match the per-server table")
	}
}

// TestWriteOpenMetricsCollision: registry names that sanitize to the same
// OpenMetrics family ("a.b" vs "a_b") must stay distinct families instead
// of silently merging, and the disambiguation must be deterministic.
func TestWriteOpenMetricsCollision(t *testing.T) {
	reg := NewWithClock(func() sim.Time { return 0 })
	reg.Counter("a.b").Add(1)
	reg.Counter("a_b").Add(2)
	reg.Gauge("a-b").Set(3) // collides across sections too
	var b1, b2 bytes.Buffer
	if err := reg.WriteOpenMetrics(&b1); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteOpenMetrics(&b2); err != nil {
		t.Fatal(err)
	}
	out := b1.String()
	lexOpenMetrics(t, out)
	if out != b2.String() {
		t.Fatalf("collision disambiguation not deterministic:\n%s\nvs\n%s", out, b2.String())
	}
	for _, want := range []string{"a_b_total 1", "a_b_dup2_total 2", "a_b_dup3 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q — families merged or misnamed:\n%s", want, out)
		}
	}
}

// TestWriteOpenMetricsNil: a nil registry still writes a valid (empty)
// exposition.
func TestWriteOpenMetricsNil(t *testing.T) {
	var reg *Registry
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "# EOF\n" {
		t.Fatalf("nil export = %q", buf.String())
	}
}
