package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hpbd/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestSpanConcurrentProcs runs two cooperatively-scheduled sim processes
// that open and close spans at known virtual times: record order, virtual
// timestamps and nesting must all come out deterministic.
func TestSpanConcurrentProcs(t *testing.T) {
	env := sim.NewEnv()
	tr := New(env).EnableTracing()

	env.Go("procA", func(p *sim.Proc) {
		outer := tr.Begin("procA", "outer")
		p.Sleep(10 * sim.Microsecond)
		inner := tr.Begin("procA", "inner")
		p.Sleep(5 * sim.Microsecond)
		inner.End()
		p.Sleep(10 * sim.Microsecond)
		outer.EndArgs(map[string]any{"pages": 2})
	})
	env.Go("procB", func(p *sim.Proc) {
		p.Sleep(2 * sim.Microsecond)
		span := tr.Begin("procB", "work")
		p.Sleep(16 * sim.Microsecond)
		span.End()
	})
	env.Run()
	env.Close()

	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(ev), ev)
	}
	// Spans are recorded when they end, so record order is end-time order.
	us := sim.Microsecond
	want := []EventInfo{
		{Comp: "procA", Name: "inner", Start: sim.Time(10 * us), Dur: 5 * us, Phase: 'X'},
		{Comp: "procB", Name: "work", Start: sim.Time(2 * us), Dur: 16 * us, Phase: 'X'},
		{Comp: "procA", Name: "outer", Start: 0, Dur: 25 * us, Phase: 'X'},
	}
	for i, w := range want {
		if ev[i] != w {
			t.Fatalf("event %d = %+v, want %+v", i, ev[i], w)
		}
	}
	inner, outer := ev[0], ev[2]
	if inner.Start < outer.Start || inner.Start+sim.Time(inner.Dur) > outer.Start+sim.Time(outer.Dur) {
		t.Fatalf("inner span %+v not nested in outer %+v", inner, outer)
	}
}

// syntheticTrace builds a small fixed trace on a hand-driven clock —
// every feature of the exporter is exercised: spans with and without
// args, instants, caller-measured Complete, multiple components.
func syntheticTrace() *Tracer {
	var now sim.Time
	tr := newTracer(func() sim.Time { return now })
	span := tr.Begin("hpbd0", "write")
	now = sim.Time(150 * sim.Microsecond)
	span.EndArgs(map[string]any{"bytes": 65536, "server": "mem0"})
	tr.Instant("mem0", "wakeup")
	now = sim.Time(400 * sim.Microsecond)
	tr.Complete("mem0-worker0", "rdma-read",
		sim.Time(160*sim.Microsecond), now, map[string]any{"bytes": 65536})
	plain := tr.Begin("hpbd0", "read")
	now = sim.Time(475 * sim.Microsecond)
	plain.End()
	// A causal flow threading all three components, plus a child span
	// carrying span/parent ids.
	tr.FlowBegin("hpbd0", "req", 7)
	now = sim.Time(480 * sim.Microsecond)
	tr.FlowStep("mem0", "req", 7)
	child := tr.BeginChild("mem0-worker0", "store-write", 3)
	now = sim.Time(490 * sim.Microsecond)
	child.End()
	tr.FlowEnd("hpbd0", "req", 7)
	return tr
}

// TestWriteJSONGolden locks the exact Chrome trace_event export format
// with a golden file (regenerate with go test ./internal/telemetry -run
// Golden -update).
func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := syntheticTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWriteJSONSchema validates the export against the trace_event
// contract chrome://tracing and Perfetto rely on.
func TestWriteJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := syntheticTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayUnit)
	}
	named := make(map[float64]bool) // tids introduced by thread_name metadata
	for i, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		tid, _ := e["tid"].(float64)
		if e["name"] == "" || tid < 1 || e["pid"].(float64) != 1 {
			t.Fatalf("event %d missing required fields: %v", i, e)
		}
		switch ph {
		case "M":
			named[tid] = true
		case "X":
			if _, ok := e["dur"].(float64); !ok {
				t.Fatalf("complete event %d has no dur: %v", i, e)
			}
			if !named[tid] {
				t.Fatalf("event %d on tid %v before its thread_name metadata", i, tid)
			}
		case "i":
			if e["s"] != "t" {
				t.Fatalf("instant event %d missing thread scope: %v", i, e)
			}
			if !named[tid] {
				t.Fatalf("event %d on tid %v before its thread_name metadata", i, tid)
			}
		case "s", "t", "f":
			if e["cat"] != "flow" {
				t.Fatalf("flow event %d has cat %v, want flow", i, e["cat"])
			}
			if id, _ := e["id"].(string); id == "" {
				t.Fatalf("flow event %d missing id: %v", i, e)
			}
			if ph == "f" && e["bp"] != "e" {
				t.Fatalf("flow end %d missing bp=e: %v", i, e)
			}
		default:
			t.Fatalf("event %d has unexpected phase %q", i, ph)
		}
	}
	if len(named) != 3 {
		t.Fatalf("expected 3 component tracks, got %d", len(named))
	}
}

// TestNilTracerWriteJSON: a disabled tracer still writes a loadable empty
// trace so callers need no special case.
func TestNilTracerWriteJSON(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
	if evs, ok := doc["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Fatalf("want empty traceEvents, got %v", doc)
	}
}
