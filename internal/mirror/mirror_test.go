package mirror

import (
	"bytes"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/hpbd"
	"hpbd/internal/ib"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
	"hpbd/internal/vm"
)

// rig builds a mirror over two single-server HPBD devices.
type rig struct {
	env     *sim.Env
	mirror  *Device
	queue   *blockdev.Queue
	servers [2]*hpbd.Server
	devs    [2]*hpbd.Device
}

func newRig(t *testing.T) *rig {
	t.Helper()
	env := sim.NewEnv()
	f := ib.NewFabric(env, ib.DefaultConfig())
	r := &rig{env: env}
	for i := 0; i < 2; i++ {
		srv := hpbd.NewServer(f, "mem", hpbd.DefaultServerConfig(4<<20))
		dev := hpbd.NewDevice(f, "hpbd", hpbd.DefaultClientConfig())
		if err := dev.ConnectServer(srv, 4<<20); err != nil {
			t.Fatalf("ConnectServer: %v", err)
		}
		r.servers[i] = srv
		r.devs[i] = dev
	}
	m, err := New(env, "md0", r.devs[0], r.devs[1])
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.mirror = m
	r.queue = blockdev.NewQueue(env, netmodel.DefaultHost(), m)
	return r
}

func (r *rig) run(fn func(p *sim.Proc)) {
	r.env.Go("test", fn)
	r.env.Run()
	r.env.Close()
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*13) + seed
	}
	return b
}

// killServer closes the server-side QPs of one replica.
func (r *rig) killServer(i int) {
	r.servers[i].DropClients()
}

// newVMOver builds a small VM system swapping to the given queue.
func newVMOver(env *sim.Env, q *blockdev.Queue) *vm.System {
	cfg := vm.DefaultConfig(1 << 20)
	sys := vm.NewSystem(env, cfg)
	sys.AddSwap(q, 0)
	return sys
}

func TestMirrorWritesBothReplicas(t *testing.T) {
	r := newRig(t)
	want := pattern(4096, 1)
	r.run(func(p *sim.Proc) {
		w, err := r.queue.Submit(true, 0, append([]byte(nil), want...))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		r.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Fatalf("write: %v", err)
		}
	})
	for i, srv := range r.servers {
		if !bytes.Equal(srv.Store().Peek(0, 4096), want) {
			t.Errorf("replica %d missing the data", i)
		}
	}
	if r.mirror.Stats().Writes != 1 {
		t.Errorf("writes = %d", r.mirror.Stats().Writes)
	}
}

func TestMirrorReadRoundTrip(t *testing.T) {
	r := newRig(t)
	want := pattern(64*1024, 2)
	var got []byte
	r.run(func(p *sim.Proc) {
		w, _ := r.queue.Submit(true, 0, append([]byte(nil), want...))
		r.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Fatalf("write: %v", err)
		}
		buf := make([]byte, len(want))
		rd, _ := r.queue.Submit(false, 0, buf)
		r.queue.Unplug()
		if err := rd.Wait(p); err != nil {
			t.Fatalf("read: %v", err)
		}
		got = buf
	})
	if !bytes.Equal(got, want) {
		t.Error("mirror read corrupted data")
	}
}

func TestReadFailoverAfterPrimaryLoss(t *testing.T) {
	r := newRig(t)
	want := pattern(4096, 3)
	var got []byte
	r.run(func(p *sim.Proc) {
		w, _ := r.queue.Submit(true, 0, append([]byte(nil), want...))
		r.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Fatalf("write: %v", err)
		}
		r.killServer(0)
		buf := make([]byte, 4096)
		rd, _ := r.queue.Submit(false, 0, buf)
		r.queue.Unplug()
		if err := rd.Wait(p); err != nil {
			t.Fatalf("read after primary loss: %v", err)
		}
		got = buf
	})
	if !bytes.Equal(got, want) {
		t.Error("failover read returned wrong data")
	}
	if r.mirror.Stats().ReadFailovers != 1 {
		t.Errorf("failovers = %d, want 1", r.mirror.Stats().ReadFailovers)
	}
	if !r.mirror.Degraded() {
		t.Error("mirror should be degraded")
	}
}

func TestDegradedWritesContinue(t *testing.T) {
	r := newRig(t)
	want := pattern(4096, 4)
	r.run(func(p *sim.Proc) {
		r.killServer(1)
		w, _ := r.queue.Submit(true, 0, append([]byte(nil), want...))
		r.queue.Unplug()
		if err := w.Wait(p); err != nil {
			t.Fatalf("degraded write: %v", err)
		}
		buf := make([]byte, 4096)
		rd, _ := r.queue.Submit(false, 0, buf)
		r.queue.Unplug()
		if err := rd.Wait(p); err != nil {
			t.Fatalf("degraded read: %v", err)
		}
		if !bytes.Equal(buf, want) {
			t.Error("degraded round trip wrong data")
		}
	})
	if r.mirror.Stats().DegradedWrites == 0 {
		t.Error("degraded writes not counted")
	}
}

func TestBothReplicasLostFails(t *testing.T) {
	r := newRig(t)
	r.run(func(p *sim.Proc) {
		r.killServer(0)
		r.killServer(1)
		w, _ := r.queue.Submit(true, 0, pattern(4096, 5))
		r.queue.Unplug()
		if err := w.Wait(p); err == nil {
			t.Error("write with both replicas lost should fail")
		}
		rd, _ := r.queue.Submit(false, 0, make([]byte, 4096))
		r.queue.Unplug()
		if err := rd.Wait(p); err == nil {
			t.Error("read with both replicas lost should fail")
		}
	})
}

func TestSizeMismatchRejected(t *testing.T) {
	env := sim.NewEnv()
	f := ib.NewFabric(env, ib.DefaultConfig())
	a := hpbd.NewDevice(f, "a", hpbd.DefaultClientConfig())
	sa := hpbd.NewServer(f, "sa", hpbd.DefaultServerConfig(1<<20))
	a.ConnectServer(sa, 1<<20)
	b := hpbd.NewDevice(f, "b", hpbd.DefaultClientConfig())
	sb := hpbd.NewServer(f, "sb", hpbd.DefaultServerConfig(2<<20))
	b.ConnectServer(sb, 2<<20)
	if _, err := New(env, "md0", a, b); err == nil {
		t.Error("mismatched sizes accepted")
	}
	env.Close()
}

// Mirroring under a paging workload: the VM swaps through the mirror, one
// replica dies mid-run, and the workload still completes correctly.
func TestMirrorSurvivesServerLossUnderPaging(t *testing.T) {
	r := newRig(t)
	// Build a VM over the mirror.
	env := r.env
	vmSys := newVMOver(env, r.queue)
	as := vmSys.NewAddressSpace("w", 512) // 2 MB over ~1 MB memory
	r.env.Go("w", func(p *sim.Proc) {
		for i := 0; i < 512; i++ {
			if err := as.Touch(p, i, true); err != nil {
				t.Fatalf("Touch(%d): %v", i, err)
			}
			if i == 300 {
				r.killServer(0) // lose the primary mid-run
			}
		}
		// Re-touch the early pages: they must come back from replica 2.
		for i := 0; i < 128; i++ {
			if err := as.Touch(p, i, false); err != nil {
				t.Fatalf("refault Touch(%d): %v", i, err)
			}
		}
	})
	env.Run()
	env.Close()
	if !r.mirror.Degraded() {
		t.Error("mirror should be degraded after server loss")
	}
}
