// Package mirror provides a mirrored block device: writes are replicated
// to two child devices and reads fail over between them, so the loss of
// one remote memory server does not lose swapped pages. This implements
// the reliability direction the paper defers to related work (Felten &
// Zahorjan's remote paging reliability study and the Network RamDisk's
// mirroring), as a layered driver over any two blockdev.Drivers — two
// HPBD devices on different servers in the intended deployment.
package mirror

import (
	"errors"
	"fmt"

	"hpbd/internal/blockdev"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// Errors.
var (
	ErrSizeMismatch = errors.New("mirror: child devices differ in size")
	ErrBothFailed   = errors.New("mirror: both replicas failed")
)

// Stats counts mirror activity.
type Stats struct {
	Writes         int64
	Reads          int64
	ReadFailovers  int64
	DegradedWrites int64
}

// Device is a RAID-1 style mirror over two block drivers.
type Device struct {
	env       *sim.Env
	name      string
	primary   blockdev.Driver
	secondary blockdev.Driver

	primaryDown   bool
	secondaryDown bool
	stats         Stats

	// Optional telemetry, wired by SetTelemetry. All handles are nil-safe
	// so the default (untelemetered) mirror emits nothing.
	mWrites    *telemetry.Counter
	mReads     *telemetry.Counter
	mFailovers *telemetry.Counter
	mDegraded  *telemetry.Counter
	tracer     *telemetry.Tracer
}

// New builds a mirror over two equally sized children.
func New(env *sim.Env, name string, primary, secondary blockdev.Driver) (*Device, error) {
	if primary.Sectors() != secondary.Sectors() {
		return nil, fmt.Errorf("%w: %d vs %d sectors", ErrSizeMismatch, primary.Sectors(), secondary.Sectors())
	}
	return &Device{env: env, name: name, primary: primary, secondary: secondary}, nil
}

// SetTelemetry registers the mirror's counters with reg and routes
// replica-loss events to its tracer. Only fault-aware configurations
// call this, so default summaries are unchanged. A nil registry is a
// no-op.
func (m *Device) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m.mWrites = reg.Counter("mirror.writes")
	m.mReads = reg.Counter("mirror.reads")
	m.mFailovers = reg.Counter("mirror.read_failovers")
	m.mDegraded = reg.Counter("mirror.degraded_writes")
	m.tracer = reg.Tracer()
}

// Name implements blockdev.Driver.
func (m *Device) Name() string { return m.name }

// Sectors implements blockdev.Driver.
func (m *Device) Sectors() int64 { return m.primary.Sectors() }

// Stats returns a copy of the mirror statistics.
func (m *Device) Stats() Stats { return m.stats }

// Degraded reports whether a replica has been lost.
func (m *Device) Degraded() bool { return m.primaryDown || m.secondaryDown }

// Submit implements blockdev.Driver.
func (m *Device) Submit(p *sim.Proc, r *blockdev.Request) {
	if r.Write {
		m.submitWrite(p, r)
	} else {
		m.submitRead(p, r)
	}
}

// submitWrite replicates to both children concurrently; the write
// succeeds if at least one replica holds the data (the mirror then runs
// degraded), and fails only when both are gone.
func (m *Device) submitWrite(p *sim.Proc, r *blockdev.Request) {
	m.stats.Writes++
	m.mWrites.Inc()
	data := r.Data()
	var reqs [2]*blockdev.Request
	var down [2]*bool
	children := [2]blockdev.Driver{m.primary, m.secondary}
	down[0], down[1] = &m.primaryDown, &m.secondaryDown

	issued := 0
	for i, child := range children {
		if *down[i] {
			continue
		}
		req := blockdev.NewRequest(m.env, true, r.Sector, append([]byte(nil), data...))
		reqs[i] = req
		issued++
		if i == 0 {
			continue // primary is submitted on this process below
		}
		child := child
		m.env.Go(m.name+"-mirror-w", func(wp *sim.Proc) {
			child.Submit(wp, req)
		})
	}
	if issued == 0 {
		r.Complete(ErrBothFailed)
		return
	}
	if reqs[0] != nil {
		m.primary.Submit(p, reqs[0])
	}
	okCount := 0
	for i, req := range reqs {
		if req == nil {
			continue
		}
		if err := req.Wait(p); err != nil {
			if !*down[i] {
				*down[i] = true
				m.markReplicaDown(i, "write")
			}
		} else {
			okCount++
		}
	}
	if okCount == 0 {
		r.Complete(ErrBothFailed)
		return
	}
	if m.Degraded() {
		m.stats.DegradedWrites++
		m.mDegraded.Inc()
	}
	r.Complete(nil)
}

// markReplicaDown emits the replica-loss trace instant; side is 0 for
// the primary and 1 for the secondary.
func (m *Device) markReplicaDown(side int, op string) {
	if m.tracer == nil {
		return
	}
	which := "primary"
	if side == 1 {
		which = "secondary"
	}
	m.tracer.InstantArgs(m.name, "replica-down", map[string]any{"replica": which, "op": op})
}

// submitRead serves from the primary and fails over to the secondary.
func (m *Device) submitRead(p *sim.Proc, r *blockdev.Request) {
	m.stats.Reads++
	m.mReads.Inc()
	order := []struct {
		drv  blockdev.Driver
		down *bool
	}{
		{m.primary, &m.primaryDown},
		{m.secondary, &m.secondaryDown},
	}
	for i, c := range order {
		if *c.down {
			continue
		}
		buf := make([]byte, r.Bytes())
		req := blockdev.NewRequest(m.env, false, r.Sector, buf)
		c.drv.Submit(p, req)
		if err := req.Wait(p); err != nil {
			if !*c.down {
				*c.down = true
				m.markReplicaDown(i, "read")
			}
			if i == 0 {
				m.stats.ReadFailovers++
				m.mFailovers.Inc()
			}
			continue
		}
		r.Scatter(buf)
		r.Complete(nil)
		return
	}
	r.Complete(ErrBothFailed)
}
