// Package traceio captures the swap I/O request stream a workload
// generates and replays it against any block device. Captured traces
// decouple device evaluation from workload execution: one quicksort run
// yields a trace that can benchmark HPBD, NBD, and the disk with exactly
// the same request sequence (the methodology behind trace-driven studies
// like the paper's reference [4]).
package traceio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"hpbd/internal/blockdev"
	"hpbd/internal/sim"
)

// Op is one request in a trace.
type Op struct {
	// At is the submission time relative to trace start.
	At sim.Duration `json:"at"`
	// Write distinguishes swap-out from swap-in.
	Write bool `json:"write"`
	// Sector is the device address.
	Sector int64 `json:"sector"`
	// Bytes is the request size.
	Bytes int `json:"bytes"`
	// Sync marks requests the workload waited on (swap-ins); replay
	// blocks on them to preserve the dependency structure.
	Sync bool `json:"sync"`
}

// Trace is a captured request stream.
type Trace struct {
	Ops []Op `json:"ops"`
}

// FromLog converts a blockdev request log (captured with
// Queue.EnableLog) into a trace, keeping the real device addresses.
// Reads are marked synchronous (the faulting process waited); writes are
// asynchronous (write-back).
func FromLog(log []blockdev.RequestStat) *Trace {
	tr := &Trace{}
	if len(log) == 0 {
		return tr
	}
	t0 := log[0].At
	for _, r := range log {
		tr.Ops = append(tr.Ops, Op{
			At:     r.At.Sub(t0),
			Write:  r.Write,
			Sector: r.Sector,
			Bytes:  r.Bytes,
			Sync:   !r.Write,
		})
	}
	return tr
}

// Duration returns the trace's submission span.
func (t *Trace) Duration() sim.Duration {
	if len(t.Ops) == 0 {
		return 0
	}
	return t.Ops[len(t.Ops)-1].At
}

// Bytes returns total traffic in the trace.
func (t *Trace) Bytes() (reads, writes int64) {
	for _, op := range t.Ops {
		if op.Write {
			writes += int64(op.Bytes)
		} else {
			reads += int64(op.Bytes)
		}
	}
	return
}

// Save writes the trace as JSON.
func (t *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// Load reads a JSON trace.
func Load(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	for i, op := range t.Ops {
		if op.Bytes <= 0 || op.Bytes%blockdev.SectorSize != 0 || op.Sector < 0 || op.At < 0 {
			return nil, fmt.Errorf("traceio: invalid op %d: %+v", i, op)
		}
	}
	return &t, nil
}

// ErrTraceTooLarge reports a trace addressing beyond the replay device.
var ErrTraceTooLarge = errors.New("traceio: trace addresses beyond device end")

// ReplayStats summarizes a replay.
type ReplayStats struct {
	Ops      int
	Elapsed  sim.Duration
	SyncWait sim.Duration // time spent blocked on synchronous requests
}

// Replay drives the trace against q with original submission pacing:
// each op is submitted no earlier than its recorded offset from trace
// start, synchronous ops block until complete (as the faulting process
// did), and asynchronous ops are waited for at the end.
func Replay(p *sim.Proc, q *blockdev.Queue, t *Trace) (ReplayStats, error) {
	var st ReplayStats
	devSectors := q.Driver().Sectors()
	for _, op := range t.Ops {
		if op.Sector+int64(op.Bytes/blockdev.SectorSize) > devSectors {
			return st, ErrTraceTooLarge
		}
	}
	start := p.Now()
	var async []*blockdev.IO
	for _, op := range t.Ops {
		if wait := op.At - p.Now().Sub(start); wait > 0 {
			p.Sleep(wait)
		}
		io, err := q.Submit(op.Write, op.Sector, make([]byte, op.Bytes))
		if err != nil {
			return st, err
		}
		q.Unplug()
		st.Ops++
		if op.Sync {
			w0 := p.Now()
			if err := io.Wait(p); err != nil {
				return st, err
			}
			st.SyncWait += p.Now().Sub(w0)
		} else {
			async = append(async, io)
		}
	}
	for _, io := range async {
		if err := io.Wait(p); err != nil {
			return st, err
		}
	}
	st.Elapsed = p.Now().Sub(start)
	return st, nil
}

// ReplayFastAsPossible ignores the recorded pacing: every op is submitted
// as soon as its predecessor allows, measuring pure device capability.
func ReplayFastAsPossible(p *sim.Proc, q *blockdev.Queue, t *Trace) (ReplayStats, error) {
	flat := &Trace{Ops: make([]Op, len(t.Ops))}
	copy(flat.Ops, t.Ops)
	for i := range flat.Ops {
		flat.Ops[i].At = 0
	}
	return Replay(p, q, flat)
}
