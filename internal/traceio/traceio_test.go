package traceio

import (
	"bytes"
	"math/rand"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/cluster"
	"hpbd/internal/sim"
	"hpbd/internal/workload"
)

// capture runs a paging workload over HPBD with logging and returns the
// captured trace.
func capture(t *testing.T) *Trace {
	t.Helper()
	env := sim.NewEnv()
	node, err := cluster.Build(env, cluster.Config{
		MemBytes: 2 << 20, Swap: cluster.SwapHPBD, SwapBytes: 16 << 20,
		Servers: 1, LogRequests: true,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	q := workload.NewQuicksort(node.VM, "qs", 1<<20, rand.New(rand.NewSource(3)))
	env.Go("qs", func(p *sim.Proc) {
		node.Ready.Wait(p)
		if err := q.Run(p); err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	env.Run()
	env.Close()
	tr := FromLog(node.Queue.Stats().Log)
	if len(tr.Ops) == 0 {
		t.Fatal("captured empty trace")
	}
	return tr
}

func TestCaptureSaveLoadRoundTrip(t *testing.T) {
	tr := capture(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(got.Ops) != len(tr.Ops) {
		t.Fatalf("ops %d != %d", len(got.Ops), len(tr.Ops))
	}
	for i := range got.Ops {
		if got.Ops[i] != tr.Ops[i] {
			t.Fatalf("op %d differs", i)
		}
	}
	r, w := tr.Bytes()
	if r <= 0 || w <= 0 {
		t.Errorf("trace traffic %d/%d; a paged sort must read and write", r, w)
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	if _, err := Load(bytes.NewBufferString(`{"ops":[{"at":-5,"bytes":4096}]}`)); err == nil {
		t.Error("negative timestamp accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"ops":[{"at":0,"bytes":100}]}`)); err == nil {
		t.Error("non-sector-multiple size accepted")
	}
	if _, err := Load(bytes.NewBufferString(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

// Replaying a captured trace against different devices reproduces the
// paper's device ordering without re-running the workload.
func TestReplayAcrossDevices(t *testing.T) {
	tr := capture(t)
	run := func(kind cluster.SwapKind) sim.Duration {
		env := sim.NewEnv()
		node, err := cluster.Build(env, cluster.Config{
			MemBytes: 2 << 20, Swap: kind, SwapBytes: 16 << 20, Servers: 1,
		})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		var elapsed sim.Duration
		env.Go("replay", func(p *sim.Proc) {
			node.Ready.Wait(p)
			st, err := ReplayFastAsPossible(p, node.Queue, tr)
			if err != nil {
				t.Errorf("replay on %v: %v", kind, err)
				return
			}
			elapsed = st.Elapsed
		})
		env.Run()
		env.Close()
		return elapsed
	}
	hpbdT := run(cluster.SwapHPBD)
	diskT := run(cluster.SwapDisk)
	if hpbdT <= 0 || diskT <= 0 {
		t.Fatal("replay did not run")
	}
	if diskT <= hpbdT {
		t.Errorf("disk replay (%v) should be slower than HPBD (%v)", diskT, hpbdT)
	}
}

func TestReplayPacingRespectsTimestamps(t *testing.T) {
	// A trace with two ops 10ms apart must take at least 10ms to replay
	// with pacing, and far less as-fast-as-possible.
	tr := &Trace{Ops: []Op{
		{At: 0, Write: true, Sector: 0, Bytes: 4096},
		{At: 10 * sim.Millisecond, Write: true, Sector: 8, Bytes: 4096, Sync: true},
	}}
	run := func(paced bool) sim.Duration {
		env := sim.NewEnv()
		node, err := cluster.Build(env, cluster.Config{
			MemBytes: 1 << 20, Swap: cluster.SwapHPBD, SwapBytes: 4 << 20, Servers: 1,
		})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		var elapsed sim.Duration
		env.Go("replay", func(p *sim.Proc) {
			node.Ready.Wait(p)
			var st ReplayStats
			var rerr error
			if paced {
				st, rerr = Replay(p, node.Queue, tr)
			} else {
				st, rerr = ReplayFastAsPossible(p, node.Queue, tr)
			}
			if rerr != nil {
				t.Errorf("replay: %v", rerr)
			}
			elapsed = st.Elapsed
		})
		env.Run()
		env.Close()
		return elapsed
	}
	paced, fast := run(true), run(false)
	if paced < 10*sim.Millisecond {
		t.Errorf("paced replay %v < trace span 10ms", paced)
	}
	if fast >= 10*sim.Millisecond {
		t.Errorf("fast replay %v should ignore the 10ms gap", fast)
	}
}

func TestReplayBeyondDeviceFails(t *testing.T) {
	tr := &Trace{Ops: []Op{{At: 0, Write: true, Sector: 1 << 30, Bytes: 4096}}}
	env := sim.NewEnv()
	node, err := cluster.Build(env, cluster.Config{
		MemBytes: 1 << 20, Swap: cluster.SwapHPBD, SwapBytes: 4 << 20, Servers: 1,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	env.Go("replay", func(p *sim.Proc) {
		node.Ready.Wait(p)
		if _, err := Replay(p, node.Queue, tr); err != ErrTraceTooLarge {
			t.Errorf("err = %v, want ErrTraceTooLarge", err)
		}
	})
	env.Run()
	env.Close()
	_ = blockdev.SectorSize
}
