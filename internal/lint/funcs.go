package lint

// Shared infrastructure for the flow-sensitive protocol analyzers
// (creditbalance, handleonce, lockorder, hotalloc): a per-package
// function index with memoized CFGs, static call resolution inside the
// package, and the access-path identity the analyzers use to decide
// that two expressions name the same resource.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hpbd/internal/lint/analysis"
	"hpbd/internal/lint/analysis/cfg"
)

// funcIndex indexes one package's function declarations so analyzers can
// resolve calls to same-package functions and build effect summaries.
type funcIndex struct {
	fset  *token.FileSet
	info  *types.Info
	decls map[*types.Func]*ast.FuncDecl
	cfgs  map[*ast.FuncDecl]*cfg.CFG
}

func newFuncIndex(pass *analysis.Pass) *funcIndex {
	fi := &funcIndex{
		fset:  pass.Fset,
		info:  pass.TypesInfo,
		decls: map[*types.Func]*ast.FuncDecl{},
		cfgs:  map[*ast.FuncDecl]*cfg.CFG{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				fi.decls[fn] = fd
			}
		}
	}
	return fi
}

func (fi *funcIndex) cfgOf(fd *ast.FuncDecl) *cfg.CFG {
	g := fi.cfgs[fd]
	if g == nil {
		g = cfg.New(fd.Body)
		fi.cfgs[fd] = g
	}
	return g
}

// staticCallee resolves a call to a function declared (with a body) in
// this package. Calls through function-typed values, to other packages,
// and to builtins resolve to nil.
func (fi *funcIndex) staticCallee(call *ast.CallExpr) (*types.Func, *ast.FuncDecl) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, nil
	}
	fn, ok := fi.info.Uses[id].(*types.Func)
	if !ok {
		return nil, nil
	}
	fd := fi.decls[fn]
	if fd == nil {
		return nil, nil
	}
	return fn, fd
}

// resourceID resolves the stable identity an expression names: for a
// selector chain (ph.link.credits) the final field's *types.Var — so
// every path to the same field is one resource, whichever local it goes
// through — and for a plain identifier its object. Expressions with no
// static identity (calls, index expressions) resolve to nil.
func resourceID(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	}
	return nil
}

// baseIdent returns the identifier at the base of a selector chain
// (ph.parent.req -> ph), or the identifier itself, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// pathIs reports whether a package import path is exactly suffix or ends
// in "/"+suffix — how the analyzers name core packages (e.g.
// "internal/sim") without hard-coding the module prefix.
func pathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// methodOn matches call as a method call on a value of the named type
// declared in a package matching pkgSuffix, returning the receiver
// expression and method name.
func methodOn(info *types.Info, call *ast.CallExpr, pkgSuffix, typeName string) (recv ast.Expr, method string, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return nil, "", false
	}
	fn, okFn := info.Uses[sel.Sel].(*types.Func)
	if !okFn {
		return nil, "", false
	}
	sig, okSig := fn.Type().(*types.Signature)
	if !okSig || sig.Recv() == nil {
		return nil, "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, okN := t.(*types.Named)
	if !okN || named.Obj().Name() != typeName {
		return nil, "", false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !pathIs(pkg.Path(), pkgSuffix) {
		return nil, "", false
	}
	return sel.X, fn.Name(), true
}

// inspectLeaf walks n like ast.Inspect but does not descend into
// function literals: the *ast.FuncLit node itself is visited (so a
// caller can model capture semantics) and its body is pruned, keeping a
// block's events limited to code that actually executes in the block.
func inspectLeaf(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return true
		}
		if !f(x) {
			return false
		}
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		return true
	})
}

// exitPos returns the position a leak at an exit block should be
// reported at: the trailing return statement, or the closing brace of
// the function body when control falls off the end.
func exitPos(b *cfg.Block, body *ast.BlockStmt) token.Pos {
	if r := b.Return(); r != nil {
		return r.Pos()
	}
	if len(b.Nodes) > 0 {
		return b.Nodes[len(b.Nodes)-1].End()
	}
	return body.Rbrace
}

// funcDocHas reports whether a function's doc comment contains a line
// beginning with the given marker (e.g. "//hpbd:hotpath").
func funcDocHas(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, marker) {
			return true
		}
	}
	return false
}
