package lint

// The lockorder analyzer: mutex acquisitions in one package must follow
// a single partial order. Deadlock needs a cycle in the
// acquired-while-holding relation; the protocol layers (hpbd's
// membership mutex, netblock's write/pending/stage mutexes) are supposed
// to nest the same way on every path, and an inversion introduced on a
// rarely taken path is exactly the kind of bug no test tier reproduces
// deterministically.
//
// Locks are identified by access path (resourceID), so every instance
// of a field mutex is one lock — the conservative choice for ordering.
// Handled primitives: sync.Mutex / sync.RWMutex (Lock and RLock
// acquire, Unlock/RUnlock release) and the simulator's sim.Mutex
// (Lock(p) / Unlock).
//
// Per function, a forward must-hold dataflow (join = set intersection)
// tracks the held set. Acquiring B while holding A records the edge
// A -> B at the acquisition site; acquiring a lock already held is
// reported immediately as a recursive acquisition (both mutex types
// self-deadlock). Calling a same-package function while holding H adds
// H x mayAcquire(callee) edges at the call site, where mayAcquire is a
// transitive, memoized summary — cross-call nesting counts.
//
// The package's edges are then deduplicated (first occurrence in
// position order wins) and replayed in position order into a DAG; an
// edge that closes a cycle is reported at its site, naming the
// established path it inverts. The report lands on the later (in source
// order) acquisition, so the fix — or the //hpbd:allow — goes where the
// inversion was introduced.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"hpbd/internal/lint/analysis"
	"hpbd/internal/lint/analysis/cfg"
	"hpbd/internal/lint/analysis/dataflow"
)

// Lockorder reports mutex acquisitions that invert an observed order.
var Lockorder = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisitions must follow one deterministic partial order",
	Run:  runLockorder,
}

// lockState is the must-hold set: lock identity -> acquisition site.
type lockState map[types.Object]token.Pos

func (s lockState) clone() lockState {
	n := make(lockState, len(s))
	for k, v := range s {
		n[k] = v
	}
	return n
}

// lockJoin intersects: only locks held on every incoming path count.
func lockJoin(a, b lockState) lockState {
	n := lockState{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			n[k] = v
		}
	}
	return n
}

func lockEqual(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// lockEdge is one observed acquired-while-holding pair.
type lockEdge struct {
	from, to types.Object
	pos      token.Pos // position of the inner (second) acquisition
}

func runLockorder(pass *analysis.Pass) (interface{}, error) {
	lo := &lockorder{
		fi:         newFuncIndex(pass),
		pass:       pass,
		summaries:  map[*ast.FuncDecl]map[types.Object]bool{},
		inProgress: map[*ast.FuncDecl]bool{},
		edgeSeen:   map[[2]types.Object]bool{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				lo.checkFunc(fd)
			}
		}
	}
	lo.analyzeOrder()
	return nil, nil
}

type lockorder struct {
	fi   *funcIndex
	pass *analysis.Pass

	summaries  map[*ast.FuncDecl]map[types.Object]bool
	inProgress map[*ast.FuncDecl]bool

	edges    []lockEdge
	edgeSeen map[[2]types.Object]bool

	recDiags map[token.Pos]analysis.Diagnostic
}

// lockCall matches a mutex method call: sync.Mutex/RWMutex or sim.Mutex.
func (lo *lockorder) lockCall(call *ast.CallExpr) (lock types.Object, acquire, release bool) {
	for _, t := range [...]struct {
		pkg, typ string
	}{{"sync", "Mutex"}, {"sync", "RWMutex"}, {"internal/sim", "Mutex"}} {
		recv, m, ok := methodOn(lo.fi.info, call, t.pkg, t.typ)
		if !ok {
			continue
		}
		obj := resourceID(lo.fi.info, recv)
		if obj == nil {
			return nil, false, false
		}
		switch m {
		case "Lock", "RLock":
			return obj, true, false
		case "Unlock", "RUnlock":
			return obj, false, true
		}
		return nil, false, false
	}
	return nil, false, false
}

// addEdge records an acquired-while-holding pair, keeping the first
// position observed for each ordered pair.
func (lo *lockorder) addEdge(from, to types.Object, pos token.Pos) {
	key := [2]types.Object{from, to}
	if lo.edgeSeen[key] {
		// Keep the earliest position (fixpoint re-runs arrive unordered).
		for i := range lo.edges {
			if lo.edges[i].from == from && lo.edges[i].to == to && pos < lo.edges[i].pos {
				lo.edges[i].pos = pos
			}
		}
		return
	}
	lo.edgeSeen[key] = true
	lo.edges = append(lo.edges, lockEdge{from: from, to: to, pos: pos})
}

func (lo *lockorder) checkFunc(fd *ast.FuncDecl) {
	// Cheap pre-filter: no lock operations, no work.
	hasLocks := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, acq, rel := lo.lockCall(call); acq || rel {
				hasLocks = true
			}
			if _, callee := lo.fi.staticCallee(call); callee != nil {
				hasLocks = true
			}
		}
		return !hasLocks
	})
	if !hasLocks {
		return
	}

	g := lo.fi.cfgOf(fd)
	flow := dataflow.Flow[lockState]{
		Entry: lockState{},
		Transfer: func(b *cfg.Block, in lockState) lockState {
			out := in.clone()
			for _, node := range b.Nodes {
				lo.transferNode(node, out)
			}
			return out
		},
		Join:  lockJoin,
		Equal: lockEqual,
	}
	dataflow.Forward(g, flow)
}

func (lo *lockorder) transferNode(node ast.Node, out lockState) {
	inspectLeaf(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// defer mu.Unlock() releases at exit; for a must-hold order
			// analysis ignoring it is safe (held sets only shrink late).
			return false
		case *ast.FuncLit:
			return true // pruned: a literal runs later, under its own flow
		case *ast.CallExpr:
			if lock, acq, rel := lo.lockCall(n); lock != nil {
				if rel {
					delete(out, lock)
					return true
				}
				if acq {
					if _, held := out[lock]; held {
						if lo.recDiags == nil {
							lo.recDiags = map[token.Pos]analysis.Diagnostic{}
						}
						lo.recDiags[n.Pos()] = analysis.Diagnostic{
							Pos:     n.Pos(),
							Message: fmt.Sprintf("mutex %q is acquired while already held (self-deadlock)", lock.Name()),
						}
						return true
					}
					for held := range out {
						lo.addEdge(held, lock, n.Pos())
					}
					out[lock] = n.Pos()
					return true
				}
			}
			// A same-package callee may acquire locks while we hold ours.
			if _, callee := lo.fi.staticCallee(n); callee != nil && len(out) > 0 {
				for inner := range lo.mayAcquire(callee) {
					for held := range out {
						if held == inner {
							continue // recursive acquisition via a callee is
							// a real risk but indistinguishable from
							// release-then-call patterns; the direct case
							// above catches the common bug.
						}
						lo.addEdge(held, inner, n.Pos())
					}
				}
			}
		}
		return true
	})
}

// mayAcquire computes (memoized, recursion-guarded) the set of lock
// identities a function may acquire, transitively through same-package
// calls and literals.
func (lo *lockorder) mayAcquire(fd *ast.FuncDecl) map[types.Object]bool {
	if s, done := lo.summaries[fd]; done {
		return s
	}
	if lo.inProgress[fd] {
		return nil
	}
	lo.inProgress[fd] = true
	defer func() { lo.inProgress[fd] = false }()
	s := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lock, acq, _ := lo.lockCall(call); acq && lock != nil {
			s[lock] = true
			return true
		}
		if _, callee := lo.fi.staticCallee(call); callee != nil && callee != fd {
			for l := range lo.mayAcquire(callee) {
				s[l] = true
			}
		}
		return true
	})
	lo.summaries[fd] = s
	return s
}

// analyzeOrder replays the observed edges in source order into a DAG and
// reports every edge that closes a cycle against already-established
// ones.
func (lo *lockorder) analyzeOrder() {
	var diags []analysis.Diagnostic
	for _, d := range lo.recDiags {
		diags = append(diags, d)
	}

	sort.Slice(lo.edges, func(i, j int) bool { return lo.edges[i].pos < lo.edges[j].pos })
	adj := map[types.Object]map[types.Object]token.Pos{}
	// reaches reports whether to already reaches from through accepted
	// edges, returning one witness edge position on the path.
	var reaches func(from, to types.Object, visited map[types.Object]bool) (token.Pos, bool)
	reaches = func(from, to types.Object, visited map[types.Object]bool) (token.Pos, bool) {
		if from == to {
			return token.NoPos, true
		}
		visited[from] = true
		// Deterministic order: sort successors by position.
		type succ struct {
			obj types.Object
			pos token.Pos
		}
		var succs []succ
		for o, p := range adj[from] {
			succs = append(succs, succ{o, p})
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i].pos < succs[j].pos })
		for _, sc := range succs {
			if visited[sc.obj] {
				continue
			}
			if _, ok := reaches(sc.obj, to, visited); ok {
				return sc.pos, true
			}
		}
		return token.NoPos, false
	}
	for _, e := range lo.edges {
		if witness, cycles := reaches(e.to, e.from, map[types.Object]bool{}); cycles {
			estPos := witness
			if estPos == token.NoPos {
				// Direct inversion: the established edge is to -> from.
				estPos = adj[e.to][e.from]
			}
			d := analysis.Diagnostic{
				Pos: e.pos,
				Message: fmt.Sprintf("acquiring %q while holding %q inverts the lock order established at %s",
					e.to.Name(), e.from.Name(), lo.fi.fset.Position(estPos)),
			}
			if estPos.IsValid() {
				d.Related = []token.Pos{estPos}
			}
			diags = append(diags, d)
			continue // do not install the inverting edge
		}
		if adj[e.from] == nil {
			adj[e.from] = map[types.Object]token.Pos{}
		}
		if _, ok := adj[e.from][e.to]; !ok {
			adj[e.from][e.to] = e.pos
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Message < diags[j].Message
	})
	for _, d := range diags {
		lo.pass.Report(d)
	}
}
