package lint

// The creditbalance analyzer: every sim.Semaphore acquisition must be
// released on every path out of the acquiring function — or explicitly
// handed off. The HPBD flow-control protocol (DESIGN.md, "credit
// (water-mark) flow control") acquires a credit before posting a request
// and releases it when the reply (or the failure path) settles the
// request; a leaked credit silently throttles the device forever, and a
// double release breaks the guarantee that at most Credits requests are
// outstanding against the pre-posted receives.
//
// The analysis is a forward dataflow over the function's CFG. Each
// textual acquire site (Acquire or TryAcquire call) is an obligation
// with a three-point lattice:
//
//	held        acquired on some path and not yet discharged
//	transferred ownership handed to the in-flight request or a callee
//	released    discharged by a Release on this path
//
// joined pointwise with held > transferred > released (absence is the
// identity: a site not reached on a path stays unconstrained). The
// discharging events are:
//
//   - sem.Release(n): every site of the same semaphore becomes released.
//     If every reached site is already released the call is reported as
//     a double release.
//   - qp.PostSend / qp.PostSendBatch (internal/ib): every held site
//     becomes transferred — once the request is on the wire the credit
//     belongs to the in-flight request, and the receive path
//     (handleReply / handleErrorCQE / watchdog / failLink) releases it.
//     This is the protocol's ownership-transfer point; a missing
//     compensation on the post-error path is out of this analyzer's
//     scope.
//   - a call to a same-package function whose (transitive, memoized)
//     summary may release the semaphore — cross-call reasoning for
//     helpers like failLink and requeueRange.
//   - a function literal anywhere in the function whose body releases
//     the semaphore (a scheduled retry callback carries the obligation).
//   - defer sem.Release(n) discharges the semaphore's sites at every
//     exit.
//
// TryAcquire in the immediate `if` condition is handled edge-sensitively
// (the credit is held only along the success edge, on either side of a
// `!`); anywhere else its result is conservatively treated as acquired.
// At each reachable return, any site still held is reported — at the
// return, with the acquire site attached as a related position, so an
// //hpbd:allow on either line suppresses the finding.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"hpbd/internal/lint/analysis"
	"hpbd/internal/lint/analysis/cfg"
	"hpbd/internal/lint/analysis/dataflow"
)

// Creditbalance reports sim.Semaphore credits that leak on some path.
var Creditbalance = &analysis.Analyzer{
	Name: "creditbalance",
	Doc:  "sim.Semaphore acquires must be released or transferred on every path",
	Run:  runCreditbalance,
}

// Obligation lattice values; join takes the maximum.
const (
	credReleased uint8 = iota + 1
	credTransferred
	credHeld
)

type credState map[token.Pos]uint8

func (s credState) clone() credState {
	n := make(credState, len(s))
	for k, v := range s {
		n[k] = v
	}
	return n
}

func credJoin(a, b credState) credState {
	n := a.clone()
	for k, v := range b {
		if v > n[k] {
			n[k] = v
		}
	}
	return n
}

func credEqual(a, b credState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// credCond describes a block whose trailing condition is a TryAcquire.
type credCond struct {
	site    token.Pos
	negated bool
}

func runCreditbalance(pass *analysis.Pass) (interface{}, error) {
	fi := newFuncIndex(pass)
	cb := &creditbalance{fi: fi, pass: pass, summaries: map[*ast.FuncDecl]*credSummary{}}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				cb.checkFunc(fd)
			}
		}
	}
	cb.emit()
	return nil, nil
}

type creditbalance struct {
	fi        *funcIndex
	pass      *analysis.Pass
	summaries map[*ast.FuncDecl]*credSummary
	diags     []analysis.Diagnostic
	seen      map[string]bool
}

// report deduplicates across fixpoint re-runs of the transfer function.
func (cb *creditbalance) report(d analysis.Diagnostic) {
	if cb.seen == nil {
		cb.seen = map[string]bool{}
	}
	key := fmt.Sprintf("%d:%s", d.Pos, d.Message)
	if cb.seen[key] {
		return
	}
	cb.seen[key] = true
	cb.diags = append(cb.diags, d)
}

func (cb *creditbalance) emit() {
	sort.Slice(cb.diags, func(i, j int) bool {
		if cb.diags[i].Pos != cb.diags[j].Pos {
			return cb.diags[i].Pos < cb.diags[j].Pos
		}
		return cb.diags[i].Message < cb.diags[j].Message
	})
	for _, d := range cb.diags {
		cb.pass.Report(d)
	}
}

// semCall matches a method call on a sim.Semaphore value.
func (cb *creditbalance) semCall(call *ast.CallExpr) (group types.Object, method string, ok bool) {
	recv, m, isSem := methodOn(cb.fi.info, call, "internal/sim", "Semaphore")
	if !isSem {
		return nil, "", false
	}
	return resourceID(cb.fi.info, recv), m, true
}

func (cb *creditbalance) checkFunc(fd *ast.FuncDecl) {
	// Acquire sites, up front: site position -> semaphore identity.
	sites := map[token.Pos]types.Object{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // a literal's acquires belong to its own run
		}
		if call, isCall := n.(*ast.CallExpr); isCall {
			if g, m, isSem := cb.semCall(call); isSem && g != nil && (m == "Acquire" || m == "TryAcquire") {
				sites[call.Pos()] = g
			}
		}
		return true
	})
	if len(sites) == 0 {
		return
	}
	g := cb.fi.cfgOf(fd)

	// Deferred releases discharge their semaphore's sites at every exit.
	deferred := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, isDefer := n.(*ast.DeferStmt); isDefer {
			for gr := range cb.releasedIn(ds.Call) {
				deferred[gr] = true
			}
		}
		return true
	})

	// Blocks whose trailing condition is a (possibly negated) TryAcquire
	// get edge-sensitive treatment; their sites are skipped by Transfer.
	conds := map[*cfg.Block]credCond{}
	condSites := map[token.Pos]bool{}
	for _, b := range g.Blocks {
		if len(b.Nodes) == 0 || len(b.Succs) != 2 {
			continue
		}
		e, isExpr := b.Nodes[len(b.Nodes)-1].(ast.Expr)
		if !isExpr {
			continue
		}
		neg := false
		e = ast.Unparen(e)
		if u, isU := e.(*ast.UnaryExpr); isU && u.Op == token.NOT {
			neg = true
			e = ast.Unparen(u.X)
		}
		call, isCall := e.(*ast.CallExpr)
		if !isCall {
			continue
		}
		if gr, m, isSem := cb.semCall(call); isSem && gr != nil && m == "TryAcquire" {
			conds[b] = credCond{site: call.Pos(), negated: neg}
			condSites[call.Pos()] = true
		}
	}

	flow := dataflow.Flow[credState]{
		Entry: credState{},
		Transfer: func(b *cfg.Block, in credState) credState {
			out := in.clone()
			for _, n := range b.Nodes {
				cb.transferNode(n, sites, condSites, out)
			}
			return out
		},
		Edge: func(b *cfg.Block, succIdx int, out credState) credState {
			c, isCond := conds[b]
			if !isCond {
				return out
			}
			// succ 0 is the true edge. TryAcquire holds the credit on its
			// success edge: true when unnegated, false under a `!`.
			acquired := (succIdx == 0) != c.negated
			if !acquired {
				return out
			}
			n := out.clone()
			n[c.site] = credHeld
			return n
		},
		Join:  credJoin,
		Equal: credEqual,
	}
	res := dataflow.Forward(g, flow)

	for _, b := range g.Blocks {
		if len(b.Succs) != 0 || b.Panics {
			continue
		}
		out, reached := res.Out[b]
		if !reached {
			continue
		}
		pos := exitPos(b, fd.Body)
		for site, st := range out {
			if st != credHeld || deferred[sites[site]] {
				continue
			}
			cb.report(analysis.Diagnostic{
				Pos: pos,
				Message: fmt.Sprintf("credit on %q acquired at line %d may not be released on every path to this return",
					sites[site].Name(), cb.fi.fset.Position(site).Line),
				Related: []token.Pos{site},
			})
		}
	}
}

// transferNode applies one leaf node's credit effects to the state.
func (cb *creditbalance) transferNode(node ast.Node, sites map[token.Pos]types.Object, condSites map[token.Pos]bool, out credState) {
	inspectLeaf(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			return false // discharged at exits, not at the defer statement
		case *ast.FuncLit:
			// A literal that releases the semaphore carries the obligation
			// (scheduled retry callbacks); its sites become transferred.
			for gr := range cb.releasedIn(n.Body) {
				transferGroup(out, sites, gr)
			}
			return true // pruned by inspectLeaf anyway
		case *ast.CallExpr:
			if gr, m, isSem := cb.semCall(n); isSem {
				switch m {
				case "Acquire":
					if gr != nil {
						out[n.Pos()] = credHeld
					}
				case "TryAcquire":
					// Outside an if-condition the result is conservatively
					// treated as acquired.
					if gr != nil && !condSites[n.Pos()] {
						out[n.Pos()] = credHeld
					}
				case "Release":
					if gr == nil {
						return true
					}
					fired, allReleased := groupSites(out, sites, gr)
					if len(fired) > 0 && allReleased {
						cb.report(analysis.Diagnostic{
							Pos:     n.Pos(),
							Message: fmt.Sprintf("credit on %q is already released on every path reaching this Release (double release)", gr.Name()),
						})
					}
					for _, site := range fired {
						out[site] = credReleased
					}
				}
				return true
			}
			if _, m, isQP := methodOn(cb.fi.info, n, "internal/ib", "QP"); isQP && (m == "PostSend" || m == "PostSendBatch") {
				// Ownership transfer: the posted request carries the credit.
				for site, st := range out {
					if st == credHeld {
						out[site] = credTransferred
					}
				}
				return true
			}
			if _, fd := cb.fi.staticCallee(n); fd != nil {
				sum := cb.summary(fd)
				for gr := range sum.objs {
					transferGroup(out, sites, gr)
				}
				for idx := range sum.params {
					if idx < len(n.Args) {
						if gr := resourceID(cb.fi.info, n.Args[idx]); gr != nil {
							transferGroup(out, sites, gr)
						}
					}
				}
			}
		}
		return true
	})
}

// groupSites lists the reached sites of one semaphore and whether all of
// them are already released.
func groupSites(s credState, sites map[token.Pos]types.Object, gr types.Object) (fired []token.Pos, allReleased bool) {
	allReleased = true
	for site, st := range s {
		if sites[site] != gr {
			continue
		}
		fired = append(fired, site)
		if st != credReleased {
			allReleased = false
		}
	}
	return fired, allReleased
}

// transferGroup moves the semaphore's held sites to transferred: a
// callee (or captured literal) that may release it now owns them.
func transferGroup(s credState, sites map[token.Pos]types.Object, gr types.Object) {
	for site, st := range s {
		if st == credHeld && sites[site] == gr {
			s[site] = credTransferred
		}
	}
}

// credSummary records which semaphores a function may release: package
// or field identities, and parameter indices for semaphore-typed params.
type credSummary struct {
	objs   map[types.Object]bool
	params map[int]bool
}

// summary computes (memoized, recursion-guarded) the may-release summary
// of a same-package function, including its literals and same-package
// transitive callees.
func (cb *creditbalance) summary(fd *ast.FuncDecl) *credSummary {
	if s, done := cb.summaries[fd]; done {
		if s == nil {
			return &credSummary{} // recursion in progress: assume nothing
		}
		return s
	}
	cb.summaries[fd] = nil
	s := &credSummary{objs: map[types.Object]bool{}, params: map[int]bool{}}

	paramIdx := map[types.Object]int{}
	if fn, isFn := cb.fi.info.Defs[fd.Name].(*types.Func); isFn {
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			paramIdx[sig.Params().At(i)] = i
		}
	}
	record := func(gr types.Object) {
		if gr == nil {
			return
		}
		if i, isParam := paramIdx[gr]; isParam {
			s.params[i] = true
		} else {
			s.objs[gr] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if gr, m, isSem := cb.semCall(call); isSem && m == "Release" {
			record(gr)
			return true
		}
		if _, callee := cb.fi.staticCallee(call); callee != nil && callee != fd {
			sub := cb.summary(callee)
			for gr := range sub.objs {
				record(gr)
			}
			for idx := range sub.params {
				if idx < len(call.Args) {
					record(resourceID(cb.fi.info, call.Args[idx]))
				}
			}
		}
		return true
	})
	cb.summaries[fd] = s
	return s
}

// releasedIn collects the semaphore identities released anywhere inside
// n (including nested literals and same-package callees).
func (cb *creditbalance) releasedIn(n ast.Node) map[types.Object]bool {
	groups := map[types.Object]bool{}
	ast.Inspect(n, func(x ast.Node) bool {
		call, isCall := x.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if gr, m, isSem := cb.semCall(call); isSem && m == "Release" && gr != nil {
			groups[gr] = true
			return true
		}
		if _, callee := cb.fi.staticCallee(call); callee != nil {
			sum := cb.summary(callee)
			for gr := range sum.objs {
				groups[gr] = true
			}
			for idx := range sum.params {
				if idx < len(call.Args) {
					if gr := resourceID(cb.fi.info, call.Args[idx]); gr != nil {
						groups[gr] = true
					}
				}
			}
		}
		return true
	})
	return groups
}
