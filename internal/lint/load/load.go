// Package load turns Go package patterns into type-checked syntax trees
// using only the standard library and the go command. It is the loading
// half of the hpbd-vet driver: `go list -deps -export` compiles every
// dependency and hands back export data from the build cache, and the gc
// importer feeds that to go/types while the target packages themselves are
// parsed from source with comments (the analyzers need comment directives
// and positions). This is the same strategy golang.org/x/tools/go/packages
// uses, reimplemented here because the tree must build without network
// access to fetch x/tools.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	PkgPath   string // import path, e.g. "hpbd/internal/sim"
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File // parsed with comments
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Env captures the result of one `go list` run: export data for every
// package in the dependency closure, plus the target package metadata.
// The export map can be reused to type-check out-of-module sources (the
// analysistest fixtures) against the module's compiled packages.
type Env struct {
	Fset    *token.FileSet
	exports map[string]string // import path -> export data file
	targets []*listPackage
}

// List runs `go list -deps -export` in dir for the given patterns and
// returns the loading environment. Patterns follow go tool conventions
// ("./...", "hpbd/internal/sim", ...).
func List(dir string, patterns ...string) (*Env, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	env := &Env{Fset: token.NewFileSet(), exports: make(map[string]string)}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			env.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			env.targets = append(env.targets, &q)
		}
	}
	return env, nil
}

// Importer returns a go/types importer that resolves imports from the
// export data gathered by List.
func (e *Env) Importer() types.Importer {
	return importer.ForCompiler(e.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := e.exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// NewInfo returns a types.Info with every map allocated, as analyzers
// expect.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Targets type-checks every target package from source and returns them in
// `go list` order. Non-test GoFiles only: the determinism contract exempts
// test files, so analyzers never need them.
func (e *Env) Targets() ([]*Package, error) {
	imp := e.Importer()
	var out []*Package
	for _, t := range e.targets {
		if len(t.CgoFiles) > 0 {
			// cgo packages cannot be type-checked from raw source; fall
			// back to skipping (none exist in this module today).
			continue
		}
		pkg, err := e.check(imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// CheckDir parses and type-checks a single directory of Go files as the
// package importPath, resolving imports against this Env's export data.
// It is the entry point the analysistest harness uses for fixture
// packages that live under testdata and are invisible to go list.
func (e *Env) CheckDir(importPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %v", err)
	}
	var files []string
	for _, ent := range ents {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".go") {
			files = append(files, ent.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	return e.check(e.Importer(), importPath, dir, files)
}

func (e *Env) check(imp types.Importer, importPath, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(e.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, e.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", importPath, err)
	}
	return &Package{
		PkgPath:   importPath,
		Dir:       dir,
		Fset:      e.Fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
