package lint

import (
	"go/ast"
	"go/types"

	"hpbd/internal/lint/analysis"
)

// wallClockFuncs are the package time functions that read or wait on the
// real clock. Types like time.Duration remain fine everywhere: the sim
// layer deliberately mirrors them.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// Walltime forbids real-clock reads in simulation-facing packages. All
// timing inside the deterministic kernel must come from sim.Time
// (Env.Now/Proc.Now); a single time.Now in a hot path silently decouples
// figures from the virtual clock. The suite config exempts the real TCP
// stack (internal/netblock, cmd/hpbd-server); justified uses elsewhere
// (e.g. pacing a live demo) carry an //hpbd:allow walltime directive.
var Walltime = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid time.Now/Since/Sleep/After/Tick and timer construction in " +
		"sim-facing packages; virtual time must come from sim.Env/sim.Proc",
	Run: runWalltime,
}

func runWalltime(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // a method like Timer.Reset, not the package func
			}
			pass.ReportRangef(sel, "wall-clock call time.%s in sim-facing code; use sim.Env.Now/Proc.Now (or annotate with //hpbd:allow walltime -- reason)", sel.Sel.Name)
			return true
		})
	}
	return nil, nil
}
