package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hpbd/internal/lint"
	"hpbd/internal/lint/analysis"
	"hpbd/internal/lint/analysistest"
	"hpbd/internal/lint/load"
)

// TestFixtures exercises each analyzer against its testdata package: every
// fixture contains both violating lines (with `// want` expectations) and
// clean lines that must stay silent, plus //hpbd:allow suppressions.
func TestFixtures(t *testing.T) {
	cases := []struct {
		a       *analysis.Analyzer
		fixture string
	}{
		{lint.Walltime, "walltime"},
		{lint.Walltime, "faultsimtime"},
		{lint.Globalrand, "globalrand"},
		{lint.Mapiter, "mapiter"},
		{lint.Simblock, "simblock"},
		{lint.Telemetrynil, "telemetrynil"},
		{lint.Creditbalance, "creditbalance"},
		{lint.Handleonce, "handleonce"},
		{lint.Lockorder, "lockorder"},
		{lint.Hotalloc, "hotalloc"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			analysistest.Run(t, tc.a, tc.fixture)
		})
	}
}

// TestTreeIsClean runs the full suite over the whole module exactly as CI
// does: the determinism contract must hold tree-wide, so the suite lands
// green and stays green.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over the whole module")
	}
	root := moduleRoot(t)
	env, err := load.List(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := env.Targets()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	findings, err := lint.Run(pkgs, lint.Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestMalformedDirectives verifies that a typo'd //hpbd:allow fails loudly
// instead of silently not suppressing.
func TestMalformedDirectives(t *testing.T) {
	root := moduleRoot(t)
	env, err := load.List(root, "./internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := env.CheckDir("hpbd/lintfixture/directive",
		filepath.Join(root, "internal", "lint", "testdata", "src", "directive"))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run([]*load.Package{pkg}, lint.Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, f := range findings {
		if f.Analyzer == "directive" {
			msgs = append(msgs, f.Message)
		}
	}
	want := []string{
		`unknown analyzer "waltime" in //hpbd:allow directive`,
		"missing reason: use //hpbd:allow <analyzer> -- <reason>",
		"directive names no analyzer",
	}
	for _, w := range want {
		found := false
		for _, m := range msgs {
			if m == w {
				found = true
			}
		}
		if !found {
			t.Errorf("expected a %q finding, got %v", w, msgs)
		}
	}
}

// checkScratch type-checks src as a throwaway fixture package and runs
// one analyzer over it.
func checkScratch(t *testing.T, a *analysis.Analyzer, src string) []lint.Finding {
	t.Helper()
	root := moduleRoot(t)
	env, err := load.List(root, "./internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := env.CheckDir("hpbd/lintfixture/scratch", dir)
	if err != nil {
		t.Fatalf("scratch fixture: %v\n%s", err, src)
	}
	findings, err := lint.RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// dropLine removes the (single) source line containing marker —
// the seeded-mutation knife.
func dropLine(t *testing.T, src, marker string) string {
	t.Helper()
	lines := strings.Split(src, "\n")
	var out []string
	dropped := 0
	for _, l := range lines {
		if strings.Contains(l, marker) {
			dropped++
			continue
		}
		out = append(out, l)
	}
	if dropped != 1 {
		t.Fatalf("dropLine(%q): dropped %d lines, want 1", marker, dropped)
	}
	return strings.Join(out, "\n")
}

const creditScratch = `package scratch

import "hpbd/internal/sim"

func send(p *sim.Proc, sem *sim.Semaphore, fail bool) {
	sem.Acquire(p, 1)
	if fail {
		sem.Release(1) // compensate
		return
	}
	sem.Release(1)
}
`

const handleScratch = `package scratch

type req struct{ id uint64 }

func (r *req) Complete() {}

type dev struct{ pending map[uint64]*req }

func (d *dev) track(h uint64, r *req) {
	d.pending[h] = r
}

func (d *dev) requeue(h, nh uint64) {
	r, ok := d.pending[h]
	if !ok {
		return
	}
	delete(d.pending, h)
	_ = r
	d.pending[nh] = r // resettle
}
`

// TestSeededMutations pins that the protocol analyzers catch the bug
// classes they exist for: hand-deleting the compensating Release from
// a balanced credit flow, or the re-insertion after a tracked-map
// delete, must produce a finding — and the unmutated code must not.
func TestSeededMutations(t *testing.T) {
	if fs := checkScratch(t, lint.Creditbalance, creditScratch); len(fs) != 0 {
		t.Errorf("unmutated credit scratch: unexpected findings %v", fs)
	}
	mutated := dropLine(t, creditScratch, "// compensate")
	fs := checkScratch(t, lint.Creditbalance, mutated)
	if len(fs) == 0 {
		t.Error("creditbalance missed the deleted Release")
	}
	for _, f := range fs {
		if !strings.Contains(f.Message, "may not be released on every path") {
			t.Errorf("unexpected finding: %s", f)
		}
	}

	if fs := checkScratch(t, lint.Handleonce, handleScratch); len(fs) != 0 {
		t.Errorf("unmutated handle scratch: unexpected findings %v", fs)
	}
	mutated = dropLine(t, handleScratch, "// resettle")
	fs = checkScratch(t, lint.Handleonce, mutated)
	if len(fs) == 0 {
		t.Error("handleonce missed the deleted re-insertion")
	}
	for _, f := range fs {
		if !strings.Contains(f.Message, "may reach this return") {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// TestAllowOnAcquireLine pins the chosen suppression semantics for
// flow-sensitive findings: the leak diagnostic lands on the exit line,
// but it carries the acquire site as a related position, and a
// //hpbd:allow directive covering EITHER line suppresses it. The
// directive belongs on the acquire line — that is where the protocol
// knowledge ("this credit is settled elsewhere") lives.
func TestAllowOnAcquireLine(t *testing.T) {
	leaky := dropLine(t, creditScratch, "// compensate")
	if fs := checkScratch(t, lint.Creditbalance, leaky); len(fs) != 1 {
		t.Fatalf("baseline leak: want 1 finding, got %v", fs)
	}
	annotated := strings.Replace(leaky,
		"\tsem.Acquire(p, 1)",
		"\t//hpbd:allow creditbalance -- test: settled elsewhere\n\tsem.Acquire(p, 1)", 1)
	if annotated == leaky {
		t.Fatal("annotation not applied")
	}
	if fs := checkScratch(t, lint.Creditbalance, annotated); len(fs) != 0 {
		t.Errorf("directive on the acquire line should suppress the exit-line report, got %v", fs)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}
