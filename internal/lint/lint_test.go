package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"hpbd/internal/lint"
	"hpbd/internal/lint/analysis"
	"hpbd/internal/lint/analysistest"
	"hpbd/internal/lint/load"
)

// TestFixtures exercises each analyzer against its testdata package: every
// fixture contains both violating lines (with `// want` expectations) and
// clean lines that must stay silent, plus //hpbd:allow suppressions.
func TestFixtures(t *testing.T) {
	cases := []struct {
		a       *analysis.Analyzer
		fixture string
	}{
		{lint.Walltime, "walltime"},
		{lint.Walltime, "faultsimtime"},
		{lint.Globalrand, "globalrand"},
		{lint.Mapiter, "mapiter"},
		{lint.Simblock, "simblock"},
		{lint.Telemetrynil, "telemetrynil"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			analysistest.Run(t, tc.a, tc.fixture)
		})
	}
}

// TestTreeIsClean runs the full suite over the whole module exactly as CI
// does: the determinism contract must hold tree-wide, so the suite lands
// green and stays green.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over the whole module")
	}
	root := moduleRoot(t)
	env, err := load.List(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := env.Targets()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	findings, err := lint.Run(pkgs, lint.Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestMalformedDirectives verifies that a typo'd //hpbd:allow fails loudly
// instead of silently not suppressing.
func TestMalformedDirectives(t *testing.T) {
	root := moduleRoot(t)
	env, err := load.List(root, "./internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := env.CheckDir("hpbd/lintfixture/directive",
		filepath.Join(root, "internal", "lint", "testdata", "src", "directive"))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run([]*load.Package{pkg}, lint.Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, f := range findings {
		if f.Analyzer == "directive" {
			msgs = append(msgs, f.Message)
		}
	}
	want := []string{
		`unknown analyzer "waltime" in //hpbd:allow directive`,
		"missing reason: use //hpbd:allow <analyzer> -- <reason>",
		"directive names no analyzer",
	}
	for _, w := range want {
		found := false
		for _, m := range msgs {
			if m == w {
				found = true
			}
		}
		if !found {
			t.Errorf("expected a %q finding, got %v", w, msgs)
		}
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}
