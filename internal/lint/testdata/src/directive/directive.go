// Fixture for directive validation: malformed //hpbd:allow comments must
// surface as findings so typo'd suppressions cannot silently not apply.
package directive

import "time"

func misspelled() {
	_ = time.Now() //hpbd:allow waltime -- analyzer name is misspelled, must be reported
}

func missingReason() {
	_ = time.Now() //hpbd:allow walltime
}

func namesNoAnalyzer() {
	_ = time.Now() //hpbd:allow -- a reason with no analyzer list
}
