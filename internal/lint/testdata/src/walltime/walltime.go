// Fixture for the walltime analyzer: wall-clock reads are flagged, virtual
// time, time types/constants, timer methods, and directive-annotated uses
// are not.
package walltime

import (
	"time"

	"hpbd/internal/sim"
)

func bad() {
	_ = time.Now()                       // want "wall-clock call time.Now"
	time.Sleep(time.Second)              // want "wall-clock call time.Sleep"
	_ = time.Since(time.Time{})          // want "wall-clock call time.Since"
	_ = time.After(time.Second)          // want "wall-clock call time.After"
	_ = time.Tick(time.Second)           // want "wall-clock call time.Tick"
	_ = time.NewTimer(time.Second)       // want "wall-clock call time.NewTimer"
	_ = time.NewTicker(time.Second)      // want "wall-clock call time.NewTicker"
	_ = time.AfterFunc(time.Second, bad) // want "wall-clock call time.AfterFunc"
}

func good(env *sim.Env, p *sim.Proc) {
	_ = env.Now()            // virtual clock: fine
	_ = p.Now()              // virtual clock: fine
	p.Sleep(sim.Millisecond) // virtual sleep: fine
	var d time.Duration = time.Second
	_ = d                            // time types and constants: fine
	tm := time.NewTimer(time.Second) //hpbd:allow walltime -- fixture: justified real pacing
	tm.Reset(time.Second)            // method on a timer, not a package func: fine
	_ = time.Now()                   //hpbd:allow walltime -- fixture: demo pacing against the real clock
}

//hpbd:allow walltime -- fixture: directive on the preceding line also suppresses
func goodPrecedingLine() time.Time { return time.Now() }
