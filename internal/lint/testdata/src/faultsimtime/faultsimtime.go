// Fixture pinning the determinism contract for fault injection: a fault
// injector must schedule and measure on virtual sim-time only. Wall-clock
// reads anywhere in the injection or recovery path would make fault
// replays non-reproducible, so they are flagged; the injector-shaped
// sim-time code below must stay silent.
package faultsimtime

import (
	"time"

	"hpbd/internal/sim"
)

// fault mirrors the shape of faultsim.Fault: everything is sim-typed.
type fault struct {
	at  sim.Duration
	dur sim.Duration
}

// badInjector schedules faults off the wall clock — every read flagged.
func badInjector(faults []fault) {
	start := time.Now() // want "wall-clock call time.Now"
	for range faults {
		time.Sleep(time.Millisecond) // want "wall-clock call time.Sleep"
	}
	_ = time.Since(start)          // want "wall-clock call time.Since"
	<-time.After(time.Millisecond) // want "wall-clock call time.After"
}

// goodInjector is the real shape: a sim proc sleeps virtual durations
// between injections and stamps everything with the virtual clock.
func goodInjector(env *sim.Env, faults []fault) {
	env.Go("faultsim", func(p *sim.Proc) {
		var now sim.Duration
		for _, f := range faults {
			if f.at > now {
				p.Sleep(f.at - now) // virtual sleep: fine
				now = f.at
			}
			_ = p.Now()   // virtual clock: fine
			_ = env.Now() // virtual clock: fine
			_ = f.dur
		}
	})
}

// goodTypes shows time *types* and constants remain usable (the wire
// format and CLI flags parse durations); only wall-clock *reads* are
// contraband.
func goodTypes() time.Duration {
	const horizon = 10 * time.Millisecond
	return horizon
}
