// Fixture for the hotalloc analyzer: functions marked //hpbd:hotpath
// must not allocate. Covers the builtin allocators, map/slice
// literals, escaping composite literals, closures, goroutines, string
// concatenation, allocating conversions, implicit interface boxing,
// allocation through a same-package callee, the allowances (value
// composites, &var, &composite as a direct call argument, unmarked
// functions), and //hpbd:allow suppression.
package hotalloc

type point struct {
	x, y int
}

func use(p *point) {}

func sink(v interface{}) {}

//hpbd:hotpath
func builtins(n int) {
	b := make([]byte, n) // want "make allocates on the hot path"
	_ = append(b, 1)     // want "append may grow its backing array on the hot path"
	p := new(point)      // want "new allocates on the hot path"
	_ = p
}

//hpbd:hotpath
func literals() {
	m := map[int]int{} // want "map literal allocates on the hot path"
	_ = m
	s := []int{1, 2} // want "slice literal allocates on the hot path"
	_ = s
	go func() {}() // want "starting a goroutine allocates on the hot path"
}

//hpbd:hotpath
func escapes() *point {
	return &point{} // want "&composite literal escapes to the heap on the hot path"
}

//hpbd:hotpath
func closure() func() {
	return func() {} // want "function literal allocates a closure on the hot path"
}

//hpbd:hotpath
func concat(a, b string) string {
	return a + b // want "string concatenation allocates on the hot path"
}

//hpbd:hotpath
func concatAssign(s string) string {
	s += "!" // want "string concatenation allocates on the hot path"
	return s
}

//hpbd:hotpath
func conversions(s string, b []byte) {
	_ = []byte(s) // want "string-to-slice conversion allocates on the hot path"
	_ = string(b) // want "slice-to-string conversion allocates on the hot path"
}

//hpbd:hotpath
func boxes(x int, p *point) {
	sink(x) // want "implicit conversion to interface allocates on the hot path"
	sink(p) // pointers box without allocating
}

func grow(s []int) []int {
	return append(s, 1)
}

//hpbd:hotpath
func callsAllocating(s []int) {
	_ = grow(s) // want "calls grow, which allocates at .*hotalloc.go:\\d+"
}

// The allowances: value composites, &var, &composite as a direct call
// argument, index assignment, and calls to non-allocating helpers.
//
//hpbd:hotpath
func fine(buf []byte, i int, v byte) {
	buf[i] = v
	pt := point{x: i}
	_ = pt
	q := &i
	_ = q
	use(&point{x: i})
}

// Unmarked functions allocate freely.
func warmup(n int) []byte {
	return make([]byte, n)
}

//hpbd:hotpath
func suppressed(n int) {
	//hpbd:allow hotalloc -- fixture: one-time warm-up growth is acceptable here
	_ = make([]byte, n)
}
