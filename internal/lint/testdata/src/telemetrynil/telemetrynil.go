// Fixture for the telemetrynil analyzer: struct-literal or new()
// construction of telemetry handles is flagged; registry constructors and
// nil handles are not.
package telemetrynil

import (
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

func bad() {
	_ = telemetry.Counter{}           // want "telemetry.Counter constructed as a struct literal"
	_ = &telemetry.Gauge{}            // want "telemetry.Gauge constructed as a struct literal"
	_ = telemetry.Histogram{}         // want "telemetry.Histogram constructed as a struct literal"
	_ = &telemetry.Registry{}         // want "telemetry.Registry constructed as a struct literal"
	_ = new(telemetry.Counter)        // want "new\\(telemetry.Counter\\) bypasses the nil-safe registry"
	_ = new(telemetry.Tracer)         // want "new\\(telemetry.Tracer\\) bypasses the nil-safe registry"
	_ = telemetry.Lifecycle{}         // want "telemetry.Lifecycle constructed as a struct literal"
	_ = &telemetry.FlightRecorder{}   // want "telemetry.FlightRecorder constructed as a struct literal"
	_ = new(telemetry.Lifecycle)      // want "new\\(telemetry.Lifecycle\\) bypasses the nil-safe registry"
	_ = new(telemetry.FlightRecorder) // want "new\\(telemetry.FlightRecorder\\) bypasses the nil-safe registry"
}

func good(env *sim.Env) {
	reg := telemetry.New(env) // the constructor: fine
	c := reg.Counter("reads") // registry accessor: fine
	c.Inc()
	var nilReg *telemetry.Registry // nil handle, nil-safe by design: fine
	nilReg.Counter("x").Inc()
	_ = reg.Gauge("depth")
	_ = reg.Histogram("latency")
	_ = reg.EnableTracing()
	lc := reg.EnableLifecycle(64)  // registry constructor: fine
	_ = lc.Flight()                // accessor off the registry-built analyzer: fine
	var nilLC *telemetry.Lifecycle // nil handle, nil-safe by design: fine
	nilLC.Flight().DumpOnEvent("x")
	_ = &telemetry.Counter{} //hpbd:allow telemetrynil -- fixture: annotated escape hatch
}
