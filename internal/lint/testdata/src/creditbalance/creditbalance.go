// Fixture for the creditbalance analyzer: a sim.Semaphore credit
// acquired in a function must be released or transferred on every path
// out of it. Covers the stall idiom (TryAcquire in an if condition),
// ownership transfer via PostSend, callee may-release summaries,
// capture by a release callback, deferred release, double release, and
// //hpbd:allow suppression at both the report and the acquire line.
package creditbalance

import (
	"errors"

	"hpbd/internal/ib"
	"hpbd/internal/sim"
)

var errFail = errors.New("fail")

// The basic leak: the error path returns without releasing.
func leakOnErrorPath(p *sim.Proc, sem *sim.Semaphore, fail bool) error {
	sem.Acquire(p, 1)
	if fail {
		return errFail // want "credit on \"sem\" acquired at line \\d+ may not be released on every path to this return"
	}
	sem.Release(1)
	return nil
}

// TryAcquire in an if condition is edge-sensitive: the credit is held
// only on the success edge.
func leakOnSuccessEdge(sem *sim.Semaphore) {
	if sem.TryAcquire(1) {
		return // want "credit on \"sem\" acquired at line \\d+ may not be released on every path to this return"
	}
	// Failure edge: nothing held, falling off the end is fine.
}

// The client's stall idiom: TryAcquire, and block on Acquire only when
// it fails. Exactly one credit is held afterwards, and released.
func stallThenAcquire(p *sim.Proc, sem *sim.Semaphore) {
	if !sem.TryAcquire(1) {
		sem.Acquire(p, 1)
	}
	sem.Release(1)
}

// Posting the request transfers the credit to the in-flight request;
// the reply path owns the release.
func transferOnPost(p *sim.Proc, qp *ib.QP, sem *sim.Semaphore) error {
	sem.Acquire(p, 1)
	return qp.PostSend(p, ib.SendWR{})
}

func releaseHelper(sem *sim.Semaphore) {
	sem.Release(1)
}

// A same-package callee whose summary may release the semaphore
// discharges the obligation on the path that calls it.
func transferToHelper(p *sim.Proc, sem *sim.Semaphore, fail bool) {
	sem.Acquire(p, 1)
	if fail {
		releaseHelper(sem)
		return
	}
	sem.Release(1)
}

// A function literal that releases the semaphore carries the
// obligation (a scheduled retry callback).
func literalCarries(p *sim.Proc, sem *sim.Semaphore, sched func(func())) {
	sem.Acquire(p, 1)
	sched(func() { sem.Release(1) })
}

// defer discharges at every exit.
func deferredRelease(p *sim.Proc, sem *sim.Semaphore, fail bool) error {
	sem.Acquire(p, 1)
	defer sem.Release(1)
	if fail {
		return errFail
	}
	return nil
}

// Releasing when every reached site is already released breaks the
// at-most-Credits-outstanding guarantee.
func doubleRelease(p *sim.Proc, sem *sim.Semaphore) {
	sem.Acquire(p, 1)
	sem.Release(1)
	sem.Release(1) // want "credit on \"sem\" is already released on every path reaching this Release \\(double release\\)"
}

// Suppression at the reporting line.
func suppressedAtReturn(p *sim.Proc, sem *sim.Semaphore, fail bool) {
	sem.Acquire(p, 1)
	if fail {
		return //hpbd:allow creditbalance -- fixture: the shutdown path drops the device and its window
	}
	sem.Release(1)
}

// Suppression at the acquire line: the diagnostic lands on the return,
// but the acquire site rides along as a related position, so the
// directive covers it from here.
func suppressedAtAcquire(p *sim.Proc, sem *sim.Semaphore, fail bool) {
	//hpbd:allow creditbalance -- fixture: leak is intentional, annotated where the credit is taken
	sem.Acquire(p, 1)
	if fail {
		return
	}
	sem.Release(1)
}
