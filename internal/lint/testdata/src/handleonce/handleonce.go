// Fixture for the handleonce analyzer: a handle removed from an
// in-flight tracking map must be settled exactly once. Covers the
// completion verbs (Complete, Trigger), re-insertion, channel and
// queue hand-off, callee summaries, settlement from a captured
// callback, key identity across deletes, the delete-by-field idiom,
// double settlement, and //hpbd:allow suppression via the delete site.
package handleonce

type req struct {
	id   uint64
	done bool
}

func (r *req) Complete() {}

type dev struct {
	pending map[uint64]*req
}

// The basic drop: the early-out path loses the request.
func (d *dev) drop(h uint64) {
	r, ok := d.pending[h]
	if !ok {
		return
	}
	delete(d.pending, h)
	if r.done {
		return // want "handle \"r\" removed from \"pending\" at line \\d+ may reach this return without being completed, requeued or handed off"
	}
	r.Complete()
}

// Settling twice completes the request twice.
func (d *dev) double(h uint64) {
	r := d.pending[h]
	delete(d.pending, h)
	r.Complete()
	r.Complete() // want "handle \"r\" already settled at line \\d+ is settled again here"
}

// Re-insertion under a fresh handle: the map owns it again (the
// failover requeue discipline).
func (d *dev) requeue(h, nh uint64) {
	r := d.pending[h]
	delete(d.pending, h)
	d.pending[nh] = r
}

func finish(r *req) {
	r.Complete()
}

// A same-package callee whose summary settles the parameter.
func (d *dev) viaHelper(h uint64) {
	r := d.pending[h]
	delete(d.pending, h)
	finish(r)
}

// Hand-off through a channel settles.
func (d *dev) viaChannel(h uint64, done chan *req) {
	r := d.pending[h]
	delete(d.pending, h)
	done <- r
}

// A captured callback that settles the handle is the settlement (a
// scheduled requeue); the capture itself is not a leak.
func (d *dev) viaCallback(h uint64, sched func(func())) {
	r := d.pending[h]
	delete(d.pending, h)
	sched(func() { r.Complete() })
}

// Returning the handle moves ownership to the caller.
func (d *dev) handOff(h uint64) *req {
	r := d.pending[h]
	delete(d.pending, h)
	return r
}

// A delete under a provably different key does not detach a binding
// made under another key.
func (d *dev) twoKeys(h1, h2 uint64) {
	a := d.pending[h1]
	_ = a
	delete(d.pending, h2)
}

// delete(m, x.field) detaches x itself: the handle was reached through
// the struct, not a prior lookup.
func (d *dev) fieldKey(r *req) {
	delete(d.pending, r.id)
	r.Complete()
}

func (d *dev) fieldKeyLeak(r *req, dropIt bool) {
	delete(d.pending, r.id)
	if dropIt {
		return // want "handle \"r\" removed from \"pending\" at line \\d+ may reach this return without being completed, requeued or handed off"
	}
	r.Complete()
}

// Suppression rides the delete site: the report lands at the exit, but
// the delete position is related, so the directive covers it here.
func (d *dev) suppressed(h uint64) {
	r := d.pending[h]
	_ = r
	//hpbd:allow handleonce -- fixture: the shutdown path intentionally drops the entry
	delete(d.pending, h)
}

// Trigger is a settlement verb: the server parks a waiter event in a
// map and wakes it after removing it.
type waiter struct {
	woken bool
}

func (w *waiter) Trigger() {}

type srv struct {
	waits map[uint64]*waiter
}

func (s *srv) park(id uint64, w *waiter) {
	s.waits[id] = w
}

func (s *srv) wake(id uint64) {
	w, ok := s.waits[id]
	if !ok {
		return
	}
	delete(s.waits, id)
	w.Trigger()
}

func (s *srv) wakeLeak(id uint64) {
	w, ok := s.waits[id]
	if !ok {
		return
	}
	delete(s.waits, id)
	_ = w // want "handle \"w\" removed from \"waits\" at line \\d+ may reach this return without being completed, requeued or handed off"
}
