// Fixture for the lockorder analyzer: mutex acquisitions must follow
// one package-wide partial order. Covers sync.Mutex, sync.RWMutex and
// sim.Mutex, direct and cross-call inversions, recursive acquisition,
// and //hpbd:allow suppression at the inverting acquisition.
package lockorder

import (
	"sync"

	"hpbd/internal/sim"
)

type pair struct {
	mu sync.RWMutex
	a  sync.Mutex
	b  sync.Mutex
}

// Establishes the order a -> b (and, below, mu -> a).
func (p *pair) abOrder() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

// RLock participates in the order like any acquisition.
func (p *pair) read() {
	p.mu.RLock()
	p.a.Lock()
	p.a.Unlock()
	p.mu.RUnlock()
}

// The direct inversion: b is held while a is acquired, against the
// order abOrder established.
func (p *pair) baInversion() {
	p.b.Lock()
	p.a.Lock() // want "acquiring \"a\" while holding \"b\" inverts the lock order established at .*lockorder.go:\\d+"
	p.a.Unlock()
	p.b.Unlock()
}

type rec struct {
	m sync.Mutex
}

// Both mutex flavors self-deadlock on recursive acquisition.
func (r *rec) recursive() {
	r.m.Lock()
	r.m.Lock() // want "mutex \"m\" is acquired while already held \\(self-deadlock\\)"
	r.m.Unlock()
	r.m.Unlock()
}

type simPair struct {
	m1 *sim.Mutex
	m2 *sim.Mutex
}

// Establishes m1 -> m2 for the simulator's mutex.
func (s *simPair) order12(p *sim.Proc) {
	s.m1.Lock(p)
	s.m2.Lock(p)
	s.m2.Unlock()
	s.m1.Unlock()
}

func (s *simPair) lock1(p *sim.Proc) {
	s.m1.Lock(p)
	s.m1.Unlock()
}

// Calling a same-package function that may acquire m1 while holding m2
// is the same inversion, one call deep.
func (s *simPair) inversionViaCall(p *sim.Proc) {
	s.m2.Lock(p)
	s.lock1(p) // want "acquiring \"m1\" while holding \"m2\" inverts the lock order established at .*lockorder.go:\\d+"
	s.m2.Unlock()
}

// Consistent cross-call nesting is fine: holding a around a callee
// that takes b matches the established a -> b order.
func (p *pair) lockB() {
	p.b.Lock()
	p.b.Unlock()
}

func (p *pair) callWhileHoldingA() {
	p.a.Lock()
	p.lockB()
	p.a.Unlock()
}

type quiesced struct {
	c sync.Mutex
	d sync.Mutex
}

func (q *quiesced) cdOrder() {
	q.c.Lock()
	q.d.Lock()
	q.d.Unlock()
	q.c.Unlock()
}

// An annotated inversion: the shutdown path knows d's users are gone.
func (q *quiesced) dcSuppressed() {
	q.d.Lock()
	//hpbd:allow lockorder -- fixture: shutdown path, d is quiesced before c is taken
	q.c.Lock()
	q.c.Unlock()
	q.d.Unlock()
}
