// Fixture for the globalrand analyzer: package-level math/rand functions
// (the process-global source) are flagged; seeded *rand.Rand values and
// the constructors are not.
package globalrand

import (
	"math/rand"

	"hpbd/internal/sim"
)

func bad() {
	_ = rand.Intn(10)                  // want "global math/rand source via rand.Intn"
	_ = rand.Float64()                 // want "global math/rand source via rand.Float64"
	_ = rand.Int63n(100)               // want "global math/rand source via rand.Int63n"
	_ = rand.Perm(4)                   // want "global math/rand source via rand.Perm"
	rand.Shuffle(3, func(i, j int) {}) // want "global math/rand source via rand.Shuffle"
	buf := make([]byte, 8)
	_, _ = rand.Read(buf) // want "global math/rand source via rand.Read"
}

func good(env *sim.Env) {
	rnd := rand.New(rand.NewSource(42)) // constructor with explicit seed: fine
	_ = rnd.Intn(10)                    // method on a seeded source: fine
	_ = env.Rand.Float64()              // the sim env's deterministic source: fine
	_ = rand.Intn(10)                   //hpbd:allow globalrand -- fixture: annotated escape hatch
}
