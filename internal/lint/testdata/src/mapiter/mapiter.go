// Fixture for the mapiter analyzer: map loops with order-dependent
// effects are flagged; commutative accumulations, collect-then-sort, and
// annotated loops are not.
package mapiter

import "sort"

type conn struct{ id int }

func (c *conn) Close() {}

func badCallsInOrder(conns map[int]*conn) {
	for _, c := range conns { // want "map iteration order is random"
		c.Close()
	}
}

func badLastKeyWins(m map[string]int) string {
	last := ""
	for k := range m { // want "map iteration order is random"
		last = k
	}
	return last
}

func badBreak(m map[string]int) int {
	n := 0
	for range m { // want "map iteration order is random"
		n++
		if n > 3 {
			break
		}
	}
	return n
}

func badAppendNoCall(m map[string]int, out []string) []string {
	for k := range m { // want "collected into \"out\" but never sorted"
		out = append(out, k)
	}
	return out
}

func goodCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

func goodSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodIndexWrite(src map[string]int, dst map[string]int) {
	for k, v := range src {
		dst[k] = v * 2
	}
}

func goodDelete(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func goodAnnotated(conns map[int]*conn) {
	//hpbd:allow mapiter -- fixture: close order genuinely does not matter here
	for _, c := range conns {
		c.Close()
	}
}

func goodSliceRange(xs []int) int {
	n := 0
	for _, v := range xs { // slices have stable order: never flagged
		n += v
	}
	return n
}
