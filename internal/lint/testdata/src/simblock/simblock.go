// Fixture for the simblock analyzer: real concurrency inside *sim.Proc
// functions is flagged; sim primitives and real concurrency outside proc
// context are not.
package simblock

import (
	"sync"

	"hpbd/internal/sim"
)

func badChannelOps(p *sim.Proc, ch chan int) {
	ch <- 1  // want "raw channel send"
	_ = <-ch // want "raw channel receive"
	select { // want "select in a \\*sim.Proc function"
	case <-ch: // want "raw channel receive"
	default:
	}
	for range ch { // want "range over a real channel"
	}
}

func badGoAndSync(p *sim.Proc, mu *sync.Mutex, wg *sync.WaitGroup) {
	go func() {}() // want "go statement in a \\*sim.Proc function"
	mu.Lock()      // want "sync.Mutex.Lock"
	mu.Unlock()    // want "sync.Mutex.Unlock"
	wg.Wait()      // want "sync.WaitGroup.Wait"
}

func badNestedLit(env *sim.Env, ch chan int) {
	env.Go("worker", func(p *sim.Proc) {
		<-ch // want "raw channel receive"
	})
}

func goodSimPrimitives(p *sim.Proc, env *sim.Env) {
	q := sim.NewWaitQueue(env)
	q.Wait(p)
	sem := sim.NewSemaphore(env, 2)
	sem.Acquire(p, 1)
	sem.Release(1)
	mu := sim.NewMutex(env)
	mu.Lock(p)
	mu.Unlock()
	c := sim.NewChan[int](env, 4)
	c.Send(p, 1)
	p.Sleep(sim.Millisecond)
}

func goodOutsideProc(ch chan int, mu *sync.Mutex) {
	// No *sim.Proc parameter: real concurrency is this function's business.
	mu.Lock()
	ch <- 1
	<-ch
	mu.Unlock()
	go func() {}()
}

func goodAnnotated(p *sim.Proc, ch chan int) {
	<-ch //hpbd:allow simblock -- fixture: bridging to a real goroutine at the sim boundary
}
