package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hpbd/internal/lint/analysis"
)

// Mapiter flags `for range` over maps in deterministic packages unless the
// loop is provably order-insensitive or feeds the canonical
// collect-keys-then-sort pattern. Go randomizes map iteration order on
// purpose, so any map-ordered scheduling decision (completing pending
// requests, closing connections, unplugging queues) makes two runs with
// the same seed diverge.
//
// A loop body is accepted as order-insensitive when its only effects are
// commutative accumulations: increments/decrements, compound assignments
// with commutative operators (+= *= |= &= ^=), plain assignments whose
// value does not depend on the loop variables, writes indexed by the loop
// key, appends into a local slice, and delete(m, k) — optionally guarded
// by call-free conditions. Appended-to slices must be sorted (or handed to
// a sort) later in the same block, otherwise the collect itself leaks map
// order. Everything else needs sorted keys or an
// //hpbd:allow mapiter -- reason directive.
var Mapiter = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "flag map iteration whose effects depend on Go's randomized map " +
		"order; sort keys first or keep the body commutative",
	Run: runMapiter,
}

func runMapiter(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			sc := &bodyScan{pass: pass, loopVars: map[types.Object]bool{}}
			sc.addLoopVar(rs.Key)
			sc.addLoopVar(rs.Value)
			if !sc.stmts(rs.Body.List) {
				pass.Reportf(rs.For, "map iteration order is random and this loop's effects depend on it; sort the keys first or annotate with //hpbd:allow mapiter -- reason")
				return true
			}
			for _, obj := range sc.collects {
				if !sortedAfter(pass, parents, rs, obj) {
					pass.Reportf(rs.For, "map keys/values collected into %q but never sorted in this block; the slice inherits random map order", obj.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

// bodyScan walks a range body checking every statement against the
// order-insensitivity rules, recording slices used as collect targets.
type bodyScan struct {
	pass     *analysis.Pass
	loopVars map[types.Object]bool
	collects []types.Object
}

func (s *bodyScan) addLoopVar(e ast.Expr) {
	if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
		if obj := s.pass.TypesInfo.Defs[id]; obj != nil {
			s.loopVars[obj] = true
		} else if obj := s.pass.TypesInfo.Uses[id]; obj != nil {
			s.loopVars[obj] = true // `for k = range m` reusing an outer var
		}
	}
}

func (s *bodyScan) stmts(list []ast.Stmt) bool {
	for _, st := range list {
		if !s.stmt(st) {
			return false
		}
	}
	return true
}

func (s *bodyScan) stmt(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.IncDecStmt:
		return s.pure(st.X)
	case *ast.AssignStmt:
		return s.assign(st)
	case *ast.ExprStmt:
		// delete(m, k) commutes: each iteration touches a distinct key.
		if call, ok := st.X.(*ast.CallExpr); ok && s.isBuiltin(call, "delete") {
			return true
		}
		return false
	case *ast.IfStmt:
		if st.Init != nil || !s.pure(st.Cond) {
			return false
		}
		if !s.stmts(st.Body.List) {
			return false
		}
		if st.Else != nil {
			if blk, ok := st.Else.(*ast.BlockStmt); ok {
				return s.stmts(blk.List)
			}
			return s.stmt(st.Else)
		}
		return true
	case *ast.BlockStmt:
		return s.stmts(st.List)
	case *ast.BranchStmt:
		// continue skips one commutative iteration: fine. break/goto make
		// the visited subset depend on order: not fine.
		return st.Tok == token.CONTINUE
	case *ast.DeclStmt, *ast.EmptyStmt:
		return true
	default:
		return false
	}
}

func (s *bodyScan) assign(st *ast.AssignStmt) bool {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return false
	}
	lhs, rhs := st.Lhs[0], st.Rhs[0]
	switch st.Tok {
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation: v may depend on the loop variables.
		return s.pure(rhs) && s.pure(lhs)
	case token.ASSIGN, token.DEFINE:
		// x = append(x, <pure>): the collect pattern; remember the target.
		if call, ok := rhs.(*ast.CallExpr); ok && s.isBuiltin(call, "append") {
			id, ok := lhs.(*ast.Ident)
			if !ok || len(call.Args) == 0 {
				return false
			}
			base, ok := call.Args[0].(*ast.Ident)
			if !ok || base.Name != id.Name {
				return false
			}
			for _, a := range call.Args[1:] {
				if !s.pure(a) {
					return false
				}
			}
			if obj := s.objOf(id); obj != nil {
				s.collects = append(s.collects, obj)
			}
			return true
		}
		// m2[k] = <pure>: distinct keys commute.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			return s.pure(ix) && s.pure(rhs)
		}
		// x = <pure, loop-invariant>: same value every iteration.
		if _, ok := lhs.(*ast.Ident); ok {
			return s.pure(rhs) && !s.usesLoopVar(rhs)
		}
		return false
	default:
		return false
	}
}

// pure reports whether e has no function calls (pure builtins and type
// conversions excepted) and no channel operations.
func (s *bodyScan) pure(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if s.isConversion(n) || s.isBuiltin(n, "len") || s.isBuiltin(n, "cap") {
				return true
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		}
		return true
	})
	return pure
}

func (s *bodyScan) usesLoopVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := s.pass.TypesInfo.Uses[id]; obj != nil && s.loopVars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

func (s *bodyScan) objOf(id *ast.Ident) types.Object {
	if obj := s.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return s.pass.TypesInfo.Defs[id]
}

func (s *bodyScan) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = s.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func (s *bodyScan) isConversion(call *ast.CallExpr) bool {
	tv, ok := s.pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

// buildParents records each node's parent so sortedAfter can find the
// statement list enclosing a range loop.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// sortedAfter reports whether some statement after rs in its enclosing
// statement list both mentions obj and performs a sort (a call into
// package sort or slices, or any callee whose name contains "sort").
func sortedAfter(pass *analysis.Pass, parents map[ast.Node]ast.Node, rs *ast.RangeStmt, obj types.Object) bool {
	list := enclosingStmts(parents, rs)
	idx := -1
	for i, st := range list {
		if st == ast.Stmt(rs) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, st := range list[idx+1:] {
		if stmtSorts(pass, st, obj) {
			return true
		}
	}
	return false
}

func enclosingStmts(parents map[ast.Node]ast.Node, n ast.Node) []ast.Stmt {
	switch p := parents[n].(type) {
	case *ast.BlockStmt:
		return p.List
	case *ast.CaseClause:
		return p.Body
	case *ast.CommClause:
		return p.Body
	}
	return nil
}

func stmtSorts(pass *analysis.Pass, st ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if !callIsSort(pass, call) || !mentionsObj(pass, call, obj) {
			return true
		}
		found = true
		return false
	})
	return found
}

func callIsSort(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
				return true
			}
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}

func mentionsObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
