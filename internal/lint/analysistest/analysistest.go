// Package analysistest runs lint analyzers over fixture packages under
// testdata/src, in the spirit of golang.org/x/tools/go/analysis/analysistest:
// each fixture line that should produce a diagnostic carries a
//
//	// want "regexp"
//
// comment (several per line allowed), and the harness fails the test on
// any unmatched diagnostic or unsatisfied expectation. Fixture packages
// may import anything in the module (hpbd/internal/sim, ...) — they are
// type-checked against the export data of a single shared `go list` run.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hpbd/internal/lint"
	"hpbd/internal/lint/analysis"
	"hpbd/internal/lint/load"
)

var (
	envOnce sync.Once
	env     *load.Env
	envErr  error
)

// moduleEnv loads export data for the whole module once per test binary.
func moduleEnv() (*load.Env, error) {
	envOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			envErr = err
			return
		}
		env, envErr = load.List(root, "./...")
	})
	return env, envErr
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Run type-checks testdata/src/<fixture> (relative to the test's working
// directory) and applies a to it, comparing diagnostics to the fixture's
// `// want` expectations.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	e, err := moduleEnv()
	if err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(cwd, "testdata", "src", fixture)
	pkg, err := e.CheckDir("hpbd/lintfixture/"+fixture, dir)
	if err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}

	wants := collectWants(t, pkg)
	findings, err := lint.RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		key := posKey{filepath.Base(f.Pos.Filename), f.Pos.Line}
		if !wants.match(key, f.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, exp.rx)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

type wantMap map[posKey][]*expectation

func (w wantMap) match(key posKey, msg string) bool {
	for _, exp := range w[key] {
		if !exp.matched && exp.rx.MatchString(msg) {
			exp.matched = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

func collectWants(t *testing.T, pkg *load.Package) wantMap {
	t.Helper()
	wants := wantMap{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey{filepath.Base(pos.Filename), pos.Line}
				for _, q := range splitQuoted(t, pos.String(), m[1]) {
					rx, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, q, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses the space-separated double-quoted regexps after
// `// want`, applying Go unquoting so fixtures can escape metacharacters.
func splitQuoted(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: malformed want clause %q (expected quoted regexp): %v", pos, s, err)
		}
		unq, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: bad quoting in want clause %q: %v", pos, q, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[len(q):])
	}
	return out
}
