package lint

import (
	"go/ast"
	"go/types"

	"hpbd/internal/lint/analysis"
)

// Simblock flags real concurrency primitives inside simulated processes.
// A function that receives a *sim.Proc runs on the cooperative virtual
// scheduler, which guarantees exactly one process executes at a time; a
// raw channel operation, select, sync.Mutex/WaitGroup call, or spawned
// goroutine inside such a function blocks (or races) the single real
// thread the whole simulation shares and deadlocks the kernel. Blocking
// must go through sim primitives (Proc.Sleep, sim.WaitQueue, sim.Chan,
// Env.Go). The sim package itself — which implements parking on real
// channels — is exempted by the suite config.
var Simblock = &analysis.Analyzer{
	Name: "simblock",
	Doc: "flag raw channel ops, select, go statements and sync.* calls in " +
		"functions that receive a *sim.Proc; use sim primitives instead",
	Run: runSimblock,
}

const simPkgPath = "hpbd/internal/sim"

func runSimblock(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil || !hasProcParam(pass, ftype) {
				return true
			}
			checkProcBody(pass, body)
			return true // still descend: nested lits get their own check
		})
	}
	return nil, nil
}

// hasProcParam reports whether the function signature includes a *sim.Proc
// parameter.
func hasProcParam(pass *analysis.Pass, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if isSimProcPtr(t) {
			return true
		}
	}
	return false
}

func isSimProcPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Proc" && obj.Pkg() != nil && obj.Pkg().Path() == simPkgPath
}

func checkProcBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested literal with its own *sim.Proc parameter is checked
			// independently; don't report its body twice.
			return !hasProcParam(pass, n.Type)
		case *ast.SendStmt:
			pass.Reportf(n.Arrow, "raw channel send in a *sim.Proc function blocks the cooperative scheduler; use sim.Chan or sim.WaitQueue")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.OpPos, "raw channel receive in a *sim.Proc function blocks the cooperative scheduler; use sim.Chan or sim.WaitQueue")
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Select, "select in a *sim.Proc function blocks the cooperative scheduler; use sim primitives")
		case *ast.GoStmt:
			pass.Reportf(n.Go, "go statement in a *sim.Proc function spawns a real goroutine outside the virtual scheduler; use Env.Go")
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					pass.Reportf(n.For, "range over a real channel in a *sim.Proc function blocks the cooperative scheduler; use sim.Chan")
				}
			}
		case *ast.CallExpr:
			if name := syncMethodName(pass, n); name != "" {
				pass.Reportf(n.Pos(), "%s in a *sim.Proc function blocks the real thread all simulated processes share; use sim.WaitQueue/sim.Semaphore", name)
			}
		}
		return true
	})
}

// syncMethodName returns "sync.Mutex.Lock"-style names for calls to
// methods on package sync types, or "".
func syncMethodName(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return ""
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	return "sync." + obj.Name() + "." + sel.Sel.Name
}
