// Package analysis is a dependency-free subset of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check, a Pass
// presents one type-checked package to it, and diagnostics flow back
// through Pass.Report. The shapes mirror x/tools deliberately so the hpbd
// analyzers can migrate to the upstream driver mechanically if the
// dependency ever becomes available; until then internal/lint/load supplies
// packages using only the standard library and the go command.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //hpbd:allow directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph description printed by hpbd-vet -help.
	Doc string

	// Run applies the check to a single package and reports diagnostics
	// via pass.Report. The interface{} result mirrors x/tools Facts
	// plumbing; the hpbd analyzers return nil.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass presents one type-checked package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional: end of the offending region
	Category string    // optional: sub-category within the analyzer
	Message  string

	// Related lists other positions that participate in the finding —
	// for a flow-sensitive analyzer, typically the position where the
	// leaked resource was acquired while Pos is the exit that leaks it.
	// A //hpbd:allow directive covering ANY related position suppresses
	// the diagnostic, so an allowance can sit on the acquire line even
	// though the report lands on a distant return.
	Related []token.Pos
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRangef reports a formatted diagnostic covering node.
func (p *Pass) ReportRangef(node ast.Node, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: node.Pos(), End: node.End(), Message: fmt.Sprintf(format, args...)})
}
