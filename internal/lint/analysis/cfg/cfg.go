// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, mirroring a (deliberately small) subset of
// golang.org/x/tools/go/cfg using only the standard library.
//
// A CFG is a list of basic blocks; Blocks[0] is the entry. Each block
// holds the statements and condition expressions that execute in it, in
// order, and edges to its successors. Conventions:
//
//   - A block whose last node is an if/for condition expression has
//     Succs[0] = the true/then branch and Succs[1] = the false/else
//     branch (loops: Succs[0] = body, Succs[1] = done).
//   - A range header block holds the ranged-over expression and has
//     Succs[0] = body, Succs[1] = done.
//   - switch/type-switch/select heads have one successor per clause (in
//     source order) plus the done block when no default/empty clause
//     exists.
//   - A reachable block with no successors is a function exit: either
//     its last node is a *ast.ReturnStmt, or control falls off the end
//     of the body. Blocks terminated by a call to panic (or an empty
//     select) are marked Panics and are not return exits.
//   - After a terminator (return, branch, panic) construction continues
//     in a fresh unreachable block, so unreachable code does not
//     corrupt reachable states; dataflow never visits such blocks.
//
// Composite statements are decomposed: only condition/tag expressions
// and leaf statements appear in Nodes, never a node whose children span
// other blocks. The one deliberate exception is that leaf statements may
// contain *ast.FuncLit values; a function literal's body is NOT part of
// this function's flow, and analyzers walking block nodes must not
// descend into one implicitly.
package cfg

import (
	"go/ast"
	"go/token"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every basic block; Blocks[0] is the entry. Blocks
	// unreachable from the entry may be present (dead code after
	// terminators); a dataflow pass seeded at the entry never visits
	// them.
	Blocks []*Block
}

// Block is one basic block.
type Block struct {
	Index int        // position in CFG.Blocks
	Nodes []ast.Node // statements and condition expressions, in order
	Succs []*Block   // successor edges (see package comment for order)

	// Panics marks a block terminated by a call to the panic builtin or
	// by an empty select: control leaves the function abnormally (or
	// never), so the block is not a return exit.
	Panics bool
}

// Return returns the block's trailing *ast.ReturnStmt, or nil if the
// block does not end in an explicit return.
func (b *Block) Return() *ast.ReturnStmt {
	if len(b.Nodes) == 0 {
		return nil
	}
	r, _ := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
	return r
}

// New builds the CFG of one function body.
func New(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}, lblocks: map[string]*lblock{}}
	b.current = b.newBlock()
	b.stmtList(body.List)
	return b.cfg
}

// lblock records the blocks a label can transfer control to.
type lblock struct {
	gotoBlock     *Block // the labeled statement itself
	breakBlock    *Block // after the labeled loop/switch/select
	continueBlock *Block // the labeled loop's post/header
}

// targets is the stack of enclosing break/continue/fallthrough targets.
type targets struct {
	tail             *targets
	breakBlock       *Block
	continueBlock    *Block
	fallthroughBlock *Block
}

type builder struct {
	cfg      *CFG
	current  *Block
	targets  *targets
	lblocks  map[string]*lblock
	curLabel *lblock // pending label for the next loop/switch/select
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) add(n ast.Node) { b.current.Nodes = append(b.current.Nodes, n) }

// link adds an edge current -> to without changing the current block.
func (b *builder) link(to *Block) { b.current.Succs = append(b.current.Succs, to) }

// terminate ends the current block (its successors are already set) and
// continues construction in a fresh, unreachable block.
func (b *builder) terminate() { b.current = b.newBlock() }

func (b *builder) labeledBlock(name string) *lblock {
	lb := b.lblocks[name]
	if lb == nil {
		lb = &lblock{gotoBlock: b.newBlock()}
		b.lblocks[name] = lb
	}
	return lb
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	// Any statement other than the one a label is attached to clears the
	// pending label (e.g. a label on a plain statement).
	label := b.curLabel
	b.curLabel = nil

	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labeledBlock(s.Label.Name)
		b.link(lb.gotoBlock)
		b.current = lb.gotoBlock
		b.curLabel = lb
		b.stmt(s.Stmt)

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate()

	case *ast.BranchStmt:
		b.add(s)
		var target *Block
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				target = b.labeledBlock(s.Label.Name).breakBlock
			} else {
				for t := b.targets; t != nil; t = t.tail {
					if t.breakBlock != nil {
						target = t.breakBlock
						break
					}
				}
			}
		case token.CONTINUE:
			if s.Label != nil {
				target = b.labeledBlock(s.Label.Name).continueBlock
			} else {
				for t := b.targets; t != nil; t = t.tail {
					if t.continueBlock != nil {
						target = t.continueBlock
						break
					}
				}
			}
		case token.FALLTHROUGH:
			for t := b.targets; t != nil; t = t.tail {
				if t.fallthroughBlock != nil {
					target = t.fallthroughBlock
					break
				}
			}
		case token.GOTO:
			target = b.labeledBlock(s.Label.Name).gotoBlock
		}
		if target != nil {
			b.link(target)
		}
		b.terminate()

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.current
		then := b.newBlock()
		done := b.newBlock()
		els := done
		if s.Else != nil {
			els = b.newBlock()
		}
		head.Succs = []*Block{then, els}
		b.current = then
		b.stmt(s.Body)
		b.link(done)
		if s.Else != nil {
			b.current = els
			b.stmt(s.Else)
			b.link(done)
		}
		b.current = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		header := b.newBlock()
		body := b.newBlock()
		done := b.newBlock()
		post := header
		if s.Post != nil {
			post = b.newBlock()
		}
		b.link(header)
		b.current = header
		if s.Cond != nil {
			b.add(s.Cond)
			header.Succs = []*Block{body, done}
		} else {
			header.Succs = []*Block{body}
		}
		b.takeLabelFrom(label, done, post)
		b.targets = &targets{tail: b.targets, breakBlock: done, continueBlock: post}
		b.current = body
		b.stmt(s.Body)
		b.targets = b.targets.tail
		if s.Post != nil {
			b.link(post)
			b.current = post
			b.stmt(s.Post)
		}
		b.link(header)
		b.current = done

	case *ast.RangeStmt:
		header := b.newBlock()
		body := b.newBlock()
		done := b.newBlock()
		b.link(header)
		b.current = header
		b.add(s.X)
		header.Succs = []*Block{body, done}
		b.takeLabelFrom(label, done, header)
		b.targets = &targets{tail: b.targets, breakBlock: done, continueBlock: header}
		b.current = body
		b.stmt(s.Body)
		b.targets = b.targets.tail
		b.link(header)
		b.current = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		head := b.current
		done := b.newBlock()
		b.takeLabelFrom(label, done, nil)
		bodies := make([]*Block, len(s.Body.List))
		for i := range s.Body.List {
			bodies[i] = b.newBlock()
		}
		hasDefault := false
		for i, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			head.Succs = append(head.Succs, bodies[i])
			b.current = bodies[i]
			for _, e := range cc.List {
				b.add(e)
			}
			var ft *Block
			if i+1 < len(bodies) {
				ft = bodies[i+1]
			}
			b.targets = &targets{tail: b.targets, breakBlock: done, fallthroughBlock: ft}
			b.stmtList(cc.Body)
			b.targets = b.targets.tail
			b.link(done)
		}
		if !hasDefault {
			head.Succs = append(head.Succs, done)
		}
		b.current = done

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		head := b.current
		done := b.newBlock()
		b.takeLabelFrom(label, done, nil)
		hasDefault := false
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			blk := b.newBlock()
			head.Succs = append(head.Succs, blk)
			b.current = blk
			b.targets = &targets{tail: b.targets, breakBlock: done}
			b.stmtList(cc.Body)
			b.targets = b.targets.tail
			b.link(done)
		}
		if !hasDefault {
			head.Succs = append(head.Succs, done)
		}
		b.current = done

	case *ast.SelectStmt:
		head := b.current
		if len(s.Body.List) == 0 {
			// select{} blocks forever; control never continues.
			head.Panics = true
			b.terminate()
			return
		}
		done := b.newBlock()
		b.takeLabelFrom(label, done, nil)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock()
			head.Succs = append(head.Succs, blk)
			b.current = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.targets = &targets{tail: b.targets, breakBlock: done}
			b.stmtList(cc.Body)
			b.targets = b.targets.tail
			b.link(done)
		}
		b.current = done

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.current.Panics = true
				b.terminate()
			}
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Leaf statements: assignments, declarations, inc/dec, defer, go,
		// channel sends.
		b.add(s)
	}
}

// takeLabelFrom binds a label (captured before the statement dispatch
// cleared it) to the given break/continue blocks.
func (b *builder) takeLabelFrom(lb *lblock, breakBlock, continueBlock *Block) {
	if lb == nil {
		return
	}
	lb.breakBlock = breakBlock
	lb.continueBlock = continueBlock
}
